/**
 * @file
 * Fig. 16 / Section 6.4 - encoder-bearing models (BERT-Large,
 * T5-11B): throughput and energy vs the baselines, plus the two
 * comparisons quoted in the text:
 *   - TGP-with-block vs pure sequence granularity (paper: ~25x);
 *   - the cost of blocking on decoder-only models (paper: ~5%).
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

Workload
encoderWorkload(const ModelConfig &model, std::size_t n)
{
    // Encoder-only models classify (decode length 1); T5 generates.
    if (model.attention == AttentionKind::Bidirectional) {
        Workload w = wikiText2Like(n, model.maxContext);
        for (auto &r : w.requests)
            r.decodeLen = 1;
        return w;
    }
    return wikiText2Like(n, model.maxContext);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 80);

    std::cout << "=== Fig. 16: encoder-based models ===\n";
    Table table({"model", "system", "thpt(norm DGX)",
                 "energy(norm DGX)"});

    for (const ModelConfig &model : encoderModels()) {
        const Workload w = encoderWorkload(model, n);
        const auto sys = buildOuroboros(model);
        const auto ours = sys.run(w);
        const auto gpu = evalAccelerator(dgxA100(), model, w);
        const auto tpu = evalAccelerator(tpuV4x8(), model, w);
        const auto att = evalAccelerator(attAcc(), model, w);
        const auto wse = evalWse(wse2(), model, w);
        ouroAssert(gpu.has_value(), "DGX must fit ", model.name);

        const double tps0 = gpu->outputTokensPerSecond;
        const double e0 = gpu->energyPerTokenTotal();
        auto add = [&](const std::string &name, double tps,
                       double energy) {
            table.row().cell(model.name).cell(name).cell(tps / tps0,
                                                         2);
            table.cell(energy / e0, 2);
        };
        add("DGX A100", tps0, e0);
        if (tpu)
            add("TPUv4", tpu->outputTokensPerSecond,
                tpu->energyPerTokenTotal());
        if (att)
            add("AttAcc", att->outputTokensPerSecond,
                att->energyPerTokenTotal());
        if (wse)
            add("Cerebras", wse->outputTokensPerSecond,
                wse->energyPerTokenTotal());
        add("Ours", ours.result.outputTokensPerSecond,
            ours.result.energyPerTokenTotal());
    }
    table.print(std::cout);

    // --- TGP-with-block vs sequence granularity on encoders ---
    std::cout << "\nTGP-with-block vs sequence-grained pipeline "
                 "(paper: ~25x):\n";
    for (const ModelConfig &model : encoderModels()) {
        const Workload w = encoderWorkload(model, n);
        OuroborosOptions tgp;
        OuroborosOptions sgp;
        sgp.tokenGrained = false;
        const auto a = buildOuroboros(model, tgp).run(w);
        const auto b = buildOuroboros(model, sgp).run(w);
        std::cout << "  " << model.name << ": "
                  << formatDouble(a.result.outputTokensPerSecond /
                                  b.result.outputTokensPerSecond, 1)
                  << "x\n";
    }

    // --- Blocking cost on decoder-only models (paper: ~5%) ---
    std::cout << "\nBlocking penalty on decoder-only models "
                 "(paper: ~5% slower than pure TGP):\n";
    for (const ModelConfig &model : decoderModels()) {
        const Workload w = wikiText2Like(n, 2048);
        const auto pure = buildOuroboros(model).run(w);
        // Force blocking by relabelling the mask as a prefix mask.
        ModelConfig blocked_cfg = model;
        blocked_cfg.attention = AttentionKind::Prefix;
        blocked_cfg.name = model.name + "(blocked)";
        const auto blocked = buildOuroboros(blocked_cfg).run(w);
        const double loss =
            1.0 - blocked.result.outputTokensPerSecond /
                  pure.result.outputTokensPerSecond;
        std::cout << "  " << model.name << ": "
                  << formatDouble(100.0 * loss, 1) << "% slower\n";
    }
    return 0;
}
