/**
 * @file
 * Fig. 1 - "Hardware Scaling Tax Due to Increasing Model Size".
 *
 * Reproduces the energy breakdown (compute / communication / on-chip
 * / off-chip memory) of running inference on 1/2/4/8x A100 for dense
 * models of 7 to 130 B parameters, showing total energy racing away
 * from compute energy as models grow.
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv);
    const Workload workload = wikiText2Like(n, 2048);

    std::cout << "=== Fig. 1: hardware scaling tax (total joules, "
              << n << " requests) ===\n";
    Table table({"model", "gpus", "compute[J]", "comm[J]",
                 "on-chip[J]", "off-chip[J]", "total[J]",
                 "total/compute"});

    const double sizes[] = {7, 13, 19.5, 32, 65, 130};
    for (const double billions : sizes) {
        const ModelConfig model = denseModel(billions);
        // Smallest DGX slice that fits the model (as the paper's
        // x-axis annotation shows: larger models need more GPUs).
        for (std::uint32_t gpus : {1u, 2u, 4u, 8u}) {
            AcceleratorParams params = dgxA100();
            params.numDevices = gpus;
            const auto result =
                evalAccelerator(params, model, workload);
            if (!result)
                continue; // does not fit this slice
            const EnergyLedger total = result->energyPerToken.scaled(
                    static_cast<double>(
                            workload.totalOutputTokens()));
            const double compute =
                total.get(EnergyCategory::Compute);
            table.row()
                .cell(model.name)
                .cell(static_cast<int>(gpus))
                .cell(compute, 1)
                .cell(total.get(EnergyCategory::Communication), 1)
                .cell(total.get(EnergyCategory::OnChipMemory), 1)
                .cell(total.get(EnergyCategory::OffChipMemory), 1)
                .cell(total.total(), 1)
                .cell(total.total() / compute, 2);
            break; // paper plots the minimal fitting configuration
        }
    }
    table.print(std::cout);
    std::cout << "\nShape check: total/compute should exceed 2x and "
                 "grow with model size\n(data movement dominates - "
                 "the scaling tax).\n";
    return 0;
}
