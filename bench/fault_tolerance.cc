/**
 * @file
 * Fault-tolerance sweep + failure-storm harness (paper Section
 * 4.3.3): N random core failures over a mapped LLaMA-13B wafer,
 * recovered with the replacement-chain remapper, across several
 * defect-map sweep points that all share one clean-route table - and
 * a whole-wafer failure storm driven through the wafer-level
 * RecoveryService.
 *
 * Sweep section: two full recovery pipelines run over the exact same
 * failure schedule:
 *   - fast path: MeshNoc instances started from the shared
 *     CleanRouteTable (the mechanism that amortises identical clean
 *     routes across the sweep's meshes);
 *   - oracle path: cold meshes.
 * Every RemapResult must be BIT-identical between the two (moves,
 * absorbed cores, latency bits) - the harness asserts it on every
 * run, the same way fig18 pins its engines. The sweep points fan out
 * on parallelFor with per-point meshes and result slots (the PR 1
 * sweep contract; the clean-route table is the one shareable NoC
 * object), and the parallel sweep is asserted bit-identical to the
 * serial loop on every run.
 *
 * Storm section: a replicated mapping's replica-0/1 chains take a
 * whole-wafer failure sequence through RecoveryService - KV pools
 * drained dry, weight failures forcing deterministic cross-block KV
 * borrows. The service is asserted bit-identical to the retained
 * per-placement recoverCoreFailure oracle for the whole no-borrow
 * prefix, and the index-mode service is asserted bit-identical to
 * the scan-mode service across the ENTIRE storm, borrows included.
 * The recorded schedule is then replayed through an eager-re-pricing
 * service and a deferred one (dirty-edge set, one flushRepricing()
 * at quiescence); recoveries and re-priced totals are asserted
 * bit-identical on every run. BENCH_fault_tolerance.json records
 * storm recoveries/sec, the borrow rate, reprice_edges_per_storm,
 * deferred_reprice_speedup and route_meta_hit_rate.
 *
 * The RecoveryIndex is additionally benchmarked on a wafer-sized
 * region (also against its scan oracle, also bit-identical): a
 * per-block region is only a few hundred cores, where the flat scan
 * is already cheap.
 *
 * Pass a count as argv[1] to scale the per-sweep-point failure
 * injections (default 100).
 */

#include "bench_util.hh"

#include "common/parallel.hh"
#include "common/rng.hh"
#include "hw/yield.hh"
#include "mapping/remap.hh"
#include "mapping/wafer_mapping.hh"
#include "noc/mesh.hh"
#include "runtime/recovery_service.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

constexpr std::size_t kSweepPoints = 6;

/** One sweep point's mutable recovery state. */
struct SweepState
{
    std::vector<BlockPlacement> blocks;

    explicit SweepState(const WaferMapping &mapping)
    {
        for (std::uint64_t b = 0; b < mapping.numBlocks(); ++b)
            blocks.push_back(mapping.placement(b));
    }
};

/** The failure schedule is derived from the placements' current
 *  state, which both paths mutate identically - so resolving a pick
 *  against either path's state yields the same core. */
CoreCoord
resolveFailure(const BlockPlacement &p, std::size_t pick)
{
    if (pick < p.weightCores.size())
        return p.weightCores[pick];
    pick -= p.weightCores.size();
    if (pick < p.scoreCores.size())
        return p.scoreCores[pick];
    return p.contextCores[pick - p.scoreCores.size()];
}

std::size_t
aliveCores(const BlockPlacement &p)
{
    return p.weightCores.size() + p.scoreCores.size() +
           p.contextCores.size();
}

/**
 * Re-price the wafer's steady-state inter-block activation traffic
 * over the (post-recovery) placements on one sweep point's mesh -
 * the long-haul flows a defect sweep re-evaluates per point, and
 * where the shared clean-route table amortises real route work.
 * Uses the same accumulateInterBlockFlows definition
 * WaferMapping::build prices, so the bench can never drift from the
 * product flow model. Returns the bottleneck-link time.
 */
double
interBlockTraffic(const std::vector<BlockPlacement> &blocks,
                  const std::vector<LayerSpec> &specs,
                  std::uint32_t tiles_per_block, const MeshNoc &noc)
{
    TrafficAccumulator traffic(noc);
    for (std::size_t b = 0; b + 1 < blocks.size(); ++b) {
        const bool routable = accumulateInterBlockFlows(
                specs, tiles_per_block, blocks[b].weightCores,
                blocks[b + 1].weightCores, noc, traffic);
        ouroAssert(routable, "fault_tolerance: sweep defect map "
                             "fenced an inter-block flow");
    }
    return traffic.bottleneckSeconds();
}

/** One sweep point's full result (per-index slot of the parallel
 *  fan-out). */
struct PointResult
{
    std::uint64_t recoveries = 0;
    std::uint64_t sharedHits = 0;
    std::uint64_t routeMisses = 0;
    std::vector<RemapResult> results;
    /** Post-recovery bottleneck time of this point. */
    double bottleneck = 0.0;
};

struct PathResult
{
    double seconds = 0.0;
    std::vector<PointResult> points;

    std::uint64_t recoveries() const
    {
        std::uint64_t n = 0;
        for (const auto &p : points)
            n += p.recoveries;
        return n;
    }
    std::uint64_t sharedHits() const
    {
        std::uint64_t n = 0;
        for (const auto &p : points)
            n += p.sharedHits;
        return n;
    }
    std::uint64_t routeMisses() const
    {
        std::uint64_t n = 0;
        for (const auto &p : points)
            n += p.routeMisses;
        return n;
    }
};

bool
sameResult(const RemapResult &a, const RemapResult &b)
{
    return a.moves == b.moves &&
           a.absorbedKvCore == b.absorbedKvCore &&
           a.movedBytes == b.movedBytes &&
           a.latencySeconds == b.latencySeconds &&
           a.chainLength == b.chainLength;
}

/**
 * Run ONE defect-map sweep point: its own mesh and mutable state
 * (per-index slots only - the parallel contract), recoveries plus
 * the post-recovery traffic re-pricing. @p table is null on the
 * oracle path (cold meshes).
 */
PointResult
runPoint(std::size_t point, const WaferMapping &mapping,
         const WaferGeometry &geom, std::size_t injections,
         const std::shared_ptr<const CleanRouteTable> &table)
{
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    PointResult out;
    // Per-point defect map: routes must detour differently at every
    // sweep point, which is exactly the situation the shared
    // clean-route table amortises.
    YieldParams yield;
    Rng defect_rng(1000 + point);
    const DefectMap defects(geom, yield, defect_rng);
    const MeshNoc noc(geom, NocParams{}, &defects, table);

    SweepState state(mapping);
    Rng rng(77 + point);
    for (std::size_t k = 0; k < injections; ++k) {
        const std::size_t b = static_cast<std::size_t>(
                rng.uniformInt(0, state.blocks.size() - 1));
        BlockPlacement &placement = state.blocks[b];
        const std::size_t alive = aliveCores(placement);
        if (alive == 0)
            continue;
        const std::size_t pick = static_cast<std::size_t>(
                rng.uniformInt(0, alive - 1));
        const CoreCoord failed = resolveFailure(placement, pick);
        const auto result = recoverCoreFailure(
                placement, failed, noc, tile_bytes);
        if (!result)
            continue; // chain exhausted this block's KV pool
        ++out.recoveries;
        out.results.push_back(*result);
    }
    // With the failures absorbed, re-price the wafer's inter-block
    // traffic under this point's defect map - the long-haul route
    // workload a sweep repeats per point.
    out.bottleneck = interBlockTraffic(state.blocks,
                                       mapping.layerSpecs(),
                                       mapping.tilesPerBlock(), noc);
    out.sharedHits = noc.sharedTableHits();
    out.routeMisses = noc.routeCacheMisses();
    return out;
}

/** Run all sweep points, serially or fanned out on parallelFor. */
PathResult
runSweep(const WaferMapping &mapping, const WaferGeometry &geom,
         std::size_t injections,
         const std::shared_ptr<const CleanRouteTable> &table,
         bool parallel)
{
    PathResult out;
    out.points.resize(kSweepPoints);
    const WallTimer timer;
    if (parallel) {
        parallelFor(kSweepPoints, [&](std::size_t i) {
            out.points[i] =
                runPoint(i, mapping, geom, injections, table);
        });
    } else {
        for (std::size_t i = 0; i < kSweepPoints; ++i) {
            out.points[i] =
                runPoint(i, mapping, geom, injections, table);
        }
    }
    out.seconds = timer.seconds();
    return out;
}

void
assertSweepsIdentical(const PathResult &a, const PathResult &b,
                      const char *what)
{
    ouroAssert(a.points.size() == b.points.size(),
               "fault_tolerance: ", what, ": point count differs");
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const PointResult &pa = a.points[i];
        const PointResult &pb = b.points[i];
        ouroAssert(pa.recoveries == pb.recoveries &&
                           pa.results.size() == pb.results.size(),
                   "fault_tolerance: ", what,
                   ": recovery counts differ at point ", i);
        for (std::size_t k = 0; k < pa.results.size(); ++k) {
            ouroAssert(sameResult(pa.results[k], pb.results[k]),
                       "fault_tolerance: ", what,
                       ": recovery diverged at point ", i,
                       " failure ", k);
        }
        ouroAssert(pa.bottleneck == pb.bottleneck,
                   "fault_tolerance: ", what,
                   ": traffic re-pricing diverged at point ", i);
    }
}

/**
 * Large-region scaling showdown: one placement spanning the whole
 * wafer (the regime the spatial index exists for - per-block regions
 * are only a few hundred cores, where a flat scan is already cheap).
 * Runs the same failure schedule through the index and the scan,
 * asserts bit-identity, and returns (scan seconds, index seconds).
 */
std::pair<double, double>
largeRegionShowdown(const WaferGeometry &geom, std::size_t failures)
{
    const auto order = geom.sShapedOrder();
    constexpr std::size_t kWeights = 2000;
    BlockPlacement scan_p;
    scan_p.weightCores.assign(order.begin(), order.begin() + kWeights);
    bool to_score = true;
    for (std::size_t i = kWeights; i < order.size(); ++i) {
        (to_score ? scan_p.scoreCores : scan_p.contextCores)
            .push_back(order[i]);
        to_score = !to_score;
    }
    BlockPlacement idx_p = scan_p;

    const Bytes tile_bytes = CoreParams{}.sramBytes();
    const NocParams params;
    std::vector<CoreCoord> schedule;
    Rng rng(4242);
    for (std::size_t k = 0; k < failures; ++k) {
        schedule.push_back(scan_p.weightCores[static_cast<std::size_t>(
                rng.uniformInt(0, kWeights - 1))]);
    }
    // The schedule may fail an already-recovered (dead) coordinate
    // again; both paths then return nullopt identically.

    const WallTimer scan_timer;
    std::vector<std::optional<RemapResult>> scan_results;
    for (const CoreCoord failed : schedule) {
        scan_results.push_back(recoverCoreFailure(
                scan_p, failed, geom, params, tile_bytes));
    }
    const double scan_s = scan_timer.seconds();

    const WallTimer index_timer;
    RecoveryIndex index(idx_p); // amortised over the whole schedule
    std::vector<std::optional<RemapResult>> idx_results;
    for (const CoreCoord failed : schedule) {
        idx_results.push_back(recoverCoreFailure(
                idx_p, failed, geom, params, tile_bytes, &index));
    }
    const double index_s = index_timer.seconds();

    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto &a = scan_results[i];
        const auto &b = idx_results[i];
        ouroAssert(a.has_value() == b.has_value() &&
                           (!a || sameResult(*a, *b)),
                   "fault_tolerance: spatial index diverged from the "
                   "scan oracle at failure ", i);
    }
    ouroAssert(scan_p.weightCores == idx_p.weightCores &&
                       scan_p.scoreCores == idx_p.scoreCores &&
                       scan_p.contextCores == idx_p.contextCores,
               "fault_tolerance: placements diverged after the "
               "large-region schedule");
    return {scan_s, index_s};
}

/** What the failure storm measures and asserts. */
struct StormResult
{
    double seconds = 0.0;
    std::uint64_t failures = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t borrows = 0;

    /** Eager-vs-deferred re-pricing replay over the recorded
     *  schedule (totals asserted bit-identical on every run). */
    double eagerSeconds = 0.0;
    double deferredSeconds = 0.0;
    std::uint64_t eagerRepricedEdges = 0;
    std::uint64_t deferredRepricedEdges = 0;
    /** Pricing lookups that found an already-built RouteMeta on the
     *  deferred replay's mesh (cache + shared-table serves over all
     *  lookups). */
    double routeMetaHitRate = 0.0;
};

/**
 * Whole-wafer failure storm through the RecoveryService: for each
 * replica chain, drain block 0's dedicated KV pool dry, then keep
 * failing block 0's weight cores so every further recovery must
 * borrow KV capacity from adjacent blocks.
 *
 * Asserts, on every run:
 *  - the per-placement recoverCoreFailure oracle (mirror state, cold
 *    mesh, flat scans) reproduces the service bit for bit across the
 *    whole no-borrow prefix of the storm;
 *  - a scan-mode service reproduces the index-mode service bit for
 *    bit across the ENTIRE storm, borrows included.
 */
StormResult
runStorm(const WaferGeometry &geom, std::size_t weight_failures)
{
    const ModelConfig model = bertLarge();
    WaferMappingOptions mopts;
    mopts.mapper = MapperKind::Greedy;
    mopts.replicas = 2;
    const auto mapping = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            mopts);
    ouroAssert(mapping.has_value(),
               "fault_tolerance: storm mapping failed");
    const Bytes tile_bytes = CoreParams{}.sramBytes();

    RecoveryService indexed(*mapping, NocParams{}, tile_bytes,
                            nullptr);
    RecoveryServiceOptions scan_opts;
    scan_opts.useSpatialIndex = false;
    RecoveryService scanned(*mapping, NocParams{}, tile_bytes,
                            nullptr, scan_opts);

    // Mirror oracle state: raw per-placement recoveries, cold mesh,
    // flat scans. It can follow the service exactly until the first
    // borrow (the oracle has no cross-block capacity to draw on).
    const MeshNoc cold(geom, NocParams{});
    std::vector<BlockPlacement> mirror;
    for (std::uint32_t rep = 0; rep < mapping->numReplicas(); ++rep) {
        for (std::uint64_t b = 0; b < mapping->numBlocks(); ++b)
            mirror.push_back(mapping->placement(b, rep));
    }

    // The schedule: per replica, every KV core of block 0 (drain),
    // then weight_failures failures cycling block 0's tiles (each
    // one borrows). Coordinates are resolved against the indexed
    // service's state as the storm progresses and recorded, so the
    // scan service and the oracle replay the identical sequence.
    StormResult out;
    std::vector<CoreCoord> schedule;
    std::uint64_t oracle_matched = 0;
    bool oracle_live = true;
    const WallTimer timer;
    for (std::uint32_t rep = 0; rep < mapping->numReplicas(); ++rep) {
        const auto score = indexed.placement(0, rep).scoreCores;
        const auto context = indexed.placement(0, rep).contextCores;
        std::vector<CoreCoord> coords;
        for (const auto *pool : {&score, &context})
            coords.insert(coords.end(), pool->begin(), pool->end());
        // Drain phase (the snapshot above), then weight failures
        // resolved lazily against the evolving placement (tiles
        // move as chains shift).
        const std::size_t drain = coords.size();
        for (std::size_t k = 0; k < drain + weight_failures; ++k) {
            const CoreCoord failed =
                k < drain ? coords[k]
                          : indexed.placement(0, rep).weightCores
                                    [k % mapping->tilesPerBlock()];
            schedule.push_back(failed);
            const auto got = indexed.handleCoreFailure(failed);
            ouroAssert(got.has_value(),
                       "fault_tolerance: storm recovery failed at ",
                       schedule.size() - 1);
            ++out.failures;
            ++out.recoveries;
            out.borrows += got->borrows.size();
            if (oracle_live && !got->borrows.empty())
                oracle_live = false; // placements diverge from here
            if (oracle_live) {
                BlockPlacement &p =
                    mirror[rep * mapping->numBlocks() + 0];
                const auto want = recoverCoreFailure(
                        p, failed, cold, tile_bytes);
                ouroAssert(want.has_value() &&
                                   sameResult(got->remap, *want),
                           "fault_tolerance: service diverged from "
                           "the per-placement oracle at storm "
                           "failure ", schedule.size() - 1);
                ++oracle_matched;
            }
        }
    }
    out.seconds = timer.seconds();
    ouroAssert(out.borrows > 0,
               "fault_tolerance: storm never triggered a KV borrow");
    ouroAssert(oracle_matched > 0,
               "fault_tolerance: storm never exercised the oracle");

    // Scan-mode service: replay the identical schedule; outcomes
    // must match bit for bit across the whole storm, borrows
    // included.
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto got = scanned.handleCoreFailure(schedule[i]);
        ouroAssert(got.has_value(),
                   "fault_tolerance: scan-mode storm failed at ", i);
    }
    ouroAssert(scanned.recoveries() == indexed.recoveries() &&
                       scanned.borrowCount() == indexed.borrowCount(),
               "fault_tolerance: scan-mode service diverged from the "
               "index mode");
    for (std::uint32_t rep = 0; rep < mapping->numReplicas(); ++rep) {
        for (std::uint64_t b = 0; b < mapping->numBlocks(); ++b) {
            const auto &a = indexed.placement(b, rep);
            const auto &s = scanned.placement(b, rep);
            ouroAssert(a.weightCores == s.weightCores &&
                               a.scoreCores == s.scoreCores &&
                               a.contextCores == s.contextCores,
                       "fault_tolerance: storm placements diverged "
                       "between index and scan modes");
        }
    }

    // Re-pricing replay: the recorded schedule through an eager
    // service (flush inside every failure - the retained oracle) and
    // a deferred one (marks accumulate, one flush at quiescence).
    // Recoveries must be bit-identical throughout, and the deferred
    // flush must price its distinct dirty edges to the exact total
    // the eager service computes over the same edge list.
    RecoveryService eager(*mapping, NocParams{}, tile_bytes,
                          nullptr);
    RecoveryServiceOptions defer_opts;
    defer_opts.deferRepricing = true;
    RecoveryService deferred(*mapping, NocParams{}, tile_bytes,
                             nullptr, defer_opts);

    const WallTimer eager_timer;
    std::vector<RemapResult> eager_remaps;
    eager_remaps.reserve(schedule.size());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto got = eager.handleCoreFailure(schedule[i]);
        ouroAssert(got.has_value(),
                   "fault_tolerance: eager replay failed at ", i);
        eager_remaps.push_back(got->remap);
    }
    out.eagerSeconds = eager_timer.seconds();
    out.eagerRepricedEdges = eager.repricedEdges();

    const WallTimer deferred_timer;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto got = deferred.handleCoreFailure(schedule[i]);
        ouroAssert(got.has_value() &&
                           sameResult(got->remap, eager_remaps[i]) &&
                           got->interBlockByteHops == 0.0,
                   "fault_tolerance: deferred replay diverged at ",
                   i);
    }
    const auto dirty = deferred.dirtyEdges();
    const RepriceResult flush = deferred.flushRepricing();
    out.deferredSeconds = deferred_timer.seconds();
    out.deferredRepricedEdges = flush.edges;

    const RepriceResult want = eager.priceEdges(dirty);
    ouroAssert(flush.interBlockByteHops == want.interBlockByteHops &&
                       flush.flowsRoutable == want.flowsRoutable &&
                       flush.edges == dirty.size(),
               "fault_tolerance: deferred flush diverged from the "
               "eager re-pricing of the same dirty edges");
    ouroAssert(out.deferredRepricedEdges < out.eagerRepricedEdges,
               "fault_tolerance: storm deduplicated nothing - the "
               "deferred path has no batching win to measure");

    const MeshNoc &dnoc = deferred.noc();
    const std::uint64_t served =
        dnoc.routeCacheHits() + dnoc.sharedTableHits();
    out.routeMetaHitRate =
        served + dnoc.routeCacheMisses() > 0
            ? static_cast<double>(served) /
                  static_cast<double>(served +
                                      dnoc.routeCacheMisses())
            : 0.0;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t injections = requestCount(argc, argv, 100);

    std::cout << "=== Fault-tolerance sweep: " << kSweepPoints
              << " defect maps x " << injections
              << " random core failures ===\n";

    const WaferGeometry geom;
    const ModelConfig model = llama13b();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    const auto mapping = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            opts);
    ouroAssert(mapping.has_value(), "fault_tolerance: mapping failed");

    // Fast path: meshes started from the shared clean-route table,
    // sweep points fanned out on parallelFor (per-point meshes and
    // result slots; the table is the one shareable NoC object). The
    // serial loop runs too and the two must be bit-identical - the
    // sweep-runtime contract.
    const auto table =
        std::make_shared<const CleanRouteTable>(geom, NocParams{});
    const PathResult fast =
        runSweep(*mapping, geom, injections, table, false);
    const PathResult fast_parallel =
        runSweep(*mapping, geom, injections, table, true);
    assertSweepsIdentical(fast, fast_parallel,
                          "parallel sweep vs serial");
    // Oracle path: cold meshes + full scans.
    const PathResult oracle =
        runSweep(*mapping, geom, injections, nullptr, false);
    assertSweepsIdentical(fast, oracle,
                          "shared-table fast path vs cold oracle");

    const double fast_rate =
        static_cast<double>(fast.recoveries()) / fast.seconds;
    const double oracle_rate =
        static_cast<double>(oracle.recoveries()) / oracle.seconds;
    const double parallel_speedup =
        fast.seconds / fast_parallel.seconds;
    const double hit_rate =
        fast.sharedHits() + fast.routeMisses() > 0
            ? static_cast<double>(fast.sharedHits()) /
                  static_cast<double>(fast.sharedHits() +
                                      fast.routeMisses())
            : 0.0;

    Table table_out({"path", "recoveries", "wall [ms]",
                     "recoveries/sec"});
    table_out.row()
        .cell("shared route table")
        .cell(fast.recoveries())
        .cell(fast.seconds * 1e3, 1)
        .cell(fast_rate, 0);
    table_out.row()
        .cell("shared table, parallel")
        .cell(fast_parallel.recoveries())
        .cell(fast_parallel.seconds * 1e3, 1)
        .cell(static_cast<double>(fast_parallel.recoveries()) /
                      fast_parallel.seconds, 0);
    table_out.row()
        .cell("cold + scan (oracle)")
        .cell(oracle.recoveries())
        .cell(oracle.seconds * 1e3, 1)
        .cell(oracle_rate, 0);
    table_out.print(std::cout);
    std::cout << "\nShared clean-route table: "
              << fast.sharedHits() << " hits / " << fast.routeMisses()
              << " local misses (hit rate "
              << formatDouble(hit_rate * 100.0, 1)
              << "%); all recoveries bit-identical to the oracle, "
                 "parallel sweep bit-identical to serial ("
              << formatDouble(parallel_speedup, 2) << "x, "
              << defaultThreadCount() << " threads).\n";

    // Where the spatial index earns its keep: a wafer-sized region
    // (bit-identity asserted inside).
    const auto [scan_s, index_s] =
        largeRegionShowdown(geom, 4 * injections);
    const double index_speedup = scan_s / index_s;
    std::cout << "\nLarge-region recovery ("
              << geom.numCores() << "-core region, "
              << 4 * injections
              << " failures, bit-identical chains):\n  full scans:    "
              << formatDouble(scan_s * 1e3, 1)
              << " ms\n  spatial index: "
              << formatDouble(index_s * 1e3, 1)
              << " ms\n  speedup:       "
              << formatDouble(index_speedup, 1) << "x\n";

    // Failure storm through the wafer-level RecoveryService (oracle
    // prefix + index-vs-scan bit-identity asserted inside).
    const StormResult storm = runStorm(geom, injections / 2 + 1);
    const double storm_rate =
        static_cast<double>(storm.recoveries) / storm.seconds;
    const double borrow_rate =
        static_cast<double>(storm.borrows) /
        static_cast<double>(storm.recoveries);
    std::cout << "\nFailure storm (RecoveryService, replicated "
                 "BERT-large chains):\n  "
              << storm.failures << " failures, " << storm.recoveries
              << " recoveries, " << storm.borrows
              << " cross-block KV borrows (borrow rate "
              << formatDouble(borrow_rate * 100.0, 1)
              << "%)\n  recoveries/sec: "
              << formatDouble(storm_rate, 0)
              << "; service bit-identical to the per-placement "
                 "oracle until the first borrow,\n  index and scan "
                 "modes bit-identical across the whole storm.\n";

    const double reprice_speedup =
        storm.eagerSeconds / storm.deferredSeconds;
    std::cout << "  re-pricing replay: eager "
              << formatDouble(storm.eagerSeconds * 1e3, 1)
              << " ms (" << storm.eagerRepricedEdges
              << " edge visits) vs deferred "
              << formatDouble(storm.deferredSeconds * 1e3, 1)
              << " ms (" << storm.deferredRepricedEdges
              << " distinct edges, one flush) - "
              << formatDouble(reprice_speedup, 2)
              << "x, totals bit-identical; route-meta hit rate "
              << formatDouble(storm.routeMetaHitRate * 100.0, 1)
              << "%.\n";

    BenchReport("fault_tolerance")
        .metric("wall_seconds", fast.seconds)
        .metric("events_per_sec", fast_rate)
        .metric("recoveries", fast.recoveries())
        .metric("recoveries_per_sec", fast_rate)
        .metric("oracle_recoveries_per_sec", oracle_rate)
        .metric("recovery_speedup", fast_rate / oracle_rate)
        .metric("shared_route_table_hits", fast.sharedHits())
        .metric("shared_route_table_misses", fast.routeMisses())
        .metric("shared_route_table_hit_rate", hit_rate)
        .metric("sweep_points", std::uint64_t{kSweepPoints})
        .metric("failures_injected",
                std::uint64_t{kSweepPoints} * injections)
        .metric("sweep_parallel_seconds", fast_parallel.seconds)
        .metric("sweep_parallel_speedup", parallel_speedup)
        .metric("large_region_scan_seconds", scan_s)
        .metric("large_region_index_seconds", index_s)
        .metric("spatial_index_speedup", index_speedup)
        .metric("storm_failures", storm.failures)
        .metric("storm_recoveries", storm.recoveries)
        .metric("storm_borrows", storm.borrows)
        .metric("borrow_rate", borrow_rate)
        .metric("storm_recoveries_per_sec", storm_rate)
        .metric("reprice_edges_per_storm",
                storm.deferredRepricedEdges)
        .metric("eager_reprice_edges", storm.eagerRepricedEdges)
        .metric("deferred_reprice_speedup", reprice_speedup)
        .metric("route_meta_hit_rate", storm.routeMetaHitRate)
        .write();
    return 0;
}
