/**
 * @file
 * Fault-tolerance sweep harness (paper Section 4.3.3): N random core
 * failures over a mapped LLaMA-13B wafer, recovered with the
 * replacement-chain remapper, across several defect-map sweep
 * points that all share one clean-route table.
 *
 * Two full recovery pipelines run over the exact same failure
 * schedule:
 *   - fast path: MeshNoc instances started from the shared
 *     CleanRouteTable (the mechanism that amortises identical clean
 *     routes across the sweep's meshes);
 *   - oracle path: cold meshes.
 * Every RemapResult must be BIT-identical between the two (moves,
 * absorbed cores, latency bits) - the harness asserts it on every
 * run, the same way fig18 pins its engines - and
 * BENCH_fault_tolerance.json records recoveries/sec for both plus
 * the shared-table hit rate.
 *
 * The RecoveryIndex is benchmarked separately on a wafer-sized
 * region (also against its scan oracle, also bit-identical): a
 * per-block region is only a few hundred cores, where the flat scan
 * is already cheap, so indexing every block per sweep point would
 * just measure index construction.
 *
 * Pass a count as argv[1] to scale the per-sweep-point failure
 * injections (default 100).
 */

#include "bench_util.hh"

#include "common/rng.hh"
#include "hw/yield.hh"
#include "mapping/remap.hh"
#include "mapping/wafer_mapping.hh"
#include "noc/mesh.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

constexpr std::size_t kSweepPoints = 6;

/** One sweep point's mutable recovery state. */
struct SweepState
{
    std::vector<BlockPlacement> blocks;

    explicit SweepState(const WaferMapping &mapping)
    {
        for (std::uint64_t b = 0; b < mapping.numBlocks(); ++b)
            blocks.push_back(mapping.placement(b));
    }
};

/** A scheduled failure: block plus the core's rank at pick time. */
struct Failure
{
    std::size_t block;
    std::size_t pick; ///< index into the block's alive-core list
};

/** The failure schedule is derived from the placements' current
 *  state, which both paths mutate identically - so resolving a pick
 *  against either path's state yields the same core. */
CoreCoord
resolveFailure(const BlockPlacement &p, std::size_t pick)
{
    if (pick < p.weightCores.size())
        return p.weightCores[pick];
    pick -= p.weightCores.size();
    if (pick < p.scoreCores.size())
        return p.scoreCores[pick];
    return p.contextCores[pick - p.scoreCores.size()];
}

std::size_t
aliveCores(const BlockPlacement &p)
{
    return p.weightCores.size() + p.scoreCores.size() +
           p.contextCores.size();
}

/**
 * Re-price the wafer's steady-state inter-block activation traffic
 * over the (post-recovery) placements on one sweep point's mesh -
 * the long-haul flows a defect sweep re-evaluates per point, and
 * where the shared clean-route table amortises real route work.
 * Uses the same accumulateInterBlockFlows definition
 * WaferMapping::build prices, so the bench can never drift from the
 * product flow model. Returns the bottleneck-link time.
 */
double
interBlockTraffic(const std::vector<BlockPlacement> &blocks,
                  const std::vector<LayerSpec> &specs,
                  std::uint32_t tiles_per_block, const MeshNoc &noc)
{
    TrafficAccumulator traffic(noc);
    for (std::size_t b = 0; b + 1 < blocks.size(); ++b) {
        const bool routable = accumulateInterBlockFlows(
                specs, tiles_per_block, blocks[b].weightCores,
                blocks[b + 1].weightCores, noc, traffic);
        ouroAssert(routable, "fault_tolerance: sweep defect map "
                             "fenced an inter-block flow");
    }
    return traffic.bottleneckSeconds();
}

struct PathResult
{
    double seconds = 0.0;
    std::uint64_t recoveries = 0;
    std::uint64_t sharedHits = 0;
    std::uint64_t routeMisses = 0;
    std::vector<RemapResult> results;
    /** Post-recovery bottleneck time per sweep point. */
    std::vector<double> bottlenecks;
};

/**
 * Run the full sweep (kSweepPoints defect maps x @p injections
 * failures) through one pipeline. @p table is null on the oracle
 * path (cold meshes, scan-based chains).
 */
PathResult
runSweep(const WaferMapping &mapping, const WaferGeometry &geom,
         std::size_t injections,
         const std::shared_ptr<const CleanRouteTable> &table)
{
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    PathResult out;
    const WallTimer timer;
    for (std::size_t point = 0; point < kSweepPoints; ++point) {
        // Per-point defect map: routes must detour differently at
        // every sweep point, which is exactly the situation the
        // shared clean-route table amortises.
        YieldParams yield;
        Rng defect_rng(1000 + point);
        const DefectMap defects(geom, yield, defect_rng);
        const MeshNoc noc(geom, NocParams{}, &defects, table);

        SweepState state(mapping);
        Rng rng(77 + point);
        for (std::size_t k = 0; k < injections; ++k) {
            const std::size_t b = static_cast<std::size_t>(
                    rng.uniformInt(0, state.blocks.size() - 1));
            BlockPlacement &placement = state.blocks[b];
            const std::size_t alive = aliveCores(placement);
            if (alive == 0)
                continue;
            const std::size_t pick = static_cast<std::size_t>(
                    rng.uniformInt(0, alive - 1));
            const CoreCoord failed = resolveFailure(placement, pick);
            const auto result = recoverCoreFailure(
                    placement, failed, noc, tile_bytes);
            if (!result)
                continue; // chain exhausted this block's KV pool
            ++out.recoveries;
            out.results.push_back(*result);
        }
        // With the failures absorbed, re-price the wafer's inter-
        // block traffic under this point's defect map - the long-
        // haul route workload a sweep repeats per point.
        out.bottlenecks.push_back(interBlockTraffic(
                state.blocks, mapping.layerSpecs(),
                mapping.tilesPerBlock(), noc));
        out.sharedHits += noc.sharedTableHits();
        out.routeMisses += noc.routeCacheMisses();
    }
    out.seconds = timer.seconds();
    return out;
}

bool
sameResult(const RemapResult &a, const RemapResult &b)
{
    return a.moves == b.moves &&
           a.absorbedKvCore == b.absorbedKvCore &&
           a.movedBytes == b.movedBytes &&
           a.latencySeconds == b.latencySeconds &&
           a.chainLength == b.chainLength;
}

/**
 * Large-region scaling showdown: one placement spanning the whole
 * wafer (the regime the spatial index exists for - per-block regions
 * are only a few hundred cores, where a flat scan is already cheap).
 * Runs the same failure schedule through the index and the scan,
 * asserts bit-identity, and returns (scan seconds, index seconds).
 */
std::pair<double, double>
largeRegionShowdown(const WaferGeometry &geom, std::size_t failures)
{
    const auto order = geom.sShapedOrder();
    constexpr std::size_t kWeights = 2000;
    BlockPlacement scan_p;
    scan_p.weightCores.assign(order.begin(), order.begin() + kWeights);
    bool to_score = true;
    for (std::size_t i = kWeights; i < order.size(); ++i) {
        (to_score ? scan_p.scoreCores : scan_p.contextCores)
            .push_back(order[i]);
        to_score = !to_score;
    }
    BlockPlacement idx_p = scan_p;

    const Bytes tile_bytes = CoreParams{}.sramBytes();
    const NocParams params;
    std::vector<CoreCoord> schedule;
    Rng rng(4242);
    for (std::size_t k = 0; k < failures; ++k) {
        schedule.push_back(scan_p.weightCores[static_cast<std::size_t>(
                rng.uniformInt(0, kWeights - 1))]);
    }
    // The schedule may fail an already-recovered (dead) coordinate
    // again; both paths then return nullopt identically.

    const WallTimer scan_timer;
    std::vector<std::optional<RemapResult>> scan_results;
    for (const CoreCoord failed : schedule) {
        scan_results.push_back(recoverCoreFailure(
                scan_p, failed, geom, params, tile_bytes));
    }
    const double scan_s = scan_timer.seconds();

    const WallTimer index_timer;
    RecoveryIndex index(idx_p); // amortised over the whole schedule
    std::vector<std::optional<RemapResult>> idx_results;
    for (const CoreCoord failed : schedule) {
        idx_results.push_back(recoverCoreFailure(
                idx_p, failed, geom, params, tile_bytes, &index));
    }
    const double index_s = index_timer.seconds();

    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto &a = scan_results[i];
        const auto &b = idx_results[i];
        ouroAssert(a.has_value() == b.has_value() &&
                           (!a || sameResult(*a, *b)),
                   "fault_tolerance: spatial index diverged from the "
                   "scan oracle at failure ", i);
    }
    ouroAssert(scan_p.weightCores == idx_p.weightCores &&
                       scan_p.scoreCores == idx_p.scoreCores &&
                       scan_p.contextCores == idx_p.contextCores,
               "fault_tolerance: placements diverged after the "
               "large-region schedule");
    return {scan_s, index_s};
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t injections = requestCount(argc, argv, 100);

    std::cout << "=== Fault-tolerance sweep: " << kSweepPoints
              << " defect maps x " << injections
              << " random core failures ===\n";

    const WaferGeometry geom;
    const ModelConfig model = llama13b();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    const auto mapping = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            opts);
    ouroAssert(mapping.has_value(), "fault_tolerance: mapping failed");

    // Fast path: meshes started from the shared clean-route table
    // (the RecoveryIndex is benchmarked separately below - see the
    // file header).
    const auto table =
        std::make_shared<const CleanRouteTable>(geom, NocParams{});
    const PathResult fast =
        runSweep(*mapping, geom, injections, table);
    // Oracle path: cold meshes + full scans.
    const PathResult oracle =
        runSweep(*mapping, geom, injections, nullptr);

    // The fast path must reproduce the oracle bit for bit on every
    // recovery - same moves, same absorbed cores, same latency.
    ouroAssert(fast.recoveries == oracle.recoveries,
               "fault_tolerance: paths recovered different failure "
               "counts");
    for (std::size_t i = 0; i < fast.results.size(); ++i) {
        ouroAssert(sameResult(fast.results[i], oracle.results[i]),
                   "fault_tolerance: fast path diverged from the "
                   "scan/cold-mesh oracle at recovery ", i);
    }
    ouroAssert(fast.bottlenecks == oracle.bottlenecks,
               "fault_tolerance: traffic re-pricing diverged between "
               "shared-table and cold routes");

    const double fast_rate =
        static_cast<double>(fast.recoveries) / fast.seconds;
    const double oracle_rate =
        static_cast<double>(oracle.recoveries) / oracle.seconds;
    const double hit_rate =
        fast.sharedHits + fast.routeMisses > 0
            ? static_cast<double>(fast.sharedHits) /
                  static_cast<double>(fast.sharedHits +
                                      fast.routeMisses)
            : 0.0;

    Table table_out({"path", "recoveries", "wall [ms]",
                     "recoveries/sec"});
    table_out.row()
        .cell("shared route table")
        .cell(fast.recoveries)
        .cell(fast.seconds * 1e3, 1)
        .cell(fast_rate, 0);
    table_out.row()
        .cell("cold + scan (oracle)")
        .cell(oracle.recoveries)
        .cell(oracle.seconds * 1e3, 1)
        .cell(oracle_rate, 0);
    table_out.print(std::cout);
    std::cout << "\nShared clean-route table: "
              << fast.sharedHits << " hits / " << fast.routeMisses
              << " local misses (hit rate "
              << formatDouble(hit_rate * 100.0, 1)
              << "%); all recoveries bit-identical to the oracle.\n";

    // Where the spatial index earns its keep: a wafer-sized region
    // (bit-identity asserted inside).
    const auto [scan_s, index_s] =
        largeRegionShowdown(geom, 4 * injections);
    const double index_speedup = scan_s / index_s;
    std::cout << "\nLarge-region recovery ("
              << geom.numCores() << "-core region, "
              << 4 * injections
              << " failures, bit-identical chains):\n  full scans:    "
              << formatDouble(scan_s * 1e3, 1)
              << " ms\n  spatial index: "
              << formatDouble(index_s * 1e3, 1)
              << " ms\n  speedup:       "
              << formatDouble(index_speedup, 1) << "x\n";

    BenchReport("fault_tolerance")
        .metric("wall_seconds", fast.seconds)
        .metric("events_per_sec", fast_rate)
        .metric("recoveries", fast.recoveries)
        .metric("recoveries_per_sec", fast_rate)
        .metric("oracle_recoveries_per_sec", oracle_rate)
        .metric("recovery_speedup", fast_rate / oracle_rate)
        .metric("shared_route_table_hits", fast.sharedHits)
        .metric("shared_route_table_misses", fast.routeMisses)
        .metric("shared_route_table_hit_rate", hit_rate)
        .metric("sweep_points", std::uint64_t{kSweepPoints})
        .metric("failures_injected",
                std::uint64_t{kSweepPoints} * injections)
        .metric("large_region_scan_seconds", scan_s)
        .metric("large_region_index_seconds", index_s)
        .metric("spatial_index_speedup", index_speedup)
        .write();
    return 0;
}
