/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every bench binary prints aligned tables of the same rows/series
 * the paper's figure plots, normalised the same way the paper
 * normalises (per-figure baseline = 1.0). Request counts default to
 * 100 (the paper uses 1000; pass a count as argv[1] to scale up -
 * the normalised shapes are stable in the count).
 */

#ifndef OURO_BENCH_BENCH_UTIL_HH
#define OURO_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "baselines/analytic.hh"
#include "baselines/device_params.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

namespace ouro::bench
{

/** Request count: argv[1] if given, else 100. */
inline std::size_t
requestCount(int argc, char **argv, std::size_t fallback = 100)
{
    if (argc > 1) {
        const long n = std::atol(argv[1]);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return fallback;
}

/** Build an Ouroboros deployment or die with a clear message. */
inline OuroborosSystem
buildOuroboros(const ModelConfig &model, OuroborosOptions opts = {},
               OuroborosParams params = {})
{
    auto sys = OuroborosSystem::build(model, params, opts);
    if (!sys) {
        fatal("Ouroboros build failed for ", model.name,
              " with numWafers=", opts.numWafers,
              " (model does not fit)");
    }
    return std::move(*sys);
}

/** Print an energy breakdown row normalised by @p denom. */
inline void
energyCells(Table &table, const EnergyLedger &ledger, double denom)
{
    table.cell(ledger.get(EnergyCategory::Compute) / denom, 3);
    table.cell(ledger.get(EnergyCategory::Communication) / denom, 3);
    table.cell(ledger.get(EnergyCategory::OnChipMemory) / denom, 3);
    table.cell(ledger.get(EnergyCategory::OffChipMemory) / denom, 3);
    table.cell(ledger.total() / denom, 3);
}

} // namespace ouro::bench

#endif // OURO_BENCH_BENCH_UTIL_HH
