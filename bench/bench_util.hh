/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every bench binary prints aligned tables of the same rows/series
 * the paper's figure plots, normalised the same way the paper
 * normalises (per-figure baseline = 1.0). Request counts default to
 * 100 (the paper uses 1000; pass a count as argv[1] to scale up -
 * the normalised shapes are stable in the count).
 */

#ifndef OURO_BENCH_BENCH_UTIL_HH
#define OURO_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/analytic.hh"
#include "baselines/device_params.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

namespace ouro::bench
{

/** Wall-clock stopwatch (steady clock). */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double seconds() const
    {
        return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Machine-readable benchmark record: BENCH_<name>.json in the
 * working directory, one flat JSON object per harness, so the perf
 * trajectory of the simulator itself is tracked run over run.
 * "name", "threads" and "detected_cores" are always present; add
 * wall time and an events/sec figure via metric(). Note that on a
 * 1-core runner (like CI containers) every parallel-vs-serial
 * speedup in these records is ~1x BY DESIGN - the deterministic
 * sweep runtime degrades to a serial loop; read speedups together
 * with detected_cores.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name))
    {
        metric("threads",
               static_cast<std::uint64_t>(defaultThreadCount()));
        metric("detected_cores",
               static_cast<std::uint64_t>(
                       std::thread::hardware_concurrency()));
    }

    /** Record the run's timing-memoization effectiveness. */
    BenchReport &timingCache(std::uint64_t hits,
                             std::uint64_t misses)
    {
        const double total = static_cast<double>(hits + misses);
        metric("timing_cache_hits", hits);
        metric("timing_cache_misses", misses);
        metric("timing_cache_hit_rate",
               total > 0.0 ? static_cast<double>(hits) / total : 0.0);
        return *this;
    }

    /**
     * Record p50/p99 of a sample vector as <key>_p50 / <key>_p99
     * (plus <key>_samples with the count). No-op fields are still
     * written for empty vectors (both percentiles 0) so JSON
     * consumers see a stable schema.
     */
    BenchReport &percentiles(const std::string &key,
                             const std::vector<double> &samples)
    {
        metric(key + "_p50", percentileOf(samples, 50.0));
        metric(key + "_p99", percentileOf(samples, 99.0));
        metric(key + "_samples",
               static_cast<std::uint64_t>(samples.size()));
        return *this;
    }

    BenchReport &metric(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        fields_.emplace_back(key, buf);
        return *this;
    }

    BenchReport &metric(const std::string &key, std::uint64_t value)
    {
        fields_.emplace_back(key, std::to_string(value));
        return *this;
    }

    BenchReport &text(const std::string &key,
                      const std::string &value)
    {
        fields_.emplace_back(key, "\"" + value + "\"");
        return *this;
    }

    /** Write BENCH_<name>.json (also announces the path on stdout). */
    void write() const
    {
        const std::string path = "BENCH_" + name_ + ".json";
        std::ofstream out(path);
        if (!out) {
            warn("BenchReport: cannot write ", path);
            return;
        }
        out << "{\n  \"name\": \"" << name_ << "\"";
        for (const auto &[key, value] : fields_)
            out << ",\n  \"" << key << "\": " << value;
        out << "\n}\n";
        std::cout << "[bench] wrote " << path << "\n";
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Request count: argv[1] if given, else 100. */
inline std::size_t
requestCount(int argc, char **argv, std::size_t fallback = 100)
{
    if (argc > 1) {
        const long n = std::atol(argv[1]);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return fallback;
}

/** Build an Ouroboros deployment or die with a clear message. */
inline OuroborosSystem
buildOuroboros(const ModelConfig &model, OuroborosOptions opts = {},
               OuroborosParams params = {})
{
    auto sys = OuroborosSystem::build(model, params, opts);
    if (!sys) {
        fatal("Ouroboros build failed for ", model.name,
              " with numWafers=", opts.numWafers,
              " (model does not fit)");
    }
    return std::move(*sys);
}

/** Print an energy breakdown row normalised by @p denom. */
inline void
energyCells(Table &table, const EnergyLedger &ledger, double denom)
{
    table.cell(ledger.get(EnergyCategory::Compute) / denom, 3);
    table.cell(ledger.get(EnergyCategory::Communication) / denom, 3);
    table.cell(ledger.get(EnergyCategory::OnChipMemory) / denom, 3);
    table.cell(ledger.get(EnergyCategory::OffChipMemory) / denom, 3);
    table.cell(ledger.total() / denom, 3);
}

} // namespace ouro::bench

#endif // OURO_BENCH_BENCH_UTIL_HH
