/**
 * @file
 * Sampled-window day-trace harness: simulate a day of fleet traffic
 * in seconds (ROADMAP "Sampled simulation for day-long traces").
 *
 * Two tiers, both asserted on every run:
 *
 *  1. CONTRACT (small validation trace): sampling fraction 1.0 with
 *     zero warmup collapses BIT-IDENTICALLY to the retained full
 *     event-stepped run; the window fan-out (both run() and
 *     fullRun()) is bit-identical parallel vs serial; warmup windows
 *     are measurement-neutral at ctxBucketShift 0 (timing-cache hits
 *     are bit-identical to fresh computation).
 *
 *  2. HEADLINE (day-scale trace): the sampled estimate of full-trace
 *     decode tokens/sec must fall within its own reported 95%
 *     confidence interval of the full-run value, the relative error
 *     must be <= 5%, and the serial-vs-serial wall speedup must be
 *     >= 10x. Everything is seeded, so these are deterministic
 *     regressions, not flaky statistics: a violation means the
 *     estimator or the trace generator changed.
 *
 * The speedup is measured serial-vs-serial (algorithmic event-count
 * reduction, stable on any core count); the parallel sampled wall is
 * reported as an extra metric. Results land in BENCH_day_trace.json
 * for run-over-run tracking.
 */

#include <cmath>

#include "bench_util.hh"
#include "sim/sampled_run.hh"
#include "workload/trace.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

/** Every field of two PipelineStats must agree exactly. */
void
assertStatsIdentical(const PipelineStats &a, const PipelineStats &b,
                     const char *what)
{
    ouroAssert(a.makespanSeconds == b.makespanSeconds &&
               a.tokensProcessed == b.tokensProcessed &&
               a.outputTokens == b.outputTokens &&
               a.bottleneckBusySeconds == b.bottleneckBusySeconds &&
               a.utilization == b.utilization &&
               a.evictions == b.evictions &&
               a.recomputedTokens == b.recomputedTokens &&
               a.skippedRequests == b.skippedRequests &&
               a.peakConcurrency == b.peakConcurrency &&
               a.avgContext == b.avgContext &&
               a.itemsProcessed == b.itemsProcessed &&
               a.contextTokensSum == b.contextTokensSum &&
               a.stageBusySumSeconds == b.stageBusySumSeconds &&
               a.ttftSamples == b.ttftSamples &&
               a.interTokenSamples == b.interTokenSamples,
               "day_trace: stats diverged: ", what);
}

SampledSimulator
makeSimulator(const OuroborosSystem &sys, const ModelConfig &model,
              const DayTraceParams &trace, SampledSimOptions opts)
{
    opts.pipeline.attentionParallelism = 16.0;
    opts.kvThreshold = sys.options().kvThreshold;
    return SampledSimulator(DayTrace(trace), model,
                            sys.stageTiming(), sys.scorePool(),
                            sys.contextPool(), opts);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    // argv[1] scales the day-scale trace's request count.
    const auto n = static_cast<std::uint64_t>(
        requestCount(argc, argv, 60000));
    const WallTimer total_timer;

    const ModelConfig model = llama13b();
    const auto sys = buildOuroboros(model);

    // ---- Tier 1: contracts on a small validation trace ----------
    DayTraceParams small_trace;
    small_trace.requests = 4000;

    {
        // Fraction 1.0 + zero warmup IS the full run, bit for bit.
        SampledSimOptions collapse;
        collapse.numWindows = 48;
        collapse.strata = 4;
        collapse.fraction = 1.0;
        collapse.warmupWindows = 0;
        const auto sim = makeSimulator(sys, model, small_trace,
                                       collapse);
        const PipelineStats full = sim.fullRun();
        const SampledEstimate est = sim.run();
        assertStatsIdentical(est.measured, full,
                             "fraction-1.0 collapse");
        ouroAssert(est.estOutputTokens ==
                       static_cast<double>(full.outputTokens) &&
                   est.estMakespanSeconds == full.makespanSeconds &&
                   est.estTokensPerSecond ==
                       full.outputTokensPerSecond(),
                   "day_trace: fraction-1.0 estimate is not the "
                   "full-run value bit for bit");
        ouroAssert(est.ciValid && est.ciTokensPerSecond == 0.0 &&
                   est.ciOutputTokens == 0.0,
                   "day_trace: census CI must be exactly zero");
    }

    {
        // Window fan-out: parallel == serial, for the estimator and
        // for the full-run oracle (the PR 1 sweep contract).
        SampledSimOptions contract;
        contract.numWindows = 48;
        contract.strata = 4;
        contract.fraction = 0.25;
        contract.warmupWindows = 1;
        auto serial = contract;
        serial.serialExecution = true;
        const auto sim_p = makeSimulator(sys, model, small_trace,
                                         contract);
        const auto sim_s = makeSimulator(sys, model, small_trace,
                                         serial);
        const SampledEstimate ep = sim_p.run();
        const SampledEstimate es = sim_s.run();
        assertStatsIdentical(ep.measured, es.measured,
                             "run() parallel vs serial fan-out");
        ouroAssert(ep.estTokensPerSecond == es.estTokensPerSecond &&
                   ep.ciTokensPerSecond == es.ciTokensPerSecond &&
                   ep.estOutputTokens == es.estOutputTokens,
                   "day_trace: parallel estimate diverged");
        assertStatsIdentical(sim_p.fullRun(), sim_s.fullRun(),
                             "fullRun() parallel vs serial fan-out");

        // Warmup neutrality at ctxBucketShift 0: warmup windows only
        // touch the chain's TimingCache, and a cache hit is
        // bit-identical to a fresh computation.
        auto no_warm = contract;
        no_warm.warmupWindows = 0;
        auto deep_warm = contract;
        deep_warm.warmupWindows = 2;
        const auto est_nw =
            makeSimulator(sys, model, small_trace, no_warm).run();
        const auto est_dw =
            makeSimulator(sys, model, small_trace, deep_warm).run();
        assertStatsIdentical(ep.measured, est_nw.measured,
                             "warmup 1 vs warmup 0");
        assertStatsIdentical(ep.measured, est_dw.measured,
                             "warmup 1 vs warmup 2");
    }
    std::cout << "contract tier passed (collapse, parallel==serial, "
                 "warmup-neutral)\n";

    // ---- Tier 2: day-scale headline -----------------------------
    // ~n requests over a diurnal day, 480 windows in 6 strata; the
    // sampled run measures 2 windows per stratum (plus 1 warmup
    // each) = 24 of 480 windows simulated, a 20x event-count
    // reduction. Serial-vs-serial walls keep the speedup a property
    // of the algorithm, not of the runner's core count.
    DayTraceParams day;
    day.requests = n;

    SampledSimOptions day_opts;
    day_opts.numWindows = 480;
    day_opts.strata = 6;
    day_opts.fraction = 0.03; // floor(0.03 * 80) = 2 per stratum
    day_opts.warmupWindows = 1;
    day_opts.serialExecution = true;

    const auto sim = makeSimulator(sys, model, day, day_opts);

    const WallTimer full_timer;
    const PipelineStats full = sim.fullRun();
    const double full_wall = full_timer.seconds();

    const WallTimer sampled_timer;
    const SampledEstimate est = sim.run();
    const double sampled_wall = sampled_timer.seconds();

    auto par_opts = day_opts;
    par_opts.serialExecution = false;
    const WallTimer par_timer;
    const SampledEstimate est_par =
        makeSimulator(sys, model, day, par_opts).run();
    const double sampled_par_wall = par_timer.seconds();
    assertStatsIdentical(est.measured, est_par.measured,
                         "day-scale parallel vs serial");

    const double full_tps = full.outputTokensPerSecond();
    const double rel_error =
        std::fabs(est.estTokensPerSecond - full_tps) / full_tps;
    const double speedup = full_wall / sampled_wall;

    std::cout << "\n=== Day-scale sampled simulation (" << n
              << " requests, " << day_opts.numWindows
              << " windows) ===\n"
              << "  full run:    " << formatDouble(full_tps, 1)
              << " tok/s in " << formatDouble(full_wall, 2)
              << " s wall\n"
              << "  sampled:     "
              << formatDouble(est.estTokensPerSecond, 1)
              << " +- " << formatDouble(est.ciTokensPerSecond, 1)
              << " tok/s (95% CI) in "
              << formatDouble(sampled_wall, 2) << " s wall\n"
              << "  rel. error:  "
              << formatDouble(rel_error * 100.0, 2) << "%\n"
              << "  coverage:    "
              << formatDouble(est.coverage * 100.0, 1)
              << "% of windows\n"
              << "  speedup:     " << formatDouble(speedup, 1)
              << "x (serial vs serial)\n";

    ouroAssert(est.ciValid,
               "day_trace: day-scale CI must be valid (needs >= 2 "
               "measured windows in some stratum)");
    ouroAssert(std::fabs(est.estTokensPerSecond - full_tps) <=
                   est.ciTokensPerSecond,
               "day_trace: full-run tokens/sec ", full_tps,
               " outside the sampled 95% CI ",
               est.estTokensPerSecond, " +- ",
               est.ciTokensPerSecond);
    ouroAssert(rel_error <= 0.05,
               "day_trace: sampled estimate off by ",
               rel_error * 100.0, "% (> 5%)");
    ouroAssert(speedup >= 10.0,
               "day_trace: sampled speedup ", speedup,
               "x below the 10x floor");

    BenchReport("day_trace")
        .metric("wall_seconds", total_timer.seconds())
        .metric("sampled_sim_speedup", speedup)
        .metric("sampled_estimate_rel_error", rel_error)
        .metric("coverage", est.coverage)
        .metric("trace_requests", day.requests)
        .metric("total_windows", est.totalWindows)
        .metric("measured_windows", est.measuredWindows)
        .metric("warmup_windows", est.warmupWindowsSimulated)
        .metric("full_wall_seconds", full_wall)
        .metric("sampled_wall_seconds", sampled_wall)
        .metric("sampled_parallel_wall_seconds", sampled_par_wall)
        .metric("full_tokens_per_second", full_tps)
        .metric("est_tokens_per_second", est.estTokensPerSecond)
        .metric("ci_tokens_per_second", est.ciTokensPerSecond)
        .metric("est_prefill_tokens_per_second",
                est.estPrefillTokensPerSecond)
        .metric("est_output_tokens", est.estOutputTokens)
        .metric("ci_output_tokens", est.ciOutputTokens)
        .metric("ttft_seconds_p50", est.p50TtftSeconds)
        .metric("ttft_seconds_p99", est.p99TtftSeconds)
        .metric("inter_token_seconds_p50", est.p50InterTokenSeconds)
        .metric("inter_token_seconds_p99", est.p99InterTokenSeconds)
        .timingCache(est.measured.timingCacheHits,
                     est.measured.timingCacheMisses)
        .text("determinism",
              "f=1.0 == fullRun, parallel == serial, warmup-neutral "
              "(all asserted)")
        .write();
    return 0;
}
