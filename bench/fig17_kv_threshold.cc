/**
 * @file
 * Fig. 17 - throughput and energy under different KV anti-thrashing
 * thresholds (0 .. 0.5), normalised to threshold 0, for LLaMA-13B
 * and T5-11B.
 *
 * Low thresholds admit aggressively and thrash (evictions trigger
 * full re-prefills); high thresholds reserve too much and starve
 * concurrency. The paper's curve rises then falls for throughput and
 * falls (roughly) monotonically for energy, with T5 more sensitive
 * (bigger attention heads -> bigger eviction cost).
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 120);

    std::cout << "=== Fig. 17: KV threshold sweep ===\n";
    Table table({"model", "threshold", "thpt(norm)", "energy(norm)",
                 "evictions", "recomputed"});

    for (const ModelConfig &model : {llama13b(), t5_11b()}) {
        // Long decodes against a loaded pool provoke thrashing.
        const Workload w =
            fixedWorkload(model.maxContext / 4,
                          model.maxContext / 2, n);
        double base_tps = 0.0;
        double base_energy = 0.0;
        for (const double threshold :
             {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
            OuroborosOptions opts;
            opts.kvThreshold = threshold;
            const auto sys = buildOuroboros(model, opts);
            const auto rep = sys.run(w);
            const double tps = rep.result.outputTokensPerSecond;
            const double energy =
                rep.result.energyPerTokenTotal();
            if (threshold == 0.0) {
                base_tps = tps;
                base_energy = energy;
            }
            table.row()
                .cell(model.name)
                .cell(threshold, 1)
                .cell(tps / base_tps, 3)
                .cell(energy / base_energy, 3)
                .cell(rep.pipeline.evictions)
                .cell(rep.pipeline.recomputedTokens);
        }
    }
    table.print(std::cout);
    std::cout << "\nShape check: evictions fall as the threshold "
                 "rises; throughput peaks at a\nmoderate threshold "
                 "then declines (reserved space starves "
                 "concurrency).\n";
    return 0;
}
