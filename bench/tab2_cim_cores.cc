/**
 * @file
 * Table 2 - circuit-level comparison of the CIM macros: VLSI'22,
 * ISSCC'22 (both scaled to 7 nm) and this work. Also prints the
 * derived Ouroboros core/crossbar characteristics from the Section 5
 * component numbers, so the "capacity-over-peak-efficiency" tradeoff
 * the paper argues for is visible.
 */

#include "bench_util.hh"

#include "hw/params.hh"

using namespace ouro;
using namespace ouro::bench;

int
main()
{
    setQuiet(true);
    std::cout << "=== Table 2: CIM core circuit-level comparison ===\n";
    Table table({"design", "TOPS/W", "TOPS/mm2", "wafer capacity[GB]",
                 "off-chip needed"});
    for (const CimMacroParams &macro :
         {cimVlsi22(), cimIsscc22(), cimOuroboros()}) {
        table.row()
            .cell(macro.name)
            .cell(macro.topsPerWatt, 2)
            .cell(macro.topsPerMm2, 2)
            .cell(macro.waferCapacityGB, 2)
            .cell(macro.needsOffChip ? "yes (HBM2 1.6TB/s)" : "no");
    }
    table.print(std::cout);

    std::cout << "\nDerived Ouroboros crossbar/core characteristics "
                 "(Section 5 components):\n";
    const CoreParams core;
    const auto &xbar = core.crossbar;
    Table derived({"quantity", "value"});
    derived.row().cell("crossbar GEMV cycles (1024 rows)").cell(
            static_cast<std::uint64_t>(xbar.gemvCycles(1024)));
    derived.row().cell("crossbar MACs/cycle").cell(
            xbar.macsPerCycle(), 1);
    derived.row().cell("crossbar energy/MAC [pJ]").cell(
            xbar.energyPerMac() / pJ, 4);
    derived.row().cell("core peak TOPS").cell(core.peakTops(), 2);
    derived.row().cell("core SRAM [MiB]").cell(
            static_cast<double>(core.sramBytes()) /
            static_cast<double>(MiB), 1);
    const WaferGeometry geom;
    derived.row().cell("wafer cores").cell(geom.numCores());
    derived.row().cell("wafer SRAM [GiB]").cell(
            static_cast<double>(geom.numCores() * core.sramBytes()) /
            static_cast<double>(GiB), 1);
    derived.print(std::cout);
    return 0;
}
