/**
 * @file
 * Fig. 15 - ablation study: Baseline -> +Wafer -> +CIM -> +TGP ->
 * +Mapping -> +KV Cache on LLaMA-13B and LLaMA-32B across the four
 * workloads. The baseline is 64 NVLink'd dies with tensor/pipeline
 * parallelism, sequence-grained pipelining, naive mapping and static
 * KV allocation; each row enables one more Ouroboros feature
 * cumulatively. Also reproduces the red-hatched observation: TGP
 * *without* CIM explodes energy (weights re-stream from SRAM per
 * token; paper reports ~78x on WikiText).
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

struct Step
{
    const char *name;
    OuroborosOptions opts;
};

std::vector<Step>
ablationLadder()
{
    OuroborosOptions base;
    base.waferScale = false;
    base.useCim = false;
    base.tokenGrained = false;
    base.smartMapping = false;
    base.dynamicKv = false;

    std::vector<Step> steps;
    steps.push_back({"Baseline", base});
    base.waferScale = true;
    steps.push_back({"+Wafer", base});
    base.useCim = true;
    steps.push_back({"+CIM", base});
    base.tokenGrained = true;
    steps.push_back({"+TGP", base});
    base.smartMapping = true;
    steps.push_back({"+Mapping", base});
    base.dynamicKv = true;
    steps.push_back({"+KV Cache", base});
    return steps;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 60);

    std::cout << "=== Fig. 15: ablation (normalized to Baseline) ===\n";
    Table table({"model", "workload", "config", "thpt(norm)",
                 "energy(norm)"});

    for (const ModelConfig &model : {llama13b(), llama32b()}) {
        // Build every configuration once per model; run all
        // workloads against the built systems.
        std::vector<std::pair<std::string, OuroborosSystem>> systems;
        for (const Step &step : ablationLadder())
            systems.emplace_back(step.name,
                                 buildOuroboros(model, step.opts));
        // Red-hatched configuration: TGP without CIM.
        OuroborosOptions hatched;
        hatched.waferScale = true;
        hatched.useCim = false;
        hatched.tokenGrained = true;
        hatched.smartMapping = false;
        hatched.dynamicKv = false;
        systems.emplace_back("+TGP w/o CIM",
                             buildOuroboros(model, hatched));

        for (const Workload &w : paperWorkloads(n)) {
            double base_tps = 0.0;
            double base_energy = 0.0;
            for (const auto &[name, sys] : systems) {
                const auto rep = sys.run(w);
                const double tps =
                    rep.result.outputTokensPerSecond;
                const double epj =
                    rep.result.energyPerTokenTotal();
                if (name == "Baseline") {
                    base_tps = tps;
                    base_energy = epj;
                }
                table.row()
                    .cell(model.name)
                    .cell(w.name)
                    .cell(name)
                    .cell(tps / base_tps, 2)
                    .cell(epj / base_energy, 2);
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper): each +step raises throughput "
                 "and lowers energy;\n+TGP w/o CIM energy blows up "
                 "(paper ~78x baseline on WikiText).\n";
    return 0;
}
