/**
 * @file
 * Fig. 15 - ablation study: Baseline -> +Wafer -> +CIM -> +TGP ->
 * +Mapping -> +KV Cache on LLaMA-13B and LLaMA-32B across the four
 * workloads. The baseline is 64 NVLink'd dies with tensor/pipeline
 * parallelism, sequence-grained pipelining, naive mapping and static
 * KV allocation; each row enables one more Ouroboros feature
 * cumulatively. Also reproduces the red-hatched observation: TGP
 * *without* CIM explodes energy (weights re-stream from SRAM per
 * token; paper reports ~78x on WikiText).
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

struct Step
{
    const char *name;
    OuroborosOptions opts;
};

std::vector<Step>
ablationLadder()
{
    OuroborosOptions base;
    base.waferScale = false;
    base.useCim = false;
    base.tokenGrained = false;
    base.smartMapping = false;
    base.dynamicKv = false;

    std::vector<Step> steps;
    steps.push_back({"Baseline", base});
    base.waferScale = true;
    steps.push_back({"+Wafer", base});
    base.useCim = true;
    steps.push_back({"+CIM", base});
    base.tokenGrained = true;
    steps.push_back({"+TGP", base});
    base.smartMapping = true;
    steps.push_back({"+Mapping", base});
    base.dynamicKv = true;
    steps.push_back({"+KV Cache", base});
    return steps;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 60);
    const WallTimer timer;

    std::cout << "=== Fig. 15: ablation (normalized to Baseline) ===\n";
    Table table({"model", "workload", "config", "thpt(norm)",
                 "energy(norm)"});

    // Sweep grid: every (model, config) builds its own system and
    // every (model, config, workload) cell runs independently, so
    // both phases fan out on the parallel runtime; each task writes
    // only its own slot, keeping results identical to a serial run.
    const std::vector<ModelConfig> models{llama13b(), llama32b()};
    std::vector<Step> steps = ablationLadder();
    OuroborosOptions hatched;
    hatched.waferScale = true;
    hatched.useCim = false;
    hatched.tokenGrained = true;
    hatched.smartMapping = false;
    hatched.dynamicKv = false;
    // Red-hatched configuration: TGP without CIM.
    steps.push_back({"+TGP w/o CIM", hatched});

    std::vector<std::optional<OuroborosSystem>> systems(
            models.size() * steps.size());
    parallelFor(systems.size(), [&](std::size_t i) {
        const std::size_t m = i / steps.size();
        const std::size_t s = i % steps.size();
        systems[i] = buildOuroboros(models[m], steps[s].opts);
    });

    const std::vector<Workload> workloads = paperWorkloads(n);
    struct Cell
    {
        double tps = 0.0;
        double epj = 0.0;
    };
    std::vector<Cell> cells(systems.size() * workloads.size());
    parallelFor(cells.size(), [&](std::size_t i) {
        const std::size_t sys_idx = i / workloads.size();
        const std::size_t w = i % workloads.size();
        const auto rep = systems[sys_idx]->run(workloads[w]);
        cells[i] = {rep.result.outputTokensPerSecond,
                    rep.result.energyPerTokenTotal()};
    });

    std::uint64_t runs = 0;
    for (std::size_t m = 0; m < models.size(); ++m) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            double base_tps = 0.0;
            double base_energy = 0.0;
            for (std::size_t s = 0; s < steps.size(); ++s) {
                const std::size_t sys_idx = m * steps.size() + s;
                const Cell &cell =
                    cells[sys_idx * workloads.size() + w];
                if (steps[s].name == std::string("Baseline")) {
                    base_tps = cell.tps;
                    base_energy = cell.epj;
                }
                table.row()
                    .cell(models[m].name)
                    .cell(workloads[w].name)
                    .cell(steps[s].name)
                    .cell(cell.tps / base_tps, 2)
                    .cell(cell.epj / base_energy, 2);
                ++runs;
            }
        }
    }
    table.print(std::cout);
    BenchReport("fig15_ablation")
        .metric("wall_seconds", timer.seconds())
        .metric("events_per_sec",
                static_cast<double>(runs) / timer.seconds())
        .metric("runs", runs)
        .write();
    std::cout << "\nShape check (paper): each +step raises throughput "
                 "and lowers energy;\n+TGP w/o CIM energy blows up "
                 "(paper ~78x baseline on WikiText).\n";
    return 0;
}
