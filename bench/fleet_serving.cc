/**
 * @file
 * Fleet-serving bench (PR 10): a deterministic cluster router over N
 * wafers with parallel per-wafer simulation - the ROADMAP's "heavy
 * traffic from millions of users" scale axis, served rather than
 * analytically swept.
 *
 * Asserted on EVERY run:
 *  - the parallel fleet run is bit-identical to the serial one
 *    (per-wafer stats, fleet fold AND the dispatch assignment) - the
 *    PR 1 sweep contract extended to serving;
 *  - the fast ordered-set dispatch equals the linear-scan oracle;
 *  - an N=1 fleet is bit-identical to a direct runPipeline over the
 *    same pool and options - the plain-serving collapse oracle;
 *  - replaying the fleet run is bitwise deterministic (stats,
 *    assignment AND resolved storm events);
 *  - a storm configuration with a ZERO-failure schedule is
 *    bit-identical to the no-storm fleet.
 *
 * BENCH_fleet_serving.json records fleet_tokens_per_sec (simulated
 * serving throughput over the slowest wafer's makespan),
 * fleet_parallel_speedup (read together with detected_cores - ~1x on
 * 1-core runners by design), per-wafer and fleet-wide TTFT/ITL
 * percentiles, and the storm wafer's goodput ratio vs the no-storm
 * fleet.
 *
 * argv[1] = request count (default 1024), argv[2] = wafers (4).
 */

#include <algorithm>
#include <string>

#include "bench_util.hh"

#include "sim/fleet.hh"
#include "workload/trace.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

/** Every field of two PipelineStats must agree exactly (bin width,
 *  histogram, storm fields and latency samples included). */
void
assertSameStats(const PipelineStats &a, const PipelineStats &b,
                const char *what)
{
    ouroAssert(a.makespanSeconds == b.makespanSeconds &&
               a.tokensProcessed == b.tokensProcessed &&
               a.outputTokens == b.outputTokens &&
               a.bottleneckBusySeconds == b.bottleneckBusySeconds &&
               a.utilization == b.utilization &&
               a.bubbleFraction == b.bubbleFraction &&
               a.evictions == b.evictions &&
               a.recomputedTokens == b.recomputedTokens &&
               a.stormEvictions == b.stormEvictions &&
               a.stormReprefilledTokens == b.stormReprefilledTokens &&
               a.skippedRequests == b.skippedRequests &&
               a.peakConcurrency == b.peakConcurrency &&
               a.avgContext == b.avgContext &&
               a.itemsProcessed == b.itemsProcessed &&
               a.contextTokensSum == b.contextTokensSum &&
               a.stageBusySumSeconds == b.stageBusySumSeconds &&
               a.ttftSamples == b.ttftSamples &&
               a.interTokenSamples == b.interTokenSamples &&
               a.outputTokenBins == b.outputTokenBins &&
               a.throughputBinSeconds == b.throughputBinSeconds,
               "fleet_serving: ", what);
}

void
assertSameFleet(const FleetResult &a, const FleetResult &b,
                const char *what)
{
    ouroAssert(a.assignment == b.assignment,
               "fleet_serving: ", what, " (assignment)");
    ouroAssert(a.requestsPerWafer == b.requestsPerWafer &&
               a.tokensCommitted == b.tokensCommitted &&
               a.dispatchWeight == b.dispatchWeight,
               "fleet_serving: ", what, " (dispatch counters)");
    ouroAssert(a.wafers.size() == b.wafers.size(),
               "fleet_serving: ", what, " (wafer count)");
    for (std::size_t w = 0; w < a.wafers.size(); ++w)
        assertSameStats(a.wafers[w], b.wafers[w], what);
    assertSameStats(a.fleet, b.fleet, what);
    ouroAssert(a.failuresInjected == b.failuresInjected &&
               a.failuresHandled == b.failuresHandled &&
               a.kvCoresLost == b.kvCoresLost &&
               a.kvCoresAdopted == b.kvCoresAdopted &&
               a.borrows == b.borrows &&
               a.events.size() == b.events.size(),
               "fleet_serving: ", what, " (storm resolution)");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 1024);
    const std::uint32_t wafers =
        argc > 2 && std::atol(argv[2]) > 0
            ? static_cast<std::uint32_t>(std::atol(argv[2]))
            : 4;
    const WallTimer total_timer;

    std::cout << "=== Fleet serving: " << n << " requests over "
              << wafers << " wafers ===\n";

    const ModelConfig model = llama13b();
    const auto sys = buildOuroboros(model);

    // A diurnal-day trace stands in for fleet traffic; the fleet
    // layer serves the materialized window (bit-identical to slicing
    // a whole-day generation - the DayTrace purity contract).
    DayTraceParams tparams;
    tparams.requests = n;
    tparams.seed = 20260808;
    tparams.maxLen = 512;
    const DayTrace trace(tparams);
    const Workload day = trace.window(0.0, trace.daySeconds());
    ouroAssert(day.requests.size() == n,
               "fleet_serving: trace window dropped requests");

    FleetOptions fopts;
    fopts.numWafers = wafers;

    // --- Oracle (a): parallel == serial, bit for bit. ---
    FleetOptions serial_opts = fopts;
    serial_opts.serialExecution = true;
    const WallTimer serial_timer;
    const FleetResult serial = runFleetServing(sys, day,
                                               serial_opts);
    const double serial_wall = serial_timer.seconds();

    const WallTimer parallel_timer;
    const FleetResult fleet = runFleetServing(sys, trace, 0.0,
                                              trace.daySeconds(),
                                              fopts);
    const double parallel_wall = parallel_timer.seconds();
    assertSameFleet(serial, fleet,
                    "parallel fleet diverged from serial");

    // --- Oracle (b): the fast dispatch equals the scan oracle. ---
    {
        FleetDispatchConfig cfg;
        cfg.numWafers = wafers;
        ouroAssert(fleetDispatchScan(day, cfg) == fleet.assignment,
                   "fleet_serving: set-based dispatch diverged from "
                   "the scan oracle");
    }

    // --- Oracle (c): replay determinism. ---
    assertSameFleet(fleet, runFleetServing(sys, day, fopts),
                    "fleet replay diverged");

    // --- Oracle (d): N=1 collapses to the plain serving path. ---
    {
        FleetOptions one = fopts;
        one.numWafers = 1;
        const FleetResult single = runFleetServing(sys, day, one);
        BlockKvManager kv(model, sys.scorePool(), sys.contextPool(),
                          128, sys.options().kvThreshold);
        PipelineOptions popts;
        popts.kind = PipelineKind::TokenGrained;
        popts.attentionParallelism = fopts.attentionParallelism;
        const PipelineStats plain = runPipeline(
                day, model, sys.stageTiming(), kv, popts);
        assertSameStats(single.fleet, plain,
                        "N=1 fleet diverged from the plain serving "
                        "path");
        assertSameStats(single.wafers[0], plain,
                        "N=1 wafer slot diverged from the plain "
                        "serving path");
    }

    // --- Storm tier: wafer 1 (or 0 when N=1) takes a failure storm;
    // the router derates its weight off the resolved pool loss. ---
    const std::uint32_t storm_wafer = wafers > 1 ? 1 : 0;
    constexpr double kBins = 64.0;
    const double bin_w = fleet.fleet.makespanSeconds / kBins;
    ouroAssert(bin_w > 0.0, "fleet_serving: empty fleet run");

    FleetOptions binned = fopts;
    binned.throughputBinSeconds = bin_w;
    const FleetResult nostorm = runFleetServing(sys, day, binned);

    // Oracle (e): a zero-failure schedule is bit-identical to the
    // no-storm fleet.
    FleetOptions zero = binned;
    zero.stormWafer = storm_wafer;
    zero.injector.failures = 0;
    assertSameFleet(runFleetServing(sys, day, zero), nostorm,
                    "zero-failure storm fleet diverged from the "
                    "no-storm fleet");

    // The real storm: failures across [30%, 50%] of the storm
    // wafer's clean makespan.
    const double wafer_makespan =
        nostorm.wafers[storm_wafer].makespanSeconds;
    FleetOptions storm_opts = binned;
    storm_opts.stormWafer = storm_wafer;
    storm_opts.injector.failures = 16;
    storm_opts.injector.stormStart = 0.30 * wafer_makespan;
    storm_opts.injector.stormDuration = 0.20 * wafer_makespan;
    storm_opts.injector.seed = 20260808;
    storm_opts.injector.weightFailureFraction = 0.25;
    const FleetResult storm = runFleetServing(sys, day, storm_opts);
    assertSameFleet(storm, runFleetServing(sys, day, storm_opts),
                    "storm fleet replay diverged");
    ouroAssert(storm.failuresHandled > 0 && !storm.events.empty(),
               "fleet_serving: storm resolved no failures");
    ouroAssert(storm.dispatchWeight[storm_wafer] <= 1.0,
               "fleet_serving: storm wafer weight not derated");
    ouroAssert(storm.requestsPerWafer[storm_wafer] <=
                       nostorm.requestsPerWafer[storm_wafer],
               "fleet_serving: router did not drain the degraded "
               "wafer");

    // Degradation / recovery off the fleet-wide aligned histogram.
    const auto &bins = storm.fleet.outputTokenBins;
    const double storm_start = storm_opts.injector.stormStart;
    const double storm_end = storm.events.back().time;
    const auto bin_of = [&](double t) {
        return static_cast<std::size_t>(t / bin_w);
    };
    const std::size_t pre_hi =
        std::min(bin_of(storm_start), bins.size());
    const std::size_t pre_lo = pre_hi / 2;
    double pre_rate = 0.0;
    if (pre_hi > pre_lo) {
        for (std::size_t b = pre_lo; b < pre_hi; ++b)
            pre_rate += static_cast<double>(bins[b]);
        pre_rate /= static_cast<double>(pre_hi - pre_lo);
    }
    double depth_rate = pre_rate;
    for (std::size_t b = bin_of(storm_start);
         b <= bin_of(storm_end) && b < bins.size(); ++b)
        depth_rate = std::min(depth_rate,
                              static_cast<double>(bins[b]));
    const double degradation_depth =
        pre_rate > 0.0 ? depth_rate / pre_rate : 1.0;
    // First bin after the schedule drains that recovers to 90% of
    // the pre-storm fleet rate (drain tail excluded); -1 when the
    // run ends first. Recorded, not asserted: the router's load
    // shift makes the storm wafer drain early by design.
    double recovery_seconds = -1.0;
    const std::size_t tail =
        bins.size() >= 2 ? bins.size() - 2 : bins.size();
    for (std::size_t b = bin_of(storm_end) + 1; b < tail; ++b) {
        if (static_cast<double>(bins[b]) >= 0.9 * pre_rate) {
            recovery_seconds = std::max(
                    0.0, static_cast<double>(b) * bin_w - storm_end);
            break;
        }
    }

    const double storm_goodput_ratio =
        nostorm.wafers[storm_wafer].outputTokensPerSecond() > 0.0
            ? storm.wafers[storm_wafer].outputTokensPerSecond() /
                  nostorm.wafers[storm_wafer]
                      .outputTokensPerSecond()
            : 0.0;
    const double fleet_goodput_ratio =
        nostorm.fleet.outputTokensPerSecond() > 0.0
            ? storm.fleet.outputTokensPerSecond() /
                  nostorm.fleet.outputTokensPerSecond()
            : 0.0;

    const double fleet_tps = fleet.fleet.outputTokensPerSecond();
    const double speedup =
        parallel_wall > 0.0 ? serial_wall / parallel_wall : 1.0;

    Table table({"wafer", "requests", "tokens", "weight",
                 "makespan_s", "out_tok/s", "ttft_p50_s"});
    for (std::uint32_t w = 0; w < wafers; ++w) {
        table.row()
            .cell(std::to_string(w))
            .cell(std::to_string(fleet.requestsPerWafer[w]))
            .cell(std::to_string(fleet.tokensCommitted[w]))
            .cell(fleet.dispatchWeight[w], 2)
            .cell(fleet.wafers[w].makespanSeconds, 3)
            .cell(fleet.wafers[w].outputTokensPerSecond(), 1)
            .cell(percentileOf(fleet.wafers[w].ttftSamples, 50.0),
                  4);
    }
    table.print(std::cout);
    std::cout << "\nFleet: "
              << formatDouble(fleet_tps, 1)
              << " output tokens/s over "
              << formatDouble(fleet.fleet.makespanSeconds, 3)
              << " s (slowest wafer); parallel speedup "
              << formatDouble(speedup, 2) << "x\nStorm (wafer "
              << storm_wafer << "): " << storm.failuresHandled
              << " failures recovered, weight derated to "
              << formatDouble(storm.dispatchWeight[storm_wafer], 3)
              << ", goodput ratio "
              << formatDouble(storm_goodput_ratio, 3)
              << " (fleet " << formatDouble(fleet_goodput_ratio, 3)
              << "), degradation depth "
              << formatDouble(degradation_depth, 3) << "\n"
              << "parallel==serial, dispatch fast==scan, N=1 "
                 "collapse, replay and zero-failure==no-storm all "
                 "bit-identical (asserted).\n";

    BenchReport report("fleet_serving");
    report.metric("wall_seconds", total_timer.seconds())
        .metric("num_wafers", static_cast<std::uint64_t>(wafers))
        .metric("requests", static_cast<std::uint64_t>(n))
        .metric("fleet_tokens_per_sec", fleet_tps)
        .metric("fleet_parallel_speedup", speedup)
        .metric("fleet_serial_wall_seconds", serial_wall)
        .metric("fleet_parallel_wall_seconds", parallel_wall)
        .metric("events_per_sec",
                parallel_wall > 0.0
                    ? static_cast<double>(
                              fleet.fleet.tokensProcessed) /
                          parallel_wall
                    : 0.0)
        .metric("fleet_makespan_seconds",
                fleet.fleet.makespanSeconds)
        .metric("fleet_skipped_requests",
                fleet.fleet.skippedRequests)
        .metric("storm_wafer",
                static_cast<std::uint64_t>(storm_wafer))
        .metric("storm_wafer_goodput_ratio", storm_goodput_ratio)
        .metric("storm_fleet_goodput_ratio", fleet_goodput_ratio)
        .metric("storm_degradation_depth", degradation_depth)
        .metric("storm_recovery_seconds", recovery_seconds)
        .metric("storm_wafer_weight",
                storm.dispatchWeight[storm_wafer])
        .metric("storm_failures_handled", storm.failuresHandled)
        .metric("storm_kv_cores_lost", storm.kvCoresLost)
        .metric("storm_kv_cores_adopted", storm.kvCoresAdopted)
        .metric("storm_borrows", storm.borrows)
        .metric("storm_evicted_requests",
                storm.fleet.stormEvictions)
        .metric("throughput_bin_seconds", bin_w)
        .percentiles("fleet_ttft_seconds", fleet.fleet.ttftSamples)
        .percentiles("fleet_inter_token_seconds",
                     fleet.fleet.interTokenSamples);
    // Per-wafer latency percentiles (capped at 8 wafers to keep the
    // record schema bounded at large N).
    for (std::uint32_t w = 0; w < std::min(wafers, 8u); ++w) {
        const std::string prefix = "wafer" + std::to_string(w);
        report
            .percentiles(prefix + "_ttft_seconds",
                         fleet.wafers[w].ttftSamples)
            .percentiles(prefix + "_inter_token_seconds",
                         fleet.wafers[w].interTokenSamples)
            .metric(prefix + "_requests", fleet.requestsPerWafer[w]);
    }
    report
        .text("determinism",
              "parallel==serial; dispatch fast==scan; N=1 collapse; "
              "replay bitwise; zero-failure storm==no-storm (all "
              "asserted)")
        .write();
    return 0;
}
