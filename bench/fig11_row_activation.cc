/**
 * @file
 * Fig. 11 - throughput under different crossbar row-activation
 * ratios (LLaMA-13B).
 *
 * Higher ratios activate more rows per cycle (faster GEMVs) but need
 * proportionally more peripheral logic (adder trees, sense amps);
 * with the core area fixed at 2.97 mm^2 that displaces SRAM arrays,
 * shrinking KV capacity and hence decode concurrency. The paper's
 * sweet spot is 1/32: below it the fabric is computation-bound,
 * above it SRAM-capacity-bound.
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 150);
    const ModelConfig model = llama13b();
    // Long-context decode stresses KV capacity: this is where the
    // high-ratio (SRAM-poor) configurations lose their concurrency.
    const Workload workload = fixedWorkload(1024, 1024, n);

    std::cout << "=== Fig. 11: throughput vs row-activation ratio "
                 "(LLaMA-13B) ===\n";
    Table table({"ratio", "crossbars/core", "core SRAM[MiB]",
                 "tokens/s", "norm", "regime"});

    // Area model from the Section 5 components: one crossbar is
    // 0.063 mm^2 of array plus 0.0138 mm^2 of MAC/adder logic at the
    // 1/32 ratio; logic scales with the rows activated per cycle.
    const double array_mm2 = 0.063;
    const double logic_mm2_at_32 = 0.0023 + 0.0093 + 0.0022;
    const double core_budget_mm2 = 2.97 * (32.0 * (array_mm2 +
            logic_mm2_at_32)) / 2.97; // crossbar share of the core

    struct Point
    {
        double ratio;
        double tps;
        std::uint32_t xbars;
    };
    std::vector<Point> points;

    for (const double denom : {128.0, 64.0, 32.0, 16.0, 8.0, 4.0}) {
        const double ratio = 1.0 / denom;
        OuroborosParams params;
        params.core.crossbar.rowActiveRatio = ratio;
        const double logic = logic_mm2_at_32 * (ratio / (1.0 / 32.0));
        const auto xbars = static_cast<std::uint32_t>(
                core_budget_mm2 / (array_mm2 + logic));
        params.core.numCrossbars = std::max(2u, std::min(64u, xbars));

        const auto sys = buildOuroboros(model, {}, params);
        const auto rep = sys.run(workload);
        points.push_back({ratio, rep.result.outputTokensPerSecond,
                          params.core.numCrossbars});
    }

    double best = 0.0;
    for (const auto &p : points)
        best = std::max(best, p.tps);
    for (const auto &p : points) {
        OuroborosParams probe;
        probe.core.numCrossbars = p.xbars;
        table.row()
            .cell("1/" + std::to_string(
                    static_cast<int>(1.0 / p.ratio)))
            .cell(static_cast<int>(p.xbars))
            .cell(static_cast<double>(probe.core.sramBytes()) /
                  static_cast<double>(MiB), 1)
            .cell(p.tps, 0)
            .cell(p.tps / best, 2)
            .cell(p.ratio < 1.0 / 32.0 ? "computation-bound"
                  : p.ratio > 1.0 / 32.0 ? "SRAM-capacity-bound"
                                         : "sweet spot");
    }
    table.print(std::cout);
    std::cout << "\nShape check: throughput peaks near 1/32 (paper's "
                 "chosen ratio).\n";
    return 0;
}
