/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * crossbar GEMV pricing, NoC routing (clean, faulted and cached),
 * route pricing (RouteMeta summary vs the retained path walk),
 * traffic accumulation (flat per-link loads), the intra-core DP, KV
 * admission/growth, the MIQP objective / moveDelta / swapDelta on
 * both the sparse flow-graph engine and the dense reference, the
 * wafer-level recovery service's failure handling and dry-pool KV
 * borrowing, day-trace window materialization, the sampled-window
 * simulator, and the RNG. These guard the simulator's own
 * performance (the figure harnesses run millions of these calls).
 */

#include <benchmark/benchmark.h>

#include "common/logging.hh"

#include "common/rng.hh"
#include "hw/crossbar.hh"
#include "hw/yield.hh"
#include "kvcache/manager.hh"
#include "mapping/dp.hh"
#include "mapping/mappers.hh"
#include "mapping/problem.hh"
#include "mapping/wafer_mapping.hh"
#include "model/llm.hh"
#include "noc/mesh.hh"
#include "runtime/recovery_service.hh"
#include "sim/fleet.hh"
#include "sim/sampled_run.hh"
#include "workload/trace.hh"

namespace
{

using namespace ouro;

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_CrossbarGemv(benchmark::State &state)
{
    Crossbar xbar{CrossbarParams{}};
    xbar.assignWeights(1024, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(xbar.gemv());
}
BENCHMARK(BM_CrossbarGemv);

void
BM_MeshRouteClean(benchmark::State &state)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    for (auto _ : state) {
        benchmark::DoNotOptimize(
                noc.route({0, 0},
                          {static_cast<std::uint32_t>(state.range(0)),
                           static_cast<std::uint32_t>(
                                   state.range(0))}));
    }
}
BENCHMARK(BM_MeshRouteClean)->Arg(8)->Arg(32)->Arg(100);

void
BM_MeshRouteFaulted(benchmark::State &state)
{
    const WaferGeometry geom;
    DefectMap defects(geom);
    Rng rng(3);
    const YieldParams yield;
    const DefectMap random_defects(geom, yield, rng);
    const MeshNoc noc(geom, NocParams{}, &random_defects);
    for (auto _ : state)
        benchmark::DoNotOptimize(noc.route({0, 0}, {100, 100}));
}
BENCHMARK(BM_MeshRouteFaulted);

void
BM_MeshRouteCached(benchmark::State &state)
{
    // Repeated (src, dst) lookups hit the route cache after the first
    // computation - the TrafficAccumulator / transferCost hot path.
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    for (auto _ : state)
        benchmark::DoNotOptimize(noc.routeCached({0, 0}, {100, 100}));
}
BENCHMARK(BM_MeshRouteCached);

void
BM_TrafficAccumulate(benchmark::State &state)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    for (auto _ : state) {
        TrafficAccumulator traffic(noc);
        for (std::uint32_t i = 0; i < 64; ++i)
            traffic.addFlow({i, 0}, {i, 16}, 4096);
        benchmark::DoNotOptimize(traffic.bottleneckSeconds());
    }
}
BENCHMARK(BM_TrafficAccumulate);

void
BM_TrafficAccumulateReused(benchmark::State &state)
{
    // Steady-state accumulation: one accumulator cleared per round,
    // flat per-link loads + cached routes on the hot path.
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    for (auto _ : state) {
        traffic.clear();
        for (std::uint32_t i = 0; i < 64; ++i)
            traffic.addFlow({i, 0}, {i, 16}, 4096);
        benchmark::DoNotOptimize(traffic.bottleneckSeconds());
    }
}
BENCHMARK(BM_TrafficAccumulateReused);

void
BM_TransferCostPriced(benchmark::State &state)
{
    // Pricing a cached route: Arg(0) walks the path per call (the
    // retained oracle), Arg(1) prices from the RouteMeta summary.
    // Both are bit-identical (tests pin it); this measures the win.
    const WaferGeometry geom;
    MeshNoc noc(geom, NocParams{});
    noc.setPriceFromMeta(state.range(0) != 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
                noc.transferCost({0, 0}, {100, 100}, 4096));
    }
}
BENCHMARK(BM_TransferCostPriced)->Arg(0)->Arg(1);

void
BM_AddFlowPriced(benchmark::State &state)
{
    // Steady-state accumulation with Arg(0) the per-hop path walk
    // and Arg(1) the streamed precomputed slot list.
    const WaferGeometry geom;
    MeshNoc noc(geom, NocParams{});
    noc.setPriceFromMeta(state.range(0) != 0);
    TrafficAccumulator traffic(noc);
    for (auto _ : state) {
        traffic.clear();
        for (std::uint32_t i = 0; i < 64; ++i)
            traffic.addFlow({i, 0}, {i, 16}, 4096);
        benchmark::DoNotOptimize(traffic.bottleneckSeconds());
    }
}
BENCHMARK(BM_AddFlowPriced)->Arg(0)->Arg(1);

void
BM_DpLeafAssignment(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
                dpLeafAssignment({9, 7, 5, 3, 2}, 32));
    }
}
BENCHMARK(BM_DpLeafAssignment);

/** Shared fixture for the MIQP cost-engine benchmarks. */
struct MiqpFixture
{
    WaferGeometry geom;
    std::vector<CoreCoord> region;
    MappingProblem problem;
    Assignment assignment;

    MiqpFixture()
        : region([this] {
              const auto order = geom.sShapedOrder();
              return std::vector<CoreCoord>(order.begin(),
                                            order.begin() + 128);
          }()),
          problem(llama13b(), CoreParams{}, geom, region),
          assignment(GreedyMapper{}.solve(problem))
    {
    }
};

void
BM_MiqpObjective(benchmark::State &state)
{
    const MiqpFixture fx;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
                fx.problem.assignmentCost(fx.assignment));
    }
}
BENCHMARK(BM_MiqpObjective);

void
BM_MiqpObjectiveDense(benchmark::State &state)
{
    const MiqpFixture fx;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
                fx.problem.assignmentCostDense(fx.assignment));
    }
}
BENCHMARK(BM_MiqpObjectiveDense);

void
BM_MoveDeltaSparse(benchmark::State &state)
{
    const MiqpFixture fx;
    std::size_t t = 0;
    for (auto _ : state) {
        t = (t + 1) % fx.problem.tiles().size();
        benchmark::DoNotOptimize(fx.problem.moveDelta(
                fx.assignment, t,
                static_cast<std::uint32_t>(fx.region.size() - 1)));
    }
}
BENCHMARK(BM_MoveDeltaSparse);

void
BM_MoveDeltaDense(benchmark::State &state)
{
    const MiqpFixture fx;
    std::size_t t = 0;
    for (auto _ : state) {
        t = (t + 1) % fx.problem.tiles().size();
        benchmark::DoNotOptimize(fx.problem.moveDeltaDense(
                fx.assignment, t,
                static_cast<std::uint32_t>(fx.region.size() - 1)));
    }
}
BENCHMARK(BM_MoveDeltaDense);

void
BM_SwapDeltaSparse(benchmark::State &state)
{
    const MiqpFixture fx;
    std::size_t t = 0;
    const std::size_t n = fx.problem.tiles().size();
    for (auto _ : state) {
        t = (t + 1) % (n - 1);
        benchmark::DoNotOptimize(
                fx.problem.swapDelta(fx.assignment, t, t + 1));
    }
}
BENCHMARK(BM_SwapDeltaSparse);

void
BM_SwapDeltaDense(benchmark::State &state)
{
    const MiqpFixture fx;
    std::size_t t = 0;
    const std::size_t n = fx.problem.tiles().size();
    for (auto _ : state) {
        t = (t + 1) % (n - 1);
        benchmark::DoNotOptimize(
                fx.problem.swapDeltaDense(fx.assignment, t, t + 1));
    }
}
BENCHMARK(BM_SwapDeltaDense);

/** Twin-engine fixture: the exact instance and the fused opt-in. */
struct FusedFixture
{
    WaferGeometry geom;
    std::vector<CoreCoord> region;
    MappingProblem exact;
    MappingProblem fused;
    Assignment assignment;

    FusedFixture()
        : region([this] {
              const auto order = geom.sShapedOrder();
              return std::vector<CoreCoord>(order.begin(),
                                            order.begin() + 128);
          }()),
          exact(llama13b(), CoreParams{}, geom, region, 2.0, nullptr,
                MappingEngineOptions{true, 1024, false}),
          fused(llama13b(), CoreParams{}, geom, region, 2.0, nullptr,
                MappingEngineOptions{true, 1024, true}),
          assignment(GreedyMapper{}.solve(exact))
    {
    }
};

void
BM_AssignmentCostFused(benchmark::State &state)
{
    // Arg(0): the exact two-gather engine (the oracle). Arg(1): the
    // fused single-gather product table (epsilon-exact tier).
    const FusedFixture fx;
    const MappingProblem &problem =
        state.range(0) != 0 ? fx.fused : fx.exact;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
                problem.assignmentCost(fx.assignment));
    }
}
BENCHMARK(BM_AssignmentCostFused)->Arg(0)->Arg(1);

void
BM_MoveDeltaBatch(benchmark::State &state)
{
    // Args({K, engine}): price K candidate slots per call through the
    // SoA batch kernel. engine 0 = exact oracle tables, 1 = fused
    // product table. K=1 isolates the batch plumbing overhead; K=64
    // is the amortized steady state the annealer's proposal rounds
    // hit.
    const FusedFixture fx;
    const MappingProblem &problem =
        state.range(1) != 0 ? fx.fused : fx.exact;
    const auto k = static_cast<std::size_t>(state.range(0));
    std::vector<std::uint32_t> cand(k);
    for (std::size_t i = 0; i < k; ++i) {
        cand[i] = static_cast<std::uint32_t>(
                (fx.region.size() - 1 - i) % fx.region.size());
    }
    MappingProblem::MoveScratch scratch;
    std::vector<double> deltas(k);
    std::size_t t = 0;
    for (auto _ : state) {
        t = (t + 1) % problem.tiles().size();
        problem.moveDeltaBatch(fx.assignment, t, cand.data(), k,
                               scratch, deltas.data());
        benchmark::DoNotOptimize(deltas.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(k));
}
BENCHMARK(BM_MoveDeltaBatch)
        ->Args({1, 0})
        ->Args({1, 1})
        ->Args({8, 0})
        ->Args({8, 1})
        ->Args({64, 0})
        ->Args({64, 1});

void
BM_AddFlowBlocked(benchmark::State &state)
{
    // Long-route accumulation: Arg(0) per-hop path walk (oracle),
    // Arg(1) the blocked slot-list stream with hoisted per-route
    // constants. 200-hop routes make the inner loop, not the route
    // lookup, the measured cost.
    const WaferGeometry geom;
    MeshNoc noc(geom, NocParams{});
    noc.setPriceFromMeta(state.range(0) != 0);
    TrafficAccumulator traffic(noc);
    std::int64_t hops = 0;
    for (auto _ : state) {
        traffic.clear();
        for (std::uint32_t i = 0; i < 8; ++i)
            traffic.addFlow({i, 0}, {100 + i, 100}, 4096);
        benchmark::DoNotOptimize(traffic.bottleneckSeconds());
        hops += 8 * 200;
    }
    state.SetItemsProcessed(hops);
}
BENCHMARK(BM_AddFlowBlocked)->Arg(0)->Arg(1);

void
BM_KvAdmitRelease(benchmark::State &state)
{
    const ModelConfig cfg = llama13b();
    std::vector<KvCoreInfo> score, context;
    for (std::uint32_t i = 0; i < 64; ++i) {
        score.push_back({{0, i}, 32, 8});
        context.push_back({{1, i}, 32, 8});
    }
    BlockKvManager mgr(cfg, score, context);
    std::uint64_t id = 0;
    for (auto _ : state) {
        mgr.admit(id, 512);
        mgr.release(id);
        ++id;
    }
}
BENCHMARK(BM_KvAdmitRelease);

void
BM_KvGrow(benchmark::State &state)
{
    const ModelConfig cfg = llama13b();
    std::vector<KvCoreInfo> score, context;
    for (std::uint32_t i = 0; i < 64; ++i) {
        score.push_back({{0, i}, 32, 8});
        context.push_back({{1, i}, 32, 8});
    }
    BlockKvManager mgr(cfg, score, context);
    mgr.admit(1, 1);
    std::uint64_t grown = 0;
    for (auto _ : state) {
        if (!mgr.grow(1).ok || ++grown > 100000) {
            mgr.release(1);
            mgr.admit(1, 1);
            grown = 0;
        }
    }
}
BENCHMARK(BM_KvGrow);

void
BM_MidRunPoolShrink(benchmark::State &state)
{
    // Mid-run KV pool shrink (the PR 9 storm-eviction path). Arg(1)
    // is the in-place dropCore fast path: release the residents on
    // the dead core, fence it, leave everyone else's handles alive.
    // Arg(0) is the rebuild oracle: scan every resident's head
    // placements for the dead coordinate, construct a fresh manager
    // over the surviving cores and re-admit every survivor - the
    // cost a serving engine would pay without mid-run pool mutation.
    const bool fast = state.range(0) == 1;
    const ModelConfig cfg = llama13b();
    const CoreCoord dead{0, 0};
    auto make_pools = [] {
        std::pair<std::vector<KvCoreInfo>, std::vector<KvCoreInfo>>
                p;
        for (std::uint32_t i = 0; i < 64; ++i) {
            p.first.push_back({{0, i}, 32, 8});
            p.second.push_back({{1, i}, 32, 8});
        }
        return p;
    };
    constexpr std::uint64_t kResidents = 64;
    const auto heads = static_cast<std::uint32_t>(cfg.numKvHeads);
    std::uint64_t shrinks = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto [score, context] = make_pools();
        BlockKvManager mgr(cfg, score, context);
        for (std::uint64_t id = 0; id < kResidents; ++id)
            mgr.admit(id, 256);
        state.ResumeTiming();
        if (fast) {
            benchmark::DoNotOptimize(mgr.dropCore(dead));
        } else {
            std::vector<std::uint64_t> survivors;
            for (std::uint64_t id = 0; id < kResidents; ++id) {
                if (!mgr.resident(id))
                    continue;
                bool hit = false;
                for (std::uint32_t h = 0; h < heads && !hit; ++h) {
                    const auto hp = mgr.headPlacement(id, h);
                    hit = mgr.scoreCoord(hp.scoreCore) == dead ||
                          mgr.contextCoord(hp.contextCore) == dead;
                }
                if (!hit)
                    survivors.push_back(id);
            }
            auto [s2, c2] = make_pools();
            s2.erase(s2.begin()); // {0,0} is score ring slot 0
            BlockKvManager rebuilt(cfg, s2, c2);
            for (const auto id : survivors)
                rebuilt.admit(id, 256);
            benchmark::DoNotOptimize(rebuilt.numResident());
        }
        ++shrinks;
    }
    state.SetItemsProcessed(shrinks);
}
BENCHMARK(BM_MidRunPoolShrink)->Arg(0)->Arg(1);

/** Shared fixture for the wafer-level recovery-service kernels: a
 *  small wafer keeps per-iteration service rebuilds cheap while the
 *  handled failures still exercise the full path (ownership lookup,
 *  index chain construction, inter-block re-pricing). */
struct RecoveryFixture
{
    WaferGeometry geom{2, 2, 8, 8};
    ModelConfig model;
    std::optional<WaferMapping> mapping;

    RecoveryFixture()
    {
        model.name = "tiny";
        model.numBlocks = 2;
        model.hiddenDim = 1024;
        model.numHeads = 8;
        model.numKvHeads = 8;
        model.headDim = 128;
        model.ffnDim = 4096;
        model.ffnMatrices = 2;
        model.vocabSize = 1000;
        model.bytesPerParam = 1;
        model.maxContext = 2048;
        WaferMappingOptions opts;
        opts.mapper = MapperKind::Greedy;
        mapping = WaferMapping::build(model, CoreParams{}, geom,
                                      nullptr, 0, model.numBlocks,
                                      opts);
    }
};

void
BM_RecoveryServiceFailure(benchmark::State &state)
{
    // The service's hot path: handleCoreFailure on a weight core -
    // ownership lookup, index-backed chain construction, placement
    // mutation, inter-block flow re-pricing over the cached mesh.
    const RecoveryFixture fix;
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    constexpr int kFailures = 16;
    for (auto _ : state) {
        state.PauseTiming();
        RecoveryService service(*fix.mapping, NocParams{},
                                tile_bytes, nullptr);
        const std::uint32_t tiles = fix.mapping->tilesPerBlock();
        state.ResumeTiming();
        for (int k = 0; k < kFailures; ++k) {
            benchmark::DoNotOptimize(service.handleCoreFailure(
                    service.placement(0).weightCores[
                            static_cast<std::size_t>(k) % tiles]));
        }
    }
    state.SetItemsProcessed(state.iterations() * kFailures);
}
BENCHMARK(BM_RecoveryServiceFailure);

void
BM_KvBorrow(benchmark::State &state)
{
    // The dry-pool path: every failure finds block 0's KV pool
    // empty, borrows the nearest adjacent-block KV core (index
    // rebuild included) and completes the chain into it.
    const RecoveryFixture fix;
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    constexpr int kBorrows = 8;
    for (auto _ : state) {
        state.PauseTiming();
        RecoveryService service(*fix.mapping, NocParams{},
                                tile_bytes, nullptr);
        // Drain block 0's pool so every timed failure must borrow.
        while (!service.placement(0).scoreCores.empty() ||
               !service.placement(0).contextCores.empty()) {
            const auto &p = service.placement(0);
            service.handleCoreFailure(p.scoreCores.empty()
                                              ? p.contextCores.front()
                                              : p.scoreCores.front());
        }
        const std::uint32_t tiles = fix.mapping->tilesPerBlock();
        state.ResumeTiming();
        for (int k = 0; k < kBorrows; ++k) {
            benchmark::DoNotOptimize(service.handleCoreFailure(
                    service.placement(0).weightCores[
                            static_cast<std::size_t>(k) % tiles]));
        }
    }
    state.SetItemsProcessed(state.iterations() * kBorrows);
}
BENCHMARK(BM_KvBorrow);

void
BM_StormDeferredReprice(benchmark::State &state)
{
    // A weight-core failure storm across both blocks: Arg(0)
    // re-prices eagerly inside every failure (the retained oracle),
    // Arg(1) defers the marks and prices each distinct dirty edge
    // once at quiescence. Totals are bit-identical (tests and
    // bench_fault_tolerance pin it); this measures the batching win.
    const RecoveryFixture fix;
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    constexpr int kFailures = 16;
    RecoveryServiceOptions opts;
    opts.deferRepricing = state.range(0) != 0;
    for (auto _ : state) {
        state.PauseTiming();
        RecoveryService service(*fix.mapping, NocParams{},
                                tile_bytes, nullptr, opts);
        const std::uint32_t tiles = fix.mapping->tilesPerBlock();
        state.ResumeTiming();
        for (int k = 0; k < kFailures; ++k) {
            const std::uint64_t block =
                static_cast<std::uint64_t>(k) % 2;
            benchmark::DoNotOptimize(service.handleCoreFailure(
                    service.placement(block).weightCores[
                            static_cast<std::size_t>(k / 2) %
                            tiles]));
        }
        benchmark::DoNotOptimize(service.flushRepricing());
    }
    state.SetItemsProcessed(state.iterations() * kFailures);
}
BENCHMARK(BM_StormDeferredReprice)->Arg(0)->Arg(1);

void
BM_TraceWindowMaterialize(benchmark::State &state)
{
    // Materializing one 15-minute window of a 100k-request day:
    // Arg(0) scans every request of the day and keeps those whose
    // arrival quantile falls in the window (the oracle the window
    // bit-identity tests compare against), Arg(1) binary-searches
    // the index range and materializes only the members.
    DayTraceParams params;
    params.requests = 100000;
    const DayTrace trace(params);
    const double t0 = 9.0 * 3600.0; // morning peak
    const double t1 = t0 + 900.0;
    const bool fast = state.range(0) != 0;
    std::int64_t produced = 0;
    for (auto _ : state) {
        if (fast) {
            const Workload w = trace.window(t0, t1);
            benchmark::DoNotOptimize(w.requests.data());
            produced += static_cast<std::int64_t>(w.requests.size());
        } else {
            const double q0 = trace.quantileTarget(t0);
            const double q1 = trace.quantileTarget(t1);
            Workload w;
            for (std::uint64_t k = 0; k < trace.size(); ++k) {
                const double q = trace.arrivalQuantile(k);
                if (q >= q0 && q < q1)
                    w.requests.push_back(trace.request(k));
            }
            benchmark::DoNotOptimize(w.requests.data());
            produced += static_cast<std::int64_t>(w.requests.size());
        }
    }
    state.SetItemsProcessed(produced);
}
BENCHMARK(BM_TraceWindowMaterialize)->Arg(0)->Arg(1);

/** Small day-trace deployment shared by the sampled-run kernels. */
struct SampledFixture
{
    ModelConfig model = llama13b();
    StageTiming timing;
    std::vector<KvCoreInfo> score, context;

    SampledFixture()
    {
        for (unsigned s = 0; s < kStagesPerBlock; ++s) {
            timing.fixedSeconds[s] = 1e-6;
            timing.perContextSeconds[s] = 1e-9;
        }
        for (std::uint32_t i = 0; i < 64; ++i) {
            score.push_back({{0, i}, 32, 8});
            context.push_back({{1, i}, 32, 8});
        }
    }

    SampledSimulator simulator(SampledSimOptions opts) const
    {
        DayTraceParams params;
        params.requests = 600;
        return SampledSimulator(DayTrace(params), model, timing,
                                score, context, opts);
    }
};

void
BM_SampledVsFullSmallTrace(benchmark::State &state)
{
    // Arg(0) event-steps every window of a small day trace (the
    // full-run oracle), Arg(1) runs the sampled estimator (1 of 4
    // windows measured per stratum, no warmup: 3 of 12 windows, a
    // 4x event-count reduction). Serial on both sides so the ratio
    // is that reduction, not thread scaling.
    const SampledFixture fx;
    SampledSimOptions opts;
    opts.numWindows = 12;
    opts.strata = 3;
    opts.fraction = 0.25; // 1 of 4 windows per stratum
    opts.warmupWindows = 0;
    opts.serialExecution = true;
    const SampledSimulator sim = fx.simulator(opts);
    const bool sampled = state.range(0) != 0;
    for (auto _ : state) {
        if (sampled) {
            const SampledEstimate est = sim.run();
            benchmark::DoNotOptimize(est.estTokensPerSecond);
        } else {
            const PipelineStats full = sim.fullRun();
            benchmark::DoNotOptimize(full.outputTokens);
        }
    }
}
BENCHMARK(BM_SampledVsFullSmallTrace)->Arg(0)->Arg(1);

void
BM_FleetDispatch(benchmark::State &state)
{
    // Arg(0) = the per-request linear-scan oracle (O(W) per
    // request), Arg(1) = the ordered-set fast path (O(log W)) - the
    // two are bit-identical (asserted here and fuzzed in
    // test_fleet.cc), so the ratio is pure routing cost. 32 wafers,
    // one derated weight so the weighted key path is exercised.
    const Workload w = wikiText2Like(4096, 2048, 17);
    FleetDispatchConfig cfg;
    cfg.numWafers = 32;
    cfg.capacityWeight.assign(cfg.numWafers, 1.0);
    cfg.capacityWeight[7] = 0.35;
    ouroAssert(fleetDispatch(w, cfg) == fleetDispatchScan(w, cfg),
               "BM_FleetDispatch: fast path diverged from the scan "
               "oracle");
    const bool fast = state.range(0) != 0;
    std::int64_t routed = 0;
    for (auto _ : state) {
        const std::vector<std::uint32_t> a =
            fast ? fleetDispatch(w, cfg)
                 : fleetDispatchScan(w, cfg);
        benchmark::DoNotOptimize(a.data());
        routed += static_cast<std::int64_t>(a.size());
    }
    state.SetItemsProcessed(routed);
}
BENCHMARK(BM_FleetDispatch)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
