/**
 * @file
 * Fig. 18 / Section 6.7 - normalized transmission volume of the
 * mapping strategies: Cerebras-default (SUMMA), WaferLLM, and our
 * MIQP/annealed mapper, for LLaMA-13B/32B/65B. The paper reports an
 * average 45% reduction vs Cerebras and 18% vs WaferLLM, with the
 * advantage growing with model size.
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

double
mappingVolume(const ModelConfig &model, MapperKind kind,
              std::uint32_t wafers)
{
    double total = 0.0;
    const WaferGeometry geom;
    std::uint64_t first = 0;
    for (std::uint32_t w = 0; w < wafers; ++w) {
        const std::uint64_t count =
            (model.numBlocks + wafers - 1 - w) / wafers;
        WaferMappingOptions opts;
        opts.mapper = kind;
        opts.annealIterations = 30000;
        // Four independent chains per region, best mapping wins;
        // the chains fan out on the parallel runtime (deterministic
        // per-restart seeds, so the pick is thread-count invariant).
        opts.annealRestarts = 4;
        const auto mapping = WaferMapping::build(
                model, CoreParams{}, geom, nullptr, first, count,
                opts);
        ouroAssert(mapping.has_value(), "mapping failed for ",
                   model.name);
        total += mapping->totalByteHops();
        first += count;
    }
    return total;
}

} // namespace

int
main()
{
    setQuiet(true);
    const WallTimer timer;
    std::cout << "=== Fig. 18: normalized transmission volume ===\n";
    Table table({"model", "Cerebras(SUMMA)", "WaferLLM", "Ours",
                 "ours/cerebras", "ours/waferllm"});

    double sum_vs_cerebras = 0.0;
    double sum_vs_waferllm = 0.0;
    int count = 0;

    struct Entry
    {
        ModelConfig model;
        std::uint32_t wafers;
    };
    const std::vector<Entry> entries{Entry{llama13b(), 1},
                                     Entry{llama32b(), 1},
                                     Entry{llama65b(), 2}};
    const std::vector<MapperKind> mappers{MapperKind::Summa,
                                          MapperKind::WaferLlm,
                                          MapperKind::Annealing};

    // Each (model, mapper) volume is an independent (and, for the
    // annealed mapper, expensive) computation: fan the grid out on
    // the parallel runtime; per-slot writes keep results identical
    // to a serial sweep.
    std::vector<double> volumes(entries.size() * mappers.size());
    parallelFor(volumes.size(), [&](std::size_t i) {
        const Entry &entry = entries[i / mappers.size()];
        volumes[i] = mappingVolume(entry.model,
                                   mappers[i % mappers.size()],
                                   entry.wafers);
    });

    for (std::size_t e = 0; e < entries.size(); ++e) {
        const Entry &entry = entries[e];
        const double summa = volumes[e * mappers.size() + 0];
        const double waferllm = volumes[e * mappers.size() + 1];
        const double ours = volumes[e * mappers.size() + 2];
        table.row()
            .cell(entry.model.name)
            .cell(1.0, 3)
            .cell(waferllm / summa, 3)
            .cell(ours / summa, 3)
            .cell(ours / summa, 3)
            .cell(ours / waferllm, 3);
        sum_vs_cerebras += 1.0 - ours / summa;
        sum_vs_waferllm += 1.0 - ours / waferllm;
        ++count;
    }
    table.print(std::cout);
    std::cout << "\nAverages (paper: -45% vs Cerebras, -18% vs "
                 "WaferLLM; advantage grows with size):\n"
              << "  vs Cerebras: -"
              << formatDouble(100.0 * sum_vs_cerebras / count, 1)
              << "%\n  vs WaferLLM: -"
              << formatDouble(100.0 * sum_vs_waferllm / count, 1)
              << "%\n";
    BenchReport("fig18_mapping")
        .metric("wall_seconds", timer.seconds())
        .metric("events_per_sec",
                static_cast<double>(volumes.size()) /
                        timer.seconds())
        .metric("mappings", std::uint64_t{9})
        .metric("anneal_restarts", std::uint64_t{4})
        .write();
    return 0;
}
