/**
 * @file
 * Fig. 18 / Section 6.7 - normalized transmission volume of the
 * mapping strategies: Cerebras-default (SUMMA), WaferLLM, and our
 * MIQP/annealed mapper, for LLaMA-13B/32B/65B. The paper reports an
 * average 45% reduction vs Cerebras and 18% vs WaferLLM, with the
 * advantage growing with model size.
 *
 * The harness also cross-checks and times the sparse flow-graph cost
 * engine against the retained dense reference on a production-sized
 * LLaMA-13B block region: every sampled moveDelta / swapDelta must be
 * BIT-identical (checksummed), an annealing run must pick the exact
 * same mapping on either engine, and BENCH_fig18_mapping.json records
 * both engines' cost-evaluations/sec plus the speedup. A second
 * showdown runs the epsilon-exact fused dist*pen engine with batched
 * SoA move pricing against the scalar exact engine - conformance to
 * the kFusedRelBound contract, batch bit-identity, batched-trajectory
 * engine invariance and a 5% anneal-quality bound asserted every run,
 * fused_engine_speedup recorded alongside cost_engine_speedup.
 */

#include "bench_util.hh"

#include <cmath>

#include "common/rng.hh"
#include "mapping/mappers.hh"
#include "mapping/problem.hh"
#include "mapping/wafer_mapping.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

double
mappingVolume(const ModelConfig &model, MapperKind kind,
              std::uint32_t wafers)
{
    double total = 0.0;
    const WaferGeometry geom;
    std::uint64_t first = 0;
    for (std::uint32_t w = 0; w < wafers; ++w) {
        const std::uint64_t count =
            (model.numBlocks + wafers - 1 - w) / wafers;
        WaferMappingOptions opts;
        opts.mapper = kind;
        opts.annealIterations = 30000;
        // Four independent chains per region, best mapping wins;
        // the chains fan out on the parallel runtime (deterministic
        // per-restart seeds, so the pick is thread-count invariant).
        opts.annealRestarts = 4;
        const auto mapping = WaferMapping::build(
                model, CoreParams{}, geom, nullptr, first, count,
                opts);
        ouroAssert(mapping.has_value(), "mapping failed for ",
                   model.name);
        total += mapping->totalByteHops();
        first += count;
    }
    return total;
}

/** Result of timing one engine over a fixed move/swap schedule. */
struct EngineRate
{
    double evalsPerSec = 0.0;
    double checksum = 0.0; ///< order-dependent sum of all deltas
};

/**
 * Evaluate a deterministic schedule of relocate/swap deltas on one
 * engine. The checksum accumulates every delta in schedule order, so
 * two engines agree on it iff every single evaluation was
 * bit-identical.
 */
template <typename MoveFn, typename SwapFn>
EngineRate
runEvalSchedule(const std::vector<std::uint32_t> &assignment,
                const std::vector<std::uint64_t> &schedule,
                std::size_t tiles, std::size_t slots, MoveFn &&move,
                SwapFn &&swap)
{
    EngineRate rate;
    const WallTimer timer;
    for (const std::uint64_t word : schedule) {
        const auto t1 = static_cast<std::size_t>(word % tiles);
        const auto rest = word / tiles;
        if (word & 1) {
            auto t2 = static_cast<std::size_t>(rest % (tiles - 1));
            if (t2 >= t1)
                ++t2;
            rate.checksum += swap(assignment, t1, t2);
        } else {
            const auto slot =
                static_cast<std::uint32_t>(rest % slots);
            rate.checksum += move(assignment, t1, slot);
        }
    }
    rate.evalsPerSec =
        static_cast<double>(schedule.size()) / timer.seconds();
    return rate;
}

/**
 * Wafer-build showdown: the region-congruence fast path (block 0's
 * MappingProblem translated to every congruent region) against the
 * retained per-block rebuild oracle. Asserts that every placement
 * and every cost is bit-identical, and returns (rebuild seconds,
 * congruence seconds). The greedy mapper isolates the
 * problem-construction cost the fast path removes (annealing time
 * would swamp it).
 */
std::pair<double, double>
waferBuildShowdown()
{
    const ModelConfig model = llama13b();
    const WaferGeometry geom;
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;

    constexpr int kReps = 5;
    double rebuild_s = 0.0;
    double congruent_s = 0.0;
    std::optional<WaferMapping> fast, oracle;
    for (int rep = 0; rep < kReps; ++rep) {
        opts.congruentReuse = false;
        const WallTimer rebuild_timer;
        oracle = WaferMapping::build(model, CoreParams{}, geom,
                                     nullptr, 0, model.numBlocks,
                                     opts);
        rebuild_s += rebuild_timer.seconds();

        opts.congruentReuse = true;
        const WallTimer congruent_timer;
        fast = WaferMapping::build(model, CoreParams{}, geom, nullptr,
                                   0, model.numBlocks, opts);
        congruent_s += congruent_timer.seconds();
    }
    ouroAssert(fast && oracle, "fig18: wafer build failed");
    ouroAssert(fast->totalByteHops() == oracle->totalByteHops() &&
                       fast->interBlockByteHops() ==
                               oracle->interBlockByteHops(),
               "fig18: congruence fast path diverged from the "
               "per-block rebuild on total volume");
    for (std::uint64_t b = 0; b < fast->numBlocks(); ++b) {
        const BlockPlacement &f = fast->placement(b);
        const BlockPlacement &o = oracle->placement(b);
        ouroAssert(f.weightCores == o.weightCores &&
                           f.scoreCores == o.scoreCores &&
                           f.contextCores == o.contextCores &&
                           f.mappingCost == o.mappingCost,
                   "fig18: congruence fast path diverged from the "
                   "per-block rebuild at block ", b);
    }
    return {rebuild_s, congruent_s};
}

/**
 * Sparse-vs-dense cost-engine showdown on a LLaMA-13B block region.
 * Asserts bit-identity (checksum + annealing trajectory) and returns
 * (dense rate, sparse rate) in cost-evaluations/sec.
 */
std::pair<EngineRate, EngineRate>
costEngineShowdown()
{
    const WaferGeometry geom;
    const auto order = geom.sShapedOrder();
    const std::vector<CoreCoord> region(order.begin(),
                                        order.begin() + 192);
    const MappingProblem problem(llama13b(), CoreParams{}, geom,
                                 region);
    const Assignment assignment = GreedyMapper{}.solve(problem);

    // Full-cost parity on the real assignment first.
    ouroAssert(problem.assignmentCost(assignment) ==
                       problem.assignmentCostDense(assignment),
               "fig18: sparse assignmentCost diverged from the dense "
               "reference");

    // Deterministic eval schedule (odd words swap, even words move).
    const std::size_t tiles = problem.tiles().size();
    Rng rng(2026);
    std::vector<std::uint64_t> schedule(40000);
    for (auto &word : schedule)
        word = rng.next();

    const auto dense = runEvalSchedule(
            assignment, schedule, tiles, region.size(),
            [&](const Assignment &a, std::size_t t,
                std::uint32_t s) {
                return problem.moveDeltaDense(a, t, s);
            },
            [&](const Assignment &a, std::size_t t1, std::size_t t2) {
                return problem.swapDeltaDense(a, t1, t2);
            });
    const auto sparse = runEvalSchedule(
            assignment, schedule, tiles, region.size(),
            [&](const Assignment &a, std::size_t t,
                std::uint32_t s) { return problem.moveDelta(a, t, s); },
            [&](const Assignment &a, std::size_t t1, std::size_t t2) {
                return problem.swapDelta(a, t1, t2);
            });
    ouroAssert(sparse.checksum == dense.checksum,
               "fig18: sparse cost engine diverged from the dense "
               "reference over the eval schedule");

    // The annealer must walk the exact same trajectory either way.
    AnnealingMapper::Options sparse_opts;
    sparse_opts.iterations = 3000;
    sparse_opts.seed = 18;
    AnnealingMapper::Options dense_opts = sparse_opts;
    dense_opts.useDenseEngine = true;
    ouroAssert(AnnealingMapper(sparse_opts).solve(problem) ==
                       AnnealingMapper(dense_opts).solve(problem),
               "fig18: annealing trajectory depends on the cost "
               "engine");

    return {dense, sparse};
}

/** Rates and quality of the fused-engine showdown. */
struct FusedShowdown
{
    double exactScalarEvalsPerSec = 0.0; ///< PR 3 sparse engine
    double fusedBatchEvalsPerSec = 0.0;  ///< fused table + K=64 batch
    double speedup = 0.0;
    double qualityRatio = 0.0; ///< fused-anneal / exact-anneal cost
};

/**
 * Fused-engine showdown on the LLaMA-13B block region: the epsilon-
 * exact fused product table + batched SoA move pricing against the
 * PR 3 scalar exact engine. Asserts, on every run:
 *   - batched deltas are BIT-identical to scalar deltas per engine;
 *   - every fused delta is within kFusedRelBound * (1 + S) of the
 *     exact engine (S = exact assignmentCost magnitude);
 *   - the batched annealer walks the same trajectory on the sparse
 *     and dense engines (moveBatch = 8);
 *   - the mapping the fused engine anneals is within 5% of the exact
 *     engine's on the EXACT objective.
 * costInter = 1.7 (not a power of two) so the fused reassociation
 * genuinely rounds differently - with the default 2.0 the two tiers
 * collapse to bit-identity and the contract would go unexercised.
 */
FusedShowdown
fusedEngineShowdown()
{
    const WaferGeometry geom;
    const auto order = geom.sShapedOrder();
    const std::vector<CoreCoord> region(order.begin(),
                                        order.begin() + 192);
    const MappingProblem exact(
            llama13b(), CoreParams{}, geom, region, 1.7, nullptr,
            MappingEngineOptions{true, 1024, false});
    const MappingProblem fused(
            llama13b(), CoreParams{}, geom, region, 1.7, nullptr,
            MappingEngineOptions{true, 1024, true});
    const Assignment assignment = GreedyMapper{}.solve(exact);

    const double s_exact = exact.assignmentCost(assignment);
    const double tol =
        MappingProblem::kFusedRelBound * (1.0 + s_exact);
    ouroAssert(std::abs(fused.assignmentCost(assignment) - s_exact) <=
                       tol,
               "fig18: fused assignmentCost outside the epsilon "
               "contract");

    const std::size_t tiles = exact.tiles().size();
    constexpr std::size_t kBatch = 64;
    constexpr std::size_t kRounds = 3000;
    Rng rng(777);
    std::vector<std::uint32_t> cand(kRounds * kBatch);
    for (auto &slot : cand) {
        slot = static_cast<std::uint32_t>(rng.next() %
                                          region.size());
    }

    // Untimed conformance pass over a sample of rounds: batch ==
    // scalar bitwise per engine, fused within tol of exact per eval.
    MappingProblem::MoveScratch scratch;
    std::vector<double> exact_b(kBatch), fused_b(kBatch);
    for (std::size_t r = 0; r < 64; ++r) {
        const std::size_t t = r % tiles;
        const std::uint32_t *slots = cand.data() + r * kBatch;
        exact.moveDeltaBatch(assignment, t, slots, kBatch, scratch,
                             exact_b.data());
        fused.moveDeltaBatch(assignment, t, slots, kBatch, scratch,
                             fused_b.data());
        for (std::size_t i = 0; i < kBatch; ++i) {
            ouroAssert(exact_b[i] == exact.moveDelta(assignment, t,
                                                     slots[i]),
                       "fig18: exact batched delta diverged from the "
                       "scalar moveDelta");
            ouroAssert(fused_b[i] == fused.moveDelta(assignment, t,
                                                     slots[i]),
                       "fig18: fused batched delta diverged from the "
                       "scalar fused moveDelta");
            ouroAssert(std::abs(fused_b[i] - exact_b[i]) <= tol,
                       "fig18: fused move delta outside the epsilon "
                       "contract");
        }
    }

    // Timed: the PR 3 engine (scalar exact moveDelta) vs the batched
    // fused kernel, same tiles, same candidate stream.
    FusedShowdown result;
    double checksum_scalar = 0.0;
    {
        const WallTimer timer;
        for (std::size_t r = 0; r < kRounds; ++r) {
            const std::size_t t = r % tiles;
            const std::uint32_t *slots = cand.data() + r * kBatch;
            for (std::size_t i = 0; i < kBatch; ++i) {
                checksum_scalar +=
                    exact.moveDelta(assignment, t, slots[i]);
            }
        }
        result.exactScalarEvalsPerSec =
            static_cast<double>(kRounds * kBatch) / timer.seconds();
    }
    double checksum_fused = 0.0;
    {
        std::vector<double> deltas(kBatch);
        const WallTimer timer;
        for (std::size_t r = 0; r < kRounds; ++r) {
            const std::size_t t = r % tiles;
            fused.moveDeltaBatch(assignment, t,
                                 cand.data() + r * kBatch, kBatch,
                                 scratch, deltas.data());
            for (std::size_t i = 0; i < kBatch; ++i)
                checksum_fused += deltas[i];
        }
        result.fusedBatchEvalsPerSec =
            static_cast<double>(kRounds * kBatch) / timer.seconds();
    }
    // Per-eval conformance bounds the checksum drift by evals * tol.
    ouroAssert(std::abs(checksum_fused - checksum_scalar) <=
                       static_cast<double>(kRounds * kBatch) * tol,
               "fig18: fused checksum outside the accumulated epsilon "
               "contract");
    result.speedup =
        result.fusedBatchEvalsPerSec / result.exactScalarEvalsPerSec;

    // Batched proposals keep the PR 3 engine-invariance guarantee.
    AnnealingMapper::Options batch_opts;
    batch_opts.iterations = 3000;
    batch_opts.seed = 18;
    batch_opts.moveBatch = 8;
    AnnealingMapper::Options batch_dense = batch_opts;
    batch_dense.useDenseEngine = true;
    ouroAssert(AnnealingMapper(batch_opts).solve(exact) ==
                       AnnealingMapper(batch_dense).solve(exact),
               "fig18: batched annealing trajectory depends on the "
               "cost engine");

    // Fused-engine annealing quality, judged on the EXACT objective.
    AnnealingMapper::Options q_opts;
    q_opts.iterations = 30000;
    q_opts.seed = 18;
    q_opts.moveBatch = 8;
    const double q_exact = exact.assignmentCost(
            AnnealingMapper(q_opts).solve(exact));
    const double q_fused = exact.assignmentCost(
            AnnealingMapper(q_opts).solve(fused));
    result.qualityRatio = q_fused / q_exact;
    ouroAssert(q_fused <= q_exact * 1.05 &&
                       q_exact <= q_fused * 1.05,
               "fig18: fused-engine mapping quality outside the 5% "
               "bound (ratio ", result.qualityRatio, ")");
    return result;
}

} // namespace

int
main()
{
    setQuiet(true);
    const WallTimer timer;
    std::cout << "=== Fig. 18: normalized transmission volume ===\n";
    Table table({"model", "Cerebras(SUMMA)", "WaferLLM", "Ours",
                 "ours/cerebras", "ours/waferllm"});

    double sum_vs_cerebras = 0.0;
    double sum_vs_waferllm = 0.0;
    int count = 0;

    struct Entry
    {
        ModelConfig model;
        std::uint32_t wafers;
    };
    const std::vector<Entry> entries{Entry{llama13b(), 1},
                                     Entry{llama32b(), 1},
                                     Entry{llama65b(), 2}};
    const std::vector<MapperKind> mappers{MapperKind::Summa,
                                          MapperKind::WaferLlm,
                                          MapperKind::Annealing};

    // Each (model, mapper) volume is an independent (and, for the
    // annealed mapper, expensive) computation: fan the grid out on
    // the parallel runtime; per-slot writes keep results identical
    // to a serial sweep.
    std::vector<double> volumes(entries.size() * mappers.size());
    parallelFor(volumes.size(), [&](std::size_t i) {
        const Entry &entry = entries[i / mappers.size()];
        volumes[i] = mappingVolume(entry.model,
                                   mappers[i % mappers.size()],
                                   entry.wafers);
    });

    for (std::size_t e = 0; e < entries.size(); ++e) {
        const Entry &entry = entries[e];
        const double summa = volumes[e * mappers.size() + 0];
        const double waferllm = volumes[e * mappers.size() + 1];
        const double ours = volumes[e * mappers.size() + 2];
        table.row()
            .cell(entry.model.name)
            .cell(1.0, 3)
            .cell(waferllm / summa, 3)
            .cell(ours / summa, 3)
            .cell(ours / summa, 3)
            .cell(ours / waferllm, 3);
        sum_vs_cerebras += 1.0 - ours / summa;
        sum_vs_waferllm += 1.0 - ours / waferllm;
        ++count;
    }
    table.print(std::cout);
    std::cout << "\nAverages (paper: -45% vs Cerebras, -18% vs "
                 "WaferLLM; advantage grows with size):\n"
              << "  vs Cerebras: -"
              << formatDouble(100.0 * sum_vs_cerebras / count, 1)
              << "%\n  vs WaferLLM: -"
              << formatDouble(100.0 * sum_vs_waferllm / count, 1)
              << "%\n";

    // Snapshot the sweep wall time BEFORE the engine showdown so the
    // longitudinal wall_seconds / events_per_sec record keeps
    // measuring the mapping sweep alone, comparable run over run.
    const double sweep_seconds = timer.seconds();

    // Sparse flow-graph cost engine vs. the retained dense reference
    // (bit-identity asserted inside). These rates are single-thread
    // algorithmic throughput, so they are meaningful on any host.
    const auto [dense, sparse] = costEngineShowdown();
    const double engine_speedup =
        sparse.evalsPerSec / dense.evalsPerSec;

    // Fused product table + batched SoA move pricing vs the PR 3
    // scalar exact engine (epsilon conformance, batch bit-identity,
    // batched-trajectory invariance and the 5% quality bound all
    // asserted inside).
    const FusedShowdown fusedsd = fusedEngineShowdown();

    // Whole-wafer build: congruence translation vs the per-block
    // MappingProblem rebuild (bit-identity asserted inside).
    const auto [rebuild_s, congruent_s] = waferBuildShowdown();
    const double build_speedup = rebuild_s / congruent_s;
    std::cout << "\nWafer build (LLaMA-13B, greedy, bit-identical "
                 "placements):\n  per-block rebuild:    "
              << formatDouble(rebuild_s * 1e3, 1)
              << " ms\n  congruence fast path: "
              << formatDouble(congruent_s * 1e3, 1)
              << " ms\n  speedup:              "
              << formatDouble(build_speedup, 1) << "x\n";
    std::cout << "\nAnneal cost-evaluation throughput "
                 "(LLaMA-13B block region, bit-identical engines):\n"
              << "  dense reference: "
              << formatDouble(dense.evalsPerSec / 1e6, 2)
              << " M evals/s\n  sparse engine:   "
              << formatDouble(sparse.evalsPerSec / 1e6, 2)
              << " M evals/s\n  speedup:         "
              << formatDouble(engine_speedup, 1) << "x\n";
    std::cout << "\nFused engine + batched move pricing "
                 "(LLaMA-13B block region, epsilon-exact):\n"
              << "  exact scalar:    "
              << formatDouble(fusedsd.exactScalarEvalsPerSec / 1e6, 2)
              << " M evals/s\n  fused batched:   "
              << formatDouble(fusedsd.fusedBatchEvalsPerSec / 1e6, 2)
              << " M evals/s\n  speedup:         "
              << formatDouble(fusedsd.speedup, 1)
              << "x\n  anneal quality:  "
              << formatDouble(fusedsd.qualityRatio, 4)
              << " (fused/exact, bound 1.05)\n";

    BenchReport("fig18_mapping")
        .metric("wall_seconds", sweep_seconds)
        .metric("events_per_sec",
                static_cast<double>(volumes.size()) / sweep_seconds)
        .metric("showdown_seconds", timer.seconds() - sweep_seconds)
        .metric("mappings", std::uint64_t{9})
        .metric("anneal_restarts", std::uint64_t{4})
        .metric("dense_evals_per_sec", dense.evalsPerSec)
        .metric("sparse_evals_per_sec", sparse.evalsPerSec)
        .metric("cost_engine_speedup", engine_speedup)
        .metric("exact_scalar_evals_per_sec",
                fusedsd.exactScalarEvalsPerSec)
        .metric("fused_batch_evals_per_sec",
                fusedsd.fusedBatchEvalsPerSec)
        .metric("fused_engine_speedup", fusedsd.speedup)
        .metric("fused_anneal_quality_ratio", fusedsd.qualityRatio)
        .metric("wafer_build_rebuild_seconds", rebuild_s)
        .metric("wafer_build_congruent_seconds", congruent_s)
        .metric("wafer_build_speedup", build_speedup)
        .write();
    return 0;
}
