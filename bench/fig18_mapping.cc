/**
 * @file
 * Fig. 18 / Section 6.7 - normalized transmission volume of the
 * mapping strategies: Cerebras-default (SUMMA), WaferLLM, and our
 * MIQP/annealed mapper, for LLaMA-13B/32B/65B. The paper reports an
 * average 45% reduction vs Cerebras and 18% vs WaferLLM, with the
 * advantage growing with model size.
 *
 * The harness also cross-checks and times the sparse flow-graph cost
 * engine against the retained dense reference on a production-sized
 * LLaMA-13B block region: every sampled moveDelta / swapDelta must be
 * BIT-identical (checksummed), an annealing run must pick the exact
 * same mapping on either engine, and BENCH_fig18_mapping.json records
 * both engines' cost-evaluations/sec plus the speedup.
 */

#include "bench_util.hh"

#include "common/rng.hh"
#include "mapping/mappers.hh"
#include "mapping/problem.hh"
#include "mapping/wafer_mapping.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

double
mappingVolume(const ModelConfig &model, MapperKind kind,
              std::uint32_t wafers)
{
    double total = 0.0;
    const WaferGeometry geom;
    std::uint64_t first = 0;
    for (std::uint32_t w = 0; w < wafers; ++w) {
        const std::uint64_t count =
            (model.numBlocks + wafers - 1 - w) / wafers;
        WaferMappingOptions opts;
        opts.mapper = kind;
        opts.annealIterations = 30000;
        // Four independent chains per region, best mapping wins;
        // the chains fan out on the parallel runtime (deterministic
        // per-restart seeds, so the pick is thread-count invariant).
        opts.annealRestarts = 4;
        const auto mapping = WaferMapping::build(
                model, CoreParams{}, geom, nullptr, first, count,
                opts);
        ouroAssert(mapping.has_value(), "mapping failed for ",
                   model.name);
        total += mapping->totalByteHops();
        first += count;
    }
    return total;
}

/** Result of timing one engine over a fixed move/swap schedule. */
struct EngineRate
{
    double evalsPerSec = 0.0;
    double checksum = 0.0; ///< order-dependent sum of all deltas
};

/**
 * Evaluate a deterministic schedule of relocate/swap deltas on one
 * engine. The checksum accumulates every delta in schedule order, so
 * two engines agree on it iff every single evaluation was
 * bit-identical.
 */
template <typename MoveFn, typename SwapFn>
EngineRate
runEvalSchedule(const std::vector<std::uint32_t> &assignment,
                const std::vector<std::uint64_t> &schedule,
                std::size_t tiles, std::size_t slots, MoveFn &&move,
                SwapFn &&swap)
{
    EngineRate rate;
    const WallTimer timer;
    for (const std::uint64_t word : schedule) {
        const auto t1 = static_cast<std::size_t>(word % tiles);
        const auto rest = word / tiles;
        if (word & 1) {
            auto t2 = static_cast<std::size_t>(rest % (tiles - 1));
            if (t2 >= t1)
                ++t2;
            rate.checksum += swap(assignment, t1, t2);
        } else {
            const auto slot =
                static_cast<std::uint32_t>(rest % slots);
            rate.checksum += move(assignment, t1, slot);
        }
    }
    rate.evalsPerSec =
        static_cast<double>(schedule.size()) / timer.seconds();
    return rate;
}

/**
 * Wafer-build showdown: the region-congruence fast path (block 0's
 * MappingProblem translated to every congruent region) against the
 * retained per-block rebuild oracle. Asserts that every placement
 * and every cost is bit-identical, and returns (rebuild seconds,
 * congruence seconds). The greedy mapper isolates the
 * problem-construction cost the fast path removes (annealing time
 * would swamp it).
 */
std::pair<double, double>
waferBuildShowdown()
{
    const ModelConfig model = llama13b();
    const WaferGeometry geom;
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;

    constexpr int kReps = 5;
    double rebuild_s = 0.0;
    double congruent_s = 0.0;
    std::optional<WaferMapping> fast, oracle;
    for (int rep = 0; rep < kReps; ++rep) {
        opts.congruentReuse = false;
        const WallTimer rebuild_timer;
        oracle = WaferMapping::build(model, CoreParams{}, geom,
                                     nullptr, 0, model.numBlocks,
                                     opts);
        rebuild_s += rebuild_timer.seconds();

        opts.congruentReuse = true;
        const WallTimer congruent_timer;
        fast = WaferMapping::build(model, CoreParams{}, geom, nullptr,
                                   0, model.numBlocks, opts);
        congruent_s += congruent_timer.seconds();
    }
    ouroAssert(fast && oracle, "fig18: wafer build failed");
    ouroAssert(fast->totalByteHops() == oracle->totalByteHops() &&
                       fast->interBlockByteHops() ==
                               oracle->interBlockByteHops(),
               "fig18: congruence fast path diverged from the "
               "per-block rebuild on total volume");
    for (std::uint64_t b = 0; b < fast->numBlocks(); ++b) {
        const BlockPlacement &f = fast->placement(b);
        const BlockPlacement &o = oracle->placement(b);
        ouroAssert(f.weightCores == o.weightCores &&
                           f.scoreCores == o.scoreCores &&
                           f.contextCores == o.contextCores &&
                           f.mappingCost == o.mappingCost,
                   "fig18: congruence fast path diverged from the "
                   "per-block rebuild at block ", b);
    }
    return {rebuild_s, congruent_s};
}

/**
 * Sparse-vs-dense cost-engine showdown on a LLaMA-13B block region.
 * Asserts bit-identity (checksum + annealing trajectory) and returns
 * (dense rate, sparse rate) in cost-evaluations/sec.
 */
std::pair<EngineRate, EngineRate>
costEngineShowdown()
{
    const WaferGeometry geom;
    const auto order = geom.sShapedOrder();
    const std::vector<CoreCoord> region(order.begin(),
                                        order.begin() + 192);
    const MappingProblem problem(llama13b(), CoreParams{}, geom,
                                 region);
    const Assignment assignment = GreedyMapper{}.solve(problem);

    // Full-cost parity on the real assignment first.
    ouroAssert(problem.assignmentCost(assignment) ==
                       problem.assignmentCostDense(assignment),
               "fig18: sparse assignmentCost diverged from the dense "
               "reference");

    // Deterministic eval schedule (odd words swap, even words move).
    const std::size_t tiles = problem.tiles().size();
    Rng rng(2026);
    std::vector<std::uint64_t> schedule(40000);
    for (auto &word : schedule)
        word = rng.next();

    const auto dense = runEvalSchedule(
            assignment, schedule, tiles, region.size(),
            [&](const Assignment &a, std::size_t t,
                std::uint32_t s) {
                return problem.moveDeltaDense(a, t, s);
            },
            [&](const Assignment &a, std::size_t t1, std::size_t t2) {
                return problem.swapDeltaDense(a, t1, t2);
            });
    const auto sparse = runEvalSchedule(
            assignment, schedule, tiles, region.size(),
            [&](const Assignment &a, std::size_t t,
                std::uint32_t s) { return problem.moveDelta(a, t, s); },
            [&](const Assignment &a, std::size_t t1, std::size_t t2) {
                return problem.swapDelta(a, t1, t2);
            });
    ouroAssert(sparse.checksum == dense.checksum,
               "fig18: sparse cost engine diverged from the dense "
               "reference over the eval schedule");

    // The annealer must walk the exact same trajectory either way.
    AnnealingMapper::Options sparse_opts;
    sparse_opts.iterations = 3000;
    sparse_opts.seed = 18;
    AnnealingMapper::Options dense_opts = sparse_opts;
    dense_opts.useDenseEngine = true;
    ouroAssert(AnnealingMapper(sparse_opts).solve(problem) ==
                       AnnealingMapper(dense_opts).solve(problem),
               "fig18: annealing trajectory depends on the cost "
               "engine");

    return {dense, sparse};
}

} // namespace

int
main()
{
    setQuiet(true);
    const WallTimer timer;
    std::cout << "=== Fig. 18: normalized transmission volume ===\n";
    Table table({"model", "Cerebras(SUMMA)", "WaferLLM", "Ours",
                 "ours/cerebras", "ours/waferllm"});

    double sum_vs_cerebras = 0.0;
    double sum_vs_waferllm = 0.0;
    int count = 0;

    struct Entry
    {
        ModelConfig model;
        std::uint32_t wafers;
    };
    const std::vector<Entry> entries{Entry{llama13b(), 1},
                                     Entry{llama32b(), 1},
                                     Entry{llama65b(), 2}};
    const std::vector<MapperKind> mappers{MapperKind::Summa,
                                          MapperKind::WaferLlm,
                                          MapperKind::Annealing};

    // Each (model, mapper) volume is an independent (and, for the
    // annealed mapper, expensive) computation: fan the grid out on
    // the parallel runtime; per-slot writes keep results identical
    // to a serial sweep.
    std::vector<double> volumes(entries.size() * mappers.size());
    parallelFor(volumes.size(), [&](std::size_t i) {
        const Entry &entry = entries[i / mappers.size()];
        volumes[i] = mappingVolume(entry.model,
                                   mappers[i % mappers.size()],
                                   entry.wafers);
    });

    for (std::size_t e = 0; e < entries.size(); ++e) {
        const Entry &entry = entries[e];
        const double summa = volumes[e * mappers.size() + 0];
        const double waferllm = volumes[e * mappers.size() + 1];
        const double ours = volumes[e * mappers.size() + 2];
        table.row()
            .cell(entry.model.name)
            .cell(1.0, 3)
            .cell(waferllm / summa, 3)
            .cell(ours / summa, 3)
            .cell(ours / summa, 3)
            .cell(ours / waferllm, 3);
        sum_vs_cerebras += 1.0 - ours / summa;
        sum_vs_waferllm += 1.0 - ours / waferllm;
        ++count;
    }
    table.print(std::cout);
    std::cout << "\nAverages (paper: -45% vs Cerebras, -18% vs "
                 "WaferLLM; advantage grows with size):\n"
              << "  vs Cerebras: -"
              << formatDouble(100.0 * sum_vs_cerebras / count, 1)
              << "%\n  vs WaferLLM: -"
              << formatDouble(100.0 * sum_vs_waferllm / count, 1)
              << "%\n";

    // Snapshot the sweep wall time BEFORE the engine showdown so the
    // longitudinal wall_seconds / events_per_sec record keeps
    // measuring the mapping sweep alone, comparable run over run.
    const double sweep_seconds = timer.seconds();

    // Sparse flow-graph cost engine vs. the retained dense reference
    // (bit-identity asserted inside). These rates are single-thread
    // algorithmic throughput, so they are meaningful on any host.
    const auto [dense, sparse] = costEngineShowdown();
    const double engine_speedup =
        sparse.evalsPerSec / dense.evalsPerSec;

    // Whole-wafer build: congruence translation vs the per-block
    // MappingProblem rebuild (bit-identity asserted inside).
    const auto [rebuild_s, congruent_s] = waferBuildShowdown();
    const double build_speedup = rebuild_s / congruent_s;
    std::cout << "\nWafer build (LLaMA-13B, greedy, bit-identical "
                 "placements):\n  per-block rebuild:    "
              << formatDouble(rebuild_s * 1e3, 1)
              << " ms\n  congruence fast path: "
              << formatDouble(congruent_s * 1e3, 1)
              << " ms\n  speedup:              "
              << formatDouble(build_speedup, 1) << "x\n";
    std::cout << "\nAnneal cost-evaluation throughput "
                 "(LLaMA-13B block region, bit-identical engines):\n"
              << "  dense reference: "
              << formatDouble(dense.evalsPerSec / 1e6, 2)
              << " M evals/s\n  sparse engine:   "
              << formatDouble(sparse.evalsPerSec / 1e6, 2)
              << " M evals/s\n  speedup:         "
              << formatDouble(engine_speedup, 1) << "x\n";

    BenchReport("fig18_mapping")
        .metric("wall_seconds", sweep_seconds)
        .metric("events_per_sec",
                static_cast<double>(volumes.size()) / sweep_seconds)
        .metric("showdown_seconds", timer.seconds() - sweep_seconds)
        .metric("mappings", std::uint64_t{9})
        .metric("anneal_restarts", std::uint64_t{4})
        .metric("dense_evals_per_sec", dense.evalsPerSec)
        .metric("sparse_evals_per_sec", sparse.evalsPerSec)
        .metric("cost_engine_speedup", engine_speedup)
        .metric("wafer_build_rebuild_seconds", rebuild_s)
        .metric("wafer_build_congruent_seconds", congruent_s)
        .metric("wafer_build_speedup", build_speedup)
        .write();
    return 0;
}
