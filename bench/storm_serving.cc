/**
 * @file
 * Storm-serving bench (PR 9): serve a >= 64-way concurrent decode
 * cohort through a deterministic failure storm and record the
 * degradation/recovery trajectory - the end-to-end closure of the
 * paper's two headline claims (serving throughput, Section 6.2;
 * graceful fault tolerance, Section 4.3.3).
 *
 * Asserted on EVERY run:
 *  - the zero-failure storm scenario is bit-identical to the
 *    retained plain serving path (same pool, same options, no
 *    schedule) - the no-storm oracle;
 *  - the storm run replayed from the same (workload, schedule seed,
 *    options) is bit-identical, stats and mirrored pool events both
 *    - the determinism contract;
 *  - the storm run with the cohort fast path OFF is bit-identical to
 *    the run with it ON (the engine's storm bail-out rule composes
 *    with the existing bit-identity oracle);
 *  - goodput recovers: after the schedule drains, some throughput
 *    bin (before the drain tail) reaches >= 90% of the pre-storm
 *    rate.
 *
 * BENCH_storm_serving.json records storm_goodput_ratio,
 * storm_degradation_depth, storm_recovery_seconds and the
 * evicted/re-prefilled counters, so degradation behaviour lives in
 * the recorded perf trajectory, not a one-off demo.
 *
 * Pass a request count as argv[1] (default 384, the fig13 serving
 * cohort size).
 */

#include <algorithm>

#include "bench_util.hh"

#include "sim/storm_run.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

/** Every field of two PipelineStats must agree exactly (the storm
 *  fields and the throughput histogram included). */
void
assertBitIdentical(const PipelineStats &a, const PipelineStats &b,
                   const char *what)
{
    ouroAssert(a.makespanSeconds == b.makespanSeconds &&
               a.tokensProcessed == b.tokensProcessed &&
               a.outputTokens == b.outputTokens &&
               a.bottleneckBusySeconds == b.bottleneckBusySeconds &&
               a.utilization == b.utilization &&
               a.evictions == b.evictions &&
               a.recomputedTokens == b.recomputedTokens &&
               a.stormEvictions == b.stormEvictions &&
               a.stormReprefilledTokens == b.stormReprefilledTokens &&
               a.skippedRequests == b.skippedRequests &&
               a.peakConcurrency == b.peakConcurrency &&
               a.avgContext == b.avgContext &&
               a.ttftSamples == b.ttftSamples &&
               a.interTokenSamples == b.interTokenSamples &&
               a.outputTokenBins == b.outputTokenBins,
               "storm_serving: ", what);
}

bool
sameEvents(const std::vector<KvPoolEvent> &a,
           const std::vector<KvPoolEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].time != b[i].time ||
            a[i].dropCores.size() != b[i].dropCores.size() ||
            a[i].adopts.size() != b[i].adopts.size())
            return false;
        for (std::size_t j = 0; j < a[i].dropCores.size(); ++j) {
            if (!(a[i].dropCores[j] == b[i].dropCores[j]))
                return false;
        }
        for (std::size_t j = 0; j < a[i].adopts.size(); ++j) {
            const auto &x = a[i].adopts[j];
            const auto &y = b[i].adopts[j];
            if (!(x.info.coord == y.info.coord) ||
                x.info.crossbars != y.info.crossbars ||
                x.info.blocksPerCrossbar != y.info.blocksPerCrossbar ||
                x.scoreDuty != y.scoreDuty)
                return false;
        }
    }
    return true;
}

/** Decode-heavy serving cohort with STAGGERED decode lengths (112,
 *  96, 80, 64, 48 cycling) so completions - and therefore the
 *  throughput curve - spread through the whole run instead of
 *  cliffing at one instant. Max context stays 16 + 112 = 128 tokens
 *  (one logical block per head), the same thrash-free operating
 *  point as the fig13 serving record. */
Workload
stormCohort(std::size_t count)
{
    Workload w;
    w.name = "storm-cohort";
    w.requests.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Request r;
        r.id = i;
        r.prefillLen = 16;
        r.decodeLen = 112 - 16 * (i % 5);
        w.requests.push_back(r);
    }
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 384);
    const WallTimer total_timer;

    std::cout << "=== Storm serving: " << n
              << " decode streams through a failure storm ===\n";

    const ModelConfig model = llama13b();
    const auto sys = buildOuroboros(model);
    const Workload cohort = stormCohort(n);

    // --- Clean reference: the retained plain serving path. ---
    constexpr double kBins = 64.0;
    auto plain_run = [&](double bin_w) {
        BlockKvManager kv(model, sys.scorePool(), sys.contextPool(),
                          128, sys.options().kvThreshold);
        PipelineOptions popts;
        popts.attentionParallelism = 16.0;
        popts.throughputBinSeconds = bin_w;
        return runPipeline(cohort, model, sys.stageTiming(), kv,
                           popts);
    };
    // Pass 1 sizes the bins off the clean makespan; pass 2 is the
    // binned clean reference every storm metric normalises against.
    const double clean_makespan =
        plain_run(0.0).makespanSeconds;
    ouroAssert(clean_makespan > 0.0,
               "storm_serving: empty clean run");
    const double bin_w = clean_makespan / kBins;
    const WallTimer clean_timer;
    const PipelineStats clean = plain_run(bin_w);
    const double clean_wall = clean_timer.seconds();
    ouroAssert(clean.evictions == 0 && clean.skippedRequests == 0,
               "storm_serving: clean run must be thrash-free");
    ouroAssert(clean.peakConcurrency >= 64.0,
               "storm_serving: cohort below 64 concurrent streams");

    // --- Oracle (a): zero failures == the plain path, bit for bit,
    // cohort fast path on AND off. ---
    StormServingOptions zopts;
    zopts.injector.failures = 0;
    zopts.throughputBinSeconds = bin_w;
    const StormServingResult zero = runStormServing(sys, cohort,
                                                    zopts);
    assertBitIdentical(zero.stats, clean,
                       "zero-failure storm diverged from the plain "
                       "serving path");
    zopts.cohortFastPath = false;
    assertBitIdentical(runStormServing(sys, cohort, zopts).stats,
                       clean,
                       "zero-failure storm (slow path) diverged "
                       "from the plain serving path");

    // --- The storm: 24 failures across [30%, 50%] of the clean
    // run's makespan, weight-core failures mixed in (their
    // replacement chains absorb KV cores and, on a dry pool, borrow
    // across blocks). ---
    StormServingOptions sopts;
    sopts.injector.failures = 24;
    sopts.injector.stormStart = 0.30 * clean_makespan;
    sopts.injector.stormDuration = 0.20 * clean_makespan;
    sopts.injector.seed = 20260808;
    sopts.injector.weightFailureFraction = 0.25;
    sopts.throughputBinSeconds = bin_w;

    const WallTimer storm_timer;
    const StormServingResult storm = runStormServing(sys, cohort,
                                                     sopts);
    const double storm_wall = storm_timer.seconds();

    // --- Oracle (b): replay determinism, stats and events bitwise.
    const StormServingResult replay = runStormServing(sys, cohort,
                                                      sopts);
    assertBitIdentical(storm.stats, replay.stats,
                       "storm replay diverged (stats)");
    ouroAssert(sameEvents(storm.events, replay.events),
               "storm_serving: storm replay diverged (events)");

    // --- Oracle (c): the storm run is bit-identical with the cohort
    // fast path disabled (the bail-out rule composes with the
    // existing fast-path contract). ---
    StormServingOptions slow_opts = sopts;
    slow_opts.cohortFastPath = false;
    assertBitIdentical(runStormServing(sys, cohort, slow_opts).stats,
                       storm.stats,
                       "storm run diverged between cohort and slow "
                       "paths");

    ouroAssert(storm.stats.stormEvictions > 0,
               "storm_serving: storm never evicted a resident");
    ouroAssert(!storm.events.empty(),
               "storm_serving: storm produced no pool events");

    // --- Degradation / recovery off the throughput histogram. ---
    const auto &bins = storm.stats.outputTokenBins;
    const double storm_start = sopts.injector.stormStart;
    const double storm_end = storm.events.back().time;
    auto bin_of = [&](double t) {
        return static_cast<std::size_t>(t / bin_w);
    };
    // Pre-storm rate: the steady half of the pre-storm window
    // (skipping the prefill ramp at the start of the run).
    const std::size_t pre_hi = bin_of(storm_start);
    const std::size_t pre_lo = pre_hi / 2;
    ouroAssert(pre_hi > pre_lo && pre_hi <= bins.size(),
               "storm_serving: pre-storm window too small");
    double pre_rate = 0.0;
    for (std::size_t b = pre_lo; b < pre_hi; ++b)
        pre_rate += static_cast<double>(bins[b]);
    pre_rate /= static_cast<double>(pre_hi - pre_lo);
    ouroAssert(pre_rate > 0.0,
               "storm_serving: no pre-storm throughput");

    // Degradation depth: the worst bin while the storm is live.
    double depth_rate = pre_rate;
    for (std::size_t b = bin_of(storm_start);
         b <= bin_of(storm_end) && b < bins.size(); ++b)
        depth_rate = std::min(depth_rate,
                              static_cast<double>(bins[b]));
    const double degradation_depth = depth_rate / pre_rate;

    // Time-to-recover: first bin at/after the last storm event that
    // reaches 90% of the pre-storm rate, excluding the final two
    // bins (the drain tail, where throughput falls because requests
    // RUN OUT, not because the storm hurt). Asserted to exist - the
    // >= 90% goodput-recovery acceptance bar.
    std::size_t recovered_bin = bins.size();
    const std::size_t tail =
        bins.size() >= 2 ? bins.size() - 2 : bins.size();
    for (std::size_t b = bin_of(storm_end) + 1; b < tail; ++b) {
        if (static_cast<double>(bins[b]) >= 0.9 * pre_rate) {
            recovered_bin = b;
            break;
        }
    }
    ouroAssert(recovered_bin < bins.size(),
               "storm_serving: throughput never recovered to 90% of "
               "the pre-storm rate");
    const double recovery_seconds = std::max(
            0.0, static_cast<double>(recovered_bin) * bin_w -
                         storm_end);

    // Goodput: useful output per second over the whole run, storm vs
    // clean (re-prefilled tokens are pure overhead - they inflate
    // tokensProcessed but never outputTokens, so this ratio charges
    // the storm for its recompute work automatically).
    const double goodput_ratio =
        storm.stats.outputTokensPerSecond() /
        clean.outputTokensPerSecond();

    std::cout << "\nStorm: " << storm.failuresInjected
              << " failures injected, " << storm.failuresHandled
              << " recovered, " << storm.borrows
              << " cross-block KV borrows\n"
              << "  pool: " << storm.kvCoresLost << " cores lost, "
              << storm.kvCoresAdopted << " adopted; "
              << storm.stats.stormEvictions
              << " residents storm-evicted, "
              << storm.stats.stormReprefilledTokens
              << " tokens re-prefilled\n"
              << "  degradation depth: "
              << formatDouble(degradation_depth, 3)
              << " (min/pre rate)   time-to-recover: "
              << formatDouble(recovery_seconds, 4)
              << " s   goodput ratio: "
              << formatDouble(goodput_ratio, 3) << "\n"
              << "  zero-failure path, replay and slow path all "
                 "bit-identical (asserted).\n";

    BenchReport("storm_serving")
        .metric("wall_seconds", total_timer.seconds())
        .metric("events_per_sec",
                static_cast<double>(storm.stats.tokensProcessed) /
                        storm_wall)
        .metric("clean_events_per_sec",
                static_cast<double>(clean.tokensProcessed) /
                        clean_wall)
        .metric("storm_goodput_ratio", goodput_ratio)
        .metric("storm_degradation_depth", degradation_depth)
        .metric("storm_recovery_seconds", recovery_seconds)
        .metric("storm_failures_injected", storm.failuresInjected)
        .metric("storm_failures_handled", storm.failuresHandled)
        .metric("storm_kv_cores_lost", storm.kvCoresLost)
        .metric("storm_kv_cores_adopted", storm.kvCoresAdopted)
        .metric("storm_borrows", storm.borrows)
        .metric("storm_evicted_requests",
                storm.stats.stormEvictions)
        .metric("storm_reprefilled_tokens",
                storm.stats.stormReprefilledTokens)
        .metric("storm_recomputed_tokens",
                storm.stats.recomputedTokens)
        .metric("storm_skipped_requests",
                storm.stats.skippedRequests)
        .metric("pre_storm_tokens_per_bin", pre_rate)
        .metric("throughput_bin_seconds", bin_w)
        .percentiles("storm_ttft_seconds", storm.stats.ttftSamples)
        .percentiles("storm_inter_token_seconds",
                     storm.stats.interTokenSamples)
        .text("determinism",
              "zero-failure == plain path; replay bitwise; cohort == "
              "slow path (all asserted)")
        .write();
    return 0;
}
