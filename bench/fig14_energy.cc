/**
 * @file
 * Fig. 14 - normalized energy per output token vs baselines, broken
 * into the paper's four stacked categories (compute, communication,
 * on-chip memory, off-chip memory), normalised per (model, workload)
 * to the DGX A100 total. Prints the Section 6.3 aggregate reductions
 * (paper: -84% vs DGX, -82% vs TPUv4, -78% vs AttAcc, -66% vs WSE-2).
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv);

    std::cout << "=== Fig. 14: normalized energy per output token ("
              << n << " requests) ===\n";
    Table table({"model", "workload", "system", "compute", "comm",
                 "on-chip", "off-chip", "total"});

    double red_gpu = 0.0, red_tpu = 0.0, red_att = 0.0, red_wse = 0.0;
    int count = 0;

    for (const ModelConfig &model : decoderModels()) {
        const auto sys = buildOuroboros(model);
        for (const Workload &w : paperWorkloads(n)) {
            const auto ours = sys.run(w);
            const auto gpu = evalAccelerator(dgxA100(), model, w);
            const auto tpu = evalAccelerator(tpuV4x8(), model, w);
            const auto att = evalAccelerator(attAcc(), model, w);
            const auto wse = evalWse(wse2(), model, w);
            ouroAssert(gpu.has_value(), "DGX must fit ", model.name);

            const double denom = gpu->energyPerTokenTotal();
            auto add_row = [&](const std::string &name,
                               const EnergyLedger &ledger) {
                table.row().cell(model.name).cell(w.name).cell(name);
                energyCells(table, ledger, denom);
            };
            add_row("DGX A100", gpu->energyPerToken);
            if (tpu)
                add_row("TPUv4", tpu->energyPerToken);
            if (att)
                add_row("AttAcc", att->energyPerToken);
            if (wse)
                add_row("Cerebras", wse->energyPerToken);
            add_row("Ours", ours.result.energyPerToken);

            const double mine =
                ours.result.energyPerTokenTotal();
            red_gpu += 1.0 - mine / gpu->energyPerTokenTotal();
            if (tpu)
                red_tpu += 1.0 - mine / tpu->energyPerTokenTotal();
            if (att)
                red_att += 1.0 - mine / att->energyPerTokenTotal();
            if (wse)
                red_wse += 1.0 - mine / wse->energyPerTokenTotal();
            ++count;
        }
    }
    table.print(std::cout);
    std::cout << "\nSection 6.3 aggregates (paper: -84% DGX, -82% "
                 "TPUv4, -78% AttAcc, -66% WSE-2):\n"
              << "  vs DGX A100: -"
              << formatDouble(100.0 * red_gpu / count, 1) << "%\n"
              << "  vs TPUv4:    -"
              << formatDouble(100.0 * red_tpu / count, 1) << "%\n"
              << "  vs AttAcc:   -"
              << formatDouble(100.0 * red_att / count, 1) << "%\n"
              << "  vs WSE-2:    -"
              << formatDouble(100.0 * red_wse / count, 1) << "%\n";
    return 0;
}
