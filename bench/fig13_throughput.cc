/**
 * @file
 * Fig. 13 - normalized throughput of Ouroboros vs DGX A100, TPUv4,
 * AttAcc and Cerebras WSE-2 across four decoder models and four
 * sequence-length regimes. Also prints the Section 6.2 aggregate
 * (13B-class and 32B-class mean speedups).
 *
 * The harness doubles as the serving-scale perf record for the
 * SIMULATOR itself: a >= 64-way concurrent decode-heavy run is
 * executed once through the per-event slow path and once through the
 * cohort decode fast path; the two must agree bit for bit, and the
 * events/sec of both land in BENCH_fig13_throughput.json so the
 * fast-path speedup is tracked run over run.
 */

#include <algorithm>

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

namespace
{

/** Every field of two PipelineStats must agree exactly. */
void
assertBitIdentical(const PipelineStats &a, const PipelineStats &b)
{
    ouroAssert(a.makespanSeconds == b.makespanSeconds &&
               a.tokensProcessed == b.tokensProcessed &&
               a.outputTokens == b.outputTokens &&
               a.bottleneckBusySeconds == b.bottleneckBusySeconds &&
               a.utilization == b.utilization &&
               a.evictions == b.evictions &&
               a.recomputedTokens == b.recomputedTokens &&
               a.stormEvictions == b.stormEvictions &&
               a.stormReprefilledTokens == b.stormReprefilledTokens &&
               a.skippedRequests == b.skippedRequests &&
               a.outputTokenBins == b.outputTokenBins &&
               a.peakConcurrency == b.peakConcurrency &&
               a.avgContext == b.avgContext &&
               a.ttftSamples == b.ttftSamples &&
               a.interTokenSamples == b.interTokenSamples,
               "fig13: cohort fast path diverged from slow path");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv);
    const WallTimer total_timer;

    std::cout << "=== Fig. 13: normalized throughput vs baselines ("
              << n << " requests) ===\n";
    Table table({"model", "workload", "DGX A100", "TPUv4", "AttAcc",
                 "Cerebras", "Ours", "ours/dgx"});

    double gain_13b = 0.0, gain_32b = 0.0, gain_all = 0.0;
    int n_13b = 0, n_32b = 0, n_all = 0;
    std::uint64_t cache_hits = 0, cache_misses = 0;

    for (const ModelConfig &model : decoderModels()) {
        const auto sys = buildOuroboros(model);
        for (const Workload &w : paperWorkloads(n)) {
            const auto ours = sys.run(w);
            const auto gpu = evalAccelerator(dgxA100(), model, w);
            const auto tpu = evalAccelerator(tpuV4x8(), model, w);
            const auto att = evalAccelerator(attAcc(), model, w);
            const auto wse = evalWse(wse2(), model, w);
            ouroAssert(gpu.has_value(), "DGX must fit ", model.name);

            const double base = gpu->outputTokensPerSecond;
            auto norm = [&](double v) { return v / base; };
            const double ours_tps =
                ours.result.outputTokensPerSecond;

            table.row()
                .cell(model.name)
                .cell(w.name)
                .cell(1.0, 2)
                .cell(norm(tpu ? tpu->outputTokensPerSecond : 0.0), 2)
                .cell(norm(att ? att->outputTokensPerSecond : 0.0), 2)
                .cell(norm(wse ? wse->outputTokensPerSecond : 0.0), 2)
                .cell(norm(ours_tps), 2)
                .cell(norm(ours_tps), 2);

            cache_hits += ours.pipeline.timingCacheHits;
            cache_misses += ours.pipeline.timingCacheMisses;

            const double gain = norm(ours_tps);
            gain_all += gain;
            ++n_all;
            if (model.name.find("13B") != std::string::npos) {
                gain_13b += gain;
                ++n_13b;
            } else {
                gain_32b += gain;
                ++n_32b;
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nSection 6.2 aggregates (paper: 13B avg 5.4x, 32B "
                 "avg 2.8x, overall 4.1x):\n"
              << "  13B-class mean speedup vs DGX: "
              << formatDouble(gain_13b / n_13b, 2) << "x\n"
              << "  32B-class mean speedup vs DGX: "
              << formatDouble(gain_32b / n_32b, 2) << "x\n"
              << "  overall mean speedup vs DGX:   "
              << formatDouble(gain_all / n_all, 2) << "x\n";

    // --- Serving fast-path record (PR 2) ---
    // 384 decode-heavy chat-like sequences (16-token prompts, 112
    // output tokens) resident at once on the llama-13B deployment.
    // The pool admits the whole cohort at t=0 and decode stays in
    // steady state (no thrashing - the operating point a production
    // admission controller targets), which is exactly the regime the
    // cohort fast path accelerates. The slow-path run is the PR 1
    // engine (per-event heap pops, per-token KV grow); both runs
    // must produce bit-identical PipelineStats. Best-of-3 timing on
    // each side keeps the record stable on noisy shared runners.
    const ModelConfig serve_model = llama13b();
    const auto serve_sys = buildOuroboros(serve_model);
    Workload serving = fixedWorkload(16, 112, 384);
    serving.name = "decode-heavy-384";

    auto engine_run = [&](bool cohort, double &best_wall) {
        PipelineStats stats;
        best_wall = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            BlockKvManager kv(serve_model, serve_sys.scorePool(),
                              serve_sys.contextPool(), 128,
                              serve_sys.options().kvThreshold);
            PipelineOptions popts;
            popts.attentionParallelism = 16.0;
            popts.cohortFastPath = cohort;
            const WallTimer timer;
            const PipelineStats rep_stats =
                runPipeline(serving, serve_model,
                            serve_sys.stageTiming(), kv, popts);
            best_wall = std::min(best_wall, timer.seconds());
            if (rep > 0)
                assertBitIdentical(stats, rep_stats);
            stats = rep_stats;
        }
        return stats;
    };
    double slow_wall = 0.0;
    double fast_wall = 0.0;
    const PipelineStats slow_stats = engine_run(false, slow_wall);
    const PipelineStats fast_stats = engine_run(true, fast_wall);
    assertBitIdentical(slow_stats, fast_stats);
    ouroAssert(fast_stats.peakConcurrency >= 64.0,
               "fig13: serving cohort below 64 concurrent streams");
    ouroAssert(fast_stats.evictions == 0 &&
               fast_stats.skippedRequests == 0,
               "fig13: serving run must be thrash-free");

    const auto events =
        static_cast<double>(fast_stats.tokensProcessed);
    std::cout << "\nServing fast path (384 concurrent decode "
                 "streams, bit-identical stats):\n"
              << "  slow path: "
              << formatDouble(events / slow_wall, 0)
              << " events/s   cohort: "
              << formatDouble(events / fast_wall, 0)
              << " events/s   speedup: "
              << formatDouble(slow_wall / fast_wall, 2) << "x\n";

    BenchReport("fig13_throughput")
        .metric("wall_seconds", total_timer.seconds())
        .metric("events_per_sec", events / fast_wall)
        .metric("events_per_sec_slow_path", events / slow_wall)
        .metric("fastpath_speedup", slow_wall / fast_wall)
        .metric("serving_events", fast_stats.tokensProcessed)
        .metric("serving_peak_concurrency",
                fast_stats.peakConcurrency)
        // Dropped or redone work is never silent: the serving run
        // asserts all three are zero today, and the record pins that
        // so any future nonzero shows up as a trajectory change (the
        // storm-serving bench records the nonzero counterparts).
        .metric("serving_skipped_requests",
                fast_stats.skippedRequests)
        .metric("serving_storm_evicted_requests",
                fast_stats.stormEvictions)
        .metric("serving_storm_reprefilled_tokens",
                fast_stats.stormReprefilledTokens)
        .percentiles("serving_ttft_seconds", fast_stats.ttftSamples)
        .percentiles("serving_inter_token_seconds",
                     fast_stats.interTokenSamples)
        .timingCache(cache_hits, cache_misses)
        .text("determinism", "cohort == slow path (asserted)")
        .write();
    return 0;
}
