/**
 * @file
 * Fig. 13 - normalized throughput of Ouroboros vs DGX A100, TPUv4,
 * AttAcc and Cerebras WSE-2 across four decoder models and four
 * sequence-length regimes. Also prints the Section 6.2 aggregate
 * (13B-class and 32B-class mean speedups).
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv);

    std::cout << "=== Fig. 13: normalized throughput vs baselines ("
              << n << " requests) ===\n";
    Table table({"model", "workload", "DGX A100", "TPUv4", "AttAcc",
                 "Cerebras", "Ours", "ours/dgx"});

    double gain_13b = 0.0, gain_32b = 0.0, gain_all = 0.0;
    int n_13b = 0, n_32b = 0, n_all = 0;

    for (const ModelConfig &model : decoderModels()) {
        const auto sys = buildOuroboros(model);
        for (const Workload &w : paperWorkloads(n)) {
            const auto ours = sys.run(w);
            const auto gpu = evalAccelerator(dgxA100(), model, w);
            const auto tpu = evalAccelerator(tpuV4x8(), model, w);
            const auto att = evalAccelerator(attAcc(), model, w);
            const auto wse = evalWse(wse2(), model, w);
            ouroAssert(gpu.has_value(), "DGX must fit ", model.name);

            const double base = gpu->outputTokensPerSecond;
            auto norm = [&](double v) { return v / base; };
            const double ours_tps =
                ours.result.outputTokensPerSecond;

            table.row()
                .cell(model.name)
                .cell(w.name)
                .cell(1.0, 2)
                .cell(norm(tpu ? tpu->outputTokensPerSecond : 0.0), 2)
                .cell(norm(att ? att->outputTokensPerSecond : 0.0), 2)
                .cell(norm(wse ? wse->outputTokensPerSecond : 0.0), 2)
                .cell(norm(ours_tps), 2)
                .cell(norm(ours_tps), 2);

            const double gain = norm(ours_tps);
            gain_all += gain;
            ++n_all;
            if (model.name.find("13B") != std::string::npos) {
                gain_13b += gain;
                ++n_13b;
            } else {
                gain_32b += gain;
                ++n_32b;
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nSection 6.2 aggregates (paper: 13B avg 5.4x, 32B "
                 "avg 2.8x, overall 4.1x):\n"
              << "  13B-class mean speedup vs DGX: "
              << formatDouble(gain_13b / n_13b, 2) << "x\n"
              << "  32B-class mean speedup vs DGX: "
              << formatDouble(gain_32b / n_32b, 2) << "x\n"
              << "  overall mean speedup vs DGX:   "
              << formatDouble(gain_all / n_all, 2) << "x\n";
    return 0;
}
