/**
 * @file
 * Figs. 19 & 20 / Section 6.8 - multi-wafer scaling: LLaMA-65B on
 * two interconnected wafers vs the baselines (paper: avg 5.4x
 * throughput, -79% energy; inter-wafer traffic negligible thanks to
 * the pipelined cut).
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 60);
    const ModelConfig model = llama65b();

    OuroborosOptions opts;
    opts.numWafers = 2;
    const auto sys = buildOuroboros(model, opts);

    // Baselines need doubled capacity too (the paper keeps their
    // §6.1 configurations, which already fit 65B at fp16 on 320 GB;
    // the plain DGX needs two nodes).
    AcceleratorParams dgx2 = dgxA100();
    dgx2.numDevices = 16;
    dgx2.name = "DGX A100 x2";
    AcceleratorParams tpu2 = tpuV4x8();
    tpu2.numDevices = 16;
    WseParams wse_double = wse2();
    wse_double.numWafers = 2;

    std::cout << "=== Fig. 19: multi-wafer throughput (LLaMA-65B, "
                 "2 wafers) ===\n";
    Table thpt({"workload", "DGX A100", "TPUv4", "AttAcc",
                "Cerebras", "Ours"});
    std::cout << "(energy table below reproduces Fig. 20)\n";
    Table energy({"workload", "system", "compute", "comm", "on-chip",
                  "off-chip", "total"});

    double gain = 0.0;
    double reduction = 0.0;
    int count = 0;
    std::uint64_t evals_done = 0;
    const WallTimer timer;
    const std::vector<Workload> workloads = paperWorkloads(n);

    // Every workload's five system evaluations are independent:
    // fan out on the parallel runtime, then render rows in order.
    struct WorkloadEval
    {
        OuroborosReport ours;
        std::optional<SystemResult> gpu, tpu, att, wse;
    };
    std::vector<WorkloadEval> evals(workloads.size());
    parallelFor(workloads.size(), [&](std::size_t i) {
        const Workload &w = workloads[i];
        evals[i].ours = sys.run(w);
        evals[i].gpu = evalAccelerator(dgx2, model, w);
        evals[i].tpu = evalAccelerator(tpu2, model, w);
        evals[i].att = evalAccelerator(attAcc(), model, w);
        evals[i].wse = evalWse(wse_double, model, w);
    });

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Workload &w = workloads[i];
        const auto &ours = evals[i].ours;
        const auto &gpu = evals[i].gpu;
        const auto &tpu = evals[i].tpu;
        const auto &att = evals[i].att;
        const auto &wse = evals[i].wse;
        ouroAssert(gpu.has_value(), "2x DGX must fit 65B");
        // Count only the evaluations actually performed: ours + DGX
        // always run; the other baselines return nullopt when the
        // model does not fit their configuration.
        evals_done += 2 + (tpu.has_value() ? 1 : 0) +
                      (att.has_value() ? 1 : 0) +
                      (wse.has_value() ? 1 : 0);

        const double tps0 = gpu->outputTokensPerSecond;
        thpt.row()
            .cell(w.name)
            .cell(1.0, 2)
            .cell((tpu ? tpu->outputTokensPerSecond : 0.0) / tps0, 2)
            .cell((att ? att->outputTokensPerSecond : 0.0) / tps0, 2)
            .cell((wse ? wse->outputTokensPerSecond : 0.0) / tps0, 2)
            .cell(ours.result.outputTokensPerSecond / tps0, 2);

        const double e0 = gpu->energyPerTokenTotal();
        auto add_energy = [&](const std::string &name,
                              const EnergyLedger &ledger) {
            energy.row().cell(w.name).cell(name);
            energyCells(energy, ledger, e0);
        };
        add_energy("DGX A100", gpu->energyPerToken);
        if (att)
            add_energy("AttAcc", att->energyPerToken);
        if (wse)
            add_energy("Cerebras", wse->energyPerToken);
        add_energy("Ours", ours.result.energyPerToken);

        gain += ours.result.outputTokensPerSecond / tps0;
        reduction += 1.0 - ours.result.energyPerTokenTotal() / e0;
        ++count;
    }
    thpt.print(std::cout);
    std::cout << "\n=== Fig. 20: multi-wafer energy per output token "
                 "(normalized to DGX) ===\n";
    energy.print(std::cout);
    std::cout << "\nAggregates (paper: 5.4x average speedup, -79% "
                 "energy):\n  speedup vs DGX: "
              << formatDouble(gain / count, 2)
              << "x\n  energy vs DGX:  -"
              << formatDouble(100.0 * reduction / count, 1) << "%\n";
    BenchReport("fig19_multiwafer")
        .metric("wall_seconds", timer.seconds())
        .metric("events_per_sec",
                static_cast<double>(evals_done) / timer.seconds())
        .metric("system_evals", evals_done)
        .metric("workloads",
                static_cast<std::uint64_t>(workloads.size()))
        .write();
    return 0;
}
