/**
 * @file
 * Fig. 21 / Section 6.9 - system-level impact of the CIM macro
 * choice: building the wafer from the peak-efficiency VLSI'22 /
 * ISSCC'22 macros (which then need HBM2 for the weights) vs our
 * capacity-first macro, plus the Ours+LUT variant. Paper: ours
 * averages 5.18x throughput and -64% energy vs the macro baselines;
 * LUT compute saves a further ~10% energy.
 */

#include "bench_util.hh"

using namespace ouro;
using namespace ouro::bench;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const std::size_t n = requestCount(argc, argv, 100);

    std::cout << "=== Fig. 21: CIM macro choice at system level ===\n";
    Table table({"model", "workload", "macro", "thpt(norm ours)",
                 "energy(norm ours)"});

    double gain_sum = 0.0;
    double energy_red = 0.0;
    double lut_saving = 0.0;
    int macro_count = 0;
    int cell_count = 0;

    for (const ModelConfig &model : decoderModels()) {
        // "Ours" is the full Ouroboros system; the macro baselines
        // plug peak-efficiency macros into the same wafer but must
        // stream weights from the provisioned HBM2.
        const auto sys = buildOuroboros(model);
        for (const Workload &w : paperWorkloads(n)) {
            const auto ours_rep = sys.run(w);
            const double tps0 =
                ours_rep.result.outputTokensPerSecond;
            const double e0 =
                ours_rep.result.energyPerTokenTotal();
            table.row()
                .cell(model.name)
                .cell(w.name)
                .cell("Ours")
                .cell(1.0, 3)
                .cell(1.0, 3);
            for (const CimMacroParams &macro :
                 {cimVlsi22(), cimIsscc22()}) {
                const SystemResult r = evalCimMacro(macro, model, w);
                table.row()
                    .cell(model.name)
                    .cell(w.name)
                    .cell(macro.name)
                    .cell(r.outputTokensPerSecond / tps0, 3)
                    .cell(r.energyPerTokenTotal() / e0, 3);
                gain_sum += tps0 / r.outputTokensPerSecond;
                energy_red += 1.0 - e0 / r.energyPerTokenTotal();
                ++macro_count;
            }
            // Ours+LUT: same system, LUT-based compute saves 10% of
            // the compute energy (Section 6.9).
            EnergyLedger lut = ours_rep.result.energyPerToken;
            const double lut_total =
                lut.total() -
                0.10 * lut.get(EnergyCategory::Compute);
            table.row()
                .cell(model.name)
                .cell(w.name)
                .cell("Ours+LUT")
                .cell(1.0, 3)
                .cell(lut_total / e0, 3);
            lut_saving += 1.0 - lut_total / e0;
            ++cell_count;
        }
    }
    table.print(std::cout);
    std::cout << "\nAggregates (paper: 5.18x throughput, -64% energy "
                 "vs macro baselines; LUT -10%):\n"
              << "  ours vs HBM-backed macros: "
              << formatDouble(gain_sum / macro_count, 2)
              << "x throughput, -"
              << formatDouble(100.0 * energy_red / macro_count, 1)
              << "% energy\n"
              << "  Ours+LUT extra energy saving: -"
              << formatDouble(100.0 * lut_saving / cell_count, 1)
              << "%\n";
    return 0;
}
