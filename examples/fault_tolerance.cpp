/**
 * @file
 * Fault-tolerance study (paper Section 4.3.3, Fig. 9): inject core
 * failures into a mapped block and watch the replacement-chain
 * recovery - weights shuffle one hop toward the nearest KV core,
 * the KV core is absorbed, and recovery stays sub-millisecond.
 *
 * The example also runs the yield model at several defect densities
 * to show how many cores a production wafer loses, and verifies the
 * mapper routes around them.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "hw/yield.hh"
#include "mapping/remap.hh"
#include "mapping/wafer_mapping.hh"
#include "model/llm.hh"
#include "noc/mesh.hh"

int
main()
{
    using namespace ouro;
    setQuiet(true);

    const WaferGeometry geom;

    // --- Yield sweep ---
    std::cout << "Murphy yield model (core area 2.97 mm^2):\n";
    Table yield_table({"D0 [/cm^2]", "core yield", "expected defects",
                       "sampled defects"});
    for (const double d0 : {0.05, 0.09, 0.20, 0.50}) {
        YieldParams params;
        params.defectDensityPerCm2 = d0;
        Rng rng(100 + static_cast<std::uint64_t>(d0 * 1000));
        const DefectMap map(geom, params, rng);
        yield_table.row()
            .cell(d0, 2)
            .cell(murphyYield(params), 5)
            .cell(coreDefectProbability(params) *
                  static_cast<double>(geom.numCores()), 1)
            .cell(map.numDefects());
    }
    yield_table.print(std::cout);

    // --- Mapping around fabrication defects ---
    const ModelConfig model = llama13b();
    YieldParams params; // paper default D0 = 0.09
    Rng rng(7);
    const DefectMap defects(geom, params, rng);
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    auto mapping = WaferMapping::build(model, CoreParams{}, geom,
                                       &defects, 0, model.numBlocks,
                                       opts);
    if (!mapping)
        fatal("mapping failed");
    std::cout << "\nMapped " << model.name << " around "
              << defects.numDefects() << " defective cores; "
              << mapping->totalKvCores() << " KV cores remain.\n";

    // --- Runtime failures and replacement chains ---
    std::cout << "\nRuntime core failures (replacement chains, "
                 "Section 4.3.3):\n";
    Table chain_table({"failed core", "kind", "chain length",
                       "moved MB", "latency [us]"});
    BlockPlacement placement = mapping->placement(0);
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    // Route-aware recovery: the mesh knows the fabrication defects,
    // so every shift is priced over its actual (cached) detour
    // route. The mesh starts from a shared clean-route table (the
    // per-geometry table a sweep would reuse across many meshes) and
    // the chain construction runs on the spatial recovery index -
    // both bit-identical to the cold-mesh/scan oracles.
    const auto routes =
        std::make_shared<const CleanRouteTable>(geom, NocParams{});
    const MeshNoc noc(geom, NocParams{}, &defects, routes);
    RecoveryIndex index(placement);

    // Fail three weight cores and one KV core of block 0 in turn.
    for (int k = 0; k < 3; ++k) {
        const CoreCoord failed =
            placement.weightCores[static_cast<std::size_t>(k * 7)];
        const auto result = recoverCoreFailure(placement, failed,
                                               noc, tile_bytes,
                                               &index);
        ouroAssert(result.has_value(), "recovery failed");
        chain_table.row()
            .cell("(" + std::to_string(failed.row) + "," +
                  std::to_string(failed.col) + ")")
            .cell("weights")
            .cell(static_cast<std::uint64_t>(result->chainLength))
            .cell(static_cast<double>(result->movedBytes) / 1e6, 1)
            .cell(result->latencySeconds * 1e6, 1);
        ouroAssert(result->latencySeconds < 1e-3,
                   "recovery exceeded the paper's sub-ms bound");
    }
    if (!placement.scoreCores.empty()) {
        const CoreCoord failed = placement.scoreCores.front();
        const auto result = recoverCoreFailure(placement, failed,
                                               noc, tile_bytes,
                                               &index);
        ouroAssert(result.has_value(), "KV recovery failed");
        chain_table.row()
            .cell("(" + std::to_string(failed.row) + "," +
                  std::to_string(failed.col) + ")")
            .cell("kv-cache")
            .cell(static_cast<std::uint64_t>(result->chainLength))
            .cell(0.0, 1)
            .cell(0.0, 1);
    }
    chain_table.print(std::cout);
    std::cout << "\nAll weight-core recoveries completed within "
                 "sub-millisecond latency; KV-core\nfailures cost "
                 "only the resident sequences' recompute.\n"
              << "Shared clean-route table served "
              << noc.sharedTableHits() << " routes ("
              << noc.routeCacheMisses()
              << " needed a local detour around the defects).\n";
    return 0;
}
