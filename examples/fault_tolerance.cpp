/**
 * @file
 * Fault-tolerance study (paper Section 4.3.3, Fig. 9): inject core
 * failures into a mapped block and watch the replacement-chain
 * recovery - weights shuffle one hop toward the nearest KV core,
 * the KV core is absorbed, and recovery stays sub-millisecond.
 *
 * The example also runs the yield model at several defect densities
 * to show how many cores a production wafer loses, and verifies the
 * mapper routes around them.
 *
 * Failures are driven through the wafer-level RecoveryService - the
 * single runtime entry point that owns the recovery indices, the
 * shared clean-route table and the defect state - including a
 * drained-pool scenario where the service borrows KV capacity from
 * the adjacent block instead of failing.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "hw/yield.hh"
#include "mapping/wafer_mapping.hh"
#include "model/llm.hh"
#include "noc/mesh.hh"
#include "runtime/recovery_service.hh"

int
main()
{
    using namespace ouro;
    setQuiet(true);

    const WaferGeometry geom;

    // --- Yield sweep ---
    std::cout << "Murphy yield model (core area 2.97 mm^2):\n";
    Table yield_table({"D0 [/cm^2]", "core yield", "expected defects",
                       "sampled defects"});
    for (const double d0 : {0.05, 0.09, 0.20, 0.50}) {
        YieldParams params;
        params.defectDensityPerCm2 = d0;
        Rng rng(100 + static_cast<std::uint64_t>(d0 * 1000));
        const DefectMap map(geom, params, rng);
        yield_table.row()
            .cell(d0, 2)
            .cell(murphyYield(params), 5)
            .cell(coreDefectProbability(params) *
                  static_cast<double>(geom.numCores()), 1)
            .cell(map.numDefects());
    }
    yield_table.print(std::cout);

    // --- Mapping around fabrication defects ---
    const ModelConfig model = llama13b();
    YieldParams params; // paper default D0 = 0.09
    Rng rng(7);
    const DefectMap defects(geom, params, rng);
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    auto mapping = WaferMapping::build(model, CoreParams{}, geom,
                                       &defects, 0, model.numBlocks,
                                       opts);
    if (!mapping)
        fatal("mapping failed");
    std::cout << "\nMapped " << model.name << " around "
              << defects.numDefects() << " defective cores; "
              << mapping->totalKvCores() << " KV cores remain.\n";

    // --- Runtime failures through the RecoveryService ---
    std::cout << "\nRuntime core failures (replacement chains, "
                 "Section 4.3.3), handled by the\nwafer-level "
                 "RecoveryService:\n";
    Table chain_table({"failed core", "kind", "block", "chain length",
                       "moved MB", "latency [us]"});
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    // The service owns the whole fault path: one recovery index per
    // replica-chain region, the shared clean-route table (the
    // per-geometry table a sweep would reuse across many meshes),
    // and the defect map - every chain shift is priced over its
    // actual (cached) detour route, bit-identical to the
    // cold-mesh/scan oracles.
    RecoveryService service(*mapping, NocParams{}, tile_bytes,
                            &defects);

    // Fail three weight cores and one KV core of block 0 in turn.
    for (int k = 0; k < 3; ++k) {
        const CoreCoord failed =
            service.placement(0).weightCores[static_cast<std::size_t>(
                    k * 7)];
        const auto result = service.handleCoreFailure(failed);
        ouroAssert(result.has_value(), "recovery failed");
        chain_table.row()
            .cell("(" + std::to_string(failed.row) + "," +
                  std::to_string(failed.col) + ")")
            .cell("weights")
            .cell(result->block)
            .cell(static_cast<std::uint64_t>(
                    result->remap.chainLength))
            .cell(static_cast<double>(result->remap.movedBytes) /
                          1e6, 1)
            .cell(result->remap.latencySeconds * 1e6, 1);
        ouroAssert(result->remap.latencySeconds < 1e-3,
                   "recovery exceeded the paper's sub-ms bound");
    }
    if (!service.placement(0).scoreCores.empty()) {
        const CoreCoord failed =
            service.placement(0).scoreCores.front();
        const auto result = service.handleCoreFailure(failed);
        ouroAssert(result.has_value(), "KV recovery failed");
        chain_table.row()
            .cell("(" + std::to_string(failed.row) + "," +
                  std::to_string(failed.col) + ")")
            .cell("kv-cache")
            .cell(result->block)
            .cell(static_cast<std::uint64_t>(
                    result->remap.chainLength))
            .cell(0.0, 1)
            .cell(0.0, 1);
    }
    chain_table.print(std::cout);
    std::cout << "\nAll weight-core recoveries completed within "
                 "sub-millisecond latency; KV-core\nfailures cost "
                 "only the resident sequences' recompute.\n"
              << "Shared clean-route table served "
              << service.noc().sharedTableHits() << " routes ("
              << service.noc().routeCacheMisses()
              << " needed a local detour around the defects).\n";

    // --- Cross-block KV borrowing ---
    // Drain block 0's dedicated KV pool dry, then fail one more
    // weight core: instead of giving up, the service borrows the
    // nearest KV core from the adjacent block of the same chain and
    // completes the chain into it.
    std::uint64_t drained = 0;
    while (!service.placement(0).scoreCores.empty() ||
           !service.placement(0).contextCores.empty()) {
        const auto &p = service.placement(0);
        const CoreCoord kv = p.scoreCores.empty()
                                 ? p.contextCores.front()
                                 : p.scoreCores.front();
        ouroAssert(service.handleCoreFailure(kv).has_value(),
                   "KV drain failed");
        ++drained;
    }
    const CoreCoord dry_failure = service.placement(0).weightCores[1];
    const auto borrowed = service.handleCoreFailure(dry_failure);
    ouroAssert(borrowed.has_value() && !borrowed->borrows.empty(),
               "dry-pool recovery did not borrow");
    const KvBorrow &loan = borrowed->borrows.front();
    std::cout << "\nKV borrow: drained block 0's remaining "
              << drained << " KV cores, then failed weight core ("
              << dry_failure.row << "," << dry_failure.col
              << ");\nthe service borrowed KV core (" << loan.core.row
              << "," << loan.core.col << ") from block "
              << loan.fromBlock
              << " and completed the chain (length "
              << borrowed->remap.chainLength << ", "
              << formatDouble(borrowed->remap.latencySeconds * 1e6, 1)
              << " us).\n"
              << "Recoveries handled: " << service.recoveries()
              << " (" << service.borrowCount()
              << " cross-block borrows); block 0's inter-block "
                 "flows re-priced each time.\n";
    return 0;
}
