/**
 * @file
 * LLM serving study: how Ouroboros behaves as a *serving* system
 * under mixed traffic - the scenario the paper's introduction
 * motivates (an inference service receiving requests of wildly
 * varying lengths, where sequence-grained pipelines bubble).
 *
 * The example contrasts token-grained and sequence-grained
 * pipelining on the same deployment across three traffic mixes
 * (chat-like short prompts, document summarisation, and a heavy
 * mixed bag), reporting throughput, utilisation, bubbles, KV
 * evictions and recompute waste.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

namespace
{

using namespace ouro;

/** Chat: short prompts, medium answers. */
Workload
chatTraffic(std::size_t n)
{
    Workload w = wikiText2Like(n, 512, 11);
    w.name = "chat";
    for (auto &r : w.requests) {
        r.prefillLen = std::max<std::uint64_t>(16, r.prefillLen / 4);
        r.decodeLen = std::max<std::uint64_t>(32, r.decodeLen);
    }
    return w;
}

/** Summarisation: long prompts, short outputs. */
Workload
summarizeTraffic(std::size_t n)
{
    Workload w = fixedWorkload(1536, 96, n);
    w.name = "summarize";
    return w;
}

/** Mixed: the WikiText-2-like heavy-tailed mix. */
Workload
mixedTraffic(std::size_t n)
{
    Workload w = wikiText2Like(n, 2048, 13);
    w.name = "mixed";
    return w;
}

} // namespace

int
main()
{
    using namespace ouro;
    setQuiet(true);

    const ModelConfig model = llama13b();

    OuroborosOptions tgp_opts;
    OuroborosOptions sgp_opts;
    sgp_opts.tokenGrained = false;

    auto tgp_sys = OuroborosSystem::build(model, {}, tgp_opts);
    auto sgp_sys = OuroborosSystem::build(model, {}, sgp_opts);
    if (!tgp_sys || !sgp_sys)
        fatal("build failed");

    std::cout << "LLM serving on Ouroboros (" << model.name
              << "): token-grained vs sequence-grained\n\n";
    Table table({"traffic", "pipeline", "tokens/s", "util",
                 "bubbles", "evictions", "recomputed", "skipped",
                 "peak conc"});

    std::uint64_t skipped_total = 0;
    for (const Workload &w :
         {chatTraffic(80), summarizeTraffic(80), mixedTraffic(80)}) {
        for (const bool tgp : {true, false}) {
            const auto &sys = tgp ? *tgp_sys : *sgp_sys;
            const OuroborosReport rep = sys.run(w);
            skipped_total += rep.pipeline.skippedRequests;
            table.row()
                .cell(w.name)
                .cell(tgp ? "token-grained" : "sequence-grained")
                .cell(rep.result.outputTokensPerSecond, 0)
                .cell(rep.pipeline.utilization, 3)
                .cell(rep.pipeline.bubbleFraction, 3)
                .cell(rep.pipeline.evictions)
                .cell(rep.pipeline.recomputedTokens)
                .cell(rep.pipeline.skippedRequests)
                .cell(rep.pipeline.peakConcurrency, 0);
        }
    }
    table.print(std::cout);
    std::cout << "\nTGP should dominate on every mix, with the edge "
                 "largest on 'mixed' (length\nvariance is what "
                 "sequence granularity cannot absorb).\n";
    if (skipped_total > 0) {
        std::cout << "NOTE: " << skipped_total
                  << " request(s) exceeded KV pool capacity and were "
                     "skipped - throughput\nnumbers above exclude "
                     "that work.\n";
    }
    return 0;
}
