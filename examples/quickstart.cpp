/**
 * @file
 * Quickstart: build an Ouroboros wafer for LLaMA-13B, run a small
 * request stream, and print the headline numbers. This is the
 * five-minute tour of the public API:
 *
 *   1. pick a model        (ouro::llama13b() and friends)
 *   2. describe hardware   (ouro::OuroborosParams - paper defaults)
 *   3. choose options      (ouro::OuroborosOptions - all features on)
 *   4. build the system    (ouro::OuroborosSystem::build)
 *   5. generate a workload (ouro::wikiText2Like / fixedWorkload)
 *   6. run and inspect     (OuroborosSystem::run -> OuroborosReport)
 */

#include <iostream>

#include "baselines/analytic.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

int
main()
{
    using namespace ouro;

    // 1-2. Model + hardware. The defaults reproduce the paper's
    // wafer: 9x7 dies, 13x17 CIM cores per die, 4 MB SRAM per core.
    const ModelConfig model = llama13b();
    const OuroborosParams hw;

    // 3. All three innovations enabled (TGP + dynamic KV + annealed
    // mapping); Murphy-model defects injected with a fixed seed.
    OuroborosOptions opts;
    opts.seed = 42;

    // 4. Build. This runs the yield model, the communication-aware
    // mapper, and derives the pipeline's stage timing.
    auto sys = OuroborosSystem::build(model, hw, opts);
    if (!sys)
        fatal("model does not fit a single wafer");

    std::cout << "Built Ouroboros for " << model.name << ":\n"
              << "  defective cores: " << sys->numDefects() << "\n"
              << "  mapping volume:  "
              << sys->totalMappingByteHops() / 1e6
              << " MB-hops per token\n\n";

    // 5. A small WikiText-2-like request stream.
    const Workload workload = wikiText2Like(50, 2048, /*seed=*/7);

    // 6. Run and compare against a DGX A100 running vLLM-style
    // continuous batching.
    const OuroborosReport report = sys->run(workload);
    const auto dgx = evalAccelerator(dgxA100(), model, workload);

    Table table({"system", "tokens/s", "J/token", "utilization"});
    table.row()
        .cell("Ouroboros")
        .cell(report.result.outputTokensPerSecond, 0)
        .cell(report.result.energyPerTokenTotal(), 4)
        .cell(report.result.utilization, 3);
    if (dgx) {
        table.row()
            .cell("DGX A100")
            .cell(dgx->outputTokensPerSecond, 0)
            .cell(dgx->energyPerTokenTotal(), 4)
            .cell("-");
    }
    table.print(std::cout);

    if (dgx) {
        std::cout << "\nSpeedup vs DGX A100: "
                  << formatDouble(
                             report.result.outputTokensPerSecond /
                             dgx->outputTokensPerSecond, 2)
                  << "x; energy: "
                  << formatDouble(
                             report.result.energyPerTokenTotal() /
                             dgx->energyPerTokenTotal(), 2)
                  << "x\n";
    }
    return 0;
}
