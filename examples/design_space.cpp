/**
 * @file
 * Design-space exploration: what-if studies a wafer architect would
 * run with this library.
 *
 *   1. KV threshold: the Fig. 17 dial, at serving granularity.
 *   2. Crossbar size: smaller crossbars broadcast less but pipeline
 *      worse (the Section 3 sizing argument for 4 MB cores).
 *   3. Wafer slice: how throughput scales when only a fraction of
 *      the wafer is populated (cost-down variants).
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

int
main()
{
    using namespace ouro;
    setQuiet(true);

    const ModelConfig model = llama13b();
    const Workload workload = wikiText2Like(60, 2048, 21);

    // --- 1. KV threshold dial ---
    std::cout << "1) KV anti-thrashing threshold:\n";
    Table kv_table({"threshold", "tokens/s", "evictions",
                    "kv utilization"});
    for (const double threshold : {0.0, 0.1, 0.3}) {
        OuroborosOptions opts;
        opts.kvThreshold = threshold;
        auto sys = OuroborosSystem::build(model, {}, opts);
        if (!sys)
            fatal("build failed");
        const auto rep = sys->run(workload);
        kv_table.row()
            .cell(threshold, 1)
            .cell(rep.result.outputTokensPerSecond, 0)
            .cell(rep.pipeline.evictions)
            .cell(rep.kvUtilization, 3);
    }
    kv_table.print(std::cout);

    // --- 2. Crossbars per core ---
    std::cout << "\n2) Crossbars per core (core capacity vs pipeline "
                 "balance):\n";
    Table core_table({"crossbars", "core SRAM[MiB]", "tokens/s",
                      "util"});
    for (const std::uint32_t xbars : {16u, 32u, 48u}) {
        OuroborosParams hw;
        hw.core.numCrossbars = xbars;
        auto sys = OuroborosSystem::build(model, hw, {});
        if (!sys) {
            core_table.row()
                .cell(static_cast<int>(xbars))
                .cell("-")
                .cell("does not fit")
                .cell("-");
            continue;
        }
        const auto rep = sys->run(workload);
        core_table.row()
            .cell(static_cast<int>(xbars))
            .cell(static_cast<double>(hw.core.sramBytes()) /
                  static_cast<double>(MiB), 1)
            .cell(rep.result.outputTokensPerSecond, 0)
            .cell(rep.result.utilization, 3);
    }
    core_table.print(std::cout);

    // --- 3. Partial wafers ---
    std::cout << "\n3) Partially populated wafers (die grid slices):\n";
    Table wafer_table({"die grid", "cores", "fits 13B?", "tokens/s"});
    struct Slice
    {
        std::uint32_t rows, cols;
    };
    for (const Slice slice : {Slice{5, 4}, Slice{7, 5}, Slice{9, 7}}) {
        const WaferGeometry geom(slice.rows, slice.cols, 13, 17);
        // Rough capacity gate before attempting a build.
        OuroborosParams hw;
        const bool fits =
            hw.waferSramBytes(geom.numCores()) >
            model.totalWeightBytes() * 1.2;
        std::string tps = "-";
        if (fits) {
            // Build on a custom geometry via the mapping layer
            // directly: the system simulator assumes the full wafer,
            // so scale throughput by the KV-pool proxy instead.
            auto sys = OuroborosSystem::build(model, hw, {});
            if (sys) {
                // Scale: stage timing is geometry-invariant; the KV
                // pool (and hence decode concurrency) shrinks with
                // the region size.
                const auto rep = sys->run(workload);
                const double scale =
                    static_cast<double>(geom.numCores()) /
                    static_cast<double>(WaferGeometry{}.numCores());
                tps = formatDouble(
                        rep.result.outputTokensPerSecond *
                        std::min(1.0, scale), 0);
            }
        }
        wafer_table.row()
            .cell(std::to_string(slice.rows) + "x" +
                  std::to_string(slice.cols))
            .cell(geom.numCores())
            .cell(fits ? "yes" : "no")
            .cell(tps);
    }
    wafer_table.print(std::cout);
    return 0;
}
