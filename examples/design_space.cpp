/**
 * @file
 * Design-space exploration: what-if studies a wafer architect would
 * run with this library.
 *
 *   1. KV threshold: the Fig. 17 dial, at serving granularity.
 *   2. Crossbar size: smaller crossbars broadcast less but pipeline
 *      worse (the Section 3 sizing argument for 4 MB cores).
 *   3. Wafer slice: how throughput scales when only a fraction of
 *      the wafer is populated (cost-down variants).
 *
 * Every sweep point is independent (own build, own deterministic
 * seeds), so the sweep runs on the parallel runtime; each point
 * writes only its own result slot, making the parallel output
 * bit-identical to a serial run. Run with --compare to execute the
 * sweep both serially and in parallel, verify identical output, and
 * record the speedup in BENCH_design_space.json.
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

namespace
{

using namespace ouro;

/** Loop executor: a serial for-loop or the parallel runtime. */
using Executor = std::function<void(
        std::size_t, const std::function<void(std::size_t)> &)>;

/** One full exploration, rendered to text. */
struct SweepOutput
{
    std::string rendered;
    std::uint64_t tokensProcessed = 0; ///< engine events simulated
};

SweepOutput
runSweeps(const Executor &exec)
{
    SweepOutput out;
    std::uint64_t tokens = 0;

    const ModelConfig model = llama13b();
    const Workload workload = wikiText2Like(60, 2048, 21);
    std::ostringstream os;

    // --- 1. KV threshold dial ---
    os << "1) KV anti-thrashing threshold:\n";
    Table kv_table({"threshold", "tokens/s", "evictions", "skipped",
                    "kv utilization"});
    const std::vector<double> thresholds{0.0, 0.1, 0.3};
    std::vector<OuroborosReport> kv_reports(thresholds.size());
    exec(thresholds.size(), [&](std::size_t i) {
        OuroborosOptions opts;
        opts.kvThreshold = thresholds[i];
        auto sys = OuroborosSystem::build(model, {}, opts);
        if (!sys)
            fatal("build failed");
        kv_reports[i] = sys->run(workload);
    });
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
        const auto &rep = kv_reports[i];
        kv_table.row()
            .cell(thresholds[i], 1)
            .cell(rep.result.outputTokensPerSecond, 0)
            .cell(rep.pipeline.evictions)
            .cell(rep.pipeline.skippedRequests)
            .cell(rep.kvUtilization, 3);
        tokens += rep.pipeline.tokensProcessed;
    }
    kv_table.print(os);

    // --- 2. Crossbars per core ---
    os << "\n2) Crossbars per core (core capacity vs pipeline "
          "balance):\n";
    Table core_table({"crossbars", "core SRAM[MiB]", "tokens/s",
                      "util"});
    const std::vector<std::uint32_t> xbar_counts{16u, 32u, 48u};
    struct CorePoint
    {
        bool fits = false;
        double sramMib = 0.0;
        OuroborosReport report;
    };
    std::vector<CorePoint> core_points(xbar_counts.size());
    exec(xbar_counts.size(), [&](std::size_t i) {
        OuroborosParams hw;
        hw.core.numCrossbars = xbar_counts[i];
        core_points[i].sramMib =
            static_cast<double>(hw.core.sramBytes()) /
            static_cast<double>(MiB);
        auto sys = OuroborosSystem::build(model, hw, {});
        if (!sys)
            return;
        core_points[i].fits = true;
        core_points[i].report = sys->run(workload);
    });
    for (std::size_t i = 0; i < xbar_counts.size(); ++i) {
        const CorePoint &point = core_points[i];
        if (!point.fits) {
            core_table.row()
                .cell(static_cast<int>(xbar_counts[i]))
                .cell("-")
                .cell("does not fit")
                .cell("-");
            continue;
        }
        core_table.row()
            .cell(static_cast<int>(xbar_counts[i]))
            .cell(point.sramMib, 1)
            .cell(point.report.result.outputTokensPerSecond, 0)
            .cell(point.report.result.utilization, 3);
        tokens += point.report.pipeline.tokensProcessed;
    }
    core_table.print(os);

    // --- 3. Partial wafers ---
    os << "\n3) Partially populated wafers (die grid slices):\n";
    Table wafer_table({"die grid", "cores", "fits 13B?", "tokens/s"});
    struct Slice
    {
        std::uint32_t rows, cols;
    };
    const std::vector<Slice> slices{{5, 4}, {7, 5}, {9, 7}};
    struct WaferPoint
    {
        std::uint64_t cores = 0;
        bool fits = false;
        std::string tps = "-";
        std::uint64_t tokens = 0;
    };
    std::vector<WaferPoint> wafer_points(slices.size());
    exec(slices.size(), [&](std::size_t i) {
        const Slice slice = slices[i];
        const WaferGeometry geom(slice.rows, slice.cols, 13, 17);
        WaferPoint &point = wafer_points[i];
        point.cores = geom.numCores();
        // Rough capacity gate before attempting a build.
        OuroborosParams hw;
        point.fits = hw.waferSramBytes(geom.numCores()) >
                     model.totalWeightBytes() * 1.2;
        if (!point.fits)
            return;
        // Build on a custom geometry via the mapping layer
        // directly: the system simulator assumes the full wafer,
        // so scale throughput by the KV-pool proxy instead.
        auto sys = OuroborosSystem::build(model, hw, {});
        if (!sys)
            return;
        // Scale: stage timing is geometry-invariant; the KV
        // pool (and hence decode concurrency) shrinks with
        // the region size.
        const auto rep = sys->run(workload);
        const double scale = static_cast<double>(geom.numCores()) /
                             static_cast<double>(
                                     WaferGeometry{}.numCores());
        point.tps = formatDouble(
                rep.result.outputTokensPerSecond *
                        std::min(1.0, scale),
                0);
        point.tokens = rep.pipeline.tokensProcessed;
    });
    for (std::size_t i = 0; i < slices.size(); ++i) {
        const WaferPoint &point = wafer_points[i];
        wafer_table.row()
            .cell(std::to_string(slices[i].rows) + "x" +
                  std::to_string(slices[i].cols))
            .cell(point.cores)
            .cell(point.fits ? "yes" : "no")
            .cell(point.tps);
        tokens += point.tokens;
    }
    wafer_table.print(os);

    out.rendered = os.str();
    out.tokensProcessed = tokens;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ouro;
    using ouro::bench::BenchReport;
    using ouro::bench::WallTimer;
    setQuiet(true);

    const bool compare =
        argc > 1 && std::strcmp(argv[1], "--compare") == 0;

    const Executor serial =
            [](std::size_t n,
               const std::function<void(std::size_t)> &body) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
    };
    const Executor parallel =
            [](std::size_t n,
               const std::function<void(std::size_t)> &body) {
        parallelFor(n, body);
    };

    BenchReport report("design_space");

    double serial_seconds = 0.0;
    if (compare) {
        const WallTimer timer;
        const SweepOutput baseline = runSweeps(serial);
        serial_seconds = timer.seconds();
        report.metric("serial_wall_seconds", serial_seconds);

        const WallTimer ptimer;
        const SweepOutput sweep = runSweeps(parallel);
        const double parallel_seconds = ptimer.seconds();

        if (sweep.rendered != baseline.rendered)
            fatal("design_space: parallel sweep diverged from "
                  "serial baseline");
        std::cout << sweep.rendered;
        std::cout << "\n[bench] parallel output bit-identical to "
                     "serial\n";
        report.metric("wall_seconds", parallel_seconds)
            .metric("speedup", serial_seconds / parallel_seconds)
            .metric("events_per_sec",
                    static_cast<double>(sweep.tokensProcessed) /
                            parallel_seconds)
            .metric("sweep_points", std::uint64_t{9})
            .text("determinism", "bit-identical");
    } else {
        const WallTimer timer;
        const SweepOutput sweep = runSweeps(parallel);
        const double seconds = timer.seconds();
        std::cout << sweep.rendered;
        report.metric("wall_seconds", seconds)
            .metric("events_per_sec",
                    static_cast<double>(sweep.tokensProcessed) /
                            seconds)
            .metric("sweep_points", std::uint64_t{9});
    }
    report.write();
    return 0;
}
