/**
 * @file
 * Unit tests for the network-on-wafer: XY routing, fault detours,
 * transfer pricing, traffic accumulation/bottleneck analysis, and the
 * intra-core H-tree cost model.
 */

#include <gtest/gtest.h>

#include "hw/geometry.hh"
#include "hw/yield.hh"
#include "noc/htree.hh"
#include "noc/mesh.hh"

namespace ouro
{
namespace
{

TEST(Mesh, RouteStraightLine)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto path = noc.route({0, 0}, {0, 5});
    ASSERT_EQ(path.size(), 6u);
    EXPECT_EQ(path.front(), (CoreCoord{0, 0}));
    EXPECT_EQ(path.back(), (CoreCoord{0, 5}));
}

TEST(Mesh, RouteXYShape)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto path = noc.route({2, 3}, {5, 7});
    // XY: horizontal leg first, then vertical.
    ASSERT_EQ(path.size(), 8u); // 4 + 3 hops
    EXPECT_EQ(path[1], (CoreCoord{2, 4}));
    EXPECT_EQ(path[4], (CoreCoord{2, 7}));
    EXPECT_EQ(path[5], (CoreCoord{3, 7}));
}

TEST(Mesh, RouteToSelf)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    EXPECT_EQ(noc.route({3, 3}, {3, 3}).size(), 1u);
    EXPECT_DOUBLE_EQ(noc.transferCost({3, 3}, {3, 3}, 1024).seconds,
                     0.0);
}

TEST(Mesh, DetourAroundDefect)
{
    const WaferGeometry geom;
    DefectMap defects(geom);
    defects.inject({0, 2}); // directly on the XY path
    const MeshNoc noc(geom, NocParams{}, &defects);
    const auto path = noc.route({0, 0}, {0, 4});
    ASSERT_FALSE(path.empty());
    for (const auto &c : path)
        EXPECT_FALSE(defects.defective(c));
    // Detour adds exactly two hops on a mesh.
    EXPECT_EQ(path.size(), 7u);
}

TEST(Mesh, DefectiveDestinationStillReachable)
{
    // Routes may *end* at a defective core (e.g. draining state), just
    // not pass through one.
    const WaferGeometry geom;
    DefectMap defects(geom);
    defects.inject({0, 4});
    const MeshNoc noc(geom, NocParams{}, &defects);
    const auto path = noc.route({0, 0}, {0, 4});
    ASSERT_EQ(path.size(), 5u);
}

TEST(Mesh, FailedLinkForcesYx)
{
    const WaferGeometry geom;
    MeshNoc noc(geom, NocParams{});
    noc.failLink({2, 3}, LinkDir::East);
    const auto path = noc.route({2, 3}, {2, 5});
    ASSERT_FALSE(path.empty());
    // First hop cannot be east out of (2,3).
    EXPECT_NE(path[1], (CoreCoord{2, 4}));
    EXPECT_EQ(path.back(), (CoreCoord{2, 5}));
}

TEST(Mesh, BfsFallbackThroughFence)
{
    // Wall off the XY and YX routes; BFS must still find a way.
    const WaferGeometry geom;
    DefectMap defects(geom);
    for (std::uint32_t r = 0; r < 6; ++r)
        defects.inject({r, 3});
    const MeshNoc noc(geom, NocParams{}, &defects);
    const auto path = noc.route({2, 0}, {2, 6});
    ASSERT_FALSE(path.empty());
    for (const auto &c : path)
        EXPECT_FALSE(defects.defective(c));
    EXPECT_GT(path.size(), 7u); // longer than the direct 6-hop route
}

TEST(Mesh, TransferCostScalesWithBytes)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto small = noc.transferCost({0, 0}, {0, 10}, 1 * KiB);
    const auto large = noc.transferCost({0, 0}, {0, 10}, 1 * MiB);
    EXPECT_GT(large.seconds, small.seconds);
    EXPECT_GT(large.energyJ, small.energyJ);
    EXPECT_EQ(small.hops, 10u);
    EXPECT_EQ(large.hops, 10u);
}

TEST(Mesh, DieCrossingCostsMore)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    // Same distance, one crossing a die boundary (rows 12|13).
    const auto same_die = noc.transferCost({0, 0}, {4, 0}, 64 * KiB);
    const auto cross_die = noc.transferCost({11, 0}, {15, 0}, 64 * KiB);
    EXPECT_EQ(same_die.hops, cross_die.hops);
    EXPECT_EQ(same_die.dieCrossings, 0u);
    EXPECT_EQ(cross_die.dieCrossings, 1u);
    EXPECT_GT(cross_die.seconds, same_die.seconds);
    EXPECT_GT(cross_die.energyJ, same_die.energyJ);
}

TEST(Mesh, EnergyProportionalToHops)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const double e1 = noc.transferEnergy({0, 0}, {0, 1}, 1 * KiB);
    const double e4 = noc.transferEnergy({0, 0}, {0, 4}, 1 * KiB);
    EXPECT_NEAR(e4, 4.0 * e1, 1e-15);
}

TEST(Traffic, BottleneckIsMaxLink)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    // Two flows sharing the (0,0)->(0,1) link.
    traffic.addFlow({0, 0}, {0, 2}, 1000);
    traffic.addFlow({0, 0}, {0, 3}, 1000);
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(), 2000.0);
    // A disjoint flow does not raise the bottleneck.
    traffic.addFlow({5, 0}, {5, 1}, 1500);
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(), 2000.0);
}

TEST(Traffic, BottleneckSecondsUsesLinkBandwidth)
{
    const WaferGeometry geom;
    const NocParams params;
    const MeshNoc noc(geom, params);
    TrafficAccumulator traffic(noc);
    traffic.addFlow({0, 0}, {0, 1}, 32 * KiB);
    EXPECT_NEAR(traffic.bottleneckSeconds(),
                static_cast<double>(32 * KiB) /
                params.linkBytesPerSecond(), 1e-12);
}

TEST(Traffic, ClearResets)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    traffic.addFlow({0, 0}, {3, 3}, 4096);
    EXPECT_GT(traffic.totalEnergyJ(), 0.0);
    traffic.clear();
    EXPECT_DOUBLE_EQ(traffic.totalEnergyJ(), 0.0);
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(), 0.0);
    EXPECT_DOUBLE_EQ(traffic.totalByteHops(), 0.0);
}

TEST(Traffic, ByteHopsCountsVolume)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    traffic.addFlow({0, 0}, {0, 5}, 100);
    EXPECT_DOUBLE_EQ(traffic.totalByteHops(), 500.0);
}

TEST(Traffic, DieCrossingInflatesLoad)
{
    const WaferGeometry geom;
    const NocParams params;
    const MeshNoc noc(geom, params);
    TrafficAccumulator traffic(noc);
    traffic.addFlow({12, 0}, {13, 0}, 1000); // crosses die boundary
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(),
                     1000.0 * params.interDiePenalty);
}

TEST(HTree, SingleGroupIsFree)
{
    const HTree tree(8);
    // All leaves one group: every merge is a reduction.
    EXPECT_EQ(tree.assignmentCost({0, 0, 0, 0, 0, 0, 0, 0}), 0u);
    EXPECT_EQ(tree.concatNodes({0, 0, 0, 0, 0, 0, 0, 0}), 0u);
}

TEST(HTree, TwoAlignedGroupsConcatAtRoot)
{
    const HTree tree(8);
    // Groups occupy the two root subtrees: one concat at depth... the
    // root is depth 0, so cost 0 but one concat node.
    const std::vector<int> a{0, 0, 0, 0, 1, 1, 1, 1};
    EXPECT_EQ(tree.concatNodes(a), 1u);
    EXPECT_EQ(tree.assignmentCost(a), 0u);
}

TEST(HTree, InterleavedGroupsCostMore)
{
    const HTree tree(8);
    const std::vector<int> aligned{0, 0, 0, 0, 1, 1, 1, 1};
    const std::vector<int> interleaved{0, 1, 0, 1, 0, 1, 0, 1};
    EXPECT_GT(tree.assignmentCost(interleaved),
              tree.assignmentCost(aligned));
    // Fully interleaved: concat at every internal node.
    EXPECT_EQ(tree.concatNodes(interleaved), 7u);
}

TEST(HTree, UnusedLeavesTransparent)
{
    const HTree tree(8);
    const std::vector<int> sparse{0, -1, -1, -1, 1, -1, -1, -1};
    EXPECT_EQ(tree.assignmentCost(sparse), 0u);
    EXPECT_EQ(tree.concatNodes(sparse), 1u);
}

TEST(HTree, DepthWeightsNearLeaves)
{
    const HTree tree(8);
    // Concat forced at depth 2 (leaf pair level = depth 2 for 8
    // leaves): groups 0/1 adjacent in one pair.
    const std::vector<int> near_leaf{0, 1, -1, -1, -1, -1, -1, -1};
    EXPECT_EQ(tree.assignmentCost(near_leaf), 2u);
    const std::vector<int> near_root{0, -1, -1, -1, 1, -1, -1, -1};
    EXPECT_EQ(tree.assignmentCost(near_root), 0u);
}

TEST(HTree, RejectsNonPowerOfTwo)
{
    EXPECT_DEATH({ HTree tree(6); }, "power of two");
}

TEST(HTree, ThirtyTwoLeavesMatchesCore)
{
    const HTree tree(32);
    EXPECT_EQ(tree.levels(), 5u);
    std::vector<int> all_one(32, 0);
    EXPECT_EQ(tree.assignmentCost(all_one), 0u);
}

} // namespace
} // namespace ouro
