/**
 * @file
 * Unit tests for the network-on-wafer: XY routing, fault detours,
 * transfer pricing, traffic accumulation/bottleneck analysis, and the
 * intra-core H-tree cost model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "hw/geometry.hh"
#include "hw/yield.hh"
#include "noc/htree.hh"
#include "noc/mesh.hh"

namespace ouro
{
namespace
{

TEST(Mesh, RouteStraightLine)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto path = noc.route({0, 0}, {0, 5});
    ASSERT_EQ(path.size(), 6u);
    EXPECT_EQ(path.front(), (CoreCoord{0, 0}));
    EXPECT_EQ(path.back(), (CoreCoord{0, 5}));
}

TEST(Mesh, RouteXYShape)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto path = noc.route({2, 3}, {5, 7});
    // XY: horizontal leg first, then vertical.
    ASSERT_EQ(path.size(), 8u); // 4 + 3 hops
    EXPECT_EQ(path[1], (CoreCoord{2, 4}));
    EXPECT_EQ(path[4], (CoreCoord{2, 7}));
    EXPECT_EQ(path[5], (CoreCoord{3, 7}));
}

TEST(Mesh, RouteToSelf)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    EXPECT_EQ(noc.route({3, 3}, {3, 3}).size(), 1u);
    EXPECT_DOUBLE_EQ(noc.transferCost({3, 3}, {3, 3}, 1024).seconds,
                     0.0);
}

TEST(Mesh, DetourAroundDefect)
{
    const WaferGeometry geom;
    DefectMap defects(geom);
    defects.inject({0, 2}); // directly on the XY path
    const MeshNoc noc(geom, NocParams{}, &defects);
    const auto path = noc.route({0, 0}, {0, 4});
    ASSERT_FALSE(path.empty());
    for (const auto &c : path)
        EXPECT_FALSE(defects.defective(c));
    // Detour adds exactly two hops on a mesh.
    EXPECT_EQ(path.size(), 7u);
}

TEST(Mesh, DefectiveDestinationStillReachable)
{
    // Routes may *end* at a defective core (e.g. draining state), just
    // not pass through one.
    const WaferGeometry geom;
    DefectMap defects(geom);
    defects.inject({0, 4});
    const MeshNoc noc(geom, NocParams{}, &defects);
    const auto path = noc.route({0, 0}, {0, 4});
    ASSERT_EQ(path.size(), 5u);
}

TEST(Mesh, FailedLinkForcesYx)
{
    const WaferGeometry geom;
    MeshNoc noc(geom, NocParams{});
    noc.failLink({2, 3}, LinkDir::East);
    const auto path = noc.route({2, 3}, {2, 5});
    ASSERT_FALSE(path.empty());
    // First hop cannot be east out of (2,3).
    EXPECT_NE(path[1], (CoreCoord{2, 4}));
    EXPECT_EQ(path.back(), (CoreCoord{2, 5}));
}

TEST(Mesh, BfsFallbackThroughFence)
{
    // Wall off the XY and YX routes; BFS must still find a way.
    const WaferGeometry geom;
    DefectMap defects(geom);
    for (std::uint32_t r = 0; r < 6; ++r)
        defects.inject({r, 3});
    const MeshNoc noc(geom, NocParams{}, &defects);
    const auto path = noc.route({2, 0}, {2, 6});
    ASSERT_FALSE(path.empty());
    for (const auto &c : path)
        EXPECT_FALSE(defects.defective(c));
    EXPECT_GT(path.size(), 7u); // longer than the direct 6-hop route
}

TEST(Mesh, TransferCostScalesWithBytes)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto small = noc.transferCost({0, 0}, {0, 10}, 1 * KiB);
    const auto large = noc.transferCost({0, 0}, {0, 10}, 1 * MiB);
    EXPECT_GT(large.seconds, small.seconds);
    EXPECT_GT(large.energyJ, small.energyJ);
    EXPECT_EQ(small.hops, 10u);
    EXPECT_EQ(large.hops, 10u);
}

TEST(Mesh, DieCrossingCostsMore)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    // Same distance, one crossing a die boundary (rows 12|13).
    const auto same_die = noc.transferCost({0, 0}, {4, 0}, 64 * KiB);
    const auto cross_die = noc.transferCost({11, 0}, {15, 0}, 64 * KiB);
    EXPECT_EQ(same_die.hops, cross_die.hops);
    EXPECT_EQ(same_die.dieCrossings, 0u);
    EXPECT_EQ(cross_die.dieCrossings, 1u);
    EXPECT_GT(cross_die.seconds, same_die.seconds);
    EXPECT_GT(cross_die.energyJ, same_die.energyJ);
}

TEST(Mesh, EnergyProportionalToHops)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const double e1 = noc.transferEnergy({0, 0}, {0, 1}, 1 * KiB);
    const double e4 = noc.transferEnergy({0, 0}, {0, 4}, 1 * KiB);
    EXPECT_NEAR(e4, 4.0 * e1, 1e-15);
}

TEST(Traffic, BottleneckIsMaxLink)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    // Two flows sharing the (0,0)->(0,1) link.
    traffic.addFlow({0, 0}, {0, 2}, 1000);
    traffic.addFlow({0, 0}, {0, 3}, 1000);
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(), 2000.0);
    // A disjoint flow does not raise the bottleneck.
    traffic.addFlow({5, 0}, {5, 1}, 1500);
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(), 2000.0);
}

TEST(Traffic, BottleneckSecondsUsesLinkBandwidth)
{
    const WaferGeometry geom;
    const NocParams params;
    const MeshNoc noc(geom, params);
    TrafficAccumulator traffic(noc);
    traffic.addFlow({0, 0}, {0, 1}, 32 * KiB);
    EXPECT_NEAR(traffic.bottleneckSeconds(),
                static_cast<double>(32 * KiB) /
                params.linkBytesPerSecond(), 1e-12);
}

TEST(Traffic, ClearResets)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    traffic.addFlow({0, 0}, {3, 3}, 4096);
    EXPECT_GT(traffic.totalEnergyJ(), 0.0);
    traffic.clear();
    EXPECT_DOUBLE_EQ(traffic.totalEnergyJ(), 0.0);
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(), 0.0);
    EXPECT_DOUBLE_EQ(traffic.totalByteHops(), 0.0);
}

TEST(Traffic, ByteHopsCountsVolume)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    traffic.addFlow({0, 0}, {0, 5}, 100);
    EXPECT_DOUBLE_EQ(traffic.totalByteHops(), 500.0);
}

TEST(Traffic, DieCrossingInflatesLoad)
{
    const WaferGeometry geom;
    const NocParams params;
    const MeshNoc noc(geom, params);
    TrafficAccumulator traffic(noc);
    traffic.addFlow({12, 0}, {13, 0}, 1000); // crosses die boundary
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(),
                     1000.0 * params.interDiePenalty);
}

TEST(RouteCache, RepeatedRouteHitsCache)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto first = noc.route({0, 0}, {5, 7});
    EXPECT_EQ(noc.routeCacheMisses(), 1u);
    const auto second = noc.route({0, 0}, {5, 7});
    EXPECT_EQ(second, first);
    EXPECT_GE(noc.routeCacheHits(), 1u);
    EXPECT_EQ(noc.routeCacheMisses(), 1u);
    EXPECT_EQ(noc.routeCacheSize(), 1u);
}

TEST(RouteCache, CachedReferenceIsStable)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto &a = noc.routeCached({1, 1}, {4, 4});
    const auto &b = noc.routeCached({1, 1}, {4, 4});
    EXPECT_EQ(&a, &b); // same cache entry, no recompute / copy
}

TEST(RouteCache, FailLinkInvalidates)
{
    const WaferGeometry geom;
    MeshNoc noc(geom, NocParams{});
    const auto before = noc.route({0, 0}, {0, 5});
    ASSERT_EQ(before.size(), 6u);
    EXPECT_GE(noc.routeCacheSize(), 1u);

    // Fail a link ON the cached path; the cache must be flushed and
    // the new route must avoid the dead link.
    noc.failLink({0, 2}, LinkDir::East);
    EXPECT_EQ(noc.routeCacheSize(), 0u);
    const auto after = noc.route({0, 0}, {0, 5});
    ASSERT_FALSE(after.empty());
    EXPECT_GT(after.size(), before.size()); // detour
    for (std::size_t i = 1; i < after.size(); ++i) {
        const bool dead_hop =
            after[i - 1] == (CoreCoord{0, 2}) &&
            after[i] == (CoreCoord{0, 3});
        EXPECT_FALSE(dead_hop);
    }
    // transferCost also sees the detour through the same cache.
    EXPECT_EQ(noc.transferCost({0, 0}, {0, 5}, 1024).hops,
              after.size() - 1);
}

TEST(RouteCache, ExplicitInvalidationAfterDefectInjection)
{
    const WaferGeometry geom;
    DefectMap defects(geom);
    const MeshNoc noc(geom, NocParams{}, &defects);
    const auto clean = noc.route({0, 0}, {0, 4});
    ASSERT_EQ(clean.size(), 5u);

    // Mutating the external defect map requires an explicit flush.
    defects.inject({0, 2});
    noc.invalidateRoutes();
    const auto detour = noc.route({0, 0}, {0, 4});
    ASSERT_FALSE(detour.empty());
    EXPECT_GT(detour.size(), clean.size());
    for (const auto &c : detour)
        EXPECT_FALSE(defects.defective(c));
}

TEST(Traffic, FlatLoadsMatchHashMapReference)
{
    // Random flow soup: the flat per-link arrays must agree with an
    // independently accumulated hash-map reference on every metric.
    const WaferGeometry geom;
    const NocParams params;
    const MeshNoc noc(geom, params);
    TrafficAccumulator traffic(noc);

    std::unordered_map<std::uint64_t, double> reference;
    double ref_energy = 0.0;
    double ref_byte_hops = 0.0;
    Rng rng(57);
    for (int f = 0; f < 200; ++f) {
        const CoreCoord src{
            static_cast<std::uint32_t>(rng.uniformInt(0, 20)),
            static_cast<std::uint32_t>(rng.uniformInt(0, 20))};
        const CoreCoord dst{
            static_cast<std::uint32_t>(rng.uniformInt(0, 20)),
            static_cast<std::uint32_t>(rng.uniformInt(0, 20))};
        const Bytes bytes = 64 + rng.uniformInt(0, 4096);
        traffic.addFlow(src, dst, bytes);

        if (src == dst)
            continue;
        const auto path = noc.route(src, dst);
        const double b = static_cast<double>(bytes);
        for (std::size_t i = 1; i < path.size(); ++i) {
            const bool crossing =
                !geom.sameDie(path[i - 1], path[i]);
            const std::uint64_t slot =
                geom.coreIndex(path[i - 1]) * 4 +
                static_cast<unsigned>(
                        MeshNoc::stepDir(path[i - 1], path[i]));
            reference[slot] +=
                b * (crossing ? params.interDiePenalty : 1.0);
            ref_energy += b * 8.0 *
                    (params.hopEnergyPerBit +
                     (crossing ? params.dieCrossingEnergyPerBit
                               : 0.0));
            ref_byte_hops += b;
        }
    }
    double ref_max = 0.0;
    for (const auto &[slot, load] : reference)
        ref_max = std::max(ref_max, load);

    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(), ref_max);
    EXPECT_DOUBLE_EQ(traffic.totalEnergyJ(), ref_energy);
    EXPECT_DOUBLE_EQ(traffic.totalByteHops(), ref_byte_hops);
    EXPECT_EQ(traffic.loadedLinks(), reference.size());
    for (const auto &[slot, load] : reference) {
        const CoreCoord from = geom.coreAt(slot / 4);
        const auto dir = static_cast<LinkDir>(slot % 4);
        EXPECT_DOUBLE_EQ(traffic.linkLoad(from, dir), load);
    }
}

TEST(Traffic, LinkLoadPerDirection)
{
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    traffic.addFlow({0, 0}, {0, 2}, 1000);
    EXPECT_DOUBLE_EQ(traffic.linkLoad({0, 0}, LinkDir::East), 1000.0);
    EXPECT_DOUBLE_EQ(traffic.linkLoad({0, 1}, LinkDir::East), 1000.0);
    EXPECT_DOUBLE_EQ(traffic.linkLoad({0, 0}, LinkDir::West), 0.0);
    EXPECT_EQ(traffic.loadedLinks(), 2u);
}

TEST(Traffic, ClearIsReusable)
{
    // clear() must reset only what was touched and leave the
    // accumulator fully reusable with identical results.
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    TrafficAccumulator traffic(noc);
    traffic.addFlow({0, 0}, {3, 3}, 4096);
    traffic.addFlow({5, 5}, {5, 9}, 512);
    const double max1 = traffic.bottleneckBytes();
    const double energy1 = traffic.totalEnergyJ();
    traffic.clear();
    EXPECT_EQ(traffic.loadedLinks(), 0u);
    EXPECT_DOUBLE_EQ(traffic.linkLoad({0, 0}, LinkDir::East), 0.0);
    traffic.addFlow({0, 0}, {3, 3}, 4096);
    traffic.addFlow({5, 5}, {5, 9}, 512);
    EXPECT_DOUBLE_EQ(traffic.bottleneckBytes(), max1);
    EXPECT_DOUBLE_EQ(traffic.totalEnergyJ(), energy1);
}

TEST(SharedRouteTable, RoutesBitIdenticalToColdMesh)
{
    // A mesh started from the shared clean table must answer every
    // route exactly as a cold mesh over the same defect map would.
    const WaferGeometry geom;
    DefectMap defects(geom);
    Rng seed_rng(71);
    for (int d = 0; d < 25; ++d) {
        defects.inject({static_cast<std::uint32_t>(
                                seed_rng.uniformInt(0, 40)),
                        static_cast<std::uint32_t>(
                                seed_rng.uniformInt(0, 40))});
    }
    const auto table =
        std::make_shared<const CleanRouteTable>(geom, NocParams{});
    const MeshNoc shared(geom, NocParams{}, &defects, table);
    const MeshNoc cold(geom, NocParams{}, &defects);

    Rng rng(72);
    for (int f = 0; f < 300; ++f) {
        const CoreCoord src{
            static_cast<std::uint32_t>(rng.uniformInt(0, 40)),
            static_cast<std::uint32_t>(rng.uniformInt(0, 40))};
        const CoreCoord dst{
            static_cast<std::uint32_t>(rng.uniformInt(0, 40)),
            static_cast<std::uint32_t>(rng.uniformInt(0, 40))};
        EXPECT_EQ(shared.route(src, dst), cold.route(src, dst));
    }
    // Most pairs miss the sprinkled defects, so the shared table must
    // have served real traffic (that is its whole point).
    EXPECT_GT(shared.sharedTableHits(), 0u);
    EXPECT_LT(shared.routeCacheMisses(), cold.routeCacheMisses());
    EXPECT_GT(table->size(), 0u);
}

TEST(SharedRouteTable, CleanMeshServesEverythingFromTable)
{
    const WaferGeometry geom;
    const auto table =
        std::make_shared<const CleanRouteTable>(geom, NocParams{});
    const MeshNoc mesh(geom, NocParams{}, nullptr, table);
    const auto &a = mesh.routeCached({0, 0}, {5, 7});
    const auto &b = mesh.routeCached({0, 0}, {5, 7});
    EXPECT_EQ(&a, &b); // stable reference into the shared table
    EXPECT_EQ(mesh.routeCacheMisses(), 0u);
    EXPECT_EQ(mesh.routeCacheSize(), 0u); // no private overlay used
    EXPECT_GE(mesh.sharedTableHits(), 2u);

    // A second mesh over the same table reuses the entry outright.
    const MeshNoc other(geom, NocParams{}, nullptr, table);
    EXPECT_EQ(&other.routeCached({0, 0}, {5, 7}), &a);
    EXPECT_EQ(other.routeCacheMisses(), 0u);
}

TEST(SharedRouteTable, FailLinkCopiesOnFaultAndStaysBitIdentical)
{
    const WaferGeometry geom;
    const auto table =
        std::make_shared<const CleanRouteTable>(geom, NocParams{});
    MeshNoc shared(geom, NocParams{}, nullptr, table);
    MeshNoc cold(geom, NocParams{});

    const auto before = shared.route({0, 0}, {0, 5});
    ASSERT_EQ(before.size(), 6u);

    // failLink keeps the auto-invalidation contract: the overlay and
    // the validation memo flush; the shared table is untouched.
    shared.failLink({0, 2}, LinkDir::East);
    cold.failLink({0, 2}, LinkDir::East);
    EXPECT_EQ(shared.routeCacheSize(), 0u);

    // The faulted pair detours identically to the cold mesh and now
    // lives in the private overlay (copy-on-fault)...
    const auto after = shared.route({0, 0}, {0, 5});
    EXPECT_EQ(after, cold.route({0, 0}, {0, 5}));
    EXPECT_GT(after.size(), before.size());
    EXPECT_EQ(shared.routeCacheSize(), 1u);

    // ... while pairs the failed link cannot touch are still served
    // from the shared table after revalidation.
    const std::uint64_t misses_before = shared.routeCacheMisses();
    const auto &clean_pair = shared.routeCached({5, 5}, {8, 9});
    EXPECT_EQ(clean_pair, cold.route({5, 5}, {8, 9}));
    EXPECT_EQ(shared.routeCacheMisses(), misses_before);
    EXPECT_GT(shared.sharedTableHits(), 0u);
}

TEST(SharedRouteTable, ExternalDefectMutationNeedsExplicitFlush)
{
    // The PR 3 invalidation contract holds verbatim with a shared
    // table: mutating the external DefectMap requires
    // invalidateRoutes(); afterwards shared entries revalidate
    // against the new defects and invalid ones are rerouted locally.
    const WaferGeometry geom;
    DefectMap defects(geom);
    const auto table =
        std::make_shared<const CleanRouteTable>(geom, NocParams{});
    const MeshNoc shared(geom, NocParams{}, &defects, table);
    const MeshNoc cold(geom, NocParams{}, &defects);

    const auto clean = shared.route({0, 0}, {0, 4});
    ASSERT_EQ(clean.size(), 5u);

    defects.inject({0, 2});
    shared.invalidateRoutes();
    cold.invalidateRoutes();
    const auto detour = shared.route({0, 0}, {0, 4});
    EXPECT_EQ(detour, cold.route({0, 0}, {0, 4}));
    EXPECT_GT(detour.size(), clean.size());
    for (const auto &c : detour)
        EXPECT_FALSE(defects.defective(c));
}

TEST(SharedRouteTable, DefectiveDestinationServedFromTable)
{
    // Routes may END at a defective core; the clean route to it is
    // still valid (only intermediate hops matter), so the shared
    // table serves it.
    const WaferGeometry geom;
    DefectMap defects(geom);
    defects.inject({0, 4});
    const auto table =
        std::make_shared<const CleanRouteTable>(geom, NocParams{});
    const MeshNoc shared(geom, NocParams{}, &defects, table);
    const auto path = shared.route({0, 0}, {0, 4});
    ASSERT_EQ(path.size(), 5u);
    EXPECT_EQ(shared.routeCacheMisses(), 0u);
    EXPECT_GE(shared.sharedTableHits(), 1u);
}

TEST(SharedRouteTable, ConcurrentFillMatchesSerialFill)
{
    // N threads hammering one pair set must leave the table in the
    // state a serial fill produces: identical routes for every pair,
    // each pair computed exactly once (the lookup mutex serialises
    // first computations), and no extra entries.
    const WaferGeometry geom(2, 2, 8, 8);
    std::vector<std::pair<CoreCoord, CoreCoord>> pairs;
    Rng rng(404);
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    while (pairs.size() < 200) {
        const CoreCoord src{static_cast<std::uint32_t>(
                                    rng.uniformInt(0, geom.rows() - 1)),
                            static_cast<std::uint32_t>(rng.uniformInt(
                                    0, geom.cols() - 1))};
        const CoreCoord dst{static_cast<std::uint32_t>(
                                    rng.uniformInt(0, geom.rows() - 1)),
                            static_cast<std::uint32_t>(rng.uniformInt(
                                    0, geom.cols() - 1))};
        if (seen.insert({geom.coreIndex(src), geom.coreIndex(dst)})
                    .second)
            pairs.emplace_back(src, dst);
    }

    const CleanRouteTable serial(geom, NocParams{});
    std::vector<std::vector<CoreCoord>> want;
    for (const auto &[src, dst] : pairs)
        want.push_back(serial.route(src, dst));

    const CleanRouteTable concurrent(geom, NocParams{});
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&concurrent, &pairs, t] {
            // Every thread walks the whole set from a different
            // offset, maximising same-pair contention.
            for (std::size_t i = 0; i < pairs.size(); ++i) {
                const auto &[src, dst] =
                    pairs[(i + t * 31) % pairs.size()];
                const auto &path = concurrent.route(src, dst);
                if (src != dst && path.empty())
                    std::abort(); // clean mesh: always routable
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(concurrent.size(), pairs.size());
    EXPECT_EQ(concurrent.computedRoutes(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        EXPECT_EQ(concurrent.route(pairs[i].first, pairs[i].second),
                  want[i])
            << "pair " << i;
    }
}

TEST(RouteMeta, SummaryMatchesPathDerivation)
{
    // The cached RouteMeta must agree with a by-hand derivation from
    // the path it summarises.
    const WaferGeometry geom;
    const NocParams params;
    const MeshNoc noc(geom, params);
    const CoreCoord src{10, 0};
    const CoreCoord dst{14, 9};
    const auto &priced = noc.pricedRoute(src, dst);
    ASSERT_GE(priced.path.size(), 2u);

    std::uint32_t crossings = 0;
    std::vector<std::uint64_t> slots;
    for (std::size_t i = 1; i < priced.path.size(); ++i) {
        const CoreCoord from = priced.path[i - 1];
        const CoreCoord to = priced.path[i];
        const bool crossing = !geom.sameDie(from, to);
        crossings += crossing ? 1u : 0u;
        slots.push_back(
                ((geom.coreIndex(from) * 4 +
                  static_cast<unsigned>(MeshNoc::stepDir(from, to)))
                 << 1) |
                (crossing ? 1u : 0u));
    }
    const auto hops =
        static_cast<std::uint32_t>(priced.path.size() - 1);
    EXPECT_EQ(priced.meta.hops, hops);
    EXPECT_EQ(priced.meta.dieCrossings, crossings);
    EXPECT_EQ(priced.meta.slots, slots);
    EXPECT_DOUBLE_EQ(priced.meta.headSeconds,
                     static_cast<double>(hops) *
                             static_cast<double>(
                                     params.routerLatency) /
                             params.clockHz);
    EXPECT_DOUBLE_EQ(priced.meta.serialBitsPerSecond,
                     params.linkBitsPerCycle * params.clockHz /
                             (crossings > 0 ? params.interDiePenalty
                                            : 1.0));
    EXPECT_DOUBLE_EQ(priced.meta.energyPerBit,
                     params.hopEnergyPerBit * hops +
                             params.dieCrossingEnergyPerBit *
                                     crossings);
}

TEST(RouteMeta, TransferCostMetaMatchesWalkFuzz)
{
    // Metadata-priced transferCost must be BIT-identical to the
    // retained walk oracle: clean routes, defect detours, failed-link
    // detours, and shared-table-served routes alike.
    const WaferGeometry geom;
    const NocParams params;
    DefectMap defects(geom);
    Rng seed_rng(311);
    for (int d = 0; d < 25; ++d) {
        defects.inject({static_cast<std::uint32_t>(
                                seed_rng.uniformInt(0, 40)),
                        static_cast<std::uint32_t>(
                                seed_rng.uniformInt(0, 40))});
    }
    const auto table =
        std::make_shared<const CleanRouteTable>(geom, params);

    struct Scenario
    {
        const char *name;
        const DefectMap *defects;
        std::shared_ptr<const CleanRouteTable> table;
        bool fail_link;
    };
    const Scenario scenarios[] = {
        {"clean", nullptr, nullptr, false},
        {"defected", &defects, nullptr, false},
        {"defected+failLink", &defects, nullptr, true},
        {"shared-table", &defects, table, false},
        {"shared-table+failLink", &defects, table, true},
    };

    for (const auto &sc : scenarios) {
        MeshNoc meta(geom, params, sc.defects, sc.table);
        MeshNoc walk(geom, params, sc.defects, sc.table);
        walk.setPriceFromMeta(false);
        if (sc.fail_link) {
            meta.failLink({12, 20}, LinkDir::East);
            walk.failLink({12, 20}, LinkDir::East);
        }
        Rng rng(313);
        for (int f = 0; f < 400; ++f) {
            const CoreCoord src{
                static_cast<std::uint32_t>(rng.uniformInt(0, 40)),
                static_cast<std::uint32_t>(rng.uniformInt(0, 40))};
            const CoreCoord dst{
                static_cast<std::uint32_t>(rng.uniformInt(0, 40)),
                static_cast<std::uint32_t>(rng.uniformInt(0, 40))};
            const Bytes bytes = 1 + rng.uniformInt(0, 1 * MiB);
            const auto fast = meta.transferCost(src, dst, bytes);
            const auto slow = walk.transferCost(src, dst, bytes);
            EXPECT_EQ(fast.seconds, slow.seconds) << sc.name;
            EXPECT_EQ(fast.energyJ, slow.energyJ) << sc.name;
            EXPECT_EQ(fast.hops, slow.hops) << sc.name;
            EXPECT_EQ(fast.dieCrossings, slow.dieCrossings)
                << sc.name;
            // The lean latency-only accessor rides the same paths.
            EXPECT_EQ(meta.transferSeconds(src, dst, bytes),
                      slow.seconds)
                << sc.name;
        }
        // Each mesh priced on its configured path only.
        EXPECT_GT(meta.metaPricedCalls(), 0u) << sc.name;
        EXPECT_EQ(walk.metaPricedCalls(), 0u) << sc.name;
        EXPECT_GT(walk.walkPricedCalls(), 0u) << sc.name;
        EXPECT_EQ(meta.walkPricedCalls(), 0u) << sc.name;
    }
}

TEST(RouteMeta, AddFlowMetaMatchesWalkFuzz)
{
    // Slot-list-streamed addFlow must reproduce the walk-based
    // accumulation bit for bit on every metric and every link - also
    // across a mid-fuzz failLink() (both caches flush, both rebuild).
    const WaferGeometry geom;
    const NocParams params;
    DefectMap defects(geom);
    Rng seed_rng(317);
    for (int d = 0; d < 20; ++d) {
        defects.inject({static_cast<std::uint32_t>(
                                seed_rng.uniformInt(0, 40)),
                        static_cast<std::uint32_t>(
                                seed_rng.uniformInt(0, 40))});
    }
    MeshNoc meta_noc(geom, params, &defects);
    MeshNoc walk_noc(geom, params, &defects);
    walk_noc.setPriceFromMeta(false);
    TrafficAccumulator meta_traffic(meta_noc);
    TrafficAccumulator walk_traffic(walk_noc);

    Rng rng(331);
    std::vector<std::pair<CoreCoord, CoreCoord>> flows;
    for (int f = 0; f < 400; ++f) {
        if (f == 200) {
            meta_noc.failLink({5, 8}, LinkDir::South);
            walk_noc.failLink({5, 8}, LinkDir::South);
        }
        const CoreCoord src{
            static_cast<std::uint32_t>(rng.uniformInt(0, 40)),
            static_cast<std::uint32_t>(rng.uniformInt(0, 40))};
        const CoreCoord dst{
            static_cast<std::uint32_t>(rng.uniformInt(0, 40)),
            static_cast<std::uint32_t>(rng.uniformInt(0, 40))};
        const Bytes bytes = 64 + rng.uniformInt(0, 64 * KiB);
        meta_traffic.addFlow(src, dst, bytes);
        walk_traffic.addFlow(src, dst, bytes);
        flows.emplace_back(src, dst);
    }

    EXPECT_EQ(meta_traffic.bottleneckBytes(),
              walk_traffic.bottleneckBytes());
    EXPECT_EQ(meta_traffic.totalEnergyJ(),
              walk_traffic.totalEnergyJ());
    EXPECT_EQ(meta_traffic.totalByteHops(),
              walk_traffic.totalByteHops());
    EXPECT_EQ(meta_traffic.totalEffectiveByteHops(),
              walk_traffic.totalEffectiveByteHops());
    EXPECT_EQ(meta_traffic.loadedLinks(),
              walk_traffic.loadedLinks());
    for (const auto &[src, dst] : flows) {
        const auto &path = meta_noc.routeCached(src, dst);
        for (std::size_t i = 1; i < path.size(); ++i) {
            const auto dir = MeshNoc::stepDir(path[i - 1], path[i]);
            EXPECT_EQ(meta_traffic.linkLoad(path[i - 1], dir),
                      walk_traffic.linkLoad(path[i - 1], dir));
        }
    }
    EXPECT_GT(meta_noc.metaPricedCalls(), 0u);
    EXPECT_EQ(meta_noc.walkPricedCalls(), 0u);
    EXPECT_GT(walk_noc.walkPricedCalls(), 0u);
    EXPECT_EQ(walk_noc.metaPricedCalls(), 0u);
}

TEST(HTree, SingleGroupIsFree)
{
    const HTree tree(8);
    // All leaves one group: every merge is a reduction.
    EXPECT_EQ(tree.assignmentCost({0, 0, 0, 0, 0, 0, 0, 0}), 0u);
    EXPECT_EQ(tree.concatNodes({0, 0, 0, 0, 0, 0, 0, 0}), 0u);
}

TEST(HTree, TwoAlignedGroupsConcatAtRoot)
{
    const HTree tree(8);
    // Groups occupy the two root subtrees: one concat at depth... the
    // root is depth 0, so cost 0 but one concat node.
    const std::vector<int> a{0, 0, 0, 0, 1, 1, 1, 1};
    EXPECT_EQ(tree.concatNodes(a), 1u);
    EXPECT_EQ(tree.assignmentCost(a), 0u);
}

TEST(HTree, InterleavedGroupsCostMore)
{
    const HTree tree(8);
    const std::vector<int> aligned{0, 0, 0, 0, 1, 1, 1, 1};
    const std::vector<int> interleaved{0, 1, 0, 1, 0, 1, 0, 1};
    EXPECT_GT(tree.assignmentCost(interleaved),
              tree.assignmentCost(aligned));
    // Fully interleaved: concat at every internal node.
    EXPECT_EQ(tree.concatNodes(interleaved), 7u);
}

TEST(HTree, UnusedLeavesTransparent)
{
    const HTree tree(8);
    const std::vector<int> sparse{0, -1, -1, -1, 1, -1, -1, -1};
    EXPECT_EQ(tree.assignmentCost(sparse), 0u);
    EXPECT_EQ(tree.concatNodes(sparse), 1u);
}

TEST(HTree, DepthWeightsNearLeaves)
{
    const HTree tree(8);
    // Concat forced at depth 2 (leaf pair level = depth 2 for 8
    // leaves): groups 0/1 adjacent in one pair.
    const std::vector<int> near_leaf{0, 1, -1, -1, -1, -1, -1, -1};
    EXPECT_EQ(tree.assignmentCost(near_leaf), 2u);
    const std::vector<int> near_root{0, -1, -1, -1, 1, -1, -1, -1};
    EXPECT_EQ(tree.assignmentCost(near_root), 0u);
}

TEST(HTree, RejectsNonPowerOfTwo)
{
    EXPECT_DEATH({ HTree tree(6); }, "power of two");
}

TEST(HTree, ThirtyTwoLeavesMatchesCore)
{
    const HTree tree(32);
    EXPECT_EQ(tree.levels(), 5u);
    std::vector<int> all_one(32, 0);
    EXPECT_EQ(tree.assignmentCost(all_one), 0u);
}

} // namespace
} // namespace ouro
