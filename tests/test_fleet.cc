/**
 * @file
 * PR 10 fleet-serving tests: the dispatch policy as a pure function
 * (fast ordered-set path fuzzed against the linear-scan oracle,
 * least-outstanding reference semantics, tie-breaks, weights,
 * affinity pins), the two-phase router purity contract (result
 * invariant under any serial visit order AND parallel == serial),
 * the N=1 collapse oracle, and storm integration (zero-failure
 * bit-identity, weight derating, replay determinism).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hh"
#include "sim/fleet.hh"
#include "sim/system.hh"
#include "workload/requests.hh"
#include "workload/trace.hh"

namespace ouro
{
namespace
{

/** Every field of two PipelineStats must agree exactly (bin width
 *  and histogram included). */
bool
sameStats(const PipelineStats &a, const PipelineStats &b)
{
    return a.makespanSeconds == b.makespanSeconds &&
           a.tokensProcessed == b.tokensProcessed &&
           a.outputTokens == b.outputTokens &&
           a.bottleneckBusySeconds == b.bottleneckBusySeconds &&
           a.utilization == b.utilization &&
           a.bubbleFraction == b.bubbleFraction &&
           a.evictions == b.evictions &&
           a.recomputedTokens == b.recomputedTokens &&
           a.stormEvictions == b.stormEvictions &&
           a.stormReprefilledTokens == b.stormReprefilledTokens &&
           a.skippedRequests == b.skippedRequests &&
           a.peakConcurrency == b.peakConcurrency &&
           a.avgContext == b.avgContext &&
           a.itemsProcessed == b.itemsProcessed &&
           a.contextTokensSum == b.contextTokensSum &&
           a.stageBusySumSeconds == b.stageBusySumSeconds &&
           a.ttftSamples == b.ttftSamples &&
           a.interTokenSamples == b.interTokenSamples &&
           a.outputTokenBins == b.outputTokenBins &&
           a.throughputBinSeconds == b.throughputBinSeconds;
}

bool
sameFleet(const FleetResult &a, const FleetResult &b)
{
    if (a.assignment != b.assignment ||
        a.requestsPerWafer != b.requestsPerWafer ||
        a.tokensCommitted != b.tokensCommitted ||
        a.dispatchWeight != b.dispatchWeight ||
        a.wafers.size() != b.wafers.size() ||
        a.failuresInjected != b.failuresInjected ||
        a.failuresHandled != b.failuresHandled ||
        a.kvCoresLost != b.kvCoresLost ||
        a.kvCoresAdopted != b.kvCoresAdopted ||
        a.borrows != b.borrows ||
        a.events.size() != b.events.size())
        return false;
    for (std::size_t w = 0; w < a.wafers.size(); ++w) {
        if (!sameStats(a.wafers[w], b.wafers[w]))
            return false;
    }
    return sameStats(a.fleet, b.fleet);
}

/** System-level fixtures (mirrors test_storm.cc). */
OuroborosOptions
fastOpts(std::uint64_t seed = 11)
{
    OuroborosOptions opts;
    opts.smartMapping = false;
    opts.seed = seed;
    return opts;
}

TEST(FleetDispatch, LeastOutstandingReference)
{
    // Hand-checkable trace of the policy: equal-length requests over
    // 3 unweighted wafers round-robin BY CONSTRUCTION of join-least-
    // outstanding-work with the lowest-index tie-break (all counters
    // tie at every multiple of 3).
    FleetDispatchConfig cfg;
    cfg.numWafers = 3;
    const Workload w = fixedWorkload(64, 16, 9);
    const auto a = fleetDispatch(w, cfg);
    const std::vector<std::uint32_t> expect = {0, 1, 2, 0, 1, 2,
                                               0, 1, 2};
    EXPECT_EQ(a, expect);

    // Variable lengths: every request joins the least-loaded wafer
    // at its dispatch instant. Replay the counters by hand.
    const Workload v = wikiText2Like(40, 256, 7);
    const auto av = fleetDispatch(v, cfg);
    std::vector<std::uint64_t> committed(cfg.numWafers, 0);
    for (std::size_t i = 0; i < v.requests.size(); ++i) {
        std::uint32_t best = 0;
        for (std::uint32_t k = 1; k < cfg.numWafers; ++k) {
            if (committed[k] < committed[best])
                best = k;
        }
        EXPECT_EQ(av[i], best) << "request " << i;
        committed[best] += v.requests[i].totalTokens();
    }
}

TEST(FleetDispatch, FastMatchesScanOracleFuzz)
{
    // The ordered-set fast path must route every request exactly as
    // the per-request linear scan, across wafer counts, weights and
    // affinity pins (the PR's dispatch bit-identity oracle).
    Rng rng(20260808);
    for (int trial = 0; trial < 40; ++trial) {
        FleetDispatchConfig cfg;
        cfg.numWafers =
            static_cast<std::uint32_t>(rng.uniformInt(1, 9));
        if (trial % 2 == 1) {
            for (std::uint32_t w = 0; w < cfg.numWafers; ++w)
                cfg.capacityWeight.push_back(
                        rng.uniform(0.05, 2.0));
        }
        if (trial % 3 == 2) {
            const std::uint32_t pin_to =
                static_cast<std::uint32_t>(
                        rng.uniformInt(0, cfg.numWafers - 1));
            cfg.affinity = [pin_to](const Request &r) {
                return r.id % 5 == 0
                           ? static_cast<std::int64_t>(pin_to)
                           : std::int64_t{-1};
            };
        }
        const Workload w = wikiText2Like(
                static_cast<std::size_t>(rng.uniformInt(1, 200)),
                512, rng.next());
        EXPECT_EQ(fleetDispatch(w, cfg), fleetDispatchScan(w, cfg))
            << "trial " << trial << " wafers " << cfg.numWafers;
    }
}

TEST(FleetDispatch, CapacityWeightShiftsLoad)
{
    // A half-weight wafer looks twice as loaded per committed token,
    // so it is offered about half the work.
    FleetDispatchConfig cfg;
    cfg.numWafers = 2;
    cfg.capacityWeight = {0.5, 1.0};
    const Workload w = fixedWorkload(64, 64, 300);
    const auto a = fleetDispatch(w, cfg);
    const auto on0 = std::count(a.begin(), a.end(), 0u);
    EXPECT_GT(on0, 80);
    EXPECT_LT(on0, 120); // ~1/3 of 300 at weight ratio 1:2
}

TEST(FleetDispatch, AffinityPinsAndStillChargesCounters)
{
    FleetDispatchConfig cfg;
    cfg.numWafers = 3;
    cfg.affinity = [](const Request &r) {
        return r.id % 4 == 0 ? std::int64_t{2} : std::int64_t{-1};
    };
    const Workload w = fixedWorkload(64, 64, 120);
    const auto a = fleetDispatch(w, cfg);
    std::vector<std::uint64_t> count(3, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (i % 4 == 0) {
            EXPECT_EQ(a[i], 2u) << "request " << i;
        }
        ++count[a[i]];
    }
    // Pinned work charges wafer 2's counter, so the load policy
    // steers free requests away: wafer 2 ends with its pinned 30
    // plus at most a catch-up share, not 30 + a third of the rest.
    EXPECT_EQ(count[2], 40u); // 120/3: pins charged -> totals even out
    EXPECT_EQ(count[0] + count[1], 80u);
}

TEST(FleetServing, ParallelEqualsSerialUnderAnyVisitOrder)
{
    // The two-phase contract: dispatch never reads simulation
    // results, wafers write only their own slot, so the fleet result
    // is invariant under ANY execution order of phase 2 - parallel,
    // serial ascending, or any serial permutation.
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const Workload w = wikiText2Like(96, 512, 5);

    FleetOptions opts;
    opts.numWafers = 3;
    const FleetResult parallel = runFleetServing(*sys, w, opts);

    // Sanity: the router split the work and nothing was lost.
    const std::uint64_t total = std::accumulate(
            parallel.requestsPerWafer.begin(),
            parallel.requestsPerWafer.end(), std::uint64_t{0});
    EXPECT_EQ(total, w.requests.size());
    EXPECT_GT(*std::min_element(parallel.requestsPerWafer.begin(),
                                parallel.requestsPerWafer.end()),
              0u);
    EXPECT_EQ(parallel.fleet.outputTokens, w.totalOutputTokens());

    FleetOptions serial = opts;
    serial.serialExecution = true;
    EXPECT_TRUE(sameFleet(parallel, runFleetServing(*sys, w,
                                                    serial)));
    for (const std::vector<std::uint32_t> &order :
         {std::vector<std::uint32_t>{2, 0, 1},
          std::vector<std::uint32_t>{1, 2, 0},
          std::vector<std::uint32_t>{2, 1, 0}}) {
        serial.serialOrder = order;
        EXPECT_TRUE(sameFleet(parallel,
                              runFleetServing(*sys, w, serial)));
    }

    // Replay determinism: same inputs, bit-identical result.
    EXPECT_TRUE(sameFleet(parallel, runFleetServing(*sys, w,
                                                    opts)));
}

TEST(FleetServing, SingleWaferCollapsesToPlainServing)
{
    // N=1 collapse oracle: the whole fleet layer must vanish - one
    // wafer, no storm, is bit-identical to a direct runPipeline over
    // the same pool and options.
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const Workload w = wikiText2Like(64, 512, 9);

    FleetOptions opts;
    opts.numWafers = 1;
    opts.throughputBinSeconds = 0.01;
    const FleetResult fleet = runFleetServing(*sys, w, opts);
    EXPECT_TRUE(std::all_of(fleet.assignment.begin(),
                            fleet.assignment.end(),
                            [](std::uint32_t a) { return a == 0; }));

    BlockKvManager kv(model, sys->scorePool(), sys->contextPool(),
                      128, sys->options().kvThreshold);
    PipelineOptions popts;
    popts.kind = PipelineKind::TokenGrained;
    popts.attentionParallelism = opts.attentionParallelism;
    popts.throughputBinSeconds = opts.throughputBinSeconds;
    const PipelineStats plain =
        runPipeline(w, model, sys->stageTiming(), kv, popts);
    EXPECT_TRUE(sameStats(fleet.fleet, plain));
    EXPECT_TRUE(sameStats(fleet.wafers[0], plain));
}

TEST(FleetServing, DayTraceWindowOverloadMatchesWorkload)
{
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    DayTraceParams params;
    params.requests = 80;
    params.maxLen = 256;
    params.seed = 3;
    const DayTrace trace(params);

    FleetOptions opts;
    opts.numWafers = 2;
    const FleetResult via_trace = runFleetServing(
            *sys, trace, 0.0, trace.daySeconds(), opts);
    const FleetResult via_workload = runFleetServing(
            *sys, trace.window(0.0, trace.daySeconds()), opts);
    EXPECT_TRUE(sameFleet(via_trace, via_workload));
}

TEST(FleetServing, ZeroFailureStormEqualsNoStormFleet)
{
    // Storm oracle: arming the injector with zero failures resolves
    // to an empty schedule, an un-derated weight, and a fleet run
    // bit-identical to the no-storm one.
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const Workload w = wikiText2Like(64, 512, 13);

    FleetOptions opts;
    opts.numWafers = 2;
    opts.throughputBinSeconds = 0.005;
    const FleetResult nostorm = runFleetServing(*sys, w, opts);

    FleetOptions zero = opts;
    zero.stormWafer = 1;
    zero.injector.failures = 0;
    const FleetResult armed = runFleetServing(*sys, w, zero);
    EXPECT_TRUE(sameFleet(nostorm, armed));
    EXPECT_TRUE(armed.events.empty());
    EXPECT_EQ(armed.dispatchWeight[1], 1.0);
}

TEST(FleetServing, StormDeratesWeightAndReplaysBitwise)
{
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const Workload w = wikiText2Like(96, 512, 21);

    FleetOptions opts;
    opts.numWafers = 2;
    const FleetResult nostorm = runFleetServing(*sys, w, opts);

    FleetOptions storm_opts = opts;
    storm_opts.stormWafer = 1;
    storm_opts.injector.failures = 12;
    storm_opts.injector.seed = 42;
    storm_opts.injector.stormStart =
        0.3 * nostorm.wafers[1].makespanSeconds;
    storm_opts.injector.stormDuration =
        0.2 * nostorm.wafers[1].makespanSeconds;
    const FleetResult storm = runFleetServing(*sys, w, storm_opts);

    // The schedule resolved, the router saw the degraded pool, and
    // load shifted off the storm wafer.
    EXPECT_GT(storm.failuresHandled, 0u);
    EXPECT_FALSE(storm.events.empty());
    EXPECT_GT(storm.kvCoresLost, 0u);
    EXPECT_LT(storm.dispatchWeight[1], 1.0);
    EXPECT_GE(storm.dispatchWeight[1], storm_opts.minDispatchWeight);
    EXPECT_EQ(storm.dispatchWeight[0], 1.0);
    EXPECT_LT(storm.requestsPerWafer[1],
              nostorm.requestsPerWafer[1]);
    EXPECT_EQ(storm.requestsPerWafer[0] + storm.requestsPerWafer[1],
              w.requests.size());

    // Only the storm wafer's simulation sees the schedule; the
    // healthy wafer differs from its no-storm self ONLY through the
    // dispatch shift, never through hidden storm state.
    EXPECT_EQ(storm.wafers[0].stormEvictions, 0u);

    // Whole-run replay determinism (stats, assignment AND events).
    EXPECT_TRUE(sameFleet(storm, runFleetServing(*sys, w,
                                                 storm_opts)));

    // Parallel == serial holds under a storm too.
    FleetOptions serial = storm_opts;
    serial.serialExecution = true;
    serial.serialOrder = {1, 0};
    EXPECT_TRUE(sameFleet(storm, runFleetServing(*sys, w, serial)));
}

} // namespace
} // namespace ouro
