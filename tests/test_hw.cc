/**
 * @file
 * Unit tests for the hardware module: wafer geometry arithmetic,
 * parameter derivations against the paper's stated numbers, crossbar
 * mode/occupancy behaviour, core tile/KV capacity, and the Murphy
 * yield model.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "hw/core.hh"
#include "hw/crossbar.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"

namespace ouro
{
namespace
{

TEST(Geometry, PaperDefaults)
{
    const WaferGeometry geom;
    EXPECT_EQ(geom.dieRows(), 9u);
    EXPECT_EQ(geom.dieCols(), 7u);
    EXPECT_EQ(geom.numDies(), 63u);
    EXPECT_EQ(geom.rows(), 117u);
    EXPECT_EQ(geom.cols(), 119u);
    EXPECT_EQ(geom.numCores(), 13923u);
}

TEST(Geometry, CoreIndexRoundTrip)
{
    const WaferGeometry geom;
    for (std::uint64_t idx : {0ull, 1ull, 118ull, 119ull, 13922ull}) {
        EXPECT_EQ(geom.coreIndex(geom.coreAt(idx)), idx);
    }
}

TEST(Geometry, DieMembership)
{
    const WaferGeometry geom;
    EXPECT_EQ(geom.dieOf({0, 0}), (DieCoord{0, 0}));
    EXPECT_EQ(geom.dieOf({12, 16}), (DieCoord{0, 0}));
    EXPECT_EQ(geom.dieOf({13, 17}), (DieCoord{1, 1}));
    EXPECT_EQ(geom.dieOf({116, 118}), (DieCoord{8, 6}));
    EXPECT_TRUE(geom.sameDie({0, 0}, {12, 16}));
    EXPECT_FALSE(geom.sameDie({12, 16}, {13, 16}));
}

TEST(Geometry, ManhattanDistance)
{
    const WaferGeometry geom;
    EXPECT_EQ(geom.manhattan({0, 0}, {0, 0}), 0u);
    EXPECT_EQ(geom.manhattan({0, 0}, {3, 4}), 7u);
    EXPECT_EQ(geom.manhattan({3, 4}, {0, 0}), 7u);
}

TEST(Geometry, DieCrossings)
{
    const WaferGeometry geom;
    EXPECT_EQ(geom.dieCrossings({0, 0}, {12, 16}), 0u);
    EXPECT_EQ(geom.dieCrossings({0, 0}, {13, 0}), 1u);
    EXPECT_EQ(geom.dieCrossings({0, 0}, {116, 118}), 14u);
}

TEST(Geometry, SShapedOrderVisitsAllExactlyOnce)
{
    const WaferGeometry geom(2, 2, 3, 3);
    const auto order = geom.sShapedOrder();
    EXPECT_EQ(order.size(), geom.numCores());
    std::set<std::uint64_t> seen;
    for (const auto &coord : order)
        seen.insert(geom.coreIndex(coord));
    EXPECT_EQ(seen.size(), geom.numCores());
}

TEST(Geometry, SShapedOrderIsLocal)
{
    // Consecutive cores in the S-order should be close: the whole
    // point of the boustrophedon walk is pipeline locality.
    const WaferGeometry geom;
    const auto order = geom.sShapedOrder();
    double total_hops = 0.0;
    std::uint32_t max_hop = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        const auto d = geom.manhattan(order[i - 1], order[i]);
        total_hops += d;
        max_hop = std::max(max_hop, d);
    }
    EXPECT_LT(total_hops / static_cast<double>(order.size() - 1), 2.5);
    // A jump should never span more than one die in each axis.
    EXPECT_LE(max_hop, geom.coresPerDieRow() + geom.coresPerDieCol());
}

TEST(Params, WaferCapacityIs54GB)
{
    const OuroborosParams params;
    const WaferGeometry geom;
    const double gb = static_cast<double>(
            params.waferSramBytes(geom.numCores())) / 1e9;
    // 13923 cores x 4 MiB = 58.4 GB decimal, 54.4 GiB binary - the
    // paper's "54 GB" is the binary reading.
    EXPECT_NEAR(static_cast<double>(
            params.waferSramBytes(geom.numCores())) /
            static_cast<double>(GiB), 54.4, 0.5);
    EXPECT_GT(gb, 50.0);
}

TEST(Params, CrossbarCapacity)
{
    const CrossbarParams xp;
    EXPECT_EQ(xp.capacityBytes(), 128 * KiB);
    EXPECT_EQ(xp.weightCapacity(), 1024u * 128u);
    const CoreParams cp;
    EXPECT_EQ(cp.sramBytes(), 4 * MiB);
}

TEST(Params, GemvCyclesAtPaperRatio)
{
    const CrossbarParams xp;
    EXPECT_EQ(xp.rowsPerCycle(), 32u);
    // Full 1024-row GEMV: 32 cycles per input bit x 8 bits.
    EXPECT_EQ(xp.gemvCycles(1024), 256u);
    // Partial occupancy rounds up to the bank granularity.
    EXPECT_EQ(xp.gemvCycles(33), 2u * 8u);
    EXPECT_EQ(xp.gemvCycles(1), 8u);
    EXPECT_EQ(xp.gemvCycles(0), 0u);
}

TEST(Params, MacsPerCycle)
{
    const CrossbarParams xp;
    // 1024 x 128 MACs in 256 cycles = 512 MACs/cycle.
    EXPECT_DOUBLE_EQ(xp.macsPerCycle(), 512.0);
}

TEST(Params, RowRatioTradesThroughput)
{
    CrossbarParams quarter;
    quarter.rowActiveRatio = 1.0 / 4.0;
    CrossbarParams thirtysecond;
    EXPECT_GT(quarter.macsPerCycle(), thirtysecond.macsPerCycle());
    EXPECT_EQ(quarter.gemvCycles(1024), 4u * 8u);
}

TEST(Params, EnergyPerMacInPlausibleRange)
{
    const CrossbarParams xp;
    const double pj = xp.energyPerMac() / pJ;
    // Section 5 component powers imply order 0.1 pJ/MAC for the
    // crossbar proper (core overheads push system TOPS/W to ~11).
    EXPECT_GT(pj, 0.01);
    EXPECT_LT(pj, 1.0);
}

TEST(Params, CorePeakTops)
{
    const CoreParams cp;
    // 32 xbars x 512 MACs/cycle x 300 MHz x 2 ops ~ 9.8 TOPS.
    EXPECT_NEAR(cp.peakTops(), 9.83, 0.2);
}

TEST(Crossbar, FfnAssignment)
{
    Crossbar xbar{CrossbarParams{}};
    EXPECT_EQ(xbar.mode(), CrossbarMode::Unassigned);
    EXPECT_TRUE(xbar.assignWeights(1024, 128));
    EXPECT_EQ(xbar.mode(), CrossbarMode::Ffn);
    // Already assigned: refuse.
    EXPECT_FALSE(xbar.assignWeights(10, 10));
    EXPECT_FALSE(xbar.assignAttention());
}

TEST(Crossbar, RejectsOversizeTile)
{
    Crossbar xbar{CrossbarParams{}};
    EXPECT_FALSE(xbar.assignWeights(2000, 128));
    EXPECT_FALSE(xbar.assignWeights(1024, 200));
    EXPECT_EQ(xbar.mode(), CrossbarMode::Unassigned);
}

TEST(Crossbar, GemvCostScalesWithOccupancy)
{
    Crossbar full{CrossbarParams{}};
    ASSERT_TRUE(full.assignWeights(1024, 128));
    Crossbar half{CrossbarParams{}};
    ASSERT_TRUE(half.assignWeights(512, 64));

    const ComputeCost cf = full.gemv();
    const ComputeCost ch = half.gemv();
    EXPECT_EQ(cf.cycles, 256u);
    EXPECT_EQ(ch.cycles, 128u);
    EXPECT_LT(ch.energyJ, cf.energyJ);
    EXPECT_DOUBLE_EQ(cf.macs, 1024.0 * 128.0);
    EXPECT_DOUBLE_EQ(ch.macs, 512.0 * 64.0);
}

TEST(Crossbar, AttentionBlockLifecycle)
{
    Crossbar xbar{CrossbarParams{}};
    ASSERT_TRUE(xbar.assignAttention());
    EXPECT_EQ(xbar.numLogicalBlocks(), 8u);
    EXPECT_EQ(xbar.blockRows(), 128u);
    EXPECT_EQ(xbar.freeBlocks(), 8u);

    const int b0 = xbar.allocBlock();
    ASSERT_GE(b0, 0);
    EXPECT_EQ(xbar.freeBlocks(), 7u);
    EXPECT_TRUE(xbar.blockInUse(b0));
    EXPECT_EQ(xbar.blockUsedRows(b0), 0u);

    EXPECT_TRUE(xbar.growBlock(b0, 100));
    EXPECT_EQ(xbar.blockUsedRows(b0), 100u);
    EXPECT_TRUE(xbar.growBlock(b0, 28));
    // Now full (128 rows): further growth fails.
    EXPECT_FALSE(xbar.growBlock(b0, 1));

    xbar.freeBlock(b0);
    EXPECT_EQ(xbar.freeBlocks(), 8u);
}

TEST(Crossbar, AllBlocksExhaust)
{
    Crossbar xbar{CrossbarParams{}};
    ASSERT_TRUE(xbar.assignAttention());
    for (int i = 0; i < 8; ++i)
        EXPECT_GE(xbar.allocBlock(), 0);
    EXPECT_EQ(xbar.allocBlock(), -1);
}

TEST(Crossbar, AttentionGemvCost)
{
    Crossbar xbar{CrossbarParams{}};
    ASSERT_TRUE(xbar.assignAttention());
    const ComputeCost c = xbar.attentionGemv(256);
    EXPECT_EQ(c.cycles, 8u * 8u); // ceil(256/32) x 8 bits
    EXPECT_GT(c.energyJ, 0.0);
}

TEST(Crossbar, KvWriteEnergyScales)
{
    Crossbar xbar{CrossbarParams{}};
    EXPECT_GT(xbar.kvWriteEnergy(1024), xbar.kvWriteEnergy(128));
    EXPECT_DOUBLE_EQ(xbar.kvWriteEnergy(0), 0.0);
}

TEST(Crossbar, ResetClearsState)
{
    Crossbar xbar{CrossbarParams{}};
    ASSERT_TRUE(xbar.assignWeights(100, 100));
    xbar.reset();
    EXPECT_EQ(xbar.mode(), CrossbarMode::Unassigned);
    EXPECT_TRUE(xbar.assignAttention());
}

TEST(Core, TileAssignmentSpreadsCrossbars)
{
    CimCore core{CoreParams{}};
    // 1024 x 640 tile: 640 / 128 = 5 crossbars.
    TileAssignment tile{"ffn_up", 0, 0, 0, 1024, 640};
    ASSERT_TRUE(core.assignTile(tile));
    EXPECT_EQ(core.role(), CoreRole::Weights);
    EXPECT_EQ(core.weightCrossbars(), 5u);
    // Spare crossbars flip to attention duty for the KV manager.
    EXPECT_EQ(core.freeAttentionCrossbars(), 32u - 5u);
    EXPECT_EQ(core.freeKvBlocks(), (32u - 5u) * 8u);
}

TEST(Core, TileTooLargeRejected)
{
    CimCore core{CoreParams{}};
    // 32 crossbars x 128 cols = 4096 columns max.
    TileAssignment tile{"huge", 0, 0, 0, 1024, 5000};
    EXPECT_FALSE(core.assignTile(tile));
    EXPECT_EQ(core.role(), CoreRole::Unassigned);
}

TEST(Core, RowOverflowRejected)
{
    CimCore core{CoreParams{}};
    TileAssignment tile{"tall", 0, 0, 0, 1500, 128};
    EXPECT_FALSE(core.assignTile(tile));
}

TEST(Core, DefectiveCoreRefusesWork)
{
    CimCore core{CoreParams{}};
    core.markDefective();
    EXPECT_FALSE(core.usable());
    TileAssignment tile{"qkv", 0, 0, 0, 1024, 128};
    EXPECT_FALSE(core.assignTile(tile));
    EXPECT_FALSE(core.assignKvRole());
    EXPECT_EQ(core.freeKvBlocks(), 0u);
}

TEST(Core, KvRoleOpensAllCrossbars)
{
    CimCore core{CoreParams{}};
    ASSERT_TRUE(core.assignKvRole());
    EXPECT_EQ(core.role(), CoreRole::KvCache);
    EXPECT_EQ(core.freeAttentionCrossbars(), 32u);
    EXPECT_EQ(core.freeKvBlocks(), 32u * 8u);
}

TEST(Core, WeightGemvAggregates)
{
    CimCore core{CoreParams{}};
    TileAssignment tile{"proj", 0, 0, 0, 1024, 256};
    ASSERT_TRUE(core.assignTile(tile));
    const ComputeCost c = core.weightGemv();
    // Two crossbars fire in parallel: latency of one, energy of two.
    EXPECT_EQ(c.cycles, 256u);
    Crossbar lone{CrossbarParams{}};
    ASSERT_TRUE(lone.assignWeights(1024, 128));
    EXPECT_NEAR(c.energyJ, 2.0 * lone.gemv().energyJ, 1e-15);
    EXPECT_DOUBLE_EQ(c.macs, 1024.0 * 256.0);
}

TEST(Core, SfuComputeCost)
{
    CimCore core{CoreParams{}};
    const ComputeCost c = core.sfuCompute(64 * 1000);
    EXPECT_GT(c.cycles, 0u);
    EXPECT_GT(c.energyJ, 0.0);
    // More ops, more cycles.
    EXPECT_GT(core.sfuCompute(64 * 2000).cycles, c.cycles);
}

TEST(Core, ResetPreservesDefect)
{
    CimCore core{CoreParams{}};
    core.markDefective();
    core.reset();
    EXPECT_EQ(core.role(), CoreRole::Defective);
}

TEST(Core, ResetReleasesTile)
{
    CimCore core{CoreParams{}};
    TileAssignment tile{"qkv", 0, 0, 0, 512, 512};
    ASSERT_TRUE(core.assignTile(tile));
    core.reset();
    EXPECT_EQ(core.role(), CoreRole::Unassigned);
    EXPECT_TRUE(core.assignTile(tile));
}

TEST(Yield, MurphyMatchesClosedForm)
{
    const YieldParams params;
    const double y = murphyYield(params);
    // A*D0 = 0.002673 -> Y ~ 0.99733.
    EXPECT_NEAR(y, 0.99733, 0.0005);
    EXPECT_NEAR(coreDefectProbability(params), 1.0 - y, 1e-12);
}

TEST(Yield, DefectCountNearExpectation)
{
    const WaferGeometry geom;
    const YieldParams params;
    Rng rng(99);
    const DefectMap map(geom, params, rng);
    const double expected =
        coreDefectProbability(params) *
        static_cast<double>(geom.numCores());
    EXPECT_GT(map.numDefects(), expected * 0.4);
    EXPECT_LT(map.numDefects(), expected * 2.0);
}

TEST(Yield, DefectMapDeterministic)
{
    const WaferGeometry geom;
    const YieldParams params;
    Rng rng_a(7), rng_b(7);
    const DefectMap a(geom, params, rng_a);
    const DefectMap b(geom, params, rng_b);
    ASSERT_EQ(a.numDefects(), b.numDefects());
    for (std::uint64_t i = 0; i < geom.numCores(); ++i)
        EXPECT_EQ(a.defective(i), b.defective(i));
}

TEST(Yield, InjectIsIdempotent)
{
    const WaferGeometry geom;
    DefectMap map(geom);
    EXPECT_EQ(map.numDefects(), 0u);
    map.inject({5, 5});
    map.inject({5, 5});
    EXPECT_EQ(map.numDefects(), 1u);
    EXPECT_TRUE(map.defective(CoreCoord{5, 5}));
    EXPECT_FALSE(map.defective(CoreCoord{5, 6}));
}

/** Property sweep: gemvCycles is monotone in active rows. */
class GemvMonotoneTest
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(GemvMonotoneTest, CyclesMonotone)
{
    const CrossbarParams xp;
    const std::uint32_t rows = GetParam();
    EXPECT_LE(xp.gemvCycles(rows), xp.gemvCycles(rows + 1));
}

INSTANTIATE_TEST_SUITE_P(RowSweep, GemvMonotoneTest,
                         ::testing::Values(0, 1, 31, 32, 33, 511, 1023));

} // namespace
} // namespace ouro
