/**
 * @file
 * Unit tests for the common infrastructure: RNG determinism and
 * distribution sanity, energy ledger arithmetic, running statistics,
 * histograms, unit helpers and the table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace ouro
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all values hit
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(4, 4), 4u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LogNormalPositive)
{
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.logNormal(3.0, 1.0), 0.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(EnergyLedger, StartsEmpty)
{
    EnergyLedger ledger;
    EXPECT_DOUBLE_EQ(ledger.total(), 0.0);
    for (std::size_t i = 0; i < kNumEnergyCategories; ++i)
        EXPECT_DOUBLE_EQ(
                ledger.get(static_cast<EnergyCategory>(i)), 0.0);
}

TEST(EnergyLedger, AddAndTotal)
{
    EnergyLedger ledger;
    ledger.add(EnergyCategory::Compute, 1.0);
    ledger.add(EnergyCategory::Communication, 2.0);
    ledger.add(EnergyCategory::OnChipMemory, 3.0);
    ledger.add(EnergyCategory::OffChipMemory, 4.0);
    EXPECT_DOUBLE_EQ(ledger.total(), 10.0);
    EXPECT_DOUBLE_EQ(ledger.get(EnergyCategory::OnChipMemory), 3.0);
}

TEST(EnergyLedger, MergeAccumulates)
{
    EnergyLedger a, b;
    a.add(EnergyCategory::Compute, 1.5);
    b.add(EnergyCategory::Compute, 2.5);
    b.add(EnergyCategory::Communication, 1.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get(EnergyCategory::Compute), 4.0);
    EXPECT_DOUBLE_EQ(a.get(EnergyCategory::Communication), 1.0);
}

TEST(EnergyLedger, ScaledProducesCopy)
{
    EnergyLedger a;
    a.add(EnergyCategory::OffChipMemory, 8.0);
    const EnergyLedger half = a.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.get(EnergyCategory::OffChipMemory), 4.0);
    EXPECT_DOUBLE_EQ(a.get(EnergyCategory::OffChipMemory), 8.0);
}

TEST(EnergyLedger, ClearZeroes)
{
    EnergyLedger a;
    a.add(EnergyCategory::Compute, 5.0);
    a.clear();
    EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(EnergyLedger, CategoryNames)
{
    EXPECT_STREQ(energyCategoryName(EnergyCategory::Compute),
                 "compute");
    EXPECT_STREQ(energyCategoryName(EnergyCategory::OffChipMemory),
                 "off-chip-memory");
}

TEST(RunningStat, BasicMoments)
{
    RunningStat stat;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        stat.add(x);
    EXPECT_EQ(stat.count(), 5u);
    EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 5.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 2.5);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, SingleSampleNoVariance)
{
    RunningStat stat;
    stat.add(7.0);
    EXPECT_DOUBLE_EQ(stat.mean(), 7.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-5.0);  // clamps to bin 0
    h.add(50.0);  // clamps to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(5), 5.0);
}

TEST(Units, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(1, 1024), 1u);
    EXPECT_EQ(ceilDiv(0, 7), 0u);
}

TEST(Units, CyclesToSeconds)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(300, 300 * MHz), 1e-6);
}

TEST(Units, SizeConstants)
{
    EXPECT_EQ(4 * MiB, 4ull * 1024 * 1024);
    EXPECT_EQ(54 * GiB, 54ull * 1024 * 1024 * 1024);
}

TEST(Table, AlignedOutput)
{
    Table t({"model", "speedup"});
    t.row().cell("LLaMA-13B").cell(5.4, 1);
    t.row().cell("Qwen-32B").cell(2.8, 1);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("LLaMA-13B"), std::string::npos);
    EXPECT_NE(text.find("5.4"), std::string::npos);
    EXPECT_NE(text.find("speedup"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, NumericCells)
{
    Table t({"a", "b", "c"});
    t.row().cell(std::uint64_t{12345}).cell(7).cell(0.125, 3);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("12345"), std::string::npos);
    EXPECT_NE(os.str().find("0.125"), std::string::npos);
}

TEST(Format, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

} // namespace
} // namespace ouro
