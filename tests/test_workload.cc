/**
 * @file
 * Property tests for the request-stream generators, most importantly
 * the wikiText2Like context-window invariant: every request keeps
 * prefill >= 16, decode >= 16 AND prefill + decode <= max_len. The
 * pre-fix generator could overflow the window when a long prompt
 * left fewer than 16 decode slots (the decode floor then pushed the
 * total past max_len).
 */

#include <gtest/gtest.h>

#include "workload/requests.hh"

namespace ouro
{
namespace
{

TEST(WikiTextWindow, NeverOverflowsContextProperty)
{
    // Sweep seeds and window sizes, including tight windows where the
    // old clamp was guaranteed to overflow eventually.
    for (const std::uint64_t max_len : {32ull, 48ull, 64ull, 128ull,
                                        256ull, 512ull, 2048ull}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            const Workload w = wikiText2Like(400, max_len, seed);
            ASSERT_EQ(w.requests.size(), 400u);
            for (const auto &r : w.requests) {
                EXPECT_GE(r.prefillLen, 16u) << "seed " << seed;
                EXPECT_GE(r.decodeLen, 16u) << "seed " << seed;
                EXPECT_LE(r.totalTokens(), max_len)
                    << "seed " << seed << " max_len " << max_len
                    << " lp " << r.prefillLen << " ld "
                    << r.decodeLen;
            }
            EXPECT_EQ(w.maxSequenceLength() <= max_len, true);
        }
    }
}

TEST(WikiTextWindow, MinimalWindowDegeneratesToFloors)
{
    // max_len = 32 leaves exactly the two floors.
    const Workload w = wikiText2Like(100, 32, 3);
    for (const auto &r : w.requests) {
        EXPECT_EQ(r.prefillLen, 16u);
        EXPECT_EQ(r.decodeLen, 16u);
    }
}

TEST(WikiTextWindow, RejectsWindowBelowFloors)
{
    EXPECT_DEATH({ wikiText2Like(1, 31, 1); }, "max_len");
}

TEST(WikiTextWindow, LongPromptsStillHaveDecodeRoom)
{
    // Requests whose prompt saturates the cap must still decode at
    // least the 16-token floor - the exact case the old code broke.
    const Workload w = wikiText2Like(2000, 128, 13);
    bool saw_capped_prompt = false;
    for (const auto &r : w.requests) {
        if (r.prefillLen == 128 - 16) {
            saw_capped_prompt = true;
            EXPECT_GE(r.decodeLen, 16u);
            EXPECT_LE(r.totalTokens(), 128u);
        }
    }
    // The heavy log-normal tail makes capped prompts near-certain.
    EXPECT_TRUE(saw_capped_prompt);
}

TEST(FixedWorkload, GridIsExact)
{
    const Workload w = fixedWorkload(128, 64, 10);
    EXPECT_EQ(w.requests.size(), 10u);
    EXPECT_EQ(w.totalTokens(), 10u * (128 + 64));
    EXPECT_EQ(w.totalOutputTokens(), 10u * 64);
    EXPECT_EQ(w.maxSequenceLength(), 192u);
}

TEST(PaperWorkloads, AllRespectTheirWindows)
{
    for (const auto &w : paperWorkloads(50)) {
        for (const auto &r : w.requests) {
            EXPECT_GT(r.prefillLen, 0u);
            EXPECT_GT(r.decodeLen, 0u);
        }
    }
}

} // namespace
} // namespace ouro
