/**
 * @file
 * Tests for the sampled-window day-trace simulator, pinning its
 * accuracy contract: fraction 1.0 with zero warmup collapses
 * BIT-IDENTICALLY to the retained full event-stepped run, the
 * parallel window fan-out equals the serial loop exactly, warmup
 * windows are measurement-neutral at ctxBucketShift 0, and at real
 * fractions the estimate lands inside its own reported confidence
 * interval of the full-run value.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "pipeline/timing_cache.hh"
#include "sim/sampled_run.hh"
#include "workload/trace.hh"

namespace ouro
{
namespace
{

ModelConfig
simModel()
{
    ModelConfig cfg;
    cfg.name = "sampled-test";
    cfg.numBlocks = 8;
    cfg.hiddenDim = 512;
    cfg.numHeads = 4;
    cfg.numKvHeads = 4;
    cfg.headDim = 128;
    cfg.ffnDim = 1024;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 100;
    cfg.bytesPerParam = 1;
    cfg.attention = AttentionKind::Causal;
    cfg.maxContext = 4096;
    return cfg;
}

StageTiming
simTiming()
{
    StageTiming timing;
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        timing.fixedSeconds[s] = 1e-6;
        const auto kind = static_cast<StageKind>(s);
        timing.perContextSeconds[s] =
            stageIsAttention(kind) ? 1e-9 : 0.0;
    }
    return timing;
}

std::vector<KvCoreInfo>
pool(std::uint32_t base)
{
    std::vector<KvCoreInfo> infos;
    for (std::uint32_t i = 0; i < 64; ++i)
        infos.push_back({{base, i}, 32, 8});
    return infos;
}

SampledSimulator
makeSim(SampledSimOptions opts, std::uint64_t requests = 1000,
        std::uint64_t seed = 20260808)
{
    DayTraceParams p;
    p.requests = requests;
    p.seed = seed;
    return SampledSimulator(DayTrace(p), simModel(), simTiming(),
                            pool(0), pool(1), opts);
}

void
expectStatsIdentical(const PipelineStats &a, const PipelineStats &b)
{
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.tokensProcessed, b.tokensProcessed);
    EXPECT_EQ(a.outputTokens, b.outputTokens);
    EXPECT_DOUBLE_EQ(a.bottleneckBusySeconds,
                     b.bottleneckBusySeconds);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.recomputedTokens, b.recomputedTokens);
    EXPECT_EQ(a.skippedRequests, b.skippedRequests);
    EXPECT_DOUBLE_EQ(a.peakConcurrency, b.peakConcurrency);
    EXPECT_DOUBLE_EQ(a.avgContext, b.avgContext);
    EXPECT_EQ(a.itemsProcessed, b.itemsProcessed);
    EXPECT_DOUBLE_EQ(a.contextTokensSum, b.contextTokensSum);
    EXPECT_DOUBLE_EQ(a.stageBusySumSeconds, b.stageBusySumSeconds);
    EXPECT_EQ(a.ttftSamples, b.ttftSamples);
    EXPECT_EQ(a.interTokenSamples, b.interTokenSamples);
}

TEST(SampledRun, FractionOneZeroWarmupCollapsesToFullRun)
{
    SampledSimOptions opts;
    opts.numWindows = 16;
    opts.strata = 4;
    opts.fraction = 1.0;
    opts.warmupWindows = 0;
    const SampledSimulator sim = makeSim(opts);

    const PipelineStats full = sim.fullRun();
    const SampledEstimate est = sim.run();

    EXPECT_EQ(est.measuredWindows, 16u);
    EXPECT_EQ(est.warmupWindowsSimulated, 0u);
    EXPECT_EQ(est.coverage, 1.0);
    expectStatsIdentical(est.measured, full);

    // The expansions are exactly 1.0, so the estimate IS the full
    // total, bit for bit - including the throughput ratio.
    EXPECT_EQ(est.estOutputTokens,
              static_cast<double>(full.outputTokens));
    EXPECT_EQ(est.estMakespanSeconds, full.makespanSeconds);
    EXPECT_EQ(est.estTokensPerSecond, full.outputTokensPerSecond());

    // A census has zero sampling variance: the finite-population
    // correction zeroes every stratum term exactly.
    EXPECT_TRUE(est.ciValid);
    EXPECT_EQ(est.ciTokensPerSecond, 0.0);
    EXPECT_EQ(est.ciOutputTokens, 0.0);
}

TEST(SampledRun, ParallelEqualsSerialBitIdentically)
{
    SampledSimOptions opts;
    opts.numWindows = 12;
    opts.strata = 3;
    opts.fraction = 0.5;
    opts.warmupWindows = 1;
    auto serial = opts;
    serial.serialExecution = true;

    const SampledEstimate ep = makeSim(opts).run();
    const SampledEstimate es = makeSim(serial).run();
    expectStatsIdentical(ep.measured, es.measured);
    EXPECT_EQ(ep.estTokensPerSecond, es.estTokensPerSecond);
    EXPECT_EQ(ep.estOutputTokens, es.estOutputTokens);
    EXPECT_EQ(ep.ciTokensPerSecond, es.ciTokensPerSecond);
    EXPECT_EQ(ep.ciOutputTokens, es.ciOutputTokens);

    expectStatsIdentical(makeSim(opts).fullRun(),
                         makeSim(serial).fullRun());
}

TEST(SampledRun, WarmupIsMeasurementNeutralAtExactContexts)
{
    // Warmup windows only touch the chain's TimingCache; at
    // ctxBucketShift 0 a cache hit is bit-identical to a fresh
    // computation, so the measured stats cannot depend on warmup
    // depth (only the cache hit/miss counters do).
    SampledSimOptions opts;
    opts.numWindows = 12;
    opts.strata = 3;
    opts.fraction = 0.5;
    opts.warmupWindows = 0;
    auto warm = opts;
    warm.warmupWindows = 2;

    const SampledEstimate cold = makeSim(opts).run();
    const SampledEstimate warmed = makeSim(warm).run();
    EXPECT_EQ(cold.warmupWindowsSimulated, 0u);
    EXPECT_GT(warmed.warmupWindowsSimulated, 0u);

    PipelineStats a = cold.measured;
    PipelineStats b = warmed.measured;
    // Warmup legitimately shifts traffic from misses to hits; the
    // MEASUREMENTS must be untouched.
    EXPECT_GT(b.timingCacheHits, a.timingCacheHits);
    a.timingCacheHits = b.timingCacheHits = 0;
    a.timingCacheMisses = b.timingCacheMisses = 0;
    expectStatsIdentical(a, b);
    EXPECT_EQ(cold.estTokensPerSecond, warmed.estTokensPerSecond);
}

TEST(SampledRun, EstimateWithinItsOwnConfidenceInterval)
{
    // Deterministic accuracy regression (everything is seeded): on a
    // mid-size trace the sampled estimate must cover the full-run
    // value with its own reported 95% CI and sit within 10%.
    SampledSimOptions opts;
    opts.numWindows = 60;
    opts.strata = 5;
    opts.fraction = 0.25; // 3 of 12 windows per stratum
    opts.warmupWindows = 1;
    const SampledSimulator sim = makeSim(opts, 4000);

    const PipelineStats full = sim.fullRun();
    const SampledEstimate est = sim.run();
    const double full_tps = full.outputTokensPerSecond();

    ASSERT_TRUE(est.ciValid);
    EXPECT_GT(est.ciTokensPerSecond, 0.0);
    EXPECT_LE(std::fabs(est.estTokensPerSecond - full_tps),
              est.ciTokensPerSecond);
    EXPECT_LE(std::fabs(est.estTokensPerSecond - full_tps) /
                  full_tps,
              0.10);
    EXPECT_LE(std::fabs(est.estOutputTokens -
                        static_cast<double>(full.outputTokens)),
              est.ciOutputTokens);
}

TEST(SampledRun, MeasuredSelectionIsStratifiedAndDeterministic)
{
    SampledSimOptions opts;
    opts.numWindows = 40;
    opts.strata = 4;
    opts.fraction = 0.3; // 3 of 10 per stratum
    const SampledSimulator sim = makeSim(opts);

    const auto sel = sim.measuredWindowIndices();
    EXPECT_EQ(sel, makeSim(opts).measuredWindowIndices());
    ASSERT_EQ(sel.size(), 12u);
    EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
    EXPECT_EQ(std::adjacent_find(sel.begin(), sel.end()), sel.end());
    for (std::uint32_t s = 0; s < sim.numStrata(); ++s) {
        const auto [first, last] = sim.stratumBounds(s);
        const auto in_stratum = std::count_if(
            sel.begin(), sel.end(), [&, lo = first, hi = last](
                                        std::uint64_t j) {
                return j >= lo && j < hi;
            });
        EXPECT_EQ(in_stratum, 3);
    }

    // A different selection seed picks different windows (with 10
    // choose 3 per stratum, a collision across all 4 is effectively
    // impossible).
    auto reseeded = opts;
    reseeded.selectionSeed = 99;
    EXPECT_NE(sel, makeSim(reseeded).measuredWindowIndices());
}

TEST(SampledRun, WindowsPartitionTheTrace)
{
    SampledSimOptions opts;
    opts.numWindows = 24;
    opts.strata = 4;
    const SampledSimulator sim = makeSim(opts, 500);

    std::uint64_t covered = 0;
    double prev_t1 = 0.0;
    for (std::uint64_t i = 0; i < sim.numWindows(); ++i) {
        const auto [t0, t1] = sim.windowBounds(i);
        if (i == 0)
            EXPECT_EQ(t0, 0.0);
        else
            EXPECT_EQ(t0, prev_t1); // shared boundary, same value
        prev_t1 = t1;
        covered += sim.trace().windowRange(t0, t1).count();
    }
    EXPECT_EQ(prev_t1, sim.trace().daySeconds());
    EXPECT_EQ(covered, sim.trace().size());

    std::uint64_t stratum_windows = 0;
    for (std::uint32_t s = 0; s < sim.numStrata(); ++s) {
        const auto [first, last] = sim.stratumBounds(s);
        EXPECT_LT(first, last);
        stratum_windows += last - first;
    }
    EXPECT_EQ(stratum_windows, sim.numWindows());
}

TEST(SampledRun, MergedAggregateMatchesManualMerge)
{
    // The estimator's merged stats are exactly the per-stratum
    // ascending merge of its per-window runs - no hidden reordering.
    SampledSimOptions opts;
    opts.numWindows = 8;
    opts.strata = 2;
    opts.fraction = 0.5;
    opts.warmupWindows = 0;
    opts.serialExecution = true;
    const SampledSimulator sim = makeSim(opts, 400);

    const auto sel = sim.measuredWindowIndices();
    ASSERT_EQ(sel.size(), 4u);
    std::vector<PipelineStats> runs;
    for (const std::uint64_t j : sel) {
        TimingCache cache(0);
        runs.push_back(sim.runWindow(j, &cache));
    }
    PipelineStats manual;
    bool started = false;
    std::size_t i = 0;
    for (std::uint32_t s = 0; s < sim.numStrata(); ++s) {
        const auto [first, last] = sim.stratumBounds(s);
        PipelineStats stratum;
        bool stratum_started = false;
        for (; i < sel.size() && sel[i] < last; ++i) {
            if (!stratum_started) {
                stratum = runs[i];
                stratum_started = true;
            } else {
                stratum.merge(runs[i]);
            }
        }
        if (!started) {
            manual = stratum;
            started = true;
        } else {
            manual.merge(stratum);
        }
    }
    expectStatsIdentical(sim.run().measured, manual);
}

} // namespace
} // namespace ouro
