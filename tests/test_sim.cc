/**
 * @file
 * Integration tests of the end-to-end simulator: building systems,
 * running workloads, the ablation ladder's monotonicity, stage-time
 * derivation, multi-wafer scaling, and the headline comparisons
 * against the baselines (the Fig. 13/14 directions).
 */

#include <gtest/gtest.h>

#include "baselines/analytic.hh"
#include "sim/stage_model.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

namespace ouro
{
namespace
{

/** Fast options: greedy mapper, fixed seed, defects on. */
OuroborosOptions
fastOpts()
{
    OuroborosOptions opts;
    opts.smartMapping = false; // avoid annealing in unit tests
    opts.seed = 3;
    return opts;
}

const Workload &
smallMix()
{
    static const Workload w = wikiText2Like(30, 1024, 5);
    return w;
}

TEST(System, Builds13BOnOneWafer)
{
    const auto sys =
        OuroborosSystem::build(llama13b(), {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    EXPECT_GT(sys->numDefects(), 0u); // Murphy model fired
    EXPECT_GT(sys->totalMappingByteHops(), 0.0);
    EXPECT_FALSE(sys->scorePool().empty());
    EXPECT_FALSE(sys->contextPool().empty());
}

TEST(System, Rejects65BOnOneWafer)
{
    EXPECT_FALSE(OuroborosSystem::build(llama65b(), {}, fastOpts())
                         .has_value());
}

TEST(System, Accepts65BOnTwoWafers)
{
    OuroborosOptions opts = fastOpts();
    opts.numWafers = 2;
    const auto sys = OuroborosSystem::build(llama65b(), {}, opts);
    ASSERT_TRUE(sys.has_value());
    EXPECT_EQ(sys->mapping(0).numBlocks() +
              sys->mapping(1).numBlocks(), 80u);
}

TEST(System, RunProducesSaneNumbers)
{
    const auto sys =
        OuroborosSystem::build(llama13b(), {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const auto rep = sys->run(smallMix());
    EXPECT_GT(rep.result.outputTokensPerSecond, 0.0);
    EXPECT_GT(rep.result.energyPerTokenTotal(), 0.0);
    EXPECT_GT(rep.result.utilization, 0.0);
    EXPECT_LE(rep.result.utilization, 1.0);
    EXPECT_EQ(rep.pipeline.outputTokens,
              smallMix().totalOutputTokens());
    // Ouroboros never touches off-chip memory.
    EXPECT_DOUBLE_EQ(rep.result.energyPerToken.get(
                             EnergyCategory::OffChipMemory), 0.0);
}

TEST(System, DeterministicPerSeed)
{
    const auto a = OuroborosSystem::build(llama13b(), {}, fastOpts());
    const auto b = OuroborosSystem::build(llama13b(), {}, fastOpts());
    ASSERT_TRUE(a && b);
    const auto ra = a->run(smallMix());
    const auto rb = b->run(smallMix());
    EXPECT_DOUBLE_EQ(ra.result.outputTokensPerSecond,
                     rb.result.outputTokensPerSecond);
    EXPECT_DOUBLE_EQ(ra.result.energyPerTokenTotal(),
                     rb.result.energyPerTokenTotal());
}

TEST(System, TgpBeatsSequenceGrained)
{
    OuroborosOptions sgp = fastOpts();
    sgp.tokenGrained = false;
    const auto tgp_sys =
        OuroborosSystem::build(llama13b(), {}, fastOpts());
    const auto sgp_sys = OuroborosSystem::build(llama13b(), {}, sgp);
    ASSERT_TRUE(tgp_sys && sgp_sys);
    const auto tgp_rep = tgp_sys->run(smallMix());
    const auto sgp_rep = sgp_sys->run(smallMix());
    EXPECT_GT(tgp_rep.result.outputTokensPerSecond,
              sgp_rep.result.outputTokensPerSecond);
}

TEST(System, DynamicKvBeatsStatic)
{
    OuroborosOptions stat = fastOpts();
    stat.dynamicKv = false;
    const auto dyn_sys =
        OuroborosSystem::build(llama13b(), {}, fastOpts());
    const auto stat_sys =
        OuroborosSystem::build(llama13b(), {}, stat);
    ASSERT_TRUE(dyn_sys && stat_sys);
    // Enough concurrent decode streams that the static worst-case
    // reservation becomes the limiter.
    const Workload stress = fixedWorkload(64, 512, 150);
    const auto dyn_rep = dyn_sys->run(stress);
    const auto stat_rep = stat_sys->run(stress);
    EXPECT_GE(dyn_rep.result.peakConcurrency,
              stat_rep.result.peakConcurrency);
    EXPECT_GT(dyn_rep.result.outputTokensPerSecond,
              stat_rep.result.outputTokensPerSecond);
}

TEST(System, CimReducesEnergy)
{
    OuroborosOptions no_cim = fastOpts();
    no_cim.useCim = false;
    const auto cim_sys =
        OuroborosSystem::build(llama13b(), {}, fastOpts());
    const auto ref_sys =
        OuroborosSystem::build(llama13b(), {}, no_cim);
    ASSERT_TRUE(cim_sys && ref_sys);
    const auto with = cim_sys->run(smallMix());
    const auto without = ref_sys->run(smallMix());
    EXPECT_LT(with.result.energyPerTokenTotal(),
              without.result.energyPerTokenTotal());
}

TEST(System, TgpWithoutCimExplodesOnChipEnergy)
{
    // The Fig. 15 red-hatched observation: token granularity without
    // CIM re-streams every weight per token.
    OuroborosOptions hatched = fastOpts();
    hatched.useCim = false;
    hatched.tokenGrained = true;
    OuroborosOptions sgp_nocim = fastOpts();
    sgp_nocim.useCim = false;
    sgp_nocim.tokenGrained = false;
    const auto a = OuroborosSystem::build(llama13b(), {}, hatched);
    const auto b = OuroborosSystem::build(llama13b(), {}, sgp_nocim);
    ASSERT_TRUE(a && b);
    const double ea = a->run(smallMix())
                          .result.energyPerToken.get(
                                  EnergyCategory::OnChipMemory);
    const double eb = b->run(smallMix())
                          .result.energyPerToken.get(
                                  EnergyCategory::OnChipMemory);
    EXPECT_GT(ea, 5.0 * eb);
}

TEST(System, WaferScaleBeatsDiscreteDies)
{
    OuroborosOptions discrete = fastOpts();
    discrete.waferScale = false;
    const auto wafer_sys =
        OuroborosSystem::build(llama13b(), {}, fastOpts());
    const auto die_sys =
        OuroborosSystem::build(llama13b(), {}, discrete);
    ASSERT_TRUE(wafer_sys && die_sys);
    const auto wafer = wafer_sys->run(smallMix());
    const auto dies = die_sys->run(smallMix());
    EXPECT_GE(wafer.result.outputTokensPerSecond,
              dies.result.outputTokensPerSecond);
    EXPECT_LE(wafer.result.energyPerToken.get(
                      EnergyCategory::Communication),
              dies.result.energyPerToken.get(
                      EnergyCategory::Communication));
}

TEST(System, BeatsDgxOnThroughputAndEnergy)
{
    // The headline direction of Figs. 13/14.
    const auto sys =
        OuroborosSystem::build(llama13b(), {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const auto ours = sys->run(smallMix());
    const auto dgx = evalAccelerator(dgxA100(), llama13b(),
                                     smallMix());
    ASSERT_TRUE(dgx.has_value());
    EXPECT_GT(ours.result.outputTokensPerSecond,
              dgx->outputTokensPerSecond);
    EXPECT_LT(ours.result.energyPerTokenTotal(),
              dgx->energyPerTokenTotal());
}

TEST(StageModel, MeasurePlacementBasics)
{
    BlockPlacement placement;
    placement.weightCores = {{0, 0}, {0, 1}, {0, 2}};
    placement.scoreCores = {{1, 1}};
    placement.contextCores = {{1, 2}};
    const WaferGeometry geom;
    const PlacementDistances dist =
        measurePlacement(placement, geom);
    EXPECT_DOUBLE_EQ(dist.adjacentHops, 1.0);
    EXPECT_DOUBLE_EQ(dist.dieCrossingFraction, 0.0);
    EXPECT_GT(dist.kvHops, 0.0);
}

TEST(StageModel, AttentionStagesScaleWithContext)
{
    const PlacementDistances dist;
    const FabricFlags flags;
    const StageTiming timing = deriveStageTiming(
            llama13b(), OuroborosParams{}, dist, flags);
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        const auto kind = static_cast<StageKind>(s);
        if (stageIsAttention(kind)) {
            EXPECT_GT(timing.perContextSeconds[s], 0.0)
                << stageKindName(kind);
        } else {
            EXPECT_DOUBLE_EQ(timing.perContextSeconds[s], 0.0)
                << stageKindName(kind);
        }
        EXPECT_GE(timing.fixedSeconds[s], 0.0);
    }
}

TEST(StageModel, NonCimSlowerAndNvlinkCostlier)
{
    const PlacementDistances dist;
    const StageTiming cim = deriveStageTiming(
            llama13b(), OuroborosParams{}, dist, {true, true});
    const StageTiming no_cim = deriveStageTiming(
            llama13b(), OuroborosParams{}, dist, {false, true});
    EXPECT_GT(no_cim.fixedSeconds[0], cim.fixedSeconds[0]);

    const EnergyLedger wafer = perTokenEnergy(
            llama13b(), OuroborosParams{}, dist, {true, true}, 512,
            0.0);
    const EnergyLedger nvlink = perTokenEnergy(
            llama13b(), OuroborosParams{}, dist, {true, false}, 512,
            0.0);
    EXPECT_GT(nvlink.get(EnergyCategory::Communication),
              wafer.get(EnergyCategory::Communication));
}

TEST(StageModel, EnergyGrowsWithContext)
{
    const PlacementDistances dist;
    const FabricFlags flags;
    const EnergyLedger small = perTokenEnergy(
            llama13b(), OuroborosParams{}, dist, flags, 64, 0.0);
    const EnergyLedger large = perTokenEnergy(
            llama13b(), OuroborosParams{}, dist, flags, 2048, 0.0);
    EXPECT_GT(large.total(), small.total());
}

TEST(System, MultiWaferFasterForBigModel)
{
    // LLaMA-65B on 2 wafers vs the DGX baseline: the §6.8 direction.
    OuroborosOptions opts = fastOpts();
    opts.numWafers = 2;
    const auto sys = OuroborosSystem::build(llama65b(), {}, opts);
    ASSERT_TRUE(sys.has_value());
    const Workload w = fixedWorkload(256, 256, 20);
    const auto ours = sys->run(w);
    AcceleratorParams dgx2 = dgxA100();
    dgx2.numDevices = 16;
    const auto gpu = evalAccelerator(dgx2, llama65b(), w);
    ASSERT_TRUE(gpu.has_value());
    EXPECT_GT(ours.result.outputTokensPerSecond,
              gpu->outputTokensPerSecond);
}

} // namespace
} // namespace ouro
