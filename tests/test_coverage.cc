/**
 * @file
 * Coverage tests for API surface the other suites touch only in
 * passing: wafer-mapping helpers, replication, engine option
 * combinations, mapper-name plumbing, workload clipping edges, and
 * cross-checks between the derived stage timing and the raw hardware
 * parameters.
 */

#include <gtest/gtest.h>

#include "mapping/wafer_mapping.hh"
#include "pipeline/engine.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

namespace ouro
{
namespace
{

TEST(WaferHelpers, EmbeddingCoreCount)
{
    // LLaMA-13B: 2 x 32000 x 5120 bytes = 327.7 MB -> 79 cores of
    // 4 MiB.
    const auto n = embeddingCoreCount(llama13b(), CoreParams{});
    EXPECT_EQ(n, ceilDiv(2ull * 32000 * 5120,
                         CoreParams{}.sramBytes()));
    EXPECT_GT(n, 70u);
    EXPECT_LT(n, 90u);
}

TEST(WaferHelpers, MapperKindNames)
{
    EXPECT_STREQ(mapperKindName(MapperKind::Greedy), "greedy");
    EXPECT_STREQ(mapperKindName(MapperKind::Annealing), "annealing");
    EXPECT_STREQ(mapperKindName(MapperKind::Summa), "summa");
    EXPECT_STREQ(mapperKindName(MapperKind::WaferLlm), "waferllm");
}

TEST(WaferHelpers, ReplicasShrinkRegions)
{
    const WaferGeometry geom;
    const ModelConfig model = bertLarge();
    WaferMappingOptions one;
    one.mapper = MapperKind::Greedy;
    WaferMappingOptions four = one;
    four.replicas = 4;
    const auto a = WaferMapping::build(model, CoreParams{}, geom,
                                       nullptr, 0, model.numBlocks,
                                       one);
    const auto b = WaferMapping::build(model, CoreParams{}, geom,
                                       nullptr, 0, model.numBlocks,
                                       four);
    ASSERT_TRUE(a && b);
    // Same weights, fewer KV cores per replica.
    EXPECT_GT(a->totalKvCores(), b->totalKvCores());
    EXPECT_EQ(a->tilesPerBlock(), b->tilesPerBlock());
}

TEST(WaferHelpers, TooManyReplicasRejected)
{
    const WaferGeometry geom;
    const ModelConfig model = llama13b();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    opts.replicas = 16; // 16 x 13B cannot share one wafer
    EXPECT_FALSE(WaferMapping::build(model, CoreParams{}, geom,
                                     nullptr, 0, model.numBlocks,
                                     opts)
                         .has_value());
}

TEST(SystemReplication, SmallModelReplicates)
{
    OuroborosOptions opts;
    opts.smartMapping = false;
    const auto bert = OuroborosSystem::build(bertLarge(), {}, opts);
    ASSERT_TRUE(bert.has_value());
    EXPECT_GT(bert->replicas(), 1u);

    const auto llama = OuroborosSystem::build(llama13b(), {}, opts);
    ASSERT_TRUE(llama.has_value());
    EXPECT_EQ(llama->replicas(), 1u);
}

TEST(SystemReplication, ThroughputScalesWithReplicas)
{
    // The replicated small model should beat a hypothetical single
    // pipeline by roughly the replica count on parallel traffic.
    OuroborosOptions opts;
    opts.smartMapping = false;
    const auto sys = OuroborosSystem::build(bertLarge(), {}, opts);
    ASSERT_TRUE(sys.has_value());
    Workload w = wikiText2Like(64, 256, 31);
    for (auto &r : w.requests)
        r.decodeLen = 1;
    const auto rep = sys->run(w);
    EXPECT_GT(rep.result.outputTokensPerSecond, 0.0);
    // All requests' outputs are counted despite sharding.
    EXPECT_GT(rep.result.outputTokensPerSecond *
                      rep.result.makespanSeconds,
              0.9 * static_cast<double>(w.totalOutputTokens()));
}

TEST(EngineOptions, StaticSequenceGrainedCombo)
{
    // The full ablation baseline: SGP + static KV together.
    const ModelConfig cfg = llama13b();
    OuroborosOptions opts;
    opts.smartMapping = false;
    opts.tokenGrained = false;
    opts.dynamicKv = false;
    const auto sys = OuroborosSystem::build(cfg, {}, opts);
    ASSERT_TRUE(sys.has_value());
    const Workload w = wikiText2Like(15, 512, 37);
    const auto rep = sys->run(w);
    EXPECT_EQ(rep.pipeline.outputTokens, w.totalOutputTokens());
}

TEST(EngineOptions, AttentionParallelismSpeedsBulk)
{
    // Bulk attention with more parallelism finishes sooner on an
    // encoder workload.
    const ModelConfig cfg = bertLarge();
    StageTiming timing;
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        timing.fixedSeconds[s] = 1e-6;
        timing.perContextSeconds[s] =
            stageIsAttention(static_cast<StageKind>(s)) ? 1e-8 : 0.0;
    }
    std::vector<KvCoreInfo> pool_a, pool_b;
    for (std::uint32_t i = 0; i < 32; ++i) {
        pool_a.push_back({{0, i}, 32, 8});
        pool_b.push_back({{1, i}, 32, 8});
    }
    Workload w = fixedWorkload(256, 1, 40);

    PipelineOptions serial;
    serial.attentionParallelism = 1.0;
    BlockKvManager kv1(cfg, pool_a, pool_b);
    const auto slow = runPipeline(w, cfg, timing, kv1, serial);

    PipelineOptions parallel;
    parallel.attentionParallelism = 16.0;
    BlockKvManager kv2(cfg, pool_a, pool_b);
    const auto fast = runPipeline(w, cfg, timing, kv2, parallel);

    EXPECT_LT(fast.makespanSeconds, slow.makespanSeconds);
}

TEST(WorkloadEdges, ClippingKeepsBounds)
{
    const Workload w = wikiText2Like(500, 128, 41);
    for (const auto &r : w.requests) {
        EXPECT_GE(r.prefillLen, 16u);
        EXPECT_LE(r.prefillLen, 128u);
        EXPECT_GE(r.decodeLen, 16u);
    }
}

TEST(WorkloadEdges, SingleRequestWorkload)
{
    const Workload w = fixedWorkload(32, 8, 1);
    EXPECT_EQ(w.totalTokens(), 40u);
    const ModelConfig cfg = llama13b();
    OuroborosOptions opts;
    opts.smartMapping = false;
    const auto sys = OuroborosSystem::build(cfg, {}, opts);
    ASSERT_TRUE(sys.has_value());
    const auto rep = sys->run(w);
    EXPECT_EQ(rep.pipeline.outputTokens, 8u);
}

TEST(TimingCrossCheck, DenseStageAtLeastOneGemv)
{
    // The derived dense-stage times can never undercut the raw
    // crossbar GEMV latency - a guard against unit slips in the
    // stage model.
    OuroborosOptions opts;
    opts.smartMapping = false;
    const auto sys = OuroborosSystem::build(llama13b(), {}, opts);
    ASSERT_TRUE(sys.has_value());
    const auto &xbar = sys->params().core.crossbar;
    const double gemv_s =
        static_cast<double>(xbar.gemvCycles(xbar.rows)) /
        xbar.clockHz;
    for (StageKind kind : {StageKind::QkvGen, StageKind::Projection,
                           StageKind::Ffn}) {
        EXPECT_GE(sys->stageTiming().tokenTime(kind, 0),
                  gemv_s * 0.999)
            << stageKindName(kind);
    }
}

TEST(TimingCrossCheck, MakespanBoundedByWorkConservation)
{
    // The pipeline can never finish faster than the bottleneck
    // stage's total dense service demand.
    const ModelConfig cfg = llama13b();
    OuroborosOptions opts;
    opts.smartMapping = false;
    const auto sys = OuroborosSystem::build(cfg, {}, opts);
    ASSERT_TRUE(sys.has_value());
    const Workload w = fixedWorkload(128, 32, 20);
    const auto rep = sys->run(w);
    double worst_dense = 0.0;
    for (StageKind kind : {StageKind::QkvGen, StageKind::Projection,
                           StageKind::Ffn}) {
        worst_dense = std::max(
                worst_dense, sys->stageTiming().tokenTime(kind, 0));
    }
    const double lower_bound =
        worst_dense * static_cast<double>(w.totalTokens());
    EXPECT_GE(rep.pipeline.makespanSeconds, lower_bound * 0.999);
}

} // namespace
} // namespace ouro
