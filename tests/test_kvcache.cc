/**
 * @file
 * Unit + property tests for the distributed dynamic KV-cache manager:
 * admission/growth/release accounting, ring placement, the K/V growth
 * policies, MRU eviction, thresholds, and failed-core handling.
 */

#include <gtest/gtest.h>

#include <set>

#include "kvcache/manager.hh"
#include "model/llm.hh"

namespace ouro
{
namespace
{

/** Small model: 4 KV heads so placements are easy to reason about. */
ModelConfig
kvModel()
{
    ModelConfig cfg;
    cfg.name = "kv-test";
    cfg.numBlocks = 2;
    cfg.hiddenDim = 512;
    cfg.numHeads = 4;
    cfg.numKvHeads = 4;
    cfg.headDim = 128;
    cfg.ffnDim = 1024;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 100;
    cfg.bytesPerParam = 1;
    cfg.attention = AttentionKind::Causal;
    cfg.maxContext = 4096;
    return cfg;
}

std::vector<KvCoreInfo>
pool(std::uint32_t cores, std::uint32_t xbars = 4,
     std::uint32_t blocks = 8, std::uint32_t base_row = 0)
{
    std::vector<KvCoreInfo> infos;
    for (std::uint32_t i = 0; i < cores; ++i)
        infos.push_back({{base_row, i}, xbars, blocks});
    return infos;
}

TEST(KvManager, CapacityAccounting)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    // 8 cores x 4 xbars x 8 blocks = 256 blocks.
    EXPECT_EQ(mgr.totalBlocks(), 256u);
    EXPECT_EQ(mgr.usedBlocks(), 0u);
    EXPECT_DOUBLE_EQ(mgr.utilization(), 0.0);
}

TEST(KvManager, AdmitAllocatesPerHead)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    const KvResult r = mgr.admit(1, 100); // 100 tokens -> 1 block/head
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.evicted.empty());
    EXPECT_TRUE(mgr.resident(1));
    // 4 heads x 1 block (K) + 4 x 1 (V) = 8 blocks.
    EXPECT_EQ(mgr.usedBlocks(), 8u);
}

TEST(KvManager, MultiBlockPrefill)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    // 300 tokens -> ceil(300/128) = 3 blocks per head per side.
    ASSERT_TRUE(mgr.admit(7, 300).ok);
    EXPECT_EQ(mgr.usedBlocks(), 4u * 3 * 2);
}

TEST(KvManager, HeadsOnDistinctCores)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    ASSERT_TRUE(mgr.admit(1, 64).ok);
    std::set<std::uint32_t> score_cores, context_cores;
    for (std::uint32_t h = 0; h < 4; ++h) {
        const HeadPlacement hp = mgr.headPlacement(1, h);
        score_cores.insert(hp.scoreCore);
        context_cores.insert(hp.contextCore);
    }
    // Fig. 12 / Section 4.4.3: distinct heads on separate cores.
    EXPECT_EQ(score_cores.size(), 4u);
    EXPECT_EQ(context_cores.size(), 4u);
}

TEST(KvManager, RingAdvancesBetweenSequences)
{
    // 8 score cores, 4 heads: sequence 2 should start where sequence
    // 1 ended (compute/write separation of Section 4.4.3).
    BlockKvManager mgr(kvModel(), pool(8), pool(8, 4, 8, 1));
    ASSERT_TRUE(mgr.admit(1, 64).ok);
    ASSERT_TRUE(mgr.admit(2, 64).ok);
    std::set<std::uint32_t> first, second;
    for (std::uint32_t h = 0; h < 4; ++h) {
        first.insert(mgr.headPlacement(1, h).scoreCore);
        second.insert(mgr.headPlacement(2, h).scoreCore);
    }
    for (const auto c : second)
        EXPECT_EQ(first.count(c), 0u)
            << "consecutive sequences share score core " << c;
}

TEST(KvManager, GrowWithinBlockIsFree)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    ASSERT_TRUE(mgr.admit(1, 64).ok); // 64 of 128 rows used
    const auto before = mgr.usedBlocks();
    EXPECT_TRUE(mgr.grow(1).ok); // token 65 fits the same block
    EXPECT_EQ(mgr.usedBlocks(), before);
}

TEST(KvManager, GrowRoomAndGrowFastMatchGrowLoop)
{
    // growFast(n) must be exactly n fast-path grow() calls: same
    // block accounting, same room left afterwards.
    BlockKvManager a(kvModel(), pool(4), pool(4, 4, 8, 1));
    BlockKvManager b(kvModel(), pool(4), pool(4, 4, 8, 1));
    ASSERT_TRUE(a.admit(1, 64).ok);
    ASSERT_TRUE(b.admit(1, 64).ok);
    EXPECT_EQ(a.growRoom(1), 64u); // 64 of 128 rows used

    for (int i = 0; i < 40; ++i)
        ASSERT_TRUE(a.grow(1).ok);
    b.growFast(1, 40);

    EXPECT_EQ(a.growRoom(1), b.growRoom(1));
    EXPECT_EQ(a.usedBlocks(), b.usedBlocks());
    EXPECT_EQ(a.growRoom(1), 24u);

    // Exhaust the room: the next grow crosses the block boundary.
    b.growFast(1, b.growRoom(1));
    EXPECT_EQ(b.growRoom(1), 0u);
    const auto before = b.usedBlocks();
    EXPECT_TRUE(b.grow(1).ok);
    EXPECT_GT(b.usedBlocks(), before);
}

TEST(KvManager, GrowAcrossBlockBoundaryAllocates)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    ASSERT_TRUE(mgr.admit(1, 128).ok); // exactly one full block
    const auto before = mgr.usedBlocks();
    EXPECT_TRUE(mgr.grow(1).ok); // token 129 -> new block per head
    EXPECT_EQ(mgr.usedBlocks(), before + 4u * 2);
}

TEST(KvManager, ReleaseReturnsBlocks)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    ASSERT_TRUE(mgr.admit(1, 200).ok);
    ASSERT_TRUE(mgr.admit(2, 200).ok);
    const auto used = mgr.usedBlocks();
    mgr.release(1);
    EXPECT_LT(mgr.usedBlocks(), used);
    mgr.release(2);
    EXPECT_EQ(mgr.usedBlocks(), 0u);
    EXPECT_FALSE(mgr.resident(1));
}

TEST(KvManager, AdmitEvictsMostRecentFirst)
{
    // Tiny pool: 4 score cores x 1 xbar x 2 blocks; 4 heads ->
    // each sequence takes 1 block per head per side = whole row.
    BlockKvManager mgr(kvModel(), pool(4, 1, 2), pool(4, 1, 2, 1),
                       128, 0.0);
    ASSERT_TRUE(mgr.admit(1, 64).ok);
    ASSERT_TRUE(mgr.admit(2, 64).ok);
    // Pool now full (2 blocks per core used by seq 1+2).
    const KvResult r = mgr.admit(3, 64);
    EXPECT_TRUE(r.ok);
    ASSERT_EQ(r.evicted.size(), 1u);
    EXPECT_EQ(r.evicted[0], 2u); // most recently scheduled
    EXPECT_TRUE(mgr.resident(1));
    EXPECT_FALSE(mgr.resident(2));
    EXPECT_TRUE(mgr.resident(3));
    EXPECT_EQ(mgr.evictionCount(), 1u);
}

TEST(KvManager, AdmitNoEvictSuspends)
{
    BlockKvManager mgr(kvModel(), pool(4, 1, 2), pool(4, 1, 2, 1),
                       128, 0.0);
    ASSERT_TRUE(mgr.admitNoEvict(1, 64));
    ASSERT_TRUE(mgr.admitNoEvict(2, 64));
    EXPECT_FALSE(mgr.admitNoEvict(3, 64));
    // Nobody was evicted.
    EXPECT_TRUE(mgr.resident(1));
    EXPECT_TRUE(mgr.resident(2));
    EXPECT_EQ(mgr.evictionCount(), 0u);
}

TEST(KvManager, GrowEvictsOthersNeverSelf)
{
    BlockKvManager mgr(kvModel(), pool(4, 1, 2), pool(4, 1, 2, 1),
                       128, 0.0);
    ASSERT_TRUE(mgr.admit(1, 128).ok); // full block each head
    ASSERT_TRUE(mgr.admit(2, 128).ok);
    // Growing 1 needs fresh blocks; pool is full; 2 is the MRU.
    const KvResult r = mgr.grow(1);
    EXPECT_TRUE(r.ok);
    ASSERT_EQ(r.evicted.size(), 1u);
    EXPECT_EQ(r.evicted[0], 2u);
    EXPECT_TRUE(mgr.resident(1));
}

TEST(KvManager, GrowFailsWhenAlone)
{
    // One core, one crossbar, one block per side: sequence 1 fills it.
    BlockKvManager mgr(kvModel(), pool(4, 1, 1), pool(4, 1, 1, 1),
                       128, 0.0);
    ASSERT_TRUE(mgr.admit(1, 128).ok);
    const KvResult r = mgr.grow(1);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.evicted.empty());
}

TEST(KvManager, VSpillCountsWhenHomeXbarFull)
{
    // Context cores have 2 crossbars x 2 blocks. A sequence growing
    // past 2 blocks/head must spill V to the second crossbar.
    BlockKvManager mgr(kvModel(), pool(4, 4, 8), pool(4, 2, 2, 1));
    ASSERT_TRUE(mgr.admit(1, 256).ok); // 2 V blocks -> home xbar full
    EXPECT_EQ(mgr.vSpills(), 0u);
    ASSERT_TRUE(mgr.grow(1).ok); // 257th token: V spills
    EXPECT_GT(mgr.vSpills(), 0u);
}

TEST(KvManager, ThresholdReservesSpace)
{
    // threshold 0.25 -> one block of each 4-block core is held in
    // reserve: a second 2-block sequence no longer fits even though
    // raw space exists.
    BlockKvManager strict(kvModel(), pool(4, 1, 4), pool(4, 1, 4, 1),
                          128, 0.25);
    ASSERT_TRUE(strict.admit(1, 256).ok); // 2 of 4 blocks per core
    EXPECT_FALSE(strict.admitNoEvict(2, 256));
    // Growth of the resident sequence still works.
    EXPECT_TRUE(strict.grow(1).ok);

    // With threshold 0 the same admission succeeds.
    BlockKvManager loose(kvModel(), pool(4, 1, 4), pool(4, 1, 4, 1),
                         128, 0.0);
    ASSERT_TRUE(loose.admit(1, 256).ok);
    EXPECT_TRUE(loose.admitNoEvict(2, 256));
}

TEST(KvManager, DropCoreReleasesVictims)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    ASSERT_TRUE(mgr.admit(1, 64).ok);
    ASSERT_TRUE(mgr.admit(2, 64).ok);
    const auto total_before = mgr.totalBlocks();
    // Drop the score core of sequence 1's head 0.
    const auto hp = mgr.headPlacement(1, 0);
    const CoreCoord coord = mgr.scoreCoord(hp.scoreCore);
    const auto lost = mgr.dropCore(coord);
    EXPECT_FALSE(lost.empty());
    for (const auto id : lost)
        EXPECT_FALSE(mgr.resident(id));
    EXPECT_LT(mgr.totalBlocks(), total_before);
    // Remaining sequences are intact and the pool still admits.
    EXPECT_TRUE(mgr.admit(10, 64).ok);
}

TEST(KvManager, UtilizationTracksLoad)
{
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    ASSERT_TRUE(mgr.admit(1, 512).ok);
    const double u1 = mgr.utilization();
    ASSERT_TRUE(mgr.admit(2, 512).ok);
    EXPECT_GT(mgr.utilization(), u1);
    mgr.release(1);
    mgr.release(2);
    EXPECT_DOUBLE_EQ(mgr.utilization(), 0.0);
}

TEST(KvHandle, EquivalentToIdApi)
{
    // Two managers, one driven by seq ids, one by handles, through
    // the same op sequence: accounting must match at every step.
    BlockKvManager by_id(kvModel(), pool(6), pool(6, 4, 8, 1));
    BlockKvManager by_handle(kvModel(), pool(6), pool(6, 4, 8, 1));

    ASSERT_TRUE(by_id.admitNoEvict(1, 100));
    const KvHandle h1 = by_handle.admitNoEvictHandle(1, 100);
    ASSERT_TRUE(h1.valid());
    ASSERT_TRUE(by_id.admitNoEvict(2, 300));
    const KvHandle h2 = by_handle.admitNoEvictHandle(2, 300);
    ASSERT_TRUE(h2.valid());
    EXPECT_EQ(by_id.usedBlocks(), by_handle.usedBlocks());
    EXPECT_EQ(by_id.growRoom(1), by_handle.growRoom(h1));
    EXPECT_EQ(by_id.growRoom(2), by_handle.growRoom(h2));

    for (int i = 0; i < 60; ++i) {
        ASSERT_TRUE(by_id.grow(1).ok);
        ASSERT_TRUE(by_handle.grow(h1).ok);
    }
    by_id.growFast(2, by_id.growRoom(2));
    by_handle.growFast(h2, by_handle.growRoom(h2));
    EXPECT_EQ(by_id.usedBlocks(), by_handle.usedBlocks());
    EXPECT_EQ(by_id.growRoom(1), by_handle.growRoom(h1));
    EXPECT_EQ(by_id.growRoom(2), by_handle.growRoom(h2));

    // handleOf resolves to the same slot the admission returned.
    EXPECT_EQ(by_handle.growRoom(by_handle.handleOf(1)),
              by_handle.growRoom(h1));

    by_id.release(1);
    by_handle.release(h1);
    EXPECT_EQ(by_id.usedBlocks(), by_handle.usedBlocks());
    EXPECT_FALSE(by_handle.resident(1));
    EXPECT_TRUE(by_handle.resident(2));
    by_id.release(2);
    by_handle.release(h2);
    EXPECT_EQ(by_handle.usedBlocks(), 0u);
}

TEST(KvHandle, SlotReuseAfterRelease)
{
    // Released slots recycle; a fresh admission gets a live handle
    // and the pool accounting stays exact.
    BlockKvManager mgr(kvModel(), pool(6), pool(6, 4, 8, 1));
    const KvHandle a = mgr.admitNoEvictHandle(1, 64);
    ASSERT_TRUE(a.valid());
    mgr.release(a);
    EXPECT_EQ(mgr.usedBlocks(), 0u);
    const KvHandle b = mgr.admitNoEvictHandle(2, 64);
    ASSERT_TRUE(b.valid());
    EXPECT_TRUE(mgr.resident(2));
    EXPECT_EQ(mgr.growRoom(b), 64u);
    mgr.release(b);
    EXPECT_EQ(mgr.numResident(), 0u);
}

TEST(KvManager, MruOrderTracksReleases)
{
    // The intrusive MRU list must keep admission order even as
    // residents leave: after releasing the most recent sequence, the
    // next eviction victim is the previous tail.
    BlockKvManager mgr(kvModel(), pool(4, 1, 3), pool(4, 1, 3, 1),
                       128, 0.0);
    ASSERT_TRUE(mgr.admit(1, 64).ok);
    ASSERT_TRUE(mgr.admit(2, 64).ok);
    ASSERT_TRUE(mgr.admit(3, 64).ok);
    mgr.release(3); // tail leaves voluntarily
    // Pool: 1 block free per core. Admitting a 3-block sequence
    // forces evictions: victim order must be 2 (new tail), then 1.
    const KvResult r = mgr.admit(9, 300);
    EXPECT_TRUE(r.ok);
    ASSERT_EQ(r.evicted.size(), 2u);
    EXPECT_EQ(r.evicted[0], 2u);
    EXPECT_EQ(r.evicted[1], 1u);
}

TEST(KvManager, DropCoreInvalidatesHandles)
{
    // Mid-run pool shrink (PR 9): a resident whose KV lived on the
    // dropped core is released, and its handle goes stale - using it
    // afterwards is a checked error, not silent corruption. Handles
    // of surviving residents stay live.
    BlockKvManager mgr(kvModel(), pool(8), pool(8, 4, 8, 1));
    const KvHandle victim = mgr.admitNoEvictHandle(1, 64);
    const KvHandle survivor = mgr.admitNoEvictHandle(2, 64);
    ASSERT_TRUE(victim.valid() && survivor.valid());
    // 8 cores, 4 heads: seq 1 occupies score cores 0-3, seq 2 cores
    // 4-7, so dropping seq 1's head-0 core only evicts seq 1.
    const auto hp = mgr.headPlacement(1, 0);
    const auto lost = mgr.dropCore(mgr.scoreCoord(hp.scoreCore));
    ASSERT_EQ(lost.size(), 1u);
    EXPECT_EQ(lost[0], 1u);
    EXPECT_TRUE(mgr.resident(2));
    EXPECT_EQ(mgr.growRoom(survivor), 64u);
    EXPECT_DEATH({ mgr.growRoom(victim); },
                 "stale or invalid KvHandle");
    EXPECT_DEATH({ mgr.grow(victim); }, "stale or invalid KvHandle");
    EXPECT_DEATH({ mgr.release(victim); },
                 "stale or invalid KvHandle");
}

TEST(KvManager, AdoptCoreGrowsCapacity)
{
    // adoptCore grafts an empty core behind the ring cursor: the
    // capacity is immediately visible in totalBlocks() and becomes
    // allocatable once the cursor wraps to it.
    BlockKvManager mgr(kvModel(), pool(4, 1, 2), pool(4, 4, 8, 1),
                       128, 0.0);
    // Score side: 4 cores x 1 xbar x 2 blocks. One 128-token seq
    // takes 1 block per head on each of the 4 cores.
    ASSERT_TRUE(mgr.admit(1, 128).ok);
    ASSERT_TRUE(mgr.admit(2, 128).ok);
    const auto total_before = mgr.totalBlocks();
    // Score ring is now full: a third admission would evict. Graft
    // one core per head (head placement probes at most one head per
    // ring pass onto a given core, so a single graft cannot host a
    // whole sequence while the rest of the ring is full).
    for (std::uint32_t i = 0; i < 4; ++i) {
        const std::uint32_t idx =
            mgr.adoptCore({{0, 100 + i}, 4, 8}, true);
        EXPECT_EQ(idx, 4u + i);
        EXPECT_EQ(mgr.scoreCoord(idx), (CoreCoord{0, 100 + i}));
    }
    EXPECT_EQ(mgr.totalBlocks(), total_before + 4u * 4u * 8u);
    // The grafted cores absorb the next admission without eviction.
    const KvResult r = mgr.admit(3, 128);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.evicted.empty());
    EXPECT_TRUE(mgr.resident(1) && mgr.resident(2));
}

TEST(KvManager, AdoptCoreReAdoptsFencedCoord)
{
    // Drop then re-adopt the same coordinate: the fenced entry stays
    // inert and the fresh entry carries the capacity.
    BlockKvManager mgr(kvModel(), pool(8), pool(8, 4, 8, 1));
    ASSERT_TRUE(mgr.admit(1, 64).ok);
    const CoreCoord coord =
        mgr.scoreCoord(mgr.headPlacement(1, 0).scoreCore);
    const auto total_before = mgr.totalBlocks();
    mgr.dropCore(coord);
    EXPECT_LT(mgr.totalBlocks(), total_before);
    mgr.adoptCore({coord, 4, 8}, true);
    EXPECT_EQ(mgr.totalBlocks(), total_before);
    // Pool still serves admissions with the re-grafted core present.
    EXPECT_TRUE(mgr.admit(2, 64).ok);
}

TEST(KvManager, AdoptCoreRejectsLiveDuplicate)
{
    // Grafting a coordinate that still holds live capacity in the
    // pool is a checked error (it would double-count blocks).
    BlockKvManager mgr(kvModel(), pool(4), pool(4, 4, 8, 1));
    EXPECT_DEATH({ mgr.adoptCore({{0, 0}, 4, 8}, true); },
                 "already live in the pool");
    EXPECT_DEATH({ mgr.adoptCore({{1, 2}, 4, 8}, false); },
                 "already live in the pool");
}

/** Property: admit/release round-trips leave zero residue. */
class KvRoundTripTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(KvRoundTripTest, NoLeakedBlocks)
{
    BlockKvManager mgr(kvModel(), pool(6), pool(6, 4, 8, 1));
    const std::uint64_t tokens = GetParam();
    ASSERT_TRUE(mgr.admit(1, tokens).ok);
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(mgr.grow(1).ok);
    mgr.release(1);
    EXPECT_EQ(mgr.usedBlocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(TokenSweep, KvRoundTripTest,
                         ::testing::Values(1, 64, 127, 128, 129, 500,
                                           1000));

} // namespace
} // namespace ouro
