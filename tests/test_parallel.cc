/**
 * @file
 * Tests for the deterministic parallel sweep runtime: pool lifecycle
 * and shutdown, iteration coverage, exception propagation, nested
 * calls, and the core guarantee the benches rely on - a seeded sweep
 * produces bit-identical results at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"

namespace ouro
{
namespace
{

TEST(ThreadPool, ConstructsAndShutsDown)
{
    for (const unsigned n : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.size(), n);
        // Destructor joins all workers; leaving scope must not hang
        // or crash even when the pool never ran a task.
    }
}

TEST(ThreadPool, DefaultSizeIsPositive)
{
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyRangeIsANoop)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(1000, [&](std::size_t i) {
            if (i == 117)
                throw std::runtime_error("boom");
            ++completed;
        });
        FAIL() << "exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
    // Iterations claimed after the throw are skipped.
    EXPECT_LT(completed.load(), 1000);
    // The pool survives and runs subsequent batches.
    std::atomic<int> after{0};
    pool.parallelFor(64, [&](std::size_t) { ++after; });
    EXPECT_EQ(after.load(), 64);
}

TEST(ParallelFor, NestedCallsDegradeToSerial)
{
    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallelFor(8, [&](std::size_t) {
        // A nested parallelFor inside a worker must not deadlock on
        // the busy pool; it runs the body inline.
        pool.parallelFor(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 64);
}

/** One deterministic sweep point: a seeded Rng walk. */
double
sweepPoint(std::uint64_t seed)
{
    Rng rng(seed);
    double acc = 0.0;
    for (int k = 0; k < 1000; ++k)
        acc += rng.uniform() - 0.5 * rng.bernoulli(0.25);
    return acc;
}

TEST(ParallelFor, SeededSweepBitIdenticalAcrossThreadCounts)
{
    const std::size_t n = 256;
    std::vector<double> serial(n), two(n), eight(n);

    ThreadPool pool1(1);
    pool1.parallelFor(n, [&](std::size_t i) {
        serial[i] = sweepPoint(1000 + i);
    });
    ThreadPool pool2(2);
    pool2.parallelFor(n, [&](std::size_t i) {
        two[i] = sweepPoint(1000 + i);
    });
    ThreadPool pool8(8);
    pool8.parallelFor(n, [&](std::size_t i) {
        eight[i] = sweepPoint(1000 + i);
    });

    // Bit-identical, not just approximately equal: per-index seeds
    // and per-index result slots make scheduling invisible.
    EXPECT_EQ(0, std::memcmp(serial.data(), two.data(),
                             n * sizeof(double)));
    EXPECT_EQ(0, std::memcmp(serial.data(), eight.data(),
                             n * sizeof(double)));
}

TEST(ParallelFor, GlobalHelperWorks)
{
    std::vector<std::uint64_t> out(512);
    parallelFor(out.size(),
                [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

} // namespace
} // namespace ouro
