/**
 * @file
 * Wafer-level RecoveryService tests: bit-identity against the
 * retained per-placement recoverCoreFailure oracle (whole failure
 * sequences, across replicas and defect maps, index and scan modes),
 * deterministic cross-block KV borrowing, replica-chain fault-domain
 * isolation, inter-block flow re-pricing, and the OuroborosSystem
 * delegation of the failure entry point.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "hw/yield.hh"
#include "mapping/remap.hh"
#include "mapping/wafer_mapping.hh"
#include "model/llm.hh"
#include "noc/mesh.hh"
#include "runtime/recovery_service.hh"
#include "sim/system.hh"

namespace ouro
{
namespace
{

ModelConfig
tinyModel(std::uint64_t blocks = 2)
{
    ModelConfig cfg;
    cfg.name = "tiny";
    cfg.numBlocks = blocks;
    cfg.hiddenDim = 1024;
    cfg.numHeads = 8;
    cfg.numKvHeads = 8;
    cfg.headDim = 128;
    cfg.ffnDim = 4096;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 1000;
    cfg.bytesPerParam = 1;
    cfg.attention = AttentionKind::Causal;
    cfg.maxContext = 2048;
    return cfg;
}

WaferMapping
buildMapping(const WaferGeometry &geom, const ModelConfig &model,
             std::uint32_t replicas, const DefectMap *defects)
{
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    opts.replicas = replicas;
    const auto mapping = WaferMapping::build(
            model, CoreParams{}, geom, defects, 0, model.numBlocks,
            opts);
    EXPECT_TRUE(mapping.has_value());
    return *mapping;
}

bool
sameResult(const RemapResult &a, const RemapResult &b)
{
    return a.moves == b.moves &&
           a.absorbedKvCore == b.absorbedKvCore &&
           a.movedBytes == b.movedBytes &&
           a.latencySeconds == b.latencySeconds &&
           a.chainLength == b.chainLength;
}

/** Pick the @p pick-th alive core of @p p (bench-style schedule). */
CoreCoord
resolveFailure(const BlockPlacement &p, std::size_t pick)
{
    if (pick < p.weightCores.size())
        return p.weightCores[pick];
    pick -= p.weightCores.size();
    if (pick < p.scoreCores.size())
        return p.scoreCores[pick];
    return p.contextCores[pick - p.scoreCores.size()];
}

std::size_t
aliveCores(const BlockPlacement &p)
{
    return p.weightCores.size() + p.scoreCores.size() +
           p.contextCores.size();
}

bool
samePlacement(const BlockPlacement &a, const BlockPlacement &b)
{
    return a.weightCores == b.weightCores &&
           a.scoreCores == b.scoreCores &&
           a.contextCores == b.contextCores;
}

TEST(RecoveryService, MatchesPerPlacementOracleFuzz)
{
    // Whole failure sequences across replicas and defect maps: the
    // service (index or scan mode, borrowing off so the oracle can
    // express every outcome) must reproduce the retained
    // per-placement recoverCoreFailure oracle bit for bit - results
    // AND final placements.
    const WaferGeometry geom(3, 3, 8, 8);
    const ModelConfig model = tinyModel();
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    for (const std::uint64_t defect_seed : {0ull, 5ull}) {
        std::optional<DefectMap> defects;
        if (defect_seed != 0) {
            Rng rng(defect_seed);
            defects.emplace(geom, YieldParams{}, rng);
        }
        const DefectMap *dmap = defects ? &*defects : nullptr;
        const WaferMapping mapping =
            buildMapping(geom, model, 2, dmap);

        for (const bool use_index : {true, false}) {
            RecoveryServiceOptions sopts;
            sopts.useSpatialIndex = use_index;
            sopts.allowKvBorrow = false;
            RecoveryService service(mapping, NocParams{}, tile_bytes,
                                    dmap, sopts);

            // Mirror oracle: raw per-placement recoveries on a cold
            // mesh (shared-table serves are pinned bit-identical to
            // cold routing, so pricing agrees too).
            const MeshNoc cold(geom, NocParams{}, dmap);
            std::vector<BlockPlacement> mirror;
            for (std::uint32_t rep = 0; rep < 2; ++rep) {
                for (std::uint64_t b = 0; b < model.numBlocks; ++b)
                    mirror.push_back(mapping.placement(b, rep));
            }

            Rng rng(91 + defect_seed);
            for (int k = 0; k < 150; ++k) {
                const std::size_t r = static_cast<std::size_t>(
                        rng.uniformInt(0, mirror.size() - 1));
                const std::size_t alive = aliveCores(mirror[r]);
                if (alive == 0)
                    continue;
                const CoreCoord failed = resolveFailure(
                        mirror[r],
                        static_cast<std::size_t>(
                                rng.uniformInt(0, alive - 1)));
                const auto got = service.handleCoreFailure(failed);
                const auto want = recoverCoreFailure(
                        mirror[r], failed, cold, tile_bytes);
                ASSERT_EQ(got.has_value(), want.has_value())
                    << "failure " << k;
                if (!got)
                    continue;
                EXPECT_TRUE(sameResult(got->remap, *want))
                    << "failure " << k;
                EXPECT_TRUE(got->borrows.empty());
                EXPECT_EQ(got->replica, r / model.numBlocks);
                EXPECT_EQ(got->block, r % model.numBlocks);
            }
            for (std::uint32_t rep = 0; rep < 2; ++rep) {
                for (std::uint64_t b = 0; b < model.numBlocks; ++b) {
                    EXPECT_TRUE(samePlacement(
                            service.placement(b, rep),
                            mirror[rep * model.numBlocks + b]));
                }
            }
            EXPECT_EQ(service.chainKvCores(0) +
                              service.chainKvCores(1),
                      [&] {
                          std::uint64_t n = 0;
                          for (const auto &p : mirror)
                              n += p.scoreCores.size() +
                                   p.contextCores.size();
                          return n;
                      }());
        }
    }
}

TEST(RecoveryService, IndexAndScanModesIdenticalWithBorrowing)
{
    // Once pools run dry the oracle cannot follow, but the index and
    // scan service modes must still agree bit for bit - on outcomes,
    // borrow records and final placements.
    const WaferGeometry geom(2, 2, 6, 6);
    const ModelConfig model = tinyModel();
    const WaferMapping mapping =
        buildMapping(geom, model, 1, nullptr);
    const Bytes tile_bytes = CoreParams{}.sramBytes();

    RecoveryServiceOptions with_index;
    RecoveryServiceOptions with_scan;
    with_scan.useSpatialIndex = false;
    RecoveryService a(mapping, NocParams{}, tile_bytes, nullptr,
                      with_index);
    RecoveryService b(mapping, NocParams{}, tile_bytes, nullptr,
                      with_scan);

    // Drive enough failures to drain pools and force borrows; the
    // schedule is resolved against service a's state (b tracks it
    // while identical, which is the assertion).
    Rng rng(17);
    std::uint64_t handled = 0;
    for (int k = 0; k < 200; ++k) {
        const std::uint64_t block = rng.uniformInt(0, 1);
        const auto &p = a.placement(block);
        const std::size_t alive = aliveCores(p);
        if (alive == 0)
            continue;
        const CoreCoord failed = resolveFailure(
                p, static_cast<std::size_t>(
                           rng.uniformInt(0, alive - 1)));
        const auto ra = a.handleCoreFailure(failed);
        const auto rb = b.handleCoreFailure(failed);
        ASSERT_EQ(ra.has_value(), rb.has_value()) << "failure " << k;
        if (!ra)
            continue;
        ++handled;
        EXPECT_TRUE(sameResult(ra->remap, rb->remap));
        EXPECT_EQ(ra->borrows, rb->borrows);
        EXPECT_EQ(ra->interBlockByteHops, rb->interBlockByteHops);
    }
    EXPECT_GT(handled, 0u);
    EXPECT_GT(a.borrowCount(), 0u)
        << "schedule never triggered a borrow - grow it";
    EXPECT_EQ(a.borrowCount(), b.borrowCount());
    EXPECT_EQ(a.recoveries(), b.recoveries());
    for (std::uint64_t blk = 0; blk < model.numBlocks; ++blk)
        EXPECT_TRUE(samePlacement(a.placement(blk), b.placement(blk)));
}

/** Drain every dedicated KV core of one block through the service. */
void
drainPool(RecoveryService &service, std::uint64_t block,
          std::uint32_t replica = 0)
{
    const auto score = service.placement(block, replica).scoreCores;
    const auto context =
        service.placement(block, replica).contextCores;
    for (const auto *pool : {&score, &context}) {
        for (const CoreCoord c : *pool) {
            const auto out = service.handleCoreFailure(c);
            ASSERT_TRUE(out.has_value());
            EXPECT_EQ(out->remap.chainLength, 1u); // KV drop
        }
    }
    EXPECT_TRUE(service.placement(block, replica).scoreCores.empty());
    EXPECT_TRUE(
            service.placement(block, replica).contextCores.empty());
}

TEST(RecoveryService, BorrowFollowsNearestBlockOrder)
{
    // 4-block chain; dry block 2 must borrow from block 1 first
    // (distance 1, lower block wins the tie), and once 1 and 3 are
    // dry too, from block 0 (distance 2).
    const WaferGeometry geom(3, 3, 8, 8);
    const ModelConfig model = tinyModel(4);
    const WaferMapping mapping =
        buildMapping(geom, model, 1, nullptr);
    RecoveryService service(mapping, NocParams{},
                            CoreParams{}.sramBytes(), nullptr);

    drainPool(service, 2);
    const CoreCoord failed1 = service.placement(2).weightCores[0];
    const auto out1 = service.handleCoreFailure(failed1);
    ASSERT_TRUE(out1.has_value());
    ASSERT_EQ(out1->borrows.size(), 1u);
    EXPECT_EQ(out1->borrows[0].fromBlock, 1u);
    EXPECT_EQ(out1->borrows[0].toBlock, 2u);
    EXPECT_EQ(out1->block, 2u);
    // The chain absorbed the lent core: the pool is dry again and
    // the lent core now holds weights in block 2.
    EXPECT_EQ(out1->remap.absorbedKvCore, out1->borrows[0].core);
    const auto &weights = service.placement(2).weightCores;
    EXPECT_NE(std::find(weights.begin(), weights.end(),
                        out1->borrows[0].core),
              weights.end());

    drainPool(service, 1);
    drainPool(service, 3);
    const CoreCoord failed2 = service.placement(2).weightCores[1];
    const auto out2 = service.handleCoreFailure(failed2);
    ASSERT_TRUE(out2.has_value());
    ASSERT_EQ(out2->borrows.size(), 1u);
    EXPECT_EQ(out2->borrows[0].fromBlock, 0u);
    EXPECT_EQ(service.borrowCount(), 2u);
}

TEST(RecoveryService, BorrowLendsDonorsNearestKvCore)
{
    // The donor lends its nearest KV core to the failure site, with
    // the oracle scan's tie-break (score pool first, lower index
    // first), and the core keeps its duty in the borrower's pool.
    const WaferGeometry geom(2, 2, 6, 6);
    const ModelConfig model = tinyModel();
    const WaferMapping mapping =
        buildMapping(geom, model, 1, nullptr);
    RecoveryService service(mapping, NocParams{},
                            CoreParams{}.sramBytes(), nullptr);

    drainPool(service, 0);
    const BlockPlacement donor_before = service.placement(1);
    const CoreCoord failed = service.placement(0).weightCores[0];

    // Expected lent core: the oracle scan over the donor's pools.
    CoreCoord expect_core;
    bool expect_score = false;
    std::uint32_t best = UINT32_MAX;
    for (const auto *pool :
         {&donor_before.scoreCores, &donor_before.contextCores}) {
        for (const CoreCoord c : *pool) {
            const auto d = geom.manhattan(failed, c);
            if (d < best) {
                best = d;
                expect_core = c;
                expect_score = pool == &donor_before.scoreCores;
            }
        }
    }

    const auto out = service.handleCoreFailure(failed);
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->borrows.size(), 1u);
    EXPECT_EQ(out->borrows[0].core, expect_core);
    EXPECT_EQ(out->borrows[0].scoreDuty, expect_score);
    // Donor lost exactly that core.
    const auto &donor_after = service.placement(1);
    EXPECT_EQ(aliveCores(donor_after) + 1, aliveCores(donor_before));
    const auto &pool = expect_score ? donor_after.scoreCores
                                    : donor_after.contextCores;
    EXPECT_EQ(std::find(pool.begin(), pool.end(), expect_core),
              pool.end());
}

TEST(RecoveryService, ChainsNeverLendAcrossReplicas)
{
    // Replica chains are independent fault domains: exhausting chain
    // 0's whole KV capacity fails its next weight recovery even
    // though chain 1 has plenty - and chain 1 is left untouched.
    const WaferGeometry geom(3, 3, 8, 8);
    const ModelConfig model = tinyModel();
    const WaferMapping mapping =
        buildMapping(geom, model, 2, nullptr);
    RecoveryService service(mapping, NocParams{},
                            CoreParams{}.sramBytes(), nullptr);
    ASSERT_EQ(service.numReplicas(), 2u);

    std::vector<BlockPlacement> chain1_before;
    for (std::uint64_t b = 0; b < model.numBlocks; ++b)
        chain1_before.push_back(service.placement(b, 1));
    const std::uint64_t chain1_kv = service.chainKvCores(1);
    ASSERT_GT(chain1_kv, 0u);

    for (std::uint64_t b = 0; b < model.numBlocks; ++b)
        drainPool(service, b, 0);
    EXPECT_EQ(service.chainKvCores(0), 0u);

    const CoreCoord failed = service.placement(0, 0).weightCores[0];
    EXPECT_FALSE(service.handleCoreFailure(failed).has_value());

    EXPECT_EQ(service.chainKvCores(1), chain1_kv);
    for (std::uint64_t b = 0; b < model.numBlocks; ++b) {
        EXPECT_TRUE(samePlacement(service.placement(b, 1),
                                  chain1_before[b]));
    }
}

TEST(RecoveryService, BorrowDisabledFailsDry)
{
    const WaferGeometry geom(2, 2, 6, 6);
    const ModelConfig model = tinyModel();
    const WaferMapping mapping =
        buildMapping(geom, model, 1, nullptr);
    RecoveryServiceOptions sopts;
    sopts.allowKvBorrow = false;
    RecoveryService service(mapping, NocParams{},
                            CoreParams{}.sramBytes(), nullptr,
                            sopts);
    drainPool(service, 0);
    const CoreCoord failed = service.placement(0).weightCores[0];
    EXPECT_FALSE(service.handleCoreFailure(failed).has_value());
    EXPECT_EQ(service.borrowCount(), 0u);
}

TEST(RecoveryService, BorrowedCoreServesLaterFailures)
{
    // Ownership follows the graft: a borrowed core that later fails
    // is handled by the borrowing block (it holds one of its weight
    // tiles by then), triggering the next borrow.
    const WaferGeometry geom(2, 2, 6, 6);
    const ModelConfig model = tinyModel();
    const WaferMapping mapping =
        buildMapping(geom, model, 1, nullptr);
    RecoveryService service(mapping, NocParams{},
                            CoreParams{}.sramBytes(), nullptr);
    drainPool(service, 0);
    const auto out1 = service.handleCoreFailure(
            service.placement(0).weightCores[0]);
    ASSERT_TRUE(out1.has_value());
    ASSERT_EQ(out1->borrows.size(), 1u);

    const auto out2 =
        service.handleCoreFailure(out1->borrows[0].core);
    ASSERT_TRUE(out2.has_value());
    EXPECT_EQ(out2->block, 0u);
    ASSERT_EQ(out2->borrows.size(), 1u);
    EXPECT_EQ(service.borrowCount(), 2u);
}

TEST(RecoveryService, DeadAndForeignCoresReturnNullopt)
{
    const WaferGeometry geom(2, 2, 6, 6);
    const ModelConfig model = tinyModel();
    const WaferMapping mapping =
        buildMapping(geom, model, 1, nullptr);
    RecoveryService service(mapping, NocParams{},
                            CoreParams{}.sramBytes(), nullptr);

    // An embedding core is outside every recovery fault domain.
    ASSERT_FALSE(mapping.embeddingCores().empty());
    EXPECT_FALSE(service
                         .handleCoreFailure(
                                 mapping.embeddingCores().front())
                         .has_value());

    // A recovered (dead) core fails over to nullopt on re-failure.
    const CoreCoord failed = service.placement(0).weightCores[3];
    ASSERT_TRUE(service.handleCoreFailure(failed).has_value());
    EXPECT_FALSE(service.handleCoreFailure(failed).has_value());
}

TEST(RecoveryService, RepricesAffectedInterBlockFlows)
{
    const WaferGeometry geom(3, 3, 8, 8);
    const ModelConfig model = tinyModel();
    const WaferMapping mapping =
        buildMapping(geom, model, 1, nullptr);
    RecoveryService service(mapping, NocParams{},
                            CoreParams{}.sramBytes(), nullptr);

    const auto out = service.handleCoreFailure(
            service.placement(0).weightCores[0]);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->flowsRoutable);
    EXPECT_GT(out->interBlockByteHops, 0.0);

    // The outcome's figure is exactly the product flow definition
    // re-accumulated over the post-recovery placements.
    TrafficAccumulator traffic(service.noc());
    ASSERT_TRUE(accumulateInterBlockFlows(
            mapping.layerSpecs(), mapping.tilesPerBlock(),
            service.placement(0).weightCores,
            service.placement(1).weightCores, service.noc(),
            traffic));
    EXPECT_EQ(out->interBlockByteHops,
              traffic.totalEffectiveByteHops());

    const auto seconds = service.chainInterBlockSeconds(0);
    ASSERT_TRUE(seconds.has_value());
    EXPECT_GT(*seconds, 0.0);
}

TEST(RecoveryService, DeferredRepricingMatchesEagerFuzz)
{
    // Whole failure sequences, eager vs deferred: recoveries and
    // borrows must be bit-identical throughout (re-pricing never
    // feeds back into recovery), deferred outcomes report no pricing,
    // and one flushRepricing() at quiescence prices exactly the
    // distinct dirty edges - bit-identical to the eager service
    // pricing the same edge list.
    const WaferGeometry geom(3, 3, 8, 8);
    const ModelConfig model = tinyModel();
    const Bytes tile_bytes = CoreParams{}.sramBytes();
    for (const std::uint64_t defect_seed : {0ull, 5ull}) {
        std::optional<DefectMap> defects;
        if (defect_seed != 0) {
            Rng rng(defect_seed);
            defects.emplace(geom, YieldParams{}, rng);
        }
        const DefectMap *dmap = defects ? &*defects : nullptr;
        const WaferMapping mapping =
            buildMapping(geom, model, 2, dmap);

        RecoveryServiceOptions eager_opts;
        RecoveryServiceOptions deferred_opts;
        deferred_opts.deferRepricing = true;
        RecoveryService eager(mapping, NocParams{}, tile_bytes, dmap,
                              eager_opts);
        RecoveryService deferred(mapping, NocParams{}, tile_bytes,
                                 dmap, deferred_opts);

        Rng rng(131 + defect_seed);
        std::uint64_t eager_edge_visits = 0;
        std::uint64_t handled = 0;
        for (int k = 0; k < 150; ++k) {
            const std::uint32_t rep = rng.uniformInt(0, 1);
            const std::uint64_t block =
                rng.uniformInt(0, model.numBlocks - 1);
            const auto &p = deferred.placement(block, rep);
            const std::size_t alive = aliveCores(p);
            if (alive == 0)
                continue;
            const CoreCoord failed = resolveFailure(
                    p, static_cast<std::size_t>(
                               rng.uniformInt(0, alive - 1)));
            const auto de = deferred.handleCoreFailure(failed);
            const auto ea = eager.handleCoreFailure(failed);
            ASSERT_EQ(de.has_value(), ea.has_value())
                << "failure " << k;
            if (!de)
                continue;
            ++handled;
            EXPECT_TRUE(sameResult(de->remap, ea->remap));
            EXPECT_EQ(de->borrows, ea->borrows);
            // Deferred outcomes carry no pricing...
            EXPECT_EQ(de->interBlockByteHops, 0.0);
            EXPECT_TRUE(de->flowsRoutable);
            // ... and the eager service flushed inside the call.
            EXPECT_TRUE(eager.dirtyEdges().empty());
            if (!ea->remap.moves.empty())
                eager_edge_visits +=
                    (ea->block > eager.firstBlock() ? 1u : 0u) +
                    (ea->block + 1 < eager.firstBlock() +
                                             eager.numBlocks()
                             ? 1u
                             : 0u);
        }
        ASSERT_GT(handled, 0u);
        EXPECT_EQ(deferred.repricedEdges(), 0u);

        // Quiescence: one flush prices the distinct dirty edges,
        // bit-identical to the eager service pricing that edge list
        // over its (identical) placements and mesh.
        const auto dirty = deferred.dirtyEdges();
        ASSERT_FALSE(dirty.empty());
        // Storms revisit chains, so deduplication must have won.
        EXPECT_LT(dirty.size(), eager_edge_visits);
        const RepriceResult flush = deferred.flushRepricing();
        const RepriceResult want = eager.priceEdges(dirty);
        EXPECT_EQ(flush.interBlockByteHops, want.interBlockByteHops);
        EXPECT_EQ(flush.flowsRoutable, want.flowsRoutable);
        EXPECT_EQ(flush.edges, dirty.size());
        EXPECT_EQ(deferred.repricedEdges(), flush.edges);

        // The dirty set drained: nothing left, a second flush is a
        // no-op.
        EXPECT_TRUE(deferred.dirtyEdges().empty());
        const RepriceResult again = deferred.flushRepricing();
        EXPECT_EQ(again.edges, 0u);
        EXPECT_EQ(again.interBlockByteHops, 0.0);

        // Final placements identical across modes.
        for (std::uint32_t rep = 0; rep < 2; ++rep) {
            for (std::uint64_t b = 0; b < model.numBlocks; ++b) {
                EXPECT_TRUE(
                        samePlacement(deferred.placement(b, rep),
                                      eager.placement(b, rep)));
            }
        }
        EXPECT_EQ(deferred.recoveries(), eager.recoveries());
        EXPECT_EQ(deferred.borrowCount(), eager.borrowCount());
    }
}

TEST(RecoveryService, SystemDelegatesFailureEntryPoint)
{
    OuroborosOptions opts;
    opts.smartMapping = false;
    auto sys = OuroborosSystem::build(llama13b(), {}, opts);
    ASSERT_TRUE(sys.has_value());

    // Per-chain accounting is exposed at system level and consistent
    // with the mapping's totals.
    std::uint64_t chain_kv = 0;
    for (std::uint32_t r = 0; r < sys->replicas(); ++r)
        chain_kv += sys->chainKvCores(r);
    EXPECT_EQ(chain_kv, sys->mapping().totalKvCores());

    std::uint64_t active = 0;
    if (sys->mapping().sharedEmbedding())
        active += sys->mapping().embeddingCores().size();
    for (std::uint32_t r = 0; r < sys->replicas(); ++r)
        active += sys->mapping().chainActiveCores(r);
    EXPECT_EQ(sys->activeCores(), active);

    // The failure entry point goes through the lazily-built service.
    const CoreCoord failed =
        sys->mapping().placement(0).weightCores[0];
    const auto out = sys->handleCoreFailure(failed);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->block, 0u);
    EXPECT_EQ(out->replica, 0u);
    EXPECT_EQ(sys->recovery().recoveries(), 1u);
    // The service (and its defect/failed-link state) persists across
    // calls: the same core is dead on re-failure.
    EXPECT_FALSE(sys->handleCoreFailure(failed).has_value());
}

} // namespace
} // namespace ouro
