/**
 * @file
 * Tests for the baseline system models: capacity gating, roofline
 * behaviour, energy-category structure, PIM attention offload, the
 * WSE-2 model, and the CIM-macro comparison.
 */

#include <gtest/gtest.h>

#include "baselines/analytic.hh"
#include "baselines/device_params.hh"
#include "model/llm.hh"
#include "workload/requests.hh"

namespace ouro
{
namespace
{

const Workload &
decodeHeavy()
{
    static const Workload w = fixedWorkload(128, 1024, 50);
    return w;
}

const Workload &
prefillHeavy()
{
    static const Workload w = fixedWorkload(2048, 64, 50);
    return w;
}

TEST(Accelerator, DgxFits13B)
{
    const auto r = evalAccelerator(dgxA100(), llama13b(),
                                   decodeHeavy());
    ASSERT_TRUE(r.has_value());
    EXPECT_GT(r->outputTokensPerSecond, 0.0);
    EXPECT_GT(r->energyPerTokenTotal(), 0.0);
}

TEST(Accelerator, SingleGpuRejects65B)
{
    AcceleratorParams one = dgxA100();
    one.numDevices = 1;
    EXPECT_FALSE(evalAccelerator(one, llama65b(), decodeHeavy())
                         .has_value());
    // The full node (320 GB) accepts it at fp16.
    EXPECT_TRUE(evalAccelerator(dgxA100(), llama65b(), decodeHeavy())
                        .has_value());
}

TEST(Accelerator, DecodeIsMemoryBound)
{
    // Per-output-token energy should be dominated by off-chip traffic
    // on decode-heavy workloads (the Fig. 1/14 structure).
    const auto r = evalAccelerator(dgxA100(), llama13b(),
                                   decodeHeavy());
    ASSERT_TRUE(r.has_value());
    const auto &e = r->energyPerToken;
    EXPECT_GT(e.get(EnergyCategory::OffChipMemory),
              e.get(EnergyCategory::Communication));
    EXPECT_GT(e.total(), e.get(EnergyCategory::Compute));
}

TEST(Accelerator, PrefillHeavyIsSlowerPerOutputToken)
{
    const auto decode = evalAccelerator(dgxA100(), llama13b(),
                                        decodeHeavy());
    const auto prefill = evalAccelerator(dgxA100(), llama13b(),
                                         prefillHeavy());
    ASSERT_TRUE(decode && prefill);
    // Few output tokens behind a big prefill: output rate collapses.
    EXPECT_LT(prefill->outputTokensPerSecond,
              decode->outputTokensPerSecond);
}

TEST(Accelerator, PimAttentionHelpsDecode)
{
    const auto plain = evalAccelerator(dgxA100(), llama13b(),
                                       decodeHeavy());
    const auto pim = evalAccelerator(attAcc(), llama13b(),
                                     decodeHeavy());
    ASSERT_TRUE(plain && pim);
    EXPECT_GT(pim->outputTokensPerSecond,
              plain->outputTokensPerSecond);
    EXPECT_LT(pim->energyPerToken.get(EnergyCategory::OffChipMemory),
              plain->energyPerToken.get(
                      EnergyCategory::OffChipMemory));
}

TEST(Accelerator, MoreDevicesMoreThroughput)
{
    AcceleratorParams small = dgxA100();
    small.numDevices = 4;
    const auto four = evalAccelerator(small, llama13b(),
                                      decodeHeavy());
    const auto eight = evalAccelerator(dgxA100(), llama13b(),
                                       decodeHeavy());
    ASSERT_TRUE(four && eight);
    EXPECT_GT(eight->outputTokensPerSecond,
              four->outputTokensPerSecond);
}

TEST(Accelerator, TpuPreset)
{
    const auto r = evalAccelerator(tpuV4x8(), llama13b(),
                                   decodeHeavy());
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->system, "TPUv4");
}

TEST(Wse, Fits13BNot65BSingleWafer)
{
    EXPECT_TRUE(evalWse(wse2(), llama13b(), decodeHeavy())
                        .has_value());
    EXPECT_FALSE(evalWse(wse2(), llama65b(), decodeHeavy())
                         .has_value());
    WseParams doubled = wse2();
    doubled.numWafers = 2;
    EXPECT_TRUE(evalWse(doubled, llama65b(), decodeHeavy())
                        .has_value());
}

TEST(Wse, NoOffChipEnergy)
{
    const auto r = evalWse(wse2(), llama13b(), decodeHeavy());
    ASSERT_TRUE(r.has_value());
    EXPECT_DOUBLE_EQ(
            r->energyPerToken.get(EnergyCategory::OffChipMemory),
            0.0);
    // Non-CIM SRAM reads dominate - CIM's target.
    EXPECT_GT(r->energyPerToken.get(EnergyCategory::OnChipMemory),
              r->energyPerToken.get(EnergyCategory::Communication));
}

TEST(CimMacro, OursAvoidsOffChip)
{
    const SystemResult ours =
        evalCimMacro(cimOuroboros(), llama13b(), decodeHeavy());
    EXPECT_DOUBLE_EQ(
            ours.energyPerToken.get(EnergyCategory::OffChipMemory),
            0.0);
}

TEST(CimMacro, BaselineMacrosStreamWeights)
{
    for (const auto &macro : {cimVlsi22(), cimIsscc22()}) {
        const SystemResult r =
            evalCimMacro(macro, llama13b(), decodeHeavy());
        EXPECT_GT(r.energyPerToken.get(
                          EnergyCategory::OffChipMemory), 0.0)
            << macro.name;
    }
}

TEST(CimMacro, OursWinsSystemLevel)
{
    // Despite lower TOPS/W, capacity wins at the system level
    // (Section 6.9's argument).
    const SystemResult ours =
        evalCimMacro(cimOuroboros(), llama13b(), decodeHeavy());
    for (const auto &macro : {cimVlsi22(), cimIsscc22()}) {
        const SystemResult other =
            evalCimMacro(macro, llama13b(), decodeHeavy());
        EXPECT_GT(ours.outputTokensPerSecond,
                  other.outputTokensPerSecond)
            << macro.name;
        EXPECT_LT(ours.energyPerTokenTotal(),
                  other.energyPerTokenTotal())
            << macro.name;
    }
}

TEST(CimMacro, LutSavesEnergy)
{
    const SystemResult plain =
        evalCimMacro(cimOuroboros(), llama13b(), decodeHeavy());
    const SystemResult lut =
        evalCimMacro(cimOuroborosLut(), llama13b(), decodeHeavy());
    EXPECT_LT(lut.energyPerTokenTotal(), plain.energyPerTokenTotal());
    EXPECT_DOUBLE_EQ(lut.outputTokensPerSecond,
                     plain.outputTokensPerSecond);
}

TEST(ScalingTax, TotalEnergyGrowsWithModelSize)
{
    const Workload w = fixedWorkload(256, 256, 20);
    double prev = 0.0;
    for (const double b : {7.0, 13.0, 32.0}) {
        AcceleratorParams params = dgxA100();
        const EnergyLedger total =
            acceleratorTotalEnergy(params, denseModel(b), w);
        EXPECT_GT(total.total(), prev);
        prev = total.total();
        // The scaling tax: data movement exceeds compute.
        EXPECT_GT(total.total(),
                  2.0 * total.get(EnergyCategory::Compute));
    }
}

} // namespace
} // namespace ouro
