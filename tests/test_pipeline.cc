/**
 * @file
 * Tests for the pipeline engines: TGP vs sequence-grained behaviour
 * under uniform and variable-length workloads, encoder blocking,
 * KV-capacity-limited decode concurrency, eviction/recompute, and
 * static-vs-dynamic KV allocation - the mechanisms behind Figs. 5,
 * 15, 16 and 17.
 */

#include <gtest/gtest.h>

#include "kvcache/manager.hh"
#include "model/llm.hh"
#include "pipeline/engine.hh"
#include "pipeline/timing.hh"
#include "pipeline/timing_cache.hh"
#include "workload/requests.hh"

namespace ouro
{
namespace
{

ModelConfig
pipeModel(AttentionKind mask = AttentionKind::Causal)
{
    ModelConfig cfg;
    cfg.name = "pipe-test";
    cfg.numBlocks = 8;
    cfg.hiddenDim = 512;
    cfg.numHeads = 4;
    cfg.numKvHeads = 4;
    cfg.headDim = 128;
    cfg.ffnDim = 1024;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 100;
    cfg.bytesPerParam = 1;
    cfg.attention = mask;
    cfg.maxContext = 4096;
    return cfg;
}

StageTiming
uniformTiming(double fixed = 1e-6, double per_ctx = 1e-9)
{
    StageTiming timing;
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        timing.fixedSeconds[s] = fixed;
        const auto kind = static_cast<StageKind>(s);
        timing.perContextSeconds[s] =
            stageIsAttention(kind) ? per_ctx : 0.0;
    }
    return timing;
}

std::vector<KvCoreInfo>
bigPool(std::uint32_t cores = 64, std::uint32_t base = 0)
{
    std::vector<KvCoreInfo> infos;
    for (std::uint32_t i = 0; i < cores; ++i)
        infos.push_back({{base, i}, 32, 8});
    return infos;
}

BlockKvManager
bigKv(const ModelConfig &cfg)
{
    return BlockKvManager(cfg, bigPool(64, 0), bigPool(64, 1));
}

TEST(StageTimingTest, TokenTimeComposition)
{
    const StageTiming t = uniformTiming(2e-6, 1e-9);
    EXPECT_DOUBLE_EQ(t.tokenTime(StageKind::Ffn, 1000), 2e-6);
    EXPECT_DOUBLE_EQ(t.tokenTime(StageKind::Score, 1000),
                     2e-6 + 1e-6);
    EXPECT_GT(t.bottleneckTime(4096), t.bottleneckTime(1));
    EXPECT_NEAR(t.totalTime(0), 6 * 2e-6, 1e-12);
}

TEST(Pipeline, ProcessesAllTokens)
{
    const ModelConfig cfg = pipeModel();
    auto kv = bigKv(cfg);
    const Workload w = fixedWorkload(64, 16, 10);
    const PipelineStats stats =
        runPipeline(w, cfg, uniformTiming(), kv);
    EXPECT_EQ(stats.outputTokens, 10u * 16);
    EXPECT_EQ(stats.tokensProcessed, 10u * (64 + 16));
    EXPECT_GT(stats.makespanSeconds, 0.0);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(Pipeline, AllSequencesReleased)
{
    const ModelConfig cfg = pipeModel();
    auto kv = bigKv(cfg);
    const Workload w = fixedWorkload(100, 20, 25);
    runPipeline(w, cfg, uniformTiming(), kv);
    EXPECT_EQ(kv.numResident(), 0u);
    EXPECT_EQ(kv.usedBlocks(), 0u);
}

TEST(Pipeline, TgpBeatsSgpOnVariableLengths)
{
    const ModelConfig cfg = pipeModel();
    const Workload w = wikiText2Like(100, 1024, 42);
    const StageTiming timing = uniformTiming();

    auto kv_tgp = bigKv(cfg);
    PipelineOptions tgp;
    tgp.kind = PipelineKind::TokenGrained;
    const auto tgp_stats = runPipeline(w, cfg, timing, kv_tgp, tgp);

    auto kv_sgp = bigKv(cfg);
    PipelineOptions sgp;
    sgp.kind = PipelineKind::SequenceGrained;
    const auto sgp_stats = runPipeline(w, cfg, timing, kv_sgp, sgp);

    EXPECT_GT(tgp_stats.outputTokensPerSecond(),
              sgp_stats.outputTokensPerSecond());
    EXPECT_LT(tgp_stats.bubbleFraction, sgp_stats.bubbleFraction);
}

TEST(Pipeline, UniformPrefillOnlyNearlyEquivalent)
{
    // With identical prefill-only requests SGP's imbalance vanishes:
    // TGP should not be dramatically better (sanity check that the
    // TGP gain really comes from variance, not an engine artefact).
    const ModelConfig cfg = pipeModel();
    const Workload w = fixedWorkload(256, 1, 50);
    const StageTiming timing = uniformTiming();

    auto kv_a = bigKv(cfg);
    PipelineOptions tgp;
    tgp.kind = PipelineKind::TokenGrained;
    const auto a = runPipeline(w, cfg, timing, kv_a, tgp);

    auto kv_b = bigKv(cfg);
    PipelineOptions sgp;
    sgp.kind = PipelineKind::SequenceGrained;
    const auto b = runPipeline(w, cfg, timing, kv_b, sgp);

    EXPECT_LT(a.makespanSeconds, b.makespanSeconds * 1.05);
    EXPECT_GT(a.makespanSeconds, b.makespanSeconds * 0.3);
}

TEST(Pipeline, DecodeThroughputScalesWithConcurrency)
{
    // Many concurrent decode streams fill the 48-deep pipeline;
    // a single stream leaves it mostly idle.
    const ModelConfig cfg = pipeModel();
    const StageTiming timing = uniformTiming();

    auto kv_many = bigKv(cfg);
    const auto many = runPipeline(fixedWorkload(16, 256, 64), cfg,
                                  timing, kv_many);
    auto kv_one = bigKv(cfg);
    const auto one = runPipeline(fixedWorkload(16, 256, 1), cfg,
                                 timing, kv_one);
    // 64 streams decode at >10x the rate of one stream.
    EXPECT_GT(many.outputTokensPerSecond(),
              10.0 * one.outputTokensPerSecond());
    EXPECT_GT(many.utilization, one.utilization);
}

TEST(Pipeline, KvCapacityLimitsDecodeThroughput)
{
    // Shrink the KV pool: fewer resident sequences -> more bubbles.
    const ModelConfig cfg = pipeModel();
    const StageTiming timing = uniformTiming();
    const Workload w = fixedWorkload(64, 128, 64);

    auto kv_big = bigKv(cfg);
    const auto big = runPipeline(w, cfg, timing, kv_big);

    // Tiny pool: 8 cores x 1 crossbar x 4 blocks per side -> only a
    // handful of sequences resident at once.
    std::vector<KvCoreInfo> tiny_score, tiny_context;
    for (std::uint32_t i = 0; i < 8; ++i) {
        tiny_score.push_back({{0, i}, 1, 4});
        tiny_context.push_back({{1, i}, 1, 4});
    }
    BlockKvManager kv_small(cfg, tiny_score, tiny_context);
    const auto small = runPipeline(w, cfg, timing, kv_small);

    EXPECT_GT(big.outputTokensPerSecond(),
              small.outputTokensPerSecond());
    EXPECT_GE(big.peakConcurrency, small.peakConcurrency);
}

TEST(Pipeline, EncoderBlockingDegradesGracefully)
{
    // Bidirectional masks force attention to sequence grain. TGP with
    // block still beats full sequence granularity (the paper's 25x is
    // on real stage times; here we just require strict ordering).
    const ModelConfig cfg = pipeModel(AttentionKind::Bidirectional);
    const StageTiming timing = uniformTiming(1e-6, 5e-9);
    const Workload w = wikiText2Like(80, 512, 7);

    auto kv_a = bigKv(cfg);
    PipelineOptions tgp;
    tgp.kind = PipelineKind::TokenGrained;
    const auto blocked = runPipeline(w, cfg, timing, kv_a, tgp);

    auto kv_b = bigKv(cfg);
    PipelineOptions sgp;
    sgp.kind = PipelineKind::SequenceGrained;
    const auto seq = runPipeline(w, cfg, timing, kv_b, sgp);

    EXPECT_GE(blocked.outputTokensPerSecond(),
              seq.outputTokensPerSecond());
}

TEST(Pipeline, CausalTgpBeatsBlockedTgp)
{
    // The same workload runs faster when the mask admits pure TGP
    // (paper: ~5% penalty for blocking on decoder-only models; the
    // direction must hold).
    const Workload w = wikiText2Like(60, 512, 11);
    const StageTiming timing = uniformTiming(1e-6, 5e-9);

    const ModelConfig causal = pipeModel(AttentionKind::Causal);
    auto kv_a = bigKv(causal);
    const auto pure = runPipeline(w, causal, timing, kv_a);

    const ModelConfig prefix = pipeModel(AttentionKind::Prefix);
    auto kv_b = bigKv(prefix);
    const auto blocked = runPipeline(w, prefix, timing, kv_b);

    EXPECT_GE(blocked.makespanSeconds,
              pure.makespanSeconds * 0.999);
}

TEST(Pipeline, StaticAllocationAdmitsFewer)
{
    const ModelConfig cfg = pipeModel();
    const StageTiming timing = uniformTiming();
    const Workload w = fixedWorkload(64, 64, 48);

    BlockKvManager kv_dyn(cfg, bigPool(8, 0), bigPool(8, 1));
    PipelineOptions dyn;
    const auto dynamic = runPipeline(w, cfg, timing, kv_dyn, dyn);

    BlockKvManager kv_static(cfg, bigPool(8, 0), bigPool(8, 1));
    PipelineOptions stat;
    stat.staticKvAllocation = true;
    stat.maxContext = 4096;
    const auto fixed = runPipeline(w, cfg, timing, kv_static, stat);

    EXPECT_GT(dynamic.peakConcurrency, fixed.peakConcurrency);
    EXPECT_GT(dynamic.outputTokensPerSecond(),
              fixed.outputTokensPerSecond());
}

TEST(Pipeline, EvictionCausesRecompute)
{
    // Pool sized so growth collides: long decodes in a small pool.
    const ModelConfig cfg = pipeModel();
    const StageTiming timing = uniformTiming();
    BlockKvManager kv(cfg, bigPool(2, 0), bigPool(2, 1));
    const Workload w = fixedWorkload(512, 1024, 16);
    const auto stats = runPipeline(w, cfg, timing, kv, {});
    EXPECT_EQ(stats.outputTokens, 16u * 1024);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.recomputedTokens, 0u);
    EXPECT_EQ(kv.numResident(), 0u);
}

TEST(Pipeline, UtilizationBounded)
{
    const ModelConfig cfg = pipeModel();
    auto kv = bigKv(cfg);
    const auto stats = runPipeline(wikiText2Like(50, 512, 3), cfg,
                                   uniformTiming(), kv);
    EXPECT_GE(stats.utilization, 0.0);
    EXPECT_LE(stats.utilization, 1.0);
    EXPECT_NEAR(stats.utilization + stats.bubbleFraction, 1.0, 1e-9);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    const ModelConfig cfg = pipeModel();
    const Workload w = wikiText2Like(40, 512, 5);
    auto kv1 = bigKv(cfg);
    auto kv2 = bigKv(cfg);
    const auto a = runPipeline(w, cfg, uniformTiming(), kv1);
    const auto b = runPipeline(w, cfg, uniformTiming(), kv2);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.evictions, b.evictions);
}

void
expectItemsIdentical(const ItemTiming &a, const ItemTiming &b)
{
    for (unsigned s = 0; s < kStagesPerBlock; ++s)
        EXPECT_DOUBLE_EQ(a.stage[s], b.stage[s]) << "stage " << s;
    EXPECT_DOUBLE_EQ(a.total, b.total);
    EXPECT_EQ(a.context, b.context);
    EXPECT_EQ(a.tokens, b.tokens);
}

TEST(TimingCache, TokenHitEqualsFreshComputation)
{
    const StageTiming t = uniformTiming(2e-6, 3e-9);
    TimingCache cache;
    const ItemTiming first = cache.token(t, 777); // miss: built fresh
    EXPECT_EQ(cache.misses(), 1u);
    expectItemsIdentical(first, freshTokenItem(t, 777));

    const ItemTiming &again = cache.token(t, 777); // hit
    EXPECT_EQ(cache.hits(), 1u);
    expectItemsIdentical(again, freshTokenItem(t, 777));
}

TEST(TimingCache, SequenceHitEqualsFreshComputation)
{
    const StageTiming t = uniformTiming(1e-6, 5e-9);
    TimingCache cache;
    const auto mask = AttentionKind::Causal;
    const ItemTiming &item = cache.sequence(t, mask, 333, 16.0);
    expectItemsIdentical(item,
                         freshSequenceItem(t, mask, 333, 16.0));
    cache.sequence(t, mask, 333, 16.0);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(TimingCache, BlockedHitEqualsFreshComputation)
{
    const StageTiming t = uniformTiming(1e-6, 5e-9);
    TimingCache cache;
    const auto mask = AttentionKind::Bidirectional;
    // Deferred tokens carry zero attention positions.
    expectItemsIdentical(cache.blockedToken(t, mask, 100, false, 4.0),
                         freshBlockedTokenItem(t, 0.0));
    // The final token accumulates the whole prefix's positions.
    const double positions =
        deferredAttentionPositions(mask, 100) / 4.0;
    expectItemsIdentical(cache.blockedToken(t, mask, 100, true, 4.0),
                         freshBlockedTokenItem(t, positions));
}

TEST(TimingCache, ExplicitInvalidateFlushes)
{
    const StageTiming t = uniformTiming();
    TimingCache cache;
    cache.token(t, 1);
    cache.token(t, 2);
    EXPECT_EQ(cache.size(), 2u);
    cache.invalidate();
    EXPECT_EQ(cache.size(), 0u);
    cache.token(t, 1); // miss again after the flush
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(TimingCache, InvalidatesWhenTimingRederived)
{
    // A remap rederives StageTiming with new coefficients; a shared
    // cache must flush itself (fingerprint check) rather than serve
    // pre-remap entries.
    const StageTiming before = uniformTiming(1e-6, 1e-9);
    const StageTiming after = uniformTiming(3e-6, 2e-9);
    ASSERT_NE(stageTimingFingerprint(before),
              stageTimingFingerprint(after));

    TimingCache cache;
    cache.token(before, 64);
    const ItemTiming &remapped = cache.token(after, 64);
    expectItemsIdentical(remapped, freshTokenItem(after, 64));
    EXPECT_EQ(cache.hits(), 0u); // the stale entry was dropped
}

TEST(TimingCache, EngineSharedCacheMatchesPrivateCache)
{
    const ModelConfig cfg = pipeModel();
    const Workload w = wikiText2Like(40, 512, 5);
    const StageTiming timing = uniformTiming();

    auto kv1 = bigKv(cfg);
    const PipelineStats plain =
        runPipeline(w, cfg, timing, kv1, {});

    TimingCache shared;
    PipelineOptions opts;
    opts.timingCache = &shared;
    auto kv2 = bigKv(cfg);
    const PipelineStats cached =
        runPipeline(w, cfg, timing, kv2, opts);
    // Second run on the warmed cache: all items served from memo.
    auto kv3 = bigKv(cfg);
    const PipelineStats warm =
        runPipeline(w, cfg, timing, kv3, opts);

    EXPECT_DOUBLE_EQ(plain.makespanSeconds, cached.makespanSeconds);
    EXPECT_DOUBLE_EQ(plain.makespanSeconds, warm.makespanSeconds);
    EXPECT_EQ(plain.outputTokens, warm.outputTokens);
    EXPECT_DOUBLE_EQ(plain.utilization, warm.utilization);
    EXPECT_EQ(warm.timingCacheMisses, 0u); // fully warm
    EXPECT_GT(cached.timingCacheHits, 0u);
}

TEST(TimingCache, EngineReportsReuse)
{
    // Concurrent same-length decodes revisit the same contexts: the
    // run must be dominated by cache hits, not rebuilds.
    const ModelConfig cfg = pipeModel();
    auto kv = bigKv(cfg);
    const auto stats = runPipeline(fixedWorkload(16, 256, 64), cfg,
                                   uniformTiming(), kv);
    EXPECT_GT(stats.timingCacheHits, stats.timingCacheMisses);
}

TEST(Pipeline, SingleStreamDecodeBatchingPreservesCounts)
{
    // One resident sequence with a long decode exercises the
    // batched (single-heap-event) fast path, including KV block
    // boundaries every tokens_per_block steps.
    const ModelConfig cfg = pipeModel();
    auto kv = bigKv(cfg);
    const Workload w = fixedWorkload(32, 5000, 1);
    const auto stats = runPipeline(w, cfg, uniformTiming(), kv);
    EXPECT_EQ(stats.outputTokens, 5000u);
    EXPECT_EQ(stats.tokensProcessed, 32u + 5000u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(kv.numResident(), 0u);
    EXPECT_EQ(kv.usedBlocks(), 0u);
}

void
expectStatsIdentical(const PipelineStats &a, const PipelineStats &b)
{
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.tokensProcessed, b.tokensProcessed);
    EXPECT_EQ(a.outputTokens, b.outputTokens);
    EXPECT_DOUBLE_EQ(a.bottleneckBusySeconds,
                     b.bottleneckBusySeconds);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
    EXPECT_DOUBLE_EQ(a.bubbleFraction, b.bubbleFraction);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.recomputedTokens, b.recomputedTokens);
    EXPECT_EQ(a.skippedRequests, b.skippedRequests);
    EXPECT_DOUBLE_EQ(a.peakConcurrency, b.peakConcurrency);
    EXPECT_DOUBLE_EQ(a.avgContext, b.avgContext);
    EXPECT_EQ(a.timingCacheHits, b.timingCacheHits);
    EXPECT_EQ(a.timingCacheMisses, b.timingCacheMisses);
    EXPECT_EQ(a.itemsProcessed, b.itemsProcessed);
    EXPECT_DOUBLE_EQ(a.contextTokensSum, b.contextTokensSum);
    EXPECT_DOUBLE_EQ(a.stageBusySumSeconds, b.stageBusySumSeconds);
    // Latency samples must agree element for element, ORDER
    // included: completion-processing order is part of the
    // fast-path/slow-path bit-identity contract.
    EXPECT_EQ(a.ttftSamples, b.ttftSamples);
    EXPECT_EQ(a.interTokenSamples, b.interTokenSamples);
}

/** Run a workload with the cohort fast path force-disabled and
 *  enabled; every PipelineStats field must agree exactly. */
void
expectCohortBitIdentical(const ModelConfig &cfg, const Workload &w,
                         const StageTiming &timing,
                         std::vector<KvCoreInfo> score,
                         std::vector<KvCoreInfo> context,
                         PipelineOptions base = {})
{
    BlockKvManager kv_slow(cfg, score, context);
    PipelineOptions slow = base;
    slow.cohortFastPath = false;
    const PipelineStats a = runPipeline(w, cfg, timing, kv_slow, slow);

    BlockKvManager kv_fast(cfg, score, context);
    PipelineOptions fast = base;
    fast.cohortFastPath = true;
    const PipelineStats b = runPipeline(w, cfg, timing, kv_fast, fast);

    expectStatsIdentical(a, b);
    EXPECT_EQ(kv_slow.usedBlocks(), kv_fast.usedBlocks());
    EXPECT_EQ(kv_slow.numResident(), kv_fast.numResident());
}

TEST(CohortFastPath, BitIdenticalDecodeHeavy)
{
    // The flagship regime: many concurrent sequences in steady
    // decode, crossing KV block boundaries (decode > 128) inside
    // the ring.
    const ModelConfig cfg = pipeModel();
    expectCohortBitIdentical(cfg, fixedWorkload(16, 300, 24),
                             uniformTiming(), bigPool(64, 0),
                             bigPool(64, 1));
}

TEST(CohortFastPath, BitIdenticalMixedLengths)
{
    // Variable lengths stagger block boundaries and completions, so
    // the ring is entered and exited many times mid-run.
    const ModelConfig cfg = pipeModel();
    expectCohortBitIdentical(cfg, wikiText2Like(48, 512, 3),
                             uniformTiming(), bigPool(64, 0),
                             bigPool(64, 1));
}

TEST(CohortFastPath, BitIdenticalUnderEvictions)
{
    // Tight pool: growth collides, sequences are evicted from inside
    // the cohort, re-queued and re-admitted. The fast path must bail
    // out and replay the slow path exactly.
    const ModelConfig cfg = pipeModel();
    const Workload w = fixedWorkload(512, 1024, 16);

    BlockKvManager kv_slow(cfg, bigPool(2, 0), bigPool(2, 1));
    PipelineOptions slow;
    slow.cohortFastPath = false;
    const PipelineStats a =
        runPipeline(w, cfg, uniformTiming(), kv_slow, slow);
    EXPECT_GT(a.evictions, 0u); // the scenario must actually evict

    expectCohortBitIdentical(cfg, w, uniformTiming(), bigPool(2, 0),
                             bigPool(2, 1));
}

TEST(CohortFastPath, BitIdenticalStaticAllocation)
{
    const ModelConfig cfg = pipeModel();
    PipelineOptions base;
    base.staticKvAllocation = true;
    base.maxContext = 512;
    expectCohortBitIdentical(cfg, fixedWorkload(32, 200, 16),
                             uniformTiming(), bigPool(64, 0),
                             bigPool(64, 1), base);
}

TEST(CohortFastPath, BitIdenticalSequenceGrained)
{
    const ModelConfig cfg = pipeModel();
    PipelineOptions base;
    base.kind = PipelineKind::SequenceGrained;
    expectCohortBitIdentical(cfg, wikiText2Like(32, 384, 9),
                             uniformTiming(), bigPool(64, 0),
                             bigPool(64, 1), base);
}

TEST(Pipeline, SkippedRequestsCounted)
{
    // One request larger than the whole pool must be dropped AND
    // counted; the rest of the workload still completes.
    const ModelConfig cfg = pipeModel();
    std::vector<KvCoreInfo> tiny_score, tiny_context;
    for (std::uint32_t i = 0; i < 4; ++i) {
        tiny_score.push_back({{0, i}, 1, 2});
        tiny_context.push_back({{1, i}, 1, 2});
    }
    BlockKvManager kv(cfg, tiny_score, tiny_context);

    Workload w;
    w.name = "oversize";
    w.requests.push_back({0, 64, 16});
    w.requests.push_back({1, 4096, 16}); // 32 blocks/head: never fits
    w.requests.push_back({2, 64, 16});
    const PipelineStats stats =
        runPipeline(w, cfg, uniformTiming(), kv);
    EXPECT_EQ(stats.skippedRequests, 1u);
    EXPECT_EQ(stats.outputTokens, 2u * 16);
    EXPECT_EQ(kv.numResident(), 0u);
}

TEST(Pipeline, EvictionAccountingExact)
{
    // Regression for the eviction-requeue path: a stale heap entry
    // resurrected after re-admission would double-process events and
    // break the exact token balance
    //   tokensProcessed == sum(prefill + decode) + recomputedTokens
    //   outputTokens    == sum(decode).
    const ModelConfig cfg = pipeModel();
    BlockKvManager kv(cfg, bigPool(2, 0), bigPool(2, 1));
    const Workload w = fixedWorkload(512, 1024, 16);
    const PipelineStats stats =
        runPipeline(w, cfg, uniformTiming(), kv, {});
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_EQ(stats.outputTokens, 16u * 1024);
    EXPECT_EQ(stats.tokensProcessed,
              16u * (512 + 1024) + stats.recomputedTokens);
    EXPECT_EQ(kv.numResident(), 0u);
    EXPECT_EQ(kv.usedBlocks(), 0u);
}

TEST(WorkloadGen, FixedWorkloadShape)
{
    const Workload w = fixedWorkload(128, 2048, 1000);
    EXPECT_EQ(w.requests.size(), 1000u);
    EXPECT_EQ(w.totalOutputTokens(), 1000u * 2048);
    EXPECT_EQ(w.maxSequenceLength(), 128u + 2048);
}

TEST(WorkloadGen, WikiTextVariance)
{
    const Workload w = wikiText2Like(1000, 2048, 1);
    EXPECT_EQ(w.requests.size(), 1000u);
    std::uint64_t min_lp = UINT64_MAX, max_lp = 0;
    for (const auto &r : w.requests) {
        min_lp = std::min(min_lp, r.prefillLen);
        max_lp = std::max(max_lp, r.prefillLen);
        EXPECT_GE(r.prefillLen, 16u);
        EXPECT_LE(r.prefillLen, 2048u);
        EXPECT_GE(r.decodeLen, 16u);
    }
    // The whole point: substantial length variance.
    EXPECT_GT(max_lp, 4 * min_lp);
}

TEST(WorkloadGen, Deterministic)
{
    const Workload a = wikiText2Like(100, 1024, 9);
    const Workload b = wikiText2Like(100, 1024, 9);
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].prefillLen, b.requests[i].prefillLen);
        EXPECT_EQ(a.requests[i].decodeLen, b.requests[i].decodeLen);
    }
}

TEST(WorkloadGen, PaperWorkloadsComplete)
{
    const auto all = paperWorkloads(10);
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name, "WikiText-2");
    EXPECT_EQ(all[1].name, "LP=128,LD=2048");
    EXPECT_EQ(all[2].name, "LP=2048,LD=128");
    EXPECT_EQ(all[3].name, "LP=2048,LD=2048");
}

TEST(LatencySamples, OnePerCompletedRequest)
{
    // Every completed request with >= 1 decode token contributes one
    // TTFT sample; inter-token spacing needs >= 2 decode tokens.
    const ModelConfig cfg = pipeModel();
    auto kv = bigKv(cfg);
    const Workload w = fixedWorkload(64, 16, 10);
    const PipelineStats stats =
        runPipeline(w, cfg, uniformTiming(), kv);
    ASSERT_EQ(stats.ttftSamples.size(), 10u);
    ASSERT_EQ(stats.interTokenSamples.size(), 10u);
    for (const double t : stats.ttftSamples) {
        EXPECT_GT(t, 0.0);
        EXPECT_LE(t, stats.makespanSeconds);
    }
    for (const double t : stats.interTokenSamples) {
        EXPECT_GT(t, 0.0);
        // Mean decode spacing cannot beat the bottleneck interval
        // of a context-free token.
        EXPECT_GE(t, uniformTiming().bottleneckTime(0));
    }
}

TEST(LatencySamples, SingleTokenDecodeHasNoSpacingSample)
{
    const ModelConfig cfg = pipeModel();
    auto kv = bigKv(cfg);
    const Workload w = fixedWorkload(64, 1, 8);
    const PipelineStats stats =
        runPipeline(w, cfg, uniformTiming(), kv);
    EXPECT_EQ(stats.ttftSamples.size(), 8u);
    EXPECT_TRUE(stats.interTokenSamples.empty());
}

TEST(LatencySamples, QueuedRequestsSeeHigherTtft)
{
    // A pool too small for the batch staggers admission: requests
    // admitted (or re-admitted after eviction) late in the run see
    // their first decode token far later than the first admitted
    // cohort. TTFT measures from RUN start, so the largest sample
    // must clearly exceed the smallest.
    const ModelConfig cfg = pipeModel();
    BlockKvManager kv(cfg, bigPool(2, 0), bigPool(2, 1));
    const Workload w = fixedWorkload(512, 1024, 16);
    const PipelineStats stats =
        runPipeline(w, cfg, uniformTiming(), kv);
    EXPECT_GT(stats.evictions, 0u); // contention must be real
    ASSERT_EQ(stats.ttftSamples.size(), 16u);
    const auto [lo, hi] = std::minmax_element(
        stats.ttftSamples.begin(), stats.ttftSamples.end());
    EXPECT_GT(*hi, 2.0 * *lo);
}

TEST(StatsMerge, IdleBoundaryEqualsSequentialRuns)
{
    // merge() is DEFINED as back-to-back runs with a drained
    // boundary: running two workloads through fresh managers and
    // merging must reproduce each counter exactly, and the derived
    // means must be the recomputed pooled values.
    const ModelConfig cfg = pipeModel();
    const StageTiming timing = uniformTiming();
    const Workload wa = wikiText2Like(30, 512, 4);
    const Workload wb = fixedWorkload(128, 48, 20);

    auto kv_a = bigKv(cfg);
    const PipelineStats a = runPipeline(wa, cfg, timing, kv_a);
    auto kv_b = bigKv(cfg);
    const PipelineStats b = runPipeline(wb, cfg, timing, kv_b);

    PipelineStats merged = a;
    merged.merge(b);

    EXPECT_DOUBLE_EQ(merged.makespanSeconds,
                     a.makespanSeconds + b.makespanSeconds);
    EXPECT_EQ(merged.tokensProcessed,
              a.tokensProcessed + b.tokensProcessed);
    EXPECT_EQ(merged.outputTokens, a.outputTokens + b.outputTokens);
    EXPECT_DOUBLE_EQ(merged.bottleneckBusySeconds,
                     a.bottleneckBusySeconds +
                         b.bottleneckBusySeconds);
    EXPECT_EQ(merged.evictions, a.evictions + b.evictions);
    EXPECT_EQ(merged.recomputedTokens,
              a.recomputedTokens + b.recomputedTokens);
    EXPECT_EQ(merged.skippedRequests,
              a.skippedRequests + b.skippedRequests);
    EXPECT_EQ(merged.itemsProcessed,
              a.itemsProcessed + b.itemsProcessed);
    EXPECT_DOUBLE_EQ(merged.contextTokensSum,
                     a.contextTokensSum + b.contextTokensSum);
    EXPECT_DOUBLE_EQ(merged.stageBusySumSeconds,
                     a.stageBusySumSeconds + b.stageBusySumSeconds);
    EXPECT_DOUBLE_EQ(merged.peakConcurrency,
                     std::max(a.peakConcurrency,
                              b.peakConcurrency));
    EXPECT_EQ(merged.timingCacheHits,
              a.timingCacheHits + b.timingCacheHits);
    EXPECT_EQ(merged.timingCacheMisses,
              a.timingCacheMisses + b.timingCacheMisses);

    // Derived means are recomputed from the pooled raw aggregates,
    // not averaged: avgContext weights each run by its item count.
    EXPECT_DOUBLE_EQ(merged.avgContext,
                     merged.contextTokensSum /
                         static_cast<double>(merged.itemsProcessed));
    EXPECT_DOUBLE_EQ(merged.utilization,
                     std::min(merged.stageBusySumSeconds /
                                  (kStagesPerBlock *
                                   merged.makespanSeconds),
                              1.0));
    EXPECT_DOUBLE_EQ(merged.bubbleFraction,
                     1.0 - merged.utilization);

    // Sample vectors concatenate in order.
    ASSERT_EQ(merged.ttftSamples.size(),
              a.ttftSamples.size() + b.ttftSamples.size());
    EXPECT_EQ(merged.ttftSamples.front(), a.ttftSamples.front());
    EXPECT_EQ(merged.ttftSamples.back(), b.ttftSamples.back());

    // Token-conservation fields agree with a single monolithic run
    // of the concatenated workload in this no-eviction regime (the
    // engine would overlap the two windows in time, so time-derived
    // fields legitimately differ - merge() models the DRAINED
    // boundary, which is how the sampled simulator runs windows).
    Workload both = wa;
    for (Request r : wb.requests) {
        r.id += 1000; // keep ids unique across the two batches
        both.requests.push_back(r);
    }
    auto kv_c = bigKv(cfg);
    const PipelineStats mono =
        runPipeline(both, cfg, timing, kv_c);
    EXPECT_EQ(mono.outputTokens, merged.outputTokens);
    EXPECT_EQ(mono.skippedRequests, merged.skippedRequests);
    EXPECT_EQ(mono.ttftSamples.size(), merged.ttftSamples.size());
}

TEST(StatsMerge, MergeWithEmptyRunIsIdentityOnCounters)
{
    const ModelConfig cfg = pipeModel();
    auto kv = bigKv(cfg);
    const PipelineStats a =
        runPipeline(fixedWorkload(64, 16, 10), cfg, uniformTiming(),
                    kv);
    PipelineStats merged = a;
    merged.merge(PipelineStats{});
    expectStatsIdentical(merged, a);
}

TEST(StatsMerge, ConcurrentAlignedBinsSumPreserved)
{
    // mergeConcurrent() is DEFINED as side-by-side runs on a shared
    // clock: aligned histogram bins sum elementwise, the makespan is
    // the slowest run's, and token conservation holds - the summed
    // bins still account for every output token of both runs.
    const ModelConfig cfg = pipeModel();
    const StageTiming timing = uniformTiming();
    PipelineOptions popts;
    popts.throughputBinSeconds = 1e-4;

    auto kv_a = bigKv(cfg);
    const PipelineStats a = runPipeline(wikiText2Like(30, 512, 4),
                                        cfg, timing, kv_a, popts);
    auto kv_b = bigKv(cfg);
    const PipelineStats b = runPipeline(fixedWorkload(128, 48, 20),
                                        cfg, timing, kv_b, popts);
    ASSERT_EQ(a.throughputBinSeconds, popts.throughputBinSeconds);
    ASSERT_FALSE(a.outputTokenBins.empty());
    ASSERT_FALSE(b.outputTokenBins.empty());

    PipelineStats merged = a;
    merged.mergeConcurrent(b);

    // Elementwise sum over the longer histogram's length.
    ASSERT_EQ(merged.outputTokenBins.size(),
              std::max(a.outputTokenBins.size(),
                       b.outputTokenBins.size()));
    for (std::size_t i = 0; i < merged.outputTokenBins.size(); ++i) {
        const std::uint64_t va =
            i < a.outputTokenBins.size() ? a.outputTokenBins[i] : 0;
        const std::uint64_t vb =
            i < b.outputTokenBins.size() ? b.outputTokenBins[i] : 0;
        EXPECT_EQ(merged.outputTokenBins[i], va + vb) << "bin " << i;
    }

    // Sum preservation: bins == outputTokens before AND after.
    const auto bin_sum = [](const PipelineStats &s) {
        std::uint64_t n = 0;
        for (const std::uint64_t v : s.outputTokenBins)
            n += v;
        return n;
    };
    EXPECT_EQ(bin_sum(a), a.outputTokens);
    EXPECT_EQ(bin_sum(b), b.outputTokens);
    EXPECT_EQ(bin_sum(merged), merged.outputTokens);
    EXPECT_EQ(merged.outputTokens, a.outputTokens + b.outputTokens);

    // Side-by-side semantics on the other fields.
    EXPECT_DOUBLE_EQ(merged.makespanSeconds,
                     std::max(a.makespanSeconds, b.makespanSeconds));
    EXPECT_EQ(merged.throughputBinSeconds,
              popts.throughputBinSeconds);
    EXPECT_EQ(merged.tokensProcessed,
              a.tokensProcessed + b.tokensProcessed);
    EXPECT_DOUBLE_EQ(merged.peakConcurrency,
                     a.peakConcurrency + b.peakConcurrency);
    EXPECT_DOUBLE_EQ(merged.bottleneckBusySeconds,
                     std::max(a.bottleneckBusySeconds,
                              b.bottleneckBusySeconds));
    EXPECT_EQ(merged.itemsProcessed,
              a.itemsProcessed + b.itemsProcessed);
    EXPECT_DOUBLE_EQ(merged.avgContext,
                     merged.contextTokensSum /
                         static_cast<double>(merged.itemsProcessed));
    EXPECT_DOUBLE_EQ(merged.utilization,
                     std::min(merged.stageBusySumSeconds /
                                  (kStagesPerBlock *
                                   merged.makespanSeconds),
                              1.0));
    ASSERT_EQ(merged.ttftSamples.size(),
              a.ttftSamples.size() + b.ttftSamples.size());
}

TEST(StatsMerge, ConcurrentWithDefaultStatsAdoptsBinWidth)
{
    const ModelConfig cfg = pipeModel();
    PipelineOptions popts;
    popts.throughputBinSeconds = 1e-4;
    auto kv = bigKv(cfg);
    const PipelineStats a = runPipeline(fixedWorkload(64, 16, 10),
                                        cfg, uniformTiming(), kv,
                                        popts);
    // Folding into a default-constructed accumulator (the fleet
    // fold's seed case) adopts the run's bins and width verbatim.
    PipelineStats acc;
    acc.mergeConcurrent(a);
    EXPECT_EQ(acc.throughputBinSeconds, a.throughputBinSeconds);
    EXPECT_EQ(acc.outputTokenBins, a.outputTokenBins);
    EXPECT_EQ(acc.outputTokens, a.outputTokens);
}

TEST(StatsMerge, ConcurrentMismatchedBinWidthDies)
{
    // The aligned merge is only defined over one shared bin width;
    // mixing widths must die loudly, not mis-sum histograms.
    PipelineStats a;
    a.throughputBinSeconds = 0.5;
    a.outputTokenBins = {1, 2};
    PipelineStats b;
    b.throughputBinSeconds = 0.25;
    b.outputTokenBins = {3};
    EXPECT_DEATH({ a.mergeConcurrent(b); },
                 "equal throughputBinSeconds");
}

} // namespace
} // namespace ouro
