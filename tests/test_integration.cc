/**
 * @file
 * Cross-module integration and property tests: whole-system
 * invariants that single-module unit tests cannot see - placement
 * routability, KV conservation through full pipeline runs, ablation
 * monotonicity, fault injection end-to-end, and parameterised sweeps
 * over the model presets.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/analytic.hh"
#include "kvcache/manager.hh"
#include "mapping/remap.hh"
#include "noc/mesh.hh"
#include "pipeline/engine.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

namespace ouro
{
namespace
{

OuroborosOptions
fastOpts(std::uint64_t seed = 11)
{
    OuroborosOptions opts;
    opts.smartMapping = false;
    opts.seed = seed;
    return opts;
}

TEST(Integration, PlacementsAreRoutable)
{
    // Every flow the stage model will price must be routable on the
    // defected mesh: weight->weight neighbours and weight->KV pairs.
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const WaferGeometry geom;
    const MeshNoc noc(geom, NocParams{});
    const auto &placement = sys->mapping(0).placement(0);
    for (std::size_t i = 1; i < placement.weightCores.size(); ++i) {
        const auto path = noc.route(placement.weightCores[i - 1],
                                    placement.weightCores[i]);
        EXPECT_FALSE(path.empty());
    }
    ASSERT_FALSE(placement.scoreCores.empty());
    const auto path = noc.route(placement.weightCores.front(),
                                placement.scoreCores.front());
    EXPECT_FALSE(path.empty());
}

TEST(Integration, PlacementCoresAreDisjoint)
{
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const WaferGeometry geom;
    std::set<std::uint64_t> seen;
    const auto &wafer = sys->mapping(0);
    for (std::uint64_t b = 0; b < wafer.numBlocks(); ++b) {
        const auto &p = wafer.placement(b);
        for (const auto *pool :
             {&p.weightCores, &p.scoreCores, &p.contextCores}) {
            for (const auto &c : *pool) {
                const auto idx = geom.coreIndex(c);
                EXPECT_EQ(seen.count(idx), 0u)
                    << "core reused across placements";
                seen.insert(idx);
            }
        }
    }
}

TEST(Integration, KvConservedThroughFullRun)
{
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    BlockKvManager kv(model, sys->scorePool(), sys->contextPool());
    const Workload w = wikiText2Like(40, 1024, 17);
    const auto stats =
        runPipeline(w, model, sys->stageTiming(), kv, {});
    EXPECT_EQ(stats.outputTokens, w.totalOutputTokens());
    EXPECT_EQ(kv.numResident(), 0u);
    EXPECT_EQ(kv.usedBlocks(), 0u); // no leaked blocks
}

TEST(Integration, RecomputeOnlyUnderPressure)
{
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    // Light load: no evictions, no recompute.
    const auto light = sys->run(wikiText2Like(10, 256, 3));
    EXPECT_EQ(light.pipeline.evictions, 0u);
    EXPECT_EQ(light.pipeline.recomputedTokens, 0u);
}

TEST(Integration, DefectSeedChangesMappingNotCorrectness)
{
    const ModelConfig model = llama13b();
    const Workload w = wikiText2Like(20, 512, 9);
    double first_tps = -1.0;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto sys =
            OuroborosSystem::build(model, {}, fastOpts(seed));
        ASSERT_TRUE(sys.has_value());
        const auto rep = sys->run(w);
        EXPECT_EQ(rep.pipeline.outputTokens, w.totalOutputTokens());
        if (first_tps < 0.0)
            first_tps = rep.result.outputTokensPerSecond;
        // Different defect maps perturb throughput only mildly.
        EXPECT_NEAR(rep.result.outputTokensPerSecond, first_tps,
                    first_tps * 0.25);
    }
}

TEST(Integration, RemapThenKvDropConsistent)
{
    // A core failure handled by both layers: the placement remaps
    // and the KV manager drops the absorbed core.
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    BlockPlacement placement = sys->mapping(0).placement(0);
    BlockKvManager kv(model, sys->scorePool(), sys->contextPool());
    ASSERT_TRUE(kv.admit(1, 512).ok);

    const WaferGeometry geom;
    const CoreCoord failed = placement.weightCores[3];
    const auto result = recoverCoreFailure(placement, failed, geom,
                                           NocParams{},
                                           CoreParams{}.sramBytes());
    ASSERT_TRUE(result.has_value());
    // The absorbed KV core leaves the manager's pool too.
    kv.dropCore(result->absorbedKvCore);
    // Whatever remains must still admit and grow sequences.
    EXPECT_TRUE(kv.admit(2, 256).ok);
    EXPECT_TRUE(kv.grow(2).ok);
}

TEST(Integration, AblationLadderMonotone)
{
    // Cumulative feature enablement should not reduce throughput.
    const ModelConfig model = llama13b();
    const Workload w = wikiText2Like(30, 1024, 13);

    OuroborosOptions cfg;
    cfg.waferScale = false;
    cfg.useCim = false;
    cfg.tokenGrained = false;
    cfg.smartMapping = false;
    cfg.dynamicKv = false;
    cfg.seed = 5;
    cfg.annealIterations = 800;

    double prev_tps = 0.0;
    const auto step = [&](const char *name) {
        const auto sys = OuroborosSystem::build(model, {}, cfg);
        ASSERT_TRUE(sys.has_value()) << name;
        const auto rep = sys->run(w);
        const double tps = rep.result.outputTokensPerSecond;
        EXPECT_GE(tps, prev_tps * 0.95) << name;
        prev_tps = std::max(prev_tps, tps);
    };
    step("baseline");
    cfg.waferScale = true;
    step("+wafer");
    cfg.useCim = true;
    step("+cim");
    cfg.tokenGrained = true;
    step("+tgp");
    cfg.smartMapping = true;
    step("+mapping");
    cfg.dynamicKv = true;
    step("+kv");
}

TEST(Integration, EnergyLedgerCategoriesConsistent)
{
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const auto rep = sys->run(wikiText2Like(20, 512, 19));
    const auto &e = rep.result.energyPerToken;
    // Ouroboros structure: no off-chip, all categories non-negative.
    EXPECT_DOUBLE_EQ(e.get(EnergyCategory::OffChipMemory), 0.0);
    EXPECT_GT(e.get(EnergyCategory::Compute), 0.0);
    EXPECT_GT(e.get(EnergyCategory::OnChipMemory), 0.0);
    EXPECT_GT(e.get(EnergyCategory::Communication), 0.0);
    EXPECT_NEAR(e.total(),
                e.get(EnergyCategory::Compute) +
                e.get(EnergyCategory::Communication) +
                e.get(EnergyCategory::OnChipMemory), 1e-12);
}

TEST(Integration, MultiWaferCoversAllBlocks)
{
    OuroborosOptions opts = fastOpts();
    opts.numWafers = 2;
    const auto sys = OuroborosSystem::build(llama65b(), {}, opts);
    ASSERT_TRUE(sys.has_value());
    std::set<std::uint64_t> blocks;
    for (std::uint32_t w = 0; w < 2; ++w) {
        const auto &mapping = sys->mapping(w);
        for (std::uint64_t b = mapping.firstBlock();
             b < mapping.firstBlock() + mapping.numBlocks(); ++b) {
            EXPECT_EQ(blocks.count(b), 0u);
            blocks.insert(b);
        }
    }
    EXPECT_EQ(blocks.size(), llama65b().numBlocks);
}

/** Property sweep: the full system works for every decoder preset. */
class AllModelsSystemTest : public ::testing::TestWithParam<int>
{
  public:
    static ModelConfig modelFor(int idx)
    {
        switch (idx) {
          case 0: return llama13b();
          case 1: return baichuan13b();
          case 2: return qwen32b();
          default: return llama32b();
        }
    }
};

TEST_P(AllModelsSystemTest, BuildsAndRuns)
{
    const ModelConfig model = modelFor(GetParam());
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value()) << model.name;
    const Workload w = wikiText2Like(15, 512, 23);
    const auto rep = sys->run(w);
    EXPECT_EQ(rep.pipeline.outputTokens, w.totalOutputTokens())
        << model.name;
    EXPECT_GT(rep.result.outputTokensPerSecond, 0.0) << model.name;
    // Beats the DGX baseline on every preset (Fig. 13 direction).
    const auto dgx = evalAccelerator(dgxA100(), model, w);
    ASSERT_TRUE(dgx.has_value());
    EXPECT_GT(rep.result.outputTokensPerSecond,
              dgx->outputTokensPerSecond)
        << model.name;
}

INSTANTIATE_TEST_SUITE_P(DecoderPresets, AllModelsSystemTest,
                         ::testing::Range(0, 4));

/** Property sweep: encoder presets run under blocking TGP. */
class EncoderSystemTest : public ::testing::TestWithParam<int>
{
};

TEST_P(EncoderSystemTest, BuildsAndRuns)
{
    const ModelConfig model =
        GetParam() == 0 ? bertLarge() : t5_11b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value()) << model.name;
    Workload w = wikiText2Like(15, model.maxContext / 2, 29);
    if (model.attention == AttentionKind::Bidirectional) {
        for (auto &r : w.requests)
            r.decodeLen = 1;
    }
    const auto rep = sys->run(w);
    // Small models replicate data-parallel; the pipeline report then
    // covers one replica's shard (every R-th request).
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < w.requests.size();
         i += sys->replicas()) {
        expected += w.requests[i].decodeLen;
    }
    EXPECT_EQ(rep.pipeline.outputTokens, expected);
    EXPECT_GT(rep.result.outputTokensPerSecond, 0.0);
}

INSTANTIATE_TEST_SUITE_P(EncoderPresets, EncoderSystemTest,
                         ::testing::Range(0, 2));

/** Property sweep: seeds never break determinism of a single build. */
class SeedDeterminismTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedDeterminismTest, RunTwiceIdentical)
{
    const auto sys = OuroborosSystem::build(
            llama13b(), {}, fastOpts(GetParam()));
    ASSERT_TRUE(sys.has_value());
    const Workload w = wikiText2Like(10, 256, GetParam());
    const auto a = sys->run(w);
    const auto b = sys->run(w);
    EXPECT_DOUBLE_EQ(a.result.outputTokensPerSecond,
                     b.result.outputTokensPerSecond);
    EXPECT_DOUBLE_EQ(a.result.energyPerTokenTotal(),
                     b.result.energyPerTokenTotal());
    EXPECT_EQ(a.kvEvictions, b.kvEvictions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminismTest,
                         ::testing::Values(1, 7, 42, 20260311));

} // namespace
} // namespace ouro
