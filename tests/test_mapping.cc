/**
 * @file
 * Unit + property tests for the mapping engine: tiling arithmetic,
 * MIQP objective behaviour, solver quality (SA vs exact optimum on
 * small instances; ours vs SUMMA/WaferLLM baselines), the intra-core
 * DP against its brute-force oracle, wafer-level placement, and the
 * replacement-chain fault recovery.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "hw/yield.hh"
#include "mapping/dp.hh"
#include "mapping/mappers.hh"
#include "mapping/problem.hh"
#include "mapping/remap.hh"
#include "mapping/wafer_mapping.hh"
#include "model/llm.hh"

namespace ouro
{
namespace
{

/** A small synthetic model that tiles to a handful of cores. */
ModelConfig
tinyModel()
{
    ModelConfig cfg;
    cfg.name = "tiny";
    cfg.numBlocks = 2;
    cfg.hiddenDim = 1024;
    cfg.numHeads = 8;
    cfg.numKvHeads = 8;
    cfg.headDim = 128;
    cfg.ffnDim = 4096;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 1000;
    cfg.bytesPerParam = 1;
    cfg.attention = AttentionKind::Causal;
    cfg.maxContext = 2048;
    return cfg;
}

std::vector<CoreCoord>
regionOf(const WaferGeometry &geom, std::uint32_t n)
{
    const auto order = geom.sShapedOrder();
    return {order.begin(), order.begin() + n};
}

TEST(Tiling, Llama13bTileCounts)
{
    const auto specs = tileBlockLayers(llama13b(), CoreParams{});
    ASSERT_EQ(specs.size(), 5u);
    // qkv: 5120 in -> I=5; 15360 out / 4096 -> O=4.
    EXPECT_EQ(specs[0].inSplits, 5u);
    EXPECT_EQ(specs[0].outSplits, 4u);
    // proj: 5120 -> 5120: I=5, O=2.
    EXPECT_EQ(specs[1].inSplits, 5u);
    EXPECT_EQ(specs[1].outSplits, 2u);
    // ffn_down: 13824 -> 5120: I=14, O=2.
    EXPECT_EQ(specs[4].inSplits, 14u);
    EXPECT_EQ(specs[4].outSplits, 2u);
}

TEST(Tiling, CoresPerBlockMatchesWeightCapacity)
{
    // The tile count must be enough to hold the block's weights.
    const ModelConfig cfg = llama13b();
    const CoreParams core;
    const auto cores = coresPerBlock(cfg, core);
    const double needed = static_cast<double>(cfg.blockWeightBytes()) /
                          static_cast<double>(core.sramBytes());
    EXPECT_GE(static_cast<double>(cores), needed);
    // ... but not wasteful beyond 2x (fragmentation bound).
    EXPECT_LE(static_cast<double>(cores), 2.5 * needed + 4);
}

TEST(Tiling, PartBoundsCoverDim)
{
    LayerSpec spec;
    spec.inDim = 5120;
    spec.outDim = 13824;
    spec.inSplits = 5;
    spec.outSplits = 4;
    EXPECT_EQ(spec.inPartLo(0), 0u);
    EXPECT_EQ(spec.inPartHi(4), 5120u);
    std::uint64_t covered = 0;
    for (std::uint32_t o = 0; o < 4; ++o)
        covered += spec.outPartHi(o) - spec.outPartLo(o);
    EXPECT_EQ(covered, 13824u);
}

TEST(Tiling, ReductionIsFourTimesOutput)
{
    LayerSpec spec;
    spec.inDim = 2048;
    spec.outDim = 4096;
    spec.inSplits = 2;
    spec.outSplits = 1;
    EXPECT_EQ(spec.reductionVolume(0), 4 * spec.outputVolume(0));
    EXPECT_EQ(spec.gatherVolume(0), spec.outputVolume(0));
}

TEST(Problem, FeasibilityChecks)
{
    const WaferGeometry geom;
    const ModelConfig cfg = tinyModel();
    const CoreParams core;
    MappingProblem problem(cfg, core, geom, regionOf(geom, 64));

    const Assignment good = GreedyMapper{}.solve(problem);
    EXPECT_TRUE(problem.feasible(good));

    Assignment dup = good;
    dup[1] = dup[0]; // two tiles on one core violates Eq. 2
    EXPECT_FALSE(problem.feasible(dup));

    Assignment oob = good;
    oob[0] = 10000;
    EXPECT_FALSE(problem.feasible(oob));
}

TEST(Problem, DefectiveCandidateInfeasible)
{
    const WaferGeometry geom;
    DefectMap defects(geom);
    const auto region = regionOf(geom, 64);
    defects.inject(region[0]);
    MappingProblem problem(tinyModel(), CoreParams{}, geom, region, 2.0,
                           &defects);
    EXPECT_FALSE(problem.candidateUsable(0));
    Assignment a = GreedyMapper{}.solve(problem);
    EXPECT_TRUE(problem.feasible(a));
    // Greedy must have skipped the defective slot 0.
    EXPECT_TRUE(std::find(a.begin(), a.end(), 0u) == a.end());
}

TEST(Problem, CostIsNonNegativeAndDeterministic)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 64));
    const Assignment a = GreedyMapper{}.solve(problem);
    const double c1 = problem.assignmentCost(a);
    const double c2 = problem.assignmentCost(a);
    EXPECT_GE(c1, 0.0);
    EXPECT_DOUBLE_EQ(c1, c2);
}

TEST(Problem, MoveDeltaMatchesFullRecompute)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 64));
    Assignment a = GreedyMapper{}.solve(problem);
    const double base = problem.assignmentCost(a);

    // Move tile 3 to a free slot and compare against recompute.
    std::set<std::uint32_t> used(a.begin(), a.end());
    std::uint32_t free_slot = 0;
    while (used.count(free_slot))
        ++free_slot;
    const double delta = problem.moveDelta(a, 3, free_slot);
    a[3] = free_slot;
    EXPECT_NEAR(problem.assignmentCost(a), base + delta, 1e-6);
}

TEST(Problem, SpreadingTilesRaisesCost)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 200));
    const Assignment compact = GreedyMapper{}.solve(problem);
    // Scatter: place tiles far apart (every 4th slot).
    Assignment scattered(compact.size());
    for (std::size_t t = 0; t < scattered.size(); ++t)
        scattered[t] = static_cast<std::uint32_t>(t * 4);
    ASSERT_TRUE(problem.feasible(scattered));
    EXPECT_GT(problem.assignmentCost(scattered),
              problem.assignmentCost(compact));
}

TEST(Mappers, AnnealingImprovesOnGreedy)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 48));
    const double greedy_cost =
        problem.assignmentCost(GreedyMapper{}.solve(problem));
    AnnealingMapper::Options opts;
    opts.iterations = 8000;
    opts.seed = 5;
    const double sa_cost = problem.assignmentCost(
            AnnealingMapper(opts).solve(problem));
    EXPECT_LE(sa_cost, greedy_cost * 1.0001);
}

TEST(Mappers, AnnealingDeterministicPerSeed)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 48));
    AnnealingMapper::Options opts;
    opts.iterations = 2000;
    opts.seed = 9;
    const Assignment a = AnnealingMapper(opts).solve(problem);
    const Assignment b = AnnealingMapper(opts).solve(problem);
    EXPECT_EQ(a, b);
}

TEST(Mappers, MultiRestartDeterministicAndNeverWorse)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 48));
    AnnealingMapper::Options opts;
    opts.iterations = 4000;
    opts.seed = 7;
    const double single_cost = problem.assignmentCost(
            AnnealingMapper(opts).solve(problem));

    opts.restarts = 3;
    const Assignment a = AnnealingMapper(opts).solve(problem);
    const Assignment b = AnnealingMapper(opts).solve(problem);
    // Restarts fan out on the shared pool yet the pick is exact:
    // per-restart slots + deterministic seeds (PR 1 sweep contract).
    EXPECT_EQ(a, b);
    ASSERT_TRUE(problem.feasible(a));
    // Restart 0 reuses the caller's seed, so the best-of-3 can never
    // lose to the single-restart solve.
    EXPECT_LE(problem.assignmentCost(a), single_cost + 1e-9);
}

/** A 2-layer micro-model whose block tiles to 6 cores: exact-solvable. */
ModelConfig
microModel()
{
    ModelConfig cfg;
    cfg.name = "micro";
    cfg.numBlocks = 1;
    cfg.hiddenDim = 1024;
    cfg.numHeads = 8;
    cfg.numKvHeads = 8;
    cfg.headDim = 128;
    cfg.ffnDim = 2048;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 100;
    cfg.bytesPerParam = 1;
    cfg.attention = AttentionKind::Causal;
    cfg.maxContext = 512;
    return cfg;
}

TEST(Mappers, AnnealingNearExactOnSmallInstance)
{
    const WaferGeometry geom;
    MappingProblem problem(microModel(), CoreParams{}, geom,
                           regionOf(geom, 10));
    ASSERT_LE(problem.tiles().size(), 8u);

    const Assignment exact = ExactMapper{}.solve(problem);
    const double exact_cost = problem.assignmentCost(exact);

    AnnealingMapper::Options opts;
    opts.iterations = 20000;
    opts.seed = 3;
    const double sa_cost = problem.assignmentCost(
            AnnealingMapper(opts).solve(problem));
    // SA should land within 10% of the proven optimum.
    EXPECT_LE(sa_cost, exact_cost * 1.10 + 1e-9);
    EXPECT_GE(sa_cost, exact_cost - 1e-9);
}

TEST(Mappers, OursBeatsBaselines)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 64));
    AnnealingMapper::Options opts;
    opts.iterations = 8000;
    opts.seed = 1;
    const double ours = mappingByteHops(
            problem, AnnealingMapper(opts).solve(problem));
    const double summa = mappingByteHops(
            problem, SummaMapper{}.solve(problem));
    const double waferllm = mappingByteHops(
            problem, WaferLlmMapper{}.solve(problem));
    // Fig. 18 ordering: ours < WaferLLM < SUMMA/Cerebras.
    EXPECT_LT(ours, waferllm);
    EXPECT_LT(waferllm, summa);
}

TEST(Mappers, BaselinesFeasible)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 64));
    EXPECT_TRUE(problem.feasible(SummaMapper{}.solve(problem)));
    EXPECT_TRUE(problem.feasible(WaferLlmMapper{}.solve(problem)));
}

TEST(Dp, SingleGroupZeroCost)
{
    const auto a = dpLeafAssignment({8}, 8);
    EXPECT_EQ(leafAssignmentCost(a), 0u);
}

TEST(Dp, TwoEqualGroupsRootConcat)
{
    const auto a = dpLeafAssignment({4, 4}, 8);
    EXPECT_EQ(leafAssignmentCost(a), 0u); // concat at depth-0 root
}

TEST(Dp, AssignsAllSlices)
{
    const auto a = dpLeafAssignment({3, 2, 1}, 8);
    int counts[3] = {0, 0, 0};
    int unused = 0;
    for (const int g : a) {
        if (g < 0)
            ++unused;
        else
            ++counts[g];
    }
    EXPECT_EQ(counts[0], 3);
    EXPECT_EQ(counts[1], 2);
    EXPECT_EQ(counts[2], 1);
    EXPECT_EQ(unused, 2);
}

TEST(Dp, MatchesBruteForceOracle)
{
    const std::vector<std::vector<std::uint32_t>> instances{
        {4, 4}, {3, 2, 1}, {5, 3}, {2, 2, 2, 2}, {6, 1}, {1, 1, 1},
        {7, 1}, {3, 3, 2}, {5, 2, 1}, {6, 2}, {3, 1}, {3, 3, 1},
        {2, 1}, {4, 2, 1},
    };
    for (const auto &counts : instances) {
        const auto dp = dpLeafAssignment(counts, 8);
        const auto brute = bruteForceLeafAssignment(counts, 8);
        EXPECT_EQ(leafAssignmentCost(dp), leafAssignmentCost(brute))
            << "instance size " << counts.size();
    }
}

TEST(Dp, ThirtyTwoLeafProduction)
{
    // A realistic intra-core split: 4 output groups of 8 crossbars.
    const auto a = dpLeafAssignment({8, 8, 8, 8}, 32);
    EXPECT_EQ(leafAssignmentCost(a), 0u + 1u + 1u);
    // groups pair at depth 1 (2 concats) and root (free). Cost = 2.
}

TEST(Dp, BuddyNextPow2Basics)
{
    EXPECT_EQ(buddyNextPow2(0), 1u);
    EXPECT_EQ(buddyNextPow2(1), 1u);
    EXPECT_EQ(buddyNextPow2(2), 2u);
    EXPECT_EQ(buddyNextPow2(3), 4u);
    EXPECT_EQ(buddyNextPow2(17), 32u);
    EXPECT_EQ(buddyNextPow2(1u << 31), std::uint64_t{1} << 31);
}

TEST(Dp, BuddyNextPow2SurvivesHugeLeafCounts)
{
    // Regression: the former 32-bit shift loop wrapped to zero and
    // hung for any input above 2^31. The hardened path widens to 64
    // bits and rounds up correctly.
    EXPECT_EQ(buddyNextPow2((1u << 31) + 1u), std::uint64_t{1} << 32);
    EXPECT_EQ(buddyNextPow2(0xFFFFFFFFull), std::uint64_t{1} << 32);
    EXPECT_EQ(buddyNextPow2((std::uint64_t{1} << 40) + 1),
              std::uint64_t{1} << 41);
    EXPECT_EQ(buddyNextPow2(std::uint64_t{1} << 63),
              std::uint64_t{1} << 63);
}

TEST(Dp, LargeLeafInstanceCompletes)
{
    // Flat per-order free lists keep big instances cheap; the old
    // map-backed lists made this allocation-bound. Also exercises
    // the binary-decomposition path (no power-of-two slack left).
    const std::uint32_t leaves = 1u << 16;
    std::vector<std::uint32_t> counts{40000, 20000, 5000, 536};
    const auto a = dpLeafAssignment(counts, leaves);
    ASSERT_EQ(a.size(), leaves);
    std::array<std::uint32_t, 4> seen{};
    for (const int g : a) {
        if (g >= 0)
            ++seen[static_cast<std::size_t>(g)];
    }
    for (std::size_t g = 0; g < counts.size(); ++g)
        EXPECT_EQ(seen[g], counts[g]) << "group " << g;
}

TEST(WaferMappingTest, BuildsForLlama13b)
{
    const WaferGeometry geom;
    const ModelConfig cfg = llama13b();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    const auto mapping = WaferMapping::build(
            cfg, CoreParams{}, geom, nullptr, 0, cfg.numBlocks, opts);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_EQ(mapping->numBlocks(), 40u);
    // Every block placed; KV cores exist.
    for (std::uint64_t b = 0; b < 40; ++b) {
        const auto &p = mapping->placement(b);
        EXPECT_EQ(p.weightCores.size(), mapping->tilesPerBlock());
        EXPECT_FALSE(p.scoreCores.empty());
        EXPECT_FALSE(p.contextCores.empty());
    }
    EXPECT_GT(mapping->totalKvCores(), 1000u);
}

TEST(WaferMappingTest, RefusesOversizeModel)
{
    // LLaMA-65B does not fit one wafer (65 GB > 54 GB).
    const WaferGeometry geom;
    const ModelConfig cfg = llama65b();
    const auto mapping = WaferMapping::build(
            cfg, CoreParams{}, geom, nullptr, 0, cfg.numBlocks);
    EXPECT_FALSE(mapping.has_value());
}

TEST(WaferMappingTest, HalfModelFitsOneWafer)
{
    // ... but half its blocks do (the 2-wafer configuration of §6.8).
    const WaferGeometry geom;
    const ModelConfig cfg = llama65b();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    const auto mapping = WaferMapping::build(
            cfg, CoreParams{}, geom, nullptr, 0, cfg.numBlocks / 2,
            opts);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_EQ(mapping->numBlocks(), 40u);
}

TEST(WaferMappingTest, DefectsReduceKvPool)
{
    const WaferGeometry geom;
    const ModelConfig cfg = tinyModel();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    const auto clean = WaferMapping::build(
            cfg, CoreParams{}, geom, nullptr, 0, cfg.numBlocks, opts);
    Rng rng(4);
    const DefectMap defects(geom, YieldParams{}, rng);
    const auto faulty = WaferMapping::build(
            cfg, CoreParams{}, geom, &defects, 0, cfg.numBlocks, opts);
    ASSERT_TRUE(clean.has_value());
    ASSERT_TRUE(faulty.has_value());
    EXPECT_LE(faulty->totalKvCores(), clean->totalKvCores());
    // Defective cores never appear in any placement.
    for (std::uint64_t b = 0; b < cfg.numBlocks; ++b) {
        for (const auto &c : faulty->placement(b).weightCores)
            EXPECT_FALSE(defects.defective(c));
    }
}

TEST(WaferMappingTest, AnnealedBeatsSummaByHops)
{
    const WaferGeometry geom;
    const ModelConfig cfg = tinyModel();
    WaferMappingOptions ours;
    ours.mapper = MapperKind::Annealing;
    ours.annealIterations = 3000;
    WaferMappingOptions summa;
    summa.mapper = MapperKind::Summa;
    const auto a = WaferMapping::build(cfg, CoreParams{}, geom, nullptr,
                                       0, cfg.numBlocks, ours);
    const auto s = WaferMapping::build(cfg, CoreParams{}, geom, nullptr,
                                       0, cfg.numBlocks, summa);
    ASSERT_TRUE(a && s);
    EXPECT_LT(a->totalByteHops(), s->totalByteHops());
}

/** Fisher-Yates shuffle driven by the deterministic Rng. */
template <typename T>
void
shuffleWith(Rng &rng, std::vector<T> &v)
{
    for (std::size_t i = v.size(); i > 1; --i) {
        const std::size_t j = rng.uniformInt(0, i - 1);
        std::swap(v[i - 1], v[j]);
    }
}

/** Random feasible assignment: a shuffle of distinct usable slots. */
Assignment
randomAssignment(const MappingProblem &problem, Rng &rng)
{
    std::vector<std::uint32_t> slots;
    for (std::size_t r = 0; r < problem.candidates().size(); ++r) {
        if (problem.candidateUsable(r))
            slots.push_back(static_cast<std::uint32_t>(r));
    }
    shuffleWith(rng, slots);
    Assignment a(slots.begin(),
                 slots.begin() + problem.tiles().size());
    return a;
}

TEST(SparseEngine, FlowGraphCountsMatchOracle)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 64));
    const std::size_t n = problem.tiles().size();
    // Directed nonzero pairs from the flowBetween oracle must equal
    // the CSR edge count, and the graph must be genuinely sparse.
    std::size_t nonzero = 0;
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = 0; b < n; ++b) {
            if (a != b && (problem.flowBetween(a, b) != 0 ||
                           problem.flowBetween(b, a) != 0))
                ++nonzero;
        }
    }
    EXPECT_EQ(problem.flowEdges(), nonzero);
    EXPECT_LT(problem.flowEdges(), n * (n - 1) / 2); // sparse
    std::size_t degree_sum = 0;
    for (std::size_t t = 0; t < n; ++t)
        degree_sum += problem.flowDegree(t);
    EXPECT_EQ(degree_sum, problem.flowEdges());
}

TEST(SparseEngine, AssignmentCostBitIdenticalFuzz)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 96));
    Rng rng(11);
    for (int round = 0; round < 50; ++round) {
        const Assignment a = randomAssignment(problem, rng);
        // EXPECT_EQ on doubles is exact: the sparse engine must be
        // bit-identical to the dense reference, not merely close.
        EXPECT_EQ(problem.assignmentCost(a),
                  problem.assignmentCostDense(a));
    }
}

TEST(SparseEngine, MoveDeltaBitIdenticalFuzz)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 96));
    Rng rng(13);
    const std::size_t n = problem.tiles().size();
    for (int round = 0; round < 200; ++round) {
        const Assignment a = randomAssignment(problem, rng);
        const auto t = static_cast<std::size_t>(
                rng.uniformInt(0, n - 1));
        const auto slot = static_cast<std::uint32_t>(
                rng.uniformInt(0, problem.candidates().size() - 1));
        EXPECT_EQ(problem.moveDelta(a, t, slot),
                  problem.moveDeltaDense(a, t, slot));
    }
}

TEST(SparseEngine, SwapDeltaBitIdenticalAndMatchesRecompute)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 96));
    Rng rng(17);
    const std::size_t n = problem.tiles().size();
    for (int round = 0; round < 200; ++round) {
        Assignment a = randomAssignment(problem, rng);
        const auto t1 = static_cast<std::size_t>(
                rng.uniformInt(0, n - 1));
        auto t2 = static_cast<std::size_t>(rng.uniformInt(0, n - 2));
        if (t2 >= t1)
            ++t2;
        const double sparse = problem.swapDelta(a, t1, t2);
        EXPECT_EQ(sparse, problem.swapDeltaDense(a, t1, t2));

        // And the delta agrees with a full recompute (to rounding).
        const double before = problem.assignmentCost(a);
        std::swap(a[t1], a[t2]);
        const double after = problem.assignmentCost(a);
        EXPECT_NEAR(after - before, sparse,
                    1e-9 * std::max(1.0, std::abs(before)));
    }
}

TEST(SparseEngine, PartialCostBitIdenticalFuzz)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 96));
    Rng rng(19);
    const std::size_t n = problem.tiles().size();
    for (int round = 0; round < 100; ++round) {
        const Assignment a = randomAssignment(problem, rng);
        const auto t = static_cast<std::size_t>(
                rng.uniformInt(0, n - 1));
        const auto slot = static_cast<std::uint32_t>(
                rng.uniformInt(0, problem.candidates().size() - 1));
        EXPECT_EQ(problem.partialCost(a, t, slot),
                  problem.partialCostDense(a, t, slot));
    }
}

TEST(SparseEngine, BitIdenticalUnderDefectMaps)
{
    const WaferGeometry geom;
    for (int round = 0; round < 8; ++round) {
        DefectMap defects(geom);
        const auto region = regionOf(geom, 96);
        // Random defect sprinkle inside the region (leave enough
        // usable cores for the block).
        Rng rng(100 + round);
        for (int d = 0; d < 12; ++d) {
            defects.inject(
                    region[rng.uniformInt(0, region.size() - 1)]);
        }
        MappingProblem problem(tinyModel(), CoreParams{}, geom, region,
                               2.0, &defects);
        for (int k = 0; k < 20; ++k) {
            const Assignment a = randomAssignment(problem, rng);
            EXPECT_EQ(problem.assignmentCost(a),
                      problem.assignmentCostDense(a));
            const auto t = static_cast<std::size_t>(
                    rng.uniformInt(0, problem.tiles().size() - 1));
            const auto slot = static_cast<std::uint32_t>(
                    rng.uniformInt(0,
                                   problem.candidates().size() - 1));
            EXPECT_EQ(problem.moveDelta(a, t, slot),
                      problem.moveDeltaDense(a, t, slot));
        }
    }
}

TEST(SparseEngine, TableAndOnTheFlyPathsBitIdentical)
{
    const WaferGeometry geom;
    const auto region = regionOf(geom, 96);
    MappingProblem with_table(tinyModel(), CoreParams{}, geom, region,
                              2.0, nullptr, true);
    MappingProblem without_table(tinyModel(), CoreParams{}, geom,
                                 region, 2.0, nullptr, false);
    ASSERT_TRUE(with_table.hasDistanceTable());
    ASSERT_FALSE(without_table.hasDistanceTable());
    Rng rng(29);
    for (int round = 0; round < 30; ++round) {
        const Assignment a = randomAssignment(with_table, rng);
        EXPECT_EQ(with_table.assignmentCost(a),
                  without_table.assignmentCost(a));
        const auto t = static_cast<std::size_t>(rng.uniformInt(
                0, with_table.tiles().size() - 1));
        const auto slot = static_cast<std::uint32_t>(
                rng.uniformInt(0, region.size() - 1));
        EXPECT_EQ(with_table.moveDelta(a, t, slot),
                  without_table.moveDelta(a, t, slot));
    }
}

TEST(SparseEngine, NonUniformSplitGatherIsDirected)
{
    // A model whose last output part is smaller exercises the
    // directed gather volumes (F(a->b) != F(b->a)).
    ModelConfig cfg = tinyModel();
    cfg.ffnDim = 6001; // 2 output parts of 3000 / 3001 channels
    const WaferGeometry geom;
    MappingProblem problem(cfg, CoreParams{}, geom,
                           regionOf(geom, 96));
    const std::size_t n = problem.tiles().size();
    bool found_asymmetric = false;
    for (std::size_t a = 0; a < n && !found_asymmetric; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            if (problem.flowBetween(a, b) !=
                problem.flowBetween(b, a)) {
                found_asymmetric = true;
                break;
            }
        }
    }
    EXPECT_TRUE(found_asymmetric);
    Rng rng(31);
    for (int round = 0; round < 50; ++round) {
        const Assignment a = randomAssignment(problem, rng);
        EXPECT_EQ(problem.assignmentCost(a),
                  problem.assignmentCostDense(a));
        const auto t1 = static_cast<std::size_t>(
                rng.uniformInt(0, n - 1));
        auto t2 = static_cast<std::size_t>(rng.uniformInt(0, n - 2));
        if (t2 >= t1)
            ++t2;
        EXPECT_EQ(problem.swapDelta(a, t1, t2),
                  problem.swapDeltaDense(a, t1, t2));
    }
}

TEST(SparseEngine, AnnealingTrajectoryEngineInvariant)
{
    // The whole point of the dense reference: the annealer must walk
    // the exact same trajectory on either engine.
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 64));
    AnnealingMapper::Options sparse_opts;
    sparse_opts.iterations = 5000;
    sparse_opts.seed = 77;
    AnnealingMapper::Options dense_opts = sparse_opts;
    dense_opts.useDenseEngine = true;
    const Assignment sparse =
        AnnealingMapper(sparse_opts).solve(problem);
    const Assignment dense = AnnealingMapper(dense_opts).solve(problem);
    EXPECT_EQ(sparse, dense);
}

TEST(SparseEngine, MultiRestartPickEngineInvariant)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 64));
    AnnealingMapper::Options opts;
    opts.iterations = 3000;
    opts.seed = 5;
    opts.restarts = 3;
    AnnealingMapper::Options dense_opts = opts;
    dense_opts.useDenseEngine = true;
    EXPECT_EQ(AnnealingMapper(opts).solve(problem),
              AnnealingMapper(dense_opts).solve(problem));
}

TEST(SparseEngine, MoveDeltaBatchBitIdenticalFuzz)
{
    // The SoA batch kernel's contract: deltas[i] is BIT-identical to
    // the scalar moveDelta for every candidate - repeated slots,
    // occupied slots and the tile's current slot included - on both
    // the table and on-the-fly paths.
    const WaferGeometry geom;
    const auto region = regionOf(geom, 96);
    MappingProblem with_table(tinyModel(), CoreParams{}, geom, region,
                              2.0, nullptr, true);
    MappingProblem without_table(tinyModel(), CoreParams{}, geom,
                                 region, 2.0, nullptr, false);
    Rng rng(41);
    const std::size_t n = with_table.tiles().size();
    MappingProblem::MoveScratch scratch;
    for (int round = 0; round < 100; ++round) {
        const Assignment a = randomAssignment(with_table, rng);
        const auto t =
            static_cast<std::size_t>(rng.uniformInt(0, n - 1));
        const std::size_t k = 1 + rng.uniformInt(0, 63);
        std::vector<std::uint32_t> cand(k);
        for (auto &slot : cand) {
            slot = static_cast<std::uint32_t>(
                    rng.uniformInt(0, region.size() - 1));
        }
        cand[rng.uniformInt(0, k - 1)] = a[t]; // the no-op candidate
        std::vector<double> deltas(k);
        with_table.moveDeltaBatch(a, t, cand.data(), k, scratch,
                                  deltas.data());
        for (std::size_t i = 0; i < k; ++i)
            EXPECT_EQ(deltas[i], with_table.moveDelta(a, t, cand[i]));
        // Convenience overload + on-the-fly path, same contract.
        const auto fly = without_table.moveDeltaBatch(a, t, cand);
        for (std::size_t i = 0; i < k; ++i) {
            EXPECT_EQ(fly[i], without_table.moveDelta(a, t, cand[i]));
            EXPECT_EQ(fly[i], deltas[i]);
        }
    }
}

TEST(SparseEngine, MoveDeltaBatchBitIdenticalUnderDefects)
{
    const WaferGeometry geom;
    const auto region = regionOf(geom, 96);
    DefectMap defects(geom);
    Rng rng(43);
    for (int d = 0; d < 12; ++d)
        defects.inject(region[rng.uniformInt(0, region.size() - 1)]);
    MappingProblem problem(tinyModel(), CoreParams{}, geom, region,
                           2.0, &defects);
    const std::size_t n = problem.tiles().size();
    for (int round = 0; round < 50; ++round) {
        const Assignment a = randomAssignment(problem, rng);
        const auto t =
            static_cast<std::size_t>(rng.uniformInt(0, n - 1));
        std::vector<std::uint32_t> cand(8);
        for (auto &slot : cand) {
            slot = static_cast<std::uint32_t>(
                    rng.uniformInt(0, region.size() - 1));
        }
        const auto deltas = problem.moveDeltaBatch(a, t, cand);
        for (std::size_t i = 0; i < cand.size(); ++i)
            EXPECT_EQ(deltas[i], problem.moveDelta(a, t, cand[i]));
    }
}

/** Twin problems over one region: exact engine vs fused opt-in. */
struct EngineTwins
{
    MappingProblem exact;
    MappingProblem fused;

    EngineTwins(const ModelConfig &model, const WaferGeometry &geom,
                const std::vector<CoreCoord> &region,
                double cost_inter, const DefectMap *defects,
                bool tables)
        : exact(model, CoreParams{}, geom, region, cost_inter,
                defects,
                MappingEngineOptions{tables, 1024, false}),
          fused(model, CoreParams{}, geom, region, cost_inter,
                defects, MappingEngineOptions{tables, 1024, true})
    {
    }
};

TEST(FusedEngine, ConformanceFuzzAgainstExactOracle)
{
    // The epsilon-exact contract: every fused kernel stays within
    // kFusedRelBound * (1 + S) of the retained exact path, where S is
    // the exact assignmentCost magnitude. costInter = 1.7 is NOT a
    // power of two, so the fused reassociation genuinely rounds
    // differently - this fuzz exercises the bound, not equality.
    const WaferGeometry geom;
    const auto region = regionOf(geom, 96);
    for (const bool tables : {true, false}) {
        EngineTwins twins(tinyModel(), geom, region, 1.7, nullptr,
                          tables);
        ASSERT_EQ(twins.fused.hasDistanceTable(), tables);
        ASSERT_TRUE(twins.fused.fusedCost());
        Rng rng(47);
        const std::size_t n = twins.exact.tiles().size();
        for (int round = 0; round < 60; ++round) {
            Assignment a = randomAssignment(twins.exact, rng);
            const double se = twins.exact.assignmentCost(a);
            const double sf = twins.fused.assignmentCost(a);
            const double tol =
                MappingProblem::kFusedRelBound * (1.0 + se);
            EXPECT_NEAR(sf, se, tol);

            const auto t = static_cast<std::size_t>(
                    rng.uniformInt(0, n - 1));
            const auto slot = static_cast<std::uint32_t>(
                    rng.uniformInt(0, region.size() - 1));
            EXPECT_NEAR(twins.fused.moveDelta(a, t, slot),
                        twins.exact.moveDelta(a, t, slot), tol);
            auto t2 = static_cast<std::size_t>(
                    rng.uniformInt(0, n - 2));
            if (t2 >= t)
                ++t2;
            EXPECT_NEAR(twins.fused.swapDelta(a, t, t2),
                        twins.exact.swapDelta(a, t, t2), tol);

            // Batched fused pricing is bit-identical to the scalar
            // fused kernel (the batch contract holds per engine).
            std::vector<std::uint32_t> cand(8);
            for (auto &s : cand) {
                s = static_cast<std::uint32_t>(
                        rng.uniformInt(0, region.size() - 1));
            }
            const auto batch = twins.fused.moveDeltaBatch(a, t, cand);
            for (std::size_t i = 0; i < cand.size(); ++i) {
                EXPECT_EQ(batch[i],
                          twins.fused.moveDelta(a, t, cand[i]));
            }
        }
    }
}

TEST(FusedEngine, TableAndOnTheFlyFusedPathsBitIdentical)
{
    // Within the fused tier, the product table and the on-the-fly
    // manhattan*penalty expression are the SAME expression - the two
    // fused paths must agree bit for bit (the epsilon tolerance is
    // only between tiers, never within one).
    const WaferGeometry geom;
    const auto region = regionOf(geom, 96);
    MappingProblem with_table(
            tinyModel(), CoreParams{}, geom, region, 1.7, nullptr,
            MappingEngineOptions{true, 1024, true});
    MappingProblem on_the_fly(
            tinyModel(), CoreParams{}, geom, region, 1.7, nullptr,
            MappingEngineOptions{false, 1024, true});
    ASSERT_TRUE(with_table.hasDistanceTable());
    ASSERT_FALSE(on_the_fly.hasDistanceTable());
    Rng rng(53);
    const std::size_t n = with_table.tiles().size();
    for (int round = 0; round < 40; ++round) {
        const Assignment a = randomAssignment(with_table, rng);
        EXPECT_EQ(with_table.assignmentCost(a),
                  on_the_fly.assignmentCost(a));
        const auto t =
            static_cast<std::size_t>(rng.uniformInt(0, n - 1));
        const auto slot = static_cast<std::uint32_t>(
                rng.uniformInt(0, region.size() - 1));
        EXPECT_EQ(with_table.moveDelta(a, t, slot),
                  on_the_fly.moveDelta(a, t, slot));
    }
}

TEST(FusedEngine, BitIdenticalWhenPenaltiesArePowersOfTwo)
{
    // With the default costInter = 2.0 every penalty is a power of
    // two, multiplying by it is exact, and the fused reassociation
    // rounds identically - the fused engine collapses to bit-identity
    // with the exact one. A sharp sanity check on the contract: the
    // epsilon slack exists ONLY for inexact penalty scaling.
    const WaferGeometry geom;
    const auto region = regionOf(geom, 96);
    EngineTwins twins(tinyModel(), geom, region, 2.0, nullptr, true);
    Rng rng(59);
    const std::size_t n = twins.exact.tiles().size();
    for (int round = 0; round < 40; ++round) {
        const Assignment a = randomAssignment(twins.exact, rng);
        EXPECT_EQ(twins.fused.assignmentCost(a),
                  twins.exact.assignmentCost(a));
        const auto t =
            static_cast<std::size_t>(rng.uniformInt(0, n - 1));
        const auto slot = static_cast<std::uint32_t>(
                rng.uniformInt(0, region.size() - 1));
        EXPECT_EQ(twins.fused.moveDelta(a, t, slot),
                  twins.exact.moveDelta(a, t, slot));
    }
}

TEST(FusedEngine, ConformanceUnderDefectMaps)
{
    const WaferGeometry geom;
    const auto region = regionOf(geom, 96);
    DefectMap defects(geom);
    Rng rng(61);
    for (int d = 0; d < 12; ++d)
        defects.inject(region[rng.uniformInt(0, region.size() - 1)]);
    EngineTwins twins(tinyModel(), geom, region, 1.7, &defects, true);
    const std::size_t n = twins.exact.tiles().size();
    for (int round = 0; round < 40; ++round) {
        const Assignment a = randomAssignment(twins.exact, rng);
        const double se = twins.exact.assignmentCost(a);
        const double tol =
            MappingProblem::kFusedRelBound * (1.0 + se);
        EXPECT_NEAR(twins.fused.assignmentCost(a), se, tol);
        const auto t =
            static_cast<std::size_t>(rng.uniformInt(0, n - 1));
        auto t2 =
            static_cast<std::size_t>(rng.uniformInt(0, n - 2));
        if (t2 >= t)
            ++t2;
        EXPECT_NEAR(twins.fused.swapDelta(a, t, t2),
                    twins.exact.swapDelta(a, t, t2), tol);
    }
}

TEST(SparseEngine, DistanceTableCutoffOption)
{
    // The 1024-candidate cutoff is a build option now. Above the old
    // cutoff the default skips the O(C^2) table; raising the cutoff
    // materialises it; and both paths price bit-identically.
    const WaferGeometry geom;
    const auto region = regionOf(geom, 1100);
    MappingProblem fly(tinyModel(), CoreParams{}, geom, region, 2.0,
                       nullptr, MappingEngineOptions{true, 1024,
                                                     false});
    MappingProblem table(tinyModel(), CoreParams{}, geom, region, 2.0,
                         nullptr, MappingEngineOptions{true, 2048,
                                                       false});
    EXPECT_FALSE(fly.hasDistanceTable());  // 1100 > default cutoff
    EXPECT_TRUE(table.hasDistanceTable()); // raised cutoff opts in
    Rng rng(67);
    const std::size_t n = fly.tiles().size();
    for (int round = 0; round < 20; ++round) {
        const Assignment a = randomAssignment(fly, rng);
        EXPECT_EQ(table.assignmentCost(a), fly.assignmentCost(a));
        const auto t =
            static_cast<std::size_t>(rng.uniformInt(0, n - 1));
        const auto slot = static_cast<std::uint32_t>(
                rng.uniformInt(0, region.size() - 1));
        EXPECT_EQ(table.moveDelta(a, t, slot),
                  fly.moveDelta(a, t, slot));
        auto t2 =
            static_cast<std::size_t>(rng.uniformInt(0, n - 2));
        if (t2 >= t)
            ++t2;
        EXPECT_EQ(table.swapDelta(a, t, t2), fly.swapDelta(a, t, t2));
    }
}

TEST(SparseEngine, AnnealingTrajectoryBatchedEngineInvariant)
{
    // The PR 3 engine-invariance guarantee must survive batched
    // proposals: for ANY fixed moveBatch the sparse batched pricing
    // and the dense scalar reference walk the exact same trajectory,
    // because batched deltas are bit-identical to scalar moveDelta.
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 64));
    for (const std::uint32_t batch : {1u, 8u, 64u}) {
        AnnealingMapper::Options sparse_opts;
        sparse_opts.iterations = 5000;
        sparse_opts.seed = 77;
        sparse_opts.moveBatch = batch;
        AnnealingMapper::Options dense_opts = sparse_opts;
        dense_opts.useDenseEngine = true;
        EXPECT_EQ(AnnealingMapper(sparse_opts).solve(problem),
                  AnnealingMapper(dense_opts).solve(problem))
            << "moveBatch " << batch;
    }
}

TEST(Mappers, BatchedAnnealingDeterministicAndImproves)
{
    const WaferGeometry geom;
    MappingProblem problem(tinyModel(), CoreParams{}, geom,
                           regionOf(geom, 48));
    const double greedy_cost =
        problem.assignmentCost(GreedyMapper{}.solve(problem));
    AnnealingMapper::Options opts;
    opts.iterations = 8000;
    opts.seed = 5;
    opts.moveBatch = 8;
    const Assignment a = AnnealingMapper(opts).solve(problem);
    const Assignment b = AnnealingMapper(opts).solve(problem);
    EXPECT_EQ(a, b);
    EXPECT_LE(problem.assignmentCost(a), greedy_cost * 1.0001);
}

TEST(FusedEngine, AnnealingOnFusedProblemImprovesExactObjective)
{
    // The fused engine drives the search; quality is judged on the
    // exact objective (fig18 pins the 5% production bound on the
    // LLaMA-13B region; here we sanity-check the plumbing).
    const WaferGeometry geom;
    const auto region = regionOf(geom, 64);
    EngineTwins twins(tinyModel(), geom, region, 1.7, nullptr, true);
    const double greedy_cost = twins.exact.assignmentCost(
            GreedyMapper{}.solve(twins.exact));
    AnnealingMapper::Options opts;
    opts.iterations = 8000;
    opts.seed = 5;
    opts.moveBatch = 8;
    const Assignment a = AnnealingMapper(opts).solve(twins.fused);
    ASSERT_TRUE(twins.exact.feasible(a));
    EXPECT_LE(twins.exact.assignmentCost(a), greedy_cost * 1.0001);
}

TEST(Congruence, TranslateBitIdenticalToFreshProblem)
{
    // congruentTranslate must reproduce a from-scratch MappingProblem
    // over the target region bit for bit: same flow graph, same
    // costs, on every engine entry point.
    const WaferGeometry geom;
    const auto order = geom.sShapedOrder();
    const std::vector<CoreCoord> region_a(order.begin(),
                                          order.begin() + 96);
    const std::vector<CoreCoord> region_b(order.begin() + 96,
                                          order.begin() + 192);
    const MappingProblem fresh_a(tinyModel(), CoreParams{}, geom,
                                 region_a);
    const MappingProblem fresh_b(tinyModel(), CoreParams{}, geom,
                                 region_b, 2.0, nullptr, false);
    const MappingProblem translated =
        fresh_a.congruentTranslate(region_b);

    ASSERT_EQ(translated.candidates(), fresh_b.candidates());
    ASSERT_EQ(translated.flowEdges(), fresh_b.flowEdges());
    EXPECT_FALSE(translated.hasDistanceTable());

    Rng rng(23);
    const std::size_t n = translated.tiles().size();
    for (int round = 0; round < 40; ++round) {
        const Assignment a = randomAssignment(fresh_b, rng);
        EXPECT_EQ(translated.assignmentCost(a),
                  fresh_b.assignmentCost(a));
        EXPECT_EQ(translated.assignmentCost(a),
                  fresh_b.assignmentCostDense(a));
        const auto t = static_cast<std::size_t>(
                rng.uniformInt(0, n - 1));
        const auto slot = static_cast<std::uint32_t>(
                rng.uniformInt(0, region_b.size() - 1));
        EXPECT_EQ(translated.moveDelta(a, t, slot),
                  fresh_b.moveDelta(a, t, slot));
        auto t2 = static_cast<std::size_t>(rng.uniformInt(0, n - 2));
        if (t2 >= t)
            ++t2;
        EXPECT_EQ(translated.swapDelta(a, t, t2),
                  fresh_b.swapDelta(a, t, t2));
    }
}

/** Build twice - congruence fast path vs per-block rebuild oracle -
 *  and require bit-identical placements and costs. */
void
expectCongruenceBitIdentical(const ModelConfig &model,
                             const DefectMap *defects,
                             WaferMappingOptions opts)
{
    const WaferGeometry geom;
    opts.congruentReuse = true;
    const auto fast = WaferMapping::build(model, CoreParams{}, geom,
                                          defects, 0, model.numBlocks,
                                          opts);
    opts.congruentReuse = false;
    const auto oracle = WaferMapping::build(model, CoreParams{}, geom,
                                            defects, 0,
                                            model.numBlocks, opts);
    ASSERT_TRUE(fast && oracle);
    ASSERT_EQ(fast->numBlocks(), oracle->numBlocks());
    ASSERT_EQ(fast->numReplicas(), oracle->numReplicas());
    for (std::uint32_t rep = 0; rep < fast->numReplicas(); ++rep) {
        for (std::uint64_t b = 0; b < fast->numBlocks(); ++b) {
            const auto &f = fast->placement(b, rep);
            const auto &o = oracle->placement(b, rep);
            EXPECT_EQ(f.weightCores, o.weightCores);
            EXPECT_EQ(f.scoreCores, o.scoreCores);
            EXPECT_EQ(f.contextCores, o.contextCores);
            // EXPECT_EQ on doubles is exact: bit-identity, not
            // closeness.
            EXPECT_EQ(f.mappingCost, o.mappingCost);
        }
    }
    EXPECT_EQ(fast->totalByteHops(), oracle->totalByteHops());
    EXPECT_EQ(fast->interBlockByteHops(),
              oracle->interBlockByteHops());
    EXPECT_EQ(fast->totalKvCores(), oracle->totalKvCores());
}

TEST(Congruence, WaferBuildBitIdenticalAcrossMappers)
{
    const ModelConfig model = tinyModel();
    for (const MapperKind kind :
         {MapperKind::Greedy, MapperKind::Annealing, MapperKind::Summa,
          MapperKind::WaferLlm}) {
        WaferMappingOptions opts;
        opts.mapper = kind;
        opts.annealIterations = 400;
        expectCongruenceBitIdentical(model, nullptr, opts);
    }
}

TEST(Congruence, WaferBuildBitIdenticalUnderDefects)
{
    const WaferGeometry geom;
    const ModelConfig model = tinyModel();
    for (const std::uint64_t seed : {3ull, 8ull}) {
        Rng rng(seed);
        const DefectMap defects(geom, YieldParams{}, rng);
        WaferMappingOptions opts;
        opts.mapper = MapperKind::Greedy;
        expectCongruenceBitIdentical(model, &defects, opts);
    }
}

TEST(Congruence, WaferBuildBitIdenticalWithReplicas)
{
    const ModelConfig model = tinyModel();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    opts.replicas = 3;
    expectCongruenceBitIdentical(model, nullptr, opts);
}

TEST(WaferMappingTest, ReplicasAreLaidOut)
{
    // replicas > 1 must place real regions for every replica - the
    // capacity math is honest, not just a divisor.
    const WaferGeometry geom;
    const ModelConfig model = tinyModel();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    opts.replicas = 2;
    const auto mapping = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            opts);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_EQ(mapping->numReplicas(), 2u);

    // Every (block, replica) placement exists, holds the full tile
    // set, and no core is used twice anywhere on the wafer - the
    // per-chain embedding reservations included.
    std::set<std::uint64_t> used;
    for (std::uint32_t rep = 0; rep < 2; ++rep) {
        for (const auto &c : mapping->embeddingCores(rep))
            EXPECT_TRUE(used.insert(geom.coreIndex(c)).second);
    }
    for (std::uint32_t rep = 0; rep < 2; ++rep) {
        for (std::uint64_t b = 0; b < model.numBlocks; ++b) {
            const auto &p = mapping->placement(b, rep);
            EXPECT_EQ(p.weightCores.size(), mapping->tilesPerBlock());
            for (const auto *pool :
                 {&p.weightCores, &p.scoreCores, &p.contextCores}) {
                for (const auto &c : *pool)
                    EXPECT_TRUE(used.insert(geom.coreIndex(c)).second);
            }
        }
    }

    // Regression pin for the core accounting: every region's
    // leftover cores (region size minus tiles) serve KV duty, across
    // all blocks AND replicas. Each of the two chains reserves its
    // own embedding region under the default replicated-embedding
    // layout.
    const std::uint64_t reserved =
        embeddingCoreCount(model, CoreParams{});
    const std::uint64_t per_region = regionSize(
            model.numBlocks * 2, geom.numCores(), 2 * reserved);
    EXPECT_EQ(mapping->totalKvCores(),
              model.numBlocks * 2 *
                      (per_region - mapping->tilesPerBlock()));
    for (std::uint32_t rep = 0; rep < 2; ++rep) {
        EXPECT_EQ(mapping->chainKvCores(rep),
                  model.numBlocks *
                          (per_region - mapping->tilesPerBlock()));
        EXPECT_EQ(mapping->chainActiveCores(rep),
                  reserved + model.numBlocks * per_region);
    }

    // The two-arg accessor's replica 0 is the legacy placement()
    // view, and every replica carries a priced (positive-cost)
    // region of its own - congruent pattern, region-local coords.
    for (std::uint64_t b = 0; b < model.numBlocks; ++b) {
        EXPECT_EQ(mapping->placement(b, 0).weightCores,
                  mapping->placement(b).weightCores);
        EXPECT_GT(mapping->placement(b, 1).mappingCost, 0.0);
    }
}

TEST(WaferMappingTest, SharedEmbeddingReproducesLegacyLayout)
{
    // sharedEmbedding = true is the compatibility oracle: ONE
    // reservation at the head of the usable-core order, regions
    // packed right behind it - exactly the pre-refactor layout.
    const WaferGeometry geom;
    const ModelConfig model = tinyModel();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    opts.replicas = 2;
    opts.sharedEmbedding = true;
    const auto mapping = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            opts);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_TRUE(mapping->sharedEmbedding());

    const auto order = geom.sShapedOrder();
    const std::uint64_t reserved =
        embeddingCoreCount(model, CoreParams{});
    const std::uint64_t per_region = regionSize(
            model.numBlocks * 2, geom.numCores(), reserved);

    // The single reservation is the order's prefix, and every
    // replica reads the same one.
    ASSERT_EQ(mapping->embeddingCores().size(), reserved);
    for (std::uint64_t i = 0; i < reserved; ++i)
        EXPECT_EQ(mapping->embeddingCores()[i], order[i]);
    EXPECT_EQ(mapping->embeddingCores(0), mapping->embeddingCores(1));

    // Region r * num_blocks + b occupies the legacy slice
    // [reserved + region * per_region, ...): its weight + KV cores
    // are exactly that slice's set.
    for (std::uint32_t rep = 0; rep < 2; ++rep) {
        for (std::uint64_t b = 0; b < model.numBlocks; ++b) {
            const std::uint64_t region = rep * model.numBlocks + b;
            const std::uint64_t lo = reserved + region * per_region;
            std::set<std::uint64_t> expect;
            for (std::uint64_t i = lo; i < lo + per_region; ++i)
                expect.insert(geom.coreIndex(order[i]));
            std::set<std::uint64_t> got;
            const auto &p = mapping->placement(b, rep);
            for (const auto *pool :
                 {&p.weightCores, &p.scoreCores, &p.contextCores}) {
                for (const auto &c : *pool)
                    got.insert(geom.coreIndex(c));
            }
            EXPECT_EQ(got, expect) << "region " << region;
        }
    }
}

TEST(WaferMappingTest, PerChainEmbeddingMakesChainsDisjoint)
{
    // The default layout: every replica chain owns a disjoint
    // embedding reservation of the full size, and no core of one
    // chain (embedding included) appears in another.
    const WaferGeometry geom;
    const ModelConfig model = tinyModel();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    opts.replicas = 3;
    const auto mapping = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            opts);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_FALSE(mapping->sharedEmbedding());

    const std::uint64_t reserved =
        embeddingCoreCount(model, CoreParams{});
    std::vector<std::set<std::uint64_t>> chains(3);
    for (std::uint32_t rep = 0; rep < 3; ++rep) {
        EXPECT_EQ(mapping->embeddingCores(rep).size(), reserved);
        for (const auto &c : mapping->embeddingCores(rep))
            EXPECT_TRUE(chains[rep].insert(geom.coreIndex(c)).second);
        for (std::uint64_t b = 0; b < model.numBlocks; ++b) {
            const auto &p = mapping->placement(b, rep);
            for (const auto *pool :
                 {&p.weightCores, &p.scoreCores, &p.contextCores}) {
                for (const auto &c : *pool) {
                    EXPECT_TRUE(
                            chains[rep].insert(geom.coreIndex(c))
                                    .second);
                }
            }
        }
        EXPECT_EQ(chains[rep].size(), mapping->chainActiveCores(rep));
    }
    for (std::uint32_t a = 0; a < 3; ++a) {
        for (std::uint32_t b = a + 1; b < 3; ++b) {
            std::vector<std::uint64_t> common;
            std::set_intersection(chains[a].begin(), chains[a].end(),
                                  chains[b].begin(), chains[b].end(),
                                  std::back_inserter(common));
            EXPECT_TRUE(common.empty())
                << "chains " << a << " and " << b << " share cores";
        }
    }
}

TEST(WaferMappingTest, EmbeddingLayoutsIdenticalAtOneReplica)
{
    // With a single chain the shared and per-chain layouts are the
    // same layout - bit-identical placements, reservations and
    // costs.
    const WaferGeometry geom;
    const ModelConfig model = tinyModel();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    opts.sharedEmbedding = false;
    const auto per_chain = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            opts);
    opts.sharedEmbedding = true;
    const auto shared = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            opts);
    ASSERT_TRUE(per_chain && shared);
    EXPECT_EQ(per_chain->embeddingCores(), shared->embeddingCores());
    for (std::uint64_t b = 0; b < model.numBlocks; ++b) {
        const auto &p = per_chain->placement(b);
        const auto &s = shared->placement(b);
        EXPECT_EQ(p.weightCores, s.weightCores);
        EXPECT_EQ(p.scoreCores, s.scoreCores);
        EXPECT_EQ(p.contextCores, s.contextCores);
        EXPECT_EQ(p.mappingCost, s.mappingCost);
    }
    EXPECT_EQ(per_chain->totalByteHops(), shared->totalByteHops());
}

TEST(Congruence, TranslateSharesFlowCsr)
{
    // The satellite contract: congruentTranslate shares block 0's
    // immutable flow CSR (O(1) in flow size), it does not copy it.
    const WaferGeometry geom;
    const auto order = geom.sShapedOrder();
    const MappingProblem fresh(
            tinyModel(), CoreParams{}, geom,
            std::vector<CoreCoord>(order.begin(), order.begin() + 96));
    const MappingProblem translated = fresh.congruentTranslate(
            std::vector<CoreCoord>(order.begin() + 96,
                                   order.begin() + 192));
    EXPECT_TRUE(translated.sharesFlowGraphWith(fresh));
    // Chained translations keep sharing the original CSR.
    const MappingProblem chained = translated.congruentTranslate(
            std::vector<CoreCoord>(order.begin() + 192,
                                   order.begin() + 288));
    EXPECT_TRUE(chained.sharesFlowGraphWith(fresh));
    // An independently built problem has its own CSR even though the
    // contents are equal.
    const MappingProblem other(
            tinyModel(), CoreParams{}, geom,
            std::vector<CoreCoord>(order.begin(), order.begin() + 96));
    EXPECT_FALSE(other.sharesFlowGraphWith(fresh));
    EXPECT_EQ(other.flowEdges(), fresh.flowEdges());
}

TEST(WaferMappingTest, RegionSizeArithmetic)
{
    EXPECT_EQ(regionSize(4, 100, 20), 20u);
    EXPECT_EQ(regionSize(1, 7, 0), 7u);
    EXPECT_EQ(regionSize(3, 10, 1), 3u);
}

TEST(WaferMappingTest, InterBlockFlowsRoutedSeparately)
{
    // totalByteHops = per-region mapping costs + the routed
    // inter-block activation flows, with the latter reported on its
    // own so region costs stay comparable.
    const WaferGeometry geom;
    const ModelConfig model = tinyModel();
    WaferMappingOptions opts;
    opts.mapper = MapperKind::Greedy;
    const auto mapping = WaferMapping::build(
            model, CoreParams{}, geom, nullptr, 0, model.numBlocks,
            opts);
    ASSERT_TRUE(mapping.has_value());
    ASSERT_GE(mapping->numBlocks(), 2u);
    EXPECT_GT(mapping->interBlockByteHops(), 0.0);
    double region_costs = 0.0;
    for (std::uint64_t b = 0; b < model.numBlocks; ++b)
        region_costs += mapping->placement(b).mappingCost;
    EXPECT_DOUBLE_EQ(mapping->totalByteHops(),
                     region_costs + mapping->interBlockByteHops());
}

TEST(Remap, RouteAwareMatchesCleanMeshPricing)
{
    // On a defect-free mesh the route-aware overload walks the same
    // Manhattan paths as the NocParams formula.
    BlockPlacement a;
    a.weightCores = {{0, 0}, {0, 1}, {0, 2}};
    a.scoreCores = {{0, 3}};
    BlockPlacement b = a;
    const WaferGeometry geom;
    const NocParams params;
    const MeshNoc mesh(geom, params);
    const auto via_params =
        recoverCoreFailure(a, {0, 0}, geom, params, 4 * MiB);
    const auto via_mesh = recoverCoreFailure(b, {0, 0}, mesh, 4 * MiB);
    ASSERT_TRUE(via_params && via_mesh);
    EXPECT_EQ(via_params->moves, via_mesh->moves);
    EXPECT_DOUBLE_EQ(via_params->latencySeconds,
                     via_mesh->latencySeconds);
    EXPECT_EQ(a.weightCores, b.weightCores);
}

TEST(Remap, RouteAwarePricesDetours)
{
    // A defect forcing a detour raises the route-aware latency above
    // the clean-mesh estimate (more hops of head latency).
    BlockPlacement clean_p;
    clean_p.weightCores = {{0, 0}};
    clean_p.scoreCores = {{0, 4}};
    BlockPlacement faulty_p = clean_p;
    const WaferGeometry geom;
    const NocParams params;
    const MeshNoc clean(geom, params);
    DefectMap defects(geom);
    defects.inject({0, 2}); // on the direct path
    const MeshNoc faulty(geom, params, &defects);
    const auto fast =
        recoverCoreFailure(clean_p, {0, 0}, clean, 4 * MiB);
    const auto slow =
        recoverCoreFailure(faulty_p, {0, 0}, faulty, 4 * MiB);
    ASSERT_TRUE(fast && slow);
    EXPECT_GT(slow->latencySeconds, fast->latencySeconds);
}

TEST(Remap, KvCoreFailureDropsFromPool)
{
    BlockPlacement placement;
    placement.weightCores = {{0, 0}, {0, 1}};
    placement.scoreCores = {{1, 0}, {1, 1}};
    placement.contextCores = {{2, 0}};
    const WaferGeometry geom;
    const auto result = recoverCoreFailure(placement, {1, 1}, geom,
                                           NocParams{}, 4 * MiB);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->moves.empty());
    EXPECT_EQ(placement.scoreCores.size(), 1u);
}

TEST(Remap, WeightFailureShiftsChainIntoKv)
{
    BlockPlacement placement;
    placement.weightCores = {{0, 0}, {0, 1}, {0, 2}};
    placement.scoreCores = {{0, 3}};
    placement.contextCores = {{5, 5}};
    const WaferGeometry geom;
    const auto result = recoverCoreFailure(placement, {0, 0}, geom,
                                           NocParams{}, 4 * MiB);
    ASSERT_TRUE(result.has_value());
    // The nearest KV core (0,3) absorbs; chain (0,1),(0,2) shifts.
    EXPECT_EQ(result->absorbedKvCore, (CoreCoord{0, 3}));
    EXPECT_EQ(result->moves.size(), 3u);
    // Weight cores now: tile0 on (0,1)'s old... every tile lives on a
    // non-failed core and all are distinct.
    std::set<std::uint64_t> cores;
    for (const auto &c : placement.weightCores) {
        EXPECT_FALSE(c == (CoreCoord{0, 0}));
        cores.insert(geom.coreIndex(c));
    }
    EXPECT_EQ(cores.size(), 3u);
    // (0,3) is no longer a KV core.
    EXPECT_TRUE(placement.scoreCores.empty());
    EXPECT_EQ(placement.contextCores.size(), 1u);
}

TEST(Remap, LatencySubMillisecond)
{
    BlockPlacement placement;
    placement.weightCores = {{0, 0}, {0, 1}, {0, 2}, {1, 2}};
    placement.scoreCores = {{1, 3}};
    const WaferGeometry geom;
    const auto result = recoverCoreFailure(placement, {0, 0}, geom,
                                           NocParams{}, 4 * MiB);
    ASSERT_TRUE(result.has_value());
    EXPECT_LT(result->latencySeconds, 1e-3); // the paper's sub-ms claim
    EXPECT_GT(result->latencySeconds, 0.0);
}

TEST(Remap, UnknownCoreReturnsNullopt)
{
    BlockPlacement placement;
    placement.weightCores = {{0, 0}};
    placement.scoreCores = {{0, 1}};
    const WaferGeometry geom;
    EXPECT_FALSE(recoverCoreFailure(placement, {9, 9}, geom,
                                    NocParams{}, 4 * MiB)
                         .has_value());
}

TEST(Remap, NoKvCoreLeftReturnsNullopt)
{
    BlockPlacement placement;
    placement.weightCores = {{0, 0}, {0, 1}};
    const WaferGeometry geom;
    EXPECT_FALSE(recoverCoreFailure(placement, {0, 0}, geom,
                                    NocParams{}, 4 * MiB)
                         .has_value());
}

/** Property: recovery preserves the tile count and core uniqueness. */
class RemapPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RemapPropertyTest, PreservesTilesAndUniqueness)
{
    const int which = GetParam();
    BlockPlacement placement;
    for (std::uint32_t i = 0; i < 6; ++i)
        placement.weightCores.push_back({0, i});
    placement.scoreCores = {{1, 0}, {1, 3}};
    placement.contextCores = {{1, 5}};
    const WaferGeometry geom;
    const CoreCoord failed{0, static_cast<std::uint32_t>(which)};
    const auto result = recoverCoreFailure(placement, failed, geom,
                                           NocParams{}, 4 * MiB);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(placement.weightCores.size(), 6u);
    std::set<std::uint64_t> unique;
    for (const auto &c : placement.weightCores) {
        EXPECT_FALSE(c == failed);
        unique.insert(geom.coreIndex(c));
    }
    EXPECT_EQ(unique.size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(FailEachWeightCore, RemapPropertyTest,
                         ::testing::Range(0, 6));

/** Random placement over a shuffled coordinate window. */
BlockPlacement
randomPlacement(Rng &rng, std::uint32_t window, std::size_t weights,
                std::size_t score, std::size_t context)
{
    std::vector<CoreCoord> cores;
    for (std::uint32_t r = 0; r < window; ++r) {
        for (std::uint32_t c = 0; c < window; ++c)
            cores.push_back({r, c});
    }
    shuffleWith(rng, cores);
    BlockPlacement placement;
    auto it = cores.begin();
    placement.weightCores.assign(it, it + weights);
    it += weights;
    placement.scoreCores.assign(it, it + score);
    it += score;
    placement.contextCores.assign(it, it + context);
    return placement;
}

TEST(RecoveryIndexTest, MatchesScanOnRandomizedPlacements)
{
    // The spatial index must reproduce the oracle scan exactly -
    // moves, absorbed core, latency bits - across whole random
    // failure sequences, with the index carried through every
    // mutation.
    const WaferGeometry geom;
    const NocParams params;
    for (int trial = 0; trial < 6; ++trial) {
        Rng rng(500 + trial);
        BlockPlacement scan_p =
            randomPlacement(rng, 20, 60, 20, 20);
        BlockPlacement idx_p = scan_p;
        RecoveryIndex index(idx_p);

        for (int round = 0; round < 15; ++round) {
            std::vector<CoreCoord> alive;
            alive.insert(alive.end(), scan_p.weightCores.begin(),
                         scan_p.weightCores.end());
            alive.insert(alive.end(), scan_p.scoreCores.begin(),
                         scan_p.scoreCores.end());
            alive.insert(alive.end(), scan_p.contextCores.begin(),
                         scan_p.contextCores.end());
            const CoreCoord failed =
                alive[rng.uniformInt(0, alive.size() - 1)];

            const auto scan = recoverCoreFailure(
                    scan_p, failed, geom, params, 4 * MiB);
            const auto fast = recoverCoreFailure(
                    idx_p, failed, geom, params, 4 * MiB, &index);
            ASSERT_EQ(scan.has_value(), fast.has_value());
            if (!scan)
                break; // no KV core left to absorb
            EXPECT_EQ(scan->moves, fast->moves);
            EXPECT_EQ(scan->absorbedKvCore, fast->absorbedKvCore);
            EXPECT_EQ(scan->chainLength, fast->chainLength);
            EXPECT_EQ(scan->movedBytes, fast->movedBytes);
            // Same moves, same pricing: the latency must match to
            // the last bit, not just approximately.
            EXPECT_EQ(scan->latencySeconds, fast->latencySeconds);
            ASSERT_EQ(scan_p.weightCores, idx_p.weightCores);
            ASSERT_EQ(scan_p.scoreCores, idx_p.scoreCores);
            ASSERT_EQ(scan_p.contextCores, idx_p.contextCores);
        }
    }
}

TEST(RecoveryIndexTest, MatchesScanOnRouteAwareOverload)
{
    // Same pinning through the MeshNoc overload, with defects forcing
    // detour pricing.
    const WaferGeometry geom;
    DefectMap defects(geom);
    Rng rng(911);
    for (int d = 0; d < 10; ++d) {
        defects.inject({static_cast<std::uint32_t>(
                                rng.uniformInt(0, 19)),
                        static_cast<std::uint32_t>(
                                rng.uniformInt(0, 19))});
    }
    const MeshNoc noc(geom, NocParams{}, &defects);
    BlockPlacement scan_p = randomPlacement(rng, 16, 40, 12, 12);
    BlockPlacement idx_p = scan_p;
    RecoveryIndex index(idx_p);
    for (int round = 0; round < 10; ++round) {
        const CoreCoord failed = scan_p.weightCores[
                rng.uniformInt(0, scan_p.weightCores.size() - 1)];
        const auto scan =
            recoverCoreFailure(scan_p, failed, noc, 4 * MiB);
        const auto fast = recoverCoreFailure(idx_p, failed, noc,
                                             4 * MiB, &index);
        ASSERT_EQ(scan.has_value(), fast.has_value());
        if (!scan)
            break;
        EXPECT_EQ(scan->moves, fast->moves);
        EXPECT_EQ(scan->latencySeconds, fast->latencySeconds);
        ASSERT_EQ(scan_p.weightCores, idx_p.weightCores);
        ASSERT_EQ(scan_p.scoreCores, idx_p.scoreCores);
        ASSERT_EQ(scan_p.contextCores, idx_p.contextCores);
    }
}

TEST(RecoveryIndexTest, UnknownCoreLeavesIndexUntouched)
{
    BlockPlacement placement;
    placement.weightCores = {{0, 0}, {0, 1}};
    placement.scoreCores = {{1, 0}};
    RecoveryIndex index(placement);
    const WaferGeometry geom;
    EXPECT_FALSE(recoverCoreFailure(placement, {9, 9}, geom,
                                    NocParams{}, 4 * MiB, &index)
                         .has_value());
    EXPECT_EQ(index.weightCount(), 2u);
    EXPECT_EQ(index.kvCount(), 1u);
    // And a real recovery still works through the same index.
    const auto result = recoverCoreFailure(
            placement, {0, 0}, geom, NocParams{}, 4 * MiB, &index);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(index.kvCount(), 0u);
}

} // namespace
} // namespace ouro
