/**
 * @file
 * Unit tests for the model module: preset geometries, weight/KV/MAC
 * accounting, the six-stage split, and attention-mask readiness rules.
 */

#include <gtest/gtest.h>

#include "model/llm.hh"
#include "model/masks.hh"
#include "model/stages.hh"

namespace ouro
{
namespace
{

TEST(ModelPresets, Llama13bGeometry)
{
    const ModelConfig cfg = llama13b();
    EXPECT_EQ(cfg.numBlocks, 40u);
    EXPECT_EQ(cfg.hiddenDim, 5120u);
    EXPECT_EQ(cfg.numHeads, 40u);
    EXPECT_EQ(cfg.headDim, 128u);
    EXPECT_EQ(cfg.attention, AttentionKind::Causal);
}

TEST(ModelPresets, ParameterCountsNearNominal)
{
    // int8 weights: parameter count == weight bytes. Each preset
    // should land within 20% of its nameplate size.
    EXPECT_NEAR(llama13b().parameterCount() / 1e9, 13.0, 13.0 * 0.2);
    EXPECT_NEAR(llama65b().parameterCount() / 1e9, 65.0, 65.0 * 0.2);
    EXPECT_NEAR(baichuan13b().parameterCount() / 1e9, 13.0,
                13.0 * 0.25);
    EXPECT_NEAR(qwen32b().parameterCount() / 1e9, 32.0, 32.0 * 0.25);
    EXPECT_NEAR(llama32b().parameterCount() / 1e9, 32.0, 32.0 * 0.25);
    EXPECT_NEAR(t5_11b().parameterCount() / 1e9, 11.0, 11.0 * 0.3);
    EXPECT_NEAR(bertLarge().parameterCount() / 1e9, 0.34, 0.34 * 0.3);
}

TEST(ModelPresets, QwenUsesGqa)
{
    const ModelConfig cfg = qwen32b();
    EXPECT_LT(cfg.numKvHeads, cfg.numHeads);
    EXPECT_EQ(cfg.kvDim(), cfg.numKvHeads * cfg.headDim);
}

TEST(ModelPresets, EncoderMaskKinds)
{
    EXPECT_EQ(bertLarge().attention, AttentionKind::Bidirectional);
    EXPECT_EQ(t5_11b().attention, AttentionKind::Prefix);
}

TEST(ModelConfig, BlockLayersSwiGlu)
{
    const auto layers = llama13b().blockLayers();
    ASSERT_EQ(layers.size(), 5u); // qkv, proj, gate, up, down
    EXPECT_EQ(layers[0].name, "qkv");
    EXPECT_EQ(layers[2].name, "ffn_gate");
    EXPECT_EQ(layers[4].inDim, llama13b().ffnDim);
    EXPECT_EQ(layers[4].outDim, llama13b().hiddenDim);
}

TEST(ModelConfig, BlockLayersClassicFfn)
{
    const auto layers = bertLarge().blockLayers();
    ASSERT_EQ(layers.size(), 4u); // qkv, proj, ffn1, ffn2
    EXPECT_EQ(layers[2].name, "ffn1");
}

TEST(ModelConfig, WeightBytesConsistent)
{
    const ModelConfig cfg = llama13b();
    Bytes sum = 0;
    for (const auto &layer : cfg.blockLayers())
        sum += layer.weightBytes(cfg.bytesPerParam);
    EXPECT_EQ(cfg.blockWeightBytes(), sum);
    EXPECT_GT(cfg.totalWeightBytes(),
              cfg.numBlocks * cfg.blockWeightBytes());
}

TEST(ModelConfig, KvBytesPerToken)
{
    const ModelConfig cfg = llama13b();
    // 2 (K and V) * kvDim * 1 byte * blocks
    EXPECT_EQ(cfg.kvBytesPerTokenPerBlock(), 2 * 5120u);
    EXPECT_EQ(cfg.kvBytesPerToken(), 40u * 2 * 5120u);
}

TEST(ModelConfig, MacsGrowWithContext)
{
    const ModelConfig cfg = llama13b();
    EXPECT_GT(cfg.blockMacsPerToken(2048), cfg.blockMacsPerToken(1));
    const double dense_only = cfg.blockMacsPerToken(0);
    // At zero context only the dense layers contribute.
    double expect = 0.0;
    for (const auto &layer : cfg.blockLayers())
        expect += static_cast<double>(layer.inDim) *
                  static_cast<double>(layer.outDim);
    EXPECT_DOUBLE_EQ(dense_only, expect);
}

TEST(DenseModel, ScalesWithRequestedSize)
{
    for (double b : {7.0, 13.0, 19.5, 32.0, 65.0, 130.0}) {
        const ModelConfig cfg = denseModel(b);
        EXPECT_NEAR(cfg.parameterCount() / 1e9, b, b * 0.30)
            << "size " << b;
    }
    EXPECT_LT(denseModel(7).parameterCount(),
              denseModel(130).parameterCount());
}

TEST(Stages, SixStagesPerBlock)
{
    EXPECT_EQ(kStagesPerBlock, 6u);
    const ModelConfig cfg = llama13b();
    EXPECT_EQ(numPipelineStages(cfg), 240u);
}

TEST(Stages, WeightBearingStages)
{
    EXPECT_TRUE(stageHoldsWeights(StageKind::QkvGen));
    EXPECT_TRUE(stageHoldsWeights(StageKind::Projection));
    EXPECT_TRUE(stageHoldsWeights(StageKind::Ffn));
    EXPECT_FALSE(stageHoldsWeights(StageKind::Score));
    EXPECT_FALSE(stageHoldsWeights(StageKind::Softmax));
    EXPECT_FALSE(stageHoldsWeights(StageKind::Context));
}

TEST(Stages, AttentionStages)
{
    EXPECT_TRUE(stageIsAttention(StageKind::Score));
    EXPECT_TRUE(stageIsAttention(StageKind::Softmax));
    EXPECT_TRUE(stageIsAttention(StageKind::Context));
    EXPECT_FALSE(stageIsAttention(StageKind::QkvGen));
    EXPECT_FALSE(stageIsAttention(StageKind::Ffn));
}

TEST(Stages, ScoreWorkGrowsWithContext)
{
    const ModelConfig cfg = llama13b();
    const StageWork at1 = stageWork(cfg, StageKind::Score, 1);
    const StageWork at1k = stageWork(cfg, StageKind::Score, 1024);
    EXPECT_GT(at1k.macs, at1.macs);
    EXPECT_DOUBLE_EQ(at1k.macs, 1024.0 * at1.macs);
    EXPECT_GT(at1k.kvReadBytes, at1.kvReadBytes);
}

TEST(Stages, DenseWorkContextInvariant)
{
    const ModelConfig cfg = llama13b();
    for (StageKind kind : {StageKind::QkvGen, StageKind::Projection,
                           StageKind::Ffn}) {
        EXPECT_DOUBLE_EQ(stageWork(cfg, kind, 1).macs,
                         stageWork(cfg, kind, 4096).macs)
            << stageKindName(kind);
    }
}

TEST(Stages, QkvWritesKv)
{
    const ModelConfig cfg = llama13b();
    const StageWork work = stageWork(cfg, StageKind::QkvGen, 128);
    EXPECT_EQ(work.kvWriteBytes, cfg.kvBytesPerTokenPerBlock());
    EXPECT_EQ(stageWork(cfg, StageKind::Ffn, 128).kvWriteBytes, 0u);
}

TEST(Stages, SoftmaxIsSfuOnly)
{
    const ModelConfig cfg = llama13b();
    const StageWork work = stageWork(cfg, StageKind::Softmax, 512);
    EXPECT_DOUBLE_EQ(work.macs, 0.0);
    EXPECT_GT(work.sfuOps, 0.0);
}

TEST(Stages, BlockWorkMacsMatchModelTotal)
{
    const ModelConfig cfg = llama13b();
    const std::uint64_t ctx = 777;
    const auto works = blockWork(cfg, ctx);
    double macs = 0.0;
    for (const auto &w : works)
        macs += w.macs;
    EXPECT_NEAR(macs, cfg.blockMacsPerToken(ctx), 1.0);
}

TEST(Stages, StageIdRoundTrip)
{
    const StageId id{7, StageKind::Context};
    EXPECT_EQ(id.flat(), 7u * 6 + 3);
    const StageId back = StageId::fromFlat(id.flat());
    EXPECT_EQ(back, id);
}

TEST(Masks, CausalReadyImmediately)
{
    for (std::uint64_t t : {0ull, 5ull, 127ull, 2047ull}) {
        EXPECT_EQ(attentionReadyPosition(AttentionKind::Causal, t, 128),
                  t);
    }
}

TEST(Masks, BidirectionalNeedsWholePrompt)
{
    EXPECT_EQ(attentionReadyPosition(AttentionKind::Bidirectional, 0,
                                     128), 127u);
    EXPECT_EQ(attentionReadyPosition(AttentionKind::Bidirectional, 100,
                                     128), 127u);
}

TEST(Masks, PrefixMixesBoth)
{
    // Inside the prefix: wait for the full prefix.
    EXPECT_EQ(attentionReadyPosition(AttentionKind::Prefix, 3, 128),
              127u);
    // Generated continuation: causal.
    EXPECT_EQ(attentionReadyPosition(AttentionKind::Prefix, 200, 128),
              200u);
}

TEST(Masks, AttendedContextCausal)
{
    EXPECT_EQ(attendedContext(AttentionKind::Causal, 0, 16), 1u);
    EXPECT_EQ(attendedContext(AttentionKind::Causal, 15, 16), 16u);
}

TEST(Masks, PureTgpOnlyForCausal)
{
    EXPECT_TRUE(masksAllowPureTgp(AttentionKind::Causal));
    EXPECT_FALSE(masksAllowPureTgp(AttentionKind::Bidirectional));
    EXPECT_FALSE(masksAllowPureTgp(AttentionKind::Prefix));
}

/** Parameterised sweep: MAC totals are monotone in context length. */
class MacMonotoneTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MacMonotoneTest, MonotoneInContext)
{
    const ModelConfig cfg = llama13b();
    const std::uint64_t ctx = GetParam();
    EXPECT_LE(cfg.blockMacsPerToken(ctx),
              cfg.blockMacsPerToken(ctx + 64));
}

INSTANTIATE_TEST_SUITE_P(ContextSweep, MacMonotoneTest,
                         ::testing::Values(0, 1, 16, 128, 1024, 4095));

/** Parameterised property: every preset fits basic sanity bounds. */
class PresetSanityTest : public ::testing::TestWithParam<int>
{
  public:
    static ModelConfig modelFor(int idx)
    {
        switch (idx) {
          case 0: return llama13b();
          case 1: return llama32b();
          case 2: return llama65b();
          case 3: return baichuan13b();
          case 4: return qwen32b();
          case 5: return t5_11b();
          default: return bertLarge();
        }
    }
};

TEST_P(PresetSanityTest, GeometryInvariants)
{
    const ModelConfig cfg = modelFor(GetParam());
    EXPECT_GT(cfg.numBlocks, 0u);
    EXPECT_GT(cfg.hiddenDim, 0u);
    EXPECT_EQ(cfg.numHeads % cfg.numKvHeads, 0u) << cfg.name;
    EXPECT_GT(cfg.ffnDim, cfg.hiddenDim) << cfg.name;
    EXPECT_GT(cfg.blockWeightBytes(), 0u);
    EXPECT_GT(cfg.kvBytesPerToken(), 0u);
    // Every layer keeps positive dims.
    for (const auto &layer : cfg.blockLayers()) {
        EXPECT_GT(layer.inDim, 0u) << cfg.name << ":" << layer.name;
        EXPECT_GT(layer.outDim, 0u) << cfg.name << ":" << layer.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetSanityTest,
                         ::testing::Range(0, 7));

} // namespace
} // namespace ouro
