/**
 * @file
 * PR 9 serving-through-failures tests: FailureInjector purity and
 * monotonicity, engine-level KvPoolEvent handling (storm evictions,
 * mid-run adopts, the throughput histogram), the zero-failure
 * bit-identity oracle (cohort fast path on AND off), and whole-run
 * storm replay determinism through runStormServing.
 */

#include <gtest/gtest.h>

#include "pipeline/engine.hh"
#include "sim/failure_injector.hh"
#include "sim/storm_run.hh"
#include "sim/system.hh"
#include "workload/requests.hh"

namespace ouro
{
namespace
{

/** Mirrors the test_pipeline.cc fixtures (anonymous there). */
ModelConfig
pipeModel()
{
    ModelConfig cfg;
    cfg.name = "storm-test";
    cfg.numBlocks = 8;
    cfg.hiddenDim = 512;
    cfg.numHeads = 4;
    cfg.numKvHeads = 4;
    cfg.headDim = 128;
    cfg.ffnDim = 1024;
    cfg.ffnMatrices = 2;
    cfg.vocabSize = 100;
    cfg.bytesPerParam = 1;
    cfg.attention = AttentionKind::Causal;
    cfg.maxContext = 4096;
    return cfg;
}

StageTiming
uniformTiming(double fixed = 1e-6, double per_ctx = 1e-9)
{
    StageTiming timing;
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        timing.fixedSeconds[s] = fixed;
        const auto kind = static_cast<StageKind>(s);
        timing.perContextSeconds[s] =
            stageIsAttention(kind) ? per_ctx : 0.0;
    }
    return timing;
}

std::vector<KvCoreInfo>
bigPool(std::uint32_t cores = 64, std::uint32_t base = 0)
{
    std::vector<KvCoreInfo> infos;
    for (std::uint32_t i = 0; i < cores; ++i)
        infos.push_back({{base, i}, 32, 8});
    return infos;
}

BlockKvManager
bigKv(const ModelConfig &cfg)
{
    return BlockKvManager(cfg, bigPool(64, 0), bigPool(64, 1));
}

/** Every field of two PipelineStats must agree exactly. */
bool
sameStats(const PipelineStats &a, const PipelineStats &b)
{
    return a.makespanSeconds == b.makespanSeconds &&
           a.tokensProcessed == b.tokensProcessed &&
           a.outputTokens == b.outputTokens &&
           a.bottleneckBusySeconds == b.bottleneckBusySeconds &&
           a.utilization == b.utilization &&
           a.bubbleFraction == b.bubbleFraction &&
           a.evictions == b.evictions &&
           a.recomputedTokens == b.recomputedTokens &&
           a.stormEvictions == b.stormEvictions &&
           a.stormReprefilledTokens == b.stormReprefilledTokens &&
           a.skippedRequests == b.skippedRequests &&
           a.peakConcurrency == b.peakConcurrency &&
           a.avgContext == b.avgContext &&
           a.itemsProcessed == b.itemsProcessed &&
           a.contextTokensSum == b.contextTokensSum &&
           a.stageBusySumSeconds == b.stageBusySumSeconds &&
           a.ttftSamples == b.ttftSamples &&
           a.interTokenSamples == b.interTokenSamples &&
           a.outputTokenBins == b.outputTokenBins;
}

bool
sameEvents(const std::vector<KvPoolEvent> &a,
           const std::vector<KvPoolEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].time != b[i].time ||
            a[i].dropCores.size() != b[i].dropCores.size() ||
            a[i].adopts.size() != b[i].adopts.size())
            return false;
        for (std::size_t j = 0; j < a[i].dropCores.size(); ++j) {
            if (!(a[i].dropCores[j] == b[i].dropCores[j]))
                return false;
        }
        for (std::size_t j = 0; j < a[i].adopts.size(); ++j) {
            const auto &x = a[i].adopts[j];
            const auto &y = b[i].adopts[j];
            if (!(x.info.coord == y.info.coord) ||
                x.info.crossbars != y.info.crossbars ||
                x.info.blocksPerCrossbar !=
                        y.info.blocksPerCrossbar ||
                x.scoreDuty != y.scoreDuty)
                return false;
        }
    }
    return true;
}

TEST(FailureInjector, TimesStrictlyIncreasingWithinWindow)
{
    FailureInjectorParams p;
    p.failures = 200;
    p.stormStart = 3.5;
    p.stormDuration = 2.0;
    p.seed = 77;
    const FailureInjector inj(p);
    double prev = -1.0;
    for (std::uint64_t k = 0; k < p.failures; ++k) {
        const double t = inj.failureTime(k);
        EXPECT_GT(t, prev);
        EXPECT_GE(t, p.stormStart);
        EXPECT_LT(t, p.stormStart + p.stormDuration);
        prev = t;
    }
}

TEST(FailureInjector, AccessorsArePureAndOrderIndependent)
{
    // Counter-seeded purity: two injectors with identical params
    // yield identical draws no matter which accessor is called
    // first, how often, or in what k order.
    FailureInjectorParams p;
    p.failures = 64;
    p.stormDuration = 5.0;
    p.seed = 12345;
    const FailureInjector a(p);
    const FailureInjector b(p);
    // Warm b in a scrambled order first.
    for (std::uint64_t k = p.failures; k-- > 0;) {
        (void)b.pick(k, 17);
        (void)b.weightDuty(k);
        (void)b.failureTime(k);
    }
    for (std::uint64_t k = 0; k < p.failures; ++k) {
        EXPECT_EQ(a.failureTime(k), b.failureTime(k));
        EXPECT_EQ(a.weightDuty(k), b.weightDuty(k));
        EXPECT_EQ(a.pick(k, 17), b.pick(k, 17));
        EXPECT_LT(a.pick(k, 17), 17u);
        // Repeated calls are stable too (no hidden stream state).
        EXPECT_EQ(a.failureTime(k), a.failureTime(k));
    }
}

TEST(FailureInjector, DutyCoinFollowsFraction)
{
    FailureInjectorParams p;
    p.failures = 400;
    p.seed = 9;
    p.weightFailureFraction = 0.0;
    const FailureInjector never(p);
    p.weightFailureFraction = 1.0;
    const FailureInjector always(p);
    std::uint64_t mixed_hits = 0;
    p.weightFailureFraction = 0.5;
    const FailureInjector mixed(p);
    for (std::uint64_t k = 0; k < p.failures; ++k) {
        EXPECT_FALSE(never.weightDuty(k));
        EXPECT_TRUE(always.weightDuty(k));
        mixed_hits += mixed.weightDuty(k) ? 1 : 0;
    }
    // Law of large numbers, loose bounds.
    EXPECT_GT(mixed_hits, 120u);
    EXPECT_LT(mixed_hits, 280u);
}

TEST(FailureInjector, SeedChangesSchedule)
{
    FailureInjectorParams p;
    p.failures = 32;
    p.seed = 1;
    const FailureInjector a(p);
    p.seed = 2;
    const FailureInjector b(p);
    bool any_diff = false;
    for (std::uint64_t k = 0; k < p.failures; ++k)
        any_diff = any_diff || a.failureTime(k) != b.failureTime(k);
    EXPECT_TRUE(any_diff);
}

TEST(StormEngine, NullAndEmptyScheduleBitIdentical)
{
    // The zero-failure oracle at the engine level: a null schedule,
    // an empty schedule, and the pre-PR-9 default must all produce
    // bit-identical stats - with the cohort fast path on and off.
    const ModelConfig cfg = pipeModel();
    const Workload w = fixedWorkload(64, 48, 40);
    const std::vector<KvPoolEvent> empty_schedule;
    for (const bool cohort : {true, false}) {
        PipelineOptions base;
        base.cohortFastPath = cohort;
        auto kv_a = bigKv(cfg);
        const auto plain =
            runPipeline(w, cfg, uniformTiming(), kv_a, base);

        PipelineOptions with_null = base;
        with_null.stormSchedule = nullptr;
        auto kv_b = bigKv(cfg);
        const auto null_run =
            runPipeline(w, cfg, uniformTiming(), kv_b, with_null);

        PipelineOptions with_empty = base;
        with_empty.stormSchedule = &empty_schedule;
        auto kv_c = bigKv(cfg);
        const auto empty_run =
            runPipeline(w, cfg, uniformTiming(), kv_c, with_empty);

        EXPECT_TRUE(sameStats(plain, null_run));
        EXPECT_TRUE(sameStats(plain, empty_run));
        EXPECT_EQ(plain.stormEvictions, 0u);
        EXPECT_EQ(plain.stormReprefilledTokens, 0u);
    }
}

TEST(StormEngine, DropEvictsAndWorkStillCompletes)
{
    // A mid-run drop storm-evicts the residents on the dropped
    // cores; they re-enter the queue, re-prefill, and the run still
    // finishes every request (nothing silently lost).
    const ModelConfig cfg = pipeModel();
    const Workload w = fixedWorkload(64, 48, 40);
    auto kv_plain = bigKv(cfg);
    const auto plain =
        runPipeline(w, cfg, uniformTiming(), kv_plain, {});
    ASSERT_EQ(plain.outputTokens, w.totalOutputTokens());

    std::vector<KvPoolEvent> schedule(1);
    schedule[0].time = plain.makespanSeconds * 0.5;
    for (std::uint32_t i = 0; i < 8; ++i)
        schedule[0].dropCores.push_back({0, i});
    PipelineOptions opts;
    opts.stormSchedule = &schedule;
    auto kv = bigKv(cfg);
    const auto storm = runPipeline(w, cfg, uniformTiming(), kv, opts);

    EXPECT_GT(storm.stormEvictions, 0u);
    EXPECT_GT(storm.stormReprefilledTokens, 0u);
    EXPECT_GE(storm.recomputedTokens, storm.stormReprefilledTokens);
    // Every request still completes; re-prefill inflates the token
    // count and the makespan, never deflates output.
    EXPECT_EQ(storm.outputTokens, w.totalOutputTokens());
    EXPECT_EQ(storm.skippedRequests, 0u);
    EXPECT_GT(storm.makespanSeconds, plain.makespanSeconds);
    EXPECT_EQ(kv.numResident(), 0u);
    EXPECT_EQ(kv.usedBlocks(), 0u);
}

TEST(StormEngine, AdoptGrowsPoolMidRun)
{
    const ModelConfig cfg = pipeModel();
    const Workload w = fixedWorkload(64, 32, 24);
    auto kv_plain = bigKv(cfg);
    const auto plain =
        runPipeline(w, cfg, uniformTiming(), kv_plain, {});

    std::vector<KvPoolEvent> schedule(1);
    schedule[0].time = plain.makespanSeconds * 0.5;
    schedule[0].adopts.push_back({{{7, 0}, 32, 8}, true});
    schedule[0].adopts.push_back({{{7, 1}, 32, 8}, false});
    PipelineOptions opts;
    opts.stormSchedule = &schedule;
    auto kv = bigKv(cfg);
    const auto total_before = kv.totalBlocks();
    const auto storm = runPipeline(w, cfg, uniformTiming(), kv, opts);

    EXPECT_EQ(storm.outputTokens, w.totalOutputTokens());
    EXPECT_EQ(storm.stormEvictions, 0u);
    EXPECT_EQ(kv.totalBlocks(), total_before + 2u * 32u * 8u);
}

TEST(StormEngine, CohortAndSlowPathAgreeUnderStorm)
{
    // The storm path itself must keep the fast-path bit-identity
    // contract: same schedule, cohort on vs off, identical stats.
    const ModelConfig cfg = pipeModel();
    const Workload w = fixedWorkload(32, 64, 48);
    auto kv_plain = bigKv(cfg);
    const auto plain =
        runPipeline(w, cfg, uniformTiming(), kv_plain, {});

    std::vector<KvPoolEvent> schedule(2);
    schedule[0].time = plain.makespanSeconds * 0.4;
    for (std::uint32_t i = 0; i < 6; ++i)
        schedule[0].dropCores.push_back({1, i});
    schedule[1].time = plain.makespanSeconds * 0.6;
    schedule[1].adopts.push_back({{{7, 0}, 32, 8}, false});

    PipelineStats runs[2];
    for (const bool cohort : {false, true}) {
        PipelineOptions opts;
        opts.cohortFastPath = cohort;
        opts.stormSchedule = &schedule;
        auto kv = bigKv(cfg);
        runs[cohort ? 1 : 0] =
            runPipeline(w, cfg, uniformTiming(), kv, opts);
    }
    EXPECT_TRUE(sameStats(runs[0], runs[1]));
    EXPECT_GT(runs[0].stormEvictions, 0u);
}

TEST(StormEngine, OutputTokenBinsSumToOutput)
{
    const ModelConfig cfg = pipeModel();
    const Workload w = fixedWorkload(64, 48, 40);
    auto kv_off = bigKv(cfg);
    const auto unbinned =
        runPipeline(w, cfg, uniformTiming(), kv_off, {});
    EXPECT_TRUE(unbinned.outputTokenBins.empty());

    PipelineOptions opts;
    opts.throughputBinSeconds = unbinned.makespanSeconds / 16.0;
    auto kv_on = bigKv(cfg);
    const auto binned =
        runPipeline(w, cfg, uniformTiming(), kv_on, opts);
    std::uint64_t sum = 0;
    for (const auto b : binned.outputTokenBins)
        sum += b;
    EXPECT_EQ(sum, binned.outputTokens);
    EXPECT_GE(binned.outputTokenBins.size(), 16u);
    // Binning must not perturb the simulation itself.
    PipelineStats stripped = binned;
    stripped.outputTokenBins.clear();
    EXPECT_TRUE(sameStats(stripped, unbinned));
}

TEST(StormEngine, MergeAccumulatesStormFields)
{
    PipelineStats a;
    a.stormEvictions = 3;
    a.stormReprefilledTokens = 700;
    a.outputTokenBins = {1, 2};
    PipelineStats b;
    b.stormEvictions = 4;
    b.stormReprefilledTokens = 50;
    b.outputTokenBins = {9};
    a.merge(b);
    EXPECT_EQ(a.stormEvictions, 7u);
    EXPECT_EQ(a.stormReprefilledTokens, 750u);
    EXPECT_EQ(a.outputTokenBins,
              (std::vector<std::uint64_t>{1, 2, 9}));
}

/** System-level fixtures (mirrors test_integration.cc). */
OuroborosOptions
fastOpts(std::uint64_t seed = 11)
{
    OuroborosOptions opts;
    opts.smartMapping = false;
    opts.seed = seed;
    return opts;
}

TEST(StormRun, ZeroFailureBitIdenticalToPlainServing)
{
    // Acceptance oracle (a): a storm run with zero failures is
    // bit-identical to the plain serving path - cohort on AND off.
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const Workload w = fixedWorkload(16, 48, 96);

    for (const bool cohort : {true, false}) {
        BlockKvManager kv(model, sys->scorePool(),
                          sys->contextPool(), 128,
                          sys->options().kvThreshold);
        PipelineOptions popts;
        popts.kind = PipelineKind::TokenGrained;
        popts.attentionParallelism = 16.0;
        popts.cohortFastPath = cohort;
        const auto plain = runPipeline(w, model, sys->stageTiming(),
                                       kv, popts);

        StormServingOptions sopts;
        sopts.cohortFastPath = cohort;
        const auto storm = runStormServing(*sys, w, sopts);
        EXPECT_TRUE(sameStats(plain, storm.stats));
        EXPECT_TRUE(storm.events.empty());
        EXPECT_EQ(storm.failuresInjected, 0u);
    }
}

TEST(StormRun, ReplayIsBitwiseDeterministic)
{
    // Acceptance oracle (b): same (workload, schedule seed, options)
    // -> bit-identical stats AND bit-identical resolved events.
    const ModelConfig model = llama13b();
    const auto sys = OuroborosSystem::build(model, {}, fastOpts());
    ASSERT_TRUE(sys.has_value());
    const Workload w = fixedWorkload(16, 48, 96);

    // Pin the storm window inside the run with a zero-failure probe.
    const auto probe = runStormServing(*sys, w, {});
    StormServingOptions sopts;
    sopts.injector.failures = 6;
    sopts.injector.stormStart = probe.stats.makespanSeconds * 0.3;
    sopts.injector.stormDuration = probe.stats.makespanSeconds * 0.2;
    sopts.injector.seed = 42;

    const auto first = runStormServing(*sys, w, sopts);
    const auto second = runStormServing(*sys, w, sopts);
    EXPECT_EQ(first.failuresInjected, 6u);
    EXPECT_EQ(first.failuresInjected, second.failuresInjected);
    EXPECT_EQ(first.failuresHandled, second.failuresHandled);
    EXPECT_EQ(first.failuresSkipped, second.failuresSkipped);
    EXPECT_EQ(first.kvCoresLost, second.kvCoresLost);
    EXPECT_EQ(first.kvCoresAdopted, second.kvCoresAdopted);
    EXPECT_EQ(first.borrows, second.borrows);
    EXPECT_TRUE(sameEvents(first.events, second.events));
    EXPECT_TRUE(sameStats(first.stats, second.stats));
    // The schedule actually resolved into pool events on the clock.
    EXPECT_GT(first.failuresHandled, 0u);
    EXPECT_FALSE(first.events.empty());
    // All admitted work still completes through the storm.
    EXPECT_EQ(first.stats.outputTokens, w.totalOutputTokens());
}

} // namespace
} // namespace ouro
