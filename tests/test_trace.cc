/**
 * @file
 * Property tests for the streaming day-trace generator, above all
 * the contract the sampled-window simulator stands on: materializing
 * any [t0, t1) window is BIT-IDENTICAL to generating the whole day
 * and slicing it, because every request is a pure function of
 * (params, index) and window membership is decided in quantile
 * space. Plus seed-stability golden pins (a silent change to the
 * counter-seeding or the distributions would invalidate every
 * recorded benchmark) and the rate-integral property |window count -
 * expected arrivals| <= 2.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/trace.hh"

namespace ouro
{
namespace
{

DayTraceParams
smallParams(std::uint64_t requests = 3000, std::uint64_t seed = 7)
{
    DayTraceParams p;
    p.requests = requests;
    p.seed = seed;
    return p;
}

void
expectSameRequests(const std::vector<Request> &a,
                   const std::vector<Request> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].prefillLen, b[i].prefillLen);
        EXPECT_EQ(a[i].decodeLen, b[i].decodeLen);
    }
}

TEST(DayTrace, WindowsSliceTheWholeDayBitIdentically)
{
    for (const std::uint64_t seed : {1ull, 7ull, 20260808ull}) {
        const DayTrace trace(smallParams(3000, seed));
        const Workload whole = trace.wholeDay();
        ASSERT_EQ(whole.requests.size(), 3000u);

        // Uneven partition of the day; adjacent windows share their
        // boundary value, so every request lands in exactly one.
        const double day = trace.daySeconds();
        const std::vector<double> cuts = {0.0,
                                          0.037 * day,
                                          0.25 * day,
                                          0.251 * day,
                                          0.5 * day,
                                          0.93 * day,
                                          day};
        std::vector<Request> stitched;
        for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
            const Workload w = trace.window(cuts[i], cuts[i + 1]);

            // Window == oracle: scan every request of the day and
            // keep those whose arrival quantile is in range.
            const double q0 = trace.quantileTarget(cuts[i]);
            const double q1 = trace.quantileTarget(cuts[i + 1]);
            std::vector<Request> oracle;
            for (std::uint64_t k = 0; k < trace.size(); ++k) {
                const double q = trace.arrivalQuantile(k);
                if (q >= q0 && q < q1)
                    oracle.push_back(trace.request(k));
            }
            expectSameRequests(w.requests, oracle);

            stitched.insert(stitched.end(), w.requests.begin(),
                            w.requests.end());
        }
        expectSameRequests(stitched, whole.requests);
    }
}

TEST(DayTrace, SeedStabilityGoldenPins)
{
    // Exact values for the DEFAULT params (requests 10000, seed
    // 20260808). These pin the counter-seeded streams and the
    // quantile/arrival maps; a mismatch means the generator changed
    // and every recorded day-trace benchmark is invalidated.
    const DayTrace trace{DayTraceParams{}};

    const Request r0 = trace.request(0);
    EXPECT_EQ(r0.prefillLen, 125u);
    EXPECT_EQ(r0.decodeLen, 234u);
    const Request r1 = trace.request(1);
    EXPECT_EQ(r1.prefillLen, 105u);
    EXPECT_EQ(r1.decodeLen, 182u);
    const Request rm = trace.request(4999);
    EXPECT_EQ(rm.prefillLen, 297u);
    EXPECT_EQ(rm.decodeLen, 29u);
    const Request rl = trace.request(9999);
    EXPECT_EQ(rl.prefillLen, 114u);
    EXPECT_EQ(rl.decodeLen, 26u);

    EXPECT_EQ(trace.arrivalQuantile(0), 0.57644179729537359);
    EXPECT_EQ(trace.arrivalQuantile(9999), 9999.7276296641921);
    EXPECT_EQ(trace.arrivalTime(0), 9.1486254160466896);
    EXPECT_EQ(trace.arrivalTime(4999), 52056.174793954531);

    const TraceWindowRange peak =
        trace.windowRange(9.0 * 3600.0, 9.25 * 3600.0);
    EXPECT_EQ(peak.first, 1724u);
    EXPECT_EQ(peak.last, 1862u);
}

TEST(DayTrace, RequestIsAPureFunctionOfParamsAndIndex)
{
    const DayTrace a(smallParams());
    const DayTrace b(smallParams());
    for (std::uint64_t k = 0; k < 200; ++k) {
        const Request ra = a.request(k);
        const Request rb = b.request(k);
        const Request ra2 = a.request(k); // no hidden state
        EXPECT_EQ(ra.prefillLen, rb.prefillLen);
        EXPECT_EQ(ra.decodeLen, rb.decodeLen);
        EXPECT_EQ(ra.prefillLen, ra2.prefillLen);
        EXPECT_EQ(ra.decodeLen, ra2.decodeLen);
        EXPECT_EQ(ra.id, k);
    }
}

TEST(DayTrace, WindowCountMatchesRateIntegralProperty)
{
    const DayTrace trace(smallParams(5000, 11));
    const double day = trace.daySeconds();
    // Sweep aligned and unaligned windows of several widths; the
    // count must match the diurnal rate integral (the quantile
    // difference) to within rounding at both boundaries.
    for (const double width : {600.0, 900.0, 3600.0, 7777.0}) {
        for (double t0 = 0.0; t0 + width <= day; t0 += 3911.0) {
            const TraceWindowRange r =
                trace.windowRange(t0, t0 + width);
            const double expected = trace.quantileTarget(t0 + width) -
                                    trace.quantileTarget(t0);
            EXPECT_LE(std::fabs(static_cast<double>(r.count()) -
                                expected),
                      2.0)
                << "window [" << t0 << ", " << t0 + width << ")";
        }
    }
}

TEST(DayTrace, WholeDayCountIsExact)
{
    for (const std::uint64_t n : {1ull, 17ull, 3000ull}) {
        const DayTrace trace(smallParams(n, 5));
        const TraceWindowRange whole =
            trace.windowRange(0.0, trace.daySeconds());
        EXPECT_EQ(whole.first, 0u);
        EXPECT_EQ(whole.last, n);
        // Out-of-range bounds clamp to the day.
        const TraceWindowRange beyond =
            trace.windowRange(-100.0, trace.daySeconds() + 100.0);
        EXPECT_EQ(beyond.count(), n);
        EXPECT_EQ(trace.wholeDay().requests.size(), n);
    }
}

TEST(DayTrace, ArrivalsAreOrderedAndInRange)
{
    const DayTrace trace(smallParams(2000, 3));
    double prev_q = -1.0;
    for (std::uint64_t k = 0; k < trace.size(); ++k) {
        const double q = trace.arrivalQuantile(k);
        EXPECT_GT(q, prev_q); // strictly increasing, exactly
        EXPECT_GE(q, static_cast<double>(k));
        EXPECT_LT(q, static_cast<double>(k + 1));
        prev_q = q;

        const double t = trace.arrivalTime(k);
        EXPECT_GE(t, 0.0);
        EXPECT_LE(t, trace.daySeconds());
    }
    // Arrival times follow the quantiles monotonically (up to the
    // piecewise-linear inversion, which preserves order).
    for (std::uint64_t k = 1; k < trace.size(); ++k)
        EXPECT_LE(trace.arrivalTime(k - 1), trace.arrivalTime(k));
}

TEST(DayTrace, LengthsRespectFloorsAndContextWindow)
{
    for (const std::uint64_t max_len : {32ull, 128ull, 2048ull}) {
        DayTraceParams p = smallParams(1500, 9);
        p.maxLen = max_len;
        const DayTrace trace(p);
        for (std::uint64_t k = 0; k < trace.size(); ++k) {
            const Request r = trace.request(k);
            EXPECT_GE(r.prefillLen, 16u);
            EXPECT_GE(r.decodeLen, 16u);
            EXPECT_LE(r.totalTokens(), max_len);
        }
    }
}

TEST(DayTrace, IndexAtAgreesWithLinearScan)
{
    const DayTrace trace(smallParams(500, 21));
    for (const double t :
         {0.0, 1.0, 3600.5, 43210.0, 80000.0, 86399.9}) {
        const double target = trace.quantileTarget(t);
        std::uint64_t expected = trace.size();
        for (std::uint64_t k = 0; k < trace.size(); ++k) {
            if (trace.arrivalQuantile(k) >= target) {
                expected = k;
                break;
            }
        }
        EXPECT_EQ(trace.indexAt(t), expected) << "t=" << t;
    }
    EXPECT_EQ(trace.indexAt(trace.daySeconds()), trace.size());
    EXPECT_EQ(trace.indexAt(0.0), 0u);
}

TEST(DayTrace, DiurnalCurveShapesTheDay)
{
    // More of the default two-peak day arrives in the busy afternoon
    // hour than in the overnight trough.
    const DayTrace trace(smallParams(5000, 2));
    const auto trough = trace.windowRange(4.0 * 3600, 5.0 * 3600);
    const auto peak = trace.windowRange(10.0 * 3600, 11.0 * 3600);
    EXPECT_GT(peak.count(), 3 * trough.count());
}

} // namespace
} // namespace ouro
