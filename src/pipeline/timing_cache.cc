#include "timing_cache.hh"

#include <algorithm>
#include <cstring>

namespace ouro
{

namespace
{

/** (mask, prefill_len) packed into one map key. */
std::uint64_t
maskLenKey(AttentionKind mask, std::uint64_t prefill_len)
{
    return (static_cast<std::uint64_t>(mask) << 56) |
           (prefill_len & ((1ULL << 56) - 1));
}

} // namespace

ItemTiming
freshBlockedTokenItem(const StageTiming &timing,
                      double attention_positions)
{
    ItemTiming item;
    item.context = static_cast<std::uint64_t>(attention_positions);
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        const auto kind = static_cast<StageKind>(s);
        double t = timing.fixedSeconds[s];
        if (stageIsAttention(kind))
            t += timing.perContextSeconds[s] * attention_positions;
        item.stage[s] = t;
    }
    item.finalize();
    return item;
}

ItemTiming
freshSequenceItem(const StageTiming &timing, AttentionKind mask,
                  std::uint64_t prefill_len, double attn_parallel)
{
    ItemTiming item;
    item.tokens = prefill_len;
    double ctx_sum = 0.0;
    for (std::uint64_t p = 0; p < prefill_len; ++p) {
        const std::uint64_t ctx =
            attendedContext(mask, p, prefill_len);
        ctx_sum += static_cast<double>(ctx);
        for (unsigned s = 0; s < kStagesPerBlock; ++s) {
            item.stage[s] += timing.fixedSeconds[s];
            // Bulk attention spreads its positions over the KV
            // cores' crossbars concurrently.
            item.stage[s] += timing.perContextSeconds[s] *
                             static_cast<double>(ctx) /
                             std::max(1.0, attn_parallel);
        }
    }
    item.context = static_cast<std::uint64_t>(
            ctx_sum / static_cast<double>(prefill_len));
    item.finalize();
    return item;
}

double
deferredAttentionPositions(AttentionKind mask,
                           std::uint64_t prefill_len)
{
    double positions = 0.0;
    for (std::uint64_t p = 0; p < prefill_len; ++p) {
        positions += static_cast<double>(
                attendedContext(mask, p, prefill_len));
    }
    return positions;
}

std::uint64_t
stageTimingFingerprint(const StageTiming &timing)
{
    // FNV-1a over the raw coefficient bytes: any rederived timing
    // (remap, new placement, new fabric flags) changes the print.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (bits >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        mix(timing.fixedSeconds[s]);
        mix(timing.perContextSeconds[s]);
    }
    return h;
}

void
TimingCache::invalidate()
{
    tokens_.clear();
    sequences_.clear();
    blockedFinal_.clear();
    blockedDeferred_.reset();
    primed_ = false;
}

std::size_t
TimingCache::size() const
{
    return tokens_.size() + sequences_.size() + blockedFinal_.size() +
           (blockedDeferred_ ? 1 : 0);
}

void
TimingCache::sync(const StageTiming &timing, double attn_parallel)
{
    // Hot path: a bitwise compare of the stored coefficients is a
    // handful of ns and runs on every lookup; hashing here would
    // cost more than the memoized computation saves.
    if (primed_ &&
        std::memcmp(&stored_, &timing, sizeof(StageTiming)) == 0 &&
        attn_parallel == attnParallel_)
        return;
    invalidate();
    stored_ = timing;
    attnParallel_ = attn_parallel;
    primed_ = true;
}

const ItemTiming &
TimingCache::token(const StageTiming &timing, std::uint64_t ctx)
{
    sync(timing, attnParallel_);
    const std::uint64_t bucket = ctx >> shift_;
    const auto it = tokens_.find(bucket);
    if (it != tokens_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    // The bucket base is its representative context; with the default
    // shift of 0 this is ctx itself and the entry is bit-identical to
    // freshTokenItem(timing, ctx).
    const std::uint64_t rep = bucket << shift_;
    return tokens_.emplace(bucket, freshTokenItem(timing, rep))
        .first->second;
}

const ItemTiming &
TimingCache::sequence(const StageTiming &timing, AttentionKind mask,
                      std::uint64_t prefill_len, double attn_parallel)
{
    sync(timing, attn_parallel);
    const std::uint64_t key = maskLenKey(mask, prefill_len);
    const auto it = sequences_.find(key);
    if (it != sequences_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    return sequences_
        .emplace(key, freshSequenceItem(timing, mask, prefill_len,
                                        attn_parallel))
        .first->second;
}

const ItemTiming &
TimingCache::blockedToken(const StageTiming &timing, AttentionKind mask,
                          std::uint64_t prefill_len, bool last_token,
                          double attn_parallel)
{
    sync(timing, attn_parallel);
    if (!last_token) {
        // Deferred tokens carry no attention work: one shape fits
        // every mask and length.
        if (blockedDeferred_) {
            ++hits_;
            return *blockedDeferred_;
        }
        ++misses_;
        blockedDeferred_ = freshBlockedTokenItem(timing, 0.0);
        return *blockedDeferred_;
    }
    const std::uint64_t key = maskLenKey(mask, prefill_len);
    const auto it = blockedFinal_.find(key);
    if (it != blockedFinal_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    const double positions =
        deferredAttentionPositions(mask, prefill_len) /
        std::max(1.0, attn_parallel);
    return blockedFinal_
        .emplace(key, freshBlockedTokenItem(timing, positions))
        .first->second;
}

} // namespace ouro
