/**
 * @file
 * Memoized per-item stage timing for the pipeline engines.
 *
 * Profiling the figure harnesses shows the engine spends most of its
 * time rebuilding identical ItemTiming records: every decode token of
 * every concurrent sequence at the same position, every prefill of
 * the same length, and every deferred-attention prefix recompute the
 * same six stage times from the same StageTiming coefficients. The
 * TimingCache memoizes the three item shapes the engines build:
 *
 *  - token items, keyed on the attended-context bucket
 *    (bucket = ctx >> ctxBucketShift; the default shift of 0 makes
 *    the bucket the exact context, so a hit is bit-identical to a
 *    fresh computation — larger shifts trade exactness for memory on
 *    huge-context scans);
 *  - whole-prefill sequence items, keyed on (mask, prefill length);
 *  - TGP-with-block items (deferred and final-token), keyed on
 *    (mask, prefill length).
 *
 * Invalidation: on every lookup the cache bitwise-compares the
 * StageTiming coefficients against the copy its entries were built
 * from and flushes itself when they differ — a remap
 * (replacement-chain recovery, new placement) rederives StageTiming,
 * so stale entries can never be served. invalidate() also flushes
 * explicitly for callers that reuse one cache across deployments.
 * stageTimingFingerprint() is a diagnostic digest of the same
 * coefficients (handy in tests and logs); the hot-path check itself
 * is the exact compare, not the hash.
 */

#ifndef OURO_PIPELINE_TIMING_CACHE_HH
#define OURO_PIPELINE_TIMING_CACHE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "model/masks.hh"
#include "pipeline/timing.hh"

namespace ouro
{

/** Per-item service profile on the six stages. */
struct ItemTiming
{
    std::array<double, kStagesPerBlock> stage{};
    double total = 0.0; ///< sum over the six stages (one block)
    std::uint64_t context = 0;
    std::uint64_t tokens = 1;

    void finalize()
    {
        total = 0.0;
        for (const double t : stage)
            total += t;
    }
};

/** One token, pure token-grained (causal path). Uncached builder.
 *  Header-inline: both decode fast paths build one per token, so the
 *  six fused multiply-adds must not hide behind a call. */
inline ItemTiming
freshTokenItem(const StageTiming &timing, std::uint64_t ctx)
{
    ItemTiming item;
    item.context = ctx;
    for (unsigned s = 0; s < kStagesPerBlock; ++s)
        item.stage[s] =
            timing.tokenTime(static_cast<StageKind>(s), ctx);
    item.finalize();
    return item;
}

/**
 * One token whose attention work is deferred/accumulated (TGP with
 * block): dense stages per token; attention stages carry
 * @p attention_positions summed positions (0 for deferred tokens).
 * @p attention_positions arrives pre-divided by the bulk-attention
 * parallelism. Uncached builder.
 */
ItemTiming freshBlockedTokenItem(const StageTiming &timing,
                                 double attention_positions);

/** A whole prefill as one sequence-grained item. Uncached builder. */
ItemTiming freshSequenceItem(const StageTiming &timing,
                             AttentionKind mask,
                             std::uint64_t prefill_len,
                             double attn_parallel);

/**
 * Summed attended positions of a whole prefill under @p mask (the
 * work a TGP-with-block pipeline defers to the final prefill token).
 */
double deferredAttentionPositions(AttentionKind mask,
                                  std::uint64_t prefill_len);

/** Order-independent fingerprint of the twelve timing coefficients. */
std::uint64_t stageTimingFingerprint(const StageTiming &timing);

/** Memoization layer over the fresh*Item builders. */
class TimingCache
{
  public:
    explicit TimingCache(unsigned ctx_bucket_shift = 0)
        : shift_(ctx_bucket_shift)
    {
    }

    /** Token item at attended context @p ctx. */
    const ItemTiming &token(const StageTiming &timing,
                            std::uint64_t ctx);

    /** Whole-prefill sequence item. */
    const ItemTiming &sequence(const StageTiming &timing,
                               AttentionKind mask,
                               std::uint64_t prefill_len,
                               double attn_parallel);

    /**
     * TGP-with-block token item: the deferred shape when
     * @p last_token is false, the accumulated final-token shape
     * otherwise.
     */
    const ItemTiming &blockedToken(const StageTiming &timing,
                                   AttentionKind mask,
                                   std::uint64_t prefill_len,
                                   bool last_token,
                                   double attn_parallel);

    /** Drop every entry (e.g. after a remap replaced the timing). */
    void invalidate();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t size() const;
    unsigned ctxBucketShift() const { return shift_; }

  private:
    /** Flush when the StageTiming coefficients changed underneath. */
    void sync(const StageTiming &timing, double attn_parallel);

    unsigned shift_;
    bool primed_ = false;
    StageTiming stored_{}; ///< coefficients the entries were built on
    double attnParallel_ = 1.0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    std::unordered_map<std::uint64_t, ItemTiming> tokens_;
    std::unordered_map<std::uint64_t, ItemTiming> sequences_;
    std::unordered_map<std::uint64_t, ItemTiming> blockedFinal_;
    std::optional<ItemTiming> blockedDeferred_;
};

} // namespace ouro

#endif // OURO_PIPELINE_TIMING_CACHE_HH
