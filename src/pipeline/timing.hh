/**
 * @file
 * Per-stage service-time model consumed by the pipeline engines.
 *
 * Each of the six stage kinds (Fig. 4) has a fixed per-token
 * component (dense GEMVs, LayerNorm) and a per-attended-position
 * component (score / softmax / context grow linearly with context).
 * The sim module derives these coefficients from the crossbar timing
 * model, the SFU throughput and the mapped NoC transfer times; the
 * pipeline engines only consume the resulting seconds.
 */

#ifndef OURO_PIPELINE_TIMING_HH
#define OURO_PIPELINE_TIMING_HH

#include <array>
#include <cstdint>

#include "model/stages.hh"

namespace ouro
{

/** Stage-time coefficients: t(s, ctx) = fixed[s] + perCtx[s] * ctx. */
struct StageTiming
{
    std::array<double, kStagesPerBlock> fixedSeconds{};
    std::array<double, kStagesPerBlock> perContextSeconds{};

    double tokenTime(StageKind kind, std::uint64_t context) const
    {
        const auto s = static_cast<unsigned>(kind);
        return fixedSeconds[s] +
               perContextSeconds[s] * static_cast<double>(context);
    }

    /** Bottleneck (max-stage) time of one token at @p context. */
    double bottleneckTime(std::uint64_t context) const
    {
        double worst = 0.0;
        for (unsigned s = 0; s < kStagesPerBlock; ++s) {
            const double t =
                tokenTime(static_cast<StageKind>(s), context);
            if (t > worst)
                worst = t;
        }
        return worst;
    }

    /** Sum over the six stages for one token at @p context. */
    double totalTime(std::uint64_t context) const
    {
        double sum = 0.0;
        for (unsigned s = 0; s < kStagesPerBlock; ++s)
            sum += tokenTime(static_cast<StageKind>(s), context);
        return sum;
    }
};

} // namespace ouro

#endif // OURO_PIPELINE_TIMING_HH
