#include "engine.hh"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace ouro
{

namespace
{

/** A request's live progress. */
struct ActiveSeq
{
    std::uint64_t id;
    std::uint64_t prefillLen;     ///< tokens to (re)compute as prompt
    std::uint64_t decodeRemaining;
    std::uint64_t prefillEntered = 0;
    std::uint64_t decoded = 0;
    double nextReady = 0.0;
    /** When this sequence's own KV-ring cores free up: attention
     *  stages are per-sequence resources, not shared servers. */
    double attnFree = 0.0;
    std::uint64_t generation = 0; ///< invalidates stale heap entries
    bool dead = false;
};

/** Pending (not yet admitted) request. */
struct Pending
{
    std::uint64_t id;
    std::uint64_t prefillLen;
    std::uint64_t decodeRemaining;
};

struct HeapEntry
{
    double ready;
    std::uint64_t seq;
    std::uint64_t generation;

    bool operator>(const HeapEntry &other) const
    {
        return ready > other.ready;
    }
};

/** Per-item service profile on the six stages. */
struct ItemTiming
{
    std::array<double, kStagesPerBlock> stage{};
    double total = 0.0; ///< sum over the six stages (one block)
    std::uint64_t context = 0;
    std::uint64_t tokens = 1;

    void finalize()
    {
        total = 0.0;
        for (const double t : stage)
            total += t;
    }
};

/** One token, pure token-grained (causal path). */
ItemTiming
tokenItem(const StageTiming &timing, std::uint64_t ctx)
{
    ItemTiming item;
    item.context = ctx;
    for (unsigned s = 0; s < kStagesPerBlock; ++s)
        item.stage[s] =
            timing.tokenTime(static_cast<StageKind>(s), ctx);
    item.finalize();
    return item;
}

/**
 * One token whose attention work is deferred/accumulated (TGP with
 * block): dense stages per token; attention stages carry
 * @p attention_positions summed positions (0 for deferred tokens).
 */
ItemTiming
blockedTokenItem(const StageTiming &timing, double attention_positions)
{
    // attention_positions arrives pre-divided by the bulk-attention
    // parallelism (PipelineOptions::attentionParallelism).
    ItemTiming item;
    item.context = static_cast<std::uint64_t>(attention_positions);
    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        const auto kind = static_cast<StageKind>(s);
        double t = timing.fixedSeconds[s];
        if (stageIsAttention(kind))
            t += timing.perContextSeconds[s] * attention_positions;
        item.stage[s] = t;
    }
    item.finalize();
    return item;
}

/** A whole prefill as one sequence-grained item. */
ItemTiming
sequenceItem(const StageTiming &timing, AttentionKind mask,
             std::uint64_t prefill_len, double attn_parallel)
{
    ItemTiming item;
    item.tokens = prefill_len;
    double ctx_sum = 0.0;
    for (std::uint64_t p = 0; p < prefill_len; ++p) {
        const std::uint64_t ctx =
            attendedContext(mask, p, prefill_len);
        ctx_sum += static_cast<double>(ctx);
        for (unsigned s = 0; s < kStagesPerBlock; ++s) {
            item.stage[s] += timing.fixedSeconds[s];
            // Bulk attention spreads its positions over the KV
            // cores' crossbars concurrently.
            item.stage[s] += timing.perContextSeconds[s] *
                             static_cast<double>(ctx) /
                             std::max(1.0, attn_parallel);
        }
    }
    item.context = static_cast<std::uint64_t>(
            ctx_sum / static_cast<double>(prefill_len));
    item.finalize();
    return item;
}

} // namespace

PipelineStats
runPipeline(const Workload &workload, const ModelConfig &model,
            const StageTiming &timing, BlockKvManager &kv,
            const PipelineOptions &opts)
{
    PipelineStats stats;

    const auto blocks = static_cast<double>(model.numBlocks);
    const bool token_grained =
        opts.kind == PipelineKind::TokenGrained;
    const bool pure_tgp =
        token_grained && masksAllowPureTgp(model.attention);

    std::deque<Pending> queue;
    for (const auto &r : workload.requests)
        queue.push_back({r.id, r.prefillLen, r.decodeLen});

    std::unordered_map<std::uint64_t, ActiveSeq> active;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> ready;

    // One server per stage kind (the representative block's tandem
    // queue); blocks 2..N add pure latency, not contention - inter-
    // item blocking is already captured at block 1.
    std::array<double, kStagesPerBlock> stage_free{};
    std::array<double, kStagesPerBlock> stage_busy{};
    double makespan = 0.0;

    double ctx_sum = 0.0;
    std::uint64_t ctx_samples = 0;

    auto admission_tokens = [&](const Pending &p) -> std::uint64_t {
        return opts.staticKvAllocation ? opts.maxContext
                                       : p.prefillLen;
    };

    // Section 4.4.4: once an eviction happens, new scheduling is
    // suspended until a prior request completes (prevents eviction
    // ping-pong / KV thrashing).
    bool admissions_suspended = false;

    // Admit from the FCFS queue head while the KV pool accepts
    // without evicting (Section 4.4.4: new scheduling never evicts).
    auto pump_admissions = [&](double now) {
        if (admissions_suspended && !active.empty())
            return;
        admissions_suspended = false; // nothing left running: resume
        while (!queue.empty()) {
            const Pending &p = queue.front();
            if (!kv.admitNoEvict(p.id, admission_tokens(p)))
                break;
            ActiveSeq seq;
            seq.id = p.id;
            seq.prefillLen = p.prefillLen;
            seq.decodeRemaining = p.decodeRemaining;
            seq.nextReady = now;
            active.emplace(p.id, seq);
            ready.push({now, p.id, 0});
            queue.pop_front();
        }
        stats.peakConcurrency = std::max(
                stats.peakConcurrency,
                static_cast<double>(active.size()));
    };

    // Eviction handler: kill the resident sequence and put it back at
    // the FRONT of the wait queue with its grown prefill (recompute).
    auto handle_evictions =
            [&](const std::vector<std::uint64_t> &evicted) {
        for (const auto id : evicted) {
            const auto it = active.find(id);
            if (it == active.end())
                continue; // already finished/released
            ActiveSeq &seq = it->second;
            Pending back;
            back.id = id;
            // Everything computed so far must be re-prefilled.
            back.prefillLen = seq.prefillLen + seq.decoded;
            back.decodeRemaining = seq.decodeRemaining;
            queue.push_front(back);
            stats.evictions += 1;
            stats.recomputedTokens += back.prefillLen;
            seq.dead = true;
            seq.generation += 1;
            active.erase(it);
            admissions_suspended = true;
        }
    };

    pump_admissions(0.0);

    while (!ready.empty() || !queue.empty()) {
        if (ready.empty()) {
            // Nothing runnable but requests remain: every resident
            // sequence finished yet the queue head still does not
            // fit, so the request genuinely exceeds pool capacity.
            const Pending p = queue.front();
            queue.pop_front();
            warn("pipeline: request ", p.id,
                 " exceeds KV pool capacity; skipped");
            pump_admissions(makespan);
            continue;
        }
        const HeapEntry top = ready.top();
        ready.pop();
        const auto it = active.find(top.seq);
        if (it == active.end() || it->second.dead ||
            it->second.generation != top.generation) {
            continue; // stale
        }
        ActiveSeq &seq = it->second;

        // Build the next item for this sequence.
        ItemTiming item;
        bool is_prefill = seq.prefillEntered < seq.prefillLen;
        bool last_prefill_token = false;
        if (is_prefill) {
            if (token_grained) {
                if (pure_tgp) {
                    item = tokenItem(
                            timing,
                            attendedContext(model.attention,
                                            seq.prefillEntered,
                                            seq.prefillLen));
                } else {
                    // TGP with block: defer attention to the final
                    // prefill token (Fig. 5c).
                    last_prefill_token =
                        seq.prefillEntered + 1 == seq.prefillLen;
                    double positions = 0.0;
                    if (last_prefill_token) {
                        for (std::uint64_t p = 0;
                             p < seq.prefillLen; ++p) {
                            positions += static_cast<double>(
                                    attendedContext(model.attention,
                                                    p,
                                                    seq.prefillLen));
                        }
                        positions /= std::max(
                                1.0, opts.attentionParallelism);
                    }
                    item = blockedTokenItem(timing, positions);
                }
            } else {
                item = sequenceItem(timing, model.attention,
                                    seq.prefillLen,
                                    opts.attentionParallelism);
            }
        } else {
            // Decode token: causal attention over everything so far.
            const std::uint64_t pos = seq.prefillLen + seq.decoded;
            item = tokenItem(timing, pos + 1);
        }

        // KV growth for the entering tokens (dynamic mode only).
        if (!opts.staticKvAllocation) {
            if (!is_prefill) {
                const KvResult grow = kv.grow(seq.id);
                handle_evictions(grow.evicted);
                if (!grow.ok || seq.dead) {
                    // The grower itself could not fit (pool too small
                    // even after evicting everyone else): evict self.
                    if (!seq.dead)
                        handle_evictions({seq.id});
                    if (kv.resident(seq.id))
                        kv.release(seq.id);
                    pump_admissions(makespan);
                    continue;
                }
            }
            // Prefill KV was reserved at admission.
        }

        // Tandem traversal of the representative block's six stage
        // servers; the remaining N-1 blocks add latency only. Dense
        // stages are shared servers (one set of weight cores); the
        // attention stages run on the sequence's OWN KV-ring cores
        // (Section 4.4.3 spreads sequences across distinct cores),
        // so they serialise within a sequence but overlap across
        // sequences.
        const double entry = std::max(seq.nextReady, stage_free[0]);
        double cursor = seq.nextReady;
        for (unsigned s = 0; s < kStagesPerBlock; ++s) {
            const auto kind = static_cast<StageKind>(s);
            double start;
            if (stageIsAttention(kind)) {
                start = std::max(cursor, seq.attnFree);
            } else {
                start = std::max(cursor, stage_free[s]);
            }
            const double done = start + item.stage[s];
            if (stageIsAttention(kind))
                seq.attnFree = done;
            else
                stage_free[s] = done;
            stage_busy[s] += item.stage[s];
            cursor = done;
        }
        const double completion =
            cursor + (blocks - 1.0) * item.total;
        makespan = std::max(makespan, completion);

        stats.tokensProcessed += item.tokens;
        ctx_sum += static_cast<double>(item.context);
        ++ctx_samples;

        // Advance the sequence and enqueue its next item.
        if (is_prefill) {
            seq.prefillEntered += item.tokens;
            if (seq.prefillEntered >= seq.prefillLen) {
                // First decode token depends on the prompt's full
                // traversal of the pipeline.
                seq.nextReady = completion;
            } else {
                // Prefill tokens stream: next is ready at this entry.
                seq.nextReady = entry;
            }
            if (seq.decodeRemaining == 0 &&
                seq.prefillEntered >= seq.prefillLen) {
                kv.release(seq.id);
                active.erase(it);
                admissions_suspended = false; // a request completed
                pump_admissions(entry);
                continue;
            }
            seq.generation += 1;
            ready.push({seq.nextReady, seq.id, seq.generation});
        } else {
            seq.decoded += 1;
            seq.decodeRemaining -= 1;
            stats.outputTokens += 1;
            if (seq.decodeRemaining == 0) {
                // Finished: release KV when the token drains.
                kv.release(seq.id);
                active.erase(it);
                admissions_suspended = false; // a request completed
                pump_admissions(entry);
                continue;
            }
            seq.nextReady = completion; // autoregressive gating
            seq.generation += 1;
            ready.push({seq.nextReady, seq.id, seq.generation});
        }
        pump_admissions(entry);
    }

    stats.makespanSeconds = makespan;
    double busy_sum = 0.0;
    for (const double b : stage_busy) {
        busy_sum += b;
        stats.bottleneckBusySeconds =
            std::max(stats.bottleneckBusySeconds, b);
    }
    stats.utilization =
        makespan > 0.0
            ? busy_sum / (kStagesPerBlock * makespan)
            : 0.0;
    stats.utilization = std::min(stats.utilization, 1.0);
    stats.bubbleFraction = 1.0 - stats.utilization;
    stats.avgContext =
        ctx_samples ? ctx_sum / static_cast<double>(ctx_samples) : 0.0;
    return stats;
}

} // namespace ouro
