#include "engine.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "pipeline/timing_cache.hh"

namespace ouro
{

namespace
{

/** A request's live progress. */
struct ActiveSeq
{
    std::uint64_t id;
    std::uint64_t prefillLen;     ///< tokens to (re)compute as prompt
    std::uint64_t decodeRemaining;
    std::uint64_t prefillEntered = 0;
    std::uint64_t decoded = 0;
    double nextReady = 0.0;
    /** When this sequence's own KV-ring cores free up: attention
     *  stages are per-sequence resources, not shared servers. */
    double attnFree = 0.0;
    /** Completion time of this residency's first decode token (the
     *  TTFT sample if the residency completes). */
    double firstTokenDone = 0.0;
    std::uint64_t generation = 0; ///< invalidates stale heap entries
    KvHandle kv;                  ///< slot ticket into the KV manager
};

/** Pending (not yet admitted) request. */
struct Pending
{
    std::uint64_t id;
    std::uint64_t prefillLen;
    std::uint64_t decodeRemaining;
    /** Re-admission after eviction resumes past the old generation so
     *  stale heap entries of the previous residency can never match
     *  (they would resurrect already-retired events otherwise). */
    std::uint64_t generation = 0;
};

struct HeapEntry
{
    double ready;
    std::uint64_t seq;
    std::uint64_t generation;

    /** Strict total order: ready, then seq, then generation. The seq
     *  tie-break pins the pop order of simultaneous events, which is
     *  what lets the cohort fast path replay it exactly. */
    bool operator>(const HeapEntry &other) const
    {
        if (ready != other.ready)
            return ready > other.ready;
        if (seq != other.seq)
            return seq > other.seq;
        return generation > other.generation;
    }
};

/** One cohort member in the insertion-sorted decode ring. The hot
 *  per-token state is copied OUT of the ActiveSeq at ring build and
 *  written back lazily (completion, eviction, or cohort exit), so
 *  the token loop touches only this flat slot - never the hash-map
 *  node. */
struct RingMember
{
    double ready;             ///< this member's next event time
    std::uint64_t seq;
    std::uint64_t generation; ///< residency stamp at ring build
    ActiveSeq *as;            ///< stable: rehash never moves nodes
    std::uint64_t allowance;  ///< in-block tokens before a slow grow
    std::uint64_t consumed;   ///< deferred tokens for one growFast
    double attnFree;          ///< ring-local copy of as->attnFree
    std::uint64_t position;   ///< prefillLen + decoded
    std::uint64_t decodeRemaining;
};

bool
ringBefore(double a_ready, std::uint64_t a_seq, double b_ready,
           std::uint64_t b_seq)
{
    if (a_ready != b_ready)
        return a_ready < b_ready;
    return a_seq < b_seq;
}

} // namespace

PipelineStats &
PipelineStats::merge(const PipelineStats &other)
{
    makespanSeconds += other.makespanSeconds;
    tokensProcessed += other.tokensProcessed;
    outputTokens += other.outputTokens;
    bottleneckBusySeconds += other.bottleneckBusySeconds;
    evictions += other.evictions;
    recomputedTokens += other.recomputedTokens;
    stormEvictions += other.stormEvictions;
    stormReprefilledTokens += other.stormReprefilledTokens;
    skippedRequests += other.skippedRequests;
    peakConcurrency = std::max(peakConcurrency,
                               other.peakConcurrency);
    timingCacheHits += other.timingCacheHits;
    timingCacheMisses += other.timingCacheMisses;
    itemsProcessed += other.itemsProcessed;
    contextTokensSum += other.contextTokensSum;
    stageBusySumSeconds += other.stageBusySumSeconds;
    // Derived means: recomputed from the merged raw aggregates with
    // the engine's own formulas, so a merge of runs reports exactly
    // what one run over the concatenated busy intervals would.
    utilization =
        makespanSeconds > 0.0
            ? std::min(stageBusySumSeconds /
                           (kStagesPerBlock * makespanSeconds),
                       1.0)
            : 0.0;
    bubbleFraction = 1.0 - utilization;
    avgContext = itemsProcessed
                     ? contextTokensSum /
                           static_cast<double>(itemsProcessed)
                     : 0.0;
    ttftSamples.insert(ttftSamples.end(), other.ttftSamples.begin(),
                       other.ttftSamples.end());
    interTokenSamples.insert(interTokenSamples.end(),
                             other.interTokenSamples.begin(),
                             other.interTokenSamples.end());
    // Back-to-back semantics: the other run's clock starts where this
    // one's makespan ended, so its bins append after ours.
    outputTokenBins.insert(outputTokenBins.end(),
                           other.outputTokenBins.begin(),
                           other.outputTokenBins.end());
    if (throughputBinSeconds == 0.0)
        throughputBinSeconds = other.throughputBinSeconds;
    return *this;
}

PipelineStats &
PipelineStats::mergeConcurrent(const PipelineStats &other)
{
    // Aligned bins: side-by-side runs share one clock, so bin b of
    // each run covers the same interval and the fleet curve is the
    // elementwise sum. A sum across different widths is meaningless.
    if (throughputBinSeconds > 0.0 &&
        other.throughputBinSeconds > 0.0) {
        ouroAssert(throughputBinSeconds == other.throughputBinSeconds,
                   "PipelineStats::mergeConcurrent: aligned bin "
                   "merge requires equal throughputBinSeconds (",
                   throughputBinSeconds, " vs ",
                   other.throughputBinSeconds, ")");
    }
    if (throughputBinSeconds == 0.0) {
        ouroAssert(outputTokenBins.empty(),
                   "PipelineStats::mergeConcurrent: bins without a "
                   "bin width");
        throughputBinSeconds = other.throughputBinSeconds;
    }
    if (outputTokenBins.size() < other.outputTokenBins.size())
        outputTokenBins.resize(other.outputTokenBins.size(), 0);
    for (std::size_t b = 0; b < other.outputTokenBins.size(); ++b)
        outputTokenBins[b] += other.outputTokenBins[b];

    // The fleet is done when its slowest member drains.
    makespanSeconds = std::max(makespanSeconds,
                               other.makespanSeconds);
    tokensProcessed += other.tokensProcessed;
    outputTokens += other.outputTokens;
    // Separate conveyors: the fleet's bottleneck occupancy is its
    // busiest member's, not a sum across independent pipelines.
    bottleneckBusySeconds = std::max(bottleneckBusySeconds,
                                     other.bottleneckBusySeconds);
    evictions += other.evictions;
    recomputedTokens += other.recomputedTokens;
    stormEvictions += other.stormEvictions;
    stormReprefilledTokens += other.stormReprefilledTokens;
    skippedRequests += other.skippedRequests;
    // Concurrent residents: every member holds its peak cohort at
    // the same wall time in the worst case.
    peakConcurrency += other.peakConcurrency;
    timingCacheHits += other.timingCacheHits;
    timingCacheMisses += other.timingCacheMisses;
    itemsProcessed += other.itemsProcessed;
    contextTokensSum += other.contextTokensSum;
    stageBusySumSeconds += other.stageBusySumSeconds;
    // Same derived-mean expressions as merge(); fleet utilization
    // saturates at 1.0 by construction (documented in the header).
    utilization =
        makespanSeconds > 0.0
            ? std::min(stageBusySumSeconds /
                           (kStagesPerBlock * makespanSeconds),
                       1.0)
            : 0.0;
    bubbleFraction = 1.0 - utilization;
    avgContext = itemsProcessed
                     ? contextTokensSum /
                           static_cast<double>(itemsProcessed)
                     : 0.0;
    ttftSamples.insert(ttftSamples.end(), other.ttftSamples.begin(),
                       other.ttftSamples.end());
    interTokenSamples.insert(interTokenSamples.end(),
                             other.interTokenSamples.begin(),
                             other.interTokenSamples.end());
    return *this;
}

PipelineStats
runPipeline(const Workload &workload, const ModelConfig &model,
            const StageTiming &timing, BlockKvManager &kv,
            const PipelineOptions &opts)
{
    PipelineStats stats;

    const auto blocks = static_cast<double>(model.numBlocks);
    const bool token_grained =
        opts.kind == PipelineKind::TokenGrained;
    const bool pure_tgp =
        token_grained && masksAllowPureTgp(model.attention);

    // Memoized item timings: identical (phase, context, length)
    // items are built once instead of per heap event - the win is on
    // the O(prefill_len) shapes (whole-sequence and blocked-prefill
    // items, plus repeated prefill contexts across sequences); plain
    // decode-token items are cheaper to recompute than to look up.
    // Callers may share a cache across runs; its coefficient check
    // flushes it whenever the StageTiming was rederived (e.g. after
    // a remap).
    TimingCache local_cache(opts.ctxBucketShift);
    TimingCache &cache =
        opts.timingCache ? *opts.timingCache : local_cache;
    const std::uint64_t cache_hits0 = cache.hits();
    const std::uint64_t cache_misses0 = cache.misses();

    std::deque<Pending> queue;
    for (const auto &r : workload.requests)
        queue.push_back({r.id, r.prefillLen, r.decodeLen, 0});

    std::unordered_map<std::uint64_t, ActiveSeq> active;
    active.reserve(workload.requests.size());

    // Min-heap of (ready, seq, generation) owned directly (not a
    // priority_queue) so stale entries can be compacted in place.
    std::vector<HeapEntry> ready_heap;
    ready_heap.reserve(workload.requests.size() + 16);
    std::size_t stale_entries = 0;

    auto heap_push = [&](const HeapEntry &entry) {
        ready_heap.push_back(entry);
        std::push_heap(ready_heap.begin(), ready_heap.end(),
                       std::greater<>{});
    };
    auto heap_pop = [&]() -> HeapEntry {
        std::pop_heap(ready_heap.begin(), ready_heap.end(),
                      std::greater<>{});
        const HeapEntry top = ready_heap.back();
        ready_heap.pop_back();
        return top;
    };

    /** The live ActiveSeq a heap entry refers to, or null if stale. */
    auto live_entry = [&](const HeapEntry &entry) -> ActiveSeq * {
        const auto it = active.find(entry.seq);
        if (it == active.end() ||
            it->second.generation != entry.generation) {
            return nullptr;
        }
        return &it->second;
    };

    // Heap hygiene: evictions leave stale generation entries behind;
    // once they outnumber the live ones, compact in place so the heap
    // stays O(live) instead of O(lifetime evictions).
    auto compact_heap = [&]() {
        if (ready_heap.size() < 32 ||
            stale_entries * 2 <= ready_heap.size()) {
            return;
        }
        ready_heap.erase(
                std::remove_if(ready_heap.begin(), ready_heap.end(),
                               [&](const HeapEntry &entry) {
                                   return live_entry(entry) == nullptr;
                               }),
                ready_heap.end());
        std::make_heap(ready_heap.begin(), ready_heap.end(),
                       std::greater<>{});
        stale_entries = 0;
    };

    // One server per stage kind (the representative block's tandem
    // queue); blocks 2..N add pure latency, not contention - inter-
    // item blocking is already captured at block 1.
    std::array<double, kStagesPerBlock> stage_free{};
    std::array<double, kStagesPerBlock> stage_busy{};
    double makespan = 0.0;

    double ctx_sum = 0.0;
    std::uint64_t ctx_samples = 0;

    /** Resident sequences still streaming prefill tokens; the cohort
     *  fast path is legal only when this is zero. */
    std::size_t prefill_count = 0;

    auto admission_tokens = [&](const Pending &p) -> std::uint64_t {
        return opts.staticKvAllocation ? opts.maxContext
                                       : p.prefillLen;
    };

    // Section 4.4.4: once an eviction happens, new scheduling is
    // suspended until a prior request completes (prevents eviction
    // ping-pong / KV thrashing).
    bool admissions_suspended = false;

    // Admit from the FCFS queue head while the KV pool accepts
    // without evicting (Section 4.4.4: new scheduling never evicts).
    auto pump_admissions = [&](double now) {
        if (admissions_suspended && !active.empty())
            return;
        admissions_suspended = false; // nothing left running: resume
        while (!queue.empty()) {
            const Pending &p = queue.front();
            const KvHandle handle =
                kv.admitNoEvictHandle(p.id, admission_tokens(p));
            if (!handle.valid())
                break;
            ActiveSeq seq;
            seq.id = p.id;
            seq.prefillLen = p.prefillLen;
            seq.decodeRemaining = p.decodeRemaining;
            seq.nextReady = now;
            seq.generation = p.generation;
            seq.kv = handle;
            if (seq.prefillLen > 0)
                ++prefill_count;
            active.emplace(p.id, seq);
            heap_push({now, p.id, p.generation});
            queue.pop_front();
        }
        stats.peakConcurrency = std::max(
                stats.peakConcurrency,
                static_cast<double>(active.size()));
    };

    // Eviction handler: kill the resident sequence and put it back at
    // the FRONT of the wait queue with its grown prefill (recompute).
    // entries_in_heap says whether each victim's live heap entry is
    // still enqueued (true on the slow path; false when the victim's
    // entry lives in the cohort ring or was already popped).
    auto handle_evictions =
            [&](const std::vector<std::uint64_t> &evicted,
                bool entries_in_heap) {
        for (const auto id : evicted) {
            const auto it = active.find(id);
            if (it == active.end())
                continue; // already finished/released
            ActiveSeq &seq = it->second;
            Pending back;
            back.id = id;
            // Everything computed so far must be re-prefilled.
            back.prefillLen = seq.prefillLen + seq.decoded;
            back.decodeRemaining = seq.decodeRemaining;
            back.generation = seq.generation + 1;
            queue.push_front(back);
            stats.evictions += 1;
            stats.recomputedTokens += back.prefillLen;
            if (seq.prefillEntered < seq.prefillLen)
                --prefill_count;
            if (entries_in_heap)
                ++stale_entries;
            active.erase(it);
            admissions_suspended = true;
        }
    };

    // Tandem traversal of the representative block's six stage
    // servers; the remaining N-1 blocks add latency only. Dense
    // stages are shared servers (one set of weight cores); the
    // attention stages run on the sequence's OWN KV-ring cores
    // (Section 4.4.3 spreads sequences across distinct cores),
    // so they serialise within a sequence but overlap across
    // sequences. Returns the item's completion time. @p attn_free
    // is wherever the caller keeps the sequence's attention-server
    // clock (ActiveSeq on the slow path, the ring slot on the
    // cohort path) - ONE implementation, so the two paths cannot
    // drift apart and break their asserted bit-identity.
    auto advance_item = [&](double ready, double &attn_free,
                            const ItemTiming &item) -> double {
        double cursor = ready;
        for (unsigned s = 0; s < kStagesPerBlock; ++s) {
            const auto kind = static_cast<StageKind>(s);
            double start;
            if (stageIsAttention(kind)) {
                start = std::max(cursor, attn_free);
            } else {
                start = std::max(cursor, stage_free[s]);
            }
            const double done = start + item.stage[s];
            if (stageIsAttention(kind))
                attn_free = done;
            else
                stage_free[s] = done;
            stage_busy[s] += item.stage[s];
            cursor = done;
        }
        const double completion =
            cursor + (blocks - 1.0) * item.total;
        makespan = std::max(makespan, completion);
        stats.tokensProcessed += item.tokens;
        ctx_sum += static_cast<double>(item.context);
        ++ctx_samples;
        return completion;
    };
    auto traverse = [&](ActiveSeq &seq,
                        const ItemTiming &item) -> double {
        return advance_item(seq.nextReady, seq.attnFree, item);
    };

    // Serving-latency samples, pushed when a request COMPLETES (all
    // three decode paths - slow, single-stream batch, cohort ring -
    // process completions in the same deterministic event order, so
    // the sample vectors are part of their bit-identity contract).
    auto record_completion = [&](double first_done, double last_done,
                                 std::uint64_t decoded) {
        if (decoded == 0)
            return; // prefill-only request: no decode latencies
        stats.ttftSamples.push_back(first_done);
        if (decoded >= 2) {
            stats.interTokenSamples.push_back(
                    (last_done - first_done) /
                    static_cast<double>(decoded - 1));
        }
    };

    // A decode token left the pipeline at `completion`: count it and,
    // when binning is on, histogram it (all three decode paths call
    // this, so the curve shares their bit-identity contract).
    const double bin_w = opts.throughputBinSeconds;
    auto note_output = [&](double completion) {
        stats.outputTokens += 1;
        if (bin_w <= 0.0)
            return;
        const auto b =
            static_cast<std::size_t>(completion / bin_w);
        if (stats.outputTokenBins.size() <= b)
            stats.outputTokenBins.resize(b + 1, 0);
        stats.outputTokenBins[b] += 1;
    };

    // --- Failure-storm schedule (PR 9) ---
    // Null/empty leaves every code path below bit-identical to a
    // plain run: storm_pending() is constant-false, so neither fast
    // path gains a new bail-out and no event ever applies.
    const std::vector<KvPoolEvent> *storm =
        (opts.stormSchedule && !opts.stormSchedule->empty())
            ? opts.stormSchedule
            : nullptr;
    std::size_t storm_next = 0;
    if (storm) {
        for (std::size_t i = 1; i < storm->size(); ++i) {
            ouroAssert((*storm)[i - 1].time <= (*storm)[i].time,
                       "pipeline: storm schedule not sorted by time");
        }
    }
    auto storm_pending = [&]() {
        return storm != nullptr && storm_next < storm->size();
    };

    // Storm eviction: the victims' KV was already destroyed by
    // dropCore (released, blocks returned, handles invalidated), so
    // unlike handle_evictions there is no pool state to unwind -
    // only the scheduler side: back to the FRONT of the wait queue
    // with everything decoded so far folded into the re-prefill, a
    // fresh generation so the stale heap entry can never resurrect
    // the dead residency, and admissions suspended (the Section
    // 4.4.4 backpressure rule applies to storm losses too).
    auto storm_evict = [&](const std::vector<std::uint64_t> &lost) {
        for (const auto id : lost) {
            const auto it = active.find(id);
            if (it == active.end())
                continue;
            ActiveSeq &seq = it->second;
            Pending back;
            back.id = id;
            back.prefillLen = seq.prefillLen + seq.decoded;
            back.decodeRemaining = seq.decodeRemaining;
            back.generation = seq.generation + 1;
            queue.push_front(back);
            stats.stormEvictions += 1;
            stats.recomputedTokens += back.prefillLen;
            stats.stormReprefilledTokens += back.prefillLen;
            if (seq.prefillEntered < seq.prefillLen)
                --prefill_count;
            ++stale_entries; // victim's heap entry is still enqueued
            active.erase(it);
            admissions_suspended = true;
        }
    };

    auto apply_storm_event = [&](const KvPoolEvent &ev) {
        for (const CoreCoord &c : ev.dropCores)
            storm_evict(kv.dropCore(c));
        for (const auto &a : ev.adopts)
            kv.adoptCore(a.info, a.scoreDuty);
        compact_heap();
        // Adopted capacity may rescue waiting (or just-evicted)
        // requests immediately - subject to the suspension rule.
        pump_admissions(ev.time);
    };

    // Cohort decode fast path: with every resident sequence in steady
    // decode and nothing waiting to be admitted, the heap's pop order
    // is a pure (ready, seq) merge of autoregressive chains. Replay
    // it in an insertion-sorted ring: no heap push/pop, no `active`
    // hash probe, and per-sequence KV growth batched into one
    // growFast per in-block run. Block-boundary allocations happen
    // in ring order via the handle-based grow, so results stay
    // bit-identical to the slow path; the ring is abandoned the
    // moment anything contends (eviction, admission, cohort of one).
    auto cohort_pass = [&]() {
        const bool static_kv = opts.staticKvAllocation;

        // Gather the one live heap entry of every resident sequence,
        // copying the hot per-token state into the flat ring slots.
        std::vector<RingMember> ring;
        ring.reserve(active.size());
        for (const HeapEntry &entry : ready_heap) {
            ActiveSeq *as = live_entry(entry);
            if (as) {
                ring.push_back({entry.ready, entry.seq,
                                entry.generation, as, 0, 0,
                                as->attnFree,
                                as->prefillLen + as->decoded,
                                as->decodeRemaining});
            }
        }
        ouroAssert(ring.size() == active.size(),
                   "cohort: live heap entries != resident sequences");
        ready_heap.clear();
        stale_entries = 0;
        std::sort(ring.begin(), ring.end(),
                  [](const RingMember &a, const RingMember &b) {
                      return ringBefore(a.ready, a.seq, b.ready,
                                        b.seq);
                  });
        for (auto &m : ring) {
            m.allowance = static_kv ? m.decodeRemaining
                                    : kv.growRoom(m.as->kv);
        }

        // Write a member's ring-local progress back to its ActiveSeq
        // (needed whenever slow-path machinery may look at it).
        auto sync_member = [&](const RingMember &m) {
            ActiveSeq &seq = *m.as;
            seq.decoded = m.position - seq.prefillLen;
            seq.decodeRemaining = m.decodeRemaining;
            seq.nextReady = m.ready;
            seq.attnFree = m.attnFree;
        };

        // Circular buffer over `ring`: members [head, head+count).
        const std::size_t cap = ring.size();
        std::size_t head = 0;
        std::size_t count = ring.size();
        auto at = [&](std::size_t k) -> RingMember & {
            return ring[(head + k) % cap];
        };

        bool bail = false;
        while (!bail && count > 1) {
            RingMember m = at(0);
            head = (head + 1) % cap;
            --count;

            bool contended = false;
            if (!static_kv) {
                if (m.allowance == 0) {
                    // Block boundary: flush the deferred in-block
                    // growth, then allocate exactly as the slow path
                    // would for this token. Eviction bookkeeping
                    // reads ActiveSeq progress, so sync everyone
                    // before a grow that may evict.
                    if (m.consumed > 0) {
                        kv.growFast(m.as->kv, m.consumed);
                        m.consumed = 0;
                    }
                    sync_member(m);
                    for (std::size_t k = 0; k < count; ++k)
                        sync_member(at(k));
                    const KvResult grown = kv.grow(m.as->kv);
                    if (!grown.evicted.empty()) {
                        handle_evictions(grown.evicted, false);
                        contended = true; // queue is non-empty now
                    }
                    if (!grown.ok) {
                        // Pool too small even after evicting everyone
                        // else: evict self (slow-path semantics).
                        handle_evictions({m.seq}, false);
                        if (kv.resident(m.seq))
                            kv.release(m.seq);
                        pump_admissions(makespan);
                        bail = true;
                        break; // member dropped, not reinserted
                    }
                    m.allowance = kv.growRoom(m.as->kv);
                } else {
                    --m.allowance;
                    ++m.consumed;
                }
            }

            // Decode step on ring-local state: same builder and the
            // SAME advance_item as the slow path (bit-identity by
            // construction), only the attention clock lives in the
            // ring slot instead of the ActiveSeq.
            const ItemTiming item =
                freshTokenItem(timing, m.position + 1);
            const double entry = std::max(m.ready, stage_free[0]);
            const double completion =
                advance_item(m.ready, m.attnFree, item);

            if (m.position == m.as->prefillLen)
                m.as->firstTokenDone = completion; // first decode
            m.position += 1;
            m.decodeRemaining -= 1;
            note_output(completion);
            m.ready = completion; // autoregressive gating

            if (m.decodeRemaining == 0) {
                record_completion(m.as->firstTokenDone, completion,
                                  m.position - m.as->prefillLen);
                if (!static_kv && m.consumed > 0)
                    kv.growFast(m.as->kv, m.consumed);
                kv.release(m.as->kv);
                active.erase(m.seq);
                admissions_suspended = false; // a request completed
                pump_admissions(entry);
                if (contended)
                    bail = true;
                continue; // member dropped
            }

            // Reinsert at the sorted position. Autoregressive
            // completions almost always land at the back, so scan
            // from the tail; the freed front slot absorbs the shift.
            std::size_t j = count;
            while (j > 0 && ringBefore(m.ready, m.seq,
                                       at(j - 1).ready,
                                       at(j - 1).seq)) {
                at(j) = at(j - 1);
                --j;
            }
            at(j) = m;
            ++count;
            if (contended)
                bail = true; // evictions re-queued work: fall back
        }

        // Survivors sync back and return to the heap with their
        // deferred KV growth committed. Evicted members are skipped:
        // either gone from `active`, or already re-admitted under a
        // NEW generation (their fresh heap entry was pushed by
        // pump_admissions, so re-pushing this stale membership would
        // duplicate them).
        for (std::size_t k = 0; k < count; ++k) {
            const RingMember &m = at(k);
            const auto it = active.find(m.seq);
            if (it == active.end() ||
                it->second.generation != m.generation) {
                continue;
            }
            sync_member(m);
            if (!static_kv && m.consumed > 0)
                kv.growFast(it->second.kv, m.consumed);
            heap_push({m.ready, m.seq, m.generation});
        }
    };

    pump_admissions(0.0);

    while (!ready_heap.empty() || !queue.empty()) {
        // Storm events interleave with heap events on the run clock:
        // pop order is nondecreasing in `ready`, so applying an event
        // once its time is <= the heap front means no item whose
        // ready time FOLLOWS the event can have been processed before
        // it (stale fronts only delay application, never reorder it).
        // With the heap empty the event is the only state change left
        // - apply it before the skip path so adopted capacity can
        // still rescue the queue head.
        if (storm_pending()) {
            const KvPoolEvent &ev = (*storm)[storm_next];
            if (ready_heap.empty() ||
                ev.time <= ready_heap.front().ready) {
                ++storm_next;
                apply_storm_event(ev);
                continue;
            }
        }

        if (ready_heap.empty()) {
            // Nothing runnable but requests remain: every resident
            // sequence finished yet the queue head still does not
            // fit, so the request genuinely exceeds pool capacity.
            const Pending p = queue.front();
            queue.pop_front();
            warn("pipeline: request ", p.id,
                 " exceeds KV pool capacity; skipped");
            stats.skippedRequests += 1;
            pump_admissions(makespan);
            continue;
        }

        // Cohort fast path entry: every resident sequence decoding,
        // nobody waiting for admission, and >1 resident (a cohort of
        // one is the single-stream batch below). O(1) eligibility
        // thanks to the running prefill_count. A pending storm event
        // bails out BEFORE entry: the ring advances members past the
        // event time with no event check in its token loop.
        if (opts.cohortFastPath && prefill_count == 0 &&
            queue.empty() && active.size() > 1 &&
            !storm_pending()) {
            cohort_pass();
            continue;
        }

        const HeapEntry top = heap_pop();
        const auto it = active.find(top.seq);
        if (it == active.end() ||
            it->second.generation != top.generation) {
            // Stale entry drained naturally: keep the hygiene counter
            // honest or compact_heap fires on an already-clean heap.
            if (stale_entries > 0)
                --stale_entries;
            continue;
        }
        ActiveSeq &seq = it->second;

        bool is_prefill = seq.prefillEntered < seq.prefillLen;

        // Decode fast path: with a single resident sequence and an
        // empty admission queue nothing contends for the stage
        // servers or the KV pool, so consecutive autoregressive
        // steps collapse into ONE heap event - the event queue then
        // scales with contention, not token count. Growth stays on
        // the in-block fast path (no allocation, no eviction), so
        // the batch is bounded by the room left in the newest KV
        // blocks.
        // (Bails out while a storm event is pending for the same
        // reason as the cohort ring: the batch would decode past the
        // event against KV the storm is about to destroy.)
        if (!is_prefill && active.size() == 1 && queue.empty() &&
            !storm_pending()) {
            const std::uint64_t room =
                opts.staticKvAllocation ? seq.decodeRemaining
                                        : kv.growRoom(seq.kv);
            const std::uint64_t batch =
                std::min(seq.decodeRemaining, room);
            if (batch > 0) {
                if (!opts.staticKvAllocation)
                    kv.growFast(seq.kv, batch);
                for (std::uint64_t i = 0; i < batch; ++i) {
                    const std::uint64_t pos =
                        seq.prefillLen + seq.decoded;
                    // Contexts inside a batch are monotone and never
                    // revisited (one resident sequence): compute
                    // directly instead of filling the cache with
                    // single-use entries.
                    const ItemTiming item =
                        freshTokenItem(timing, pos + 1);
                    const double completion = traverse(seq, item);
                    if (seq.decoded == 0)
                        seq.firstTokenDone = completion;
                    seq.decoded += 1;
                    seq.decodeRemaining -= 1;
                    note_output(completion);
                    seq.nextReady = completion; // autoregressive
                }
                if (seq.decodeRemaining == 0) {
                    const double finished = seq.nextReady;
                    record_completion(seq.firstTokenDone, finished,
                                      seq.decoded);
                    kv.release(seq.kv);
                    active.erase(it); // invalidates seq
                    admissions_suspended = false;
                    pump_admissions(finished);
                    continue;
                }
                seq.generation += 1;
                heap_push({seq.nextReady, seq.id, seq.generation});
                continue;
            }
            // No in-block room: fall through to the slow path, which
            // allocates the next KV block.
        }

        // Build the next item for this sequence.
        ItemTiming scratch;
        const ItemTiming *item = nullptr;
        bool last_prefill_token = false;
        if (is_prefill) {
            if (token_grained) {
                if (pure_tgp) {
                    item = &cache.token(
                            timing,
                            attendedContext(model.attention,
                                            seq.prefillEntered,
                                            seq.prefillLen));
                } else {
                    // TGP with block: defer attention to the final
                    // prefill token (Fig. 5c).
                    last_prefill_token =
                        seq.prefillEntered + 1 == seq.prefillLen;
                    item = &cache.blockedToken(
                            timing, model.attention, seq.prefillLen,
                            last_prefill_token,
                            opts.attentionParallelism);
                }
            } else {
                item = &cache.sequence(timing, model.attention,
                                       seq.prefillLen,
                                       opts.attentionParallelism);
            }
        } else {
            // Decode token: causal attention over everything so far.
            // A token item is six fused multiply-adds; computing it
            // inline beats a hash lookup, so the cache memoizes only
            // the O(prefill_len) item shapes above.
            const std::uint64_t pos = seq.prefillLen + seq.decoded;
            scratch = freshTokenItem(timing, pos + 1);
            item = &scratch;
        }

        // KV growth for the entering tokens (dynamic mode only).
        if (!opts.staticKvAllocation) {
            if (!is_prefill) {
                const KvResult grow = kv.grow(seq.kv);
                handle_evictions(grow.evicted, true);
                compact_heap();
                if (!grow.ok) {
                    // The grower itself could not fit (pool too small
                    // even after evicting everyone else): evict self.
                    handle_evictions({seq.id}, false);
                    if (kv.resident(seq.id))
                        kv.release(seq.id);
                    pump_admissions(makespan);
                    continue;
                }
            }
            // Prefill KV was reserved at admission.
        }

        const double entry = std::max(seq.nextReady, stage_free[0]);
        const double completion = traverse(seq, *item);

        // Advance the sequence and enqueue its next item.
        if (is_prefill) {
            seq.prefillEntered += item->tokens;
            const bool done_prefill =
                seq.prefillEntered >= seq.prefillLen;
            if (done_prefill) {
                // First decode token depends on the prompt's full
                // traversal of the pipeline.
                --prefill_count;
                seq.nextReady = completion;
            } else {
                // Prefill tokens stream: next is ready at this entry.
                seq.nextReady = entry;
            }
            if (seq.decodeRemaining == 0 && done_prefill) {
                kv.release(seq.kv);
                active.erase(it);
                admissions_suspended = false; // a request completed
                pump_admissions(entry);
                continue;
            }
            seq.generation += 1;
            heap_push({seq.nextReady, seq.id, seq.generation});
        } else {
            if (seq.decoded == 0)
                seq.firstTokenDone = completion;
            seq.decoded += 1;
            seq.decodeRemaining -= 1;
            note_output(completion);
            if (seq.decodeRemaining == 0) {
                // Finished: release KV when the token drains.
                record_completion(seq.firstTokenDone, completion,
                                  seq.decoded);
                kv.release(seq.kv);
                active.erase(it);
                admissions_suspended = false; // a request completed
                pump_admissions(entry);
                continue;
            }
            seq.nextReady = completion; // autoregressive gating
            seq.generation += 1;
            heap_push({seq.nextReady, seq.id, seq.generation});
        }
        pump_admissions(entry);
    }

    stats.makespanSeconds = makespan;
    // Stamp the bin width so mergeConcurrent can check alignment.
    stats.throughputBinSeconds =
        opts.throughputBinSeconds > 0.0 ? opts.throughputBinSeconds
                                        : 0.0;
    double busy_sum = 0.0;
    for (const double b : stage_busy) {
        busy_sum += b;
        stats.bottleneckBusySeconds =
            std::max(stats.bottleneckBusySeconds, b);
    }
    stats.utilization =
        makespan > 0.0
            ? busy_sum / (kStagesPerBlock * makespan)
            : 0.0;
    stats.utilization = std::min(stats.utilization, 1.0);
    stats.bubbleFraction = 1.0 - stats.utilization;
    stats.avgContext =
        ctx_samples ? ctx_sum / static_cast<double>(ctx_samples) : 0.0;
    // Raw aggregates behind the derived means: what merge() needs to
    // recompute utilization/avgContext exactly after folding runs.
    stats.itemsProcessed = ctx_samples;
    stats.contextTokensSum = ctx_sum;
    stats.stageBusySumSeconds = busy_sum;
    // Deltas, not lifetime counters: a shared cache accumulates
    // across runs but each run reports only its own traffic.
    stats.timingCacheHits = cache.hits() - cache_hits0;
    stats.timingCacheMisses = cache.misses() - cache_misses0;
    return stats;
}

} // namespace ouro
