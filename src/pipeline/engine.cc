#include "engine.hh"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "pipeline/timing_cache.hh"

namespace ouro
{

namespace
{

/** A request's live progress. */
struct ActiveSeq
{
    std::uint64_t id;
    std::uint64_t prefillLen;     ///< tokens to (re)compute as prompt
    std::uint64_t decodeRemaining;
    std::uint64_t prefillEntered = 0;
    std::uint64_t decoded = 0;
    double nextReady = 0.0;
    /** When this sequence's own KV-ring cores free up: attention
     *  stages are per-sequence resources, not shared servers. */
    double attnFree = 0.0;
    std::uint64_t generation = 0; ///< invalidates stale heap entries
    bool dead = false;
};

/** Pending (not yet admitted) request. */
struct Pending
{
    std::uint64_t id;
    std::uint64_t prefillLen;
    std::uint64_t decodeRemaining;
};

struct HeapEntry
{
    double ready;
    std::uint64_t seq;
    std::uint64_t generation;

    bool operator>(const HeapEntry &other) const
    {
        return ready > other.ready;
    }
};

} // namespace

PipelineStats
runPipeline(const Workload &workload, const ModelConfig &model,
            const StageTiming &timing, BlockKvManager &kv,
            const PipelineOptions &opts)
{
    PipelineStats stats;

    const auto blocks = static_cast<double>(model.numBlocks);
    const bool token_grained =
        opts.kind == PipelineKind::TokenGrained;
    const bool pure_tgp =
        token_grained && masksAllowPureTgp(model.attention);

    // Memoized item timings: identical (phase, context, length)
    // items are built once instead of per heap event - the win is on
    // the O(prefill_len) shapes (whole-sequence and blocked-prefill
    // items, plus repeated prefill contexts across sequences); plain
    // decode-token items are cheaper to recompute than to look up.
    // Callers may share a cache across runs; its coefficient check
    // flushes it whenever the StageTiming was rederived (e.g. after
    // a remap).
    TimingCache local_cache(opts.ctxBucketShift);
    TimingCache &cache =
        opts.timingCache ? *opts.timingCache : local_cache;
    const std::uint64_t cache_hits0 = cache.hits();
    const std::uint64_t cache_misses0 = cache.misses();

    std::deque<Pending> queue;
    for (const auto &r : workload.requests)
        queue.push_back({r.id, r.prefillLen, r.decodeLen});

    std::unordered_map<std::uint64_t, ActiveSeq> active;
    active.reserve(workload.requests.size());
    std::vector<HeapEntry> heap_store;
    heap_store.reserve(workload.requests.size() + 16);
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> ready(std::greater<>{},
                                              std::move(heap_store));

    // One server per stage kind (the representative block's tandem
    // queue); blocks 2..N add pure latency, not contention - inter-
    // item blocking is already captured at block 1.
    std::array<double, kStagesPerBlock> stage_free{};
    std::array<double, kStagesPerBlock> stage_busy{};
    double makespan = 0.0;

    double ctx_sum = 0.0;
    std::uint64_t ctx_samples = 0;

    auto admission_tokens = [&](const Pending &p) -> std::uint64_t {
        return opts.staticKvAllocation ? opts.maxContext
                                       : p.prefillLen;
    };

    // Section 4.4.4: once an eviction happens, new scheduling is
    // suspended until a prior request completes (prevents eviction
    // ping-pong / KV thrashing).
    bool admissions_suspended = false;

    // Admit from the FCFS queue head while the KV pool accepts
    // without evicting (Section 4.4.4: new scheduling never evicts).
    auto pump_admissions = [&](double now) {
        if (admissions_suspended && !active.empty())
            return;
        admissions_suspended = false; // nothing left running: resume
        while (!queue.empty()) {
            const Pending &p = queue.front();
            if (!kv.admitNoEvict(p.id, admission_tokens(p)))
                break;
            ActiveSeq seq;
            seq.id = p.id;
            seq.prefillLen = p.prefillLen;
            seq.decodeRemaining = p.decodeRemaining;
            seq.nextReady = now;
            active.emplace(p.id, seq);
            ready.push({now, p.id, 0});
            queue.pop_front();
        }
        stats.peakConcurrency = std::max(
                stats.peakConcurrency,
                static_cast<double>(active.size()));
    };

    // Eviction handler: kill the resident sequence and put it back at
    // the FRONT of the wait queue with its grown prefill (recompute).
    auto handle_evictions =
            [&](const std::vector<std::uint64_t> &evicted) {
        for (const auto id : evicted) {
            const auto it = active.find(id);
            if (it == active.end())
                continue; // already finished/released
            ActiveSeq &seq = it->second;
            Pending back;
            back.id = id;
            // Everything computed so far must be re-prefilled.
            back.prefillLen = seq.prefillLen + seq.decoded;
            back.decodeRemaining = seq.decodeRemaining;
            queue.push_front(back);
            stats.evictions += 1;
            stats.recomputedTokens += back.prefillLen;
            seq.dead = true;
            seq.generation += 1;
            active.erase(it);
            admissions_suspended = true;
        }
    };

    // Tandem traversal of the representative block's six stage
    // servers; the remaining N-1 blocks add latency only. Dense
    // stages are shared servers (one set of weight cores); the
    // attention stages run on the sequence's OWN KV-ring cores
    // (Section 4.4.3 spreads sequences across distinct cores),
    // so they serialise within a sequence but overlap across
    // sequences. Returns the item's completion time.
    auto traverse = [&](ActiveSeq &seq,
                        const ItemTiming &item) -> double {
        double cursor = seq.nextReady;
        for (unsigned s = 0; s < kStagesPerBlock; ++s) {
            const auto kind = static_cast<StageKind>(s);
            double start;
            if (stageIsAttention(kind)) {
                start = std::max(cursor, seq.attnFree);
            } else {
                start = std::max(cursor, stage_free[s]);
            }
            const double done = start + item.stage[s];
            if (stageIsAttention(kind))
                seq.attnFree = done;
            else
                stage_free[s] = done;
            stage_busy[s] += item.stage[s];
            cursor = done;
        }
        const double completion =
            cursor + (blocks - 1.0) * item.total;
        makespan = std::max(makespan, completion);
        stats.tokensProcessed += item.tokens;
        ctx_sum += static_cast<double>(item.context);
        ++ctx_samples;
        return completion;
    };

    pump_admissions(0.0);

    while (!ready.empty() || !queue.empty()) {
        if (ready.empty()) {
            // Nothing runnable but requests remain: every resident
            // sequence finished yet the queue head still does not
            // fit, so the request genuinely exceeds pool capacity.
            const Pending p = queue.front();
            queue.pop_front();
            warn("pipeline: request ", p.id,
                 " exceeds KV pool capacity; skipped");
            pump_admissions(makespan);
            continue;
        }
        const HeapEntry top = ready.top();
        ready.pop();
        const auto it = active.find(top.seq);
        if (it == active.end() || it->second.dead ||
            it->second.generation != top.generation) {
            continue; // stale
        }
        ActiveSeq &seq = it->second;

        bool is_prefill = seq.prefillEntered < seq.prefillLen;

        // Decode fast path: with a single resident sequence and an
        // empty admission queue nothing contends for the stage
        // servers or the KV pool, so consecutive autoregressive
        // steps collapse into ONE heap event - the event queue then
        // scales with contention, not token count. Growth stays on
        // the in-block fast path (no allocation, no eviction), so
        // the batch is bounded by the room left in the newest KV
        // blocks.
        if (!is_prefill && active.size() == 1 && queue.empty()) {
            const std::uint64_t room =
                opts.staticKvAllocation ? seq.decodeRemaining
                                        : kv.growRoom(seq.id);
            const std::uint64_t batch =
                std::min(seq.decodeRemaining, room);
            if (batch > 0) {
                if (!opts.staticKvAllocation)
                    kv.growFast(seq.id, batch);
                for (std::uint64_t i = 0; i < batch; ++i) {
                    const std::uint64_t pos =
                        seq.prefillLen + seq.decoded;
                    // Contexts inside a batch are monotone and never
                    // revisited (one resident sequence): compute
                    // directly instead of filling the cache with
                    // single-use entries.
                    const ItemTiming item =
                        freshTokenItem(timing, pos + 1);
                    const double completion = traverse(seq, item);
                    seq.decoded += 1;
                    seq.decodeRemaining -= 1;
                    stats.outputTokens += 1;
                    seq.nextReady = completion; // autoregressive
                }
                if (seq.decodeRemaining == 0) {
                    const double finished = seq.nextReady;
                    kv.release(seq.id);
                    active.erase(it); // invalidates seq
                    admissions_suspended = false;
                    pump_admissions(finished);
                    continue;
                }
                seq.generation += 1;
                ready.push({seq.nextReady, seq.id, seq.generation});
                continue;
            }
            // No in-block room: fall through to the slow path, which
            // allocates the next KV block.
        }

        // Build the next item for this sequence.
        ItemTiming scratch;
        const ItemTiming *item = nullptr;
        bool last_prefill_token = false;
        if (is_prefill) {
            if (token_grained) {
                if (pure_tgp) {
                    item = &cache.token(
                            timing,
                            attendedContext(model.attention,
                                            seq.prefillEntered,
                                            seq.prefillLen));
                } else {
                    // TGP with block: defer attention to the final
                    // prefill token (Fig. 5c).
                    last_prefill_token =
                        seq.prefillEntered + 1 == seq.prefillLen;
                    item = &cache.blockedToken(
                            timing, model.attention, seq.prefillLen,
                            last_prefill_token,
                            opts.attentionParallelism);
                }
            } else {
                item = &cache.sequence(timing, model.attention,
                                       seq.prefillLen,
                                       opts.attentionParallelism);
            }
        } else {
            // Decode token: causal attention over everything so far.
            // A token item is six fused multiply-adds; computing it
            // inline beats a hash lookup, so the cache memoizes only
            // the O(prefill_len) item shapes above.
            const std::uint64_t pos = seq.prefillLen + seq.decoded;
            scratch = freshTokenItem(timing, pos + 1);
            item = &scratch;
        }

        // KV growth for the entering tokens (dynamic mode only).
        if (!opts.staticKvAllocation) {
            if (!is_prefill) {
                const KvResult grow = kv.grow(seq.id);
                handle_evictions(grow.evicted);
                if (!grow.ok || seq.dead) {
                    // The grower itself could not fit (pool too small
                    // even after evicting everyone else): evict self.
                    if (!seq.dead)
                        handle_evictions({seq.id});
                    if (kv.resident(seq.id))
                        kv.release(seq.id);
                    pump_admissions(makespan);
                    continue;
                }
            }
            // Prefill KV was reserved at admission.
        }

        const double entry = std::max(seq.nextReady, stage_free[0]);
        const double completion = traverse(seq, *item);

        // Advance the sequence and enqueue its next item.
        if (is_prefill) {
            seq.prefillEntered += item->tokens;
            if (seq.prefillEntered >= seq.prefillLen) {
                // First decode token depends on the prompt's full
                // traversal of the pipeline.
                seq.nextReady = completion;
            } else {
                // Prefill tokens stream: next is ready at this entry.
                seq.nextReady = entry;
            }
            if (seq.decodeRemaining == 0 &&
                seq.prefillEntered >= seq.prefillLen) {
                kv.release(seq.id);
                active.erase(it);
                admissions_suspended = false; // a request completed
                pump_admissions(entry);
                continue;
            }
            seq.generation += 1;
            ready.push({seq.nextReady, seq.id, seq.generation});
        } else {
            seq.decoded += 1;
            seq.decodeRemaining -= 1;
            stats.outputTokens += 1;
            if (seq.decodeRemaining == 0) {
                // Finished: release KV when the token drains.
                kv.release(seq.id);
                active.erase(it);
                admissions_suspended = false; // a request completed
                pump_admissions(entry);
                continue;
            }
            seq.nextReady = completion; // autoregressive gating
            seq.generation += 1;
            ready.push({seq.nextReady, seq.id, seq.generation});
        }
        pump_admissions(entry);
    }

    stats.makespanSeconds = makespan;
    double busy_sum = 0.0;
    for (const double b : stage_busy) {
        busy_sum += b;
        stats.bottleneckBusySeconds =
            std::max(stats.bottleneckBusySeconds, b);
    }
    stats.utilization =
        makespan > 0.0
            ? busy_sum / (kStagesPerBlock * makespan)
            : 0.0;
    stats.utilization = std::min(stats.utilization, 1.0);
    stats.bubbleFraction = 1.0 - stats.utilization;
    stats.avgContext =
        ctx_samples ? ctx_sum / static_cast<double>(ctx_samples) : 0.0;
    // Deltas, not lifetime counters: a shared cache accumulates
    // across runs but each run reports only its own traffic.
    stats.timingCacheHits = cache.hits() - cache_hits0;
    stats.timingCacheMisses = cache.misses() - cache_misses0;
    return stats;
}

} // namespace ouro
