/**
 * @file
 * Pipeline execution engines (paper Section 4.2).
 *
 * The physical pipeline is 6N stages deep (N transformer blocks x 6
 * stages). We model it as a *bottleneck conveyor*: work items enter
 * serially; consecutive entries are separated by the entering item's
 * bottleneck-stage service time (a uniform pipeline admits one item
 * per bottleneck interval); an item's completion is its entry plus
 * its full 6N-stage latency; at most 6N items are in flight.
 *
 * The two granularities of Fig. 5 differ only in what an item is:
 *
 *  - TOKEN-GRAINED (TGP): every token is an item. Prefill tokens of
 *    one sequence stream back-to-back (the causal-mask insight of
 *    Section 4.2.1); a decode token becomes ready only when its
 *    predecessor leaves the pipeline (autoregression) - so decode
 *    throughput is capacity-limited by how many sequences the KV
 *    cache can hold concurrently, the effect behind the paper's
 *    13B-vs-32B observation.
 *
 *  - SEQUENCE-GRAINED (SGP): a whole prefill is one item whose
 *    per-stage time is the sum over its tokens; decode tokens remain
 *    single items. Long items occupy their stage for their full
 *    duration, starving the other 6N-1 stages - exactly the bubbles
 *    of Fig. 5(a).
 *
 *  - TGP WITH BLOCK (encoders, Section 4.2.2): tokens stream, but a
 *    non-causal mask forces the attention work of the whole sequence
 *    onto the sequence's final prefill token (nothing can score until
 *    every K/V exists). Attention stages thus degrade to sequence
 *    granularity while dense stages stay token-grained - Fig. 5(c).
 *
 * The engine also embeds the inter-sequence scheduler of Section
 * 4.4.4: FCFS admission against the (representative-block) KV
 * manager, preemptive decode scheduling, MRU eviction with
 * re-prefill, and front-of-queue re-entry for evicted requests.
 */

#ifndef OURO_PIPELINE_ENGINE_HH
#define OURO_PIPELINE_ENGINE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "kvcache/manager.hh"
#include "model/llm.hh"
#include "model/masks.hh"
#include "pipeline/timing.hh"
#include "workload/requests.hh"

namespace ouro
{

class TimingCache;

/** Pipeline granularity (Fig. 5). */
enum class PipelineKind
{
    SequenceGrained, ///< baseline (Fig. 5a)
    TokenGrained,    ///< TGP (Fig. 5b); blocks non-causal attention
                     ///< automatically (Fig. 5c)
};

/**
 * One mid-run KV pool mutation (PR 9: serving through a failure
 * storm). At `time` on the run clock, `dropCores` are removed from
 * the representative block's pool via BlockKvManager::dropCore -
 * residents whose KV lived there are storm-evicted and re-enter the
 * wait queue with their full re-prefill as real pipeline work - and
 * `adopts` are grafted in via adoptCore (KV capacity borrowed from
 * adjacent blocks by the recovery service). Schedules must be sorted
 * by nondecreasing time (asserted).
 */
struct KvPoolEvent
{
    double time = 0.0;
    std::vector<CoreCoord> dropCores;

    struct Adopt
    {
        KvCoreInfo info;
        bool scoreDuty = false;
    };
    std::vector<Adopt> adopts;
};

/** Aggregate results of one pipeline run. */
struct PipelineStats
{
    double makespanSeconds = 0.0;
    std::uint64_t tokensProcessed = 0;   ///< prefill + decode
    std::uint64_t outputTokens = 0;      ///< decode only
    double bottleneckBusySeconds = 0.0;  ///< conveyor occupancy
    double utilization = 0.0;            ///< busy / makespan
    double bubbleFraction = 0.0;         ///< 1 - utilization
    std::uint64_t evictions = 0;
    std::uint64_t recomputedTokens = 0;  ///< re-prefilled after evict
    /** Residents evicted because a storm event dropped the KV core
     *  their cache lived on (disjoint from `evictions`, which counts
     *  capacity-pressure MRU evictions only). */
    std::uint64_t stormEvictions = 0;
    /** Tokens those storm victims must re-prefill on re-admission
     *  (also folded into recomputedTokens, the all-causes total). */
    std::uint64_t stormReprefilledTokens = 0;
    /** Requests dropped because they exceed KV pool capacity even
     *  with the pool otherwise empty: work the run did NOT do.
     *  Serving studies must report this or silently under-count. */
    std::uint64_t skippedRequests = 0;
    double peakConcurrency = 0.0;        ///< resident sequences (max)
    double avgContext = 0.0;             ///< mean attended context
    std::uint64_t timingCacheHits = 0;   ///< memoized item reuses
    std::uint64_t timingCacheMisses = 0; ///< items built fresh

    /** Raw aggregates behind the derived means above, kept so that
     *  merge() can recompute the derived fields exactly. */
    std::uint64_t itemsProcessed = 0;    ///< pipeline items traversed
    double contextTokensSum = 0.0;       ///< sum of attended contexts
    double stageBusySumSeconds = 0.0;    ///< busy time over all stages

    /**
     * Per-completed-request serving latencies (seconds), pushed in
     * completion-processing order - identical on the cohort fast
     * path and the per-event slow path (part of their bit-identity
     * contract). TTFT is the completion time of the request's first
     * decode token in its final (completing) residency, measured
     * from run start (queueing delay included); the inter-token
     * sample is the request's mean decode-token spacing (recorded
     * only for requests with >= 2 decode tokens). Evicted
     * residencies contribute nothing until the request completes.
     */
    std::vector<double> ttftSamples;
    std::vector<double> interTokenSamples;

    /**
     * Decode-completion histogram: bin b counts output tokens whose
     * completion time fell in [b, b+1) * throughputBinSeconds.
     * Empty unless PipelineOptions::throughputBinSeconds > 0. The
     * storm bench reads degradation depth and time-to-recover off
     * this curve. merge() concatenates (back-to-back run semantics,
     * matching how makespans add); mergeConcurrent() sums bins
     * elementwise (side-by-side semantics - fleet wafers share one
     * clock, so bin b means the same interval on every wafer).
     */
    std::vector<std::uint64_t> outputTokenBins;

    /** Bin width behind outputTokenBins, stamped from
     *  PipelineOptions::throughputBinSeconds by every run (0 when
     *  binning is off). mergeConcurrent() asserts the widths agree -
     *  an elementwise bin sum is meaningless across widths. */
    double throughputBinSeconds = 0.0;

    double outputTokensPerSecond() const
    {
        return makespanSeconds > 0.0
                   ? static_cast<double>(outputTokens) /
                         makespanSeconds
                   : 0.0;
    }

    /**
     * Fold another run's stats into this one as if the two ran
     * back to back with an idle (fully drained) boundary between
     * them: durations and counters add, peaks take the max, derived
     * means are recomputed from the merged raw aggregates, latency
     * samples concatenate. This is the aggregation primitive of the
     * sampled-window simulator; merging window runs in ascending
     * window order is its full-run oracle (see sim/sampled_run.hh).
     */
    PipelineStats &merge(const PipelineStats &other);

    /**
     * Fold another run's stats into this one as if the two ran SIDE
     * BY SIDE on one shared clock (fleet wafers all starting at
     * t = 0): the makespan takes the max (the fleet is done when its
     * slowest wafer drains), counters add, derived means are
     * recomputed from the merged raw aggregates, latency samples
     * concatenate, and outputTokenBins are summed ELEMENTWISE - both
     * sides must carry the same throughputBinSeconds (asserted
     * whenever both are binned), so the fleet-wide throughput curve
     * is well-defined and `sum(bins) == outputTokens` is preserved.
     * peakConcurrency adds (each wafer holds its residents
     * simultaneously; the sum of per-wafer peaks is the tight upper
     * bound on the instantaneous fleet peak). bottleneckBusySeconds
     * takes the max (wafers are separate conveyors). Fleet-level
     * utilization saturates at 1.0 by construction (N wafers' stage
     * busy against one makespan) - read per-wafer utilization for
     * per-wafer health. This is the aggregation primitive of the
     * fleet simulation layer (see sim/fleet.hh).
     */
    PipelineStats &mergeConcurrent(const PipelineStats &other);
};

/** Engine options. */
struct PipelineOptions
{
    PipelineKind kind = PipelineKind::TokenGrained;

    /**
     * Model static KV allocation (ablation baseline): every admitted
     * sequence reserves its worst-case context up front.
     */
    bool staticKvAllocation = false;

    /** Upper bound used for static allocation. */
    std::uint64_t maxContext = 4096;

    /**
     * Token-level parallelism available to bulk (sequence-granular)
     * attention: when a whole sequence's deferred attention runs at
     * once, its positions spread over this many KV crossbars/cores
     * concurrently. 1 = fully serial (conservative default).
     */
    double attentionParallelism = 1.0;

    /**
     * Shared timing-memoization cache. When null the engine uses a
     * private cache for the run. A shared cache self-invalidates
     * when the StageTiming coefficients change (fingerprint check),
     * so remapped deployments never see stale timings.
     */
    TimingCache *timingCache = nullptr;

    /**
     * Context bucket width (log2) of the timing cache. 0 = exact
     * contexts (cache hits bit-identical to fresh computation);
     * larger shifts trade timing resolution for cache size on
     * huge-context scans.
     */
    unsigned ctxBucketShift = 0;

    /**
     * Cohort decode fast path (PR 2): when every resident sequence
     * is in steady decode and the admission queue is empty, the
     * deterministic heap-pop order is replayed in an insertion-
     * sorted ring - no heap traffic, no per-token hash probes, KV
     * growth batched through the handle-based growFast. Results are
     * bit-identical to the per-event slow path (tests assert this);
     * disable only to measure the slow path or to bisect.
     */
    bool cohortFastPath = true;

    /**
     * Failure-storm schedule (PR 9), sorted by nondecreasing time;
     * null or empty leaves the engine BIT-IDENTICAL to today. While
     * any event is still pending the engine stays on the per-event
     * slow path (the cohort ring and the single-stream decode batch
     * both bail out): batched paths can jump the run clock past a
     * pending event, which would let tokens decode against KV the
     * storm already destroyed. Once the schedule drains, the fast
     * paths resume - that resumption is the measured recovery.
     */
    const std::vector<KvPoolEvent> *stormSchedule = nullptr;

    /** Width of the outputTokenBins histogram; 0 disables binning
     *  (no other stat is affected either way). */
    double throughputBinSeconds = 0.0;
};

/**
 * Run @p workload through the pipeline of @p model with stage times
 * @p timing, using @p kv as the representative-block KV manager (all
 * N blocks see identical KV load, so one manager stands for all).
 */
PipelineStats runPipeline(const Workload &workload,
                          const ModelConfig &model,
                          const StageTiming &timing,
                          BlockKvManager &kv,
                          const PipelineOptions &opts = {});

} // namespace ouro

#endif // OURO_PIPELINE_ENGINE_HH
