/**
 * @file
 * Streaming day-long arrival traces (ROADMAP "Sampled simulation for
 * day-long traces").
 *
 * A production day of fleet traffic is far too many requests to hold
 * in memory, let alone event-step; the sampled-simulation workflow
 * (src/sim/sampled_run.hh) instead materializes *windows* of the day
 * on demand. DayTrace makes that exact: every request is a PURE
 * FUNCTION of (params, index) - counter-based per-request seeding,
 * no sequential RNG state - so materializing any [t0, t1) window is
 * bit-identical to generating the whole day and slicing it, and two
 * windows can be generated independently on different threads.
 *
 * Arrival model: a seeded diurnal rate curve given as 24 piecewise-
 * constant hourly weights (trough at night, morning/evening peaks by
 * default). Request k sits at the arrival *quantile*
 *
 *     q_k = k + u_k            (u_k in [0, 1), counter-seeded)
 *
 * which is STRICTLY increasing in k, and its arrival time is the
 * inverse cumulative rate curve evaluated at q_k. Window membership
 * is decided in quantile space (q_k compared against the window
 * boundaries' exact cumulative targets), so the index range of a
 * window is found by binary search on a strictly monotone integer-
 * anchored sequence - no floating-point boundary ambiguity. The
 * whole-day request count equals params.requests EXACTLY, and any
 * window's count matches the rate integral over the window to within
 * rounding (|count - expected| <= 2; property-tested).
 *
 * Lengths: heavy-tail clipped-lognormal prompts and continuations
 * with the same floors and context-window clamp as wikiText2Like
 * (prefill >= 16, decode >= 16, prefill + decode <= maxLen).
 */

#ifndef OURO_WORKLOAD_TRACE_HH
#define OURO_WORKLOAD_TRACE_HH

#include <array>
#include <cstdint>

#include "workload/requests.hh"

namespace ouro
{

/** Parameters of one synthetic day of traffic. */
struct DayTraceParams
{
    /** Total requests over the whole day (exact). */
    std::uint64_t requests = 10000;

    /** Trace horizon in seconds (a "day" of 24 equal segments). */
    double daySeconds = 86400.0;

    /** Counter-based master seed: request k derives its private
     *  stream from (seed, k) only. */
    std::uint64_t seed = 20260808;

    /**
     * Relative arrival rate of each of the 24 equal day segments
     * (all must be > 0; normalised internally). The default is a
     * two-peak diurnal curve: overnight trough around 04:00, ramp
     * into a late-morning peak, afternoon plateau, evening peak.
     */
    std::array<double, 24> hourlyWeight = {
        0.35, 0.28, 0.22, 0.18, 0.16, 0.18, // 00:00 - 06:00 trough
        0.25, 0.42, 0.62, 0.85, 1.00, 0.98, // ramp to morning peak
        0.92, 0.90, 0.88, 0.85, 0.82, 0.85, // afternoon plateau
        0.92, 1.00, 0.95, 0.80, 0.60, 0.45, // evening peak + fall-off
    };

    /** Clipped-lognormal prompt lengths: median tokens, log-sigma. */
    double promptMedianTokens = 180.0;
    double promptSigma = 0.9;

    /** Clipped-lognormal continuation lengths. */
    double decodeMedianTokens = 130.0;
    double decodeSigma = 1.0;

    /** Context window: prefill + decode <= maxLen (>= 32). */
    std::uint64_t maxLen = 2048;
};

/** Contiguous request-index range of one trace window. */
struct TraceWindowRange
{
    std::uint64_t first = 0; ///< first request index in the window
    std::uint64_t last = 0;  ///< one past the last index

    std::uint64_t count() const { return last - first; }
};

/**
 * A day of traffic, materializable window by window. The object
 * holds only the parameters and the 24-entry cumulative rate table -
 * O(1) in the request count.
 */
class DayTrace
{
  public:
    explicit DayTrace(const DayTraceParams &params);

    const DayTraceParams &params() const { return params_; }
    std::uint64_t size() const { return params_.requests; }
    double daySeconds() const { return params_.daySeconds; }

    /**
     * Request k (id = k): lengths drawn from the request's private
     * counter-seeded stream. Pure in (params, k); requires
     * k < size().
     */
    Request request(std::uint64_t k) const;

    /** Arrival timestamp of request k in [0, daySeconds); strictly
     *  increasing in k up to floating-point rounding of the inverse
     *  rate map (window membership never depends on it). */
    double arrivalTime(std::uint64_t k) const;

    /** Arrival quantile q_k = k + u_k (strictly increasing in k);
     *  exposed for property tests. */
    double arrivalQuantile(std::uint64_t k) const;

    /**
     * Cumulative arrival quantile target of time t: the expected
     * number of arrivals in [0, t). Piecewise-linear, exactly 0 at
     * t <= 0 and exactly size() at t >= daySeconds.
     */
    double quantileTarget(double t) const;

    /** First request index with arrivalQuantile >= quantileTarget(t)
     *  (== size() when every request arrives before t). */
    std::uint64_t indexAt(double t) const;

    /** Index range of window [t0, t1); requires t0 <= t1. */
    TraceWindowRange windowRange(double t0, double t1) const;

    /** Materialize the requests of window [t0, t1) - bit-identical
     *  to slicing wholeDay() at the same boundaries. */
    Workload window(double t0, double t1) const;

    /** The full day as one workload (small traces / oracles only). */
    Workload wholeDay() const;

  private:
    DayTraceParams params_;
    /** prefix_[h] = sum of hourlyWeight[0..h); prefix_[24] = total. */
    std::array<double, 25> prefix_{};
};

} // namespace ouro

#endif // OURO_WORKLOAD_TRACE_HH
