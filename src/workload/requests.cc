#include "requests.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ouro
{

std::uint64_t
Workload::totalOutputTokens() const
{
    std::uint64_t n = 0;
    for (const auto &r : requests)
        n += r.decodeLen;
    return n;
}

std::uint64_t
Workload::totalTokens() const
{
    std::uint64_t n = 0;
    for (const auto &r : requests)
        n += r.totalTokens();
    return n;
}

std::uint64_t
Workload::maxSequenceLength() const
{
    std::uint64_t n = 0;
    for (const auto &r : requests)
        n = std::max(n, r.totalTokens());
    return n;
}

Workload
fixedWorkload(std::uint64_t lp, std::uint64_t ld, std::size_t count)
{
    ouroAssert(lp > 0, "fixedWorkload: zero prefill");
    Workload workload;
    workload.name = "LP=" + std::to_string(lp) +
                    ",LD=" + std::to_string(ld);
    workload.requests.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        workload.requests.push_back({i, lp, ld});
    return workload;
}

Workload
wikiText2Like(std::size_t count, std::uint64_t max_len,
              std::uint64_t seed)
{
    // Every request keeps prefill >= 16, decode >= 16 AND
    // prefill + decode <= max_len, so the window must fit both floors.
    ouroAssert(max_len >= 32,
               "wikiText2Like: max_len must be at least 32");
    Workload workload;
    workload.name = "WikiText-2";
    workload.requests.reserve(count);
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
        // Prompt: log-normal with median ~180 tokens and a heavy
        // tail (sigma 0.9); continuation: median ~130, fatter spread.
        const double lp = rng.logNormal(std::log(180.0), 0.9);
        const double ld = rng.logNormal(std::log(130.0), 1.0);
        Request request;
        request.id = i;
        // Cap the prompt at max_len - 16 so the decode floor always
        // fits (the former max_len cap could push the total past the
        // context window once the floor was applied).
        request.prefillLen = std::clamp<std::uint64_t>(
                static_cast<std::uint64_t>(lp), 16, max_len - 16);
        request.decodeLen = std::clamp<std::uint64_t>(
                static_cast<std::uint64_t>(ld), 16, max_len);
        // Keep the total inside the context window; the prompt cap
        // guarantees at least 16 decode tokens remain.
        if (request.prefillLen + request.decodeLen > max_len)
            request.decodeLen = max_len - request.prefillLen;
        workload.requests.push_back(request);
    }
    return workload;
}

std::vector<Workload>
paperWorkloads(std::size_t count, std::uint64_t seed)
{
    return {
        wikiText2Like(count, 2048, seed),
        fixedWorkload(128, 2048, count),
        fixedWorkload(2048, 128, count),
        fixedWorkload(2048, 2048, count),
    };
}

std::vector<Workload>
splitByAssignment(const Workload &workload,
                  const std::vector<std::uint32_t> &assignment,
                  std::uint32_t parts)
{
    ouroAssert(parts > 0, "splitByAssignment: zero parts");
    ouroAssert(assignment.size() == workload.requests.size(),
               "splitByAssignment: assignment covers ",
               assignment.size(), " requests, workload has ",
               workload.requests.size());
    std::vector<Workload> shards(parts);
    for (std::uint32_t p = 0; p < parts; ++p)
        shards[p].name = workload.name + "/w" + std::to_string(p);
    for (std::size_t i = 0; i < workload.requests.size(); ++i) {
        const std::uint32_t p = assignment[i];
        ouroAssert(p < parts, "splitByAssignment: request ", i,
                   " assigned to shard ", p, " of ", parts);
        shards[p].requests.push_back(workload.requests[i]);
    }
    return shards;
}

} // namespace ouro
