#include "trace.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ouro
{

namespace
{

/** SplitMix64 finalizer (same constants as the Rng seeder). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * The private seed of request k: two mixing rounds over (seed, k) so
 * neighbouring counters land in unrelated streams. This is the whole
 * "no sequential RNG state" discipline - request k's randomness is
 * reachable without generating requests 0..k-1.
 */
std::uint64_t
requestSeed(std::uint64_t seed, std::uint64_t k)
{
    return mix64(mix64(seed) ^ (k * 0xd1342543de82ef95ULL + 1));
}

} // namespace

DayTrace::DayTrace(const DayTraceParams &params) : params_(params)
{
    ouroAssert(params_.requests > 0, "DayTrace: zero requests");
    ouroAssert(params_.daySeconds > 0.0,
               "DayTrace: non-positive daySeconds");
    ouroAssert(params_.maxLen >= 32,
               "DayTrace: maxLen must be at least 32");
    // The request count must stay in the integer-exact double range:
    // window membership compares k + u_k (u_k in [0,1)) against the
    // cumulative targets, which needs k + u_k < k + 1 after rounding.
    ouroAssert(params_.requests < (1ULL << 52),
               "DayTrace: request count too large for exact "
               "quantile arithmetic");
    prefix_[0] = 0.0;
    for (std::size_t h = 0; h < 24; ++h) {
        ouroAssert(params_.hourlyWeight[h] > 0.0,
                   "DayTrace: hourly weights must be positive");
        prefix_[h + 1] = prefix_[h] + params_.hourlyWeight[h];
    }
}

double
DayTrace::arrivalQuantile(std::uint64_t k) const
{
    ouroAssert(k < params_.requests, "DayTrace: index out of range");
    Rng rng(requestSeed(params_.seed, k));
    // First draw of the request's private stream is the arrival
    // jitter; request() consumes it in the same order.
    return static_cast<double>(k) + rng.uniform();
}

double
DayTrace::quantileTarget(double t) const
{
    if (t <= 0.0)
        return 0.0;
    if (t >= params_.daySeconds)
        return static_cast<double>(params_.requests);
    const double segment_width = params_.daySeconds / 24.0;
    auto h = static_cast<std::size_t>(t / segment_width);
    h = std::min<std::size_t>(h, 23);
    const double seg_start =
        static_cast<double>(h) * segment_width;
    const double frac = (t - seg_start) / segment_width;
    const double weight =
        prefix_[h] + params_.hourlyWeight[h] * frac;
    return static_cast<double>(params_.requests) * weight /
           prefix_[24];
}

double
DayTrace::arrivalTime(std::uint64_t k) const
{
    // Invert the cumulative curve at this request's quantile: find
    // the segment holding its share of the total weight, then
    // interpolate linearly inside it.
    const double weight =
        arrivalQuantile(k) * prefix_[24] /
        static_cast<double>(params_.requests);
    std::size_t h = 0;
    while (h < 23 && prefix_[h + 1] <= weight)
        ++h;
    const double frac = std::clamp(
            (weight - prefix_[h]) / params_.hourlyWeight[h], 0.0,
            1.0);
    const double segment_width = params_.daySeconds / 24.0;
    return (static_cast<double>(h) + frac) * segment_width;
}

std::uint64_t
DayTrace::indexAt(double t) const
{
    const double target = quantileTarget(t);
    // Binary search the strictly increasing quantile sequence for
    // the first k with q_k >= target. q_k < k + 1 always, so k >=
    // ceil(target) - 1 is a valid lower bracket; keep the plain
    // search for clarity (the sequence is only ~log2(N) probes).
    std::uint64_t lo = 0;
    std::uint64_t hi = params_.requests;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (arrivalQuantile(mid) < target)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

TraceWindowRange
DayTrace::windowRange(double t0, double t1) const
{
    ouroAssert(t0 <= t1, "DayTrace: window with t0 > t1");
    TraceWindowRange range;
    range.first = indexAt(t0);
    range.last = indexAt(t1);
    return range;
}

Request
DayTrace::request(std::uint64_t k) const
{
    ouroAssert(k < params_.requests, "DayTrace: index out of range");
    Rng rng(requestSeed(params_.seed, k));
    rng.uniform(); // the arrival jitter draw (arrivalQuantile)
    // Clipped lognormal lengths with the wikiText2Like floors and
    // context-window clamp: prefill >= 16, decode >= 16, total <=
    // maxLen (the prompt cap leaves the decode floor room).
    const double lp = rng.logNormal(
            std::log(params_.promptMedianTokens),
            params_.promptSigma);
    const double ld = rng.logNormal(
            std::log(params_.decodeMedianTokens),
            params_.decodeSigma);
    Request request;
    request.id = k;
    request.prefillLen = std::clamp<std::uint64_t>(
            static_cast<std::uint64_t>(lp), 16, params_.maxLen - 16);
    request.decodeLen = std::clamp<std::uint64_t>(
            static_cast<std::uint64_t>(ld), 16, params_.maxLen);
    if (request.prefillLen + request.decodeLen > params_.maxLen)
        request.decodeLen = params_.maxLen - request.prefillLen;
    return request;
}

Workload
DayTrace::window(double t0, double t1) const
{
    const TraceWindowRange range = windowRange(t0, t1);
    Workload workload;
    workload.name = "day[" + std::to_string(t0) + "," +
                    std::to_string(t1) + ")";
    workload.requests.reserve(range.count());
    for (std::uint64_t k = range.first; k < range.last; ++k)
        workload.requests.push_back(request(k));
    return workload;
}

Workload
DayTrace::wholeDay() const
{
    Workload workload = window(0.0, params_.daySeconds);
    workload.name = "day-trace";
    return workload;
}

} // namespace ouro
