/**
 * @file
 * Inference request streams (paper Section 6.1).
 *
 * The evaluation runs 1000 requests per configuration under four
 * length regimes: WikiText-2-derived lengths and three fixed
 * (LP, LD) grids. Token *values* never matter to a performance/energy
 * simulator, so a request is just (prefill length, decode length).
 *
 * Substitution note (DESIGN.md S3): we do not ship the WikiText-2
 * corpus; wikiText2Like() draws prefill lengths from a clipped
 * log-normal fit of its article/paragraph length statistics (median
 * ~180 tokens, heavy right tail) and decode lengths from a similar
 * continuation distribution. What the experiments exercise is length
 * *variance* across concurrent requests - exactly what the synthetic
 * distribution preserves.
 */

#ifndef OURO_WORKLOAD_REQUESTS_HH
#define OURO_WORKLOAD_REQUESTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace ouro
{

/** One inference request. */
struct Request
{
    std::uint64_t id = 0;
    std::uint64_t prefillLen = 0; ///< prompt tokens (LP)
    std::uint64_t decodeLen = 0;  ///< generated tokens (LD)

    std::uint64_t totalTokens() const { return prefillLen + decodeLen; }
};

/** A named batch of requests (one Fig. 13 column). */
struct Workload
{
    std::string name;
    std::vector<Request> requests;

    std::uint64_t totalOutputTokens() const;
    std::uint64_t totalTokens() const;
    std::uint64_t maxSequenceLength() const;
};

/** Fixed-length grid: every request is (lp, ld). */
Workload fixedWorkload(std::uint64_t lp, std::uint64_t ld,
                       std::size_t count);

/** WikiText-2-like variable lengths (see file comment). Guarantees
 *  prefill >= 16, decode >= 16 and prefill + decode <= max_len for
 *  every request; requires max_len >= 32. */
Workload wikiText2Like(std::size_t count, std::uint64_t max_len = 2048,
                       std::uint64_t seed = 20260311);

/** The paper's four standard workloads for a given request count. */
std::vector<Workload> paperWorkloads(std::size_t count,
                                     std::uint64_t seed = 20260311);

/**
 * Split @p workload into @p parts shards by a per-request assignment
 * (the fleet router's dispatch output, sim/fleet.hh): request i goes
 * to shard assignment[i] < parts, PRESERVING request order within
 * each shard - the dispatch order is the wafer's admission order.
 * assignment.size() must equal workload.requests.size() (asserted).
 * Shards are named "<name>/w<part>".
 */
std::vector<Workload>
splitByAssignment(const Workload &workload,
                  const std::vector<std::uint32_t> &assignment,
                  std::uint32_t parts);

} // namespace ouro

#endif // OURO_WORKLOAD_REQUESTS_HH
