/**
 * @file
 * Solvers for the inter-core mapping problem (Section 4.3.1) plus the
 * baseline mapping strategies compared in Fig. 18.
 *
 * The paper models placement as MIQP and solves it offline ("several
 * hours" on a Xeon, Section 6.7). Without a commercial solver we keep
 * the exact objective/constraints and swap the search:
 *   - ExactMapper: branch-and-bound over all feasible assignments for
 *     small instances (tests verify the heuristics against it);
 *   - GreedyMapper: layer-ordered walk of the S-shaped core order -
 *     fast, locality-aware construction;
 *   - AnnealingMapper: simulated annealing (swap/relocate moves with
 *     incremental cost deltas) seeded with the greedy solution.
 * Baselines:
 *   - SummaMapper: Cerebras-style SUMMA grids each layer across the
 *     whole region independently (good intra-layer grids, poor
 *     inter-layer locality);
 *   - WaferLlmMapper: WaferLLM-style contiguous row-major strips per
 *     layer (good inter-layer adjacency, unshaped reductions).
 */

#ifndef OURO_MAPPING_MAPPERS_HH
#define OURO_MAPPING_MAPPERS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "mapping/problem.hh"

namespace ouro
{

/** A solution: tile index -> candidate-core index. */
using Assignment = std::vector<std::uint32_t>;

/** Locality-aware constructive placement (also the SA seed). */
class GreedyMapper
{
  public:
    Assignment solve(const MappingProblem &problem) const;
};

/** Simulated-annealing refinement of the MIQP objective. */
class AnnealingMapper
{
  public:
    struct Options
    {
        std::uint64_t iterations = 20000;
        double initialTemperature = -1.0; ///< <0: auto-calibrate
        double coolingFactor = 0.999;
        std::uint64_t seed = 1;

        /**
         * Independent annealing restarts; the lowest-cost result
         * wins (ties: lowest restart index). Restart 0 runs with
         * `seed` exactly - restarts=1 reproduces the single-restart
         * mapper bit for bit - and restart r derives its own
         * deterministic seed from (seed, r). Restarts fan out on
         * the parallel sweep runtime with per-restart result slots,
         * so the chosen mapping is identical however many threads
         * run (including 1) - the PR 1 sweep contract.
         */
        std::uint32_t restarts = 1;

        /**
         * Evaluate moves with the retained dense O(T) reference
         * engine instead of the sparse flow-graph engine. The two
         * are bit-identical (tests and fig18 assert it), so the
         * annealing trajectory does not depend on this flag - it
         * exists so harnesses can time and cross-check the engines.
         */
        bool useDenseEngine = false;

        /**
         * Candidate slots drawn per proposal round. Each round draws
         * ONE tile and `moveBatch` candidate slots (consuming RNG
         * words in that fixed order), then prices the round's free
         * slots with MappingProblem::moveDeltaBatch in one SoA pass.
         * Because batched deltas are bit-identical to the scalar
         * moveDelta, the trajectory for a given moveBatch value is
         * the same whichever engine prices it and however many
         * threads run. moveBatch=1 (default) reproduces the
         * historical PR 3 trajectory bit for bit; larger batches are
         * a different (equally deterministic) proposal schedule that
         * amortizes the partner gather across K candidates.
         */
        std::uint32_t moveBatch = 1;
    };

    AnnealingMapper() : AnnealingMapper(Options{}) {}
    explicit AnnealingMapper(Options opts);

    Assignment solve(const MappingProblem &problem) const;

  private:
    /** One annealing chain; returns (assignment, exact cost). */
    std::pair<Assignment, double>
    annealOnce(const MappingProblem &problem,
               std::uint64_t seed) const;

    Options opts_;
};

/** Exhaustive branch-and-bound; only for small instances (<= ~10). */
class ExactMapper
{
  public:
    /** @param max_tiles refuse larger instances (cost explodes). */
    explicit ExactMapper(std::uint32_t max_tiles = 10);

    Assignment solve(const MappingProblem &problem) const;

  private:
    std::uint32_t maxTiles_;
};

/** Cerebras-default SUMMA-style layer-independent grid placement. */
class SummaMapper
{
  public:
    Assignment solve(const MappingProblem &problem) const;
};

/** WaferLLM-style contiguous per-layer strips. */
class WaferLlmMapper
{
  public:
    Assignment solve(const MappingProblem &problem) const;
};

/**
 * Per-token communication volume of a placement in byte-hops: the
 * Fig. 18 "normalized transmission volume" metric (die crossings are
 * weighted by CostInter, as in the objective).
 */
double mappingByteHops(const MappingProblem &problem,
                       const Assignment &assignment);

} // namespace ouro

#endif // OURO_MAPPING_MAPPERS_HH
