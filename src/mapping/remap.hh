/**
 * @file
 * Replacement-chain fault recovery (paper Section 4.3.3, Fig. 9).
 *
 * When a core storing weights fails at runtime, Ouroboros does not
 * re-run the MIQP: it forms a *replacement chain* from the faulty
 * core to the nearest core storing KV cache. Weights propagate one
 * step along the chain (each core hands its tile to its successor);
 * the terminal KV core evicts its cached sequences (they will be
 * recomputed) and becomes a weight core. All moves happen in
 * parallel, so recovery latency is the slowest single hop - sub-
 * millisecond for 4 MB tiles on 256-bit links, matching the paper.
 *
 * A failed *KV* core is cheaper still: it is dropped from the KV
 * pool and only its resident sequences are recomputed.
 */

#ifndef OURO_MAPPING_REMAP_HH
#define OURO_MAPPING_REMAP_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hw/geometry.hh"
#include "hw/params.hh"
#include "mapping/wafer_mapping.hh"
#include "noc/mesh.hh"

namespace ouro
{

/** Outcome of a weight-core recovery. */
struct RemapResult
{
    /** Tile relocations performed, in chain order (from -> to). */
    std::vector<std::pair<CoreCoord, CoreCoord>> moves;

    /** The KV core absorbed into weight duty at the chain's end. */
    CoreCoord absorbedKvCore;

    /** Total weight bytes moved. */
    Bytes movedBytes = 0;

    /** Parallel-shift recovery latency (seconds). */
    double latencySeconds = 0.0;

    /** Chain length in cores (including the failed one). */
    std::uint32_t chainLength = 0;
};

/**
 * Recover from the failure of @p failed within @p placement.
 *
 * If @p failed holds a weight tile, performs the replacement-chain
 * shift and returns its statistics; the placement is updated in
 * place. If @p failed is one of the placement's KV cores, it is
 * removed from the KV pool and an empty-move result is returned.
 * Returns std::nullopt when the core is not part of this placement
 * or no KV core remains to absorb the chain.
 */
std::optional<RemapResult>
recoverCoreFailure(BlockPlacement &placement, CoreCoord failed,
                   const WaferGeometry &geom, const NocParams &noc,
                   Bytes tile_bytes);

/**
 * Route-aware variant: identical chain construction, but each move is
 * priced over the mesh's actual (cached) route, so shifts detour
 * around fabrication defects and previously failed links instead of
 * assuming the clean-mesh Manhattan path. On a clean mesh this is
 * equivalent to the NocParams overload.
 */
std::optional<RemapResult>
recoverCoreFailure(BlockPlacement &placement, CoreCoord failed,
                   const MeshNoc &noc, Bytes tile_bytes);

} // namespace ouro

#endif // OURO_MAPPING_REMAP_HH
