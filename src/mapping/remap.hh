/**
 * @file
 * Replacement-chain fault recovery (paper Section 4.3.3, Fig. 9).
 *
 * When a core storing weights fails at runtime, Ouroboros does not
 * re-run the MIQP: it forms a *replacement chain* from the faulty
 * core to the nearest core storing KV cache. Weights propagate one
 * step along the chain (each core hands its tile to its successor);
 * the terminal KV core evicts its cached sequences (they will be
 * recomputed) and becomes a weight core. All moves happen in
 * parallel, so recovery latency is the slowest single hop - sub-
 * millisecond for 4 MB tiles on 256-bit links, matching the paper.
 *
 * A failed *KV* core is cheaper still: it is dropped from the KV
 * pool and only its resident sequences are recomputed.
 */

#ifndef OURO_MAPPING_REMAP_HH
#define OURO_MAPPING_REMAP_HH

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "hw/geometry.hh"
#include "hw/params.hh"
#include "mapping/wafer_mapping.hh"
#include "noc/mesh.hh"

namespace ouro
{

/** Outcome of a weight-core recovery. */
struct RemapResult
{
    /** Tile relocations performed, in chain order (from -> to). */
    std::vector<std::pair<CoreCoord, CoreCoord>> moves;

    /** The KV core absorbed into weight duty at the chain's end. */
    CoreCoord absorbedKvCore;

    /** Total weight bytes moved. */
    Bytes movedBytes = 0;

    /** Parallel-shift recovery latency (seconds). */
    double latencySeconds = 0.0;

    /** Chain length in cores (including the failed one). */
    std::uint32_t chainLength = 0;
};

/**
 * Row-bucketed spatial index over one placement's cores, making the
 * chain construction of recoverCoreFailure sub-linear in region
 * size: nearest-KV lookup expands column windows around the failure
 * row by row, and corridor-chain collection touches only the rows of
 * the failed-to-KV bounding box, instead of the full weight/KV-core
 * scans.
 *
 * Results are PINNED IDENTICAL to the scan implementation (which
 * recoverCoreFailure retains when no index is passed - it is the
 * oracle tests compare against):
 *  - nearest-KV ties resolve by the scan's visit order (score pool
 *    before context pool, lower index first). Each KV core carries
 *    its construction-time sequence number; recoveries only ever
 *    *remove* pool entries, so relative order - and therefore the
 *    tie-break - is preserved.
 *  - corridor candidates are re-sorted into ascending tile order
 *    (the scan's collection order) before the shared chain sort, so
 *    both paths feed the identical sequence to the identical sort
 *    call.
 *
 * The index mirrors every mutation recoverCoreFailure applies, so
 * one index serves a whole failure sequence. Mutating the placement
 * behind the index's back desynchronises it - rebuild it instead.
 */
class RecoveryIndex
{
  public:
    explicit RecoveryIndex(const BlockPlacement &placement);

    /** A KV core plus its scan-order rank. */
    struct KvHit
    {
        CoreCoord core;
        std::uint32_t seq;
    };

    /** Nearest KV core to @p from (scan-order tie-break), or
     *  std::nullopt when the pools are empty. */
    std::optional<KvHit> nearestKv(CoreCoord from) const;

    /**
     * Weight tiles inside the @p failed -> @p kv bounding box whose
     * distance to @p kv is strictly below @p failed_dist (the
     * corridor-chain members), as (tile index, distance-to-KV) in
     * ascending tile order. @p failed itself is excluded.
     */
    std::vector<std::pair<std::size_t, std::uint32_t>>
    corridorTiles(CoreCoord failed, CoreCoord kv,
                  std::uint32_t failed_dist) const;

    /** Tile index stored on @p c, if any. */
    std::optional<std::size_t> weightTileAt(CoreCoord c) const;

    /** True when @p c is one of the placement's KV cores. */
    bool kvAt(CoreCoord c) const;

    /** Mirror a tile relocation @p from -> @p to. */
    void moveWeight(std::size_t tile, CoreCoord from, CoreCoord to);

    /** Mirror a KV-pool removal (failure or chain absorption). */
    void removeKv(CoreCoord c);

    std::size_t weightCount() const { return weightCount_; }
    std::size_t kvCount() const { return kvCount_; }

  private:
    /** (col, payload) entries of one row, ascending by col. */
    struct Entry
    {
        std::uint32_t col;
        std::uint32_t payload;
    };
    using Rows = std::map<std::uint32_t, std::vector<Entry>>;

    /** payload = tile index. */
    Rows weightRows_;
    /** payload = scan-order sequence number (score pool first). */
    Rows kvRows_;
    std::size_t weightCount_ = 0;
    std::size_t kvCount_ = 0;

    static void insertEntry(Rows &rows, CoreCoord c,
                            std::uint32_t payload);
    static bool eraseEntry(Rows &rows, CoreCoord c);
    static const Entry *findEntry(const Rows &rows, CoreCoord c);
};

/** Result of the oracle nearest-KV scan: the core plus which pool
 *  (duty) it came from. */
struct NearestKvScan
{
    CoreCoord core;
    bool scoreDuty = false;
};

/**
 * THE oracle nearest-KV scan over @p placement's dedicated pools:
 * score pool before context pool, lower index first, strict
 * improvement only. This visit order is the tie-break
 * RecoveryIndex::nearestKv reproduces bit for bit and the recovery
 * service's cross-block borrowing must match - every nearest-KV
 * consumer goes through this one definition so they can never
 * drift. std::nullopt when both pools are empty.
 */
std::optional<NearestKvScan>
nearestKvScan(const BlockPlacement &placement, CoreCoord from,
              const WaferGeometry &geom);

/** Remove one coordinate from a core pool vector; true if found. */
bool removePoolCoord(std::vector<CoreCoord> &pool, CoreCoord target);

/**
 * Recover from the failure of @p failed within @p placement.
 *
 * If @p failed holds a weight tile, performs the replacement-chain
 * shift and returns its statistics; the placement is updated in
 * place. If @p failed is one of the placement's KV cores, it is
 * removed from the KV pool and an empty-move result is returned.
 * Returns std::nullopt when the core is not part of this placement
 * or no KV core remains to absorb the chain.
 *
 * @p index, when given, must have been built from @p placement (and
 * kept through every prior recovery); the chain is then constructed
 * through the spatial index - bit-identical results, sub-linear
 * lookups - and the index is updated to mirror the placement
 * mutation. Null keeps the full-scan path (the oracle).
 */
std::optional<RemapResult>
recoverCoreFailure(BlockPlacement &placement, CoreCoord failed,
                   const WaferGeometry &geom, const NocParams &noc,
                   Bytes tile_bytes, RecoveryIndex *index = nullptr);

/**
 * Route-aware variant: identical chain construction, but each move is
 * priced over the mesh's actual (cached) route, so shifts detour
 * around fabrication defects and previously failed links instead of
 * assuming the clean-mesh Manhattan path. On a clean mesh this is
 * equivalent to the NocParams overload.
 */
std::optional<RemapResult>
recoverCoreFailure(BlockPlacement &placement, CoreCoord failed,
                   const MeshNoc &noc, Bytes tile_bytes,
                   RecoveryIndex *index = nullptr);

} // namespace ouro

#endif // OURO_MAPPING_REMAP_HH
