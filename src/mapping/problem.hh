/**
 * @file
 * The inter-core weight-mapping problem (paper Section 4.3.1).
 *
 * The mapper places the weight tiles of ONE transformer block onto a
 * region of CIM cores (constraint (1): LLMs are stacks of identical
 * blocks, so one block's mapping is computed once and repeated). Each
 * dense layer l is tiled I(l) x O(l) ways: inputs in 1024-channel
 * slices (the crossbar row height), outputs in 4096-channel slices
 * (32 crossbars x 128 columns), prioritising output-channel splits to
 * avoid high-bitwidth partial-sum transfers (constraint (2)).
 *
 * The MIQP objective (Eq. 1) prices three flows between tile pairs:
 *   - inter-layer activation: output part o of layer l feeds input
 *     part i of layer l+1 where their channel ranges overlap;
 *   - intra-layer reduction: every non-final input split sends 32-bit
 *     partial sums to the final input split of the same output part;
 *   - gather: the reducer tiles of a layer exchange their slices so
 *     each holds the full activation for forwarding.
 * Distances are Manhattan hops; crossing a die boundary multiplies by
 * CostInter (Table 1). Constraints: one tile per core, no tiles on
 * defective cores (Eq. 2), each layer uses exactly #Core(l) cores
 * (Eq. 3) - our tiling makes #Core(l) = I(l) * O(l) by construction.
 *
 * Sparse cost engine: almost all tile pairs exchange zero bytes, so
 * the problem precomputes, once, (a) per-tile adjacency lists of the
 * nonzero-flow partners in ascending partner order with their directed
 * byte volumes, and (b) a candidate x candidate Manhattan-distance and
 * die-penalty table. assignmentCost / moveDelta / swapDelta /
 * partialCost run over those lists. Because a zero-flow pair
 * contributes exactly +0.0 to the dense Eq. 1 sums and the nonzero
 * terms are visited in the same (ascending) order with the same
 * ((dist * bytes) * penalty) association, the sparse results are
 * BIT-IDENTICAL to the retained dense reference
 * (assignmentCostDense / moveDeltaDense / swapDeltaDense) - tests and
 * the fig18 harness assert this.
 *
 * Accuracy-contract tiers:
 *  - DEFAULT (exact engine): bit-identical to the dense reference,
 *    as above. This includes moveDeltaBatch, which prices K candidate
 *    slots from one SoA gather of the tile's partners - each batched
 *    delta is computed with the scalar moveDelta's exact expressions
 *    in the same partner order, so batch results equal K independent
 *    moveDelta calls bit for bit.
 *  - OPT-IN (MappingEngineOptions::fusedCost): distance and penalty
 *    are fused into one row-major dist*pen product table (half the
 *    table traffic; each flow term is one multiply over the
 *    contiguous bytes[] array). Fusing reassociates the term from
 *    ((dist * bytes) * penalty) to ((dist * penalty) * bytes), so
 *    fused results are EPSILON-EXACT instead of bit-identical:
 *    every evaluation satisfies
 *        |fused - exact| <= kFusedRelBound * (1 + S)
 *    where S is the exact objective magnitude of the assignment
 *    (fuzz-tested and asserted by fig18 against the retained exact
 *    engine). The summation order is unchanged (ascending partner /
 *    merge order), so fused results are still deterministic and
 *    thread-count invariant, and the fused table path is
 *    bit-identical to the fused on-the-fly path.
 */

#ifndef OURO_MAPPING_PROBLEM_HH
#define OURO_MAPPING_PROBLEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"
#include "model/llm.hh"

namespace ouro
{

/** One dense layer of the block, with its tiling. */
struct LayerSpec
{
    std::string name;
    std::uint64_t inDim = 0;
    std::uint64_t outDim = 0;
    std::uint32_t inSplits = 1;   ///< I(l)
    std::uint32_t outSplits = 1;  ///< O(l)

    std::uint32_t numTiles() const { return inSplits * outSplits; }

    /** Channel extents of split parts (last part may be smaller). */
    std::uint64_t inPartLo(std::uint32_t i) const;
    std::uint64_t inPartHi(std::uint32_t i) const;   // exclusive
    std::uint64_t outPartLo(std::uint32_t o) const;
    std::uint64_t outPartHi(std::uint32_t o) const;  // exclusive

    /** Activation bytes produced per token by output part o (8-bit). */
    Bytes outputVolume(std::uint32_t o) const;

    /** Partial-sum bytes per token sent by a non-final input split
     *  of output part o (32-bit partials). */
    Bytes reductionVolume(std::uint32_t o) const;

    /** Gather bytes per token exchanged by reducer tiles of part o. */
    Bytes gatherVolume(std::uint32_t o) const;
};

/** A tile to place: (layer, input split, output split). */
struct Tile
{
    std::uint32_t layer;
    std::uint32_t inSplit;
    std::uint32_t outSplit;

    bool operator==(const Tile &other) const = default;
};

/**
 * Cost-engine build options of a MappingProblem (see the file header
 * for the accuracy-contract tiers).
 */
struct MappingEngineOptions
{
    /**
     * Materialise the candidate x candidate slot tables (skipped for
     * throwaway problems that evaluate the cost only once); results
     * are bit-identical either way.
     */
    bool precomputeDistanceTable = true;

    /**
     * Largest region (in candidate cores) for which the O(C^2) slot
     * tables are materialised; larger regions fall back to the
     * on-the-fly geometry path, which computes the exact same values
     * (test-pinned above this cutoff). The default is the historical
     * hard-coded constant; wafer-sized sweeps can raise it to trade
     * memory for table hits.
     */
    std::size_t distanceTableMaxCandidates = 1024;

    /**
     * Opt into the fused dist*pen engine: one row-major product table
     * instead of the two unfused tables, epsilon-exact against the
     * dense oracle under kFusedRelBound (the default exact engine is
     * bit-identical). The unfused exact engine is always retained -
     * build a second problem without this flag as the oracle.
     */
    bool fusedCost = false;
};

/**
 * The full placement instance: layers + tiles, the candidate core
 * region, and the cost constants.
 */
class MappingProblem
{
  public:
    /**
     * Relative error bound of the fused engine: every fused
     * evaluation (assignmentCost / moveDelta / swapDelta /
     * partialCost / moveDeltaBatch) is within
     * kFusedRelBound * (1 + S) of the exact engine, S being the
     * exact assignmentCost magnitude of the evaluated assignment.
     * The bound is generous against the true drift (one 2-ulp
     * reassociation per term, summed over a tile's partners) so it
     * holds on any host; fuzz tests and fig18 assert it.
     */
    static constexpr double kFusedRelBound = 1e-11;

    /**
     * Build the problem for one transformer block of @p model on cores
     * with @p core_params capacity, to be placed on the region
     * @p candidate_cores (ordered; defective cores excluded by the
     * caller or flagged via @p defects).
     *
     * @p precompute_distance_table controls whether the candidate x
     * candidate distance/penalty table is materialised (skipped for
     * throwaway problems that evaluate the cost only once, e.g. the
     * replicated-region instances of WaferMapping); results are
     * bit-identical either way.
     */
    MappingProblem(const ModelConfig &model,
                   const CoreParams &core_params,
                   const WaferGeometry &geom,
                   std::vector<CoreCoord> candidate_cores,
                   double cost_inter = 2.0,
                   const DefectMap *defects = nullptr,
                   bool precompute_distance_table = true);

    /** Full engine-option overload (table cutoff, fused engine). */
    MappingProblem(const ModelConfig &model,
                   const CoreParams &core_params,
                   const WaferGeometry &geom,
                   std::vector<CoreCoord> candidate_cores,
                   double cost_inter, const DefectMap *defects,
                   const MappingEngineOptions &engine);

    /**
     * Clone this problem onto a *congruent* candidate region: same
     * model/tiling (the layers, tiles and the sparse flow graph are
     * reused verbatim - the O(T^2) flow enumeration is NOT re-run),
     * new candidate cores. Regions are congruent when they are
     * defect-free index slices of equal length, which is exactly what
     * WaferMapping's usable-core filtering produces; the translated
     * problem is therefore built defect-free. assignmentCost (and the
     * other engine entry points) on the translated problem are
     * BIT-IDENTICAL to a from-scratch MappingProblem over the same
     * region: the flow lists are byte-for-byte the same and the
     * distances/penalties come from the same geometry arithmetic
     * (tests and fig18_mapping assert this against the retained
     * per-block rebuild oracle).
     *
     * @p precompute_distance_table defaults to off because translated
     * regions (WaferMapping's replicated blocks) evaluate the
     * objective once.
     */
    MappingProblem
    congruentTranslate(std::vector<CoreCoord> candidate_cores,
                       bool precompute_distance_table = false) const;

    const std::vector<LayerSpec> &layers() const { return layers_; }
    const std::vector<Tile> &tiles() const { return tiles_; }
    const std::vector<CoreCoord> &candidates() const
    {
        return candidates_;
    }
    const WaferGeometry &geometry() const { return geom_; }
    double costInter() const { return costInter_; }

    /** Cores one block needs (== tile count). */
    std::uint32_t tilesPerBlock() const
    {
        return static_cast<std::uint32_t>(tiles_.size());
    }

    /** True when the candidate core at region index r is usable. */
    bool candidateUsable(std::size_t r) const;

    /**
     * Quadratic cost (Eq. 1) of a full assignment: assignment[t] is an
     * index into candidates() for tile t. Sparse engine; bit-identical
     * to assignmentCostDense().
     */
    double assignmentCost(
            const std::vector<std::uint32_t> &assignment) const;

    /** Dense O(T^2) reference implementation of assignmentCost(). */
    double assignmentCostDense(
            const std::vector<std::uint32_t> &assignment) const;

    /**
     * Cost delta of moving tile @p t from its current core to
     * candidate @p new_slot (other tiles unchanged). Used by the
     * annealer's incremental evaluation. Sparse engine; bit-identical
     * to moveDeltaDense().
     */
    double moveDelta(const std::vector<std::uint32_t> &assignment,
                     std::size_t t, std::uint32_t new_slot) const;

    /** Dense O(T) reference implementation of moveDelta(). */
    double moveDeltaDense(const std::vector<std::uint32_t> &assignment,
                          std::size_t t, std::uint32_t new_slot) const;

    /**
     * Reusable SoA scratch of moveDeltaBatch: tile t's partner slots,
     * flow bytes and old-slot terms, gathered once per batch and
     * streamed contiguously while the K candidates are priced.
     * Callers keep one instance per annealing chain (it is not
     * thread-safe) so the buffers stop reallocating after warmup.
     */
    struct MoveScratch
    {
        std::vector<std::uint32_t> partnerSlot;
        std::vector<double> bytes;
        std::vector<double> oldTerm;
    };

    /**
     * Batched sibling of moveDelta(): price moving tile @p t to each
     * of @p count candidate @p slots in one cache-blocked pass. The
     * tile's partner slots / bytes / old-slot terms are gathered into
     * @p scratch once, then every candidate streams those flat arrays
     * (the partner panel stays cache-resident across the K
     * candidates instead of being re-gathered per call).
     *
     * deltas[i] is BIT-IDENTICAL to moveDelta(assignment, t,
     * slots[i]) on both engines - same per-partner expressions, same
     * ascending-partner summation order - so using the batch cannot
     * change an annealing trajectory (fuzz-tested). Candidate slots
     * may repeat, be occupied, or equal the current slot; occupancy
     * is the caller's concern.
     */
    void moveDeltaBatch(const std::vector<std::uint32_t> &assignment,
                        std::size_t t, const std::uint32_t *slots,
                        std::size_t count, MoveScratch &scratch,
                        double *deltas) const;

    /** Convenience overload with internal scratch (tests/benches). */
    std::vector<double>
    moveDeltaBatch(const std::vector<std::uint32_t> &assignment,
                   std::size_t t,
                   const std::vector<std::uint32_t> &slots) const;

    /**
     * Cost delta of swapping the cores of tiles @p t1 and @p t2.
     * Sparse engine over the merged adjacency of the two tiles, in
     * ascending partner order; bit-identical to swapDeltaDense()
     * (which replicates the annealer's historical inline O(T) loop,
     * including its always-zero (t1,t2) correction term).
     */
    double swapDelta(const std::vector<std::uint32_t> &assignment,
                     std::size_t t1, std::size_t t2) const;

    /** Dense O(T) reference implementation of swapDelta(). */
    double swapDeltaDense(const std::vector<std::uint32_t> &assignment,
                          std::size_t t1, std::size_t t2) const;

    /**
     * Cost added by placing tile @p t on candidate @p slot given that
     * tiles 0..t-1 are already placed per @p assignment (tiles >= t
     * ignored): the branch-and-bound partial cost of ExactMapper.
     * Sparse engine; bit-identical to partialCostDense().
     */
    double partialCost(const std::vector<std::uint32_t> &assignment,
                       std::size_t t, std::uint32_t slot) const;

    /** Dense O(t) reference implementation of partialCost(). */
    double partialCostDense(
            const std::vector<std::uint32_t> &assignment, std::size_t t,
            std::uint32_t slot) const;

    /** Pairwise cost between two placed tiles (the Q entries). */
    double pairCost(const Tile &a, CoreCoord ca, const Tile &b,
                    CoreCoord cb) const;

    /**
     * Directed flow volume F(a -> b): the byte factor pairCost(a, ..,
     * b, ..) multiplies by distance and penalty. Symmetric in
     * *sparsity* (F(a->b) != 0 iff F(b->a) != 0) but not always in
     * value: the gather term prices the first tile's slice.
     */
    Bytes flowBetween(std::size_t a, std::size_t b) const;

    /** Nonzero-flow partner count of tile @p t (sparse degree). */
    std::size_t flowDegree(std::size_t t) const
    {
        return flow_->offsets[t + 1] - flow_->offsets[t];
    }

    /** Total directed nonzero-flow pairs (sum of degrees). */
    std::size_t flowEdges() const { return flow_->partner.size(); }

    /** True when both problems share one immutable flow CSR (the
     *  congruentTranslate O(1) share, not merely equal contents). */
    bool sharesFlowGraphWith(const MappingProblem &other) const
    {
        return flow_ == other.flow_;
    }

    /** True when the active engine's slot table is resident (the
     *  unfused dist/pen pair, or the fused product table). */
    bool hasDistanceTable() const
    {
        return engine_.fusedCost ? hasFusedTable_ : hasTable_;
    }

    /** True when this instance runs the epsilon-exact fused engine. */
    bool fusedCost() const { return engine_.fusedCost; }

    /** The engine options this instance was built with. */
    const MappingEngineOptions &engineOptions() const
    {
        return engine_;
    }

    /** Verify constraints (Eq. 2/3): a legal one-to-one placement. */
    bool feasible(const std::vector<std::uint32_t> &assignment) const;

    /** Overlap in channels between [lo1,hi1) and [lo2,hi2) - the
     *  byte factor of every activation flow (intra-region AND the
     *  inter-block flows of accumulateInterBlockFlows). */
    static std::uint64_t overlap(std::uint64_t lo1, std::uint64_t hi1,
                                 std::uint64_t lo2,
                                 std::uint64_t hi2);

  private:
    /** Empty shell for congruentTranslate's field-wise clone. */
    MappingProblem() = default;

    std::vector<LayerSpec> layers_;
    std::vector<Tile> tiles_;
    std::vector<CoreCoord> candidates_;
    WaferGeometry geom_;
    double costInter_ = 2.0;
    const DefectMap *defects_ = nullptr;

    // Sparse flow graph (CSR): for tile t, partners are
    // partner[offsets[t] .. offsets[t+1]) in ascending order (t
    // itself never appears), bytes the directed volume F(t ->
    // partner) as an exact double, and upper[t] the first entry whose
    // partner index exceeds t. The CSR depends only on the tiling,
    // never on the candidate region, so it is immutable once built
    // and shared (not copied) across congruent translations -
    // congruentTranslate is O(1) in flow size.
    struct FlowCsr
    {
        std::vector<std::uint32_t> offsets;
        std::vector<std::uint32_t> upper;
        std::vector<std::uint32_t> partner;
        std::vector<double> bytes;
    };
    std::shared_ptr<const FlowCsr> flow_;

    // Candidate x candidate Manhattan distance and die penalty,
    // row-major (only when the region is small enough to afford C^2
    // doubles; otherwise recomputed from the geometry on the fly,
    // which yields the exact same values). The exact engine keeps
    // the two unfused tables; the fused engine keeps one dist*pen
    // product table instead (half the table traffic).
    std::vector<double> distTable_;
    std::vector<double> penTable_;
    std::vector<double> fusedTable_;
    bool hasTable_ = false;
    bool hasFusedTable_ = false;
    MappingEngineOptions engine_;

    void buildFlowGraph();
    void buildDistanceTable();

    double slotDist(std::uint32_t a, std::uint32_t b) const
    {
        if (hasTable_)
            return distTable_[static_cast<std::size_t>(a) *
                                      candidates_.size() +
                              b];
        return geom_.manhattan(candidates_[a], candidates_[b]);
    }

    double slotPen(std::uint32_t a, std::uint32_t b) const
    {
        if (hasTable_)
            return penTable_[static_cast<std::size_t>(a) *
                                     candidates_.size() +
                             b];
        return penalty(candidates_[a], candidates_[b]);
    }

    /** Fused dist*pen of a slot pair. The on-the-fly expression is
     *  the same (dist * pen) product the table is filled with, so
     *  the two fused paths are bit-identical (test-pinned). */
    double slotFused(std::uint32_t a, std::uint32_t b) const
    {
        if (hasFusedTable_)
            return fusedTable_[static_cast<std::size_t>(a) *
                                       candidates_.size() +
                               b];
        const CoreCoord ca = candidates_[a];
        const CoreCoord cb = candidates_[b];
        return geom_.manhattan(ca, cb) * penalty(ca, cb);
    }

    double penalty(CoreCoord a, CoreCoord b) const;
};

/**
 * Derive the tiling of one block's layers for a given core capacity:
 * I(l) = ceil(inDim / crossbar rows), O(l) = ceil(outDim / (crossbars
 * x columns per crossbar)).
 */
std::vector<LayerSpec> tileBlockLayers(const ModelConfig &model,
                                       const CoreParams &core_params);

/** Cores needed by one block (sum of tiles over layers). */
std::uint32_t coresPerBlock(const ModelConfig &model,
                            const CoreParams &core_params);

} // namespace ouro

#endif // OURO_MAPPING_PROBLEM_HH
