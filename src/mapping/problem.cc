#include "problem.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ouro
{

namespace
{

/** Split @p dim into @p parts near-equal slices; bounds of part p. */
std::uint64_t
partLo(std::uint64_t dim, std::uint32_t parts, std::uint32_t p)
{
    return dim * p / parts;
}

std::uint64_t
partHi(std::uint64_t dim, std::uint32_t parts, std::uint32_t p)
{
    return dim * (p + 1) / parts;
}

} // namespace

std::uint64_t
LayerSpec::inPartLo(std::uint32_t i) const
{
    return partLo(inDim, inSplits, i);
}

std::uint64_t
LayerSpec::inPartHi(std::uint32_t i) const
{
    return partHi(inDim, inSplits, i);
}

std::uint64_t
LayerSpec::outPartLo(std::uint32_t o) const
{
    return partLo(outDim, outSplits, o);
}

std::uint64_t
LayerSpec::outPartHi(std::uint32_t o) const
{
    return partHi(outDim, outSplits, o);
}

Bytes
LayerSpec::outputVolume(std::uint32_t o) const
{
    return outPartHi(o) - outPartLo(o); // 1 byte per activation
}

Bytes
LayerSpec::reductionVolume(std::uint32_t o) const
{
    return 4 * (outPartHi(o) - outPartLo(o)); // 32-bit partial sums
}

Bytes
LayerSpec::gatherVolume(std::uint32_t o) const
{
    return outPartHi(o) - outPartLo(o); // requantised 8-bit slices
}

std::vector<LayerSpec>
tileBlockLayers(const ModelConfig &model, const CoreParams &core_params)
{
    const auto &xp = core_params.crossbar;
    const std::uint64_t max_rows = xp.rows;
    const std::uint64_t max_cols =
        static_cast<std::uint64_t>(core_params.numCrossbars) *
        (xp.cols / xp.weightBits);

    std::vector<LayerSpec> specs;
    for (const auto &layer : model.blockLayers()) {
        LayerSpec spec;
        spec.name = layer.name;
        spec.inDim = layer.inDim;
        spec.outDim = layer.outDim;
        spec.inSplits = static_cast<std::uint32_t>(
                ceilDiv(layer.inDim, max_rows));
        spec.outSplits = static_cast<std::uint32_t>(
                ceilDiv(layer.outDim, max_cols));
        specs.push_back(spec);
    }
    return specs;
}

std::uint32_t
coresPerBlock(const ModelConfig &model, const CoreParams &core_params)
{
    std::uint32_t total = 0;
    for (const auto &spec : tileBlockLayers(model, core_params))
        total += spec.numTiles();
    return total;
}

MappingProblem::MappingProblem(const ModelConfig &model,
                               const CoreParams &core_params,
                               const WaferGeometry &geom,
                               std::vector<CoreCoord> candidate_cores,
                               double cost_inter,
                               const DefectMap *defects)
    : layers_(tileBlockLayers(model, core_params)),
      candidates_(std::move(candidate_cores)), geom_(geom),
      costInter_(cost_inter), defects_(defects)
{
    for (std::uint32_t l = 0; l < layers_.size(); ++l) {
        for (std::uint32_t o = 0; o < layers_[l].outSplits; ++o) {
            for (std::uint32_t i = 0; i < layers_[l].inSplits; ++i)
                tiles_.push_back({l, i, o});
        }
    }
    std::uint32_t usable = 0;
    for (std::size_t r = 0; r < candidates_.size(); ++r)
        usable += candidateUsable(r) ? 1 : 0;
    ouroAssert(usable >= tiles_.size(),
               "MappingProblem: region has ", usable,
               " usable cores but the block needs ", tiles_.size());
}

bool
MappingProblem::candidateUsable(std::size_t r) const
{
    ouroAssert(r < candidates_.size(), "candidateUsable: bad index");
    return !defects_ || !defects_->defective(candidates_[r]);
}

double
MappingProblem::penalty(CoreCoord a, CoreCoord b) const
{
    return geom_.sameDie(a, b) ? 1.0 : costInter_;
}

std::uint64_t
MappingProblem::overlap(std::uint64_t lo1, std::uint64_t hi1,
                        std::uint64_t lo2, std::uint64_t hi2)
{
    const std::uint64_t lo = std::max(lo1, lo2);
    const std::uint64_t hi = std::min(hi1, hi2);
    return hi > lo ? hi - lo : 0;
}

double
MappingProblem::pairCost(const Tile &a, CoreCoord ca, const Tile &b,
                         CoreCoord cb) const
{
    const double dist = geom_.manhattan(ca, cb);
    if (dist == 0.0)
        return 0.0;
    const double pen = penalty(ca, cb);
    double cost = 0.0;

    const LayerSpec &la = layers_[a.layer];
    const LayerSpec &lb = layers_[b.layer];

    // Inter-layer activation flow: a's output part overlaps b's input
    // part in channel space. Only the final input split of a (the
    // reducer, which owns the complete output slice) forwards
    // activations.
    if (a.layer + 1 == b.layer && a.inSplit == la.inSplits - 1) {
        const std::uint64_t bytes = overlap(
                la.outPartLo(a.outSplit), la.outPartHi(a.outSplit),
                lb.inPartLo(b.inSplit), lb.inPartHi(b.inSplit));
        cost += dist * static_cast<double>(bytes) * pen;
    }
    if (b.layer + 1 == a.layer && b.inSplit == lb.inSplits - 1) {
        const std::uint64_t bytes = overlap(
                lb.outPartLo(b.outSplit), lb.outPartHi(b.outSplit),
                la.inPartLo(a.inSplit), la.inPartHi(a.inSplit));
        cost += dist * static_cast<double>(bytes) * pen;
    }

    if (a.layer == b.layer) {
        const LayerSpec &layer = la;
        // Intra-layer reduction: non-final input splits stream 32-bit
        // partial sums to the final split of the same output part.
        if (a.outSplit == b.outSplit) {
            const bool a_sends = a.inSplit != layer.inSplits - 1 &&
                                 b.inSplit == layer.inSplits - 1;
            const bool b_sends = b.inSplit != layer.inSplits - 1 &&
                                 a.inSplit == layer.inSplits - 1;
            if (a_sends || b_sends) {
                cost += dist * static_cast<double>(
                        layer.reductionVolume(a.outSplit)) * pen;
            }
        }
        // Gather between reducer tiles of different output parts.
        if (a.outSplit != b.outSplit &&
            a.inSplit == layer.inSplits - 1 &&
            b.inSplit == layer.inSplits - 1) {
            cost += dist * static_cast<double>(
                    layer.gatherVolume(a.outSplit)) * pen;
        }
    }
    return cost;
}

double
MappingProblem::assignmentCost(
        const std::vector<std::uint32_t> &assignment) const
{
    ouroAssert(assignment.size() == tiles_.size(),
               "assignmentCost: wrong assignment size");
    double total = 0.0;
    for (std::size_t a = 0; a < tiles_.size(); ++a) {
        const CoreCoord ca = candidates_[assignment[a]];
        for (std::size_t b = a + 1; b < tiles_.size(); ++b) {
            total += pairCost(tiles_[a], ca, tiles_[b],
                              candidates_[assignment[b]]);
        }
    }
    return total;
}

double
MappingProblem::moveDelta(const std::vector<std::uint32_t> &assignment,
                          std::size_t t, std::uint32_t new_slot) const
{
    ouroAssert(t < tiles_.size(), "moveDelta: bad tile index");
    const CoreCoord old_core = candidates_[assignment[t]];
    const CoreCoord new_core = candidates_[new_slot];
    double delta = 0.0;
    for (std::size_t b = 0; b < tiles_.size(); ++b) {
        if (b == t)
            continue;
        const CoreCoord cb = candidates_[assignment[b]];
        delta += pairCost(tiles_[t], new_core, tiles_[b], cb) -
                 pairCost(tiles_[t], old_core, tiles_[b], cb);
    }
    return delta;
}

bool
MappingProblem::feasible(
        const std::vector<std::uint32_t> &assignment) const
{
    if (assignment.size() != tiles_.size())
        return false;
    std::vector<bool> used(candidates_.size(), false);
    for (const auto slot : assignment) {
        if (slot >= candidates_.size())
            return false;
        if (used[slot])
            return false; // Eq. 2: one tile per core
        if (!candidateUsable(slot))
            return false; // Eq. 2: defective core
        used[slot] = true;
    }
    // Eq. 3 holds by construction: every tile is placed exactly once.
    return true;
}

} // namespace ouro
