#include "problem.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ouro
{

namespace
{

/** Split @p dim into @p parts near-equal slices; bounds of part p. */
std::uint64_t
partLo(std::uint64_t dim, std::uint32_t parts, std::uint32_t p)
{
    return dim * p / parts;
}

std::uint64_t
partHi(std::uint64_t dim, std::uint32_t parts, std::uint32_t p)
{
    return dim * (p + 1) / parts;
}

} // namespace

std::uint64_t
LayerSpec::inPartLo(std::uint32_t i) const
{
    return partLo(inDim, inSplits, i);
}

std::uint64_t
LayerSpec::inPartHi(std::uint32_t i) const
{
    return partHi(inDim, inSplits, i);
}

std::uint64_t
LayerSpec::outPartLo(std::uint32_t o) const
{
    return partLo(outDim, outSplits, o);
}

std::uint64_t
LayerSpec::outPartHi(std::uint32_t o) const
{
    return partHi(outDim, outSplits, o);
}

Bytes
LayerSpec::outputVolume(std::uint32_t o) const
{
    return outPartHi(o) - outPartLo(o); // 1 byte per activation
}

Bytes
LayerSpec::reductionVolume(std::uint32_t o) const
{
    return 4 * (outPartHi(o) - outPartLo(o)); // 32-bit partial sums
}

Bytes
LayerSpec::gatherVolume(std::uint32_t o) const
{
    return outPartHi(o) - outPartLo(o); // requantised 8-bit slices
}

std::vector<LayerSpec>
tileBlockLayers(const ModelConfig &model, const CoreParams &core_params)
{
    const auto &xp = core_params.crossbar;
    const std::uint64_t max_rows = xp.rows;
    const std::uint64_t max_cols =
        static_cast<std::uint64_t>(core_params.numCrossbars) *
        (xp.cols / xp.weightBits);

    std::vector<LayerSpec> specs;
    for (const auto &layer : model.blockLayers()) {
        LayerSpec spec;
        spec.name = layer.name;
        spec.inDim = layer.inDim;
        spec.outDim = layer.outDim;
        spec.inSplits = static_cast<std::uint32_t>(
                ceilDiv(layer.inDim, max_rows));
        spec.outSplits = static_cast<std::uint32_t>(
                ceilDiv(layer.outDim, max_cols));
        specs.push_back(spec);
    }
    return specs;
}

std::uint32_t
coresPerBlock(const ModelConfig &model, const CoreParams &core_params)
{
    std::uint32_t total = 0;
    for (const auto &spec : tileBlockLayers(model, core_params))
        total += spec.numTiles();
    return total;
}

MappingProblem::MappingProblem(const ModelConfig &model,
                               const CoreParams &core_params,
                               const WaferGeometry &geom,
                               std::vector<CoreCoord> candidate_cores,
                               double cost_inter,
                               const DefectMap *defects,
                               bool precompute_distance_table)
    : MappingProblem(model, core_params, geom,
                     std::move(candidate_cores), cost_inter, defects,
                     MappingEngineOptions{precompute_distance_table,
                                          1024, false})
{
}

MappingProblem::MappingProblem(const ModelConfig &model,
                               const CoreParams &core_params,
                               const WaferGeometry &geom,
                               std::vector<CoreCoord> candidate_cores,
                               double cost_inter,
                               const DefectMap *defects,
                               const MappingEngineOptions &engine)
    : layers_(tileBlockLayers(model, core_params)),
      candidates_(std::move(candidate_cores)), geom_(geom),
      costInter_(cost_inter), defects_(defects), engine_(engine)
{
    for (std::uint32_t l = 0; l < layers_.size(); ++l) {
        for (std::uint32_t o = 0; o < layers_[l].outSplits; ++o) {
            for (std::uint32_t i = 0; i < layers_[l].inSplits; ++i)
                tiles_.push_back({l, i, o});
        }
    }
    std::uint32_t usable = 0;
    for (std::size_t r = 0; r < candidates_.size(); ++r)
        usable += candidateUsable(r) ? 1 : 0;
    ouroAssert(usable >= tiles_.size(),
               "MappingProblem: region has ", usable,
               " usable cores but the block needs ", tiles_.size());

    buildFlowGraph();
    if (engine_.precomputeDistanceTable &&
        candidates_.size() <= engine_.distanceTableMaxCandidates)
        buildDistanceTable();
}

MappingProblem
MappingProblem::congruentTranslate(
        std::vector<CoreCoord> candidate_cores,
        bool precompute_distance_table) const
{
    ouroAssert(candidate_cores.size() == candidates_.size(),
               "congruentTranslate: region of ",
               candidate_cores.size(), " cores is not congruent to ",
               candidates_.size());
    // Field-wise clone instead of a copy construction: the template
    // may hold the O(C^2) distance/penalty tables (the annealed
    // region 0 does), and copying megabytes of table only to drop
    // them per translated region would defeat the fast path.
    MappingProblem translated;
    translated.layers_ = layers_;
    translated.tiles_ = tiles_;
    translated.candidates_ = std::move(candidate_cores);
    translated.geom_ = geom_;
    translated.costInter_ = costInter_;
    // Congruent regions are defect-free slices by construction (the
    // caller filtered defective cores out of the candidate order), so
    // the translated instance carries no defect map - the same way
    // WaferMapping's per-block rebuild constructs its instances.
    translated.defects_ = nullptr;
    // The flow CSR depends only on the tiling, which congruent
    // regions share by definition - so the immutable CSR is shared
    // behind its shared_ptr, making the translate O(1) in flow size.
    translated.flow_ = flow_;
    // The engine contract (fused vs exact, table cutoff) travels with
    // the translation; only table residency is per-instance.
    translated.engine_ = engine_;
    translated.engine_.precomputeDistanceTable =
        precompute_distance_table;
    if (precompute_distance_table &&
        translated.candidates_.size() <=
                engine_.distanceTableMaxCandidates)
        translated.buildDistanceTable();
    return translated;
}

Bytes
MappingProblem::flowBetween(std::size_t a, std::size_t b) const
{
    ouroAssert(a < tiles_.size() && b < tiles_.size() && a != b,
               "flowBetween: bad tile pair");
    const Tile &ta = tiles_[a];
    const Tile &tb = tiles_[b];
    const LayerSpec &la = layers_[ta.layer];
    const LayerSpec &lb = layers_[tb.layer];
    Bytes bytes = 0;

    // Mirrors pairCost()'s flow terms exactly; at most one fires for
    // any pair, so summing them is safe.
    if (ta.layer + 1 == tb.layer && ta.inSplit == la.inSplits - 1) {
        bytes += overlap(
                la.outPartLo(ta.outSplit), la.outPartHi(ta.outSplit),
                lb.inPartLo(tb.inSplit), lb.inPartHi(tb.inSplit));
    }
    if (tb.layer + 1 == ta.layer && tb.inSplit == lb.inSplits - 1) {
        bytes += overlap(
                lb.outPartLo(tb.outSplit), lb.outPartHi(tb.outSplit),
                la.inPartLo(ta.inSplit), la.inPartHi(ta.inSplit));
    }
    if (ta.layer == tb.layer) {
        const LayerSpec &layer = la;
        if (ta.outSplit == tb.outSplit) {
            const bool a_sends = ta.inSplit != layer.inSplits - 1 &&
                                 tb.inSplit == layer.inSplits - 1;
            const bool b_sends = tb.inSplit != layer.inSplits - 1 &&
                                 ta.inSplit == layer.inSplits - 1;
            if (a_sends || b_sends)
                bytes += layer.reductionVolume(ta.outSplit);
        }
        if (ta.outSplit != tb.outSplit &&
            ta.inSplit == layer.inSplits - 1 &&
            tb.inSplit == layer.inSplits - 1) {
            // Directed: prices the FIRST tile's slice (pairCost takes
            // a.outSplit), so F(a->b) and F(b->a) can differ when the
            // last split part is smaller.
            bytes += layer.gatherVolume(ta.outSplit);
        }
    }
    return bytes;
}

void
MappingProblem::buildFlowGraph()
{
    const std::size_t n = tiles_.size();
    FlowCsr csr;
    csr.offsets.assign(n + 1, 0);
    csr.upper.assign(n, 0);

    // Single triangle scan, two flowBetween() evaluations per pair.
    // Appending partner b to row a while the outer index ascends (and
    // a to row b from earlier outer iterations) leaves every row in
    // ascending partner order - the canonical order that makes the
    // sparse sums bit-identical to the dense loops.
    struct FlowEntry
    {
        std::uint32_t partner;
        double bytes;
    };
    std::vector<std::vector<FlowEntry>> rows(n);
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            const Bytes ab = flowBetween(a, b);
            const Bytes ba = flowBetween(b, a);
            if (ab == 0 && ba == 0)
                continue;
            rows[a].push_back({static_cast<std::uint32_t>(b),
                               static_cast<double>(ab)});
            rows[b].push_back({static_cast<std::uint32_t>(a),
                               static_cast<double>(ba)});
        }
    }

    for (std::size_t t = 0; t < n; ++t)
        csr.offsets[t + 1] =
            csr.offsets[t] +
            static_cast<std::uint32_t>(rows[t].size());
    csr.partner.resize(csr.offsets[n]);
    csr.bytes.resize(csr.offsets[n]);
    for (std::size_t t = 0; t < n; ++t) {
        std::uint32_t k = csr.offsets[t];
        csr.upper[t] = k;
        for (const FlowEntry &entry : rows[t]) {
            csr.partner[k] = entry.partner;
            csr.bytes[k] = entry.bytes;
            if (entry.partner < t)
                csr.upper[t] = k + 1;
            ++k;
        }
    }
    flow_ = std::make_shared<const FlowCsr>(std::move(csr));
}

void
MappingProblem::buildDistanceTable()
{
    const std::size_t c = candidates_.size();
    if (engine_.fusedCost) {
        // Fused engine: ONE row-major dist*pen product table - half
        // the table bytes the exact engine streams per term. Each
        // entry is the same (dist * pen) product slotFused()'s
        // on-the-fly branch computes, so table and on-the-fly fused
        // paths are bit-identical.
        fusedTable_.resize(c * c);
        for (std::size_t a = 0; a < c; ++a) {
            for (std::size_t b = 0; b < c; ++b) {
                fusedTable_[a * c + b] =
                    geom_.manhattan(candidates_[a], candidates_[b]) *
                    penalty(candidates_[a], candidates_[b]);
            }
        }
        hasFusedTable_ = true;
        return;
    }
    distTable_.resize(c * c);
    penTable_.resize(c * c);
    for (std::size_t a = 0; a < c; ++a) {
        for (std::size_t b = 0; b < c; ++b) {
            distTable_[a * c + b] =
                geom_.manhattan(candidates_[a], candidates_[b]);
            penTable_[a * c + b] =
                penalty(candidates_[a], candidates_[b]);
        }
    }
    hasTable_ = true;
}

bool
MappingProblem::candidateUsable(std::size_t r) const
{
    ouroAssert(r < candidates_.size(), "candidateUsable: bad index");
    return !defects_ || !defects_->defective(candidates_[r]);
}

double
MappingProblem::penalty(CoreCoord a, CoreCoord b) const
{
    return geom_.sameDie(a, b) ? 1.0 : costInter_;
}

std::uint64_t
MappingProblem::overlap(std::uint64_t lo1, std::uint64_t hi1,
                        std::uint64_t lo2, std::uint64_t hi2)
{
    const std::uint64_t lo = std::max(lo1, lo2);
    const std::uint64_t hi = std::min(hi1, hi2);
    return hi > lo ? hi - lo : 0;
}

double
MappingProblem::pairCost(const Tile &a, CoreCoord ca, const Tile &b,
                         CoreCoord cb) const
{
    const double dist = geom_.manhattan(ca, cb);
    if (dist == 0.0)
        return 0.0;
    const double pen = penalty(ca, cb);
    double cost = 0.0;

    const LayerSpec &la = layers_[a.layer];
    const LayerSpec &lb = layers_[b.layer];

    // Inter-layer activation flow: a's output part overlaps b's input
    // part in channel space. Only the final input split of a (the
    // reducer, which owns the complete output slice) forwards
    // activations.
    if (a.layer + 1 == b.layer && a.inSplit == la.inSplits - 1) {
        const std::uint64_t bytes = overlap(
                la.outPartLo(a.outSplit), la.outPartHi(a.outSplit),
                lb.inPartLo(b.inSplit), lb.inPartHi(b.inSplit));
        cost += dist * static_cast<double>(bytes) * pen;
    }
    if (b.layer + 1 == a.layer && b.inSplit == lb.inSplits - 1) {
        const std::uint64_t bytes = overlap(
                lb.outPartLo(b.outSplit), lb.outPartHi(b.outSplit),
                la.inPartLo(a.inSplit), la.inPartHi(a.inSplit));
        cost += dist * static_cast<double>(bytes) * pen;
    }

    if (a.layer == b.layer) {
        const LayerSpec &layer = la;
        // Intra-layer reduction: non-final input splits stream 32-bit
        // partial sums to the final split of the same output part.
        if (a.outSplit == b.outSplit) {
            const bool a_sends = a.inSplit != layer.inSplits - 1 &&
                                 b.inSplit == layer.inSplits - 1;
            const bool b_sends = b.inSplit != layer.inSplits - 1 &&
                                 a.inSplit == layer.inSplits - 1;
            if (a_sends || b_sends) {
                cost += dist * static_cast<double>(
                        layer.reductionVolume(a.outSplit)) * pen;
            }
        }
        // Gather between reducer tiles of different output parts.
        if (a.outSplit != b.outSplit &&
            a.inSplit == layer.inSplits - 1 &&
            b.inSplit == layer.inSplits - 1) {
            cost += dist * static_cast<double>(
                    layer.gatherVolume(a.outSplit)) * pen;
        }
    }
    return cost;
}

double
MappingProblem::assignmentCost(
        const std::vector<std::uint32_t> &assignment) const
{
    ouroAssert(assignment.size() == tiles_.size(),
               "assignmentCost: wrong assignment size");
    // Sparse upper-triangle walk. The dense reference visits pairs
    // (a, b > a) in ascending order; skipped pairs contribute exactly
    // +0.0 there, so this sum is bit-identical.
    double total = 0.0;
    const std::uint32_t *partner = flow_->partner.data();
    const double *bytes = flow_->bytes.data();
    if (engine_.fusedCost) {
        // Epsilon-exact tier: one fused (dist*pen) gather per term,
        // reassociating ((dist*bytes)*pen) -> ((dist*pen)*bytes).
        // Summation order is unchanged (same ascending walk), so the
        // result stays deterministic and within kFusedRelBound of the
        // exact engine per the contract in problem.hh.
        for (std::size_t a = 0; a < tiles_.size(); ++a) {
            const std::uint32_t sa = assignment[a];
            for (std::uint32_t k = flow_->upper[a];
                 k < flow_->offsets[a + 1]; ++k) {
                const std::uint32_t sb = assignment[partner[k]];
                total += slotFused(sa, sb) * bytes[k];
            }
        }
        return total;
    }
    for (std::size_t a = 0; a < tiles_.size(); ++a) {
        const std::uint32_t sa = assignment[a];
        for (std::uint32_t k = flow_->upper[a];
             k < flow_->offsets[a + 1]; ++k) {
            const std::uint32_t sb = assignment[partner[k]];
            total += slotDist(sa, sb) * bytes[k] * slotPen(sa, sb);
        }
    }
    return total;
}

double
MappingProblem::assignmentCostDense(
        const std::vector<std::uint32_t> &assignment) const
{
    ouroAssert(assignment.size() == tiles_.size(),
               "assignmentCostDense: wrong assignment size");
    double total = 0.0;
    for (std::size_t a = 0; a < tiles_.size(); ++a) {
        const CoreCoord ca = candidates_[assignment[a]];
        for (std::size_t b = a + 1; b < tiles_.size(); ++b) {
            total += pairCost(tiles_[a], ca, tiles_[b],
                              candidates_[assignment[b]]);
        }
    }
    return total;
}

double
MappingProblem::moveDelta(const std::vector<std::uint32_t> &assignment,
                          std::size_t t, std::uint32_t new_slot) const
{
    ouroAssert(t < tiles_.size(), "moveDelta: bad tile index");
    const std::uint32_t old_slot = assignment[t];
    double delta = 0.0;
    const std::uint32_t *partner = flow_->partner.data();
    const double *bytes = flow_->bytes.data();
    if (engine_.fusedCost) {
        for (std::uint32_t k = flow_->offsets[t];
             k < flow_->offsets[t + 1]; ++k) {
            const std::uint32_t sb = assignment[partner[k]];
            delta += slotFused(new_slot, sb) * bytes[k] -
                     slotFused(old_slot, sb) * bytes[k];
        }
        return delta;
    }
    for (std::uint32_t k = flow_->offsets[t];
         k < flow_->offsets[t + 1]; ++k) {
        const std::uint32_t sb = assignment[partner[k]];
        delta += slotDist(new_slot, sb) * bytes[k] *
                         slotPen(new_slot, sb) -
                 slotDist(old_slot, sb) * bytes[k] *
                         slotPen(old_slot, sb);
    }
    return delta;
}

double
MappingProblem::moveDeltaDense(
        const std::vector<std::uint32_t> &assignment, std::size_t t,
        std::uint32_t new_slot) const
{
    ouroAssert(t < tiles_.size(), "moveDeltaDense: bad tile index");
    const CoreCoord old_core = candidates_[assignment[t]];
    const CoreCoord new_core = candidates_[new_slot];
    double delta = 0.0;
    for (std::size_t b = 0; b < tiles_.size(); ++b) {
        if (b == t)
            continue;
        const CoreCoord cb = candidates_[assignment[b]];
        delta += pairCost(tiles_[t], new_core, tiles_[b], cb) -
                 pairCost(tiles_[t], old_core, tiles_[b], cb);
    }
    return delta;
}

void
MappingProblem::moveDeltaBatch(
        const std::vector<std::uint32_t> &assignment, std::size_t t,
        const std::uint32_t *slots, std::size_t count,
        MoveScratch &scratch, double *deltas) const
{
    ouroAssert(t < tiles_.size(), "moveDeltaBatch: bad tile index");
    const std::uint32_t old_slot = assignment[t];
    const std::uint32_t *partner = flow_->partner.data();
    const double *bytes = flow_->bytes.data();
    const std::uint32_t k0 = flow_->offsets[t];
    const std::size_t deg = flow_->offsets[t + 1] - k0;
    const std::size_t c = candidates_.size();

    // Gather the tile's partner slots and per-flow bytes into SoA
    // scratch ONCE, and price the old-slot terms once - they are
    // shared by every candidate. Hoisting the old term changes no
    // rounding: each candidate pass still evaluates
    //     delta += (new term) - (old term)
    // with exactly the operand values and accumulation order of the
    // scalar moveDelta, so deltas[i] is bit-identical to
    // moveDelta(assignment, t, slots[i]) on both engines.
    scratch.partnerSlot.resize(deg);
    scratch.bytes.resize(deg);
    scratch.oldTerm.resize(deg);
    std::uint32_t *psl = scratch.partnerSlot.data();
    double *byt = scratch.bytes.data();
    double *old_term = scratch.oldTerm.data();
    if (engine_.fusedCost) {
        for (std::size_t j = 0; j < deg; ++j) {
            const std::uint32_t sb = assignment[partner[k0 + j]];
            psl[j] = sb;
            byt[j] = bytes[k0 + j];
            old_term[j] = slotFused(old_slot, sb) * byt[j];
        }
        if (hasFusedTable_) {
            // Hot path: one contiguous table row per candidate,
            // streamed against the SoA scratch in a single pass the
            // compiler can vectorize.
            for (std::size_t i = 0; i < count; ++i) {
                const double *row =
                    fusedTable_.data() +
                    static_cast<std::size_t>(slots[i]) * c;
                double d = 0.0;
                for (std::size_t j = 0; j < deg; ++j)
                    d += row[psl[j]] * byt[j] - old_term[j];
                deltas[i] = d;
            }
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                const std::uint32_t ns = slots[i];
                double d = 0.0;
                for (std::size_t j = 0; j < deg; ++j)
                    d += slotFused(ns, psl[j]) * byt[j] -
                         old_term[j];
                deltas[i] = d;
            }
        }
        return;
    }
    for (std::size_t j = 0; j < deg; ++j) {
        const std::uint32_t sb = assignment[partner[k0 + j]];
        psl[j] = sb;
        byt[j] = bytes[k0 + j];
        old_term[j] =
            slotDist(old_slot, sb) * byt[j] * slotPen(old_slot, sb);
    }
    if (hasTable_) {
        for (std::size_t i = 0; i < count; ++i) {
            const std::size_t base =
                static_cast<std::size_t>(slots[i]) * c;
            const double *drow = distTable_.data() + base;
            const double *prow = penTable_.data() + base;
            double d = 0.0;
            for (std::size_t j = 0; j < deg; ++j)
                d += drow[psl[j]] * byt[j] * prow[psl[j]] -
                     old_term[j];
            deltas[i] = d;
        }
    } else {
        for (std::size_t i = 0; i < count; ++i) {
            const std::uint32_t ns = slots[i];
            double d = 0.0;
            for (std::size_t j = 0; j < deg; ++j)
                d += slotDist(ns, psl[j]) * byt[j] *
                             slotPen(ns, psl[j]) -
                     old_term[j];
            deltas[i] = d;
        }
    }
}

std::vector<double>
MappingProblem::moveDeltaBatch(
        const std::vector<std::uint32_t> &assignment, std::size_t t,
        const std::vector<std::uint32_t> &slots) const
{
    MoveScratch scratch;
    std::vector<double> deltas(slots.size());
    moveDeltaBatch(assignment, t, slots.data(), slots.size(), scratch,
                   deltas.data());
    return deltas;
}

double
MappingProblem::swapDelta(const std::vector<std::uint32_t> &assignment,
                          std::size_t t1, std::size_t t2) const
{
    ouroAssert(t1 < tiles_.size() && t2 < tiles_.size() && t1 != t2,
               "swapDelta: bad tile pair");
    const std::uint32_t s1 = assignment[t1];
    const std::uint32_t s2 = assignment[t2];
    const std::uint32_t *partner = flow_->partner.data();
    const double *bytes = flow_->bytes.data();

    // Merge the two adjacency rows in ascending partner order - the
    // same order the dense reference visits its nonzero terms in - and
    // evaluate each partner's contribution with the dense expression.
    // Partners equal to t1/t2 are skipped here; the dense loop's
    // closing (t1,t2) correction term is exactly +0.0 (same distance
    // and penalty on both sides of the swap), so dropping it keeps the
    // result bit-identical.
    std::uint32_t i = flow_->offsets[t1];
    const std::uint32_t i_end = flow_->offsets[t1 + 1];
    std::uint32_t j = flow_->offsets[t2];
    const std::uint32_t j_end = flow_->offsets[t2 + 1];
    const std::uint32_t u1 = static_cast<std::uint32_t>(t1);
    const std::uint32_t u2 = static_cast<std::uint32_t>(t2);

    double delta = 0.0;
    if (engine_.fusedCost) {
        // Same merge walk, fused (dist*pen) gathers - identical term
        // visit order, so the epsilon contract's fixed summation
        // order holds here too.
        while (i < i_end || j < j_end) {
            const std::uint32_t b1 =
                i < i_end ? partner[i] : UINT32_MAX;
            const std::uint32_t b2 =
                j < j_end ? partner[j] : UINT32_MAX;
            if (b1 < b2) {
                if (b1 != u2) {
                    const std::uint32_t sb = assignment[b1];
                    const double f1 = bytes[i];
                    delta += slotFused(s2, sb) * f1 -
                             slotFused(s1, sb) * f1;
                }
                ++i;
            } else if (b2 < b1) {
                if (b2 != u1) {
                    const std::uint32_t sb = assignment[b2];
                    const double f2 = bytes[j];
                    delta += slotFused(s1, sb) * f2 -
                             slotFused(s2, sb) * f2;
                }
                ++j;
            } else {
                const std::uint32_t sb = assignment[b1];
                const double f1 = bytes[i];
                const double f2 = bytes[j];
                delta += slotFused(s2, sb) * f1 -
                         slotFused(s1, sb) * f1 +
                         slotFused(s1, sb) * f2 -
                         slotFused(s2, sb) * f2;
                ++i;
                ++j;
            }
        }
        return delta;
    }
    while (i < i_end || j < j_end) {
        const std::uint32_t b1 =
            i < i_end ? partner[i] : UINT32_MAX;
        const std::uint32_t b2 =
            j < j_end ? partner[j] : UINT32_MAX;
        if (b1 < b2) {
            if (b1 != u2) {
                const std::uint32_t sb = assignment[b1];
                const double f1 = bytes[i];
                delta += slotDist(s2, sb) * f1 * slotPen(s2, sb) -
                         slotDist(s1, sb) * f1 * slotPen(s1, sb);
            }
            ++i;
        } else if (b2 < b1) {
            if (b2 != u1) {
                const std::uint32_t sb = assignment[b2];
                const double f2 = bytes[j];
                delta += slotDist(s1, sb) * f2 * slotPen(s1, sb) -
                         slotDist(s2, sb) * f2 * slotPen(s2, sb);
            }
            ++j;
        } else {
            const std::uint32_t sb = assignment[b1];
            const double f1 = bytes[i];
            const double f2 = bytes[j];
            delta += slotDist(s2, sb) * f1 * slotPen(s2, sb) -
                     slotDist(s1, sb) * f1 * slotPen(s1, sb) +
                     slotDist(s1, sb) * f2 * slotPen(s1, sb) -
                     slotDist(s2, sb) * f2 * slotPen(s2, sb);
            ++i;
            ++j;
        }
    }
    return delta;
}

double
MappingProblem::swapDeltaDense(
        const std::vector<std::uint32_t> &assignment, std::size_t t1,
        std::size_t t2) const
{
    // Replica of the annealer's historical inline swap loop.
    ouroAssert(t1 < tiles_.size() && t2 < tiles_.size() && t1 != t2,
               "swapDeltaDense: bad tile pair");
    const CoreCoord c1 = candidates_[assignment[t1]];
    const CoreCoord c2 = candidates_[assignment[t2]];
    double delta = 0.0;
    for (std::size_t b = 0; b < tiles_.size(); ++b) {
        if (b == t1 || b == t2)
            continue;
        const CoreCoord cb = candidates_[assignment[b]];
        delta += pairCost(tiles_[t1], c2, tiles_[b], cb)
               - pairCost(tiles_[t1], c1, tiles_[b], cb)
               + pairCost(tiles_[t2], c1, tiles_[b], cb)
               - pairCost(tiles_[t2], c2, tiles_[b], cb);
    }
    delta += pairCost(tiles_[t1], c2, tiles_[t2], c1) -
             pairCost(tiles_[t1], c1, tiles_[t2], c2);
    return delta;
}

double
MappingProblem::partialCost(
        const std::vector<std::uint32_t> &assignment, std::size_t t,
        std::uint32_t slot) const
{
    ouroAssert(t < tiles_.size(), "partialCost: bad tile index");
    // Partners below t in ascending order: the dense reference scans
    // b = 0..t-1 with tile t as pairCost's first argument.
    double add = 0.0;
    const std::uint32_t *partner = flow_->partner.data();
    const double *bytes = flow_->bytes.data();
    if (engine_.fusedCost) {
        for (std::uint32_t k = flow_->offsets[t];
             k < flow_->upper[t]; ++k) {
            const std::uint32_t sb = assignment[partner[k]];
            add += slotFused(slot, sb) * bytes[k];
        }
        return add;
    }
    for (std::uint32_t k = flow_->offsets[t]; k < flow_->upper[t];
         ++k) {
        const std::uint32_t sb = assignment[partner[k]];
        add += slotDist(slot, sb) * bytes[k] * slotPen(slot, sb);
    }
    return add;
}

double
MappingProblem::partialCostDense(
        const std::vector<std::uint32_t> &assignment, std::size_t t,
        std::uint32_t slot) const
{
    ouroAssert(t < tiles_.size(), "partialCostDense: bad tile index");
    const CoreCoord ct = candidates_[slot];
    double add = 0.0;
    for (std::size_t b = 0; b < t; ++b) {
        add += pairCost(tiles_[t], ct, tiles_[b],
                        candidates_[assignment[b]]);
    }
    return add;
}

bool
MappingProblem::feasible(
        const std::vector<std::uint32_t> &assignment) const
{
    if (assignment.size() != tiles_.size())
        return false;
    std::vector<bool> used(candidates_.size(), false);
    for (const auto slot : assignment) {
        if (slot >= candidates_.size())
            return false;
        if (used[slot])
            return false; // Eq. 2: one tile per core
        if (!candidateUsable(slot))
            return false; // Eq. 2: defective core
        used[slot] = true;
    }
    // Eq. 3 holds by construction: every tile is placed exactly once.
    return true;
}

} // namespace ouro
