#include "wafer_mapping.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ouro
{

const char *
mapperKindName(MapperKind kind)
{
    switch (kind) {
      case MapperKind::Greedy:
        return "greedy";
      case MapperKind::Annealing:
        return "annealing";
      case MapperKind::Summa:
        return "summa";
      case MapperKind::WaferLlm:
        return "waferllm";
    }
    panic("mapperKindName: bad kind");
}

std::uint64_t
embeddingCoreCount(const ModelConfig &model,
                   const CoreParams &core_params)
{
    const Bytes tables =
        2 * model.vocabSize * model.hiddenDim * model.bytesPerParam;
    return ceilDiv(tables, core_params.sramBytes());
}

std::uint64_t
regionSize(const ModelConfig &model, const CoreParams &core_params,
           std::uint64_t num_blocks, std::uint64_t usable_cores,
           std::uint64_t reserved)
{
    (void)model;
    (void)core_params;
    ouroAssert(usable_cores > reserved,
               "regionSize: no cores after reservation");
    return (usable_cores - reserved) / num_blocks;
}

const BlockPlacement &
WaferMapping::placement(std::uint64_t block) const
{
    ouroAssert(block >= firstBlock_ && block < firstBlock_ + numBlocks_,
               "placement: block ", block, " not on this wafer");
    return placements_[block - firstBlock_];
}

std::uint64_t
WaferMapping::totalKvCores() const
{
    std::uint64_t n = 0;
    for (const auto &p : placements_)
        n += p.scoreCores.size() + p.contextCores.size();
    return n;
}

std::optional<WaferMapping>
WaferMapping::build(const ModelConfig &model,
                    const CoreParams &core_params,
                    const WaferGeometry &geom, const DefectMap *defects,
                    std::uint64_t first_block, std::uint64_t num_blocks,
                    const WaferMappingOptions &opts)
{
    ouroAssert(num_blocks > 0, "WaferMapping::build: no blocks");

    WaferMapping mapping(geom);
    mapping.firstBlock_ = first_block;
    mapping.numBlocks_ = num_blocks;
    mapping.specs_ = tileBlockLayers(model, core_params);
    mapping.tilesPerBlock_ = 0;
    for (const auto &spec : mapping.specs_)
        mapping.tilesPerBlock_ += spec.numTiles();

    // Usable cores in pipeline (S-shaped) order.
    std::vector<CoreCoord> order;
    for (const CoreCoord &c : geom.sShapedOrder()) {
        if (!defects || !defects->defective(c))
            order.push_back(c);
    }

    // Reserve the embedding/LM-head cores only on the wafer hosting
    // block 0 (the pipeline entry).
    std::uint64_t reserved = 0;
    if (first_block == 0)
        reserved = embeddingCoreCount(model, core_params);
    if (order.size() < reserved)
        return std::nullopt;
    mapping.embeddingCores_.assign(order.begin(),
                                   order.begin() + reserved);

    const std::uint64_t replicas = std::max(1u, opts.replicas);
    const std::uint64_t per_region =
        (order.size() - reserved) / (num_blocks * replicas);
    if (per_region < mapping.tilesPerBlock_)
        return std::nullopt; // weights alone do not fit

    // Region assignment plus per-region mapping. The annealed pattern
    // from the first region is replicated to all congruent regions
    // (constraint (1)); regions are congruent here whenever they are
    // defect-free slices of equal length, which the usable-core
    // filtering guarantees in index space.
    std::vector<std::uint32_t> pattern; // slot indices for tiles
    const GreedyMapper greedy;

    for (std::uint64_t b = 0; b < num_blocks; ++b) {
        const std::uint64_t lo = reserved + b * per_region;
        std::vector<CoreCoord> region(
                order.begin() + lo, order.begin() + lo + per_region);

        // The candidate distance/penalty table only pays off for the
        // annealed region (thousands of incremental evaluations);
        // replicated regions and the constructive mappers evaluate
        // the objective once, so they skip the O(C^2) precompute -
        // the sparse engine's on-the-fly path is bit-identical.
        const bool anneals =
            b == 0 && opts.mapper == MapperKind::Annealing;
        MappingProblem problem(model, core_params, geom, region,
                               opts.costInter, nullptr, anneals);

        Assignment assignment;
        if (b == 0 || opts.mapper == MapperKind::Summa ||
            opts.mapper == MapperKind::WaferLlm) {
            switch (opts.mapper) {
              case MapperKind::Greedy:
                assignment = greedy.solve(problem);
                break;
              case MapperKind::Annealing: {
                AnnealingMapper::Options sa;
                sa.iterations = opts.annealIterations;
                sa.restarts = std::max(1u, opts.annealRestarts);
                sa.seed = opts.seed;
                assignment = AnnealingMapper(sa).solve(problem);
                break;
              }
              case MapperKind::Summa:
                assignment = SummaMapper{}.solve(problem);
                break;
              case MapperKind::WaferLlm:
                assignment = WaferLlmMapper{}.solve(problem);
                break;
            }
            if (b == 0)
                pattern = assignment;
        } else {
            assignment = pattern; // replicate block-0 pattern
        }
        ouroAssert(problem.feasible(assignment),
                   "WaferMapping: infeasible block assignment");

        BlockPlacement placement;
        placement.mappingCost = problem.assignmentCost(assignment);
        mapping.totalByteHops_ += placement.mappingCost;

        std::vector<bool> used(region.size(), false);
        placement.weightCores.reserve(assignment.size());
        for (const auto slot : assignment) {
            placement.weightCores.push_back(region[slot]);
            used[slot] = true;
        }
        // Leftover region cores become dedicated KV cores, split
        // alternately between score (K) and context (V) duty.
        bool to_score = true;
        for (std::size_t r = 0; r < region.size(); ++r) {
            if (used[r])
                continue;
            if (to_score)
                placement.scoreCores.push_back(region[r]);
            else
                placement.contextCores.push_back(region[r]);
            to_score = !to_score;
        }
        mapping.placements_.push_back(std::move(placement));
    }

    // Inter-block activation flow: the last layer's reducers of block
    // b feed block b+1's first-layer tiles. Charge hidden-vector
    // bytes over the centroid distance between consecutive regions.
    for (std::uint64_t b = 0; b + 1 < num_blocks; ++b) {
        const auto &cur = mapping.placements_[b].weightCores;
        const auto &nxt = mapping.placements_[b + 1].weightCores;
        ouroAssert(!cur.empty() && !nxt.empty(),
                   "WaferMapping: empty placement");
        const CoreCoord a = cur.back();
        const CoreCoord z = nxt.front();
        const double dist = geom.manhattan(a, z);
        const double pen =
            geom.sameDie(a, z) ? 1.0 : opts.costInter;
        mapping.totalByteHops_ +=
            dist * static_cast<double>(model.hiddenDim) * pen;
    }

    return mapping;
}

} // namespace ouro
