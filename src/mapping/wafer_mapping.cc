#include "wafer_mapping.hh"

#include <algorithm>

#include "common/logging.hh"
#include "noc/mesh.hh"

namespace ouro
{

const char *
mapperKindName(MapperKind kind)
{
    switch (kind) {
      case MapperKind::Greedy:
        return "greedy";
      case MapperKind::Annealing:
        return "annealing";
      case MapperKind::Summa:
        return "summa";
      case MapperKind::WaferLlm:
        return "waferllm";
    }
    panic("mapperKindName: bad kind");
}

std::uint64_t
embeddingCoreCount(const ModelConfig &model,
                   const CoreParams &core_params)
{
    const Bytes tables =
        2 * model.vocabSize * model.hiddenDim * model.bytesPerParam;
    return ceilDiv(tables, core_params.sramBytes());
}

std::uint64_t
regionSize(std::uint64_t num_regions, std::uint64_t usable_cores,
           std::uint64_t reserved)
{
    ouroAssert(num_regions > 0, "regionSize: no regions");
    ouroAssert(usable_cores > reserved,
               "regionSize: no cores after reservation");
    return (usable_cores - reserved) / num_regions;
}

const BlockPlacement &
WaferMapping::placement(std::uint64_t block) const
{
    return placement(block, 0);
}

const BlockPlacement &
WaferMapping::placement(std::uint64_t block,
                        std::uint32_t replica) const
{
    ouroAssert(block >= firstBlock_ && block < firstBlock_ + numBlocks_,
               "placement: block ", block, " not on this wafer");
    ouroAssert(replica < numReplicas_, "placement: replica ", replica,
               " of ", numReplicas_, " not on this wafer");
    return placements_[replica * numBlocks_ + (block - firstBlock_)];
}

std::uint64_t
WaferMapping::totalKvCores() const
{
    std::uint64_t n = 0;
    for (const auto &p : placements_)
        n += p.scoreCores.size() + p.contextCores.size();
    return n;
}

const std::vector<CoreCoord> &
WaferMapping::embeddingCores(std::uint32_t replica) const
{
    ouroAssert(replica < numReplicas_, "embeddingCores: replica ",
               replica, " of ", numReplicas_, " not on this wafer");
    return sharedEmbedding_ ? embeddingChains_.front()
                            : embeddingChains_[replica];
}

std::uint64_t
WaferMapping::chainKvCores(std::uint32_t replica) const
{
    ouroAssert(replica < numReplicas_, "chainKvCores: replica ",
               replica, " of ", numReplicas_, " not on this wafer");
    std::uint64_t n = 0;
    for (std::uint64_t b = 0; b < numBlocks_; ++b) {
        const auto &p = placements_[replica * numBlocks_ + b];
        n += p.scoreCores.size() + p.contextCores.size();
    }
    return n;
}

std::uint64_t
WaferMapping::chainActiveCores(std::uint32_t replica) const
{
    ouroAssert(replica < numReplicas_, "chainActiveCores: replica ",
               replica, " of ", numReplicas_, " not on this wafer");
    std::uint64_t n =
        sharedEmbedding_ ? 0 : embeddingChains_[replica].size();
    for (std::uint64_t b = 0; b < numBlocks_; ++b) {
        const auto &p = placements_[replica * numBlocks_ + b];
        n += p.weightCores.size() + p.scoreCores.size() +
             p.contextCores.size();
    }
    return n;
}

bool
accumulateInterBlockFlows(const std::vector<LayerSpec> &specs,
                          std::uint32_t tiles_per_block,
                          const std::vector<CoreCoord> &cur,
                          const std::vector<CoreCoord> &nxt,
                          const MeshNoc &noc,
                          TrafficAccumulator &traffic)
{
    ouroAssert(cur.size() == tiles_per_block &&
                       nxt.size() == tiles_per_block,
               "accumulateInterBlockFlows: placement/tiling mismatch");
    const LayerSpec &first = specs.front();
    const LayerSpec &last = specs.back();
    const std::uint32_t last_offset =
        tiles_per_block - last.numTiles();
    for (std::uint32_t o = 0; o < last.outSplits; ++o) {
        const CoreCoord src =
            cur[last_offset + o * last.inSplits + last.inSplits - 1];
        for (std::uint32_t i = 0; i < first.inSplits; ++i) {
            const Bytes bytes = MappingProblem::overlap(
                    last.outPartLo(o), last.outPartHi(o),
                    first.inPartLo(i), first.inPartHi(i));
            if (bytes == 0)
                continue;
            for (std::uint32_t o2 = 0; o2 < first.outSplits; ++o2) {
                const CoreCoord dst = nxt[o2 * first.inSplits + i];
                // An endpoint fenced in by defects has no route; let
                // the caller decide (addFlow would abort). One cache
                // lookup serves both the check and the accumulation.
                const PricedRoute &route = noc.pricedRoute(src, dst);
                if (route.path.empty())
                    return false;
                traffic.addFlow(route, bytes);
            }
        }
    }
    return true;
}

std::optional<WaferMapping>
WaferMapping::build(const ModelConfig &model,
                    const CoreParams &core_params,
                    const WaferGeometry &geom, const DefectMap *defects,
                    std::uint64_t first_block, std::uint64_t num_blocks,
                    const WaferMappingOptions &opts)
{
    ouroAssert(num_blocks > 0, "WaferMapping::build: no blocks");

    WaferMapping mapping(geom);
    mapping.firstBlock_ = first_block;
    mapping.numBlocks_ = num_blocks;
    mapping.specs_ = tileBlockLayers(model, core_params);
    mapping.tilesPerBlock_ = 0;
    for (const auto &spec : mapping.specs_)
        mapping.tilesPerBlock_ += spec.numTiles();

    // Usable cores in pipeline (S-shaped) order.
    std::vector<CoreCoord> order;
    for (const CoreCoord &c : geom.sShapedOrder()) {
        if (!defects || !defects->defective(c))
            order.push_back(c);
    }

    // Reserve the embedding/LM-head cores only on the wafer hosting
    // block 0 (the pipeline entry). Under the default replicated-
    // embedding layout EVERY replica chain carries its own
    // reservation at the head of its core span; the legacy shared
    // reservation (one prefix read by all chains) is kept behind
    // opts.sharedEmbedding as the compatibility oracle. The two
    // layouts are bit-identical at replicas == 1.
    std::uint64_t reserved = 0;
    if (first_block == 0)
        reserved = embeddingCoreCount(model, core_params);

    const std::uint32_t replicas = std::max(1u, opts.replicas);
    mapping.numReplicas_ = replicas;
    mapping.sharedEmbedding_ = opts.sharedEmbedding;
    const std::uint64_t reserved_total =
        opts.sharedEmbedding ? reserved : reserved * replicas;
    if (order.size() <= reserved_total)
        return std::nullopt;
    const std::uint64_t num_regions = num_blocks * replicas;
    const std::uint64_t per_region =
        regionSize(num_regions, order.size(), reserved_total);
    if (per_region < mapping.tilesPerBlock_)
        return std::nullopt; // weights alone do not fit

    // A chain's span: its embedding reservation followed by its
    // blocks' regions. Under the shared layout the single
    // reservation leads the whole order instead.
    const std::uint64_t chain_span =
        reserved + num_blocks * per_region;
    if (opts.sharedEmbedding) {
        mapping.embeddingChains_.emplace_back(
                order.begin(), order.begin() + reserved);
    } else {
        for (std::uint32_t r = 0; r < replicas; ++r) {
            const std::uint64_t lo = r * chain_span;
            mapping.embeddingChains_.emplace_back(
                    order.begin() + lo,
                    order.begin() + lo + reserved);
        }
    }
    const auto region_start = [&](std::uint64_t region) {
        if (opts.sharedEmbedding)
            return reserved + region * per_region;
        const std::uint64_t rep = region / num_blocks;
        const std::uint64_t block = region % num_blocks;
        return rep * chain_span + reserved + block * per_region;
    };

    // Region assignment plus per-region mapping. The annealed pattern
    // from the first region is replicated to all congruent regions
    // (constraint (1)); regions are congruent here whenever they are
    // defect-free slices of equal length, which the usable-core
    // filtering guarantees in index space. Replica r's block b lives
    // on region r * num_blocks + b, so each replica is a contiguous
    // pipeline chain and replica 0 occupies the same regions a
    // single-replica build would.
    std::vector<std::uint32_t> pattern; // slot indices for tiles
    const GreedyMapper greedy;

    // Block 0's problem is the template every congruent region is
    // translated from; the candidate distance/penalty table only pays
    // off for the annealed region (thousands of incremental
    // evaluations) - replicated regions and the constructive mappers
    // evaluate the objective once, so they skip the O(C^2) precompute
    // (the sparse engine's on-the-fly path is bit-identical).
    std::optional<MappingProblem> template_problem;

    mapping.placements_.reserve(num_regions);
    for (std::uint64_t region = 0; region < num_regions; ++region) {
        const std::uint64_t lo = region_start(region);
        std::vector<CoreCoord> region_cores(
                order.begin() + lo, order.begin() + lo + per_region);

        const bool anneals =
            region == 0 && opts.mapper == MapperKind::Annealing;
        std::optional<MappingProblem> rebuilt;
        if (region == 0 || !opts.congruentReuse) {
            // Full construction: block 0 (the template) or the
            // retained per-region rebuild oracle.
            MappingEngineOptions engine;
            engine.precomputeDistanceTable = anneals;
            engine.distanceTableMaxCandidates =
                opts.distanceTableMaxCandidates;
            engine.fusedCost = opts.fusedCostEngine;
            rebuilt.emplace(model, core_params, geom,
                            std::move(region_cores), opts.costInter,
                            nullptr, engine);
        }
        const MappingProblem problem =
            rebuilt ? std::move(*rebuilt)
                    : template_problem->congruentTranslate(
                              std::move(region_cores));
        if (region == 0 && opts.congruentReuse) {
            // Store the template as a self-translate: same layers,
            // tiles and flow CSR, but WITHOUT region 0's (possibly
            // materialised) O(C^2) distance table, which the
            // translated regions never use. The oracle path never
            // reads the template, so it skips the copy.
            template_problem.emplace(problem.congruentTranslate(
                    std::vector<CoreCoord>(problem.candidates())));
        }
        const auto &cores = problem.candidates();

        Assignment assignment;
        if (region == 0 || opts.mapper == MapperKind::Summa ||
            opts.mapper == MapperKind::WaferLlm) {
            switch (opts.mapper) {
              case MapperKind::Greedy:
                assignment = greedy.solve(problem);
                break;
              case MapperKind::Annealing: {
                AnnealingMapper::Options sa;
                sa.iterations = opts.annealIterations;
                sa.restarts = std::max(1u, opts.annealRestarts);
                sa.seed = opts.seed;
                sa.moveBatch = std::max(1u, opts.annealMoveBatch);
                assignment = AnnealingMapper(sa).solve(problem);
                break;
              }
              case MapperKind::Summa:
                assignment = SummaMapper{}.solve(problem);
                break;
              case MapperKind::WaferLlm:
                assignment = WaferLlmMapper{}.solve(problem);
                break;
            }
            if (region == 0)
                pattern = assignment;
        } else {
            assignment = pattern; // replicate the region-0 pattern
        }
        ouroAssert(problem.feasible(assignment),
                   "WaferMapping: infeasible block assignment");

        BlockPlacement placement;
        placement.mappingCost = problem.assignmentCost(assignment);
        mapping.totalByteHops_ += placement.mappingCost;

        std::vector<bool> used(cores.size(), false);
        placement.weightCores.reserve(assignment.size());
        for (const auto slot : assignment) {
            placement.weightCores.push_back(cores[slot]);
            used[slot] = true;
        }
        // Leftover region cores become dedicated KV cores, split
        // alternately between score (K) and context (V) duty.
        bool to_score = true;
        for (std::size_t r = 0; r < cores.size(); ++r) {
            if (used[r])
                continue;
            if (to_score)
                placement.scoreCores.push_back(cores[r]);
            else
                placement.contextCores.push_back(cores[r]);
            to_score = !to_score;
        }
        mapping.placements_.push_back(std::move(placement));
    }

    // Inter-block activation flow: routed over the actual mesh
    // (cached routes, defect detours included) and aggregated on
    // per-link loads; the die-crossing hops carry the CostInter
    // weight, matching the Fig. 18 volume metric. An unroutable
    // flow (endpoint fenced in by defects) makes the wafer unusable
    // under this defect map, so the build fails like any other
    // infeasibility.
    NocParams noc_params;
    noc_params.interDiePenalty = opts.costInter;
    const MeshNoc noc(geom, noc_params, defects, opts.cleanRoutes);
    TrafficAccumulator traffic(noc);
    for (std::uint32_t rep = 0; rep < replicas; ++rep) {
        for (std::uint64_t b = 0; b + 1 < num_blocks; ++b) {
            if (!accumulateInterBlockFlows(
                        mapping.specs_, mapping.tilesPerBlock_,
                        mapping.placements_[rep * num_blocks + b]
                                .weightCores,
                        mapping.placements_[rep * num_blocks + b + 1]
                                .weightCores,
                        noc, traffic))
                return std::nullopt;
        }
    }
    mapping.interBlockByteHops_ = traffic.totalEffectiveByteHops();
    mapping.totalByteHops_ += mapping.interBlockByteHops_;

    return mapping;
}

} // namespace ouro
