#include "dp.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>
#include <optional>

#include "common/logging.hh"

namespace ouro
{

namespace
{

bool
isPowerOfTwo(std::uint32_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * One buddy-allocation attempt.
 *
 * @param prefer_largest when true, carve each block from the largest
 *        free region (keeps distinct groups in subtrees that only
 *        meet near the root, where concatenation is cheap). When
 *        false, best-fit (smallest adequate block) - never fails for
 *        power-of-two requests within capacity, but separates less.
 */
std::optional<std::vector<int>>
tryAllocate(const std::vector<std::uint32_t> &group_counts,
            std::uint32_t leaves, std::uint64_t total,
            bool prefer_largest)
{
    std::vector<int> assignment(leaves, -1);

    // Buddy free lists, one flat bucket per block order (block size
    // 2^order): order lookup is O(1) with no node allocation, unlike
    // the former std::map<size, offsets> which paid a tree walk and
    // a heap node per live size class. Offsets are kept sorted
    // descending so the smallest offset is an O(1) pop from the
    // back.
    const auto top_order =
        static_cast<unsigned>(std::countr_zero(leaves));
    std::array<std::vector<std::uint32_t>, 33> free_blocks;
    free_blocks[top_order].push_back(0);

    auto take_block =
            [&](std::uint32_t want) -> std::optional<std::uint32_t> {
        const auto want_order =
            static_cast<unsigned>(std::countr_zero(want));
        unsigned order = 0;
        bool found = false;
        if (prefer_largest) {
            // Largest free block anywhere at or above want.
            for (unsigned o = top_order + 1; o-- > want_order;) {
                if (!free_blocks[o].empty()) {
                    order = o;
                    found = true;
                    break;
                }
            }
        } else {
            // Best fit: smallest adequate block.
            for (unsigned o = want_order; o <= top_order; ++o) {
                if (!free_blocks[o].empty()) {
                    order = o;
                    found = true;
                    break;
                }
            }
        }
        if (!found)
            return std::nullopt;
        auto &offsets = free_blocks[order];
        const std::uint32_t off = offsets.back(); // smallest offset
        offsets.pop_back();
        // Split down to the wanted size, returning upper halves.
        std::uint32_t size = std::uint32_t{1} << order;
        while (size > want) {
            size /= 2;
            auto &bucket =
                free_blocks[std::countr_zero(size)];
            bucket.insert(std::lower_bound(bucket.begin(),
                                           bucket.end(), off + size,
                                           std::greater<>{}),
                          off + size);
        }
        return off;
    };

    // Largest groups first so they grab the big aligned subtrees.
    std::vector<std::size_t> order(group_counts.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return group_counts[a] > group_counts[b];
              });

    // Unused leaves are transparent pad: rounding a group up to a
    // whole aligned block turns every merge above it into a
    // reduction. Spend the slack on the largest groups first.
    std::uint32_t slack = static_cast<std::uint32_t>(leaves - total);

    for (const auto g : order) {
        const std::uint32_t count = group_counts[g];
        if (count == 0)
            continue;
        const auto padded =
            static_cast<std::uint32_t>(buddyNextPow2(count));
        if (padded - count <= slack) {
            const auto off = take_block(padded);
            if (!off)
                return std::nullopt;
            slack -= padded - count;
            for (std::uint32_t k = 0; k < count; ++k)
                assignment[*off + k] = static_cast<int>(g);
            continue;
        }
        // Binary decomposition: each power-of-two chunk occupies one
        // aligned block exactly, so all merges inside it reduce.
        std::uint32_t remaining = count;
        for (std::uint32_t bit = leaves; bit >= 1; bit /= 2) {
            if (remaining & bit) {
                const auto off = take_block(bit);
                if (!off)
                    return std::nullopt;
                for (std::uint32_t k = 0; k < bit; ++k)
                    assignment[*off + k] = static_cast<int>(g);
                remaining -= bit;
            }
            if (bit == 1)
                break;
        }
    }
    return assignment;
}

} // namespace

std::uint64_t
buddyNextPow2(std::uint64_t x)
{
    // The former 32-bit `while (p < x) p <<= 1` looped forever for
    // x > 2^31 (p wraps to 0); widths are 64-bit now and the one
    // unrepresentable input is rejected instead of wrapping.
    ouroAssert(x <= (std::uint64_t{1} << 63),
               "buddyNextPow2: ", x, " exceeds 2^63");
    return x <= 1 ? 1 : std::bit_ceil(x);
}

std::uint64_t
leafAssignmentCost(const std::vector<int> &assignment)
{
    const HTree tree(static_cast<std::uint32_t>(assignment.size()));
    return tree.assignmentCost(assignment);
}

std::vector<int>
dpLeafAssignment(const std::vector<std::uint32_t> &group_counts,
                 std::uint32_t leaves)
{
    ouroAssert(isPowerOfTwo(leaves), "dpLeafAssignment: leaves ",
               leaves, " not a power of two");
    std::uint64_t total = 0;
    for (const auto c : group_counts)
        total += c;
    ouroAssert(total <= leaves, "dpLeafAssignment: ", total,
               " slices exceed ", leaves, " leaves");

    const auto spread =
        tryAllocate(group_counts, leaves, total, true);
    const auto packed =
        tryAllocate(group_counts, leaves, total, false);
    ouroAssert(packed.has_value(),
               "dpLeafAssignment: best-fit allocation failed");
    if (!spread)
        return *packed;
    return leafAssignmentCost(*spread) <= leafAssignmentCost(*packed)
               ? *spread
               : *packed;
}

std::vector<int>
bruteForceLeafAssignment(const std::vector<std::uint32_t> &group_counts,
                         std::uint32_t leaves)
{
    ouroAssert(leaves <= 16,
               "bruteForceLeafAssignment: instance too large");
    std::vector<int> labels;
    for (std::size_t g = 0; g < group_counts.size(); ++g) {
        for (std::uint32_t k = 0; k < group_counts[g]; ++k)
            labels.push_back(static_cast<int>(g));
    }
    ouroAssert(labels.size() <= leaves,
               "bruteForceLeafAssignment: too many slices");
    while (labels.size() < leaves)
        labels.push_back(-1);
    std::sort(labels.begin(), labels.end());

    const HTree tree(leaves);
    std::vector<int> best = labels;
    std::uint64_t best_cost = tree.assignmentCost(labels);
    while (std::next_permutation(labels.begin(), labels.end())) {
        const std::uint64_t cost = tree.assignmentCost(labels);
        if (cost < best_cost) {
            best_cost = cost;
            best = labels;
        }
    }
    return best;
}

} // namespace ouro
