#include "mappers.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace ouro
{

namespace
{

/** Usable candidate slots of a problem, in region order. */
std::vector<std::uint32_t>
usableSlots(const MappingProblem &problem)
{
    std::vector<std::uint32_t> slots;
    for (std::size_t r = 0; r < problem.candidates().size(); ++r) {
        if (problem.candidateUsable(r))
            slots.push_back(static_cast<std::uint32_t>(r));
    }
    return slots;
}

} // namespace

Assignment
GreedyMapper::solve(const MappingProblem &problem) const
{
    // Tiles are generated layer-major, output-part-major; walking the
    // candidate region in order therefore keeps each layer's reduction
    // chains contiguous and consecutive layers adjacent - the
    // candidate list itself is expected to be in S-shaped order.
    const auto slots = usableSlots(problem);
    const auto &tiles = problem.tiles();
    ouroAssert(slots.size() >= tiles.size(),
               "GreedyMapper: not enough usable cores");
    Assignment assignment(tiles.size());
    for (std::size_t t = 0; t < tiles.size(); ++t)
        assignment[t] = slots[t];
    return assignment;
}

AnnealingMapper::AnnealingMapper(Options opts)
    : opts_(opts)
{
}

Assignment
AnnealingMapper::solve(const MappingProblem &problem) const
{
    if (opts_.restarts <= 1)
        return annealOnce(problem, opts_.seed).first;

    // Parallel multi-restart: every restart is an independent chain
    // with its own deterministically derived seed writing its own
    // result slot, so the sweep is bit-identical serial or parallel.
    std::vector<std::pair<Assignment, double>> chains(opts_.restarts);
    parallelFor(chains.size(), [&](std::size_t r) {
        // Restart 0 keeps the caller's seed (restarts=1 equivalence);
        // the rest take well-separated streams off the golden-ratio
        // increment so chains never correlate.
        const std::uint64_t seed =
            r == 0 ? opts_.seed
                   : opts_.seed +
                         0x9E3779B97F4A7C15ULL *
                             static_cast<std::uint64_t>(r);
        chains[r] = annealOnce(problem, seed);
    });
    std::size_t best = 0;
    for (std::size_t r = 1; r < chains.size(); ++r) {
        if (chains[r].second < chains[best].second)
            best = r;
    }
    return std::move(chains[best].first);
}

std::pair<Assignment, double>
AnnealingMapper::annealOnce(const MappingProblem &problem,
                            std::uint64_t seed) const
{
    Assignment current = GreedyMapper{}.solve(problem);
    const auto &tiles = problem.tiles();
    if (tiles.size() <= 1)
        return {current, problem.assignmentCost(current)};

    const auto slots = usableSlots(problem);
    // Occupancy map: slot -> tile index or -1.
    std::vector<std::int64_t> occupant(problem.candidates().size(), -1);
    for (std::size_t t = 0; t < current.size(); ++t)
        occupant[current[t]] = static_cast<std::int64_t>(t);

    double cost = problem.assignmentCost(current);
    Assignment best = current;
    double best_cost = cost;

    Rng rng(seed);

    // Engine selection: the sparse flow-graph engine is the default;
    // the dense reference is bit-identical (asserted by tests and
    // fig18), so the trajectory below is engine-invariant.
    const bool dense = opts_.useDenseEngine;
    const auto move_delta = [&](std::size_t t, std::uint32_t s) {
        return dense ? problem.moveDeltaDense(current, t, s)
                     : problem.moveDelta(current, t, s);
    };
    const auto swap_delta = [&](std::size_t t1, std::size_t t2) {
        return dense ? problem.swapDeltaDense(current, t1, t2)
                     : problem.swapDelta(current, t1, t2);
    };

    // Auto-calibrate the starting temperature from a random-move
    // sample so acceptance starts near 80%.
    double temperature = opts_.initialTemperature;
    if (temperature <= 0.0) {
        double sum_abs = 0.0;
        const int probes = 64;
        for (int p = 0; p < probes; ++p) {
            const auto t = rng.uniformInt(0, tiles.size() - 1);
            const auto s = slots[rng.uniformInt(0, slots.size() - 1)];
            if (s == current[t])
                continue;
            if (occupant[s] < 0)
                sum_abs += std::abs(move_delta(t, s));
        }
        temperature = std::max(1.0, sum_abs / probes);
    }

    // Proposal rounds: ONE tile draw + `moveBatch` slot draws per
    // round, then the round's still-pending free-slot candidates are
    // priced in one moveDeltaBatch SoA pass (lazily, and re-priced if
    // an accepted move invalidates them). With moveBatch=1 the RNG
    // word sequence and every accept/reject decision reproduce the
    // historical one-draw-per-iteration loop bit for bit; for any
    // fixed batch the trajectory is engine-invariant because batched
    // deltas are bit-identical to the scalar moveDelta.
    const std::uint32_t batch =
        std::max<std::uint32_t>(1, opts_.moveBatch);
    std::vector<std::uint32_t> cand(batch), free_slots(batch);
    std::vector<std::size_t> free_pos(batch);
    std::vector<double> cand_delta(batch), free_delta(batch);
    MappingProblem::MoveScratch scratch;

    for (std::uint64_t iter = 0; iter < opts_.iterations;) {
        const auto t1 =
            static_cast<std::size_t>(rng.uniformInt(0,
                                                    tiles.size() - 1));
        const auto round = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(batch,
                                        opts_.iterations - iter));
        for (std::uint32_t i = 0; i < round; ++i)
            cand[i] = slots[rng.uniformInt(0, slots.size() - 1)];

        bool priced = false;
        for (std::uint32_t i = 0; i < round; ++i, ++iter) {
            const std::uint32_t slot = cand[i];
            if (slot == current[t1])
                continue;

            double delta = 0.0;
            const std::int64_t other = occupant[slot];
            if (other < 0) {
                // Relocate t1 to a free slot.
                if (dense) {
                    delta = problem.moveDeltaDense(current, t1, slot);
                } else {
                    if (!priced) {
                        // Price every still-pending free candidate of
                        // the round in one pass; any accepted move
                        // (relocate or swap) clears `priced` because
                        // it changes the deltas.
                        std::size_t nf = 0;
                        for (std::uint32_t j = i; j < round; ++j) {
                            const std::uint32_t s = cand[j];
                            if (s != current[t1] && occupant[s] < 0) {
                                free_pos[nf] = j;
                                free_slots[nf++] = s;
                            }
                        }
                        problem.moveDeltaBatch(current, t1,
                                               free_slots.data(), nf,
                                               scratch,
                                               free_delta.data());
                        for (std::size_t j = 0; j < nf; ++j)
                            cand_delta[free_pos[j]] = free_delta[j];
                        priced = true;
                    }
                    delta = cand_delta[i];
                }
                if (delta <= 0.0 ||
                    rng.uniform() < std::exp(-delta / temperature)) {
                    occupant[current[t1]] = -1;
                    current[t1] = slot;
                    occupant[slot] = static_cast<std::int64_t>(t1);
                    cost += delta;
                    priced = false;
                }
            } else {
                // Swap t1 and the occupant t2.
                const auto t2 = static_cast<std::size_t>(other);
                const std::uint32_t s1 = current[t1];
                const std::uint32_t s2 = slot;
                delta = swap_delta(t1, t2);
                if (delta <= 0.0 ||
                    rng.uniform() < std::exp(-delta / temperature)) {
                    std::swap(current[t1], current[t2]);
                    occupant[s1] = static_cast<std::int64_t>(t2);
                    occupant[s2] = static_cast<std::int64_t>(t1);
                    cost += delta;
                    priced = false;
                }
            }

            if (cost < best_cost) {
                best_cost = cost;
                best = current;
            }
            temperature *= opts_.coolingFactor;
            if (temperature < 1e-9)
                temperature = 1e-9;
        }
    }

    ouroAssert(problem.feasible(best), "AnnealingMapper: infeasible");
    // Exact recompute: the incrementally tracked cost accumulates
    // floating error, and restarts are compared on this value.
    const double exact_cost = problem.assignmentCost(best);
    return {std::move(best), exact_cost};
}

ExactMapper::ExactMapper(std::uint32_t max_tiles)
    : maxTiles_(max_tiles)
{
}

Assignment
ExactMapper::solve(const MappingProblem &problem) const
{
    const auto &tiles = problem.tiles();
    ouroAssert(tiles.size() <= maxTiles_,
               "ExactMapper: instance too large (", tiles.size(),
               " tiles)");
    const auto slots = usableSlots(problem);

    Assignment current(tiles.size(), 0);
    Assignment best;
    double best_cost = std::numeric_limits<double>::infinity();
    std::vector<bool> used(problem.candidates().size(), false);

    // Depth-first branch and bound with partial-cost pruning (all
    // pair costs are non-negative, so the partial sum lower-bounds).
    auto recurse = [&](auto &&self, std::size_t t,
                       double partial) -> void {
        if (partial >= best_cost)
            return;
        if (t == tiles.size()) {
            best_cost = partial;
            best = current;
            return;
        }
        for (const auto slot : slots) {
            if (used[slot])
                continue;
            // Sparse partial cost over tile t's already-placed flow
            // partners (bit-identical to the dense b < t scan).
            const double add = problem.partialCost(current, t, slot);
            used[slot] = true;
            current[t] = slot;
            self(self, t + 1, partial + add);
            used[slot] = false;
        }
    };
    recurse(recurse, 0, 0.0);
    ouroAssert(!best.empty(), "ExactMapper: no feasible assignment");
    return best;
}

Assignment
SummaMapper::solve(const MappingProblem &problem) const
{
    // Each layer is distributed across the WHOLE region as an
    // independent 2-D grid (SUMMA assigns operands by grid position,
    // oblivious to what the previous layer produced where). We model
    // that by striding each layer's tiles across the full region.
    const auto slots = usableSlots(problem);
    const auto &tiles = problem.tiles();
    ouroAssert(slots.size() >= tiles.size(),
               "SummaMapper: not enough cores");

    Assignment assignment(tiles.size());
    std::vector<bool> used(slots.size(), false);

    std::size_t t = 0;
    for (std::uint32_t l = 0; l < problem.layers().size(); ++l) {
        const auto n = problem.layers()[l].numTiles();
        // Spread the layer's tiles evenly over the region.
        const double stride =
            static_cast<double>(slots.size()) / n;
        for (std::uint32_t k = 0; k < n; ++k, ++t) {
            auto want = static_cast<std::size_t>(k * stride);
            while (used[want % slots.size()])
                ++want;
            used[want % slots.size()] = true;
            assignment[t] = slots[want % slots.size()];
        }
    }
    return assignment;
}

Assignment
WaferLlmMapper::solve(const MappingProblem &problem) const
{
    // Contiguous per-layer strips in raw row-major core order (not the
    // S-shaped locality order): consecutive layers are adjacent but
    // strip interiors ignore the reduce/gather structure.
    const auto &candidates = problem.candidates();
    // Re-sort candidate slots row-major by coordinate.
    std::vector<std::uint32_t> slots = [&] {
        std::vector<std::uint32_t> s;
        for (std::size_t r = 0; r < candidates.size(); ++r) {
            if (problem.candidateUsable(r))
                s.push_back(static_cast<std::uint32_t>(r));
        }
        std::sort(s.begin(), s.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      const CoreCoord ca = candidates[a];
                      const CoreCoord cb = candidates[b];
                      return ca.row != cb.row ? ca.row < cb.row
                                              : ca.col < cb.col;
                  });
        return s;
    }();
    const auto &tiles = problem.tiles();
    ouroAssert(slots.size() >= tiles.size(),
               "WaferLlmMapper: not enough cores");

    // (layer, inSplit, outSplit) -> tile index, built in one pass so
    // the reorder below is O(T) instead of an O(T^2) scan per tile.
    std::vector<std::vector<std::uint32_t>> tile_index(
            problem.layers().size());
    for (std::uint32_t l = 0; l < problem.layers().size(); ++l) {
        tile_index[l].assign(problem.layers()[l].numTiles(),
                             UINT32_MAX);
    }
    for (std::size_t k = 0; k < tiles.size(); ++k) {
        const Tile &tile = tiles[k];
        const LayerSpec &spec = problem.layers()[tile.layer];
        tile_index[tile.layer][tile.inSplit * spec.outSplits +
                               tile.outSplit] =
            static_cast<std::uint32_t>(k);
    }

    // Within a layer, WaferLLM distributes input-split-major (rows of
    // the operand), which separates the reduction partners that our
    // tile order keeps together; reorder accordingly.
    Assignment assignment(tiles.size());
    std::size_t cursor = 0;
    for (std::uint32_t l = 0; l < problem.layers().size(); ++l) {
        const LayerSpec &spec = problem.layers()[l];
        for (std::uint32_t i = 0; i < spec.inSplits; ++i) {
            for (std::uint32_t o = 0; o < spec.outSplits; ++o) {
                const std::uint32_t t =
                    tile_index[l][i * spec.outSplits + o];
                ouroAssert(t != UINT32_MAX,
                           "WaferLlmMapper: tile not found");
                assignment[t] = slots[cursor++];
            }
        }
    }
    return assignment;
}

double
mappingByteHops(const MappingProblem &problem,
                const Assignment &assignment)
{
    // The Eq. 1 objective already *is* sum(bytes x hops x penalty).
    return problem.assignmentCost(assignment);
}

} // namespace ouro
