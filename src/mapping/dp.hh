/**
 * @file
 * Intra-core weight distribution by dynamic programming
 * (paper Section 4.3.2, Eq. 4).
 *
 * A core's tile is itself split across up to 32 crossbars. Slices
 * that belong to the same output-channel group merge by *reduction*
 * (free); slices of different groups merge by *concatenation*, which
 * doubles the bus width at the merge node and costs depth(node) on
 * the H-tree. The DP assigns group slices to the 32 leaves so that
 * concatenations happen as close to the root as possible.
 *
 * dpLeafAssignment() is the production algorithm: a buddy-style
 * placement (each group occupies aligned power-of-two subtrees,
 * largest first) refined by the observation that a group of size c
 * decomposes into the binary representation of c. Tests verify it
 * against bruteForceLeafAssignment() on every instance small enough
 * to enumerate.
 */

#ifndef OURO_MAPPING_DP_HH
#define OURO_MAPPING_DP_HH

#include <cstdint>
#include <vector>

#include "noc/htree.hh"

namespace ouro
{

/**
 * Place groups on H-tree leaves. group_counts[g] = number of leaf
 * slices group g needs; the sum must not exceed @p leaves.
 *
 * @return assignment vector of size @p leaves: group id per leaf,
 *         -1 for unused leaves.
 */
std::vector<int> dpLeafAssignment(
        const std::vector<std::uint32_t> &group_counts,
        std::uint32_t leaves);

/** Exhaustive optimum for tiny instances (test oracle). */
std::vector<int> bruteForceLeafAssignment(
        const std::vector<std::uint32_t> &group_counts,
        std::uint32_t leaves);

/** Cost of an assignment under Eq. 4 (thin wrapper over HTree). */
std::uint64_t leafAssignmentCost(const std::vector<int> &assignment);

/**
 * Smallest power of two >= @p x (1 for x == 0), computed in 64 bits.
 * Asserts on x > 2^63, the one input whose ceiling is
 * unrepresentable; the buddy paths use this instead of a 32-bit
 * shift loop that wrapped (and hung) on huge leaf counts.
 */
std::uint64_t buddyNextPow2(std::uint64_t x);

} // namespace ouro

#endif // OURO_MAPPING_DP_HH
