#include "remap.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace ouro
{

bool
removePoolCoord(std::vector<CoreCoord> &pool, CoreCoord target)
{
    const auto it = std::find(pool.begin(), pool.end(), target);
    if (it == pool.end())
        return false;
    pool.erase(it);
    return true;
}

std::optional<NearestKvScan>
nearestKvScan(const BlockPlacement &placement, CoreCoord from,
              const WaferGeometry &geom)
{
    // Ties resolve by visit order - score pool first, lower index
    // first - which is exactly the rank RecoveryIndex's sequence
    // numbers encode.
    const std::vector<CoreCoord> *best_pool = nullptr;
    std::size_t best_idx = 0;
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    for (const auto *candidates :
         {&placement.scoreCores, &placement.contextCores}) {
        for (std::size_t i = 0; i < candidates->size(); ++i) {
            const auto d = geom.manhattan(from, (*candidates)[i]);
            if (d < best) {
                best = d;
                best_pool = candidates;
                best_idx = i;
            }
        }
    }
    if (!best_pool)
        return std::nullopt;
    return NearestKvScan{(*best_pool)[best_idx],
                         best_pool == &placement.scoreCores};
}

namespace
{

std::uint32_t
absDiff(std::uint32_t a, std::uint32_t b)
{
    return a > b ? a - b : b - a;
}

/**
 * Chain construction shared by both recoverCoreFailure overloads:
 * updates @p placement (and @p index when given) and fills
 * everything of the result except latencySeconds (the overloads
 * price the moves differently). The no-index scans are the retained
 * oracle the RecoveryIndex fast path is pinned identical to.
 */
std::optional<RemapResult>
buildReplacementChain(BlockPlacement &placement, CoreCoord failed,
                      const WaferGeometry &geom, Bytes tile_bytes,
                      RecoveryIndex *index)
{
    // KV-core failure: drop from the pool; sequences recompute. The
    // index answers membership in O(log); without one, removeCoord
    // detects and removes in a single pass per pool.
    const bool kv_failure =
        index ? index->kvAt(failed)
              : removePoolCoord(placement.scoreCores, failed) ||
                    removePoolCoord(placement.contextCores, failed);
    if (kv_failure) {
        if (index) {
            const bool removed =
                removePoolCoord(placement.scoreCores, failed) ||
                removePoolCoord(placement.contextCores, failed);
            ouroAssert(removed, "remap: KV pool lost core (",
                       failed.row, ",", failed.col, ")");
            index->removeKv(failed);
        }
        RemapResult result;
        result.absorbedKvCore = failed;
        result.chainLength = 1;
        return result;
    }

    // Weight-core failure: locate the tile.
    std::size_t failed_tile;
    if (index) {
        const auto tile = index->weightTileAt(failed);
        if (!tile)
            return std::nullopt; // not ours
        failed_tile = *tile;
    } else {
        const auto tile_it = std::find(placement.weightCores.begin(),
                                       placement.weightCores.end(),
                                       failed);
        if (tile_it == placement.weightCores.end())
            return std::nullopt; // not ours
        failed_tile = static_cast<std::size_t>(
                tile_it - placement.weightCores.begin());
    }

    // Nearest KV core (either duty) absorbs the chain. Ties resolve
    // by visit order - score pool first, lower index first - which
    // is exactly the rank RecoveryIndex's sequence numbers encode.
    CoreCoord kv_core;
    if (index) {
        const auto hit = index->nearestKv(failed);
        if (!hit)
            return std::nullopt; // no KV core left to absorb
        kv_core = hit->core;
    } else {
        const auto hit = nearestKvScan(placement, failed, geom);
        if (!hit)
            return std::nullopt; // no KV core left to absorb
        kv_core = hit->core;
    }

    // The chain: weight cores ordered by distance from the failed
    // core toward the KV core - each member at most one "ring slot"
    // closer. We use the weight cores whose distance to the KV core
    // is strictly less than the failed core's, sorted descending, so
    // each shift is short and local (Fig. 9's neighbour propagation).
    // Entries are (tile index, distance to KV). The index path
    // returns the corridor in the scan's ascending tile order, so
    // the sort below sees the identical input sequence either way
    // (and therefore emits the identical chain even among equal
    // distances).
    const std::uint32_t failed_dist = geom.manhattan(failed, kv_core);
    std::vector<std::pair<std::size_t, std::uint32_t>> chain;
    if (index) {
        chain = index->corridorTiles(failed, kv_core, failed_dist);
    } else {
        for (std::size_t t = 0; t < placement.weightCores.size();
             ++t) {
            const CoreCoord c = placement.weightCores[t];
            if (c == failed)
                continue;
            const auto d = geom.manhattan(c, kv_core);
            // Members must lie "between" the failed core and the KV
            // core: closer to KV than the failed core is, and near
            // the failed-to-KV corridor (within its bounding box).
            const bool in_box =
                c.row >= std::min(failed.row, kv_core.row) &&
                c.row <= std::max(failed.row, kv_core.row) &&
                c.col >= std::min(failed.col, kv_core.col) &&
                c.col <= std::max(failed.col, kv_core.col);
            if (d < failed_dist && in_box)
                chain.emplace_back(t, d);
        }
    }
    std::sort(chain.begin(), chain.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });

    RemapResult result;
    result.absorbedKvCore = kv_core;
    result.chainLength =
        static_cast<std::uint32_t>(chain.size()) + 2; // + failed + kv

    // Shift: failed's tile -> first chain member's core, whose tile
    // moves to the next, ...; the last member's tile lands on the KV
    // core. With an empty chain the failed tile goes directly to KV.
    CoreCoord vacated = kv_core;
    // Process back-to-front: the member closest to KV moves into the
    // KV core, freeing its own core for its predecessor.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const std::size_t tile = it->first;
        const CoreCoord from = placement.weightCores[tile];
        result.moves.emplace_back(from, vacated);
        placement.weightCores[tile] = vacated;
        if (index)
            index->moveWeight(tile, from, vacated);
        vacated = from;
    }
    result.moves.emplace_back(failed, vacated);
    placement.weightCores[failed_tile] = vacated;
    if (index)
        index->moveWeight(failed_tile, failed, vacated);

    // The KV core leaves the pool (it now holds weights).
    if (!removePoolCoord(placement.scoreCores, kv_core))
        removePoolCoord(placement.contextCores, kv_core);
    if (index)
        index->removeKv(kv_core);

    result.movedBytes = tile_bytes *
        static_cast<Bytes>(result.moves.size());
    return result;
}

} // namespace

// ---- RecoveryIndex ----

void
RecoveryIndex::insertEntry(Rows &rows, CoreCoord c,
                           std::uint32_t payload)
{
    auto &entries = rows[c.row];
    const auto it = std::lower_bound(
            entries.begin(), entries.end(), c.col,
            [](const Entry &e, std::uint32_t col) {
                return e.col < col;
            });
    ouroAssert(it == entries.end() || it->col != c.col,
               "RecoveryIndex: duplicate core (", c.row, ",", c.col,
               ")");
    entries.insert(it, {c.col, payload});
}

bool
RecoveryIndex::eraseEntry(Rows &rows, CoreCoord c)
{
    const auto row_it = rows.find(c.row);
    if (row_it == rows.end())
        return false;
    auto &entries = row_it->second;
    const auto it = std::lower_bound(
            entries.begin(), entries.end(), c.col,
            [](const Entry &e, std::uint32_t col) {
                return e.col < col;
            });
    if (it == entries.end() || it->col != c.col)
        return false;
    entries.erase(it);
    if (entries.empty())
        rows.erase(row_it);
    return true;
}

const RecoveryIndex::Entry *
RecoveryIndex::findEntry(const Rows &rows, CoreCoord c)
{
    const auto row_it = rows.find(c.row);
    if (row_it == rows.end())
        return nullptr;
    const auto &entries = row_it->second;
    const auto it = std::lower_bound(
            entries.begin(), entries.end(), c.col,
            [](const Entry &e, std::uint32_t col) {
                return e.col < col;
            });
    if (it == entries.end() || it->col != c.col)
        return nullptr;
    return &*it;
}

RecoveryIndex::RecoveryIndex(const BlockPlacement &placement)
{
    for (std::size_t t = 0; t < placement.weightCores.size(); ++t) {
        insertEntry(weightRows_, placement.weightCores[t],
                    static_cast<std::uint32_t>(t));
    }
    weightCount_ = placement.weightCores.size();
    // Scan-order sequence numbers: score pool first, then context,
    // each in pool order - the exact order the oracle scan visits.
    std::uint32_t seq = 0;
    for (const CoreCoord &c : placement.scoreCores)
        insertEntry(kvRows_, c, seq++);
    for (const CoreCoord &c : placement.contextCores)
        insertEntry(kvRows_, c, seq++);
    kvCount_ = seq;
}

std::optional<RecoveryIndex::KvHit>
RecoveryIndex::nearestKv(CoreCoord from) const
{
    bool found = false;
    std::uint32_t best_dist = 0;
    std::uint32_t best_seq = 0;
    CoreCoord best_core;
    const auto consider = [&](std::uint32_t row, const Entry &e,
                              std::uint32_t d) {
        if (!found || d < best_dist ||
            (d == best_dist && e.payload < best_seq)) {
            found = true;
            best_dist = d;
            best_seq = e.payload;
            best_core = {row, e.col};
        }
    };
    for (const auto &[row, entries] : kvRows_) {
        const std::uint32_t dr = absDiff(row, from.row);
        if (found && dr > best_dist)
            continue;
        // Expand a column window around the failure column; the
        // window shrinks as the best distance tightens. Equal-
        // distance entries are still visited (<=) so the scan-order
        // tie-break can fire.
        const auto lb = std::lower_bound(
                entries.begin(), entries.end(), from.col,
                [](const Entry &e, std::uint32_t col) {
                    return e.col < col;
                });
        for (auto it = lb; it != entries.end(); ++it) {
            const std::uint32_t d = dr + (it->col - from.col);
            if (found && d > best_dist)
                break;
            consider(row, *it, d);
        }
        for (auto it = lb; it != entries.begin();) {
            --it;
            const std::uint32_t d = dr + (from.col - it->col);
            if (found && d > best_dist)
                break;
            consider(row, *it, d);
        }
    }
    if (!found)
        return std::nullopt;
    return KvHit{best_core, best_seq};
}

std::vector<std::pair<std::size_t, std::uint32_t>>
RecoveryIndex::corridorTiles(CoreCoord failed, CoreCoord kv,
                             std::uint32_t failed_dist) const
{
    std::vector<std::pair<std::size_t, std::uint32_t>> out;
    const std::uint32_t rlo = std::min(failed.row, kv.row);
    const std::uint32_t rhi = std::max(failed.row, kv.row);
    const std::uint32_t clo = std::min(failed.col, kv.col);
    const std::uint32_t chi = std::max(failed.col, kv.col);
    for (auto row_it = weightRows_.lower_bound(rlo);
         row_it != weightRows_.end() && row_it->first <= rhi;
         ++row_it) {
        const std::uint32_t row = row_it->first;
        const auto &entries = row_it->second;
        auto it = std::lower_bound(
                entries.begin(), entries.end(), clo,
                [](const Entry &e, std::uint32_t col) {
                    return e.col < col;
                });
        for (; it != entries.end() && it->col <= chi; ++it) {
            const CoreCoord c{row, it->col};
            if (c == failed)
                continue;
            const std::uint32_t d =
                absDiff(row, kv.row) + absDiff(it->col, kv.col);
            if (d < failed_dist)
                out.emplace_back(it->payload, d);
        }
    }
    // Tile indices are unique, so this is exactly ascending tile
    // order - the oracle scan's collection order.
    std::sort(out.begin(), out.end());
    return out;
}

std::optional<std::size_t>
RecoveryIndex::weightTileAt(CoreCoord c) const
{
    const Entry *entry = findEntry(weightRows_, c);
    if (!entry)
        return std::nullopt;
    return static_cast<std::size_t>(entry->payload);
}

bool
RecoveryIndex::kvAt(CoreCoord c) const
{
    return findEntry(kvRows_, c) != nullptr;
}

void
RecoveryIndex::moveWeight(std::size_t tile, CoreCoord from,
                          CoreCoord to)
{
    const bool erased = eraseEntry(weightRows_, from);
    ouroAssert(erased, "RecoveryIndex: move from unknown core (",
               from.row, ",", from.col, ")");
    insertEntry(weightRows_, to, static_cast<std::uint32_t>(tile));
}

void
RecoveryIndex::removeKv(CoreCoord c)
{
    const bool erased = eraseEntry(kvRows_, c);
    ouroAssert(erased, "RecoveryIndex: removing unknown KV core (",
               c.row, ",", c.col, ")");
    --kvCount_;
}

// ---- recoverCoreFailure overloads ----

std::optional<RemapResult>
recoverCoreFailure(BlockPlacement &placement, CoreCoord failed,
                   const WaferGeometry &geom, const NocParams &noc,
                   Bytes tile_bytes, RecoveryIndex *index)
{
    auto result = buildReplacementChain(placement, failed, geom,
                                        tile_bytes, index);
    if (!result)
        return std::nullopt;

    // All shifts run in parallel: latency = slowest single move,
    // priced over the clean-mesh Manhattan path.
    double worst = 0.0;
    for (const auto &[from, to] : result->moves) {
        const double hops = geom.manhattan(from, to);
        const double penalty =
            geom.sameDie(from, to) ? 1.0 : noc.interDiePenalty;
        const double serial = static_cast<double>(tile_bytes) /
                              (noc.linkBytesPerSecond() / penalty);
        const double head = hops *
            static_cast<double>(noc.routerLatency) / noc.clockHz;
        worst = std::max(worst, serial + head);
    }
    result->latencySeconds = worst;
    return result;
}

std::optional<RemapResult>
recoverCoreFailure(BlockPlacement &placement, CoreCoord failed,
                   const MeshNoc &noc, Bytes tile_bytes,
                   RecoveryIndex *index)
{
    auto result = buildReplacementChain(placement, failed,
                                        noc.geometry(), tile_bytes,
                                        index);
    if (!result)
        return std::nullopt;

    // Route-aware pricing: each move follows the mesh's actual
    // (cached) route, detouring around defects and failed links -
    // priced from the route's metadata summary (transferSeconds
    // skips both the path walk and the unused energy term; the
    // result is bit-identical to transferCost().seconds).
    double worst = 0.0;
    for (const auto &[from, to] : result->moves) {
        worst = std::max(worst,
                         noc.transferSeconds(from, to, tile_bytes));
    }
    result->latencySeconds = worst;
    return result;
}

} // namespace ouro
