#include "remap.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace ouro
{

namespace
{

/** Remove one coordinate from a vector; true if found. */
bool
removeCoord(std::vector<CoreCoord> &coords, CoreCoord target)
{
    const auto it = std::find(coords.begin(), coords.end(), target);
    if (it == coords.end())
        return false;
    coords.erase(it);
    return true;
}

/**
 * Chain construction shared by both recoverCoreFailure overloads:
 * updates @p placement and fills everything of the result except
 * latencySeconds (the overloads price the moves differently).
 */
std::optional<RemapResult>
buildReplacementChain(BlockPlacement &placement, CoreCoord failed,
                      const WaferGeometry &geom, Bytes tile_bytes)
{
    // KV-core failure: drop from the pool; sequences recompute.
    if (removeCoord(placement.scoreCores, failed) ||
        removeCoord(placement.contextCores, failed)) {
        RemapResult result;
        result.absorbedKvCore = failed;
        result.chainLength = 1;
        return result;
    }

    // Weight-core failure: locate the tile.
    const auto tile_it = std::find(placement.weightCores.begin(),
                                   placement.weightCores.end(), failed);
    if (tile_it == placement.weightCores.end())
        return std::nullopt; // not ours

    // Nearest KV core (either duty) absorbs the chain.
    const std::vector<CoreCoord> *pool = nullptr;
    std::size_t pool_idx = 0;
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    for (const auto *candidates :
         {&placement.scoreCores, &placement.contextCores}) {
        for (std::size_t i = 0; i < candidates->size(); ++i) {
            const auto d = geom.manhattan(failed, (*candidates)[i]);
            if (d < best) {
                best = d;
                pool = candidates;
                pool_idx = i;
            }
        }
    }
    if (!pool)
        return std::nullopt; // no KV core left to absorb

    const CoreCoord kv_core = (*pool)[pool_idx];

    // The chain: weight cores ordered by distance from the failed
    // core toward the KV core - each member at most one "ring slot"
    // closer. We use the weight cores whose distance to the KV core
    // is strictly less than the failed core's, sorted descending, so
    // each shift is short and local (Fig. 9's neighbour propagation).
    struct ChainEntry
    {
        std::size_t tileIndex;
        std::uint32_t distToKv;
    };
    const std::uint32_t failed_dist = geom.manhattan(failed, kv_core);
    std::vector<ChainEntry> chain;
    for (std::size_t t = 0; t < placement.weightCores.size(); ++t) {
        const CoreCoord c = placement.weightCores[t];
        if (c == failed)
            continue;
        const auto d = geom.manhattan(c, kv_core);
        // Members must lie "between" the failed core and the KV core:
        // closer to KV than the failed core is, and near the failed-
        // to-KV corridor (within its bounding box).
        const bool in_box =
            c.row >= std::min(failed.row, kv_core.row) &&
            c.row <= std::max(failed.row, kv_core.row) &&
            c.col >= std::min(failed.col, kv_core.col) &&
            c.col <= std::max(failed.col, kv_core.col);
        if (d < failed_dist && in_box)
            chain.push_back({t, d});
    }
    std::sort(chain.begin(), chain.end(),
              [](const ChainEntry &a, const ChainEntry &b) {
                  return a.distToKv > b.distToKv;
              });

    RemapResult result;
    result.absorbedKvCore = kv_core;
    result.chainLength =
        static_cast<std::uint32_t>(chain.size()) + 2; // + failed + kv

    // Shift: failed's tile -> first chain member's core, whose tile
    // moves to the next, ...; the last member's tile lands on the KV
    // core. With an empty chain the failed tile goes directly to KV.
    const std::size_t failed_tile = static_cast<std::size_t>(
            tile_it - placement.weightCores.begin());

    CoreCoord vacated = kv_core;
    // Process back-to-front: the member closest to KV moves into the
    // KV core, freeing its own core for its predecessor.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const CoreCoord from = placement.weightCores[it->tileIndex];
        result.moves.emplace_back(from, vacated);
        placement.weightCores[it->tileIndex] = vacated;
        vacated = from;
    }
    result.moves.emplace_back(failed, vacated);
    placement.weightCores[failed_tile] = vacated;

    // The KV core leaves the pool (it now holds weights).
    if (!removeCoord(placement.scoreCores, kv_core))
        removeCoord(placement.contextCores, kv_core);

    result.movedBytes = tile_bytes *
        static_cast<Bytes>(result.moves.size());
    return result;
}

} // namespace

std::optional<RemapResult>
recoverCoreFailure(BlockPlacement &placement, CoreCoord failed,
                   const WaferGeometry &geom, const NocParams &noc,
                   Bytes tile_bytes)
{
    auto result =
        buildReplacementChain(placement, failed, geom, tile_bytes);
    if (!result)
        return std::nullopt;

    // All shifts run in parallel: latency = slowest single move,
    // priced over the clean-mesh Manhattan path.
    double worst = 0.0;
    for (const auto &[from, to] : result->moves) {
        const double hops = geom.manhattan(from, to);
        const double penalty =
            geom.sameDie(from, to) ? 1.0 : noc.interDiePenalty;
        const double serial = static_cast<double>(tile_bytes) /
                              (noc.linkBytesPerSecond() / penalty);
        const double head = hops *
            static_cast<double>(noc.routerLatency) / noc.clockHz;
        worst = std::max(worst, serial + head);
    }
    result->latencySeconds = worst;
    return result;
}

std::optional<RemapResult>
recoverCoreFailure(BlockPlacement &placement, CoreCoord failed,
                   const MeshNoc &noc, Bytes tile_bytes)
{
    auto result = buildReplacementChain(placement, failed,
                                        noc.geometry(), tile_bytes);
    if (!result)
        return std::nullopt;

    // Route-aware pricing: each move follows the mesh's actual
    // (cached) route, detouring around defects and failed links.
    double worst = 0.0;
    for (const auto &[from, to] : result->moves) {
        worst = std::max(
                worst, noc.transferCost(from, to, tile_bytes).seconds);
    }
    result->latencySeconds = worst;
    return result;
}

} // namespace ouro
