/**
 * @file
 * Whole-wafer placement: transformer blocks onto core regions
 * (Sections 4.3.1 and 4.4.2).
 *
 * The wafer's usable cores are walked in S-shaped order and divided
 * into one contiguous region per transformer block (plus a reserved
 * prefix for the embedding/LM-head tables). Within a region the
 * inter-core mapper (exact/greedy/annealing or a Fig. 18 baseline)
 * places the block's weight tiles; the cores the mapper leaves free
 * become that block's dedicated KV cores, split equally between
 * Q.K^T (score) and S.V (context) duty as Section 4.4.2 prescribes.
 *
 * Because all transformer blocks are identical (mapping constraint
 * (1)), the optimiser runs once on the first defect-free region and
 * the resulting placement pattern is replicated; regions containing
 * defects fall back to a greedy fill that skips dead cores.
 */

#ifndef OURO_MAPPING_WAFER_MAPPING_HH
#define OURO_MAPPING_WAFER_MAPPING_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"
#include "mapping/mappers.hh"
#include "mapping/problem.hh"
#include "model/llm.hh"

namespace ouro
{

/** Which placement algorithm fills each block's region. */
enum class MapperKind
{
    Greedy,
    Annealing,
    Summa,     ///< Cerebras-default baseline (Fig. 18)
    WaferLlm,  ///< WaferLLM baseline (Fig. 18)
};

const char *mapperKindName(MapperKind kind);

/** Placement of one transformer block. */
struct BlockPlacement
{
    /** Core per tile, in the canonical (layer, o, i) tile order. */
    std::vector<CoreCoord> weightCores;

    /** Dedicated KV cores computing S = Q.K^T (store K). */
    std::vector<CoreCoord> scoreCores;

    /** Dedicated KV cores computing S.V (store V). */
    std::vector<CoreCoord> contextCores;

    /** MIQP objective value of this region's assignment. */
    double mappingCost = 0.0;
};

struct WaferMappingOptions
{
    MapperKind mapper = MapperKind::Annealing;
    std::uint64_t annealIterations = 3000;
    /** Independent annealing chains (best wins); they fan out on the
     *  parallel runtime with deterministic per-restart seeds. */
    std::uint32_t annealRestarts = 1;
    std::uint64_t seed = 1;
    double costInter = 2.0;

    /**
     * Fraction of each region's cores reserved for dedicated KV duty
     * (the rest hold weights). Regions are sized as
     * tilesPerBlock / (1 - kvFraction).
     */
    double kvFraction = 0.0; ///< 0 = derive from leftover capacity

    /**
     * Data-parallel replicas of the whole pipeline sharing the wafer
     * (small models leave most cores idle otherwise). The builder
     * places replica 0; the others are congruent.
     */
    std::uint32_t replicas = 1;
};

/**
 * Placement of a contiguous range of transformer blocks on one wafer.
 */
class WaferMapping
{
  public:
    /**
     * Build a placement of blocks [first_block, first_block +
     * num_blocks) of @p model onto the wafer described by @p geom /
     * @p defects.
     *
     * Returns std::nullopt when the wafer cannot hold the requested
     * blocks (weights alone exceed usable capacity).
     */
    static std::optional<WaferMapping>
    build(const ModelConfig &model, const CoreParams &core_params,
          const WaferGeometry &geom, const DefectMap *defects,
          std::uint64_t first_block, std::uint64_t num_blocks,
          const WaferMappingOptions &opts = {});

    std::uint64_t firstBlock() const { return firstBlock_; }
    std::uint64_t numBlocks() const { return numBlocks_; }

    const BlockPlacement &placement(std::uint64_t block) const;

    const std::vector<LayerSpec> &layerSpecs() const { return specs_; }

    std::uint32_t tilesPerBlock() const { return tilesPerBlock_; }

    /** Cores reserved for embedding / LM-head tables. */
    const std::vector<CoreCoord> &embeddingCores() const
    {
        return embeddingCores_;
    }

    /** Total dedicated KV cores across all placed blocks. */
    std::uint64_t totalKvCores() const;

    /**
     * Sum of per-block MIQP objective values plus inter-block
     * activation flows - the Fig. 18 transmission-volume metric for
     * the whole wafer (byte-hops, die-crossings weighted CostInter).
     */
    double totalByteHops() const { return totalByteHops_; }

    const WaferGeometry &geometry() const { return geom_; }

  private:
    WaferMapping(const WaferGeometry &geom) : geom_(geom) {}

    WaferGeometry geom_;
    std::uint64_t firstBlock_ = 0;
    std::uint64_t numBlocks_ = 0;
    std::uint32_t tilesPerBlock_ = 0;
    std::vector<LayerSpec> specs_;
    std::vector<BlockPlacement> placements_;
    std::vector<CoreCoord> embeddingCores_;
    double totalByteHops_ = 0.0;
};

/**
 * Cores one block's region needs under @p opts (weights + KV share).
 */
std::uint64_t regionSize(const ModelConfig &model,
                         const CoreParams &core_params,
                         std::uint64_t num_blocks,
                         std::uint64_t usable_cores,
                         std::uint64_t reserved);

/** Cores needed for the embedding + LM-head tables. */
std::uint64_t embeddingCoreCount(const ModelConfig &model,
                                 const CoreParams &core_params);

} // namespace ouro

#endif // OURO_MAPPING_WAFER_MAPPING_HH
