/**
 * @file
 * Whole-wafer placement: transformer blocks onto core regions
 * (Sections 4.3.1 and 4.4.2).
 *
 * The wafer's usable cores are walked in S-shaped order and divided
 * into one contiguous region per transformer block (plus a reserved
 * prefix for the embedding/LM-head tables). Within a region the
 * inter-core mapper (exact/greedy/annealing or a Fig. 18 baseline)
 * places the block's weight tiles; the cores the mapper leaves free
 * become that block's dedicated KV cores, split equally between
 * Q.K^T (score) and S.V (context) duty as Section 4.4.2 prescribes.
 *
 * Because all transformer blocks are identical (mapping constraint
 * (1)), the optimiser runs once on the first defect-free region and
 * the resulting placement pattern is replicated. The builder's fast
 * path exploits the same congruence one level deeper: replicated
 * regions reuse block 0's MappingProblem via congruentTranslate()
 * (no per-block O(T^2) flow re-enumeration); the per-block rebuild
 * is retained behind WaferMappingOptions::congruentReuse = false as
 * the bit-identity oracle.
 *
 * Inter-block activation flows (last reducer of block b -> first
 * layer of block b+1) are routed over the actual mesh (cached
 * MeshNoc routes, defect detours included) and aggregated with
 * TrafficAccumulator; the total is kept separately in
 * interBlockByteHops() so per-region mapping costs stay comparable
 * across builds.
 *
 * Data-parallel replicas (opts.replicas > 1) are laid out for real:
 * every replica gets its own congruent region chain (replica r,
 * block b at region index r * num_blocks + b), so capacity and KV
 * accounting reflect the cores the replicas actually occupy.
 *
 * Replica chains are independent fault domains: by default each
 * chain carries its OWN embedding/LM-head reservation at the head of
 * its core span, so no chain shares any core with another and a
 * failure storm inside one chain can never touch its siblings. The
 * legacy layout - one reservation shared by every chain - is
 * retained behind WaferMappingOptions::sharedEmbedding = true as the
 * compatibility oracle; with replicas == 1 the two layouts are
 * bit-identical.
 */

#ifndef OURO_MAPPING_WAFER_MAPPING_HH
#define OURO_MAPPING_WAFER_MAPPING_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"
#include "mapping/mappers.hh"
#include "mapping/problem.hh"
#include "model/llm.hh"

namespace ouro
{

class CleanRouteTable;     // noc/mesh.hh
class MeshNoc;             // noc/mesh.hh
class TrafficAccumulator;  // noc/mesh.hh

/** Which placement algorithm fills each block's region. */
enum class MapperKind
{
    Greedy,
    Annealing,
    Summa,     ///< Cerebras-default baseline (Fig. 18)
    WaferLlm,  ///< WaferLLM baseline (Fig. 18)
};

const char *mapperKindName(MapperKind kind);

/** Placement of one transformer block. */
struct BlockPlacement
{
    /** Core per tile, in the canonical (layer, o, i) tile order. */
    std::vector<CoreCoord> weightCores;

    /** Dedicated KV cores computing S = Q.K^T (store K). */
    std::vector<CoreCoord> scoreCores;

    /** Dedicated KV cores computing S.V (store V). */
    std::vector<CoreCoord> contextCores;

    /** MIQP objective value of this region's assignment. */
    double mappingCost = 0.0;
};

struct WaferMappingOptions
{
    MapperKind mapper = MapperKind::Annealing;
    std::uint64_t annealIterations = 3000;
    /** Independent annealing chains (best wins); they fan out on the
     *  parallel runtime with deterministic per-restart seeds. */
    std::uint32_t annealRestarts = 1;
    std::uint64_t seed = 1;
    double costInter = 2.0;

    /**
     * Fraction of each region's cores reserved for dedicated KV duty
     * (the rest hold weights). Regions are sized as
     * tilesPerBlock / (1 - kvFraction).
     */
    double kvFraction = 0.0; ///< 0 = derive from leftover capacity

    /**
     * Data-parallel replicas of the whole pipeline sharing the wafer
     * (small models leave most cores idle otherwise). Every replica
     * is laid out on its own congruent region chain.
     */
    std::uint32_t replicas = 1;

    /**
     * true reproduces the legacy layout bit-identically: ONE
     * embedding/LM-head reservation at the head of the usable-core
     * order, shared by every replica chain. false (the default)
     * reserves one embedding region per replica chain - each chain's
     * reservation leads its own contiguous core span - so chains are
     * fully independent fault domains (disjoint cores, including the
     * embedding tables). With replicas == 1 both layouts produce the
     * same cores bit for bit.
     */
    bool sharedEmbedding = false;

    /**
     * Reuse block 0's MappingProblem for congruent regions via
     * congruentTranslate() (the fast path). false re-runs the full
     * per-block MappingProblem construction - the retained oracle
     * that the fast path is asserted bit-identical against (tests
     * and fig18_mapping compare the two on every run).
     */
    bool congruentReuse = true;

    /**
     * Shared clean-geometry route table for the inter-block flow
     * routing (see CleanRouteTable in noc/mesh.hh). Null builds the
     * internal mesh cold; sweeps that construct many mappings over
     * one geometry pass a shared table to amortise clean routes.
     */
    std::shared_ptr<const CleanRouteTable> cleanRoutes;

    /**
     * Opt into the epsilon-exact fused dist*pen cost engine for the
     * per-region MappingProblems (MappingEngineOptions::fusedCost).
     * Default false keeps the bit-identical exact engine.
     */
    bool fusedCostEngine = false;

    /**
     * Candidate-count cutoff above which per-region problems skip the
     * O(C^2) distance table and price on the fly
     * (MappingEngineOptions::distanceTableMaxCandidates). Raise it
     * for wafer-sized sweeps that can afford the table memory.
     */
    std::size_t distanceTableMaxCandidates = 1024;

    /**
     * AnnealingMapper::Options::moveBatch for the per-region
     * annealer: candidate slots drawn (and batch-priced) per
     * proposal round. 1 reproduces the historical trajectory.
     */
    std::uint32_t annealMoveBatch = 1;
};

/**
 * Placement of a contiguous range of transformer blocks on one wafer.
 */
class WaferMapping
{
  public:
    /**
     * Build a placement of blocks [first_block, first_block +
     * num_blocks) of @p model onto the wafer described by @p geom /
     * @p defects.
     *
     * Returns std::nullopt when the wafer cannot hold the requested
     * blocks (weights alone exceed usable capacity) or when the
     * defect map leaves an inter-block activation flow unroutable.
     */
    static std::optional<WaferMapping>
    build(const ModelConfig &model, const CoreParams &core_params,
          const WaferGeometry &geom, const DefectMap *defects,
          std::uint64_t first_block, std::uint64_t num_blocks,
          const WaferMappingOptions &opts = {});

    std::uint64_t firstBlock() const { return firstBlock_; }
    std::uint64_t numBlocks() const { return numBlocks_; }

    /** Data-parallel replica chains laid out on this wafer. */
    std::uint32_t numReplicas() const { return numReplicas_; }

    /** Placement of @p block in replica 0. */
    const BlockPlacement &placement(std::uint64_t block) const;

    /** Placement of @p block in replica @p replica. */
    const BlockPlacement &placement(std::uint64_t block,
                                    std::uint32_t replica) const;

    const std::vector<LayerSpec> &layerSpecs() const { return specs_; }

    std::uint32_t tilesPerBlock() const { return tilesPerBlock_; }

    /** Cores reserved for embedding / LM-head tables (replica 0's
     *  reservation; the shared one under sharedEmbedding). */
    const std::vector<CoreCoord> &embeddingCores() const
    {
        return embeddingChains_.front();
    }

    /** Embedding reservation read by replica @p replica. Under the
     *  shared layout every replica reads the one shared reservation;
     *  otherwise each chain owns a disjoint reservation. */
    const std::vector<CoreCoord> &
    embeddingCores(std::uint32_t replica) const;

    /** True when all replica chains share one embedding
     *  reservation (the legacy layout). */
    bool sharedEmbedding() const { return sharedEmbedding_; }

    /** Total dedicated KV cores across all placed blocks and
     *  replicas. */
    std::uint64_t totalKvCores() const;

    /** Dedicated KV cores of one replica chain (per-chain fault-
     *  domain accounting). */
    std::uint64_t chainKvCores(std::uint32_t replica) const;

    /** Cores one replica chain occupies: weights + KV across its
     *  blocks, plus its embedding reservation when the chain owns
     *  one (the shared reservation is attributed to no chain). */
    std::uint64_t chainActiveCores(std::uint32_t replica) const;

    /**
     * Sum of per-block MIQP objective values plus inter-block
     * activation flows - the Fig. 18 transmission-volume metric for
     * the whole wafer (byte-hops, die-crossings weighted CostInter).
     */
    double totalByteHops() const { return totalByteHops_; }

    /**
     * Inter-block activation flow alone: the last-reducer ->
     * first-tile flows of consecutive blocks, routed over the actual
     * mesh (defect detours included) with die-crossing hops weighted
     * by CostInter. Kept separate from the per-region mapping costs
     * so those stay comparable across builds.
     */
    double interBlockByteHops() const { return interBlockByteHops_; }

    const WaferGeometry &geometry() const { return geom_; }

  private:
    WaferMapping(const WaferGeometry &geom) : geom_(geom) {}

    WaferGeometry geom_;
    std::uint64_t firstBlock_ = 0;
    std::uint64_t numBlocks_ = 0;
    std::uint32_t numReplicas_ = 1;
    std::uint32_t tilesPerBlock_ = 0;
    std::vector<LayerSpec> specs_;
    /** Replica-major: placements_[rep * numBlocks_ + (block -
     *  firstBlock_)]; replica 0 leads so legacy indexing holds. */
    std::vector<BlockPlacement> placements_;
    /** One entry per chain (one total under sharedEmbedding_); all
     *  entries empty when this wafer does not host block 0. */
    std::vector<std::vector<CoreCoord>> embeddingChains_;
    bool sharedEmbedding_ = false;
    double totalByteHops_ = 0.0;
    double interBlockByteHops_ = 0.0;
};

/**
 * Cores per region when @p usable_cores (minus the @p reserved
 * embedding prefix) are divided into @p num_regions congruent
 * regions (blocks x replicas).
 */
std::uint64_t regionSize(std::uint64_t num_regions,
                         std::uint64_t usable_cores,
                         std::uint64_t reserved);

/** Cores needed for the embedding + LM-head tables. */
std::uint64_t embeddingCoreCount(const ModelConfig &model,
                                 const CoreParams &core_params);

/**
 * Accumulate the inter-block activation flows between two
 * consecutive blocks' weight placements onto @p traffic: the last
 * layer's reducer tiles of @p cur forward their output slices to
 * every first-layer tile of @p nxt whose input range overlaps -
 * the same flows the intra-region objective prices across adjacent
 * layers. Both placements must be in the canonical (layer, o, i)
 * tile order of @p specs. This is THE definition of inter-block
 * traffic: WaferMapping::build prices it into interBlockByteHops()
 * and the fault-tolerance harness re-prices it per sweep point, so
 * they can never drift apart.
 *
 * Returns false (with @p traffic partially accumulated) when a flow
 * is unroutable on @p noc's mesh - an endpoint fenced in by defects.
 */
bool accumulateInterBlockFlows(const std::vector<LayerSpec> &specs,
                               std::uint32_t tiles_per_block,
                               const std::vector<CoreCoord> &cur,
                               const std::vector<CoreCoord> &nxt,
                               const MeshNoc &noc,
                               TrafficAccumulator &traffic);

} // namespace ouro

#endif // OURO_MAPPING_WAFER_MAPPING_HH
