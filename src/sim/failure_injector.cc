#include "failure_injector.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace ouro
{

namespace
{

/** SplitMix64 finalizer (same constants as the Rng seeder and the
 *  DayTrace counter-seeding). */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Failure k's private seed: two mixing rounds over (seed, k), the
 *  DayTrace discipline - failure k's randomness is reachable without
 *  generating failures 0..k-1. */
std::uint64_t
failureSeed(std::uint64_t seed, std::uint64_t k)
{
    return mix64(mix64(seed) ^ (k * 0xd1342543de82ef95ULL + 1));
}

} // namespace

FailureInjector::FailureInjector(const FailureInjectorParams &params)
    : params_(params)
{
    ouroAssert(params_.stormDuration > 0.0,
               "FailureInjector: non-positive storm duration");
    ouroAssert(params_.weightFailureFraction >= 0.0 &&
                       params_.weightFailureFraction <= 1.0,
               "FailureInjector: weight fraction out of [0,1]");
    // Strict monotonicity needs k + u_k exact in double (the
    // DayTrace bound).
    ouroAssert(params_.failures < (1ULL << 52),
               "FailureInjector: failure count too large for exact "
               "schedule arithmetic");
}

double
FailureInjector::failureTime(std::uint64_t k) const
{
    ouroAssert(k < params_.failures,
               "FailureInjector: index out of range");
    Rng rng(failureSeed(params_.seed, k));
    // Draw 1 of the failure's private stream: the time jitter.
    const double quantile = static_cast<double>(k) + rng.uniform();
    return params_.stormStart +
           params_.stormDuration * quantile /
                   static_cast<double>(params_.failures);
}

bool
FailureInjector::weightDuty(std::uint64_t k) const
{
    ouroAssert(k < params_.failures,
               "FailureInjector: index out of range");
    Rng rng(failureSeed(params_.seed, k));
    rng.uniform(); // draw 1: time jitter
    // Draw 2: the duty coin.
    return rng.uniform() < params_.weightFailureFraction;
}

std::size_t
FailureInjector::pick(std::uint64_t k, std::size_t n) const
{
    ouroAssert(k < params_.failures,
               "FailureInjector: index out of range");
    ouroAssert(n > 0, "FailureInjector: empty candidate pool");
    Rng rng(failureSeed(params_.seed, k));
    rng.uniform(); // draw 1: time jitter
    rng.uniform(); // draw 2: duty coin
    // Draw 3: the victim pick.
    return static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::uint64_t>(n) - 1));
}

} // namespace ouro
