#include "fleet.hh"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace ouro
{

namespace
{

/**
 * Shared dispatch state: committed-work counters and the weight
 * table, with the ONE key expression both dispatch paths use. The
 * key is committed / weight computed identically in the scan and the
 * set path, so every comparison sees the same double and the two
 * paths route bit-identically (fuzzed by tests).
 */
struct DispatchState
{
    std::vector<std::uint64_t> committed;
    std::vector<double> weight;

    explicit DispatchState(const FleetDispatchConfig &config)
        : committed(config.numWafers, 0)
    {
        ouroAssert(config.numWafers > 0,
                   "fleetDispatch: zero wafers");
        if (config.capacityWeight.empty()) {
            weight.assign(config.numWafers, 1.0);
        } else {
            ouroAssert(config.capacityWeight.size() ==
                               config.numWafers,
                       "fleetDispatch: ",
                       config.capacityWeight.size(),
                       " capacity weights for ", config.numWafers,
                       " wafers");
            weight = config.capacityWeight;
            for (const double w : weight)
                ouroAssert(w > 0.0,
                           "fleetDispatch: capacity weights must be "
                           "positive, got ", w);
        }
    }

    /** The policy's ordering key for wafer w. Outstanding work
     *  normalised by capacity: a half-weight wafer looks twice as
     *  loaded. weight 1.0 divides exactly, so the unweighted policy
     *  compares integer-valued doubles. */
    double key(std::uint32_t w) const
    {
        return static_cast<double>(committed[w]) / weight[w];
    }

    /** Affinity pin of request r, or -1. */
    static std::int64_t pinOf(const FleetDispatchConfig &config,
                              const Request &r)
    {
        if (!config.affinity)
            return -1;
        const std::int64_t pin = config.affinity(r);
        if (pin < 0)
            return -1;
        ouroAssert(static_cast<std::uint64_t>(pin) <
                           config.numWafers,
                   "fleetDispatch: affinity hook returned wafer ",
                   pin, " of ", config.numWafers);
        return pin;
    }
};

} // namespace

std::vector<std::uint32_t>
fleetDispatchScan(const Workload &workload,
                  const FleetDispatchConfig &config)
{
    DispatchState state(config);
    std::vector<std::uint32_t> assignment;
    assignment.reserve(workload.requests.size());
    for (const Request &r : workload.requests) {
        const std::int64_t pin = DispatchState::pinOf(config, r);
        std::uint32_t best = 0;
        if (pin >= 0) {
            best = static_cast<std::uint32_t>(pin);
        } else {
            // Strict < keeps the lowest-index tie-break: a later
            // wafer replaces the incumbent only when strictly less
            // loaded.
            double best_key = state.key(0);
            for (std::uint32_t w = 1; w < config.numWafers; ++w) {
                const double k = state.key(w);
                if (k < best_key) {
                    best_key = k;
                    best = w;
                }
            }
        }
        assignment.push_back(best);
        state.committed[best] += r.totalTokens();
    }
    return assignment;
}

std::vector<std::uint32_t>
fleetDispatch(const Workload &workload,
              const FleetDispatchConfig &config)
{
    DispatchState state(config);
    // Ordered-set argmin keyed (key, wafer): begin() is the least-
    // loaded wafer with the lowest index on key ties - exactly the
    // scan oracle's pick, because both paths compare the identical
    // key doubles. Only the assigned wafer's key changes per
    // request, so one erase+insert maintains the order.
    std::set<std::pair<double, std::uint32_t>> order;
    for (std::uint32_t w = 0; w < config.numWafers; ++w)
        order.emplace(state.key(w), w);
    std::vector<std::uint32_t> assignment;
    assignment.reserve(workload.requests.size());
    for (const Request &r : workload.requests) {
        const std::int64_t pin = DispatchState::pinOf(config, r);
        const std::uint32_t best =
            pin >= 0 ? static_cast<std::uint32_t>(pin)
                     : order.begin()->second;
        assignment.push_back(best);
        order.erase({state.key(best), best});
        state.committed[best] += r.totalTokens();
        order.emplace(state.key(best), best);
    }
    return assignment;
}

namespace
{

/**
 * Fraction of the representative-block KV pool the resolved storm
 * leaves standing: |pool after all events| / |pool before|. Pure in
 * (system pools, events). Drives the storm wafer's derated dispatch
 * weight, so the router offers a degraded wafer less work.
 */
double
stormCapacityFraction(const OuroborosSystem &sys,
                      const std::vector<KvPoolEvent> &events)
{
    const WaferGeometry geom = sys.mapping(0).geometry();
    std::unordered_set<std::uint64_t> pool;
    for (const KvCoreInfo &info : sys.scorePool())
        pool.insert(geom.coreIndex(info.coord));
    for (const KvCoreInfo &info : sys.contextPool())
        pool.insert(geom.coreIndex(info.coord));
    const double initial = static_cast<double>(pool.size());
    if (initial == 0.0)
        return 1.0;
    for (const KvPoolEvent &ev : events) {
        for (const CoreCoord &c : ev.dropCores)
            pool.erase(geom.coreIndex(c));
        for (const KvPoolEvent::Adopt &a : ev.adopts)
            pool.insert(geom.coreIndex(a.info.coord));
    }
    return static_cast<double>(pool.size()) / initial;
}

} // namespace

FleetResult
runFleetServing(const OuroborosSystem &sys, const Workload &workload,
                const FleetOptions &opts)
{
    ouroAssert(opts.numWafers >= 1,
               "runFleetServing: need at least one wafer");
    ouroAssert(sys.options().dynamicKv,
               "runFleetServing: fleet serving requires the dynamic "
               "KV pool");
    const bool has_storm_wafer =
        opts.stormWafer != FleetOptions::kNoStormWafer;
    if (has_storm_wafer) {
        ouroAssert(opts.stormWafer < opts.numWafers,
                   "runFleetServing: storm wafer ", opts.stormWafer,
                   " of ", opts.numWafers);
    }
    FleetResult result;

    // Phase 0: resolve the storm schedule (pure in the schedule
    // seed / recovery options; rebuilt per call, so replay is
    // bitwise). Zero failures resolve to an empty schedule, leaving
    // the run bit-identical to the no-storm fleet.
    if (has_storm_wafer && opts.injector.failures > 0) {
        ResolvedStorm resolved = resolveStormSchedule(
                sys, opts.injector, opts.recovery);
        result.events = std::move(resolved.events);
        result.failuresInjected = resolved.failuresInjected;
        result.failuresHandled = resolved.failuresHandled;
        result.failuresSkipped = resolved.failuresSkipped;
        result.kvCoresLost = resolved.kvCoresLost;
        result.kvCoresAdopted = resolved.kvCoresAdopted;
        result.borrows = resolved.borrows;
    }

    // Phase 1: dispatch, decided entirely from the per-wafer
    // committed-work counters in request order - a pure function of
    // (workload, fleet config), never of thread schedule. The storm
    // wafer's weight is derated by the resolved net pool loss.
    FleetDispatchConfig dispatch;
    dispatch.numWafers = opts.numWafers;
    dispatch.affinity = opts.affinity;
    dispatch.capacityWeight.assign(opts.numWafers, 1.0);
    if (!result.events.empty()) {
        dispatch.capacityWeight[opts.stormWafer] =
            std::max(stormCapacityFraction(sys, result.events),
                     opts.minDispatchWeight);
    }
    result.dispatchWeight = dispatch.capacityWeight;
    result.assignment = fleetDispatch(workload, dispatch);
    const std::vector<Workload> shards = splitByAssignment(
            workload, result.assignment, opts.numWafers);
    result.requestsPerWafer.resize(opts.numWafers);
    result.tokensCommitted.resize(opts.numWafers);
    for (std::uint32_t w = 0; w < opts.numWafers; ++w) {
        result.requestsPerWafer[w] = shards[w].requests.size();
        result.tokensCommitted[w] = shards[w].totalTokens();
    }

    // Phase 2: independent per-wafer simulation into per-wafer
    // result slots (the PR 1 sweep contract: no shared accumulators,
    // so parallel == serial bit-identical and the result is
    // invariant under any wafer completion order).
    result.wafers.resize(opts.numWafers);
    const auto simulate = [&](std::size_t w) {
        BlockKvManager kv(sys.model(), sys.scorePool(),
                          sys.contextPool(), 128,
                          sys.options().kvThreshold);
        PipelineOptions popts;
        popts.kind = PipelineKind::TokenGrained;
        popts.attentionParallelism = opts.attentionParallelism;
        popts.cohortFastPath = opts.cohortFastPath;
        popts.throughputBinSeconds = opts.throughputBinSeconds;
        if (w == opts.stormWafer && !result.events.empty())
            popts.stormSchedule = &result.events;
        result.wafers[w] = runPipeline(shards[w], sys.model(),
                                       sys.stageTiming(), kv, popts);
    };
    if (opts.serialExecution) {
        if (opts.serialOrder.empty()) {
            for (std::uint32_t w = 0; w < opts.numWafers; ++w)
                simulate(w);
        } else {
            ouroAssert(opts.serialOrder.size() == opts.numWafers,
                       "runFleetServing: serialOrder must visit "
                       "every wafer exactly once");
            std::vector<bool> seen(opts.numWafers, false);
            for (const std::uint32_t w : opts.serialOrder) {
                ouroAssert(w < opts.numWafers && !seen[w],
                           "runFleetServing: serialOrder is not a "
                           "permutation of [0, numWafers)");
                seen[w] = true;
                simulate(w);
            }
        }
    } else {
        parallelFor(opts.numWafers, simulate);
    }

    // Fleet totals: fold per-wafer slots in ascending wafer order
    // (one fixed association, so the fold is replay- and thread-
    // count-invariant). N=1 copies wafer 0 verbatim - the collapse
    // oracle's other half.
    result.fleet = result.wafers[0];
    for (std::uint32_t w = 1; w < opts.numWafers; ++w)
        result.fleet.mergeConcurrent(result.wafers[w]);
    return result;
}

FleetResult
runFleetServing(const OuroborosSystem &sys, const DayTrace &trace,
                double t0, double t1, const FleetOptions &opts)
{
    return runFleetServing(sys, trace.window(t0, t1), opts);
}

} // namespace ouro
