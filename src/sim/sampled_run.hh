/**
 * @file
 * Sampled-window simulation of day-long traces (ROADMAP "Sampled
 * simulation for day-long traces").
 *
 * A diurnal day of fleet traffic is ~10^9 pipeline events; nobody
 * event-steps that. Borrowing the sampled-measurement discipline of
 * the gem5 world (checkpoint / warmup / measured-window workflows)
 * and the longitudinal rigor of the SPEC CPU suites, the simulator
 *
 *   1. splits a DayTrace into equal-width windows, grouped into
 *      contiguous STRATA (each stratum covers one slice of the
 *      diurnal curve, so the rate trend lives BETWEEN strata and the
 *      estimator only has to average noise WITHIN them);
 *   2. deterministically picks measured windows per stratum
 *      (systematic sampling with a counter-seeded offset - the same
 *      selection on every run and thread count);
 *   3. event-steps warmup + measured windows through the existing
 *      PipelineEngine (cohort fast path untouched), fanning chains
 *      out over parallelFor with per-index result slots, so the
 *      parallel run is bit-identical to the serial one (the PR 1
 *      sweep contract);
 *   4. aggregates per-window PipelineStats via PipelineStats::merge
 *      and extrapolates full-trace totals, tokens/sec and latency
 *      percentiles with CLT (stratified Student-t) confidence
 *      intervals.
 *
 * Window model: each window is a CLOSED batch - its requests are
 * admitted FCFS from an empty pipeline and run to drain, exactly one
 * runPipeline call - so the boundary between windows is an idle
 * boundary and merging window runs is exact, not approximate. The
 * retained full event-stepped run (fullRun()) is the oracle: it
 * event-steps EVERY window and merges per stratum, then across
 * strata.
 *
 * Accuracy-contract tier (the PR 7 discipline, relaxed from
 * bit-identity to bounded error): at sampling fraction 1.0 with zero
 * warmup the sampled run degenerates to the full run and its totals
 * and throughput estimate are BIT-IDENTICAL to fullRun() (every
 * expansion factor is exactly 1.0 and the merge association is
 * shared); at real fractions the estimate must fall within its own
 * reported confidence interval of the full-run value on mid-size
 * validation traces (bench_day_trace asserts this on every run).
 *
 * Warmup: windows drain completely, so the only simulator state that
 * can carry across a chain is the timing-memoization cache. Warmup
 * windows run through the chain's shared TimingCache (their stats
 * are discarded) purely to warm it; at the default ctxBucketShift of
 * 0 a cache hit is bit-identical to a fresh computation, so warmup
 * is measurement-NEUTRAL - estimates with and without warmup agree
 * bit for bit (pinned by tests). The knob exists for methodological
 * fidelity with the checkpoint/warmup workflow and for future
 * open-boundary window models that do carry pipeline state.
 */

#ifndef OURO_SIM_SAMPLED_RUN_HH
#define OURO_SIM_SAMPLED_RUN_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "kvcache/manager.hh"
#include "model/llm.hh"
#include "pipeline/engine.hh"
#include "pipeline/timing.hh"
#include "workload/trace.hh"

namespace ouro
{

/** Configuration of one sampled run. */
struct SampledSimOptions
{
    /** Equal-width trace windows over the day. */
    std::uint64_t numWindows = 96;

    /** Contiguous strata (window groups); clamped to numWindows. */
    std::uint32_t strata = 4;

    /**
     * Fraction of each stratum's windows to measure. At least one
     * window per stratum is always measured; 1.0 measures all of
     * them (and, with warmupWindows = 0, collapses bit-identically
     * to fullRun()). Confidence intervals need >= 2 measured
     * windows in at least one stratum.
     */
    double fraction = 0.0625;

    /** Windows simulated (not measured) before each measured window
     *  to warm the timing-memoization cache. */
    std::uint32_t warmupWindows = 1;

    /** Counter-based seed of the per-stratum systematic-sampling
     *  offset (selection is a pure function of (seed, stratum)). */
    std::uint64_t selectionSeed = 1;

    /** Force the plain serial loop instead of parallelFor (the two
     *  are bit-identical; the flag exists so benches can assert
     *  exactly that). */
    bool serialExecution = false;

    /** Engine options for every window run. timingCache must be
     *  null: each chain owns a private cache (parallel safety). */
    PipelineOptions pipeline;

    /** Representative-block KV pool geometry (per-window managers
     *  are constructed fresh; windows drain, nothing carries). */
    std::uint32_t kvTokensPerBlock = 128;
    double kvThreshold = 0.1;
};

/** Extrapolated full-trace estimate of one sampled run. */
struct SampledEstimate
{
    /** Merged stats of the measured windows only (per stratum, then
     *  across strata - the shared merge association). */
    PipelineStats measured;

    std::uint64_t totalWindows = 0;
    std::uint64_t measuredWindows = 0;
    std::uint64_t warmupWindowsSimulated = 0;
    /** measuredWindows / totalWindows. */
    double coverage = 0.0;

    /** Stratified expansions of the measured totals. */
    double estOutputTokens = 0.0;
    double estPrefillTokens = 0.0;
    double estMakespanSeconds = 0.0;

    /** Full-trace throughput estimates (per phase). */
    double estTokensPerSecond = 0.0;        ///< decode tokens/sec
    double estPrefillTokensPerSecond = 0.0; ///< prefill tokens/sec

    /**
     * 95% CLT half-widths (stratified Student-t, finite-population
     * corrected; the throughput interval linearises the ratio
     * estimator). Valid only when some stratum measured >= 2
     * windows; at fraction 1.0 the correction zeroes them.
     */
    bool ciValid = false;
    double ciTokensPerSecond = 0.0;
    double ciOutputTokens = 0.0;

    /** Pooled latency percentiles over the measured windows (equal-
     *  size strata at equal fractions make pooling unbiased). */
    double p50TtftSeconds = 0.0;
    double p99TtftSeconds = 0.0;
    double p50InterTokenSeconds = 0.0;
    double p99InterTokenSeconds = 0.0;
};

/**
 * Sampled-window simulator over one DayTrace and one deployment
 * (model + stage timing + representative-block KV pool geometry).
 * Everything is deterministic: run() and fullRun() are pure in the
 * constructor arguments, whatever the thread count.
 */
class SampledSimulator
{
  public:
    SampledSimulator(DayTrace trace, ModelConfig model,
                     StageTiming timing,
                     std::vector<KvCoreInfo> score_pool,
                     std::vector<KvCoreInfo> context_pool,
                     SampledSimOptions opts = {});

    /** The sampled run: warmup + measured windows only. */
    SampledEstimate run() const;

    /**
     * The retained full event-stepped oracle: every window, merged
     * per stratum and then across strata (the same association the
     * estimator uses, so the fraction-1.0 collapse is bitwise).
     */
    PipelineStats fullRun() const;

    /** One window's run on a fresh KV manager and timing cache
     *  (@p cache optional: a warm chain cache). */
    PipelineStats runWindow(std::uint64_t window,
                            TimingCache *cache = nullptr) const;

    std::uint64_t numWindows() const { return opts_.numWindows; }

    /** [t0, t1) bounds of window @p i (shared by every code path so
     *  windows partition the day exactly). */
    std::pair<double, double> windowBounds(std::uint64_t i) const;

    /** Window range [first, last) of stratum @p s. */
    std::pair<std::uint64_t, std::uint64_t>
    stratumBounds(std::uint32_t s) const;

    std::uint32_t numStrata() const;

    /** The deterministic measured-window selection, ascending. */
    std::vector<std::uint64_t> measuredWindowIndices() const;

    const DayTrace &trace() const { return trace_; }
    const SampledSimOptions &options() const { return opts_; }

  private:
    DayTrace trace_;
    ModelConfig model_;
    StageTiming timing_;
    std::vector<KvCoreInfo> scorePool_;
    std::vector<KvCoreInfo> contextPool_;
    SampledSimOptions opts_;
};

} // namespace ouro

#endif // OURO_SIM_SAMPLED_RUN_HH
