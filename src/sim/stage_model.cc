#include "stage_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "model/stages.hh"

namespace ouro
{

PlacementDistances
measurePlacement(const BlockPlacement &placement,
                 const WaferGeometry &geom)
{
    PlacementDistances dist;
    const auto &cores = placement.weightCores;
    if (cores.size() > 1) {
        double hops = 0.0;
        double crossings = 0.0;
        for (std::size_t i = 1; i < cores.size(); ++i) {
            hops += geom.manhattan(cores[i - 1], cores[i]);
            crossings += geom.sameDie(cores[i - 1], cores[i]) ? 0.0
                                                              : 1.0;
        }
        dist.adjacentHops =
            hops / static_cast<double>(cores.size() - 1);
        dist.dieCrossingFraction =
            crossings / static_cast<double>(cores.size() - 1);
    }
    // KV distance: mean over KV cores of the distance to the nearest
    // weight core (Q is produced there; scores return there).
    double kv_hops = 0.0;
    std::size_t kv_count = 0;
    for (const auto *pool :
         {&placement.scoreCores, &placement.contextCores}) {
        for (const auto &kv_core : *pool) {
            std::uint32_t best = UINT32_MAX;
            for (const auto &w : cores)
                best = std::min(best, geom.manhattan(kv_core, w));
            if (best != UINT32_MAX) {
                kv_hops += best;
                ++kv_count;
            }
        }
    }
    if (kv_count > 0)
        dist.kvHops = kv_hops / static_cast<double>(kv_count);
    return dist;
}

namespace
{

/** Effective per-hop energy (J/bit) under the fabric flags. */
double
hopEnergyPerBit(const OuroborosParams &params, const FabricFlags &flags,
                double die_crossing_fraction)
{
    const double intra = params.noc.hopEnergyPerBit;
    // Stitched die crossing vs NVLink-class SerDes when the system is
    // built from discrete dies.
    const double crossing =
        flags.waferScale ? params.noc.dieCrossingEnergyPerBit
                         : 8.0 * pJ;
    return intra + die_crossing_fraction * crossing;
}

/** Effective link bandwidth derate for die crossings. */
double
linkSecondsPerByte(const OuroborosParams &params,
                   const FabricFlags &flags,
                   double die_crossing_fraction)
{
    const double base = 1.0 / params.noc.linkBytesPerSecond();
    // Discrete-die systems pay a much larger boundary penalty
    // (NVLink bandwidth per die pair << stitched mesh column).
    const double penalty =
        flags.waferScale ? params.noc.interDiePenalty : 10.0;
    return base * (1.0 + die_crossing_fraction * (penalty - 1.0));
}

} // namespace

StageTiming
deriveStageTiming(const ModelConfig &model,
                  const OuroborosParams &params,
                  const PlacementDistances &dist,
                  const FabricFlags &flags)
{
    StageTiming timing;
    const auto &core = params.core;
    const auto &xbar = core.crossbar;

    // One full-array GEMV (all of a stage's tiles fire in parallel).
    const double gemv_s = static_cast<double>(xbar.gemvCycles(
            xbar.rows)) / xbar.clockHz;
    // Without CIM the weights must cross from the SRAM arrays into
    // separate MAC units over the core-internal bus; the serial
    // weight stream roughly doubles GEMV latency at matched widths.
    const double dense_compute = flags.useCim ? gemv_s : 2.0 * gemv_s;

    const double s_per_byte =
        linkSecondsPerByte(params, flags, dist.dieCrossingFraction);
    const double hop_latency =
        static_cast<double>(params.noc.routerLatency) /
        params.noc.clockHz;

    const auto dense = blockWork(model, 0);
    const auto unit = blockWork(model, 1);

    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        const auto kind = static_cast<StageKind>(s);
        double fixed = 0.0;
        double per_ctx = 0.0;

        // Activation transfer to the next stage's cores.
        const double xfer =
            static_cast<double>(dense[s].outBytes) * s_per_byte *
                dist.adjacentHops +
            dist.adjacentHops * hop_latency;

        switch (kind) {
          case StageKind::QkvGen:
          case StageKind::Projection:
          case StageKind::Ffn: {
            fixed = dense_compute + xfer;
            // Intra-layer reduction: 32-bit partials cross between
            // the input splits of the stage's layers.
            fixed += 4.0 *
                     static_cast<double>(dense[s].outBytes) *
                     s_per_byte;
            // SFU portion (LayerNorm / activation) overlaps the
            // crossbars but bounds the stage when large.
            const double sfu_s = dense[s].sfuOps /
                                 (core.sfuLanes * core.sfuClockHz);
            fixed = std::max(fixed, sfu_s);
            break;
          }
          case StageKind::Score: {
            // K^T GEMV: rows = headDim (constant); context adds
            // parallel columns/crossbars, so compute latency is
            // flat; Q travels to the KV ring and per-position scores
            // travel back.
            const double k_gemv = static_cast<double>(
                    xbar.gemvCycles(static_cast<std::uint32_t>(
                            std::min<std::uint64_t>(model.headDim,
                                                    xbar.rows)))) /
                    xbar.clockHz;
            fixed = (flags.useCim ? k_gemv : 2.0 * k_gemv) +
                    static_cast<double>(unit[s].inBytes) *
                        s_per_byte * dist.kvHops +
                    dist.kvHops * hop_latency;
            // Each head streams its scores from its own KV core
            // (Section 4.4.3): per-position traffic is head-parallel.
            per_ctx = s_per_byte; // 1 B/position/head, heads parallel
            break;
          }
          case StageKind::Softmax: {
            fixed = 1.0 / core.sfuClockHz;
            // Softmax runs on every score core's SFU in parallel:
            // one head's 3 ops/position on 64 lanes.
            per_ctx = 3.0 / (core.sfuLanes * core.sfuClockHz);
            break;
          }
          case StageKind::Context: {
            // S.V GEMV: rows grow with context (V stacks tokens as
            // input channels): 8 input bits x ceil(rows/bank) cycles.
            const double cycles_per_row =
                static_cast<double>(xbar.inputBits) /
                xbar.rowsPerCycle();
            per_ctx = cycles_per_row / xbar.clockHz *
                      (flags.useCim ? 1.0 : 2.0);
            per_ctx += s_per_byte; // head-parallel score arrival
            fixed = static_cast<double>(unit[s].outBytes) *
                        s_per_byte * dist.kvHops +
                    dist.kvHops * hop_latency;
            break;
          }
        }
        timing.fixedSeconds[s] = fixed;
        timing.perContextSeconds[s] = per_ctx;
    }
    return timing;
}

EnergyLedger
perTokenEnergy(const ModelConfig &model, const OuroborosParams &params,
               const PlacementDistances &dist, const FabricFlags &flags,
               double ctx, double weight_reread_fraction)
{
    EnergyLedger ledger;
    const auto &core = params.core;
    const auto &xbar = core.crossbar;
    const auto blocks = static_cast<double>(model.numBlocks);
    const auto works = blockWork(
            model, static_cast<std::uint64_t>(ctx));

    const double hop_j_bit =
        hopEnergyPerBit(params, flags, dist.dieCrossingFraction);

    double compute_j = 0.0;
    double onchip_j = 0.0;
    double comm_j = 0.0;

    for (unsigned s = 0; s < kStagesPerBlock; ++s) {
        const StageWork &work = works[s];
        // Crossbar MACs + SFU ops.
        compute_j += work.macs * xbar.energyPerMac();
        compute_j += work.sfuOps * core.sfuEnergyPerOp;

        // Buffer traffic in and out of the stage.
        onchip_j += static_cast<double>(work.inBytes +
                                        work.outBytes) *
                    core.bufferEnergyPerByte;
        // KV writes into the arrays.
        onchip_j += static_cast<double>(work.kvWriteBytes) *
                    (xbar.arrayDynamicPowerW / xbar.clockHz) /
                    (xbar.cols / 8.0);
        if (!flags.useCim) {
            // Weights stream from SRAM to the MAC units: 1 byte per
            // MAC operand, re-read per item (TGP: per token).
            const double weight_bytes =
                stageHoldsWeights(static_cast<StageKind>(s))
                    ? work.macs // 1 B weight per MAC
                    : static_cast<double>(work.kvReadBytes);
            onchip_j += weight_reread_fraction * weight_bytes *
                        0.6 * pJ * 8.0;
        }

        // NoC: inter-stage activation + reduction/gather flows.
        const auto kind = static_cast<StageKind>(s);
        const double hops =
            stageIsAttention(kind) ? dist.kvHops : dist.adjacentHops;
        double bytes = static_cast<double>(work.outBytes);
        if (stageHoldsWeights(kind))
            bytes += 4.0 * static_cast<double>(work.outBytes) +
                     static_cast<double>(work.outBytes); // red+gather
        comm_j += bytes * 8.0 * hop_j_bit * hops;
    }

    ledger.add(EnergyCategory::Compute, compute_j * blocks);
    ledger.add(EnergyCategory::OnChipMemory, onchip_j * blocks);
    ledger.add(EnergyCategory::Communication, comm_j * blocks);
    if (params.numWafers > 1) {
        // Activations cross the optical links once per wafer hop.
        ledger.add(EnergyCategory::Communication,
                   static_cast<double>(model.hiddenDim) * 8.0 *
                       params.noc.interWaferEnergyPerBit *
                       (params.numWafers - 1));
    }
    return ledger;
}

double
fabricStaticPower(const ModelConfig &model,
                  const OuroborosParams &params,
                  std::uint64_t active_cores)
{
    (void)model;
    const auto &core = params.core;
    // Leakage plus the always-on fraction of the clocked fabric
    // (control, clock tree, buffer retention): the wafer cannot gate
    // to zero between tokens. We charge 25% of the fully-active core
    // power as the idle floor - this is the term that couples energy
    // per token to pipeline utilisation, exactly the effect the
    // paper's ablation attributes to TGP and KV management.
    const double active_power =
        static_cast<double>(core.numCrossbars) *
            core.crossbar.totalPowerW() +
        core.controlPowerW;
    const double per_core =
        static_cast<double>(core.numCrossbars) *
            core.crossbar.arrayStaticPowerW +
        core.controlPowerW + 0.25 * active_power;
    return per_core * static_cast<double>(active_cores);
}

} // namespace ouro
