/**
 * @file
 * Fleet-scale serving (PR 10): a deterministic cluster front-end
 * over N wafers. "Millions of users" means many wafers behind a
 * router, not one PipelineEngine - this layer promotes the
 * multi-wafer story from a static cost sweep to served traffic.
 *
 * TWO-PHASE ROUTER PURITY CONTRACT. A fleet run is split into two
 * strictly ordered phases so the request->wafer assignment is a pure
 * function of (workload, fleet config) and NEVER of thread schedule:
 *
 *  - Phase 1 (dispatch): requests are routed IN REQUEST ORDER
 *    through a seed-free policy - weighted join-least-outstanding-
 *    work over per-wafer committed-work counters (sum of assigned
 *    requests' total tokens, divided by the wafer's capacity
 *    weight), lowest-wafer-index tie-break. An optional
 *    locality/affinity hook (replica-chain locality) may pin a
 *    request to a wafer; pinned work still charges the counters.
 *    Nothing in this phase reads simulation results.
 *
 *  - Phase 2 (simulation): the N per-wafer PipelineEngine instances
 *    run independently through parallelFor with PER-WAFER RESULT
 *    SLOTS (the PR 1 sweep contract extended to serving), so the
 *    fleet run is bit-identical parallel vs serial, and invariant
 *    under ANY completed-wafer reordering of the simulation phase
 *    (tests permute the serial visit order to prove it).
 *
 * N=1 COLLAPSE ORACLE: with one wafer and no storm, every request
 * lands on wafer 0 in order, so the fleet stats are bit-identical to
 * a direct runPipeline over the same pool and options - the plain
 * serving path is the retained oracle (bench_fleet_serving asserts
 * it on every run).
 *
 * STORM INTEGRATION (PR 9 machinery, per wafer): one wafer may take
 * a FailureInjector schedule mid-run. The schedule is resolved FIRST
 * (resolveStormSchedule - pure in the seed), the storm wafer's
 * dispatch weight is derated by the resolved net KV-pool loss (so
 * the router drains a degraded wafer), and the resolved events drive
 * the wafer's mid-run dropCore/adoptCore pool mutations during phase
 * 2. A zero-failure schedule is bit-identical to the no-storm fleet.
 *
 * Fleet totals fold per-wafer PipelineStats through
 * PipelineStats::mergeConcurrent (side-by-side semantics: max
 * makespan, elementwise-summed aligned outputTokenBins), so the
 * fleet-wide throughput curve, goodput, degradation depth and
 * recovery are well-defined.
 */

#ifndef OURO_SIM_FLEET_HH
#define OURO_SIM_FLEET_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "pipeline/engine.hh"
#include "sim/storm_run.hh"
#include "sim/system.hh"
#include "workload/trace.hh"

namespace ouro
{

/**
 * Inputs of the pure dispatch function. Determinism contract: the
 * affinity hook, when set, must itself be a pure function of the
 * request (no captured mutable state), or the router's purity
 * guarantee is void.
 */
struct FleetDispatchConfig
{
    std::uint32_t numWafers = 1;

    /**
     * Per-wafer capacity weight (each > 0); empty = all 1.0. The
     * policy minimizes committedTokens[w] / weight[w], so a wafer at
     * weight 0.5 is offered half the work of a healthy one - this is
     * how the router accounts for a storm-degraded KV pool.
     */
    std::vector<double> capacityWeight;

    /**
     * Locality/affinity hook (replica-chain locality): return the
     * wafer index to pin this request to, or a negative value to
     * fall through to the load policy. Pinned requests still update
     * the committed-work counters.
     */
    std::function<std::int64_t(const Request &)> affinity;
};

/**
 * The dispatch policy as a pure function: assignment[i] is the wafer
 * of request i. Weighted join-least-outstanding-work over committed-
 * work counters updated in request order; ties go to the lowest
 * wafer index. Fast path: an ordered-set argmin (O(log N) per
 * request) - bit-identical to fleetDispatchScan (the retained
 * per-request linear-scan oracle; both compare the identical
 * committed/weight doubles, so every routing decision agrees).
 */
std::vector<std::uint32_t>
fleetDispatch(const Workload &workload,
              const FleetDispatchConfig &config);

/** The per-request linear-scan dispatch oracle (same policy, O(N)
 *  per request). Kept to fuzz the fast path against. */
std::vector<std::uint32_t>
fleetDispatchScan(const Workload &workload,
                  const FleetDispatchConfig &config);

/** Configuration of one fleet run. */
struct FleetOptions
{
    static constexpr std::uint32_t kNoStormWafer = 0xffffffffu;

    /** Wafers behind the router (>= 1). Every wafer serves the same
     *  deployment (model, mapping, pools, timing). */
    std::uint32_t numWafers = 4;

    /** Optional locality/affinity hook (see FleetDispatchConfig). */
    std::function<std::int64_t(const Request &)> affinity;

    /** Wafer taking the failure storm (kNoStormWafer = none). */
    std::uint32_t stormWafer = kNoStormWafer;

    /** Storm schedule for the storm wafer (resolved only when
     *  stormWafer is set AND failures > 0). */
    FailureInjectorParams injector;

    /** Options for the rebuilt-per-run recovery service. */
    RecoveryServiceOptions recovery;

    /** Floor on the storm wafer's derated dispatch weight (a fully
     *  drained pool must not zero the weight - the wafer still
     *  serves what it can). */
    double minDispatchWeight = 0.05;

    bool cohortFastPath = true;

    /** Forwarded to PipelineOptions::throughputBinSeconds on EVERY
     *  wafer (one width fleet-wide - mergeConcurrent asserts it). */
    double throughputBinSeconds = 0.0;

    /** Matches the system run()/fig13 serving operating point. */
    double attentionParallelism = 16.0;

    /** Force the plain serial wafer loop instead of parallelFor (the
     *  two are bit-identical; the flag exists so benches can assert
     *  exactly that). */
    bool serialExecution = false;

    /**
     * Test hook: the wafer visit order of the serial loop (empty =
     * ascending; must be a permutation of [0, numWafers)). Per-wafer
     * slots make the result invariant under ANY order - tests
     * permute this to prove the two-phase contract.
     */
    std::vector<std::uint32_t> serialOrder;
};

/** Everything one fleet run produced. */
struct FleetResult
{
    /** Request i -> wafer assignment[i] (phase 1 output; a pure
     *  function of (workload, fleet config)). */
    std::vector<std::uint32_t> assignment;

    /** Per-wafer dispatch state at the end of phase 1. */
    std::vector<std::uint64_t> requestsPerWafer;
    std::vector<std::uint64_t> tokensCommitted;
    std::vector<double> dispatchWeight;

    /** Per-wafer slot results of phase 2 (index = wafer). */
    std::vector<PipelineStats> wafers;

    /** mergeConcurrent fold of `wafers` in ascending wafer order
     *  (fixed association - part of the determinism contract).
     *  fleet.makespanSeconds is the slowest wafer's; fleet
     *  tokens/sec = fleet.outputTokensPerSecond(). */
    PipelineStats fleet;

    /** Storm resolution (all zero / empty without a storm). */
    std::vector<KvPoolEvent> events;
    std::uint64_t failuresInjected = 0;
    std::uint64_t failuresHandled = 0;
    std::uint64_t failuresSkipped = 0;
    std::uint64_t kvCoresLost = 0;
    std::uint64_t kvCoresAdopted = 0;
    std::uint64_t borrows = 0;
};

/**
 * Serve @p workload through a fleet of @p opts.numWafers copies of
 * @p sys behind the deterministic router. Requires dynamic KV (the
 * pool-based serving mode). Pure in (workload, opts): calling twice
 * is bit-identical, whatever the thread count.
 */
FleetResult runFleetServing(const OuroborosSystem &sys,
                            const Workload &workload,
                            const FleetOptions &opts);

/** Convenience: materialize window [t0, t1) of @p trace (bit-
 *  identical to slicing a whole-day generation) and serve it. */
FleetResult runFleetServing(const OuroborosSystem &sys,
                            const DayTrace &trace, double t0,
                            double t1, const FleetOptions &opts);

} // namespace ouro

#endif // OURO_SIM_FLEET_HH
