#include "sampled_run.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "pipeline/timing_cache.hh"

namespace ouro
{

namespace
{

/**
 * Two-sided 95% Student-t multiplier for @p df degrees of freedom
 * (abridged standard table; the estimator's df is the pooled
 * within-stratum count, so beyond ~30 the normal limit is fine).
 */
double
tMultiplier95(std::uint64_t df)
{
    static constexpr double kSmall[] = {
        12.706, 4.303, 3.182, 2.776, 2.571,
        2.447,  2.365, 2.306, 2.262, 2.228,
    };
    ouroAssert(df >= 1, "tMultiplier95: zero degrees of freedom");
    if (df <= 10)
        return kSmall[df - 1];
    if (df <= 15)
        return 2.131;
    if (df <= 20)
        return 2.086;
    if (df <= 30)
        return 2.042;
    return 1.96;
}

/**
 * Merge a run of per-window stats in ascending order: seed with the
 * first, fold the rest left to right. EVERY aggregation in this file
 * goes through this helper so the sampled estimator and the full-run
 * oracle share one floating-point association (the fraction-1.0
 * bitwise collapse depends on it).
 */
PipelineStats
mergeAscending(const PipelineStats *stats, std::size_t count)
{
    ouroAssert(count > 0, "mergeAscending: empty range");
    PipelineStats merged = stats[0];
    for (std::size_t i = 1; i < count; ++i)
        merged.merge(stats[i]);
    return merged;
}

} // namespace

SampledSimulator::SampledSimulator(DayTrace trace, ModelConfig model,
                                   StageTiming timing,
                                   std::vector<KvCoreInfo> score_pool,
                                   std::vector<KvCoreInfo> context_pool,
                                   SampledSimOptions opts)
    : trace_(std::move(trace)), model_(std::move(model)),
      timing_(timing), scorePool_(std::move(score_pool)),
      contextPool_(std::move(context_pool)), opts_(std::move(opts))
{
    ouroAssert(opts_.numWindows > 0,
               "SampledSimulator: numWindows must be positive");
    ouroAssert(opts_.fraction > 0.0 && opts_.fraction <= 1.0,
               "SampledSimulator: fraction must be in (0, 1], got ",
               opts_.fraction);
    ouroAssert(opts_.pipeline.timingCache == nullptr,
               "SampledSimulator: pipeline.timingCache must be null; "
               "each window chain owns a private cache");
    if (opts_.strata == 0)
        opts_.strata = 1;
    if (opts_.strata > opts_.numWindows)
        opts_.strata = static_cast<std::uint32_t>(opts_.numWindows);
}

std::uint32_t
SampledSimulator::numStrata() const
{
    return opts_.strata;
}

std::pair<double, double>
SampledSimulator::windowBounds(std::uint64_t i) const
{
    ouroAssert(i < opts_.numWindows,
               "SampledSimulator::windowBounds: window ", i,
               " out of range");
    const double day = trace_.daySeconds();
    const double w = static_cast<double>(opts_.numWindows);
    // Adjacent windows compute their shared boundary with the SAME
    // expression, so the windows partition [0, day) exactly: every
    // request falls in exactly one window, whatever the rounding.
    const double t0 = day * (static_cast<double>(i) / w);
    const double t1 = (i + 1 == opts_.numWindows)
                          ? day
                          : day * (static_cast<double>(i + 1) / w);
    return {t0, t1};
}

std::pair<std::uint64_t, std::uint64_t>
SampledSimulator::stratumBounds(std::uint32_t s) const
{
    ouroAssert(s < opts_.strata,
               "SampledSimulator::stratumBounds: stratum ", s,
               " out of range");
    const std::uint64_t w = opts_.numWindows;
    const std::uint64_t n = opts_.strata;
    return {w * s / n, w * (s + 1) / n};
}

std::vector<std::uint64_t>
SampledSimulator::measuredWindowIndices() const
{
    std::vector<std::uint64_t> sel;
    for (std::uint32_t s = 0; s < opts_.strata; ++s) {
        const auto [first, last] = stratumBounds(s);
        const std::uint64_t c = last - first;
        auto m = static_cast<std::uint64_t>(
            opts_.fraction * static_cast<double>(c));
        m = std::clamp<std::uint64_t>(m, 1, c);
        // Systematic sampling: one counter-seeded offset u in [0, 1)
        // per stratum, then every (c/m)-th window. The stride is
        // >= 1 so the m picks are distinct; at fraction 1.0 the pick
        // is floor(i + u) = i - all windows, whatever u.
        Rng rng(opts_.selectionSeed * 0x9e3779b97f4a7c15ULL +
                (static_cast<std::uint64_t>(s) + 1));
        const double u = rng.uniform();
        for (std::uint64_t i = 0; i < m; ++i) {
            auto j = static_cast<std::uint64_t>(
                (static_cast<double>(i) + u) * static_cast<double>(c) /
                static_cast<double>(m));
            if (j >= c)
                j = c - 1;
            sel.push_back(first + j);
        }
    }
    return sel;
}

PipelineStats
SampledSimulator::runWindow(std::uint64_t window,
                            TimingCache *cache) const
{
    const auto [t0, t1] = windowBounds(window);
    const Workload wl = trace_.window(t0, t1);
    // Fresh manager per window: windows are closed batches draining
    // to empty, so no KV state may carry across the boundary (the
    // idle-boundary premise of PipelineStats::merge).
    BlockKvManager kv(model_, scorePool_, contextPool_,
                      opts_.kvTokensPerBlock, opts_.kvThreshold);
    PipelineOptions po = opts_.pipeline;
    po.timingCache = cache;
    return runPipeline(wl, model_, timing_, kv, po);
}

PipelineStats
SampledSimulator::fullRun() const
{
    const std::uint64_t w = opts_.numWindows;
    std::vector<PipelineStats> slots(w);
    const auto body = [&](std::size_t i) {
        // Fresh chain cache per window, exactly like a zero-warmup
        // measured chain - the fraction-1.0 collapse compares runs
        // that are identical call for call.
        TimingCache cache(opts_.pipeline.ctxBucketShift);
        slots[i] = runWindow(i, &cache);
    };
    if (opts_.serialExecution) {
        for (std::size_t i = 0; i < w; ++i)
            body(i);
    } else {
        parallelFor(w, body);
    }

    PipelineStats total;
    for (std::uint32_t s = 0; s < opts_.strata; ++s) {
        const auto [first, last] = stratumBounds(s);
        const PipelineStats sm =
            mergeAscending(slots.data() + first, last - first);
        if (s == 0)
            total = sm;
        else
            total.merge(sm);
    }
    return total;
}

SampledEstimate
SampledSimulator::run() const
{
    const std::vector<std::uint64_t> sel = measuredWindowIndices();
    std::vector<PipelineStats> slots(sel.size());
    std::vector<std::uint64_t> warmed(sel.size(), 0);
    const auto body = [&](std::size_t i) {
        const std::uint64_t j = sel[i];
        TimingCache cache(opts_.pipeline.ctxBucketShift);
        const std::uint64_t w0 =
            j >= opts_.warmupWindows ? j - opts_.warmupWindows : 0;
        for (std::uint64_t wnd = w0; wnd < j; ++wnd)
            runWindow(wnd, &cache); // stats discarded: cache warmup
        warmed[i] = j - w0;
        slots[i] = runWindow(j, &cache);
    };
    if (opts_.serialExecution) {
        for (std::size_t i = 0; i < sel.size(); ++i)
            body(i);
    } else {
        parallelFor(sel.size(), body);
    }

    SampledEstimate est;
    est.totalWindows = opts_.numWindows;
    est.measuredWindows = sel.size();
    for (std::uint64_t n : warmed)
        est.warmupWindowsSimulated += n;
    est.coverage = static_cast<double>(sel.size()) /
                   static_cast<double>(opts_.numWindows);

    // Stratified expansion + variance. Folding strata in ascending
    // order with expansion N_s / m_s keeps the fraction-1.0 case on
    // the fullRun() association exactly: every E_s is then 1.0 and
    // x * 1.0 == x bit for bit.
    double var_y = 0.0;
    double var_t = 0.0;
    double cov_yt = 0.0;
    std::uint64_t df = 0;
    std::size_t cursor = 0;
    bool have_total = false;
    for (std::uint32_t s = 0; s < opts_.strata; ++s) {
        const auto [first, last] = stratumBounds(s);
        const std::size_t begin = cursor;
        while (cursor < sel.size() && sel[cursor] < last)
            ++cursor;
        const std::size_t m = cursor - begin;
        ouroAssert(m > 0, "SampledSimulator::run: stratum ", s,
                   " has no measured windows");
        const auto n_s = static_cast<double>(last - first);
        const auto m_s = static_cast<double>(m);
        const double expansion = n_s / m_s;

        const PipelineStats sm =
            mergeAscending(slots.data() + begin, m);
        if (!have_total) {
            est.measured = sm;
            have_total = true;
        } else {
            est.measured.merge(sm);
        }

        const auto out_s = static_cast<double>(sm.outputTokens);
        const auto pre_s = static_cast<double>(sm.tokensProcessed -
                                               sm.outputTokens);
        est.estOutputTokens += expansion * out_s;
        est.estPrefillTokens += expansion * pre_s;
        est.estMakespanSeconds += expansion * sm.makespanSeconds;

        if (m >= 2) {
            double mean_y = 0.0;
            double mean_t = 0.0;
            for (std::size_t i = begin; i < cursor; ++i) {
                mean_y += static_cast<double>(slots[i].outputTokens);
                mean_t += slots[i].makespanSeconds;
            }
            mean_y /= m_s;
            mean_t /= m_s;
            double s2y = 0.0;
            double s2t = 0.0;
            double syt = 0.0;
            for (std::size_t i = begin; i < cursor; ++i) {
                const double dy =
                    static_cast<double>(slots[i].outputTokens) -
                    mean_y;
                const double dt =
                    slots[i].makespanSeconds - mean_t;
                s2y += dy * dy;
                s2t += dt * dt;
                syt += dy * dt;
            }
            s2y /= m_s - 1.0;
            s2t /= m_s - 1.0;
            syt /= m_s - 1.0;
            // Finite-population correction: at fraction 1.0 the
            // stratum is a census and its variance term is exactly
            // zero, so the reported interval collapses with it.
            const double fpc = 1.0 - m_s / n_s;
            const double factor = n_s * n_s * fpc / m_s;
            var_y += factor * s2y;
            var_t += factor * s2t;
            cov_yt += factor * syt;
            df += m - 1;
        }
    }
    ouroAssert(cursor == sel.size(),
               "SampledSimulator::run: selection not consumed");

    if (est.estMakespanSeconds > 0.0) {
        est.estTokensPerSecond =
            est.estOutputTokens / est.estMakespanSeconds;
        est.estPrefillTokensPerSecond =
            est.estPrefillTokens / est.estMakespanSeconds;
    }

    est.ciValid = df >= 1;
    if (est.ciValid) {
        const double tmult = tMultiplier95(df);
        est.ciOutputTokens = tmult * std::sqrt(std::max(var_y, 0.0));
        if (est.estMakespanSeconds > 0.0) {
            // Ratio estimator R = Y / T, linearised:
            // Var(R) ~ (VarY - 2 R Cov + R^2 VarT) / T^2.
            const double r = est.estTokensPerSecond;
            const double var_r =
                (var_y - 2.0 * r * cov_yt + r * r * var_t) /
                (est.estMakespanSeconds * est.estMakespanSeconds);
            est.ciTokensPerSecond =
                tmult * std::sqrt(std::max(var_r, 0.0));
        }
    }

    est.p50TtftSeconds = percentileOf(est.measured.ttftSamples, 50.0);
    est.p99TtftSeconds = percentileOf(est.measured.ttftSamples, 99.0);
    est.p50InterTokenSeconds =
        percentileOf(est.measured.interTokenSamples, 50.0);
    est.p99InterTokenSeconds =
        percentileOf(est.measured.interTokenSamples, 99.0);
    return est;
}

} // namespace ouro
