/**
 * @file
 * Derives the pipeline's per-stage service times and the per-token
 * energy ledger from the hardware parameters and the wafer mapping
 * (paper Section 5's component characterisation feeding the E2E
 * simulator).
 *
 * Timing: a dense stage's latency is one crossbar GEMV (all tiles of
 * the stage fire in parallel) plus the mapped NoC transfers - the
 * inter-stage activation hop, the intra-layer partial-sum reduction
 * and the gather. Attention stages add the context-proportional
 * terms: S.V row growth in the crossbars, per-position score/softmax
 * traffic, and SFU time.
 *
 * Energy: crossbar MAC energy and SFU energy are Compute; buffer and
 * KV-write traffic are OnChipMemory (the residual SRAM cost Section
 * 6.3 acknowledges); NoC byte-hops are Communication; Ouroboros has
 * no OffChipMemory by construction. The ablation flags reshape the
 * model exactly as Section 6.5 describes: without CIM every GEMV
 * re-reads its weights from SRAM (ruinous under TGP - the 78x
 * observation); without wafer-scale integration the die-to-die links
 * are NVLink-class.
 */

#ifndef OURO_SIM_STAGE_MODEL_HH
#define OURO_SIM_STAGE_MODEL_HH

#include <cstdint>

#include "common/stats.hh"
#include "hw/params.hh"
#include "mapping/wafer_mapping.hh"
#include "model/llm.hh"
#include "pipeline/timing.hh"

namespace ouro
{

/** Distance summary of a block placement (mapping quality input). */
struct PlacementDistances
{
    double adjacentHops = 1.0;  ///< mean hops between consecutive tiles
    double kvHops = 2.0;        ///< mean hops weight-cores <-> KV cores
    double dieCrossingFraction = 0.05; ///< flows crossing a die edge
};

/** Summarise a block placement's geometry. */
PlacementDistances measurePlacement(const BlockPlacement &placement,
                                    const WaferGeometry &geom);

/** System-structure flags (the Fig. 15 ablation axes). */
struct FabricFlags
{
    bool useCim = true;      ///< in-situ compute (vs SRAM + ALU)
    bool waferScale = true;  ///< stitched wafer (vs NVLink'd dies)
};

/** Per-stage service times for the pipeline engine. */
StageTiming deriveStageTiming(const ModelConfig &model,
                              const OuroborosParams &params,
                              const PlacementDistances &dist,
                              const FabricFlags &flags);

/**
 * Energy of pushing one token through the whole model at attended
 * context @p ctx. @p weight_reread_fraction is the fraction of
 * tokens that re-stream the block weights from SRAM (non-CIM mode:
 * 1.0 under TGP, ~1/avg-item-tokens under sequence granularity;
 * 0 with CIM).
 */
EnergyLedger perTokenEnergy(const ModelConfig &model,
                            const OuroborosParams &params,
                            const PlacementDistances &dist,
                            const FabricFlags &flags,
                            double ctx,
                            double weight_reread_fraction);

/** Static (leakage + control) power of the active fabric, watts. */
double fabricStaticPower(const ModelConfig &model,
                         const OuroborosParams &params,
                         std::uint64_t active_cores);

} // namespace ouro

#endif // OURO_SIM_STAGE_MODEL_HH
