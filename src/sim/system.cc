#include "system.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ouro
{

std::optional<OuroborosSystem>
OuroborosSystem::build(const ModelConfig &model,
                       const OuroborosParams &params,
                       const OuroborosOptions &opts)
{
    OuroborosSystem sys;
    sys.model_ = model;
    sys.params_ = params;
    sys.params_.numWafers = opts.numWafers;
    sys.opts_ = opts;
    sys.geom_ = WaferGeometry{};

    // Blocks are split contiguously across wafers (pipeline order).
    const std::uint32_t wafers = std::max(1u, opts.numWafers);

    // Replica count is decided ONCE, from the most constrained wafer
    // (wafer 0: it takes the largest block share AND hosts the
    // embedding reservation), so every wafer builds the same number
    // of chains - a chain with blocks on one wafer but not its
    // upstream neighbour would be unservable. Small models replicate
    // data-parallel across the wafer: each replica needs its weight
    // tiles, its own embedding reservation (chains are independent
    // fault domains) and a healthy KV share (8x tiles keeps
    // 13B-class models at one replica).
    const std::uint64_t count0 = (model.numBlocks + wafers - 1) / wafers;
    const std::uint64_t tiles0 =
        static_cast<std::uint64_t>(coresPerBlock(model, params.core)) *
        count0;
    const std::uint64_t reserved0 =
        embeddingCoreCount(model, params.core);
    sys.replicas_ = static_cast<std::uint32_t>(std::clamp<
            std::uint64_t>(
            sys.geom_.numCores() / (8 * tiles0 + reserved0), 1, 64));

    std::uint64_t first = 0;
    for (std::uint32_t w = 0; w < wafers; ++w) {
        const std::uint64_t count =
            (model.numBlocks + wafers - 1 - w) / wafers;
        if (count == 0)
            continue;

        std::optional<DefectMap> defects;
        if (opts.injectDefects) {
            Rng rng(opts.seed * 1000003ULL + w);
            defects.emplace(sys.geom_, params.yield, rng);
            sys.defects_ += defects->numDefects();
        }

        WaferMappingOptions mopts;
        mopts.mapper = opts.smartMapping ? MapperKind::Annealing
                                         : MapperKind::WaferLlm;
        mopts.annealIterations = opts.annealIterations;
        mopts.annealRestarts = opts.annealRestarts;
        mopts.seed = opts.seed + w;
        mopts.replicas = sys.replicas_;
        auto mapping = WaferMapping::build(
                model, params.core, sys.geom_,
                defects ? &*defects : nullptr, first, count, mopts);
        if (!mapping)
            return std::nullopt;
        sys.wafers_.push_back(std::move(*mapping));
        sys.defectMaps_.push_back(std::move(defects));
        first += count;
    }
    sys.services_.slots.resize(sys.wafers_.size());
    ouroAssert(first == model.numBlocks,
               "OuroborosSystem: block split mismatch");

    // Representative block: the first placed block.
    const BlockPlacement &rep = sys.wafers_.front().placement(0);
    sys.dist_ = measurePlacement(rep, sys.geom_);

    const FabricFlags flags{opts.useCim, opts.waferScale};
    sys.timing_ = deriveStageTiming(model, sys.params_, sys.dist_,
                                    flags);

    // KV pool of the representative block: dedicated KV cores plus,
    // in dynamic mode, the fragmented spare crossbars of the block's
    // weight cores (the Section 4.4 repurposing).
    const auto &xp = params.core.crossbar;
    const std::uint32_t cols_per_xbar = xp.cols / xp.weightBits;
    for (const auto &c : rep.scoreCores) {
        sys.scorePool_.push_back(
                {c, params.core.numCrossbars, xp.logicalBlocks});
    }
    for (const auto &c : rep.contextCores) {
        sys.contextPool_.push_back(
                {c, params.core.numCrossbars, xp.logicalBlocks});
    }
    if (opts.dynamicKv) {
        // Reconstruct per-tile crossbar usage from the layer specs.
        const auto &specs = sys.wafers_.front().layerSpecs();
        std::size_t t = 0;
        bool to_score = true;
        for (const auto &spec : specs) {
            for (std::uint32_t o = 0; o < spec.outSplits; ++o) {
                const auto cols = static_cast<std::uint32_t>(
                        spec.outPartHi(o) - spec.outPartLo(o));
                const auto used = static_cast<std::uint32_t>(
                        ceilDiv(cols, cols_per_xbar));
                const std::uint32_t spare =
                    params.core.numCrossbars -
                    std::min(params.core.numCrossbars, used);
                for (std::uint32_t i = 0; i < spec.inSplits;
                     ++i, ++t) {
                    if (spare == 0)
                        continue;
                    const KvCoreInfo info{rep.weightCores[t], spare,
                                          xp.logicalBlocks};
                    if (to_score)
                        sys.scorePool_.push_back(info);
                    else
                        sys.contextPool_.push_back(info);
                    to_score = !to_score;
                }
            }
        }
    }

    // Active cores for leakage: all mapped cores across wafers,
    // accounted per replica chain (each chain's weights, KV and -
    // under the replicated-embedding layout - its own embedding
    // reservation burn leakage; a shared reservation is counted
    // once).
    for (const auto &wafer : sys.wafers_) {
        if (wafer.sharedEmbedding())
            sys.activeCores_ += wafer.embeddingCores().size();
        for (std::uint32_t rep = 0; rep < wafer.numReplicas();
             ++rep) {
            sys.activeCores_ += wafer.chainActiveCores(rep);
        }
    }
    return sys;
}

const DefectMap *
OuroborosSystem::defectMap(std::uint32_t wafer) const
{
    ouroAssert(wafer < defectMaps_.size(),
               "defectMap: bad wafer index");
    return defectMaps_[wafer] ? &*defectMaps_[wafer] : nullptr;
}

std::uint64_t
OuroborosSystem::chainKvCores(std::uint32_t replica,
                              std::uint32_t wafer) const
{
    return mapping(wafer).chainKvCores(replica);
}

RecoveryService
OuroborosSystem::makeRecoveryService(
        std::uint32_t wafer, const RecoveryServiceOptions &opts,
        std::shared_ptr<const CleanRouteTable> clean_routes) const
{
    return RecoveryService(mapping(wafer), params_.noc,
                           params_.core.sramBytes(),
                           defectMap(wafer), opts,
                           std::move(clean_routes));
}

RecoveryService &
OuroborosSystem::recovery(std::uint32_t wafer)
{
    ouroAssert(wafer < services_.slots.size(),
               "recovery: bad wafer index");
    if (!services_.slots[wafer]) {
        services_.slots[wafer] = std::make_unique<RecoveryService>(
                mapping(wafer), params_.noc,
                params_.core.sramBytes(), defectMap(wafer));
    }
    return *services_.slots[wafer];
}

std::optional<FailureOutcome>
OuroborosSystem::handleCoreFailure(CoreCoord failed,
                                   std::uint32_t wafer)
{
    return recovery(wafer).handleCoreFailure(failed);
}

const WaferMapping &
OuroborosSystem::mapping(std::uint32_t wafer) const
{
    ouroAssert(wafer < wafers_.size(), "mapping: bad wafer index");
    return wafers_[wafer];
}

double
OuroborosSystem::totalMappingByteHops() const
{
    double total = 0.0;
    for (const auto &wafer : wafers_)
        total += wafer.totalByteHops();
    return total;
}

OuroborosReport
OuroborosSystem::run(const Workload &workload) const
{
    OuroborosReport report;

    BlockKvManager kv(model_, scorePool_, contextPool_, 128,
                      opts_.kvThreshold);

    PipelineOptions popts;
    popts.kind = opts_.tokenGrained ? PipelineKind::TokenGrained
                                    : PipelineKind::SequenceGrained;
    popts.staticKvAllocation = !opts_.dynamicKv;
    popts.maxContext = model_.maxContext;
    // Bulk (sequence-granular) attention parallelises across the
    // block's KV crossbars: ~16-way per head ring in practice.
    popts.attentionParallelism = 16.0;

    // Data-parallel replicas: run one replica's shard; the others
    // are congruent and finish simultaneously.
    Workload shard = workload;
    if (replicas_ > 1) {
        shard.requests.clear();
        for (std::size_t i = 0; i < workload.requests.size();
             i += replicas_) {
            shard.requests.push_back(workload.requests[i]);
        }
        if (shard.requests.empty())
            shard.requests.push_back(workload.requests.front());
    }
    report.pipeline = runPipeline(shard, model_, timing_, kv, popts);
    report.kvEvictions = kv.evictionCount();
    report.kvUtilization = kv.utilization();
    report.defects = defects_;
    report.mappingByteHops = totalMappingByteHops();
    report.avgContext = report.pipeline.avgContext;

    // ---- Energy ----
    const FabricFlags flags{opts_.useCim, opts_.waferScale};
    double reread = 0.0;
    if (!opts_.useCim) {
        if (opts_.tokenGrained) {
            reread = 1.0; // every token re-streams the weights
        } else {
            // Sequence granularity amortises the weight stream over
            // each item's tokens; decode steps additionally batch
            // ~16 concurrent sequences against one weight read (the
            // conventional batched-GEMV baseline).
            double items = 0.0;
            double tokens = 0.0;
            for (const auto &r : workload.requests) {
                items += 1.0 +
                         static_cast<double>(r.decodeLen) / 16.0;
                tokens += static_cast<double>(r.totalTokens());
            }
            reread = tokens > 0.0 ? items / tokens : 1.0;
        }
    }
    const EnergyLedger per_token = perTokenEnergy(
            model_, params_, dist_, flags, report.avgContext, reread);

    EnergyLedger total = per_token.scaled(
            static_cast<double>(report.pipeline.tokensProcessed));
    total.add(EnergyCategory::Compute,
              fabricStaticPower(model_, params_, activeCores_) *
                  report.pipeline.makespanSeconds);

    SystemResult &result = report.result;
    result.system = "Ouroboros";
    result.workload = workload.name;
    result.model = model_.name;
    result.makespanSeconds = report.pipeline.makespanSeconds;
    // All replicas run concurrently: system throughput counts every
    // replica's output over the (common) shard makespan.
    const double replica_scale =
        replicas_ > 1 && report.pipeline.outputTokens > 0
            ? static_cast<double>(workload.totalOutputTokens()) /
                  static_cast<double>(report.pipeline.outputTokens)
            : 1.0;
    result.outputTokensPerSecond =
        report.pipeline.outputTokensPerSecond() * replica_scale;
    result.utilization = report.pipeline.utilization;
    result.peakConcurrency = report.pipeline.peakConcurrency;
    const double out_tokens =
        std::max<double>(1.0, static_cast<double>(
                report.pipeline.outputTokens));
    result.energyPerToken = total.scaled(1.0 / out_tokens);
    return report;
}

} // namespace ouro
