#include "storm_run.hh"

#include <unordered_set>

#include "common/logging.hh"

namespace ouro
{

namespace
{

/** Coordinates in @p a but not in @p b (order of @p a preserved). */
std::vector<CoreCoord>
coordsMinus(const std::vector<CoreCoord> &a,
            const std::vector<CoreCoord> &b,
            const WaferGeometry &geom)
{
    std::unordered_set<std::uint64_t> in_b;
    in_b.reserve(b.size());
    for (const CoreCoord &c : b)
        in_b.insert(geom.coreIndex(c));
    std::vector<CoreCoord> out;
    for (const CoreCoord &c : a) {
        if (in_b.count(geom.coreIndex(c)) == 0)
            out.push_back(c);
    }
    return out;
}

} // namespace

ResolvedStorm
resolveStormSchedule(const OuroborosSystem &sys,
                     const FailureInjectorParams &injector_params,
                     const RecoveryServiceOptions &recovery)
{
    ResolvedStorm result;

    // Resolve the counter-seeded schedule against the recovery
    // service's evolving serving-region state, mirroring every
    // placement change into a pool event on the run clock. The
    // service is rebuilt from the immutable mapping on every call,
    // so the resolved sequence is a pure function of (schedule seed,
    // options) - the replay-determinism contract.
    const FailureInjector injector(injector_params);
    if (injector.numFailures() > 0) {
        RecoveryService service = sys.makeRecoveryService(0, recovery);
        service.setFailureObserver(
                [&](CoreCoord, const FailureOutcome &out) {
                    result.borrows += out.borrows.size();
                });
        const WaferGeometry geom = sys.mapping(0).geometry();
        const std::uint64_t block = service.firstBlock();

        for (std::uint64_t k = 0; k < injector.numFailures(); ++k) {
            // Victim selection against the CURRENT placement: the
            // duty coin picks the pool, the pick draw the core.
            // Score-then-context concatenation fixes the KV-duty
            // candidate order.
            std::vector<CoreCoord> candidates;
            {
                const BlockPlacement &p = service.placement(block, 0);
                if (injector.weightDuty(k)) {
                    candidates = p.weightCores;
                } else {
                    candidates = p.scoreCores;
                    candidates.insert(candidates.end(),
                                      p.contextCores.begin(),
                                      p.contextCores.end());
                }
            }
            if (candidates.empty()) {
                ++result.failuresSkipped;
                continue;
            }
            const CoreCoord victim =
                candidates[injector.pick(k, candidates.size())];
            ++result.failuresInjected;

            const std::vector<CoreCoord> score_before =
                service.placement(block, 0).scoreCores;
            const std::vector<CoreCoord> context_before =
                service.placement(block, 0).contextCores;
            const auto outcome = service.handleCoreFailure(victim);
            if (!outcome) {
                ++result.failuresSkipped;
                continue;
            }
            ++result.failuresHandled;

            // Mirror the region's KV delta into a pool event. Lost
            // KV-duty cores (the failed KV core, a replacement
            // chain's absorbed KV core) shrink the pool; the failed
            // core itself is always dropped too - a dead weight core
            // takes its spare KV crossbars with it (dropCore is a
            // no-op for coordinates the pool never held). Gained
            // cores (cross-block borrows) are adopted with the
            // dedicated-KV-core shape and the duty they kept across
            // the graft.
            const BlockPlacement &after =
                service.placement(block, 0);
            KvPoolEvent ev;
            ev.time = injector.failureTime(k);
            for (const CoreCoord &c : coordsMinus(
                         score_before, after.scoreCores, geom))
                ev.dropCores.push_back(c);
            for (const CoreCoord &c : coordsMinus(
                         context_before, after.contextCores, geom))
                ev.dropCores.push_back(c);
            ev.dropCores.push_back(victim);

            const CoreParams &core = sys.params().core;
            for (const CoreCoord &c : coordsMinus(
                         after.scoreCores, score_before, geom)) {
                ev.adopts.push_back(
                        {{c, core.numCrossbars,
                          core.crossbar.logicalBlocks},
                         true});
            }
            for (const CoreCoord &c : coordsMinus(
                         after.contextCores, context_before, geom)) {
                ev.adopts.push_back(
                        {{c, core.numCrossbars,
                          core.crossbar.logicalBlocks},
                         false});
            }
            result.kvCoresLost += ev.dropCores.size();
            result.kvCoresAdopted += ev.adopts.size();
            result.events.push_back(std::move(ev));
        }
    }
    return result;
}

StormServingResult
runStormServing(const OuroborosSystem &sys, const Workload &workload,
                const StormServingOptions &opts)
{
    ouroAssert(sys.options().dynamicKv,
               "runStormServing: storm serving requires the dynamic "
               "KV pool");
    StormServingResult result;

    // Phase 1: resolve the schedule (pure in schedule seed/options).
    {
        ResolvedStorm resolved =
            resolveStormSchedule(sys, opts.injector, opts.recovery);
        result.events = std::move(resolved.events);
        result.failuresInjected = resolved.failuresInjected;
        result.failuresHandled = resolved.failuresHandled;
        result.failuresSkipped = resolved.failuresSkipped;
        result.kvCoresLost = resolved.kvCoresLost;
        result.kvCoresAdopted = resolved.kvCoresAdopted;
        result.borrows = resolved.borrows;
    }

    // Phase 2: serve the workload with the mirrored schedule driving
    // mid-run pool mutations. An empty schedule leaves stormSchedule
    // null - the engine's unmodified (bit-identical) path.
    BlockKvManager kv(sys.model(), sys.scorePool(),
                      sys.contextPool(), 128,
                      sys.options().kvThreshold);
    PipelineOptions popts;
    popts.kind = PipelineKind::TokenGrained;
    popts.attentionParallelism = opts.attentionParallelism;
    popts.cohortFastPath = opts.cohortFastPath;
    popts.throughputBinSeconds = opts.throughputBinSeconds;
    if (!result.events.empty())
        popts.stormSchedule = &result.events;
    result.stats = runPipeline(workload, sys.model(),
                               sys.stageTiming(), kv, popts);
    return result;
}

} // namespace ouro
