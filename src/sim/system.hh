/**
 * @file
 * The Ouroboros end-to-end system simulator (paper Section 5).
 *
 * OuroborosSystem assembles everything: wafer geometry and yield,
 * the communication-aware mapping, the distributed KV pool (dedicated
 * KV cores plus the fragmented spare crossbars of weight cores), the
 * derived stage timing, and the pipeline engine; run() executes a
 * workload and prices it.
 *
 * The ablation flags mirror Fig. 15's axes exactly:
 *   waferScale  - stitched wafer vs NVLink'd discrete dies
 *   useCim      - in-situ compute vs SRAM + separate MACs
 *   tokenGrained- TGP vs sequence-grained pipelining
 *   smartMapping- MIQP/annealed mapping vs naive strips
 *   dynamicKv   - distributed dynamic KV (+ spare-crossbar reuse)
 *                 vs static worst-case allocation
 */

#ifndef OURO_SIM_SYSTEM_HH
#define OURO_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/result.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"
#include "mapping/wafer_mapping.hh"
#include "pipeline/engine.hh"
#include "runtime/recovery_service.hh"
#include "sim/stage_model.hh"
#include "workload/requests.hh"

namespace ouro
{

/** Configuration of one simulated Ouroboros deployment. */
struct OuroborosOptions
{
    bool waferScale = true;
    bool useCim = true;
    bool tokenGrained = true;
    bool smartMapping = true;
    bool dynamicKv = true;

    /** KV anti-thrashing threshold (Fig. 17 sweep). */
    double kvThreshold = 0.1;

    /** Wafers ganged over optical Ethernet (Section 6.8). */
    std::uint32_t numWafers = 1;

    /** Inject Murphy-model fabrication defects. */
    bool injectDefects = true;

    std::uint64_t seed = 1;
    std::uint64_t annealIterations = 1200;

    /** Parallel multi-restart annealing chains (best mapping wins). */
    std::uint32_t annealRestarts = 1;
};

/** Detailed report of one run. */
struct OuroborosReport
{
    SystemResult result;
    PipelineStats pipeline;
    double kvUtilization = 0.0;
    std::uint64_t kvEvictions = 0;
    std::uint64_t defects = 0;
    double mappingByteHops = 0.0;
    double avgContext = 0.0;
};

/**
 * A built Ouroboros deployment: mapping done, pools sized, timing
 * derived. Construction can fail (model does not fit the wafers);
 * use build().
 */
class OuroborosSystem
{
  public:
    /** Build a deployment; nullopt when the model does not fit. */
    static std::optional<OuroborosSystem>
    build(const ModelConfig &model, const OuroborosParams &params,
          const OuroborosOptions &opts = {});

    /** Execute a workload. */
    OuroborosReport run(const Workload &workload) const;

    /** Mapping of wafer @p w (for inspection / Fig. 18). */
    const WaferMapping &mapping(std::uint32_t wafer = 0) const;

    std::uint64_t numDefects() const { return defects_; }

    /** The defect map injected on wafer @p w (nullptr when defect
     *  injection is off). Retained so the recovery service can own
     *  the wafer's full fault state. */
    const DefectMap *defectMap(std::uint32_t wafer = 0) const;

    /** Active (leakage-burning) cores across wafers, every replica
     *  chain's weights, KV and embedding reservation included. */
    std::uint64_t activeCores() const { return activeCores_; }

    /** Dedicated KV cores of one replica chain on wafer @p w - the
     *  per-fault-domain capacity the recovery service draws on. */
    std::uint64_t chainKvCores(std::uint32_t replica,
                               std::uint32_t wafer = 0) const;

    /**
     * The wafer-level recovery service of wafer @p w, created
     * lazily over the wafer's mapping and retained defect map. This
     * is THE runtime failure entry point: core failures go through
     * the service (per-chain RecoveryIndex routing, cross-block KV
     * borrowing, inter-block re-pricing), not through ad-hoc
     * per-placement calls.
     */
    RecoveryService &recovery(std::uint32_t wafer = 0);

    /** Delegate a core failure to wafer @p w's recovery service. */
    std::optional<FailureOutcome>
    handleCoreFailure(CoreCoord failed, std::uint32_t wafer = 0);

    /** Build a standalone service over wafer @p w (callers that
     *  want their own options or a shared clean-route table). */
    RecoveryService
    makeRecoveryService(std::uint32_t wafer = 0,
                        const RecoveryServiceOptions &opts = {},
                        std::shared_ptr<const CleanRouteTable>
                                clean_routes = nullptr) const;

    /** Data-parallel pipeline replicas sharing the wafer. */
    std::uint32_t replicas() const { return replicas_; }

    const StageTiming &stageTiming() const { return timing_; }
    const PlacementDistances &distances() const { return dist_; }

    /** Per-wafer transmission volume (byte-hops) of the mapping. */
    double totalMappingByteHops() const;

    const ModelConfig &model() const { return model_; }
    const OuroborosOptions &options() const { return opts_; }
    const OuroborosParams &params() const { return params_; }

    /** Representative-block KV pool description (one per run). */
    std::vector<KvCoreInfo> scorePool() const { return scorePool_; }
    std::vector<KvCoreInfo> contextPool() const
    {
        return contextPool_;
    }

  private:
    OuroborosSystem() = default;

    ModelConfig model_;
    OuroborosParams params_;
    OuroborosOptions opts_;
    WaferGeometry geom_;
    std::vector<WaferMapping> wafers_;
    /** Aligned with wafers_; disengaged when injection is off. */
    std::vector<std::optional<DefectMap>> defectMaps_;
    /**
     * Lazily built recovery services, aligned with wafers_. A
     * service is MUTABLE fault state, not a pure cache, so a copied
     * system must never alias the original's services: copying this
     * wrapper resets the slots (they rebuild lazily from the copied
     * mapping + defect map on the next recovery() call).
     */
    struct ServiceCache
    {
        std::vector<std::unique_ptr<RecoveryService>> slots;

        ServiceCache() = default;
        ServiceCache(const ServiceCache &other)
            : slots(other.slots.size())
        {
        }
        ServiceCache &operator=(const ServiceCache &other)
        {
            const std::size_t n = other.slots.size();
            slots.clear();
            slots.resize(n);
            return *this;
        }
        ServiceCache(ServiceCache &&) = default;
        ServiceCache &operator=(ServiceCache &&) = default;
    };
    ServiceCache services_;
    StageTiming timing_;
    PlacementDistances dist_;
    std::uint64_t defects_ = 0;
    std::uint64_t activeCores_ = 0;
    std::uint32_t replicas_ = 1;
    std::vector<KvCoreInfo> scorePool_;
    std::vector<KvCoreInfo> contextPool_;
};

} // namespace ouro

#endif // OURO_SIM_SYSTEM_HH
