/**
 * @file
 * The Ouroboros end-to-end system simulator (paper Section 5).
 *
 * OuroborosSystem assembles everything: wafer geometry and yield,
 * the communication-aware mapping, the distributed KV pool (dedicated
 * KV cores plus the fragmented spare crossbars of weight cores), the
 * derived stage timing, and the pipeline engine; run() executes a
 * workload and prices it.
 *
 * The ablation flags mirror Fig. 15's axes exactly:
 *   waferScale  - stitched wafer vs NVLink'd discrete dies
 *   useCim      - in-situ compute vs SRAM + separate MACs
 *   tokenGrained- TGP vs sequence-grained pipelining
 *   smartMapping- MIQP/annealed mapping vs naive strips
 *   dynamicKv   - distributed dynamic KV (+ spare-crossbar reuse)
 *                 vs static worst-case allocation
 */

#ifndef OURO_SIM_SYSTEM_HH
#define OURO_SIM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/result.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"
#include "mapping/wafer_mapping.hh"
#include "pipeline/engine.hh"
#include "sim/stage_model.hh"
#include "workload/requests.hh"

namespace ouro
{

/** Configuration of one simulated Ouroboros deployment. */
struct OuroborosOptions
{
    bool waferScale = true;
    bool useCim = true;
    bool tokenGrained = true;
    bool smartMapping = true;
    bool dynamicKv = true;

    /** KV anti-thrashing threshold (Fig. 17 sweep). */
    double kvThreshold = 0.1;

    /** Wafers ganged over optical Ethernet (Section 6.8). */
    std::uint32_t numWafers = 1;

    /** Inject Murphy-model fabrication defects. */
    bool injectDefects = true;

    std::uint64_t seed = 1;
    std::uint64_t annealIterations = 1200;

    /** Parallel multi-restart annealing chains (best mapping wins). */
    std::uint32_t annealRestarts = 1;
};

/** Detailed report of one run. */
struct OuroborosReport
{
    SystemResult result;
    PipelineStats pipeline;
    double kvUtilization = 0.0;
    std::uint64_t kvEvictions = 0;
    std::uint64_t defects = 0;
    double mappingByteHops = 0.0;
    double avgContext = 0.0;
};

/**
 * A built Ouroboros deployment: mapping done, pools sized, timing
 * derived. Construction can fail (model does not fit the wafers);
 * use build().
 */
class OuroborosSystem
{
  public:
    /** Build a deployment; nullopt when the model does not fit. */
    static std::optional<OuroborosSystem>
    build(const ModelConfig &model, const OuroborosParams &params,
          const OuroborosOptions &opts = {});

    /** Execute a workload. */
    OuroborosReport run(const Workload &workload) const;

    /** Mapping of wafer @p w (for inspection / Fig. 18). */
    const WaferMapping &mapping(std::uint32_t wafer = 0) const;

    std::uint64_t numDefects() const { return defects_; }

    /** Data-parallel pipeline replicas sharing the wafer. */
    std::uint32_t replicas() const { return replicas_; }

    const StageTiming &stageTiming() const { return timing_; }
    const PlacementDistances &distances() const { return dist_; }

    /** Per-wafer transmission volume (byte-hops) of the mapping. */
    double totalMappingByteHops() const;

    const ModelConfig &model() const { return model_; }
    const OuroborosOptions &options() const { return opts_; }
    const OuroborosParams &params() const { return params_; }

    /** Representative-block KV pool description (one per run). */
    std::vector<KvCoreInfo> scorePool() const { return scorePool_; }
    std::vector<KvCoreInfo> contextPool() const
    {
        return contextPool_;
    }

  private:
    OuroborosSystem() = default;

    ModelConfig model_;
    OuroborosParams params_;
    OuroborosOptions opts_;
    WaferGeometry geom_;
    std::vector<WaferMapping> wafers_;
    StageTiming timing_;
    PlacementDistances dist_;
    std::uint64_t defects_ = 0;
    std::uint64_t activeCores_ = 0;
    std::uint32_t replicas_ = 1;
    std::vector<KvCoreInfo> scorePool_;
    std::vector<KvCoreInfo> contextPool_;
};

} // namespace ouro

#endif // OURO_SIM_SYSTEM_HH
