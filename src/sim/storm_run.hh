/**
 * @file
 * Serving through a failure storm (PR 9): the scenario that finally
 * closes the loop between the two headline harnesses. A
 * deterministic FailureInjector schedule drives
 * RecoveryService::handleCoreFailure against the placement the
 * pipeline engine is actually serving on (the representative block
 * of replica 0); every placement change the service makes is
 * mirrored into the live BlockKvManager pool as a KvPoolEvent on the
 * engine's run clock:
 *
 *  - KV cores the region lost (the failed core, a replacement
 *    chain's absorbed KV core) become dropCore()s - residents whose
 *    KV lived there are storm-evicted and re-enter the wait queue
 *    with their full re-prefill as real pipeline work under the
 *    Section 4.4.4 admission backpressure;
 *  - KV cores the region gained (cross-block borrows) become
 *    adoptCore()s, growing the pool back mid-run.
 *
 * Determinism contract: the whole storm run is a pure function of
 * (workload, schedule seed, options). The service is rebuilt from
 * the system's immutable mapping on every call and the injector is
 * counter-seeded, so calling runStormServing twice with the same
 * inputs yields bit-identical stats AND bit-identical events (tests
 * and the storm bench assert this). A zero-failure schedule leaves
 * the engine on its unmodified path - bit-identical to a plain
 * runPipeline over the same pool (the retained oracle).
 */

#ifndef OURO_SIM_STORM_RUN_HH
#define OURO_SIM_STORM_RUN_HH

#include <cstdint>
#include <vector>

#include "pipeline/engine.hh"
#include "sim/failure_injector.hh"
#include "sim/system.hh"

namespace ouro
{

struct StormServingOptions
{
    FailureInjectorParams injector;

    /** Options for the rebuilt-per-run recovery service. */
    RecoveryServiceOptions recovery;

    bool cohortFastPath = true;

    /** Forwarded to PipelineOptions::throughputBinSeconds. */
    double throughputBinSeconds = 0.0;

    /** Matches the system run()/fig13 serving operating point. */
    double attentionParallelism = 16.0;
};

/**
 * A counter-seeded failure schedule resolved against the serving
 * region: the mirrored pool events plus the resolution counters. A
 * pure function of (system mapping, injector params, recovery
 * options) - the recovery service is rebuilt from the immutable
 * mapping on every resolution, so resolving twice is bit-identical
 * (events AND counters).
 */
struct ResolvedStorm
{
    /** The mirrored pool schedule (sorted by nondecreasing time;
     *  replay input for determinism checks). */
    std::vector<KvPoolEvent> events;

    std::uint64_t failuresInjected = 0; ///< schedule entries resolved
    std::uint64_t failuresHandled = 0;  ///< service recoveries
    std::uint64_t failuresSkipped = 0;  ///< empty pool / unrecoverable
    std::uint64_t kvCoresLost = 0;      ///< dropCore events issued
    std::uint64_t kvCoresAdopted = 0;   ///< adoptCore events issued
    std::uint64_t borrows = 0;          ///< cross-block KV borrows
};

/**
 * Resolve @p injector's schedule against @p sys's serving region
 * (representative block, replica 0) through a recovery service
 * rebuilt from the immutable mapping, mirroring every placement
 * change into a KvPoolEvent. Shared by runStormServing and the
 * fleet layer (sim/fleet.hh), which also prices a storm-degraded
 * wafer's dispatch weight off the resolved pool delta.
 */
ResolvedStorm
resolveStormSchedule(const OuroborosSystem &sys,
                     const FailureInjectorParams &injector,
                     const RecoveryServiceOptions &recovery = {});

struct StormServingResult
{
    PipelineStats stats;

    /** The mirrored pool schedule the engine executed (sorted by
     *  time; replay input for determinism checks). */
    std::vector<KvPoolEvent> events;

    std::uint64_t failuresInjected = 0; ///< schedule entries resolved
    std::uint64_t failuresHandled = 0;  ///< service recoveries
    std::uint64_t failuresSkipped = 0;  ///< empty pool / unrecoverable
    std::uint64_t kvCoresLost = 0;      ///< dropCore events issued
    std::uint64_t kvCoresAdopted = 0;   ///< adoptCore events issued
    std::uint64_t borrows = 0;          ///< cross-block KV borrows
};

/**
 * Run @p workload through @p sys's serving pipeline while the
 * injector's failure schedule plays out against the serving region.
 * Requires dynamic KV (the pool-based serving mode).
 */
StormServingResult runStormServing(const OuroborosSystem &sys,
                                   const Workload &workload,
                                   const StormServingOptions &opts);

} // namespace ouro

#endif // OURO_SIM_STORM_RUN_HH
