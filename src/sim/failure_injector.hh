/**
 * @file
 * Deterministic failure-storm schedule (PR 9: serving through a
 * failure storm).
 *
 * The FailureInjector follows the same counter-seeded purity
 * contract as DayTrace (workload/trace.cc): failure k's randomness
 * lives in a private RNG stream seeded from (seed, k) by two mixing
 * rounds, so every accessor is a pure function of (params, k) - no
 * sequential generator state, nothing to replay in order. Replaying
 * the same schedule therefore yields bit-identical draws, which is
 * the foundation of the storm run's whole-run determinism contract:
 * same (trace seed, schedule seed, options) -> bit-identical stats.
 *
 * The schedule spreads `failures` failure instants strictly
 * monotonically across [stormStart, stormStart + stormDuration):
 * failure k lands at stormStart + stormDuration * (k + u_k) /
 * failures with u_k in [0,1), so k + u_k is strictly increasing in
 * k. Each failure also carries a duty coin (weight core vs KV core)
 * and a victim pick, drawn from the same private stream in a fixed
 * order (time jitter, duty, pick) so the three accessors can be
 * called independently.
 */

#ifndef OURO_SIM_FAILURE_INJECTOR_HH
#define OURO_SIM_FAILURE_INJECTOR_HH

#include <cstddef>
#include <cstdint>

namespace ouro
{

struct FailureInjectorParams
{
    /** Core failures in the storm window. */
    std::uint64_t failures = 0;

    /** Storm window on the pipeline run clock (seconds). */
    double stormStart = 0.0;
    double stormDuration = 1.0;

    /** Schedule seed - independent of the workload's trace seed. */
    std::uint64_t seed = 1;

    /** Probability a failure targets a weight core (replacement
     *  chain) instead of a KV core (pool shrink). */
    double weightFailureFraction = 0.25;
};

class FailureInjector
{
  public:
    explicit FailureInjector(const FailureInjectorParams &params);

    std::uint64_t numFailures() const { return params_.failures; }
    const FailureInjectorParams &params() const { return params_; }

    /** Failure k's instant on the run clock; strictly increasing
     *  in k. */
    double failureTime(std::uint64_t k) const;

    /** True when failure k targets a weight core. */
    bool weightDuty(std::uint64_t k) const;

    /** Victim index of failure k over a pool of @p n candidates,
     *  in [0, n). @p n must be > 0. */
    std::size_t pick(std::uint64_t k, std::size_t n) const;

  private:
    FailureInjectorParams params_;
};

} // namespace ouro

#endif // OURO_SIM_FAILURE_INJECTOR_HH
