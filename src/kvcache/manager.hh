/**
 * @file
 * Distributed dynamic KV-cache management (paper Section 4.4).
 *
 * Each transformer block manages its own KV cache independently
 * (attention is block-local). The pool consists of the block's
 * dedicated score cores (holding K, computing Q.K^T) and context
 * cores (holding V, computing S.V), plus the *fragmented* spare
 * crossbars of the block's weight cores. Allocation follows the
 * paper's KV-mapping rules (Section 4.4.3):
 *
 *  - the KV cores form a ring; a new sequence takes one core per
 *    attention head starting at the ring cursor, so consecutive
 *    sequences land on distinct cores (compute/write separation) and
 *    heads on distinct cores (no intra-core concat pressure);
 *  - K grows along output channels: new blocks may come from OTHER
 *    crossbars of the core; V grows along input channels: new blocks
 *    prefer the SAME crossbar so accumulation stays single-pass;
 *  - a logical block (128 rows x 1024 bits) holds 128 tokens of one
 *    head (head_dim <= 128), matching "the head dimensions of
 *    prevalent models";
 *  - when the free space of the ring's current core falls below a
 *    threshold the core is marked full, reserving the residue for
 *    decode-phase growth of already-resident sequences (the
 *    anti-thrashing rule of Section 4.4.4).
 *
 * Eviction (Section 4.4.4): when admission fails, the MOST RECENTLY
 * scheduled resident sequence is evicted and must be re-prefetched by
 * the scheduler (it re-enters the wait queue at the front). Residents
 * are kept on an intrusive admission-order list, so the MRU victim is
 * the list tail - O(1) instead of a scan of every resident.
 *
 * Hot-path API (PR 2): admission hands back an opaque KvHandle that
 * addresses the sequence's slot directly. grow/growRoom/growFast/
 * release on the handle skip the seq-id hash probe entirely - the
 * pipeline engine holds one handle per resident sequence and only
 * falls back to the id-keyed calls on rare paths (external eviction,
 * failure handling). Handles die with release(); using a stale one is
 * a checked error.
 */

#ifndef OURO_KVCACHE_MANAGER_HH
#define OURO_KVCACHE_MANAGER_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/units.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"
#include "model/llm.hh"

namespace ouro
{

/** One KV storage core in the ring. */
struct KvCoreInfo
{
    CoreCoord coord;
    std::uint32_t crossbars;  ///< attention-capable crossbars
    std::uint32_t blocksPerCrossbar;
};

/** Where one head of one sequence lives. */
struct HeadPlacement
{
    std::uint32_t scoreCore;   ///< index into the score ring
    std::uint32_t contextCore; ///< index into the context ring
};

/** Result of an admission/growth attempt. */
struct KvResult
{
    bool ok = false;
    /** Sequences evicted to make room (most-recent-first). */
    std::vector<std::uint64_t> evicted;
};

class BlockKvManager;

/**
 * Opaque ticket for a resident sequence. Obtained from admission (or
 * handleOf()); lets the per-token KV calls index the sequence's slot
 * directly instead of re-probing the seq-id hash. Valid until the
 * sequence is released or evicted.
 */
class KvHandle
{
  public:
    KvHandle() = default;

    bool valid() const { return slot_ != kInvalid; }

  private:
    friend class BlockKvManager;
    static constexpr std::uint32_t kInvalid = 0xffffffffu;

    KvHandle(std::uint32_t slot, std::uint32_t stamp)
        : slot_(slot), stamp_(stamp)
    {
    }

    std::uint32_t slot_ = kInvalid;
    /** Slot reuse stamp: detects a stale handle whose slot was
     *  recycled by a later admission (ABA), not just a dead slot. */
    std::uint32_t stamp_ = 0;
};

/**
 * Per-block KV manager. Thread-compatible, deterministic; the
 * multi-level translation (page table -> bitmap -> block registers,
 * Fig. 12) is modelled by the seq -> head placement map, per-core
 * free-block counters, and per-(seq, head, core) block lists.
 */
class BlockKvManager
{
  public:
    /**
     * @param tokens_per_block rows of a logical block usable for
     *        tokens (128 for head_dim <= 128).
     * @param threshold fraction of a core's blocks kept in reserve
     *        for growth once the ring cursor visits it (Fig. 17
     *        sweep).
     */
    BlockKvManager(const ModelConfig &model,
                   std::vector<KvCoreInfo> score_cores,
                   std::vector<KvCoreInfo> context_cores,
                   std::uint32_t tokens_per_block = 128,
                   double threshold = 0.1);

    /**
     * Admit a sequence with @p initial_tokens of KV (its prefill).
     * On capacity shortage evicts most-recently-scheduled residents
     * (never the new sequence's own allocation) until it fits or the
     * pool is empty. ok=false means the sequence cannot fit even in
     * an empty pool slot - caller must defer it.
     */
    KvResult admit(std::uint64_t seq_id, std::uint64_t initial_tokens);

    /**
     * Admission without eviction (Section 4.4.4: scheduling new
     * requests suspends when the cache is full rather than evicting).
     * Returns false when the sequence does not fit as-is.
     */
    bool admitNoEvict(std::uint64_t seq_id,
                      std::uint64_t initial_tokens);

    /**
     * Handle-returning admitNoEvict: the engine's hot path. The
     * returned handle is invalid when the sequence does not fit.
     */
    KvHandle admitNoEvictHandle(std::uint64_t seq_id,
                                std::uint64_t initial_tokens);

    /** Handle of a resident sequence (one hash probe). */
    KvHandle handleOf(std::uint64_t seq_id) const;

    /** Append one decode token's K/V for a resident sequence. */
    KvResult grow(std::uint64_t seq_id);
    KvResult grow(KvHandle handle);

    /**
     * Tokens appendable to a resident sequence through the in-block
     * fast path alone (no block allocation, hence no eviction): the
     * minimum room left in the newest K/V block over all heads. The
     * pipeline engine uses this to batch unconstrained decode steps.
     */
    std::uint64_t growRoom(std::uint64_t seq_id) const;
    std::uint64_t growRoom(KvHandle handle) const;

    /**
     * Append @p n tokens through the fast path; @p n must not exceed
     * growRoom(seq_id). Equivalent to n fast-path grow() calls.
     */
    void growFast(std::uint64_t seq_id, std::uint64_t n);
    void growFast(KvHandle handle, std::uint64_t n);

    /** Release a finished (or externally evicted) sequence. */
    void release(std::uint64_t seq_id);
    void release(KvHandle handle);

    bool resident(std::uint64_t seq_id) const;

    /** Number of resident sequences. */
    std::size_t numResident() const { return index_.size(); }

    /** Placement of head @p h of a resident sequence. */
    HeadPlacement headPlacement(std::uint64_t seq_id,
                                std::uint32_t head) const;

    /** Coordinates for NoC traffic accounting. */
    CoreCoord scoreCoord(std::uint32_t ring_index) const;
    CoreCoord contextCoord(std::uint32_t ring_index) const;

    /** Fraction of all logical blocks currently allocated. */
    double utilization() const;

    /** Total token capacity of the pool (all heads aggregated). */
    std::uint64_t totalBlocks() const { return totalBlocks_; }
    std::uint64_t usedBlocks() const { return usedBlocks_; }

    /** Lifetime counters (for the Fig. 17 thrashing study). */
    std::uint64_t evictionCount() const { return evictions_; }
    std::uint64_t admissionCount() const { return admissions_; }

    /**
     * V-spill count: V growth that could not stay in its preferred
     * crossbar and pays the extra partial-sum hop (Section 4.4.3).
     */
    std::uint64_t vSpills() const { return vSpills_; }

    /** Remove a failed KV core from the pool (Section 4.3.3);
     *  returns the sequences that lost data and were released. This
     *  IS the mid-run shrinkCapacity path: residents on the core are
     *  released (their handles go stale - using one afterwards is a
     *  checked error), the core's free blocks leave totalBlocks(),
     *  and the fenced entry never takes another allocation. */
    std::vector<std::uint64_t> dropCore(CoreCoord coord);

    /**
     * Graft a core into the pool mid-run (PR 9: KV capacity borrowed
     * from an adjacent block after a failure). The core joins the
     * score or context ring per @p score_duty - the duty it kept
     * across the recovery service's graft - empty, behind the ring
     * cursor (the cursor reaches it on its next wrap; existing
     * allocations and handles are untouched). Adopting a coordinate
     * that still holds live capacity in either ring is a checked
     * error; re-adopting a previously dropCore()d coordinate is fine
     * (the fenced entry stays inert). Returns the new ring index.
     */
    std::uint32_t adoptCore(const KvCoreInfo &info, bool score_duty);

  private:
    /** Free-block accounting for one ring core. */
    struct CoreState
    {
        KvCoreInfo info;
        std::vector<std::uint32_t> freePerXbar; ///< blocks free
        bool markedFull = false;

        std::uint32_t totalFree() const;
    };

    /** Blocks one (sequence, head) holds on its K or V core. */
    struct HeadAlloc
    {
        std::uint32_t core;          ///< ring index
        std::uint32_t blocks = 0;    ///< logical blocks held
        std::uint32_t lastBlockFill = 0; ///< tokens in newest block
        std::uint32_t homeXbar = 0;  ///< V's preferred crossbar
        /** Crossbar ownership, (crossbar, blocks) pairs, for release
         *  accounting (the Fig. 12c block registers). */
        std::vector<std::pair<std::uint32_t, std::uint32_t>> perXbar;
    };

    static constexpr std::uint32_t kNilSlot = 0xffffffffu;

    struct SequenceState
    {
        std::uint64_t seqId = 0;
        std::uint64_t tokens = 0;
        std::vector<HeadAlloc> k;    ///< per head, on score cores
        std::vector<HeadAlloc> v;    ///< per head, on context cores
        /** Intrusive admission-order list (head = LRU, tail = MRU). */
        std::uint32_t mruPrev = kNilSlot;
        std::uint32_t mruNext = kNilSlot;
        /** Bumped on every release so recycled slots refuse handles
         *  from the previous residency. */
        std::uint32_t stamp = 0;
        bool live = false;
    };

    ModelConfig model_;
    std::vector<CoreState> score_;
    std::vector<CoreState> context_;
    std::uint32_t tokensPerBlock_;
    double threshold_;

    std::uint32_t scoreCursor_ = 0;
    std::uint32_t contextCursor_ = 0;
    std::uint64_t totalBlocks_ = 0;
    std::uint64_t usedBlocks_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t admissions_ = 0;
    std::uint64_t vSpills_ = 0;

    /** Slot storage: stable while resident, recycled after release. */
    std::vector<SequenceState> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::uint32_t mruHead_ = kNilSlot; ///< least recently admitted
    std::uint32_t mruTail_ = kNilSlot; ///< most recently admitted

    /** seq id -> slot, for the id-keyed API and duplicate checks. */
    std::unordered_map<std::uint64_t, std::uint32_t> index_;

    SequenceState &slotRef(KvHandle handle);
    const SequenceState &slotRef(KvHandle handle) const;

    /** Blocks needed to hold @p tokens of one head. */
    std::uint32_t blocksFor(std::uint64_t tokens) const;

    /** Evict the most recently scheduled resident; false if none. */
    bool evictMru(std::vector<std::uint64_t> &evicted);

    /** Release by slot (shared by handle/id release and eviction). */
    void releaseSlot(std::uint32_t slot);

    void linkMru(std::uint32_t slot);
    void unlinkMru(std::uint32_t slot);

    /** Returns the new slot on success, kNilSlot when it won't fit. */
    std::uint32_t tryAdmitOnce(std::uint64_t seq_id,
                               std::uint64_t initial_tokens);

    /** Allocate @p blocks on a ring core; kind selects K/V policy. */
    bool allocBlocks(CoreState &core, HeadAlloc &alloc,
                     std::uint32_t blocks, bool is_v);

    void releaseAlloc(std::vector<CoreState> &ring,
                      const HeadAlloc &alloc);

    /** Apply the anti-thrashing threshold rule to a cursor core. */
    void applyThreshold(CoreState &core);
};

/** Aggregate view over all blocks' managers (model-level stats). */
struct KvPoolStats
{
    double utilization = 0.0;
    std::uint64_t evictions = 0;
    std::uint64_t vSpills = 0;
    std::uint64_t residentSequences = 0;
};

} // namespace ouro

#endif // OURO_KVCACHE_MANAGER_HH
