#include "manager.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ouro
{

std::uint32_t
BlockKvManager::CoreState::totalFree() const
{
    std::uint32_t n = 0;
    for (const auto f : freePerXbar)
        n += f;
    return n;
}

BlockKvManager::BlockKvManager(const ModelConfig &model,
                               std::vector<KvCoreInfo> score_cores,
                               std::vector<KvCoreInfo> context_cores,
                               std::uint32_t tokens_per_block,
                               double threshold)
    : model_(model), tokensPerBlock_(tokens_per_block),
      threshold_(threshold)
{
    ouroAssert(!score_cores.empty() && !context_cores.empty(),
               "BlockKvManager: empty KV core pool");
    ouroAssert(tokens_per_block > 0, "BlockKvManager: zero block size");
    ouroAssert(threshold >= 0.0 && threshold < 1.0,
               "BlockKvManager: threshold out of [0,1)");
    for (auto &info : score_cores) {
        CoreState state;
        state.info = info;
        state.freePerXbar.assign(info.crossbars,
                                 info.blocksPerCrossbar);
        totalBlocks_ += static_cast<std::uint64_t>(info.crossbars) *
                        info.blocksPerCrossbar;
        score_.push_back(std::move(state));
    }
    for (auto &info : context_cores) {
        CoreState state;
        state.info = info;
        state.freePerXbar.assign(info.crossbars,
                                 info.blocksPerCrossbar);
        totalBlocks_ += static_cast<std::uint64_t>(info.crossbars) *
                        info.blocksPerCrossbar;
        context_.push_back(std::move(state));
    }
}

std::uint32_t
BlockKvManager::blocksFor(std::uint64_t tokens) const
{
    if (tokens == 0)
        return 1; // a sequence always owns at least its next block
    return static_cast<std::uint32_t>(
            ceilDiv(tokens, tokensPerBlock_));
}

bool
BlockKvManager::allocBlocks(CoreState &core, HeadAlloc &alloc,
                            std::uint32_t blocks, bool is_v)
{
    if (core.totalFree() < blocks)
        return false;
    for (std::uint32_t n = 0; n < blocks; ++n) {
        std::uint32_t chosen = core.info.crossbars;
        if (is_v) {
            // V prefers its home crossbar (single-pass accumulation);
            // spilling to another crossbar costs an extra partial-sum
            // merge, which we count.
            if (core.freePerXbar[alloc.homeXbar] > 0) {
                chosen = alloc.homeXbar;
            } else {
                for (std::uint32_t x = 0; x < core.info.crossbars;
                     ++x) {
                    if (core.freePerXbar[x] > 0) {
                        chosen = x;
                        break;
                    }
                }
                if (alloc.blocks + n > 0)
                    ++vSpills_;
            }
        } else {
            // K grows along output channels: any crossbar works; pick
            // the emptiest to keep write pressure spread.
            std::uint32_t best_free = 0;
            for (std::uint32_t x = 0; x < core.info.crossbars; ++x) {
                if (core.freePerXbar[x] > best_free) {
                    best_free = core.freePerXbar[x];
                    chosen = x;
                }
            }
        }
        ouroAssert(chosen < core.info.crossbars,
                   "allocBlocks: no free crossbar despite free count");
        --core.freePerXbar[chosen];
        ++usedBlocks_;
        // Record ownership for release accounting.
        bool merged = false;
        for (auto &[xbar, count] : alloc.perXbar) {
            if (xbar == chosen) {
                ++count;
                merged = true;
                break;
            }
        }
        if (!merged)
            alloc.perXbar.emplace_back(chosen, 1);
    }
    alloc.blocks += blocks;
    return true;
}

void
BlockKvManager::releaseAlloc(std::vector<CoreState> &ring,
                             const HeadAlloc &alloc)
{
    CoreState &core = ring[alloc.core];
    for (const auto &[xbar, count] : alloc.perXbar) {
        core.freePerXbar[xbar] += count;
        ouroAssert(core.freePerXbar[xbar] <=
                   core.info.blocksPerCrossbar,
                   "releaseAlloc: double free");
        usedBlocks_ -= count;
    }
    // Freed space may clear the full mark.
    const double capacity = static_cast<double>(core.info.crossbars) *
                            core.info.blocksPerCrossbar;
    if (core.totalFree() > threshold_ * capacity)
        core.markedFull = false;
}

void
BlockKvManager::applyThreshold(CoreState &core)
{
    const double capacity = static_cast<double>(core.info.crossbars) *
                            core.info.blocksPerCrossbar;
    if (static_cast<double>(core.totalFree()) < threshold_ * capacity)
        core.markedFull = true;
}

BlockKvManager::SequenceState &
BlockKvManager::slotRef(KvHandle handle)
{
    ouroAssert(handle.valid() && handle.slot_ < slots_.size() &&
               slots_[handle.slot_].live &&
               slots_[handle.slot_].stamp == handle.stamp_,
               "BlockKvManager: stale or invalid KvHandle");
    return slots_[handle.slot_];
}

const BlockKvManager::SequenceState &
BlockKvManager::slotRef(KvHandle handle) const
{
    ouroAssert(handle.valid() && handle.slot_ < slots_.size() &&
               slots_[handle.slot_].live &&
               slots_[handle.slot_].stamp == handle.stamp_,
               "BlockKvManager: stale or invalid KvHandle");
    return slots_[handle.slot_];
}

void
BlockKvManager::linkMru(std::uint32_t slot)
{
    SequenceState &seq = slots_[slot];
    seq.mruPrev = mruTail_;
    seq.mruNext = kNilSlot;
    if (mruTail_ != kNilSlot)
        slots_[mruTail_].mruNext = slot;
    else
        mruHead_ = slot;
    mruTail_ = slot;
}

void
BlockKvManager::unlinkMru(std::uint32_t slot)
{
    SequenceState &seq = slots_[slot];
    if (seq.mruPrev != kNilSlot)
        slots_[seq.mruPrev].mruNext = seq.mruNext;
    else
        mruHead_ = seq.mruNext;
    if (seq.mruNext != kNilSlot)
        slots_[seq.mruNext].mruPrev = seq.mruPrev;
    else
        mruTail_ = seq.mruPrev;
    seq.mruPrev = kNilSlot;
    seq.mruNext = kNilSlot;
}

std::uint32_t
BlockKvManager::tryAdmitOnce(std::uint64_t seq_id,
                             std::uint64_t initial_tokens)
{
    const auto heads = static_cast<std::uint32_t>(model_.numKvHeads);
    const std::uint32_t need = blocksFor(initial_tokens);

    SequenceState seq;
    seq.seqId = seq_id;
    seq.tokens = initial_tokens;
    seq.k.resize(heads);
    seq.v.resize(heads);

    auto place = [&](std::vector<CoreState> &ring,
                     std::vector<HeadAlloc> &allocs,
                     std::uint32_t &cursor, bool is_v) -> bool {
        std::uint32_t placed = 0;
        std::uint32_t probe = cursor;
        std::uint32_t probes = 0;
        const auto ring_size =
            static_cast<std::uint32_t>(ring.size());
        while (placed < heads && probes < 2 * ring_size + heads) {
            CoreState &core = ring[probe % ring_size];
            ++probes;
            // Admission requires the post-allocation residue to stay
            // above the threshold reserve - small (spare-crossbar)
            // cores therefore only take sequences they can also
            // grow (Section 4.4.4's anti-thrashing rule).
            const double capacity =
                static_cast<double>(core.info.crossbars) *
                core.info.blocksPerCrossbar;
            const auto reserve = static_cast<std::uint32_t>(
                    std::ceil(threshold_ * capacity));
            if (!core.markedFull &&
                core.totalFree() >= need + reserve) {
                HeadAlloc &alloc = allocs[placed];
                alloc.core = probe % ring_size;
                alloc.homeXbar = 0;
                const bool ok =
                    allocBlocks(core, alloc, need, is_v);
                ouroAssert(ok, "tryAdmitOnce: alloc failed");
                alloc.lastBlockFill = static_cast<std::uint32_t>(
                        initial_tokens == 0
                            ? 0
                            : initial_tokens -
                              (static_cast<std::uint64_t>(need) - 1) *
                              tokensPerBlock_);
                applyThreshold(core);
                ++placed;
            }
            ++probe;
        }
        cursor = probe % ring_size;
        return placed == heads;
    };

    const std::uint32_t saved_score = scoreCursor_;
    const std::uint32_t saved_context = contextCursor_;
    const bool k_ok = place(score_, seq.k, scoreCursor_, false);
    const bool v_ok =
        k_ok && place(context_, seq.v, contextCursor_, true);
    if (!k_ok || !v_ok) {
        // Roll back partial allocations.
        for (const auto &alloc : seq.k) {
            if (alloc.blocks)
                releaseAlloc(score_, alloc);
        }
        for (const auto &alloc : seq.v) {
            if (alloc.blocks)
                releaseAlloc(context_, alloc);
        }
        scoreCursor_ = saved_score;
        contextCursor_ = saved_context;
        return kNilSlot;
    }

    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.emplace_back();
    }
    seq.live = true;
    seq.stamp = slots_[slot].stamp; // keep the reuse stamp
    slots_[slot] = std::move(seq);
    linkMru(slot);
    index_.emplace(seq_id, slot);
    ++admissions_;
    return slot;
}

bool
BlockKvManager::evictMru(std::vector<std::uint64_t> &evicted)
{
    if (mruTail_ == kNilSlot)
        return false;
    const std::uint32_t victim = mruTail_;
    const std::uint64_t id = slots_[victim].seqId;
    releaseSlot(victim);
    evicted.push_back(id);
    ++evictions_;
    return true;
}

KvResult
BlockKvManager::admit(std::uint64_t seq_id,
                      std::uint64_t initial_tokens)
{
    ouroAssert(!resident(seq_id), "admit: sequence ", seq_id,
               " already resident");
    KvResult result;
    while (true) {
        if (tryAdmitOnce(seq_id, initial_tokens) != kNilSlot) {
            result.ok = true;
            return result;
        }
        if (!evictMru(result.evicted))
            return result; // pool empty yet still no fit
    }
}

bool
BlockKvManager::admitNoEvict(std::uint64_t seq_id,
                             std::uint64_t initial_tokens)
{
    return admitNoEvictHandle(seq_id, initial_tokens).valid();
}

KvHandle
BlockKvManager::admitNoEvictHandle(std::uint64_t seq_id,
                                   std::uint64_t initial_tokens)
{
    ouroAssert(!resident(seq_id), "admitNoEvict: sequence ", seq_id,
               " already resident");
    const std::uint32_t slot = tryAdmitOnce(seq_id, initial_tokens);
    return slot == kNilSlot ? KvHandle{}
                            : KvHandle{slot, slots_[slot].stamp};
}

KvHandle
BlockKvManager::handleOf(std::uint64_t seq_id) const
{
    const auto it = index_.find(seq_id);
    ouroAssert(it != index_.end(), "handleOf: sequence ", seq_id,
               " not resident");
    return KvHandle{it->second, slots_[it->second].stamp};
}

std::uint64_t
BlockKvManager::growRoom(std::uint64_t seq_id) const
{
    return growRoom(handleOf(seq_id));
}

std::uint64_t
BlockKvManager::growRoom(KvHandle handle) const
{
    const SequenceState &seq = slotRef(handle);
    if (seq.k.empty() || seq.k.front().blocks == 0)
        return 0;
    std::uint32_t room = tokensPerBlock_;
    for (const auto &alloc : seq.k)
        room = std::min(room, tokensPerBlock_ - alloc.lastBlockFill);
    for (const auto &alloc : seq.v)
        room = std::min(room, tokensPerBlock_ - alloc.lastBlockFill);
    return room;
}

void
BlockKvManager::growFast(std::uint64_t seq_id, std::uint64_t n)
{
    growFast(handleOf(seq_id), n);
}

void
BlockKvManager::growFast(KvHandle handle, std::uint64_t n)
{
    SequenceState &seq = slotRef(handle);
    const auto count = static_cast<std::uint32_t>(n);
    for (auto &alloc : seq.k) {
        alloc.lastBlockFill += count;
        ouroAssert(alloc.lastBlockFill <= tokensPerBlock_,
                   "growFast: batch exceeds in-block room");
    }
    for (auto &alloc : seq.v) {
        alloc.lastBlockFill += count;
        ouroAssert(alloc.lastBlockFill <= tokensPerBlock_,
                   "growFast: batch exceeds in-block room");
    }
    seq.tokens += n;
}

KvResult
BlockKvManager::grow(std::uint64_t seq_id)
{
    return grow(handleOf(seq_id));
}

KvResult
BlockKvManager::grow(KvHandle handle)
{
    KvResult result;
    SequenceState &seq = slotRef(handle);

    // Fast path: the newest block of every head still has room.
    if (seq.k.front().lastBlockFill < tokensPerBlock_ &&
        seq.k.front().blocks > 0) {
        bool all_have_room = true;
        for (const auto &alloc : seq.k)
            all_have_room &= alloc.lastBlockFill < tokensPerBlock_;
        for (const auto &alloc : seq.v)
            all_have_room &= alloc.lastBlockFill < tokensPerBlock_;
        if (all_have_room) {
            for (auto &alloc : seq.k)
                ++alloc.lastBlockFill;
            for (auto &alloc : seq.v)
                ++alloc.lastBlockFill;
            ++seq.tokens;
            result.ok = true;
            return result;
        }
    }

    // Need one more block per head (K and V). Evict other residents
    // (most recent first) until it fits; never evict the grower.
    //
    // Several heads of the same sequence may share a core, so demand
    // must be counted per core, not per alloc. Head counts are small
    // (<= numKvHeads), so flat (core, count) vectors with a linear
    // probe beat a per-call hash map.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> k_need;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> v_need;
    k_need.reserve(seq.k.size());
    v_need.reserve(seq.v.size());
    auto count_core = [](std::vector<std::pair<std::uint32_t,
                                               std::uint32_t>> &need,
                         std::uint32_t core) {
        for (auto &[c, n] : need) {
            if (c == core) {
                ++n;
                return;
            }
        }
        need.emplace_back(core, 1);
    };
    for (const auto &alloc : seq.k)
        count_core(k_need, alloc.core);
    for (const auto &alloc : seq.v)
        count_core(v_need, alloc.core);
    while (true) {
        bool fits = true;
        for (const auto &[core, need] : k_need)
            fits &= score_[core].totalFree() >= need;
        for (const auto &[core, need] : v_need)
            fits &= context_[core].totalFree() >= need;
        if (fits)
            break;
        // MRU victim other than ourselves: the list tail, or its
        // predecessor when we ARE the tail.
        std::uint32_t victim = mruTail_;
        if (victim == handle.slot_)
            victim = slots_[victim].mruPrev;
        if (victim == kNilSlot)
            return result; // only us left and still no room
        const std::uint64_t vid = slots_[victim].seqId;
        releaseSlot(victim);
        result.evicted.push_back(vid);
        ++evictions_;
    }

    for (auto &alloc : seq.k) {
        const bool ok = allocBlocks(score_[alloc.core], alloc, 1,
                                    false);
        ouroAssert(ok, "grow: K alloc failed after fit check");
        alloc.lastBlockFill = 1;
        applyThreshold(score_[alloc.core]);
    }
    for (auto &alloc : seq.v) {
        const bool ok = allocBlocks(context_[alloc.core], alloc, 1,
                                    true);
        ouroAssert(ok, "grow: V alloc failed after fit check");
        alloc.lastBlockFill = 1;
        applyThreshold(context_[alloc.core]);
    }
    ++seq.tokens;
    result.ok = true;
    return result;
}

void
BlockKvManager::release(std::uint64_t seq_id)
{
    release(handleOf(seq_id));
}

void
BlockKvManager::release(KvHandle handle)
{
    slotRef(handle); // validates
    releaseSlot(handle.slot_);
}

void
BlockKvManager::releaseSlot(std::uint32_t slot)
{
    SequenceState &seq = slots_[slot];
    for (const auto &alloc : seq.k)
        releaseAlloc(score_, alloc);
    for (const auto &alloc : seq.v)
        releaseAlloc(context_, alloc);
    unlinkMru(slot);
    index_.erase(seq.seqId);
    seq.k.clear();
    seq.v.clear();
    seq.live = false;
    ++seq.stamp; // invalidate outstanding handles (ABA guard)
    freeSlots_.push_back(slot);
}

bool
BlockKvManager::resident(std::uint64_t seq_id) const
{
    return index_.count(seq_id) > 0;
}

HeadPlacement
BlockKvManager::headPlacement(std::uint64_t seq_id,
                              std::uint32_t head) const
{
    const SequenceState &seq = slotRef(handleOf(seq_id));
    ouroAssert(head < seq.k.size(),
               "headPlacement: head out of range");
    return {seq.k[head].core, seq.v[head].core};
}

CoreCoord
BlockKvManager::scoreCoord(std::uint32_t ring_index) const
{
    ouroAssert(ring_index < score_.size(), "scoreCoord: bad index");
    return score_[ring_index].info.coord;
}

CoreCoord
BlockKvManager::contextCoord(std::uint32_t ring_index) const
{
    ouroAssert(ring_index < context_.size(),
               "contextCoord: bad index");
    return context_[ring_index].info.coord;
}

double
BlockKvManager::utilization() const
{
    return totalBlocks_ == 0
               ? 0.0
               : static_cast<double>(usedBlocks_) /
                     static_cast<double>(totalBlocks_);
}

std::vector<std::uint64_t>
BlockKvManager::dropCore(CoreCoord coord)
{
    std::vector<std::uint64_t> lost;
    auto collect = [&](const std::vector<CoreState> &ring,
                       bool is_score) {
        for (std::uint32_t r = 0; r < ring.size(); ++r) {
            if (!(ring[r].info.coord == coord))
                continue;
            for (const auto &[id, slot] : index_) {
                const SequenceState &seq = slots_[slot];
                const auto &allocs = is_score ? seq.k : seq.v;
                for (const auto &alloc : allocs) {
                    if (alloc.core == r) {
                        lost.push_back(id);
                        break;
                    }
                }
            }
        }
    };
    collect(score_, true);
    collect(context_, false);
    std::sort(lost.begin(), lost.end());
    lost.erase(std::unique(lost.begin(), lost.end()), lost.end());
    // Release first (their blocks return to the free lists), THEN
    // fence the core so no future allocation lands on it.
    for (const auto id : lost)
        release(id);
    auto fence = [&](std::vector<CoreState> &ring) {
        for (auto &core : ring) {
            if (!(core.info.coord == coord))
                continue;
            std::uint32_t stranded = 0;
            for (auto &f : core.freePerXbar) {
                stranded += f;
                f = 0;
            }
            core.markedFull = true;
            totalBlocks_ -= stranded;
        }
    };
    fence(score_);
    fence(context_);
    return lost;
}

std::uint32_t
BlockKvManager::adoptCore(const KvCoreInfo &info, bool score_duty)
{
    // A dropCore()d entry (fenced: zero free, markedFull) with the
    // same coordinate is inert and may be shadowed; anything still
    // holding capacity is a double-adopt.
    for (const auto *ring : {&score_, &context_}) {
        for (const auto &core : *ring) {
            ouroAssert(!(core.info.coord == info.coord) ||
                               (core.totalFree() == 0 &&
                                core.markedFull),
                       "adoptCore: core (", info.coord.row, ",",
                       info.coord.col, ") is already live in the "
                       "pool");
        }
    }
    auto &ring = score_duty ? score_ : context_;
    CoreState state;
    state.info = info;
    state.freePerXbar.assign(info.crossbars, info.blocksPerCrossbar);
    totalBlocks_ += static_cast<std::uint64_t>(info.crossbars) *
                    info.blocksPerCrossbar;
    ring.push_back(std::move(state));
    return static_cast<std::uint32_t>(ring.size() - 1);
}

} // namespace ouro
