#include "geometry.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace ouro
{

WaferGeometry::WaferGeometry(std::uint32_t die_rows,
                             std::uint32_t die_cols,
                             std::uint32_t cores_per_die_row,
                             std::uint32_t cores_per_die_col)
    : dieRows_(die_rows), dieCols_(die_cols),
      coresPerDieRow_(cores_per_die_row),
      coresPerDieCol_(cores_per_die_col)
{
    ouroAssert(die_rows > 0 && die_cols > 0 && cores_per_die_row > 0 &&
               cores_per_die_col > 0, "WaferGeometry: zero extent");
}

std::uint64_t
WaferGeometry::coreIndex(CoreCoord c) const
{
    ouroAssert(contains(c), "coreIndex: coordinate off wafer (",
               c.row, ",", c.col, ")");
    return static_cast<std::uint64_t>(c.row) * cols() + c.col;
}

CoreCoord
WaferGeometry::coreAt(std::uint64_t index) const
{
    ouroAssert(index < numCores(), "coreAt: index ", index,
               " out of range");
    return {static_cast<std::uint32_t>(index / cols()),
            static_cast<std::uint32_t>(index % cols())};
}

DieCoord
WaferGeometry::dieOf(CoreCoord c) const
{
    ouroAssert(contains(c), "dieOf: coordinate off wafer");
    return {c.row / coresPerDieRow_, c.col / coresPerDieCol_};
}

bool
WaferGeometry::sameDie(CoreCoord a, CoreCoord b) const
{
    return dieOf(a) == dieOf(b);
}

std::uint32_t
WaferGeometry::manhattan(CoreCoord a, CoreCoord b) const
{
    const auto dr = a.row > b.row ? a.row - b.row : b.row - a.row;
    const auto dc = a.col > b.col ? a.col - b.col : b.col - a.col;
    return dr + dc;
}

std::uint32_t
WaferGeometry::dieCrossings(CoreCoord a, CoreCoord b) const
{
    const DieCoord da = dieOf(a);
    const DieCoord db = dieOf(b);
    const auto dr = da.row > db.row ? da.row - db.row : db.row - da.row;
    const auto dc = da.col > db.col ? da.col - db.col : db.col - da.col;
    return dr + dc;
}

bool
WaferGeometry::contains(CoreCoord c) const
{
    return c.row < rows() && c.col < cols();
}

std::vector<CoreCoord>
WaferGeometry::sShapedOrder() const
{
    std::vector<CoreCoord> order;
    order.reserve(numCores());
    for (std::uint32_t die_r = 0; die_r < dieRows_; ++die_r) {
        // Snake across the die columns: even die-rows left-to-right,
        // odd die-rows right-to-left.
        for (std::uint32_t i = 0; i < dieCols_; ++i) {
            const std::uint32_t die_c =
                (die_r % 2 == 0) ? i : dieCols_ - 1 - i;
            // Within the die, snake core rows the same way so the last
            // core of one die abuts the first core of the next.
            for (std::uint32_t r = 0; r < coresPerDieRow_; ++r) {
                const std::uint32_t local_r =
                    (die_r % 2 == 0) ? r : coresPerDieRow_ - 1 - r;
                for (std::uint32_t k = 0; k < coresPerDieCol_; ++k) {
                    const bool forward =
                        ((die_r % 2 == 0) ? (i + r) : (i + r + 1)) % 2
                        == 0;
                    const std::uint32_t local_c =
                        forward ? k : coresPerDieCol_ - 1 - k;
                    order.push_back(
                            {die_r * coresPerDieRow_ + local_r,
                             die_c * coresPerDieCol_ + local_c});
                }
            }
        }
    }
    return order;
}

} // namespace ouro
