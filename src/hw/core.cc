#include "core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ouro
{

const char *
coreRoleName(CoreRole role)
{
    switch (role) {
      case CoreRole::Unassigned:
        return "unassigned";
      case CoreRole::Weights:
        return "weights";
      case CoreRole::KvCache:
        return "kv-cache";
      case CoreRole::Defective:
        return "defective";
    }
    panic("coreRoleName: bad role");
}

CimCore::CimCore(const CoreParams &params)
    : params_(params)
{
    xbars_.reserve(params_.numCrossbars);
    for (std::uint32_t i = 0; i < params_.numCrossbars; ++i)
        xbars_.emplace_back(params_.crossbar);
}

void
CimCore::markDefective()
{
    role_ = CoreRole::Defective;
}

bool
CimCore::assignTile(const TileAssignment &tile)
{
    if (role_ != CoreRole::Unassigned)
        return false;

    // Tiles are partitioned output-channel-first (constraint (2) of
    // Section 4.3.1), so each crossbar holds the full row span of the
    // tile and a slice of its columns.
    const auto &xp = params_.crossbar;
    if (tile.rows > xp.rows)
        return false;
    const std::uint32_t cols_per_xbar = xp.cols / xp.weightBits;
    const std::uint32_t need =
        static_cast<std::uint32_t>(ceilDiv(tile.cols, cols_per_xbar));
    if (need > params_.numCrossbars)
        return false;

    std::uint32_t remaining = tile.cols;
    for (std::uint32_t i = 0; i < need; ++i) {
        const std::uint32_t chunk =
            std::min(remaining, cols_per_xbar);
        const bool ok = xbars_[i].assignWeights(tile.rows, chunk);
        ouroAssert(ok, "assignTile: crossbar ", i, " refused tile");
        remaining -= chunk;
    }

    role_ = CoreRole::Weights;
    tile_ = tile;
    weightXbars_ = need;
    enableAttentionOnSpares();
    return true;
}

const TileAssignment &
CimCore::tile() const
{
    ouroAssert(role_ == CoreRole::Weights, "tile(): core holds no tile");
    return tile_;
}

bool
CimCore::assignKvRole()
{
    if (role_ != CoreRole::Unassigned)
        return false;
    role_ = CoreRole::KvCache;
    enableAttentionOnSpares();
    return true;
}

void
CimCore::enableAttentionOnSpares()
{
    for (auto &xbar : xbars_) {
        if (xbar.mode() == CrossbarMode::Unassigned)
            xbar.assignAttention();
    }
}

std::uint32_t
CimCore::freeAttentionCrossbars() const
{
    std::uint32_t n = 0;
    for (const auto &xbar : xbars_)
        n += xbar.mode() == CrossbarMode::Attention ? 1 : 0;
    return n;
}

std::uint32_t
CimCore::freeKvBlocks() const
{
    if (role_ == CoreRole::Defective)
        return 0;
    std::uint32_t n = 0;
    for (const auto &xbar : xbars_) {
        if (xbar.mode() == CrossbarMode::Attention)
            n += xbar.freeBlocks();
    }
    return n;
}

Crossbar &
CimCore::crossbar(std::uint32_t i)
{
    ouroAssert(i < xbars_.size(), "crossbar: index out of range");
    return xbars_[i];
}

const Crossbar &
CimCore::crossbar(std::uint32_t i) const
{
    ouroAssert(i < xbars_.size(), "crossbar: index out of range");
    return xbars_[i];
}

ComputeCost
CimCore::weightGemv() const
{
    ouroAssert(role_ == CoreRole::Weights,
               "weightGemv on core with role ", coreRoleName(role_));
    ComputeCost total;
    for (std::uint32_t i = 0; i < weightXbars_; ++i) {
        const ComputeCost c = xbars_[i].gemv();
        total.cycles = std::max(total.cycles, c.cycles);
        total.energyJ += c.energyJ;
        total.macs += c.macs;
    }
    return total;
}

ComputeCost
CimCore::sfuCompute(double ops) const
{
    ComputeCost cost;
    const double lane_cycles = ops / params_.sfuLanes;
    // SFU runs at its own (faster) clock; convert to CIM-core cycles
    // so pipeline arithmetic stays in one clock domain.
    const double seconds = lane_cycles / params_.sfuClockHz;
    cost.cycles = static_cast<Cycles>(
            std::max(1.0, seconds * params_.crossbar.clockHz + 0.5));
    cost.energyJ = ops * params_.sfuEnergyPerOp;
    return cost;
}

double
CimCore::bufferEnergy(Bytes bytes) const
{
    return static_cast<double>(bytes) * params_.bufferEnergyPerByte;
}

void
CimCore::reset()
{
    if (role_ == CoreRole::Defective)
        return; // defects are permanent
    role_ = CoreRole::Unassigned;
    weightXbars_ = 0;
    tile_ = TileAssignment{};
    for (auto &xbar : xbars_)
        xbar.reset();
}

} // namespace ouro
