/**
 * @file
 * Murphy yield model and defect-map generation (paper Section 5).
 *
 * Per-core yield follows Murphy's model
 *   Y = ((1 - e^{-A D0}) / (A D0))^2
 * with D0 = 0.09 defects/cm^2 and A = 2.97 mm^2. Defective core
 * locations are drawn pseudo-randomly from a seeded Rng, exactly as
 * the paper "randomly generates" them.
 */

#ifndef OURO_HW_YIELD_HH
#define OURO_HW_YIELD_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"

namespace ouro
{

/** Murphy per-core yield for the given parameters. */
double murphyYield(const YieldParams &params);

/** Probability that a single core is defective (1 - yield). */
double coreDefectProbability(const YieldParams &params);

/**
 * Boolean defect map over the wafer: defects[i] is true when core i
 * (by WaferGeometry::coreIndex) is unusable.
 */
class DefectMap
{
  public:
    /** All-good map. */
    explicit DefectMap(const WaferGeometry &geom);

    /** Seeded random map with the Murphy defect probability. */
    DefectMap(const WaferGeometry &geom, const YieldParams &params,
              Rng &rng);

    bool defective(CoreCoord c) const;
    bool defective(std::uint64_t index) const;

    /** Force a specific core defective (fault-injection tests). */
    void inject(CoreCoord c);

    std::uint64_t numDefects() const { return numDefects_; }
    std::uint64_t numCores() const { return flags_.size(); }

    const WaferGeometry &geometry() const { return geom_; }

  private:
    WaferGeometry geom_;
    std::vector<bool> flags_;
    std::uint64_t numDefects_ = 0;
};

} // namespace ouro

#endif // OURO_HW_YIELD_HH
