/**
 * @file
 * Functional/timing model of one digital SRAM CIM crossbar
 * (paper Section 4.4.1, Fig. 10).
 *
 * A crossbar is a 1024 x 1024 6T SRAM array with bit-serial digital
 * MAC peripherals. It operates in one of two modes:
 *
 *  - FFN mode: stores a static weight tile (rows = input channels,
 *    128 8-bit weight columns = output channels) and executes GEMVs
 *    against it.
 *  - Attention mode: the array is partitioned into 8 logical blocks of
 *    128 rows x 1024 columns that the distributed KV manager allocates
 *    to sequences; row/column-valid registers select the populated
 *    region during in-situ Q.K^T / S.V computation.
 *
 * Because 6T cells cannot be read (computed over) and written in the
 * same cycle, the model tracks a busy window so the scheduler can
 * interleave KV writes with compute on *different* crossbars, which is
 * exactly the constraint the paper's KV mapping honours (4.4.3).
 */

#ifndef OURO_HW_CROSSBAR_HH
#define OURO_HW_CROSSBAR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "hw/params.hh"

namespace ouro
{

/** Operating mode of a crossbar (Section 4.4.1). */
enum class CrossbarMode
{
    Unassigned,
    Ffn,       ///< persistent static weights
    Attention, ///< dynamically allocated KV logical blocks
};

const char *crossbarModeName(CrossbarMode mode);

/** Result of a compute call: cycles consumed and joules burned. */
struct ComputeCost
{
    Cycles cycles = 0;
    double energyJ = 0.0;
    double macs = 0.0;
};

/**
 * One crossbar. The model is *capacity-functional*: it tracks which
 * rows/columns hold valid data and prices compute, but does not move
 * actual tensor values (the simulator is performance/energy-level, as
 * is the paper's).
 */
class Crossbar
{
  public:
    explicit Crossbar(const CrossbarParams &params);

    const CrossbarParams &params() const { return params_; }
    CrossbarMode mode() const { return mode_; }

    /** @name FFN mode */
    /// @{

    /**
     * Claim the crossbar for a static weight tile of
     * @p rows_used input channels x @p cols_used output channels
     * (8-bit weights). Fails (returns false) if the tile exceeds the
     * array or the crossbar is already assigned.
     */
    bool assignWeights(std::uint32_t rows_used, std::uint32_t cols_used);

    /** Execute one GEMV over the stored tile. */
    ComputeCost gemv() const;

    std::uint32_t weightRows() const { return weightRows_; }
    std::uint32_t weightCols() const { return weightCols_; }

    /// @}

    /** @name Attention mode */
    /// @{

    /** Switch an unassigned crossbar to attention (KV) service. */
    bool assignAttention();

    std::uint32_t numLogicalBlocks() const
    {
        return params_.logicalBlocks;
    }

    /** Rows per logical block (array rows / logicalBlocks). */
    std::uint32_t blockRows() const
    {
        return params_.rows / params_.logicalBlocks;
    }

    /** Free logical blocks remaining. */
    std::uint32_t freeBlocks() const;

    /**
     * Allocate one logical block; returns its index or -1 if full.
     * Mirrors the crossbar controller's free-block table (Fig. 12c).
     */
    int allocBlock();

    /** Release a block and clear its occupancy registers. */
    void freeBlock(std::uint32_t block);

    bool blockInUse(std::uint32_t block) const;

    /**
     * Record @p rows_added newly written KV rows in @p block (the
     * per-block used-rows register). Returns false if the block
     * overflows - the KV manager must then grab another block.
     */
    bool growBlock(std::uint32_t block, std::uint32_t rows_added);

    std::uint32_t blockUsedRows(std::uint32_t block) const;

    /**
     * In-situ attention GEMV over @p active_rows valid KV rows (the
     * row-valid register selects them).
     */
    ComputeCost attentionGemv(std::uint32_t active_rows) const;

    /** Energy to write @p bytes of KV into the array. */
    double kvWriteEnergy(Bytes bytes) const;

    /// @}

    /** Reset to Unassigned and clear all occupancy state. */
    void reset();

    /** Static leakage power of the array (W). */
    double staticPowerW() const { return params_.arrayStaticPowerW; }

  private:
    CrossbarParams params_;
    CrossbarMode mode_ = CrossbarMode::Unassigned;

    // FFN-mode occupancy.
    std::uint32_t weightRows_ = 0;
    std::uint32_t weightCols_ = 0;

    // Attention-mode occupancy: used rows per logical block; the
    // all-ones value marks a free block.
    static constexpr std::uint32_t kBlockFree = UINT32_MAX;
    std::vector<std::uint32_t> blockUsed_;

    ComputeCost priceGemv(std::uint32_t active_rows,
                          std::uint32_t active_cols) const;
};

} // namespace ouro

#endif // OURO_HW_CROSSBAR_HH
