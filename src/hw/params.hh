/**
 * @file
 * The Ouroboros hardware parameter sheet (paper Sections 3 and 5).
 *
 * Every number here is either stated in the paper or derived from a
 * stated number; the derivations are spelled out next to each field.
 * Benchmarks mutate copies of this struct for sweeps (e.g. the
 * row-activation-ratio study of Fig. 11 or the CIM-macro substitution
 * study of Fig. 21), so nothing is a global constant.
 */

#ifndef OURO_HW_PARAMS_HH
#define OURO_HW_PARAMS_HH

#include <cstdint>

#include "common/units.hh"

namespace ouro
{

/**
 * Crossbar-level microarchitecture parameters (Section 4.4.1, Fig. 10).
 */
struct CrossbarParams
{
    /** SRAM array extent: 1024 x 1024 6T bitcells. */
    std::uint32_t rows = 1024;
    std::uint32_t cols = 1024;

    /** Weight precision (bits); cols/weightBits outputs per row. */
    std::uint32_t weightBits = 8;
    std::uint32_t inputBits = 8;

    /**
     * Fraction of rows active per cycle. The paper selects 1/32 (32
     * banks, one row each) as the capacity/throughput sweet spot
     * (Fig. 11).
     */
    double rowActiveRatio = 1.0 / 32.0;

    /** CIM array clock (Section 5: DC synthesis at 300 MHz). */
    double clockHz = 300 * MHz;

    /**
     * Component power from Section 5 (ASAP7, RTL at 50% sparsity):
     * array 6.6 mW dynamic + 0.11 mW static, AND gates 0.054 mW,
     * adder trees 4.94 mW, shift adders 3.26 mW.
     */
    double arrayDynamicPowerW = 6.6 * mW;
    double arrayStaticPowerW = 0.11 * mW;
    double andPowerW = 0.054 * mW;
    double adderTreePowerW = 4.94 * mW;
    double shiftAdderPowerW = 3.26 * mW;

    /** Component areas from Section 5 (mm^2). */
    double arrayAreaMm2 = 0.063;
    double andAreaMm2 = 0.0023;
    double adderTreeAreaMm2 = 0.0093;
    double shiftAdderAreaMm2 = 0.0022;

    /** Logical KV blocks per array (Section 4.4.2: 8 per crossbar). */
    std::uint32_t logicalBlocks = 8;

    /** Weight storage capacity in bytes (rows x cols bits / 8). */
    Bytes capacityBytes() const
    {
        return static_cast<Bytes>(rows) * cols / 8;
    }

    /** 8-bit weights held when fully loaded (rows x cols/weightBits). */
    std::uint64_t weightCapacity() const
    {
        return static_cast<std::uint64_t>(rows) * (cols / weightBits);
    }

    /** Rows activated together each cycle. */
    std::uint32_t rowsPerCycle() const;

    /**
     * Cycles for one full GEMV over @p active_rows stored rows (all
     * column outputs in parallel): input bits are serialised, and each
     * bit needs ceil(active_rows / rowsPerCycle()) array cycles.
     */
    Cycles gemvCycles(std::uint32_t active_rows) const;

    /** Effective MACs per cycle at full row occupancy. */
    double macsPerCycle() const;

    /** Total crossbar power (dynamic + static + logic) in watts. */
    double totalPowerW() const
    {
        return arrayDynamicPowerW + arrayStaticPowerW + andPowerW +
               adderTreePowerW + shiftAdderPowerW;
    }

    /** Energy per active compute cycle (joules). */
    double energyPerCycle() const { return totalPowerW() / clockHz; }

    /** Energy charged per MAC (joules). */
    double energyPerMac() const
    {
        return energyPerCycle() / macsPerCycle();
    }
};

/**
 * CIM core parameters (Section 3: 2.97 mm^2, 32 crossbars, buffers,
 * 64-way SFU, control unit).
 */
struct CoreParams
{
    CrossbarParams crossbar;

    std::uint32_t numCrossbars = 32;

    /** Input ping-pong buffer (128 KB) and output buffer (32 KB). */
    Bytes inputBufferBytes = 128 * KiB;
    Bytes outputBufferBytes = 32 * KiB;

    /** SFU: 64-way elementwise + reduction, 10 KB buffer, 1 GHz. */
    std::uint32_t sfuLanes = 64;
    Bytes sfuBufferBytes = 10 * KiB;
    double sfuClockHz = 1 * GHz;

    /**
     * SFU energy per elementwise op. ASAP7 FP-ish op at 1 GHz; the
     * value keeps the SFU a small slice of core power, consistent with
     * the paper treating softmax as cheap next to crossbar GEMVs.
     */
    double sfuEnergyPerOp = 0.45 * pJ;

    /**
     * Buffer SRAM access energy per byte (CACTI-class small SRAM at
     * 7 nm: ~0.2 pJ/bit). Charged for input/output buffer traffic and
     * KV writes - the residual SRAM energy the paper says remains
     * (Section 6.3).
     */
    double bufferEnergyPerByte = 1.6 * pJ;

    /** Control + sync overhead power per core. */
    double controlPowerW = 2.0 * mW;

    /** Core area (paper: 2.97 mm^2). */
    double areaMm2 = 2.97;

    /** Total SRAM capacity of the core (32 x 128 KB = 4 MB). */
    Bytes sramBytes() const
    {
        return static_cast<Bytes>(numCrossbars) *
               crossbar.capacityBytes();
    }

    /** Peak MAC throughput of the core (MAC/s). */
    double peakMacsPerSecond() const
    {
        return static_cast<double>(numCrossbars) *
               crossbar.macsPerCycle() * crossbar.clockHz;
    }

    /** Peak TOPS counting 2 ops per MAC. */
    double peakTops() const
    {
        return 2.0 * peakMacsPerSecond() / 1e12;
    }
};

/**
 * Network-on-wafer parameters (Section 3: 256-bit bidirectional
 * core-to-core links; stitched die boundaries; 1024-bit H-tree inside
 * the core; 8 x 100 Gb/s optical ports per wafer).
 */
struct NocParams
{
    /** Core-to-core link: 256 bit/cycle at the NoC clock. */
    double linkBitsPerCycle = 256.0;
    double clockHz = 1 * GHz;

    /** Per-hop router traversal latency (cycles). */
    Cycles routerLatency = 2;

    /**
     * Energy per bit per intra-die hop (router + link). BookSim2
     * ITRS-2007 32 nm models scaled to 7 nm per Stillmaker & Baas.
     */
    double hopEnergyPerBit = 0.10 * pJ;

    /**
     * Die-boundary crossing penalty: stitched links run at reduced
     * effective bandwidth; CostInter = intra-die BW / inter-die BW
     * (Section 4.3.1, Table 1).
     */
    double interDiePenalty = 2.0;

    /** Extra energy per bit when crossing a stitched die boundary. */
    double dieCrossingEnergyPerBit = 0.20 * pJ;

    /** Inter-wafer optical Ethernet: 8 x 100 Gb/s ports. */
    double interWaferBitsPerSecond = 8 * 100e9;
    double interWaferEnergyPerBit = 10.0 * pJ;

    /** Link bandwidth in bytes/second. */
    double linkBytesPerSecond() const
    {
        return linkBitsPerCycle / 8.0 * clockHz;
    }
};

/** Yield model constants (Section 5: Murphy, D0 = 0.09/cm^2). */
struct YieldParams
{
    double defectDensityPerCm2 = 0.09;
    double coreAreaCm2 = 2.97 / 100.0; // 2.97 mm^2 in cm^2
};

/**
 * The full Ouroboros hardware description: geometry constants live in
 * WaferGeometry; this struct carries the core/NoC/yield parameters and
 * wafer-level derived quantities.
 */
struct OuroborosParams
{
    CoreParams core;
    NocParams noc;
    YieldParams yield;

    /** Number of wafers ganged together (Section 6.8 uses 2). */
    std::uint32_t numWafers = 1;

    /** Wafer SRAM capacity given a core count. */
    Bytes waferSramBytes(std::uint64_t num_cores) const
    {
        return num_cores * core.sramBytes();
    }
};

} // namespace ouro

#endif // OURO_HW_PARAMS_HH
