/**
 * @file
 * CIM core model: 32 crossbars + buffers + SFU + control (Fig. 2c).
 *
 * A core is claimed for a weight tile of some transformer-block layer
 * (FFN-mode crossbars) and/or serves KV storage (attention-mode
 * crossbars). The key resource fact the paper's KV manager exploits
 * (Section 4.4) is that a weight tile rarely fills all 32 crossbars,
 * leaving *fragmented* capacity that the distributed KV manager
 * repurposes; CimCore exposes exactly that free capacity.
 */

#ifndef OURO_HW_CORE_HH
#define OURO_HW_CORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/crossbar.hh"
#include "hw/params.hh"

namespace ouro
{

/** What a core has been assigned to by the mapper. */
enum class CoreRole
{
    Unassigned,
    Weights,   ///< holds a layer tile (may also host KV in spare xbars)
    KvCache,   ///< dedicated KV storage/attention compute
    Defective, ///< fabrication defect; unusable
};

const char *coreRoleName(CoreRole role);

/** Identifies the layer tile a weights-core holds. */
struct TileAssignment
{
    std::string layer;       ///< layer name within the block
    std::uint64_t block;     ///< transformer block index
    std::uint32_t inSplit;   ///< input-channel split index i
    std::uint32_t outSplit;  ///< output-channel split index o
    std::uint32_t rows;      ///< input channels held
    std::uint32_t cols;      ///< output channels held
};

/**
 * One CIM core. Owns its crossbars; prices GEMV/SFU work and KV
 * traffic; reports free attention-mode capacity for the KV manager.
 */
class CimCore
{
  public:
    explicit CimCore(const CoreParams &params);

    const CoreParams &params() const { return params_; }
    CoreRole role() const { return role_; }

    /** Mark the core as a fabrication defect (yield model). */
    void markDefective();

    bool usable() const { return role_ != CoreRole::Defective; }

    /**
     * Assign a weight tile of @p rows x @p cols 8-bit weights, spread
     * across as many crossbars as needed (output-channel-major, per
     * the paper's constraint (2) in Section 4.3.1). Returns false if
     * the tile does not fit or the core is unusable/occupied.
     */
    bool assignTile(const TileAssignment &tile);

    const TileAssignment &tile() const;

    /** Convert a (still unassigned or KV) core to dedicated KV duty. */
    bool assignKvRole();

    /** Crossbars not claimed by weights: available for KV blocks. */
    std::uint32_t freeAttentionCrossbars() const;

    /** Total free KV logical blocks across attention-capable xbars. */
    std::uint32_t freeKvBlocks() const;

    /** Crossbar accessors for the KV manager. */
    std::uint32_t numCrossbars() const
    {
        return static_cast<std::uint32_t>(xbars_.size());
    }
    Crossbar &crossbar(std::uint32_t i);
    const Crossbar &crossbar(std::uint32_t i) const;

    /**
     * Price one token's GEMV through this core's weight tile: all
     * weight crossbars fire in parallel, so latency is one crossbar's
     * GEMV; energy sums over the crossbars used.
     */
    ComputeCost weightGemv() const;

    /** Price @p ops elementwise operations on the 64-way SFU. */
    ComputeCost sfuCompute(double ops) const;

    /** Price buffer traffic of @p bytes (input or output buffer). */
    double bufferEnergy(Bytes bytes) const;

    /** Number of crossbars the current weight tile occupies. */
    std::uint32_t weightCrossbars() const { return weightXbars_; }

    /** Release everything (fault-recovery remapping support). */
    void reset();

  private:
    CoreParams params_;
    CoreRole role_ = CoreRole::Unassigned;
    TileAssignment tile_;
    std::uint32_t weightXbars_ = 0;
    std::vector<Crossbar> xbars_;

    /** Make every non-weight crossbar attention-capable. */
    void enableAttentionOnSpares();
};

} // namespace ouro

#endif // OURO_HW_CORE_HH
