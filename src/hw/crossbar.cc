#include "crossbar.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ouro
{

const char *
crossbarModeName(CrossbarMode mode)
{
    switch (mode) {
      case CrossbarMode::Unassigned:
        return "unassigned";
      case CrossbarMode::Ffn:
        return "ffn";
      case CrossbarMode::Attention:
        return "attention";
    }
    panic("crossbarModeName: bad mode");
}

Crossbar::Crossbar(const CrossbarParams &params)
    : params_(params)
{
    ouroAssert(params_.logicalBlocks > 0,
               "Crossbar: zero logical block count");
    ouroAssert(params_.rows % params_.logicalBlocks == 0,
               "Crossbar: rows not divisible into logical blocks");
    blockUsed_.resize(params_.logicalBlocks, kBlockFree);
    reset();
}

void
Crossbar::reset()
{
    mode_ = CrossbarMode::Unassigned;
    weightRows_ = 0;
    weightCols_ = 0;
    std::fill(blockUsed_.begin(), blockUsed_.end(), kBlockFree);
}

bool
Crossbar::assignWeights(std::uint32_t rows_used, std::uint32_t cols_used)
{
    if (mode_ != CrossbarMode::Unassigned)
        return false;
    if (rows_used > params_.rows ||
        cols_used > params_.cols / params_.weightBits) {
        return false;
    }
    mode_ = CrossbarMode::Ffn;
    weightRows_ = rows_used;
    weightCols_ = cols_used;
    return true;
}

ComputeCost
Crossbar::priceGemv(std::uint32_t active_rows,
                    std::uint32_t active_cols) const
{
    ComputeCost cost;
    cost.cycles = params_.gemvCycles(active_rows);
    cost.macs = static_cast<double>(active_rows) * active_cols;
    // Energy scales with the touched fraction of the array: the
    // per-cycle power figure assumes full-width activity, so charge
    // proportionally to active columns.
    const double col_fraction =
        static_cast<double>(active_cols) /
        (params_.cols / params_.weightBits);
    cost.energyJ = static_cast<double>(cost.cycles) *
                   params_.energyPerCycle() * col_fraction;
    return cost;
}

ComputeCost
Crossbar::gemv() const
{
    ouroAssert(mode_ == CrossbarMode::Ffn,
               "gemv on a crossbar in mode ", crossbarModeName(mode_));
    return priceGemv(weightRows_, weightCols_);
}

bool
Crossbar::assignAttention()
{
    if (mode_ != CrossbarMode::Unassigned)
        return false;
    mode_ = CrossbarMode::Attention;
    return true;
}

std::uint32_t
Crossbar::freeBlocks() const
{
    ouroAssert(mode_ == CrossbarMode::Attention,
               "freeBlocks on non-attention crossbar");
    std::uint32_t free = 0;
    for (std::uint32_t b = 0; b < params_.logicalBlocks; ++b)
        free += blockUsed_[b] == kBlockFree ? 1 : 0;
    return free;
}

int
Crossbar::allocBlock()
{
    ouroAssert(mode_ == CrossbarMode::Attention,
               "allocBlock on non-attention crossbar");
    for (std::uint32_t b = 0; b < params_.logicalBlocks; ++b) {
        if (blockUsed_[b] == kBlockFree) {
            blockUsed_[b] = 0;
            return static_cast<int>(b);
        }
    }
    return -1;
}

void
Crossbar::freeBlock(std::uint32_t block)
{
    ouroAssert(block < params_.logicalBlocks, "freeBlock: bad index");
    ouroAssert(blockUsed_[block] != kBlockFree,
               "freeBlock: block ", block, " already free");
    blockUsed_[block] = kBlockFree;
}

bool
Crossbar::blockInUse(std::uint32_t block) const
{
    ouroAssert(block < params_.logicalBlocks, "blockInUse: bad index");
    return blockUsed_[block] != kBlockFree;
}

bool
Crossbar::growBlock(std::uint32_t block, std::uint32_t rows_added)
{
    ouroAssert(mode_ == CrossbarMode::Attention,
               "growBlock on non-attention crossbar");
    ouroAssert(blockInUse(block), "growBlock: block ", block,
               " not allocated");
    if (blockUsed_[block] + rows_added > blockRows())
        return false;
    blockUsed_[block] += rows_added;
    return true;
}

std::uint32_t
Crossbar::blockUsedRows(std::uint32_t block) const
{
    ouroAssert(blockInUse(block), "blockUsedRows: block not in use");
    return blockUsed_[block];
}

ComputeCost
Crossbar::attentionGemv(std::uint32_t active_rows) const
{
    ouroAssert(mode_ == CrossbarMode::Attention,
               "attentionGemv on mode ", crossbarModeName(mode_));
    ouroAssert(active_rows <= params_.rows,
               "attentionGemv: too many active rows");
    return priceGemv(active_rows, params_.cols / params_.weightBits);
}

double
Crossbar::kvWriteEnergy(Bytes bytes) const
{
    // SRAM write energy: approximate with the array's per-access
    // dynamic energy prorated per byte. One full-row write (128 B)
    // costs about one array cycle of dynamic power.
    const double per_row =
        params_.arrayDynamicPowerW / params_.clockHz;
    const double rows =
        static_cast<double>(bytes) / (params_.cols / 8.0);
    return per_row * rows;
}

} // namespace ouro
