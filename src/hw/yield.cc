#include "yield.hh"

#include <cmath>

#include "common/logging.hh"

namespace ouro
{

double
murphyYield(const YieldParams &params)
{
    const double ad0 = params.coreAreaCm2 * params.defectDensityPerCm2;
    ouroAssert(ad0 > 0.0, "murphyYield: non-positive A*D0");
    const double term = (1.0 - std::exp(-ad0)) / ad0;
    return term * term;
}

double
coreDefectProbability(const YieldParams &params)
{
    return 1.0 - murphyYield(params);
}

DefectMap::DefectMap(const WaferGeometry &geom)
    : geom_(geom), flags_(geom.numCores(), false)
{
}

DefectMap::DefectMap(const WaferGeometry &geom, const YieldParams &params,
                     Rng &rng)
    : geom_(geom), flags_(geom.numCores(), false)
{
    const double p = coreDefectProbability(params);
    for (std::uint64_t i = 0; i < flags_.size(); ++i) {
        if (rng.bernoulli(p)) {
            flags_[i] = true;
            ++numDefects_;
        }
    }
}

bool
DefectMap::defective(CoreCoord c) const
{
    return flags_[geom_.coreIndex(c)];
}

bool
DefectMap::defective(std::uint64_t index) const
{
    ouroAssert(index < flags_.size(), "defective: index out of range");
    return flags_[index];
}

void
DefectMap::inject(CoreCoord c)
{
    const auto idx = geom_.coreIndex(c);
    if (!flags_[idx]) {
        flags_[idx] = true;
        ++numDefects_;
    }
}

} // namespace ouro
