#include "params.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ouro
{

std::uint32_t
CrossbarParams::rowsPerCycle() const
{
    const auto active = static_cast<std::uint32_t>(
            std::llround(rowActiveRatio * rows));
    return std::max<std::uint32_t>(1, active);
}

Cycles
CrossbarParams::gemvCycles(std::uint32_t active_rows) const
{
    ouroAssert(active_rows <= rows, "gemvCycles: ", active_rows,
               " rows exceeds array height ", rows);
    if (active_rows == 0)
        return 0;
    const Cycles per_bit = ceilDiv(active_rows, rowsPerCycle());
    return per_bit * inputBits;
}

double
CrossbarParams::macsPerCycle() const
{
    // Per full GEMV over all rows: rows x (cols/weightBits) MACs in
    // gemvCycles(rows) cycles.
    const double macs = static_cast<double>(rows) * (cols / weightBits);
    const auto cycles = gemvCycles(rows);
    return macs / static_cast<double>(cycles);
}

} // namespace ouro
