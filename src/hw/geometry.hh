/**
 * @file
 * Physical geometry of the Ouroboros wafer (paper Section 3, Fig. 2).
 *
 * The wafer is a 215 mm x 215 mm monolithic die fabric: 9 rows x 7
 * columns of stitched dies, each die a 13 x 17 grid of CIM cores.
 * Globally that is a 117 x 119 core mesh (13,923 cores). CoreCoord
 * addresses a core by global (row, col); the geometry answers the
 * locality questions the mapper and NoC need: Manhattan distance,
 * same-die tests, die membership, and S-shaped (boustrophedon)
 * die-order enumeration for the pipeline's producer-consumer flow.
 */

#ifndef OURO_HW_GEOMETRY_HH
#define OURO_HW_GEOMETRY_HH

#include <cstdint>
#include <vector>

namespace ouro
{

/** Global core coordinate on the wafer mesh. */
struct CoreCoord
{
    std::uint32_t row = 0;
    std::uint32_t col = 0;

    bool operator==(const CoreCoord &other) const = default;
};

/** Die coordinate on the wafer's die grid. */
struct DieCoord
{
    std::uint32_t row = 0;
    std::uint32_t col = 0;

    bool operator==(const DieCoord &other) const = default;
};

/**
 * Wafer layout constants and coordinate arithmetic. Defaults match the
 * paper; alternate layouts (multi-wafer scaling treats each wafer as
 * its own geometry) are constructible for tests and sweeps.
 */
class WaferGeometry
{
  public:
    /** Paper defaults: 9x7 dies of 13x17 cores. */
    WaferGeometry(std::uint32_t die_rows = 9, std::uint32_t die_cols = 7,
                  std::uint32_t cores_per_die_row = 13,
                  std::uint32_t cores_per_die_col = 17);

    std::uint32_t dieRows() const { return dieRows_; }
    std::uint32_t dieCols() const { return dieCols_; }
    std::uint32_t coresPerDieRow() const { return coresPerDieRow_; }
    std::uint32_t coresPerDieCol() const { return coresPerDieCol_; }

    /** Global mesh extents in cores. */
    std::uint32_t rows() const { return dieRows_ * coresPerDieRow_; }
    std::uint32_t cols() const { return dieCols_ * coresPerDieCol_; }

    /** Total core count. */
    std::uint64_t numCores() const
    {
        return static_cast<std::uint64_t>(rows()) * cols();
    }

    std::uint64_t numDies() const
    {
        return static_cast<std::uint64_t>(dieRows_) * dieCols_;
    }

    /** Flatten / unflatten core coordinates. */
    std::uint64_t coreIndex(CoreCoord c) const;
    CoreCoord coreAt(std::uint64_t index) const;

    /** Die containing a core. */
    DieCoord dieOf(CoreCoord c) const;

    bool sameDie(CoreCoord a, CoreCoord b) const;

    /** Manhattan hop distance on the global core mesh. */
    std::uint32_t manhattan(CoreCoord a, CoreCoord b) const;

    /**
     * Number of die boundaries an XY route from @p a to @p b crosses
     * (each crossing pays the inter-die penalty, Section 4.3.1).
     */
    std::uint32_t dieCrossings(CoreCoord a, CoreCoord b) const;

    /** Validity check for a coordinate. */
    bool contains(CoreCoord c) const;

    /**
     * Cores of the wafer in S-shaped (boustrophedon) order: dies are
     * visited snake-wise row by row (the paper's S-shaped logical
     * routing topology), and within a die cores snake as well. The
     * pipeline mapper walks this order so consecutive stages land on
     * physically adjacent cores.
     */
    std::vector<CoreCoord> sShapedOrder() const;

  private:
    std::uint32_t dieRows_;
    std::uint32_t dieCols_;
    std::uint32_t coresPerDieRow_;
    std::uint32_t coresPerDieCol_;
};

} // namespace ouro

#endif // OURO_HW_GEOMETRY_HH
