/**
 * @file
 * Intra-core H-tree model (paper Section 4.3.2, Fig. 8).
 *
 * The 32 crossbars of a core hang off a 1024-bit binary H-tree. When a
 * layer tile is spread over several crossbars, each non-leaf node of
 * the tree either *reduces* (children carry partial sums of the same
 * output-channel group: data volume stays constant going up) or
 * *concatenates* (children carry different output groups: volume
 * doubles). Concatenation near the leaves therefore pressures the
 * narrow lower tree levels; the DP mapper pushes concatenation toward
 * the root. The cost of a leaf assignment is
 *     sum over nodes of depth(node) * weight(node),
 * weight = 1 for concatenation, 0 for reduction (Eq. 4), where depth
 * counts from the root (deeper = closer to the leaves = worse).
 */

#ifndef OURO_NOC_HTREE_HH
#define OURO_NOC_HTREE_HH

#include <cstdint>
#include <vector>

namespace ouro
{

/**
 * Cost evaluation and inspection helpers for a complete binary H-tree
 * with a power-of-two leaf count.
 */
class HTree
{
  public:
    /** @param leaves Leaf count; must be a power of two (32 here). */
    explicit HTree(std::uint32_t leaves);

    std::uint32_t leaves() const { return leaves_; }
    std::uint32_t levels() const { return levels_; }

    /**
     * Evaluate Eq. 4 for a leaf assignment: assignment[i] is the
     * output-channel group id of the tile on leaf i (negative = leaf
     * unused; unused leaves merge transparently).
     *
     * A node performs a reduction when the used leaves of both
     * subtrees all belong to one common group; otherwise it
     * concatenates and contributes its depth to the cost.
     */
    std::uint64_t assignmentCost(
            const std::vector<int> &assignment) const;

    /** Number of concatenation nodes in the assignment. */
    std::uint32_t concatNodes(const std::vector<int> &assignment) const;

  private:
    std::uint32_t leaves_;
    std::uint32_t levels_;

    struct SubtreeInfo
    {
        bool pure;   ///< all used leaves share one group
        int group;   ///< the group when pure; -1 when empty
        std::uint64_t cost;
        std::uint32_t concats;
    };

    SubtreeInfo evaluate(const std::vector<int> &assignment,
                         std::uint32_t lo, std::uint32_t size,
                         std::uint32_t depth) const;
};

} // namespace ouro

#endif // OURO_NOC_HTREE_HH
