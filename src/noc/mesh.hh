/**
 * @file
 * Network-on-wafer model (paper Sections 3 and 4.3.3).
 *
 * The wafer's cores form one global 2-D mesh; links inside a die are
 * full-bandwidth, links that cross a stitched die boundary pay the
 * CostInter bandwidth penalty. Routing is dimension-ordered (XY) with
 * a fault-avoidance detour: routes step around defective cores and
 * failed links, switching to YX when X-first is blocked - the paper's
 * eight virtual channels make the XY/YX mix deadlock-free, so the
 * model only needs to produce correct hop/energy counts.
 *
 * Two levels of fidelity are offered:
 *  - transferCost(): latency + energy of one isolated transfer
 *    (hop count x router latency + serialisation).
 *  - TrafficAccumulator: aggregates many concurrent flows onto links
 *    and reports the bottleneck-link time, which is what bounds a
 *    pipeline interval in steady state.
 */

#ifndef OURO_NOC_MESH_HH
#define OURO_NOC_MESH_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"

namespace ouro
{

/** Mesh direction of a link leaving a core. */
enum class LinkDir : unsigned
{
    North = 0,
    South = 1,
    East = 2,
    West = 3,
};

/** Identifies a directed link: (source core index, direction). */
struct LinkId
{
    std::uint64_t core;
    LinkDir dir;

    bool operator==(const LinkId &other) const = default;
};

struct LinkIdHash
{
    std::size_t operator()(const LinkId &link) const
    {
        return std::hash<std::uint64_t>{}(
                link.core * 4 + static_cast<unsigned>(link.dir));
    }
};

/** Latency + energy of one transfer. */
struct TransferCost
{
    double seconds = 0.0;
    double energyJ = 0.0;
    std::uint32_t hops = 0;
    std::uint32_t dieCrossings = 0;
};

/**
 * Immutable per-route pricing summary, computed ONCE when a route is
 * first cached. Route consumers used to walk O(hops) on every call
 * (re-deriving hop count, die crossings and link slots from the
 * path); pricing from this record is a handful of multiplies instead.
 *
 * Every coefficient is computed with the exact arithmetic expression
 * the walk-based pricing uses, so metadata-priced results are
 * BIT-IDENTICAL to walking the path - that is the contract the tests
 * pin, and it only holds if the expressions below never drift from
 * the walk code in mesh.cc.
 */
struct RouteMeta
{
    std::uint32_t hops = 0;
    std::uint32_t dieCrossings = 0;

    /** hops * routerLatency / clockHz (the per-transfer head
     *  latency; byte-count independent). */
    double headSeconds = 0.0;

    /** linkBitsPerCycle * clockHz / slowest_factor: the payload
     *  serialisation denominator (slowest traversed link). */
    double serialBitsPerSecond = 0.0;

    /** hopEnergyPerBit * hops + dieCrossingEnergyPerBit *
     *  dieCrossings: energy per transferred bit. */
    double energyPerBit = 0.0;

    /** Per-hop TrafficAccumulator slots in path order, packed as
     *  (core index * 4 + direction) << 1 | die-crossing flag - the
     *  flat list addFlow() streams in one blocked run (per-route
     *  constants hoisted, bit-identical to the retained path walk)
     *  instead of re-walking the path. */
    std::vector<std::uint64_t> slots;
};

/** A memoized route and its pricing summary. The two live and die
 *  together: every cache fill builds both, every invalidation drops
 *  both (the metadata immutability rule). */
struct PricedRoute
{
    std::vector<CoreCoord> path;
    RouteMeta meta;
};

class CleanRouteTable;

/**
 * The wafer mesh. Holds the defect map (defective cores cannot be
 * routed *through*) and a set of failed links (interconnect failures,
 * Section 4.3.3), both of which routes detour around.
 *
 * Routes are memoised per (src, dst) pair: transferCost() and
 * TrafficAccumulator::addFlow() re-request the same routes millions
 * of times, so the first computation is cached - together with an
 * immutable RouteMeta pricing summary, so repeat pricing never
 * re-walks the path - and failLink() (or an explicit
 * invalidateRoutes() after mutating the external DefectMap) flushes
 * the cache (route and summary together, always). The cache mutates under const, so a MeshNoc
 * instance must not be shared across threads without external
 * synchronisation (per-index sweep state, the PR 1 parallel
 * contract, already guarantees this everywhere in-tree).
 *
 * Optionally a mesh starts from a shared CleanRouteTable: a lookup
 * first consults the shared clean-geometry route and serves it
 * directly when this mesh's defects/failed links do not invalidate
 * it (a clean XY route that survives validation is exactly what the
 * cold router would produce, so the result is bit-identical); only
 * the invalidated pairs are computed and kept in the per-instance
 * overlay (copy-on-fault). failLink()/invalidateRoutes() flush the
 * overlay and the validation memo, never the shared table.
 */
class MeshNoc
{
  public:
    MeshNoc(const WaferGeometry &geom, const NocParams &params,
            const DefectMap *defects = nullptr,
            std::shared_ptr<const CleanRouteTable> clean_routes =
                    nullptr);

    const WaferGeometry &geometry() const { return geom_; }
    const NocParams &params() const { return params_; }

    /** Mark a link failed; subsequent routes avoid it (this flushes
     *  the route cache). */
    void failLink(CoreCoord from, LinkDir dir);

    bool linkFailed(CoreCoord from, LinkDir dir) const;

    /**
     * Compute the route from @p src to @p dst. XY by default; detours
     * around defective cores and failed links (YX fallback, then
     * greedy sidesteps). Returns the sequence of cores visited
     * including both endpoints. Empty when unroutable (fully fenced
     * region - should not happen at paper defect densities).
     */
    std::vector<CoreCoord> route(CoreCoord src, CoreCoord dst) const;

    /**
     * Cached variant of route(): the returned reference is stable
     * until the next failLink()/invalidateRoutes(). This is the hot
     * path behind transferCost() and TrafficAccumulator.
     */
    const std::vector<CoreCoord> &routeCached(CoreCoord src,
                                              CoreCoord dst) const;

    /**
     * The cached route together with its RouteMeta pricing summary
     * (same memoization and stability rules as routeCached()). Route
     * consumers price from the summary instead of re-walking the
     * path.
     */
    const PricedRoute &pricedRoute(CoreCoord src, CoreCoord dst) const;

    /**
     * false retires the metadata fast path: transferCost() and
     * TrafficAccumulator::addFlow() walk the path per call (the
     * retained bit-identity oracle). Default true.
     */
    void setPriceFromMeta(bool enabled) { priceFromMeta_ = enabled; }
    bool priceFromMeta() const { return priceFromMeta_; }

    /** Pricing calls served from a RouteMeta summary / from the
     *  retained path walk (transferCost + addFlow). */
    std::uint64_t metaPricedCalls() const { return metaPriced_; }
    std::uint64_t walkPricedCalls() const { return walkPriced_; }

    /**
     * Drop all cached routes. failLink() calls this automatically;
     * call it manually after mutating the DefectMap the mesh was
     * constructed with (e.g. DefectMap::inject during fault
     * injection).
     */
    void invalidateRoutes() const;

    /** Cached-route statistics (hits/misses since construction).
     *  Hits count the per-instance overlay; sharedTableHits() counts
     *  lookups served straight from the shared clean-route table. A
     *  shared-table serve is neither a hit nor a miss here. */
    std::uint64_t routeCacheHits() const { return cacheHits_; }
    std::uint64_t routeCacheMisses() const { return cacheMisses_; }
    std::size_t routeCacheSize() const { return routeCache_.size(); }

    /** Lookups served from the shared clean-route table (0 when the
     *  mesh was built without one). */
    std::uint64_t sharedTableHits() const { return sharedHits_; }

    /** The shared clean-route table this mesh starts from (null when
     *  cold-constructed). */
    const std::shared_ptr<const CleanRouteTable> &cleanRoutes() const
    {
        return cleanRoutes_;
    }

    /** Latency + energy of an isolated @p bytes transfer. */
    TransferCost transferCost(CoreCoord src, CoreCoord dst,
                              Bytes bytes) const;

    /** Latency only - the lean fast-path accessor for consumers that
     *  discard the energy figure (e.g. replacement-chain pricing).
     *  Bit-identical to transferCost().seconds on both paths. */
    double transferSeconds(CoreCoord src, CoreCoord dst,
                           Bytes bytes) const;

    /** Energy only (used when latency is hidden by pipelining). */
    double transferEnergy(CoreCoord src, CoreCoord dst,
                          Bytes bytes) const;

    /** Direction of the single mesh step from @p from to @p to. */
    static LinkDir stepDir(CoreCoord from, CoreCoord to);

  private:
    WaferGeometry geom_;
    NocParams params_;
    const DefectMap *defects_;
    std::unordered_set<LinkId, LinkIdHash> failedLinks_;
    std::shared_ptr<const CleanRouteTable> cleanRoutes_;

    /** (src index * numCores + dst index) -> route + pricing
     *  summary. Mutable: filled lazily from const routing calls.
     *  Holds only the pairs the shared table cannot serve (all pairs
     *  when cold). */
    mutable std::unordered_map<std::uint64_t, PricedRoute>
            routeCache_;
    /** Pairs whose shared clean route has been validated against
     *  this mesh's defects/failed links, mapped to the table's
     *  (immutable, stable) entry so repeat lookups skip the table
     *  mutex and the O(path) re-check. Flushed with the overlay. */
    mutable std::unordered_map<std::uint64_t, const PricedRoute *>
            sharedOk_;
    mutable std::uint64_t cacheHits_ = 0;
    mutable std::uint64_t cacheMisses_ = 0;
    mutable std::uint64_t sharedHits_ = 0;

    bool priceFromMeta_ = true;
    mutable std::uint64_t metaPriced_ = 0;
    mutable std::uint64_t walkPriced_ = 0;
    friend class TrafficAccumulator; // bumps the pricing counters

    bool blocked(CoreCoord c) const;
    bool stepAllowed(CoreCoord from, CoreCoord to) const;

    /** Build the pricing summary of @p path (mesh.cc keeps its
     *  arithmetic expression-identical to the retained walks). */
    RouteMeta buildMeta(const std::vector<CoreCoord> &path) const;

    /** True when a clean-geometry route survives this mesh's defect
     *  map and failed links (intermediate hops only; the destination
     *  may be defective, mirroring the router). */
    bool cleanRouteValid(const std::vector<CoreCoord> &path) const;

    /** Single-path router used by route(); may fail (empty). */
    std::vector<CoreCoord> routeDimOrder(CoreCoord src, CoreCoord dst,
                                         bool x_first) const;
    std::vector<CoreCoord> routeBfs(CoreCoord src, CoreCoord dst) const;
    std::vector<CoreCoord> routeUncached(CoreCoord src,
                                         CoreCoord dst) const;
};

/**
 * Shared clean-geometry route table: the routes of a defect-free,
 * no-failed-link mesh over one WaferGeometry, filled lazily and held
 * behind a shared_ptr so every MeshNoc a sweep builds over that
 * geometry starts from the same table instead of recomputing
 * identical clean routes.
 *
 * Entries are IMMUTABLE once computed - the table exposes no
 * mutation, never erases, and the backing map is node-based - so the
 * references route() returns stay valid for the table's lifetime and
 * can be served concurrently. Lookups are mutex-guarded, which makes
 * this the one NoC object that MAY be shared across sweep threads
 * (each thread still owns its MeshNoc instances, per the PR 3
 * contract). The concurrent-fill guarantee is exact, not just
 * data-race-free: the mutex serialises first computations, so each
 * pair is computed exactly once and N threads hammering one pair set
 * leave the table in the same state a serial fill would (tests pin
 * this, and computedRoutes() exposes the fill count to assert it).
 *
 * Ownership: long-lived fault-handling state holds the table behind
 * the wafer-level RecoveryService (runtime/recovery_service.hh),
 * which constructs one per geometry and hands it to every mesh it
 * builds; sweeps that bypass the service may still share a table
 * directly.
 */
class CleanRouteTable
{
  public:
    explicit CleanRouteTable(const WaferGeometry &geom,
                             const NocParams &params = {});

    /** The clean route src -> dst (computed on first request). */
    const std::vector<CoreCoord> &route(CoreCoord src,
                                        CoreCoord dst) const;

    /** The clean route plus its RouteMeta summary. Entries carry the
     *  summary from first computation, so a mesh serving a table
     *  route also reuses the table's metadata (the summary is priced
     *  with this table's NocParams - the MeshNoc constructor asserts
     *  pricing-parameter agreement). */
    const PricedRoute &priced(CoreCoord src, CoreCoord dst) const;

    const NocParams &params() const { return clean_.params(); }

    /** Distinct (src, dst) pairs resident. */
    std::size_t size() const;

    /** Routes actually computed (== size(): the mutex serialises
     *  first computations, so no pair is ever computed twice, even
     *  under concurrent fill). */
    std::uint64_t computedRoutes() const;

    const WaferGeometry &geometry() const
    {
        return clean_.geometry();
    }

  private:
    mutable std::mutex mutex_;
    /** Defect-free mesh whose per-instance cache IS the table. */
    MeshNoc clean_;
};

/**
 * Accumulates concurrent flows and answers "how long does this traffic
 * pattern take" as the bottleneck-link serialisation time, plus total
 * NoC energy. This is the quantity that throttles a pipeline interval
 * when many stage-to-stage and reduction flows share the mesh.
 *
 * Link loads live in a flat 4 x numCores array indexed by
 * (core index, direction) - no hashing on the per-hop hot path - with
 * a touched-slot list so clear() stays proportional to the links
 * actually used, not the wafer size.
 */
class TrafficAccumulator
{
  public:
    explicit TrafficAccumulator(const MeshNoc &noc);

    /** Add a flow of @p bytes from @p src to @p dst. */
    void addFlow(CoreCoord src, CoreCoord dst, Bytes bytes);

    /** Same, over an already-looked-up route record (callers that
     *  must first check routability keep a single cache lookup). */
    void addFlow(const PricedRoute &route, Bytes bytes);

    /** Bytes on the most-loaded link. */
    double bottleneckBytes() const { return maxLinkBytes_; }

    /** Serialisation time of the bottleneck link (seconds). */
    double bottleneckSeconds() const;

    /** Total energy of all accumulated flows. */
    double totalEnergyJ() const { return energyJ_; }

    /** Total byte-hops (volume metric used by Fig. 18). */
    double totalByteHops() const { return byteHops_; }

    /** Total *effective* byte-hops: per-hop bytes with die-crossing
     *  hops inflated by the inter-die penalty - the sum of all link
     *  loads, i.e. the routed analogue of the mapping objective's
     *  ((dist * bytes) * penalty) volume. */
    double totalEffectiveByteHops() const
    {
        return effectiveByteHops_;
    }

    /** Load on one directed link (bytes; die-penalty inflated). */
    double linkLoad(CoreCoord from, LinkDir dir) const;

    /** Number of distinct links carrying load. */
    std::size_t loadedLinks() const { return touched_.size(); }

    void clear();

  private:
    const MeshNoc &noc_;
    /** core index * 4 + direction -> accumulated effective bytes. */
    std::vector<double> linkBytes_;
    /** Slots of linkBytes_ with nonzero load, in first-touch order. */
    std::vector<std::uint64_t> touched_;
    double maxLinkBytes_ = 0.0;
    double energyJ_ = 0.0;
    double byteHops_ = 0.0;
    double effectiveByteHops_ = 0.0;
};

} // namespace ouro

#endif // OURO_NOC_MESH_HH
