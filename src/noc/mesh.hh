/**
 * @file
 * Network-on-wafer model (paper Sections 3 and 4.3.3).
 *
 * The wafer's cores form one global 2-D mesh; links inside a die are
 * full-bandwidth, links that cross a stitched die boundary pay the
 * CostInter bandwidth penalty. Routing is dimension-ordered (XY) with
 * a fault-avoidance detour: routes step around defective cores and
 * failed links, switching to YX when X-first is blocked - the paper's
 * eight virtual channels make the XY/YX mix deadlock-free, so the
 * model only needs to produce correct hop/energy counts.
 *
 * Two levels of fidelity are offered:
 *  - transferCost(): latency + energy of one isolated transfer
 *    (hop count x router latency + serialisation).
 *  - TrafficAccumulator: aggregates many concurrent flows onto links
 *    and reports the bottleneck-link time, which is what bounds a
 *    pipeline interval in steady state.
 */

#ifndef OURO_NOC_MESH_HH
#define OURO_NOC_MESH_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"

namespace ouro
{

/** Mesh direction of a link leaving a core. */
enum class LinkDir : unsigned
{
    North = 0,
    South = 1,
    East = 2,
    West = 3,
};

/** Identifies a directed link: (source core index, direction). */
struct LinkId
{
    std::uint64_t core;
    LinkDir dir;

    bool operator==(const LinkId &other) const = default;
};

struct LinkIdHash
{
    std::size_t operator()(const LinkId &link) const
    {
        return std::hash<std::uint64_t>{}(
                link.core * 4 + static_cast<unsigned>(link.dir));
    }
};

/** Latency + energy of one transfer. */
struct TransferCost
{
    double seconds = 0.0;
    double energyJ = 0.0;
    std::uint32_t hops = 0;
    std::uint32_t dieCrossings = 0;
};

/**
 * The wafer mesh. Holds the defect map (defective cores cannot be
 * routed *through*) and a set of failed links (interconnect failures,
 * Section 4.3.3), both of which routes detour around.
 */
class MeshNoc
{
  public:
    MeshNoc(const WaferGeometry &geom, const NocParams &params,
            const DefectMap *defects = nullptr);

    const WaferGeometry &geometry() const { return geom_; }
    const NocParams &params() const { return params_; }

    /** Mark a link failed; subsequent routes avoid it. */
    void failLink(CoreCoord from, LinkDir dir);

    bool linkFailed(CoreCoord from, LinkDir dir) const;

    /**
     * Compute the route from @p src to @p dst. XY by default; detours
     * around defective cores and failed links (YX fallback, then
     * greedy sidesteps). Returns the sequence of cores visited
     * including both endpoints. Empty when unroutable (fully fenced
     * region - should not happen at paper defect densities).
     */
    std::vector<CoreCoord> route(CoreCoord src, CoreCoord dst) const;

    /** Latency + energy of an isolated @p bytes transfer. */
    TransferCost transferCost(CoreCoord src, CoreCoord dst,
                              Bytes bytes) const;

    /** Energy only (used when latency is hidden by pipelining). */
    double transferEnergy(CoreCoord src, CoreCoord dst,
                          Bytes bytes) const;

    /** Direction of the single mesh step from @p from to @p to. */
    static LinkDir stepDir(CoreCoord from, CoreCoord to);

  private:
    WaferGeometry geom_;
    NocParams params_;
    const DefectMap *defects_;
    std::unordered_set<LinkId, LinkIdHash> failedLinks_;

    bool blocked(CoreCoord c) const;
    bool stepAllowed(CoreCoord from, CoreCoord to) const;

    /** Single-path router used by route(); may fail (empty). */
    std::vector<CoreCoord> routeDimOrder(CoreCoord src, CoreCoord dst,
                                         bool x_first) const;
    std::vector<CoreCoord> routeBfs(CoreCoord src, CoreCoord dst) const;
};

/**
 * Accumulates concurrent flows and answers "how long does this traffic
 * pattern take" as the bottleneck-link serialisation time, plus total
 * NoC energy. This is the quantity that throttles a pipeline interval
 * when many stage-to-stage and reduction flows share the mesh.
 */
class TrafficAccumulator
{
  public:
    explicit TrafficAccumulator(const MeshNoc &noc);

    /** Add a flow of @p bytes from @p src to @p dst. */
    void addFlow(CoreCoord src, CoreCoord dst, Bytes bytes);

    /** Bytes on the most-loaded link. */
    double bottleneckBytes() const { return maxLinkBytes_; }

    /** Serialisation time of the bottleneck link (seconds). */
    double bottleneckSeconds() const;

    /** Total energy of all accumulated flows. */
    double totalEnergyJ() const { return energyJ_; }

    /** Total byte-hops (volume metric used by Fig. 18). */
    double totalByteHops() const { return byteHops_; }

    void clear();

  private:
    const MeshNoc &noc_;
    std::unordered_map<LinkId, double, LinkIdHash> linkBytes_;
    double maxLinkBytes_ = 0.0;
    double energyJ_ = 0.0;
    double byteHops_ = 0.0;
};

} // namespace ouro

#endif // OURO_NOC_MESH_HH
