/**
 * @file
 * Network-on-wafer model (paper Sections 3 and 4.3.3).
 *
 * The wafer's cores form one global 2-D mesh; links inside a die are
 * full-bandwidth, links that cross a stitched die boundary pay the
 * CostInter bandwidth penalty. Routing is dimension-ordered (XY) with
 * a fault-avoidance detour: routes step around defective cores and
 * failed links, switching to YX when X-first is blocked - the paper's
 * eight virtual channels make the XY/YX mix deadlock-free, so the
 * model only needs to produce correct hop/energy counts.
 *
 * Two levels of fidelity are offered:
 *  - transferCost(): latency + energy of one isolated transfer
 *    (hop count x router latency + serialisation).
 *  - TrafficAccumulator: aggregates many concurrent flows onto links
 *    and reports the bottleneck-link time, which is what bounds a
 *    pipeline interval in steady state.
 */

#ifndef OURO_NOC_MESH_HH
#define OURO_NOC_MESH_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/units.hh"
#include "hw/geometry.hh"
#include "hw/params.hh"
#include "hw/yield.hh"

namespace ouro
{

/** Mesh direction of a link leaving a core. */
enum class LinkDir : unsigned
{
    North = 0,
    South = 1,
    East = 2,
    West = 3,
};

/** Identifies a directed link: (source core index, direction). */
struct LinkId
{
    std::uint64_t core;
    LinkDir dir;

    bool operator==(const LinkId &other) const = default;
};

struct LinkIdHash
{
    std::size_t operator()(const LinkId &link) const
    {
        return std::hash<std::uint64_t>{}(
                link.core * 4 + static_cast<unsigned>(link.dir));
    }
};

/** Latency + energy of one transfer. */
struct TransferCost
{
    double seconds = 0.0;
    double energyJ = 0.0;
    std::uint32_t hops = 0;
    std::uint32_t dieCrossings = 0;
};

/**
 * The wafer mesh. Holds the defect map (defective cores cannot be
 * routed *through*) and a set of failed links (interconnect failures,
 * Section 4.3.3), both of which routes detour around.
 *
 * Routes are memoised per (src, dst) pair: transferCost() and
 * TrafficAccumulator::addFlow() re-request the same routes millions
 * of times, so the first computation is cached and failLink() (or an
 * explicit invalidateRoutes() after mutating the external DefectMap)
 * flushes the cache. The cache mutates under const, so a MeshNoc
 * instance must not be shared across threads without external
 * synchronisation (per-index sweep state, the PR 1 parallel
 * contract, already guarantees this everywhere in-tree).
 */
class MeshNoc
{
  public:
    MeshNoc(const WaferGeometry &geom, const NocParams &params,
            const DefectMap *defects = nullptr);

    const WaferGeometry &geometry() const { return geom_; }
    const NocParams &params() const { return params_; }

    /** Mark a link failed; subsequent routes avoid it (this flushes
     *  the route cache). */
    void failLink(CoreCoord from, LinkDir dir);

    bool linkFailed(CoreCoord from, LinkDir dir) const;

    /**
     * Compute the route from @p src to @p dst. XY by default; detours
     * around defective cores and failed links (YX fallback, then
     * greedy sidesteps). Returns the sequence of cores visited
     * including both endpoints. Empty when unroutable (fully fenced
     * region - should not happen at paper defect densities).
     */
    std::vector<CoreCoord> route(CoreCoord src, CoreCoord dst) const;

    /**
     * Cached variant of route(): the returned reference is stable
     * until the next failLink()/invalidateRoutes(). This is the hot
     * path behind transferCost() and TrafficAccumulator.
     */
    const std::vector<CoreCoord> &routeCached(CoreCoord src,
                                              CoreCoord dst) const;

    /**
     * Drop all cached routes. failLink() calls this automatically;
     * call it manually after mutating the DefectMap the mesh was
     * constructed with (e.g. DefectMap::inject during fault
     * injection).
     */
    void invalidateRoutes() const;

    /** Cached-route statistics (hits/misses since construction). */
    std::uint64_t routeCacheHits() const { return cacheHits_; }
    std::uint64_t routeCacheMisses() const { return cacheMisses_; }
    std::size_t routeCacheSize() const { return routeCache_.size(); }

    /** Latency + energy of an isolated @p bytes transfer. */
    TransferCost transferCost(CoreCoord src, CoreCoord dst,
                              Bytes bytes) const;

    /** Energy only (used when latency is hidden by pipelining). */
    double transferEnergy(CoreCoord src, CoreCoord dst,
                          Bytes bytes) const;

    /** Direction of the single mesh step from @p from to @p to. */
    static LinkDir stepDir(CoreCoord from, CoreCoord to);

  private:
    WaferGeometry geom_;
    NocParams params_;
    const DefectMap *defects_;
    std::unordered_set<LinkId, LinkIdHash> failedLinks_;

    /** (src index * numCores + dst index) -> path. Mutable: filled
     *  lazily from const routing calls. */
    mutable std::unordered_map<std::uint64_t, std::vector<CoreCoord>>
            routeCache_;
    mutable std::uint64_t cacheHits_ = 0;
    mutable std::uint64_t cacheMisses_ = 0;

    bool blocked(CoreCoord c) const;
    bool stepAllowed(CoreCoord from, CoreCoord to) const;

    /** Single-path router used by route(); may fail (empty). */
    std::vector<CoreCoord> routeDimOrder(CoreCoord src, CoreCoord dst,
                                         bool x_first) const;
    std::vector<CoreCoord> routeBfs(CoreCoord src, CoreCoord dst) const;
    std::vector<CoreCoord> routeUncached(CoreCoord src,
                                         CoreCoord dst) const;
};

/**
 * Accumulates concurrent flows and answers "how long does this traffic
 * pattern take" as the bottleneck-link serialisation time, plus total
 * NoC energy. This is the quantity that throttles a pipeline interval
 * when many stage-to-stage and reduction flows share the mesh.
 *
 * Link loads live in a flat 4 x numCores array indexed by
 * (core index, direction) - no hashing on the per-hop hot path - with
 * a touched-slot list so clear() stays proportional to the links
 * actually used, not the wafer size.
 */
class TrafficAccumulator
{
  public:
    explicit TrafficAccumulator(const MeshNoc &noc);

    /** Add a flow of @p bytes from @p src to @p dst. */
    void addFlow(CoreCoord src, CoreCoord dst, Bytes bytes);

    /** Bytes on the most-loaded link. */
    double bottleneckBytes() const { return maxLinkBytes_; }

    /** Serialisation time of the bottleneck link (seconds). */
    double bottleneckSeconds() const;

    /** Total energy of all accumulated flows. */
    double totalEnergyJ() const { return energyJ_; }

    /** Total byte-hops (volume metric used by Fig. 18). */
    double totalByteHops() const { return byteHops_; }

    /** Load on one directed link (bytes; die-penalty inflated). */
    double linkLoad(CoreCoord from, LinkDir dir) const;

    /** Number of distinct links carrying load. */
    std::size_t loadedLinks() const { return touched_.size(); }

    void clear();

  private:
    const MeshNoc &noc_;
    /** core index * 4 + direction -> accumulated effective bytes. */
    std::vector<double> linkBytes_;
    /** Slots of linkBytes_ with nonzero load, in first-touch order. */
    std::vector<std::uint64_t> touched_;
    double maxLinkBytes_ = 0.0;
    double energyJ_ = 0.0;
    double byteHops_ = 0.0;
};

} // namespace ouro

#endif // OURO_NOC_MESH_HH
